// Command clinic demonstrates the categorical extension the paper's
// conclusions call for: protecting a *nominal* confidential attribute
// (diagnosis codes, which have no meaningful order) with t-closeness under
// the equal-ground-distance Earth Mover's Distance (total variation), while
// the quasi-identifiers remain numeric and are microaggregated as usual.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	n := flag.Int("n", 600, "number of synthetic clinic visits")
	k := flag.Int("k", 4, "k-anonymity parameter")
	tl := flag.Float64("t", 0.3, "t-closeness parameter (total-variation EMD)")
	flag.Parse()

	schema, err := repro.NewSchema(
		repro.Attribute{Name: "patient", Role: repro.Identifier, Kind: repro.Categorical},
		repro.Attribute{Name: "age", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "zip", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "visit_day", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "diagnosis", Role: repro.Confidential, Kind: repro.Categorical},
	)
	if err != nil {
		log.Fatal(err)
	}
	table, err := repro.NewTable(schema)
	if err != nil {
		log.Fatal(err)
	}
	// Diagnoses with a skewed frequency profile: age correlates with the
	// diagnosis mix, so naive QI clustering would leak it.
	diagnoses := []string{"hypertension", "influenza", "diabetes", "asthma", "fracture"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < *n; i++ {
		age := 18 + rng.Intn(70)
		zip := 43001 + rng.Intn(12)
		day := 1 + rng.Intn(365)
		// Older patients skew toward chronic conditions.
		var d string
		if age > 55 {
			d = diagnoses[rng.Intn(3)]
		} else {
			d = diagnoses[1+rng.Intn(4)]
		}
		name := fmt.Sprintf("patient-%04d", i)
		if err := table.AppendRow(name, float64(age), float64(zip), float64(day), d); err != nil {
			log.Fatal(err)
		}
	}

	eng, err := repro.New(table)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), repro.Spec{
		Algorithm: repro.Merge, // Algorithm 1 carries the guarantee for nominal EMD
		K:         *k,
		T:         *tl,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("visits: %d, equivalence classes: %d (min size %d)\n",
		table.Len(), len(res.Clusters), res.Sizes.Min)
	fmt.Printf("nominal t-closeness achieved: %.4f (requested %.2f)\n", res.MaxEMD, *tl)
	fmt.Printf("k-anonymity: %d, distinct diagnoses per class >= %d\n",
		res.Privacy.KAnonymity, res.Privacy.LDiversity)
	fmt.Printf("quasi-identifier utility loss (SSE): %.5f\n\n", res.SSE)

	// Show the first equivalence class: identical aggregated QIs, a mix of
	// diagnoses close to the clinic-wide distribution.
	first := res.Clusters[0]
	fmt.Printf("first class (%d records):\n", len(first.Rows))
	s := res.Anonymized.Schema()
	for _, r := range first.Rows {
		fmt.Printf("  age=%s zip=%s day=%s diagnosis=%s\n",
			res.Anonymized.Label(r, s.Index("age")),
			res.Anonymized.Label(r, s.Index("zip")),
			res.Anonymized.Label(r, s.Index("visit_day")),
			res.Anonymized.Label(r, s.Index("diagnosis")))
	}
}
