// Command quickstart is the smallest end-to-end use of the library: build a
// microdata table in code, prepare an anonymization engine over it, run the
// t-closeness-first algorithm (the paper's Algorithm 3, its best performer),
// and inspect the release and its privacy report.
//
// The engine (repro.New) is the primary API: it prepares the shared
// substrate once, so running more parameter points — or re-running after
// appending freshly arrived records — costs only the algorithm itself. The
// older one-shot repro.Anonymize(table, cfg) is deprecated but fully
// supported; it behaves exactly like a single Run on a throwaway engine.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// 1. Describe the data: which columns identify people (to drop), which
	//    could re-identify them in combination (to perturb), and which are
	//    sensitive (to protect with t-closeness).
	schema, err := repro.NewSchema(
		repro.Attribute{Name: "name", Role: repro.Identifier, Kind: repro.Categorical},
		repro.Attribute{Name: "age", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "zip", Role: repro.QuasiIdentifier, Kind: repro.Numeric},
		repro.Attribute{Name: "salary", Role: repro.Confidential, Kind: repro.Numeric},
	)
	if err != nil {
		log.Fatal(err)
	}
	table, err := repro.NewTable(schema)
	if err != nil {
		log.Fatal(err)
	}
	people := []struct {
		name string
		age  float64
		zip  float64
		pay  float64
	}{
		{"ana", 29, 43001, 21000}, {"bo", 31, 43002, 29000},
		{"cai", 34, 43001, 25000}, {"dia", 38, 43003, 31000},
		{"eli", 41, 43002, 40000}, {"fay", 45, 43004, 38000},
		{"gus", 47, 43001, 45000}, {"hal", 52, 43003, 52000},
		{"ivy", 55, 43002, 48000}, {"jon", 58, 43004, 61000},
		{"kim", 61, 43001, 57000}, {"lou", 64, 43003, 70000},
	}
	for _, p := range people {
		if err := table.AppendRow(p.name, p.age, p.zip, p.pay); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Prepare the engine once, then anonymize: hide every subject among
	//    k=3 records and keep each group's salary distribution within EMD
	//    t=0.3 of the global one. The context cancels long runs cooperatively
	//    (useful with larger tables and tighter parameters).
	eng, err := repro.New(table)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), repro.Spec{
		Algorithm: repro.TClosenessFirst,
		K:         3,
		T:         0.3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the outcome.
	fmt.Printf("clusters: %d (sizes min %d / avg %.1f)\n",
		len(res.Clusters), res.Sizes.Min, res.Sizes.Avg)
	fmt.Printf("achieved t-closeness: %.4f (requested %.2f)\n", res.MaxEMD, 0.3)
	fmt.Printf("privacy report: k-anonymity=%d, l-diversity=%d\n",
		res.Privacy.KAnonymity, res.Privacy.LDiversity)
	fmt.Printf("utility loss (normalized SSE): %.5f\n\n", res.SSE)

	// 4. The release: identifiers blanked, quasi-identifiers aggregated,
	//    salaries untouched. WriteCSV emits the self-describing CSV format.
	fmt.Println("anonymized release:")
	if err := res.Anonymized.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 5. Streaming ingest: new records append as a table epoch — the engine
	//    extends its prepared state incrementally instead of rebuilding —
	//    and the next Run covers everyone, exactly as if the engine had been
	//    built over the full table from the start.
	if err := eng.Append(
		[]any{"mia", 27.0, 43002.0, 23000.0},
		[]any{"ned", 66.0, 43004.0, 74000.0},
	); err != nil {
		log.Fatal(err)
	}
	res, err = eng.Run(context.Background(), repro.Spec{
		Algorithm: repro.TClosenessFirst, K: 3, T: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter appending 2 records (epoch %d, n=%d): %d clusters, t=%.4f\n",
		eng.Epoch(), eng.Len(), len(res.Clusters), res.MaxEMD)
}
