// Command census reproduces, in miniature, the comparison at the heart of
// the paper's evaluation (Section 8): on the Census-like data sets — one
// with moderately correlated quasi-identifiers and confidential attribute
// (MCD, r≈0.52) and one highly correlated (HCD, r≈0.92) — it runs the three
// microaggregation-for-t-closeness algorithms across a (k, t) grid and
// reports actual cluster sizes and the normalized SSE utility loss, showing
// why the t-closeness-first strategy (Algorithm 3) preserves the most
// utility.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	k := flag.Int("k", 5, "k-anonymity parameter")
	flag.Parse()

	datasets := []struct {
		name string
		tbl  *repro.Table
	}{
		{"MCD (corr≈0.52)", repro.CensusMCD()},
		{"HCD (corr≈0.92)", repro.CensusHCD()},
	}
	algs := []repro.Algorithm{repro.Merge, repro.KAnonymityFirst, repro.TClosenessFirst}
	tValues := []float64{0.05, 0.13, 0.21}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	fmt.Fprintln(w, "dataset\talgorithm\tt\tclusters\tmin/avg size\tmax EMD\tSSE\ttime")
	for _, ds := range datasets {
		// The paper's quoted per-data-set correlation corresponds to the
		// dominant quasi-identifier (TAXINC), i.e. the maximum over pairs.
		corr, err := ds.tbl.MaxQIConfidentialCorrelation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t(measured corr %.3f, n=%d)\t\t\t\t\t\t\n", ds.name, corr, ds.tbl.Len())
		// One prepared engine per data set: the whole (algorithm, t) sweep
		// below shares its substrate and per-k partition caches.
		eng, err := repro.New(ds.tbl)
		if err != nil {
			log.Fatal(err)
		}
		for _, tl := range tValues {
			for _, alg := range algs {
				res, err := eng.Run(context.Background(), repro.Spec{
					Algorithm: alg, K: *k, T: tl, SkipAssessment: true,
				})
				if err != nil {
					log.Fatalf("%s %v t=%v: %v", ds.name, alg, tl, err)
				}
				fmt.Fprintf(w, "\t%v\t%.2f\t%d\t%d/%.1f\t%.4f\t%.5f\t%v\n",
					alg, tl, len(res.Clusters), res.Sizes.Min, res.Sizes.Avg,
					res.MaxEMD, res.SSE, res.Elapsed.Round(1000000))
			}
		}
	}
	fmt.Fprintln(w, "\nReading the table: the earlier an algorithm accounts for t-closeness,")
	fmt.Fprintln(w, "the smaller its clusters and SSE — Algorithm 3 (tclose-first) wins, and")
	fmt.Fprintln(w, "its advantage shrinks on HCD where QIs and secrets are hard to reconcile.")
}
