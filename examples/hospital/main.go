// Command hospital walks through a realistic release workflow on the
// patient-discharge-like data set (7 quasi-identifiers, weakly correlated
// hospital charge as the confidential attribute — the paper's Section 8.2
// scalability workload):
//
//  1. generate the data and persist it as CSV (standing in for the file a
//     hospital's data officer would receive),
//  2. load it back, pick anonymization parameters,
//  3. anonymize with the two fast algorithms plus the Mondrian
//     generalization baseline, comparing run time and utility — all against
//     one prepared engine, the way a sweep would run in production,
//  4. verify the release independently and write it out,
//  5. ingest a late batch of records (streaming epoch append) and release
//     again without rebuilding the engine,
//  6. re-anonymize warm: seed the next releases from the previous epoch's
//     partition so each update costs time proportional to the delta, and
//     retract records with a deletion epoch along the way.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	n := flag.Int("n", 5000, "number of synthetic patient records")
	k := flag.Int("k", 2, "k-anonymity parameter")
	tl := flag.Float64("t", 0.13, "t-closeness parameter")
	dir := flag.String("dir", os.TempDir(), "directory for the CSV files")
	flag.Parse()

	// Step 1: the incoming file.
	inPath := filepath.Join(*dir, "patients.csv")
	src := repro.PatientDischarge(*n, 20160314)
	in, err := os.Create(inPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := src.WriteCSV(in); err != nil {
		log.Fatal(err)
	}
	if err := in.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d patient records to %s\n", src.Len(), inPath)

	// Step 2: load as a data officer would.
	f, err := os.Open(inPath)
	if err != nil {
		log.Fatal(err)
	}
	table, err := repro.ReadCSV(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	corr, err := table.QIConfidentialCorrelation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records, %d QIs, QI↔charge correlation %.3f\n\n",
		table.Len(), len(table.Schema().QuasiIdentifiers()), corr)

	// Step 3: compare anonymizers against one prepared engine — the
	// substrate is built once for all three runs. Algorithm 2 is omitted by
	// default: its refinement is impractical at this scale (the point of
	// the paper's Figure 5).
	ctx := context.Background()
	eng, err := repro.New(table)
	if err != nil {
		log.Fatal(err)
	}
	for _, alg := range []repro.Algorithm{repro.Merge, repro.TClosenessFirst, repro.MondrianBaseline} {
		res, err := eng.Run(ctx, repro.Spec{
			Algorithm: alg, K: *k, T: *tl, SkipAssessment: true,
		})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-18v %8v  clusters=%5d  minSize=%4d  SSE=%.5f  maxEMD=%.4f\n",
			alg, res.Elapsed.Round(1000000), len(res.Clusters), res.Sizes.Min,
			res.SSE, res.MaxEMD)
	}

	// Step 4: release with the best method and verify independently.
	res, err := eng.Run(ctx, repro.Spec{
		Algorithm: repro.TClosenessFirst, K: *k, T: *tl,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := repro.Assess(res.Anonymized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindependent verification of the release: k=%d, t=%.4f, l-diversity=%d\n",
		rep.KAnonymity, rep.TCloseness, rep.LDiversity)
	if rep.KAnonymity < *k {
		log.Fatalf("release violates k-anonymity")
	}
	// The other two axes of the SDC trade-off: empirical re-identification
	// risk (record linkage against the original quasi-identifiers) and
	// analytical validity (distortion of the QI↔charge correlations).
	linkage, err := repro.LinkageRisk(table, res.Anonymized)
	if err != nil {
		log.Fatal(err)
	}
	distortion, err := repro.CorrelationDistortion(table, res.Anonymized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record-linkage risk: %.4f (k-anonymity ceiling %.4f)\n",
		linkage, 1.0/float64(rep.KAnonymity))
	fmt.Printf("correlation distortion: %.4f\n", distortion)

	outPath := filepath.Join(*dir, "patients_anonymized.csv")
	out, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Anonymized.WriteCSV(out); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized release written to %s\n", outPath)

	// Step 5: a late batch arrives after the release went out. Appending
	// opens a new table epoch — prefixes and normalization extend
	// incrementally — and the next run covers the full feed, bit-identical
	// to an engine freshly built over the concatenated table.
	late := repro.PatientDischarge(200, 20160315)
	batch := make([][]any, late.Len())
	for r := range batch {
		row := make([]any, late.Width())
		for c := 0; c < late.Width(); c++ {
			row[c] = late.Value(r, c)
		}
		batch[r] = row
	}
	if err := eng.Append(batch...); err != nil {
		log.Fatal(err)
	}
	res, err = eng.Run(ctx, repro.Spec{Algorithm: repro.TClosenessFirst, K: *k, T: *tl})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlate batch ingested (epoch %d, n=%d): re-released %d clusters at t=%.4f in %v\n",
		eng.Epoch(), eng.Len(), len(res.Clusters), res.MaxEMD, res.Elapsed.Round(1000000))

	// Step 6: the feed keeps moving — warm re-anonymization. A Warm spec
	// seeds each run from the engine's cached partition of the previous
	// epoch: the first warm run is a cold run that plants the seed, and
	// every re-run after an append or delete repairs the partition locally
	// (assign new rows to nearest clusters, fix k/t damage, finish with the
	// merge step) instead of partitioning from scratch. res.Warm reports
	// the repair scope; privacy guarantees are identical to a cold run.
	warmSpec := repro.Spec{Algorithm: repro.Merge, K: *k, T: *tl, SkipAssessment: true, Warm: true}
	if _, err := eng.Run(ctx, warmSpec); err != nil { // plants the seed
		log.Fatal(err)
	}

	// A trickle batch arrives...
	trickle := repro.PatientDischarge(50, 20160316)
	batch = batch[:0]
	for r := 0; r < trickle.Len(); r++ {
		row := make([]any, trickle.Width())
		for c := 0; c < trickle.Width(); c++ {
			row[c] = trickle.Value(r, c)
		}
		batch = append(batch, row)
	}
	if err := eng.Append(batch...); err != nil {
		log.Fatal(err)
	}
	// ...and a handful of patients exercise their right to erasure.
	if err := eng.Delete(3, 117, 1205); err != nil {
		log.Fatal(err)
	}

	res, err = eng.Run(ctx, warmSpec)
	if err != nil {
		log.Fatal(err)
	}
	if res.Warm == nil {
		log.Fatal("expected a warm-seeded run")
	}
	fmt.Printf("warm re-release (epoch %d, n=%d): repaired %d/%d rows from the epoch-%d seed in %v (SSE=%.5f, maxEMD=%.4f)\n",
		eng.Epoch(), eng.Len(), res.Warm.ScopeRows, eng.Len(), res.Warm.SeedEpoch,
		res.Elapsed.Round(1000000), res.SSE, res.MaxEMD)
}
