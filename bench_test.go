// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 8), plus ablations of the design choices listed in DESIGN.md §5.
//
// Each paper artifact has one Benchmark* family:
//
//	BenchmarkTable1/2/3  — actual cluster sizes per algorithm (min/avg are
//	                       attached as custom metrics per (dataset,k,t) cell)
//	BenchmarkFigure5     — run time vs t (the benchmark time is the metric)
//	BenchmarkFigure6     — SSE vs t per data set (SSE as custom metric)
//	BenchmarkFigure7     — SSE over the (k,t) grid on MCD
//
// The sub-benchmark grids are representative subsets of the paper's full
// grids so `go test -bench=.` finishes in minutes; cmd/benchtables and
// cmd/benchfigs run the complete grids.
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/emd"
	"repro/internal/generalization"
	"repro/internal/metrics"
	"repro/internal/micro"
	"repro/internal/synth"
	"repro/internal/tclose"
)

// benchKs and benchTs subsample the paper's k ∈ {2..30} × t ∈ {0.01..0.25}
// grid.
var (
	benchKs = []int{2, 10, 30}
	benchTs = []float64{0.05, 0.13, 0.25}
)

func benchCell(b *testing.B, tbl *repro.Table, alg repro.Algorithm, k int, tl float64) {
	b.Helper()
	var sizesMin, sizesAvg float64
	for i := 0; i < b.N; i++ {
		res, err := repro.Anonymize(tbl, repro.Config{
			Algorithm: alg, K: k, T: tl, SkipAssessment: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		sizesMin = float64(res.Sizes.Min)
		sizesAvg = res.Sizes.Avg
	}
	b.ReportMetric(sizesMin, "minsize")
	b.ReportMetric(sizesAvg, "avgsize")
}

// benchTable runs one of Tables 1-3: cluster sizes over (dataset, k, t).
func benchTable(b *testing.B, alg repro.Algorithm) {
	sets := []struct {
		name string
		tbl  *repro.Table
	}{
		{"MCD", repro.CensusMCD()},
		{"HCD", repro.CensusHCD()},
	}
	for _, ds := range sets {
		for _, k := range benchKs {
			for _, tl := range benchTs {
				name := fmt.Sprintf("%s/k=%d/t=%.2f", ds.name, k, tl)
				b.Run(name, func(b *testing.B) {
					benchCell(b, ds.tbl, alg, k, tl)
				})
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: Algorithm 1 (microaggregation +
// merging) actual cluster sizes.
func BenchmarkTable1(b *testing.B) { benchTable(b, repro.Merge) }

// BenchmarkTable2 regenerates Table 2: Algorithm 2 (k-anonymity-first)
// actual cluster sizes.
func BenchmarkTable2(b *testing.B) { benchTable(b, repro.KAnonymityFirst) }

// BenchmarkTable3 regenerates Table 3: Algorithm 3 (t-closeness-first)
// actual cluster sizes.
func BenchmarkTable3(b *testing.B) { benchTable(b, repro.TClosenessFirst) }

// figure5N is the Patient Discharge sample size for the run-time figure.
// The paper uses 23,435 records; Algorithm 2's O(n³/k) refinement makes that
// impractical inside `go test -bench=.` (use cmd/benchfigs -n 23435 for the
// full-size run). The run-time ordering and trends are already clear at this
// size.
const figure5N = 1500

// BenchmarkFigure5 regenerates Figure 5: run time of the three algorithms
// on the Patient Discharge data set, k=2. The ns/op of each sub-benchmark is
// the figure's Y value.
func BenchmarkFigure5(b *testing.B) {
	tbl := repro.PatientDischarge(figure5N, 20160314)
	algs := []repro.Algorithm{repro.Merge, repro.KAnonymityFirst, repro.TClosenessFirst}
	for _, alg := range algs {
		for _, tl := range benchTs {
			b.Run(fmt.Sprintf("%v/t=%.2f", alg, tl), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := repro.Anonymize(tbl, repro.Config{
						Algorithm: alg, K: 2, T: tl, SkipAssessment: true,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: normalized SSE vs t at k=2 for the
// HCD, MCD and Patient Discharge data sets. SSE is attached as a custom
// metric ("sse/1e6" scaled to be visible next to ns/op).
func BenchmarkFigure6(b *testing.B) {
	sets := []struct {
		name string
		tbl  *repro.Table
	}{
		{"HCD", repro.CensusHCD()},
		{"MCD", repro.CensusMCD()},
		{"PD", repro.PatientDischarge(figure5N, 20160314)},
	}
	algs := []repro.Algorithm{repro.Merge, repro.KAnonymityFirst, repro.TClosenessFirst}
	for _, ds := range sets {
		for _, alg := range algs {
			for _, tl := range benchTs {
				b.Run(fmt.Sprintf("%s/%v/t=%.2f", ds.name, alg, tl), func(b *testing.B) {
					var sse float64
					for i := 0; i < b.N; i++ {
						res, err := repro.Anonymize(ds.tbl, repro.Config{
							Algorithm: alg, K: 2, T: tl, SkipAssessment: true,
						})
						if err != nil {
							b.Fatal(err)
						}
						sse = res.SSE
					}
					b.ReportMetric(sse*1e6, "sse-ppm")
				})
			}
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: the normalized SSE surface over
// (k, t) on the MCD data set, one sub-benchmark per algorithm and grid
// point.
func BenchmarkFigure7(b *testing.B) {
	tbl := repro.CensusMCD()
	algs := []repro.Algorithm{repro.Merge, repro.KAnonymityFirst, repro.TClosenessFirst}
	for _, alg := range algs {
		for _, k := range benchKs {
			for _, tl := range benchTs {
				b.Run(fmt.Sprintf("%v/k=%d/t=%.2f", alg, k, tl), func(b *testing.B) {
					var sse float64
					for i := 0; i < b.N; i++ {
						res, err := repro.Anonymize(tbl, repro.Config{
							Algorithm: alg, K: k, T: tl, SkipAssessment: true,
						})
						if err != nil {
							b.Fatal(err)
						}
						sse = res.SSE
					}
					b.ReportMetric(sse*1e6, "sse-ppm")
				})
			}
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationPartitioner compares MDAV and V-MDAV as the initial
// partitioner of Algorithm 1.
func BenchmarkAblationPartitioner(b *testing.B) {
	tbl := repro.CensusMCD()
	parts := []struct {
		name string
		part repro.Partitioner
	}{
		{"MDAV", nil},
		{"VMDAV", func(points [][]float64, k int) ([]micro.Cluster, error) {
			return micro.VMDAV(points, k, 0)
		}},
	}
	for _, p := range parts {
		b.Run(p.name, func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				res, err := repro.Anonymize(tbl, repro.Config{
					Algorithm: repro.Merge, K: 5, T: 0.17,
					Partitioner: p.part, SkipAssessment: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sse = res.SSE
			}
			b.ReportMetric(sse*1e6, "sse-ppm")
		})
	}
}

// BenchmarkAblationAlg2Standalone quantifies the cost of Algorithm 2's
// finishing merge step (the t-closeness guarantee) against the standalone
// swap-only variant, which may miss the target.
func BenchmarkAblationAlg2Standalone(b *testing.B) {
	tbl := repro.CensusMCD()
	b.Run("standalone", func(b *testing.B) {
		var maxEMD float64
		for i := 0; i < b.N; i++ {
			res, err := tclose.Algorithm2Standalone(tbl, 5, 0.09)
			if err != nil {
				b.Fatal(err)
			}
			maxEMD = res.MaxEMD
		}
		b.ReportMetric(maxEMD*1e4, "maxemd-e4")
	})
	b.Run("guaranteed", func(b *testing.B) {
		var maxEMD float64
		for i := 0; i < b.N; i++ {
			res, err := tclose.Algorithm2(tbl, 5, 0.09)
			if err != nil {
				b.Fatal(err)
			}
			maxEMD = res.MaxEMD
		}
		b.ReportMetric(maxEMD*1e4, "maxemd-e4")
	})
}

// BenchmarkAblationMergePolicy compares the paper's QI-nearest merge
// partner selection with a greedy EMD-minimizing selection.
func BenchmarkAblationMergePolicy(b *testing.B) {
	tbl := repro.CensusMCD()
	policies := []struct {
		name   string
		policy tclose.MergePolicy
	}{
		{"nearest-qi", tclose.MergeNearestQI},
		{"greedy-emd", tclose.MergeGreedyEMD},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			var sse, merges float64
			for i := 0; i < b.N; i++ {
				res, err := tclose.Algorithm1Policy(tbl, 5, 0.21, nil, p.policy)
				if err != nil {
					b.Fatal(err)
				}
				anon, err := micro.Aggregate(tbl, res.Clusters)
				if err != nil {
					b.Fatal(err)
				}
				s, err := metrics.NormalizedSSE(tbl, anon)
				if err != nil {
					b.Fatal(err)
				}
				sse, merges = s, float64(res.Merges)
			}
			b.ReportMetric(sse*1e6, "sse-ppm")
			b.ReportMetric(merges, "merges")
		})
	}
}

// BenchmarkAblationAggregation compares the mean and median aggregation
// operators on the same Algorithm 3 partition (Section 2.3: the mean is
// SSE-optimal for any fixed partition).
func BenchmarkAblationAggregation(b *testing.B) {
	tbl := repro.CensusMCD()
	res, err := tclose.Algorithm3(tbl, 5, 0.13)
	if err != nil {
		b.Fatal(err)
	}
	ops := []struct {
		name string
		op   micro.AggregationOp
	}{
		{"mean", micro.OpMean},
		{"median", micro.OpMedian},
	}
	for _, o := range ops {
		b.Run(o.name, func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				anon, err := micro.AggregateWith(tbl, res.Clusters, o.op)
				if err != nil {
					b.Fatal(err)
				}
				s, err := metrics.NormalizedSSE(tbl, anon)
				if err != nil {
					b.Fatal(err)
				}
				sse = s
			}
			b.ReportMetric(sse*1e6, "sse-ppm")
		})
	}
}

// BenchmarkBaselineMondrian compares the generalization baseline
// (Mondrian-t) against the microaggregation algorithms on equal (k, t) —
// the paper's central claim is that microaggregation preserves more utility.
func BenchmarkBaselineMondrian(b *testing.B) {
	tbl := repro.CensusMCD()
	b.Run("mondrian-t", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			clusters, err := generalization.MondrianT(tbl, 5, 0.17)
			if err != nil {
				b.Fatal(err)
			}
			anon, err := generalization.Aggregate(tbl, clusters)
			if err != nil {
				b.Fatal(err)
			}
			s, err := metrics.NormalizedSSE(tbl, anon)
			if err != nil {
				b.Fatal(err)
			}
			sse = s
		}
		b.ReportMetric(sse*1e6, "sse-ppm")
	})
	b.Run("alg3", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			res, err := repro.Anonymize(tbl, repro.Config{
				Algorithm: repro.TClosenessFirst, K: 5, T: 0.17, SkipAssessment: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			sse = res.SSE
		}
		b.ReportMetric(sse*1e6, "sse-ppm")
	})
}

// --- Substrate micro-benchmarks ---

// BenchmarkMDAV measures the partition substrate alone.
func BenchmarkMDAV(b *testing.B) {
	tbl := repro.CensusMCD()
	points := tbl.QIMatrix()
	for _, k := range []int{2, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := micro.MDAV(points, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEMD measures one Earth Mover's Distance evaluation over the full
// Census value domain — the inner loop of Algorithms 1 and 2.
func BenchmarkEMD(b *testing.B) {
	tbl := synth.CensusMCD()
	p, err := tclose.Algorithm3(tbl, 5, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	rows := p.Clusters[0].Rows
	conf := tbl.Schema().Confidentials()[0]
	space, err := emd.NewSpace(tbl.ColumnView(conf))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = space.EMDOf(rows)
	}
}

// BenchmarkAblationReleaseStyle compares the centroid release (the paper's
// aggregation step) with the QI-preserving Anatomy-style permutation
// release on the same Algorithm 3 partition. The permutation release has
// zero quasi-identifier SSE by construction; the metric of interest is the
// QI↔confidential correlation distortion, reported as corr-e3 (measured
// correlation of the release, scaled by 1000 — original is ~520).
func BenchmarkAblationReleaseStyle(b *testing.B) {
	tbl := repro.CensusMCD()
	res, err := tclose.Algorithm3(tbl, 5, 0.13)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("centroid", func(b *testing.B) {
		var sse, corr float64
		for i := 0; i < b.N; i++ {
			anon, err := micro.Aggregate(tbl, res.Clusters)
			if err != nil {
				b.Fatal(err)
			}
			s, err := metrics.NormalizedSSE(tbl, anon)
			if err != nil {
				b.Fatal(err)
			}
			c, err := anon.MaxQIConfidentialCorrelation()
			if err != nil {
				b.Fatal(err)
			}
			sse, corr = s, c
		}
		b.ReportMetric(sse*1e6, "sse-ppm")
		b.ReportMetric(corr*1e3, "corr-e3")
	})
	b.Run("anatomy", func(b *testing.B) {
		var sse, corr float64
		for i := 0; i < b.N; i++ {
			anon, err := micro.AnatomyRelease(tbl, res.Clusters, 1)
			if err != nil {
				b.Fatal(err)
			}
			s, err := metrics.NormalizedSSE(tbl, anon)
			if err != nil {
				b.Fatal(err)
			}
			c, err := anon.MaxQIConfidentialCorrelation()
			if err != nil {
				b.Fatal(err)
			}
			sse, corr = s, c
		}
		b.ReportMetric(sse*1e6, "sse-ppm")
		b.ReportMetric(corr*1e3, "corr-e3")
	})
}

// BenchmarkBaselineSABRE reproduces the paper's Section 3 comparison with
// SABRE: the greedy bucketization needs at least as large equivalence
// classes as Algorithm 3's analytic minimum, costing utility. Metrics:
// equivalence-class size and SSE.
func BenchmarkBaselineSABRE(b *testing.B) {
	tbl := repro.CensusMCD()
	for _, tl := range []float64{0.05, 0.13} {
		b.Run(fmt.Sprintf("sabre/t=%.2f", tl), func(b *testing.B) {
			var sse, ecs float64
			for i := 0; i < b.N; i++ {
				res, err := repro.Anonymize(tbl, repro.Config{
					Algorithm: repro.SABREBaseline, K: 2, T: tl, SkipAssessment: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sse, ecs = res.SSE, float64(res.EffectiveK)
			}
			b.ReportMetric(sse*1e6, "sse-ppm")
			b.ReportMetric(ecs, "ecsize")
		})
		b.Run(fmt.Sprintf("alg3/t=%.2f", tl), func(b *testing.B) {
			var sse, ecs float64
			for i := 0; i < b.N; i++ {
				res, err := repro.Anonymize(tbl, repro.Config{
					Algorithm: repro.TClosenessFirst, K: 2, T: tl, SkipAssessment: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sse, ecs = res.SSE, float64(res.EffectiveK)
			}
			b.ReportMetric(sse*1e6, "sse-ppm")
			b.ReportMetric(ecs, "ecsize")
		})
	}
}

// BenchmarkBaselineIncognito compares the classical full-domain
// generalization approach (Incognito-style lattice search with the
// t-closeness constraint) against Algorithm 3 — the paper's Section 4
// argument for microaggregation over generalization, quantified.
func BenchmarkBaselineIncognito(b *testing.B) {
	tbl := repro.CensusMCD()
	for _, alg := range []repro.Algorithm{repro.IncognitoBaseline, repro.TClosenessFirst} {
		b.Run(fmt.Sprintf("%v", alg), func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				res, err := repro.Anonymize(tbl, repro.Config{
					Algorithm: alg, K: 5, T: 0.17, SkipAssessment: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				sse = res.SSE
			}
			b.ReportMetric(sse*1e6, "sse-ppm")
		})
	}
}

// BenchmarkLinkageRisk measures the record-linkage disclosure risk of each
// algorithm's release at equal (k, t) — the other axis of the SDC
// risk/utility trade-off (rate scaled by 1e4; the 1/k ceiling at k=5 is
// 2000).
func BenchmarkLinkageRisk(b *testing.B) {
	tbl := repro.CensusMCD()
	algs := []repro.Algorithm{repro.Merge, repro.TClosenessFirst, repro.MondrianBaseline}
	for _, alg := range algs {
		b.Run(fmt.Sprintf("%v", alg), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := repro.Anonymize(tbl, repro.Config{
					Algorithm: alg, K: 5, T: 0.17, SkipAssessment: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				r, err := repro.LinkageRisk(tbl, res.Anonymized)
				if err != nil {
					b.Fatal(err)
				}
				rate = r
			}
			b.ReportMetric(rate*1e4, "linkage-e4")
		})
	}
}

// BenchmarkAblationUnivariateOptimal compares MDAV against the exact
// Hansen-Mukherjee dynamic program on a single quasi-identifier, bounding
// how much the multivariate heuristic loses to the 1-D optimum
// (within-cluster SSE of the partition, scaled by 1e3).
func BenchmarkAblationUnivariateOptimal(b *testing.B) {
	tbl := repro.CensusMCD()
	col := tbl.Column(0)
	points := make([][]float64, len(col))
	for i, v := range col {
		points[i] = []float64{v}
	}
	clusterSSE := func(clusters []micro.Cluster) float64 {
		total := 0.0
		for _, c := range clusters {
			var sum, sum2 float64
			for _, r := range c.Rows {
				sum += col[r]
				sum2 += col[r] * col[r]
			}
			total += sum2 - sum*sum/float64(len(c.Rows))
		}
		return total
	}
	b.Run("optimal-dp", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			clusters, err := micro.OptimalUnivariate(col, 5)
			if err != nil {
				b.Fatal(err)
			}
			sse = clusterSSE(clusters)
		}
		b.ReportMetric(sse/1e3, "sse-k")
	})
	b.Run("mdav", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			clusters, err := micro.MDAV(points, 5)
			if err != nil {
				b.Fatal(err)
			}
			sse = clusterSSE(clusters)
		}
		b.ReportMetric(sse/1e3, "sse-k")
	})
}
