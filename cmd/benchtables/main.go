// Command benchtables regenerates Tables 1-3 of the paper: the actual
// microaggregation level (minimum and average cluster size) achieved by each
// of the three algorithms on the MCD and HCD Census-like data sets, over the
// paper's grid k ∈ {2,5,10,15,20,25,30} × t ∈ {0.01,0.05,...,0.25}.
//
// Each cell is printed as "min/avg", exactly as the paper formats it. The
// absolute values depend on the synthetic data (see DESIGN.md §4), but the
// paper's qualitative findings are reproduced: cluster inflation grows as t
// shrinks and k grows, Algorithm 1 inflates most, Algorithm 2 much less, and
// Algorithm 3 stays at the Eq. (3) size with perfectly balanced clusters.
//
// Every (algorithm, dataset, k, t) cell is independent, so the whole grid is
// evaluated across -par worker goroutines before the tables are printed in
// order. All workers share one prepared core.Engine per data set: the
// substrate is built once, and the per-k partition caches (MDAV for
// Algorithm 1, the k'-keyed partitions of Algorithm 3) are reused across
// the t axis of the grid.
//
// Usage:
//
//	benchtables            # all three tables
//	benchtables -table 3   # only Table 3
//	benchtables -quick     # reduced grid (skips the slowest cells)
//	benchtables -par 4     # evaluate the grid on four workers
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/synth"
)

var (
	ks      = []int{2, 5, 10, 15, 20, 25, 30}
	ts      = []float64{0.01, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25}
	quickKs = []int{2, 10, 30}
	quickTs = []float64{0.01, 0.09, 0.25}
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-3); 0 means all")
	quick := flag.Bool("quick", false, "reduced grid for a fast run")
	parFlag := flag.Int("par", runtime.GOMAXPROCS(0), "worker goroutines for the grid cells")
	flag.Parse()

	kGrid, tGrid := ks, ts
	if *quick {
		kGrid, tGrid = quickKs, quickTs
	}
	mcd, err := core.NewEngine(synth.CensusMCD())
	if err != nil {
		log.Fatal(err)
	}
	hcd, err := core.NewEngine(synth.CensusHCD())
	if err != nil {
		log.Fatal(err)
	}
	algs := []struct {
		num int
		alg core.Algorithm
	}{
		{1, core.Merge},
		{2, core.KAnonymityFirst},
		{3, core.TClosenessFirst},
	}
	start := time.Now()
	for _, a := range algs {
		if *table != 0 && *table != a.num {
			continue
		}
		fmt.Printf("TABLE %d — Algorithm %d (%v): actual microaggregation (min/avg cluster size)\n",
			a.num, a.num, a.alg)
		printTable(a.alg, mcd, hcd, kGrid, tGrid, *parFlag)
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start).Round(time.Millisecond))
}

func printTable(alg core.Algorithm, mcd, hcd *core.Engine, kGrid []int, tGrid []float64, workers int) {
	type cellKey struct {
		eng *core.Engine
		k   int
		t   float64
	}
	var keys []cellKey
	for _, k := range kGrid {
		for _, tl := range tGrid {
			keys = append(keys, cellKey{mcd, k, tl}, cellKey{hcd, k, tl})
		}
	}
	results := make([]string, len(keys))
	par.Cells(len(keys), workers, func(i int) {
		results[i] = cell(alg, keys[i].eng, keys[i].k, keys[i].t)
	})

	w := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	defer w.Flush()
	fmt.Fprint(w, "\t")
	for _, tl := range tGrid {
		fmt.Fprintf(w, "t=%.2f\t\t", tl)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "\t")
	for range tGrid {
		fmt.Fprint(w, "MCD\tHCD\t")
	}
	fmt.Fprintln(w)
	i := 0
	for _, k := range kGrid {
		fmt.Fprintf(w, "k=%d\t", k)
		for range tGrid {
			fmt.Fprintf(w, "%s\t%s\t", results[i], results[i+1])
			i += 2
		}
		fmt.Fprintln(w)
	}
}

func cell(alg core.Algorithm, eng *core.Engine, k int, tl float64) string {
	res, err := eng.Run(context.Background(), core.Spec{
		Algorithm: alg, K: k, T: tl, SkipAssessment: true,
	})
	if err != nil {
		log.Fatalf("k=%d t=%v: %v", k, tl, err)
	}
	return fmt.Sprintf("%d/%.0f", res.Sizes.Min, res.Sizes.Avg)
}
