// Command doccheck is the documentation linter for the repo's narrative
// doc set: ARCHITECTURE.md, the repro.go package comment, and the command
// READMEs. Documentation drifts when code moves — a renamed symbol, a
// deleted file, a package that grew a new home — and prose has no
// compiler, so CI runs this instead.
//
// Three grep-based checks, deliberately simple:
//
//   - Symbol references: a backticked `pkg.Symbol` whose pkg is one of the
//     repo's package names (an internal/<pkg> directory, or "repro") must
//     name an identifier that actually occurs in that package's Go source.
//   - Path references: a backticked repo-relative path (contains a slash
//     or a well-known file name) must exist in the tree.
//   - Markdown links: the target of a relative [text](path) link must
//     exist, resolved against the linking file's directory.
//
// Exit status is non-zero when any reference is broken; each failure is
// reported as file:line so it is clickable in CI logs.
//
// Usage:
//
//	doccheck [-root .]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// checkedFiles is the doc set under contract. Paths are repo-relative.
var checkedFiles = []string{
	"ARCHITECTURE.md",
	"repro.go",
	"cmd/tcserved/README.md",
}

var (
	// `pkg.Symbol` or `pkg.Symbol(...)` inside backticks; the first segment
	// must look like a package name, the second like an exported identifier
	// (the uppercase requirement keeps file names like `repro.go` out).
	// Deeper selectors (`pkg.Type.Method`) check the first two segments.
	symbolRef = regexp.MustCompile("`([a-z][a-z0-9]*)\\.([A-Z][A-Za-z0-9_]*)")
	// Backticked repo paths: at least one slash, no spaces, made of path
	// characters. Trailing / marks a directory reference.
	pathRef = regexp.MustCompile("`([A-Za-z0-9_./-]+/[A-Za-z0-9_./*-]*)`")
	// Relative markdown links. Absolute URLs and intra-page anchors are out
	// of scope.
	mdLink = regexp.MustCompile(`\]\(([^)#][^)]*)\)`)
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	packages := knownPackages(*root)
	failures := 0
	fail := func(file string, line int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "%s:%d: %s\n", file, line, fmt.Sprintf(format, args...))
		failures++
	}

	for _, rel := range checkedFiles {
		path := filepath.Join(*root, rel)
		raw, err := os.ReadFile(path)
		if err != nil {
			fail(rel, 1, "checked file missing: %v", err)
			continue
		}
		for i, line := range strings.Split(string(raw), "\n") {
			ln := i + 1
			for _, m := range symbolRef.FindAllStringSubmatch(line, -1) {
				pkg, sym := m[1], m[2]
				dir, ok := packages[pkg]
				if !ok {
					continue // not a package reference (e.g. `json:"..."`)
				}
				if !packageMentions(dir, sym) {
					fail(rel, ln, "`%s.%s`: no identifier %q in %s", pkg, sym, sym, dir)
				}
			}
			for _, m := range pathRef.FindAllStringSubmatch(line, -1) {
				p := strings.TrimSuffix(m[1], "/")
				if strings.Contains(p, "*") || strings.HasPrefix(p, "http") {
					continue // glob illustrations and URLs are prose, not paths
				}
				if !pathExists(*root, p) {
					fail(rel, ln, "`%s`: no such file or directory", m[1])
				}
			}
			if strings.HasSuffix(rel, ".md") {
				for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
					target := m[1]
					if strings.Contains(target, "://") {
						continue
					}
					if i := strings.IndexByte(target, '#'); i >= 0 {
						target = target[:i]
					}
					resolved := filepath.Join(filepath.Dir(path), target)
					if _, err := os.Stat(resolved); err != nil {
						fail(rel, ln, "link target %q: %v", m[1], err)
					}
				}
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken reference(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("doccheck: doc set is consistent with the tree")
}

// knownPackages maps package names to their source directories: every
// internal/<name> directory plus the root "repro" facade.
func knownPackages(root string) map[string]string {
	pkgs := map[string]string{"repro": root}
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return pkgs
	}
	for _, e := range entries {
		if e.IsDir() {
			pkgs[e.Name()] = filepath.Join(root, "internal", e.Name())
		}
	}
	return pkgs
}

// packageMentions reports whether ident occurs as a word in any
// non-test Go file of dir. A word-boundary grep rather than a parse: it
// accepts any real occurrence (declaration or use) and still catches the
// drift that matters — symbols that no longer exist under that name.
func packageMentions(dir, ident string) bool {
	re := regexp.MustCompile(`\b` + regexp.QuoteMeta(ident) + `\b`)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return false
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		raw, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		if re.Match(raw) {
			return true
		}
	}
	return false
}

// pathExists resolves a doc path against the repo root, tolerating the
// `cmd/foo` package-path style (a directory) as well as explicit files.
func pathExists(root, p string) bool {
	_, err := os.Stat(filepath.Join(root, p))
	return err == nil
}
