// Command benchfigs regenerates the series behind the paper's evaluation
// figures:
//
//   - Figure 5: run time (seconds, log10 in the paper) of the three
//     algorithms on the Patient Discharge data set, k=2, t ∈ [0.02, 0.25].
//   - Figure 6: normalized SSE of the three algorithms at k=2 over the same
//     t range, for the HCD, MCD and Patient Discharge data sets.
//   - Figure 7: normalized SSE surface over k ∈ [2,30] × t ∈ [0.02,0.25]
//     for the MCD data set, one surface per algorithm.
//
// Output is tab-separated series (one row per grid point) ready for any
// plotting tool. Absolute run times depend on the machine and the synthetic
// data size; the paper's claims live in the curve shapes (see
// EXPERIMENTS.md).
//
// Usage:
//
//	benchfigs -fig 5 -n 2000   # figure 5 with a 2,000-record PD sample
//	benchfigs                  # all figures with defaults
//	benchfigs -fig 5 -n 23435  # the paper's full-size run (slow: Alg 2 is O(n³/k))
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/synth"
)

var figTs = []float64{0.02, 0.04, 0.06, 0.09, 0.13, 0.17, 0.21, 0.25}

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (5-7); 0 means all")
	n := flag.Int("n", 2000, "Patient Discharge sample size for figures 5 and 6")
	skipAlg2 := flag.Bool("skip-alg2", false, "omit Algorithm 2 (useful at large -n)")
	flag.Parse()

	if *fig == 0 || *fig == 5 {
		figure5(*n, *skipAlg2)
	}
	if *fig == 0 || *fig == 6 {
		figure6(*n, *skipAlg2)
	}
	if *fig == 0 || *fig == 7 {
		figure7()
	}
}

func algorithms(skipAlg2 bool) []core.Algorithm {
	if skipAlg2 {
		return []core.Algorithm{core.Merge, core.TClosenessFirst}
	}
	return []core.Algorithm{core.Merge, core.KAnonymityFirst, core.TClosenessFirst}
}

func anonymize(tbl *dataset.Table, alg core.Algorithm, k int, tl float64) *core.Result {
	res, err := core.Anonymize(tbl, core.Config{
		Algorithm: alg, K: k, T: tl, SkipAssessment: true,
	})
	if err != nil {
		log.Fatalf("%v k=%d t=%v: %v", alg, k, tl, err)
	}
	return res
}

// figure5 prints run time (seconds) vs t for each algorithm on the Patient
// Discharge data set with k=2.
func figure5(n int, skipAlg2 bool) {
	fmt.Printf("FIGURE 5 — run time (s) vs t, Patient Discharge (n=%d), k=2\n", n)
	fmt.Println("t\talgorithm\tseconds")
	tbl := synth.PatientDischarge(n, synth.DefaultSeed)
	for _, tl := range figTs {
		for _, alg := range algorithms(skipAlg2) {
			start := time.Now()
			anonymize(tbl, alg, 2, tl)
			fmt.Printf("%.2f\t%v\t%.4f\n", tl, alg, time.Since(start).Seconds())
		}
	}
	fmt.Println()
}

// figure6 prints normalized SSE vs t at k=2 for the three data sets.
func figure6(n int, skipAlg2 bool) {
	sets := []struct {
		name string
		tbl  *dataset.Table
	}{
		{"HCD", synth.CensusHCD()},
		{"MCD", synth.CensusMCD()},
		{"PatientDischarge", synth.PatientDischarge(n, synth.DefaultSeed)},
	}
	fmt.Println("FIGURE 6 — normalized SSE vs t, k=2")
	fmt.Println("dataset\tt\talgorithm\tSSE")
	for _, ds := range sets {
		for _, tl := range figTs {
			for _, alg := range algorithms(skipAlg2) {
				res := anonymize(ds.tbl, alg, 2, tl)
				fmt.Printf("%s\t%.2f\t%v\t%.6f\n", ds.name, tl, alg, res.SSE)
			}
		}
	}
	fmt.Println()
}

// figure7 prints the normalized SSE surface over (k, t) on MCD.
func figure7() {
	fmt.Println("FIGURE 7 — normalized SSE over (k, t), MCD")
	fmt.Println("k\tt\talgorithm\tSSE")
	tbl := synth.CensusMCD()
	start := time.Now()
	for _, k := range []int{2, 6, 10, 14, 18, 22, 26, 30} {
		for _, tl := range figTs {
			for _, alg := range []core.Algorithm{core.Merge, core.KAnonymityFirst, core.TClosenessFirst} {
				res := anonymize(tbl, alg, k, tl)
				fmt.Printf("%d\t%.2f\t%v\t%.6f\n", k, tl, alg, res.SSE)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "figure 7 time: %v\n", time.Since(start).Round(time.Millisecond))
}
