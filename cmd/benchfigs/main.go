// Command benchfigs regenerates the series behind the paper's evaluation
// figures:
//
//   - Figure 5: run time (seconds, log10 in the paper) of the three
//     algorithms on the Patient Discharge data set, k=2, t ∈ [0.02, 0.25].
//   - Figure 6: normalized SSE of the three algorithms at k=2 over the same
//     t range, for the HCD, MCD and Patient Discharge data sets.
//   - Figure 7: normalized SSE surface over k ∈ [2,30] × t ∈ [0.02,0.25]
//     for the MCD data set, one surface per algorithm.
//
// Output is tab-separated series (one row per grid point) ready for any
// plotting tool. Absolute run times depend on the machine and the synthetic
// data size; the paper's claims live in the curve shapes (see
// EXPERIMENTS.md).
//
// Figures 6 and 7 evaluate independent (dataset, k, t) cells, so the grid
// fans out across -par worker goroutines (rows are still printed in grid
// order); all workers share one prepared core.Engine per data set, whose
// substrate and per-k partition caches are concurrency-safe. Figure 5
// measures per-cell wall time and therefore always runs sequentially, each
// cell on a freshly prepared engine so the timing covers the algorithm with
// cold caches — concurrent or cache-warm cells would corrupt the datum.
//
// Usage:
//
//	benchfigs -fig 5 -n 2000   # figure 5 with a 2,000-record PD sample
//	benchfigs                  # all figures with defaults
//	benchfigs -fig 5 -n 23435  # the paper's full-size run
//	benchfigs -fig 7 -par 4    # figure 7 on four workers
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/synth"
)

var figTs = []float64{0.02, 0.04, 0.06, 0.09, 0.13, 0.17, 0.21, 0.25}

var workers = flag.Int("par", runtime.GOMAXPROCS(0),
	"worker goroutines for the figure 6/7 grid cells")

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (5-7); 0 means all")
	n := flag.Int("n", 2000, "Patient Discharge sample size for figures 5 and 6")
	skipAlg2 := flag.Bool("skip-alg2", false, "omit Algorithm 2 (useful at large -n)")
	flag.Parse()

	if *fig == 0 || *fig == 5 {
		figure5(*n, *skipAlg2)
	}
	if *fig == 0 || *fig == 6 {
		figure6(*n, *skipAlg2)
	}
	if *fig == 0 || *fig == 7 {
		figure7()
	}
}

func algorithms(skipAlg2 bool) []core.Algorithm {
	if skipAlg2 {
		return []core.Algorithm{core.Merge, core.TClosenessFirst}
	}
	return []core.Algorithm{core.Merge, core.KAnonymityFirst, core.TClosenessFirst}
}

func newEngine(tbl *dataset.Table) *core.Engine {
	eng, err := core.NewEngine(tbl)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

func anonymize(eng *core.Engine, alg core.Algorithm, k int, tl float64) *core.Result {
	res, err := eng.Run(context.Background(), core.Spec{
		Algorithm: alg, K: k, T: tl, SkipAssessment: true,
	})
	if err != nil {
		log.Fatalf("%v k=%d t=%v: %v", alg, k, tl, err)
	}
	return res
}

// runCells evaluates n independent grid cells on the -par workers.
func runCells(n int, cell func(i int)) {
	par.Cells(n, *workers, cell)
}

// figure5 prints run time (seconds) vs t for each algorithm on the Patient
// Discharge data set with k=2. Cells run sequentially: each one's wall time
// is the datum.
func figure5(n int, skipAlg2 bool) {
	fmt.Printf("FIGURE 5 — run time (s) vs t, Patient Discharge (n=%d), k=2\n", n)
	fmt.Println("t\talgorithm\tseconds")
	tbl := synth.PatientDischarge(n, synth.DefaultSeed)
	for _, tl := range figTs {
		for _, alg := range algorithms(skipAlg2) {
			eng := newEngine(tbl) // fresh caches; preparation is untimed
			start := time.Now()
			anonymize(eng, alg, 2, tl)
			fmt.Printf("%.2f\t%v\t%.4f\n", tl, alg, time.Since(start).Seconds())
		}
	}
	fmt.Println()
}

// figure6 prints normalized SSE vs t at k=2 for the three data sets.
func figure6(n int, skipAlg2 bool) {
	sets := []struct {
		name string
		tbl  *dataset.Table
	}{
		{"HCD", synth.CensusHCD()},
		{"MCD", synth.CensusMCD()},
		{"PatientDischarge", synth.PatientDischarge(n, synth.DefaultSeed)},
	}
	algs := algorithms(skipAlg2)
	fmt.Println("FIGURE 6 — normalized SSE vs t, k=2")
	fmt.Println("dataset\tt\talgorithm\tSSE")
	type cell struct {
		ds  int
		t   float64
		alg core.Algorithm
	}
	var cells []cell
	for ds := range sets {
		for _, tl := range figTs {
			for _, alg := range algs {
				cells = append(cells, cell{ds, tl, alg})
			}
		}
	}
	engines := make([]*core.Engine, len(sets))
	for i := range sets {
		engines[i] = newEngine(sets[i].tbl)
	}
	sse := make([]float64, len(cells))
	runCells(len(cells), func(i int) {
		c := cells[i]
		sse[i] = anonymize(engines[c.ds], c.alg, 2, c.t).SSE
	})
	for i, c := range cells {
		fmt.Printf("%s\t%.2f\t%v\t%.6f\n", sets[c.ds].name, c.t, c.alg, sse[i])
	}
	fmt.Println()
}

// figure7 prints the normalized SSE surface over (k, t) on MCD.
func figure7() {
	fmt.Println("FIGURE 7 — normalized SSE over (k, t), MCD")
	fmt.Println("k\tt\talgorithm\tSSE")
	eng := newEngine(synth.CensusMCD())
	start := time.Now()
	algs := []core.Algorithm{core.Merge, core.KAnonymityFirst, core.TClosenessFirst}
	type cell struct {
		k   int
		t   float64
		alg core.Algorithm
	}
	var cells []cell
	for _, k := range []int{2, 6, 10, 14, 18, 22, 26, 30} {
		for _, tl := range figTs {
			for _, alg := range algs {
				cells = append(cells, cell{k, tl, alg})
			}
		}
	}
	sse := make([]float64, len(cells))
	runCells(len(cells), func(i int) {
		c := cells[i]
		sse[i] = anonymize(eng, c.alg, c.k, c.t).SSE
	})
	for i, c := range cells {
		fmt.Printf("%d\t%.2f\t%v\t%.6f\n", c.k, c.t, c.alg, sse[i])
	}
	fmt.Fprintf(os.Stderr, "figure 7 time: %v\n", time.Since(start).Round(time.Millisecond))
}
