package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestLoadTableDemos(t *testing.T) {
	cases := map[string]int{
		"census-mcd": 1080,
		"census-hcd": 1080,
		"patients":   77,
	}
	for demo, want := range cases {
		tbl, err := loadTable("", demo, 77)
		if err != nil {
			t.Fatalf("%s: %v", demo, err)
		}
		if tbl.Len() != want {
			t.Errorf("%s: %d records, want %d", demo, tbl.Len(), want)
		}
	}
}

func TestLoadTableErrors(t *testing.T) {
	if _, err := loadTable("", "", 0); err == nil {
		t.Error("neither -in nor -demo should fail")
	}
	if _, err := loadTable("x.csv", "patients", 10); err == nil {
		t.Error("both -in and -demo should fail")
	}
	if _, err := loadTable("", "bogus", 10); err == nil {
		t.Error("unknown demo should fail")
	}
	if _, err := loadTable("/nonexistent/file.csv", "", 0); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadTableFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.csv")
	src := repro.PatientDischarge(25, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tbl, err := loadTable(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 25 {
		t.Errorf("loaded %d records, want 25", tbl.Len())
	}
}
