// Command tcm (t-closeness microaggregation) anonymizes a microdata CSV
// file with one of the paper's algorithms.
//
// The input must be in the library's self-describing CSV format: a header
// row of attribute names followed by a row of "role:kind" descriptors (e.g.
// "quasi-identifier:numeric", "confidential:numeric", "identifier:
// categorical") and then one record per row. The anonymized table is written
// to -out (or stdout) and a report of the achieved privacy and utility is
// printed to stderr.
//
// Usage:
//
//	tcm -in data.csv -out anon.csv -alg 3 -k 5 -t 0.15
//	tcm -demo census-mcd -alg 1 -k 2 -t 0.1 -out anon.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcm:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input CSV file (two-header format)")
	demo := flag.String("demo", "", "use a built-in synthetic data set instead of -in: census-mcd, census-hcd, or patients")
	out := flag.String("out", "", "output CSV file (default stdout)")
	algName := flag.String("alg", "3", "algorithm: 1 (merge), 2 (kanon-first), 3 (tclose-first), mondrian, sabre, or incognito")
	k := flag.Int("k", 5, "k-anonymity parameter")
	t := flag.Float64("t", 0.15, "t-closeness parameter (EMD bound)")
	n := flag.Int("n", 5000, "record count for -demo patients")
	flag.Parse()

	table, err := loadTable(*in, *demo, *n)
	if err != nil {
		return err
	}
	alg, err := repro.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	// ^C cancels the run cooperatively instead of killing it mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng, err := repro.New(table)
	if err != nil {
		return err
	}
	res, err := eng.Run(ctx, repro.Spec{Algorithm: alg, K: *k, T: *t})
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := res.Anonymized.WriteCSV(w); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "algorithm:        %v\n", alg)
	fmt.Fprintf(os.Stderr, "records:          %d\n", table.Len())
	fmt.Fprintf(os.Stderr, "clusters:         %d (min %d / avg %.1f / max %d)\n",
		len(res.Clusters), res.Sizes.Min, res.Sizes.Avg, res.Sizes.Max)
	fmt.Fprintf(os.Stderr, "effective k:      %d (requested %d)\n", res.EffectiveK, *k)
	fmt.Fprintf(os.Stderr, "achieved t:       %.4f (requested %.4f)\n", res.MaxEMD, *t)
	fmt.Fprintf(os.Stderr, "k-anonymity:      %d\n", res.Privacy.KAnonymity)
	fmt.Fprintf(os.Stderr, "l-diversity:      %d\n", res.Privacy.LDiversity)
	fmt.Fprintf(os.Stderr, "normalized SSE:   %.5f\n", res.SSE)
	fmt.Fprintf(os.Stderr, "elapsed:          %v\n", res.Elapsed)
	return nil
}

func loadTable(in, demo string, n int) (*repro.Table, error) {
	switch {
	case in != "" && demo != "":
		return nil, fmt.Errorf("use either -in or -demo, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return repro.ReadCSV(f)
	case demo == "census-mcd":
		return repro.CensusMCD(), nil
	case demo == "census-hcd":
		return repro.CensusHCD(), nil
	case demo == "patients":
		return repro.PatientDischarge(n, 20160314), nil
	case demo != "":
		return nil, fmt.Errorf("unknown demo data set %q", demo)
	default:
		return nil, fmt.Errorf("missing -in or -demo")
	}
}
