// Command benchjson measures the BenchmarkFigure5 grid — the run time of
// the three algorithms on the Patient Discharge data set at k=2 — and emits
// the per-cell timings as JSON, giving the repository a machine-readable
// performance trajectory across PRs (BENCH_1.json, BENCH_2.json, ...).
//
// Alongside the classic from-scratch grid it measures the delta-append
// family: the cost of re-anonymizing after a 1% append, cold (variant
// "delta-cold": a fresh engine over the appended table) versus warm
// (variant "delta-warm": a warm-seeded engine repairing its previous
// partition, see core.Spec.Warm). The pair documents the warm-start
// speedup as part of the same evidence trajectory.
//
// The sharded family (variants "sharded-w1" ... "sharded-w8") times
// KAnonymityFirst under sharded partition construction (core.Spec.Sharded)
// at worker budgets 1/2/4/8, recording the scaling curve of concurrent
// cluster construction. The curve falls even on a single-core host — the
// cluster loop is superlinear in pool size, so W shards of n/W rows cost
// less in total than one n-row pool (divide-and-conquer), on top of
// whatever true parallelism the cores provide; w1 delegates to the serial
// algorithm and documents the mode's overhead floor.
//
// Each measured run goes through a freshly prepared core.Engine whose
// substrate preparation happens outside the timed region: a cell times the
// algorithm itself, with cold partition caches, so the trajectory stays
// comparable across PRs (a shared engine would let the per-k partition
// caches absorb most of the later cells). Cells are measured sequentially
// (concurrency would contend for cores and corrupt the timings); each cell
// is run -reps times and the minimum wall time is reported, the standard
// way to suppress scheduler noise.
//
// Usage:
//
//	benchjson                      # n=1500 grid to stdout
//	benchjson -o BENCH_1.json      # write the evidence file
//	benchjson -n 23435 -reps 1     # full-size Patient Discharge only
//	benchjson -full -o BENCH_2.json  # n=1500 AND full-size cells
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/synth"
)

// Cell is one measured grid point. N is the sample size the cell was
// measured at (reports written before the -full flag existed omit it; it
// then defaults to the report-level N). The algorithm serializes as its
// canonical name via core.Algorithm's encoding.TextMarshaler. Variant is
// empty for the classic from-scratch grid; the delta-append family labels
// its cells "delta-cold" and "delta-warm", the sharded family
// "sharded-w<workers>" (reports written before a family existed simply
// have no cells with its variants).
type Cell struct {
	Algorithm core.Algorithm `json:"algorithm"`
	K         int            `json:"k"`
	T         float64        `json:"t"`
	N         int            `json:"n,omitempty"`
	Variant   string         `json:"variant,omitempty"`
	NsOp      int64          `json:"ns_op"`
	Seconds   float64        `json:"seconds"`
}

// Report is the emitted document.
type Report struct {
	Benchmark string `json:"benchmark"`
	Dataset   string `json:"dataset"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	Reps      int    `json:"reps"`
	GoVersion string `json:"go_version"`
	Note      string `json:"note,omitempty"`
	Cells     []Cell `json:"cells"`
}

func main() {
	n := flag.Int("n", 1500, "Patient Discharge sample size (1500 matches BenchmarkFigure5)")
	full := flag.Bool("full", false,
		fmt.Sprintf("additionally measure the full-size n=%d grid", synth.PatientDischargeSize))
	reps := flag.Int("reps", 3, "runs per cell; the minimum is reported")
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the report (e.g. baseline comparison)")
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}

	sizes := []int{*n}
	if *full && *n != synth.PatientDischargeSize {
		sizes = append(sizes, synth.PatientDischargeSize)
	}
	algs := []core.Algorithm{core.Merge, core.KAnonymityFirst, core.TClosenessFirst}
	ts := []float64{0.05, 0.13, 0.25} // the BenchmarkFigure5 subsample of the paper's t range
	rep := Report{
		Benchmark: "BenchmarkFigure5",
		Dataset:   "PatientDischarge",
		N:         *n,
		Seed:      synth.DefaultSeed,
		Reps:      *reps,
		GoVersion: runtime.Version(),
		Note:      *note,
	}
	ctx := context.Background()
	for _, size := range sizes {
		tbl := synth.PatientDischarge(size, synth.DefaultSeed)
		for _, alg := range algs {
			for _, tl := range ts {
				best := time.Duration(0)
				for r := 0; r < *reps; r++ {
					eng, err := core.NewEngine(tbl)
					if err != nil {
						log.Fatalf("n=%d: %v", size, err)
					}
					start := time.Now()
					if _, err := eng.Run(ctx, core.Spec{
						Algorithm: alg, K: 2, T: tl, SkipAssessment: true,
					}); err != nil {
						log.Fatalf("%v n=%d t=%v: %v", alg, size, tl, err)
					}
					if d := time.Since(start); best == 0 || d < best {
						best = d
					}
				}
				rep.Cells = append(rep.Cells, Cell{
					Algorithm: alg,
					K:         2,
					T:         tl,
					N:         size,
					NsOp:      best.Nanoseconds(),
					Seconds:   best.Seconds(),
				})
				fmt.Fprintf(os.Stderr, "%v n=%d t=%.2f: %v\n", alg, size, tl, best.Round(time.Microsecond))
			}
		}
	}
	// Delta-append family: re-anonymization cost after a 1% append, at the
	// grid's middle t. Each rep is measured on a fresh engine so warm cells
	// always time the epoch-0 -> epoch-1 repair (a second warm run on the
	// same engine would hit the already-advanced seed and measure nothing).
	const deltaT = 0.13
	for _, size := range sizes {
		delta := size / 100
		if delta < 1 {
			delta = 1
		}
		tbl := synth.PatientDischarge(size, synth.DefaultSeed)
		prefix := make([]int, size-delta)
		for i := range prefix {
			prefix[i] = i
		}
		baseTbl, err := tbl.Subset(prefix)
		if err != nil {
			log.Fatalf("n=%d: %v", size, err)
		}
		tail := make([][]any, 0, delta)
		for r := size - delta; r < size; r++ {
			row := make([]any, tbl.Width())
			for c := 0; c < tbl.Width(); c++ {
				row[c] = tbl.Value(r, c)
			}
			tail = append(tail, row)
		}
		for _, alg := range algs {
			for _, variant := range []string{"delta-cold", "delta-warm"} {
				warm := variant == "delta-warm"
				spec := core.Spec{Algorithm: alg, K: 2, T: deltaT, SkipAssessment: true, Warm: warm}
				best := time.Duration(0)
				for r := 0; r < *reps; r++ {
					eng, err := core.NewEngine(baseTbl)
					if err != nil {
						log.Fatalf("n=%d: %v", size, err)
					}
					if warm {
						// Seed run over the 99% base, outside the timed region.
						if _, err := eng.Run(ctx, spec); err != nil {
							log.Fatalf("%v n=%d %s seed: %v", alg, size, variant, err)
						}
					}
					if err := eng.Append(tail...); err != nil {
						log.Fatalf("n=%d append: %v", size, err)
					}
					start := time.Now()
					if _, err := eng.Run(ctx, spec); err != nil {
						log.Fatalf("%v n=%d %s: %v", alg, size, variant, err)
					}
					if d := time.Since(start); best == 0 || d < best {
						best = d
					}
				}
				rep.Cells = append(rep.Cells, Cell{
					Algorithm: alg,
					K:         2,
					T:         deltaT,
					N:         size,
					Variant:   variant,
					NsOp:      best.Nanoseconds(),
					Seconds:   best.Seconds(),
				})
				fmt.Fprintf(os.Stderr, "%v n=%d t=%.2f %s: %v\n", alg, size, deltaT, variant, best.Round(time.Microsecond))
			}
		}
	}
	// Sharded family: concurrent cluster construction at a sweep of worker
	// budgets, at the grid's middle t. Each rep gets a fresh engine (cold
	// caches, same discipline as every other family); the worker budget is
	// engine-scoped, so each budget is its own engine configuration.
	const shardedT = 0.13
	for _, size := range sizes {
		tbl := synth.PatientDischarge(size, synth.DefaultSeed)
		for _, w := range []int{1, 2, 4, 8} {
			spec := core.Spec{Algorithm: core.KAnonymityFirst, K: 2, T: shardedT,
				SkipAssessment: true, Sharded: true}
			best := time.Duration(0)
			for r := 0; r < *reps; r++ {
				eng, err := core.NewEngine(tbl, core.WithWorkers(w))
				if err != nil {
					log.Fatalf("n=%d: %v", size, err)
				}
				start := time.Now()
				if _, err := eng.Run(ctx, spec); err != nil {
					log.Fatalf("%v n=%d sharded w=%d: %v", spec.Algorithm, size, w, err)
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
			}
			variant := fmt.Sprintf("sharded-w%d", w)
			rep.Cells = append(rep.Cells, Cell{
				Algorithm: spec.Algorithm,
				K:         2,
				T:         shardedT,
				N:         size,
				Variant:   variant,
				NsOp:      best.Nanoseconds(),
				Seconds:   best.Seconds(),
			})
			fmt.Fprintf(os.Stderr, "%v n=%d t=%.2f %s: %v\n",
				spec.Algorithm, size, shardedT, variant, best.Round(time.Microsecond))
		}
	}
	// Store family (-full only): the storage layer's two headline costs on a
	// million-row Patient Discharge table — streaming CSV ingest into the
	// embedded columnar store under the default memory budget ("ingest-1M"),
	// reopening the committed file without re-decoding CSV ("reopen-1M"),
	// and the out-of-core engine open ("open-stream-1M" wall time plus
	// "open-stream-1M-peak" sampled peak heap). The CSV is written once
	// outside the timed region; each ingest rep streams it into a fresh
	// backend directory, and each reopen/open rep goes through a fresh
	// backend over the last ingested file so no in-process cache flatters
	// the number.
	if *full {
		const storeRows = 1_000_000
		storeCells, err := measureStore(storeRows, *reps)
		if err != nil {
			log.Fatalf("store family: %v", err)
		}
		rep.Cells = append(rep.Cells, storeCells...)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// measureStore times the ingest-1M, reopen-1M and open-stream-1M cells.
// The cells carry the grid's canonical (algorithm, k, t) point purely as
// a stable cell key — no anonymization runs; only the store is timed.
// The open-stream-1M-peak cell abuses the schema on purpose: ns_op holds
// the sampled peak heap in bytes (seconds mirrors it in MiB), recording
// the out-of-core contract — peak tracks substrate plus chunk budget,
// never a second full copy of the raw table — in the same evidence
// trajectory as the timings.
func measureStore(rows, reps int) ([]Cell, error) {
	scratch, err := os.MkdirTemp("", "benchjson-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	csvPath := filepath.Join(scratch, "patients.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := synth.PatientDischarge(rows, synth.DefaultSeed).WriteCSV(w); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	var lastDir string
	bestIngest := time.Duration(0)
	for r := 0; r < reps; r++ {
		dir := filepath.Join(scratch, fmt.Sprintf("ingest-%d", r))
		b, err := store.NewFileBackend(dir)
		if err != nil {
			return nil, err
		}
		src, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := store.IngestCSV(b, "patients", bufio.NewReaderSize(src, 1<<20), store.DefaultIngestBudget); err != nil {
			return nil, err
		}
		d := time.Since(start)
		src.Close()
		b.Close()
		if bestIngest == 0 || d < bestIngest {
			bestIngest = d
		}
		lastDir = dir
	}

	bestReopen := time.Duration(0)
	for r := 0; r < reps; r++ {
		b, err := store.NewFileBackend(lastDir)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		tbl, _, err := b.Open("patients")
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		if tbl.Len() != rows {
			return nil, fmt.Errorf("reopen materialized %d rows, want %d", tbl.Len(), rows)
		}
		b.Close()
		if bestReopen == 0 || d < bestReopen {
			bestReopen = d
		}
	}

	// Streaming engine open over the same committed file: wall time plus
	// sampled peak heap. GOGC is pinned low so the sampler reads live bytes
	// rather than collector headroom; the minimum peak across reps is
	// reported (GC scheduling noise only ever inflates a sample).
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	bestStream := time.Duration(0)
	var peakBytes uint64
	for r := 0; r < reps; r++ {
		b, err := store.NewFileBackend(lastDir)
		if err != nil {
			return nil, err
		}
		runtime.GC()
		var peak atomic.Uint64
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peak.Load() {
						peak.Store(ms.HeapAlloc)
					}
				}
			}
		}()
		start := time.Now()
		eng, err := core.OpenStreaming(b, "patients", core.DefaultOpenBudget)
		d := time.Since(start)
		close(stop)
		<-done
		if err != nil {
			return nil, err
		}
		if eng.Len() != rows {
			return nil, fmt.Errorf("streaming open built %d rows, want %d", eng.Len(), rows)
		}
		b.Close()
		if bestStream == 0 || d < bestStream {
			bestStream = d
		}
		if p := peak.Load(); peakBytes == 0 || p < peakBytes {
			peakBytes = p
		}
	}

	cells := make([]Cell, 0, 4)
	for _, c := range []struct {
		variant string
		best    time.Duration
	}{{"ingest-1M", bestIngest}, {"reopen-1M", bestReopen}, {"open-stream-1M", bestStream}} {
		cells = append(cells, Cell{
			Algorithm: core.Merge, K: 2, T: 0.13, N: rows,
			Variant: c.variant, NsOp: c.best.Nanoseconds(), Seconds: c.best.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "store n=%d %s: %v\n", rows, c.variant, c.best.Round(time.Microsecond))
	}
	cells = append(cells, Cell{
		Algorithm: core.Merge, K: 2, T: 0.13, N: rows,
		Variant: "open-stream-1M-peak",
		NsOp:    int64(peakBytes), Seconds: float64(peakBytes) / (1 << 20),
	})
	fmt.Fprintf(os.Stderr, "store n=%d open-stream-1M-peak: %d MiB\n", rows, peakBytes>>20)
	return cells, nil
}
