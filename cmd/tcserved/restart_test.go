package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTCServed compiles the real binary once per test.
func buildTCServed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tcserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building tcserved: %v", err)
	}
	return bin
}

// startTCServed launches the binary and waits for its address line.
func startTCServed(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	scanner := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "tcserved listening on ") {
				lineCh <- strings.TrimPrefix(line, "tcserved listening on ")
				return
			}
		}
		close(lineCh)
	}()
	select {
	case addr, ok := <-lineCh:
		if !ok {
			t.Fatal("server exited before announcing its address")
		}
		return cmd, "http://" + strings.TrimSpace(addr)
	case <-time.After(30 * time.Second):
		t.Fatal("server did not announce its address in 30s")
		return nil, ""
	}
}

// clinicCSV builds a small mixed-schema dataset upload: numeric and
// categorical quasi-identifiers plus a categorical confidential column,
// so the restart round-trips dictionaries, not just numbers.
func clinicCSV(n int) string {
	var b strings.Builder
	b.WriteString("age,zip,city,disease\n")
	b.WriteString("quasi-identifier:numeric,quasi-identifier:numeric,quasi-identifier:categorical,confidential:categorical\n")
	cities := []string{"oslo", "bergen", "tromso", "stavanger"}
	diseases := []string{"flu", "cold", "asthma"}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d,%s,%s\n",
			20+rng.Intn(60), 90000+rng.Intn(400),
			cities[rng.Intn(len(cities))], diseases[rng.Intn(len(diseases))])
	}
	return b.String()
}

// runJobRelease submits one anonymization job and returns its release CSV.
func runJobRelease(t *testing.T, base string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"dataset": "clinic", "algorithm": "alg3", "k": 4, "t": 0.3,
	})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, sub)
	}
	id := sub["id"].(float64)
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + fmt.Sprintf("/v1/jobs/%.0f", id))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		switch doc["state"] {
		case "done":
			res, err := http.Get(base + fmt.Sprintf("/v1/jobs/%.0f/result", id))
			if err != nil {
				t.Fatal(err)
			}
			var out map[string]any
			_ = json.NewDecoder(res.Body).Decode(&out)
			res.Body.Close()
			release, _ := out["release_csv"].(string)
			if release == "" {
				t.Fatal("job result carries no release CSV")
			}
			return release
		case "failed", "canceled":
			t.Fatalf("job finished %v: %v", doc["state"], doc["error"])
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("job did not finish before deadline")
	return ""
}

// listDatasets fetches GET /v1/datasets and strips the volatile "created"
// timestamps so snapshots before and after a restart compare directly.
func listDatasets(t *testing.T, base string) []map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Datasets []map[string]any `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, d := range doc.Datasets {
		delete(d, "created")
	}
	return doc.Datasets
}

// TestRestartRecovery is the kill-and-reopen conformance check for
// -data-dir: register a dataset over HTTP, advance it through append and
// delete epochs, record the dataset listing and one job release, SIGKILL
// the process (no drain, no flush beyond the per-epoch fsync), restart it
// over the same directory, and require the same datasets at the same
// epochs with identical table hashes and a byte-identical release. The
// restored server must also keep accepting durable epochs, and a synth
// dataset restored from disk must not be re-preloaded.
func TestRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level restart test; skipped in -short")
	}
	bin := buildTCServed(t)
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-preload", "patients", "-workers", "2", "-grace", "10s"}

	cmd, base := startTCServed(t, bin, args...)

	// Register over HTTP (persisted snapshot), then advance two epochs.
	resp, err := http.Post(base+"/v1/datasets?name=clinic", "text/csv", strings.NewReader(clinicCSV(80)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	appendBody, _ := json.Marshal(map[string]any{"rows": [][]any{
		{33, 90100, "kirkenes", "flu"}, // brand-new dictionary label
		{58, 90200, "oslo", "asthma"},
	}})
	resp, err = http.Post(base+"/v1/datasets/clinic/rows", "application/json", bytes.NewReader(appendBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d", resp.StatusCode)
	}
	delBody, _ := json.Marshal(map[string]any{"rows": []int{3, 17, 40}})
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/datasets/clinic/rows", bytes.NewReader(delBody))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}

	before := listDatasets(t, base)
	if len(before) != 2 { // clinic + preloaded patients
		t.Fatalf("listed %d datasets before kill, want 2", len(before))
	}
	releaseBefore := runJobRelease(t, base)

	// Hard kill: SIGKILL, nothing gets to drain or flush.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	// Restart over the same directory, same preload flag.
	_, base2 := startTCServed(t, bin, args...)
	after := listDatasets(t, base2)
	if got, want := mustJSON(t, after), mustJSON(t, before); got != want {
		t.Fatalf("dataset listing changed across restart:\nbefore: %s\nafter:  %s", want, got)
	}
	if got := runJobRelease(t, base2); got != releaseBefore {
		t.Fatal("job release after restart is not byte-identical")
	}

	// The restored clinic keeps taking durable epochs where it left off.
	resp, err = http.Post(base2+"/v1/datasets/clinic/rows", "application/json", bytes.NewReader(appendBody))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append after restart: %d (%v)", resp.StatusCode, doc)
	}
	if epoch, _ := doc["epoch"].(float64); epoch != 3 {
		t.Fatalf("epoch after post-restart append: %v, want 3", doc["epoch"])
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
