package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmoke is the end-to-end service check CI runs: build the real
// binary, start it, register the census dataset, submit one 2-QI census
// anonymization job, poll it to completion, fetch the release, assert
// /healthz is 200, then SIGTERM and require a clean (exit 0) drain.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke test; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "tcserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building tcserved: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-preload", "census-mcd", "-grace", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// The server prints "tcserved listening on <addr>" once the listener
	// is up; parse the chosen port from it.
	var base string
	scanner := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "tcserved listening on ") {
				lineCh <- strings.TrimPrefix(line, "tcserved listening on ")
				return
			}
		}
		close(lineCh)
	}()
	select {
	case addr, ok := <-lineCh:
		if !ok {
			t.Fatal("server exited before announcing its address")
		}
		base = "http://" + strings.TrimSpace(addr)
	case <-time.After(30 * time.Second):
		t.Fatal("server did not announce its address in 30s")
	}

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&doc)
		return resp.StatusCode, doc
	}

	// Submit one census-2QI job against the preloaded dataset.
	body, _ := json.Marshal(map[string]any{
		"dataset": "census-mcd", "algorithm": "alg3", "k": 5, "t": 0.15,
	})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, sub)
	}
	id := sub["id"].(float64)

	// Poll to completion.
	deadline := time.Now().Add(2 * time.Minute)
	var state string
	for time.Now().Before(deadline) {
		code, doc := get(fmt.Sprintf("/v1/jobs/%.0f", id))
		if code != http.StatusOK {
			t.Fatalf("status poll: %d", code)
		}
		state = doc["state"].(string)
		if state == "done" || state == "failed" || state == "canceled" {
			if state != "done" {
				t.Fatalf("job finished %q: %v", state, doc["error"])
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("job still %q at deadline", state)
	}

	code, res := get(fmt.Sprintf("/v1/jobs/%.0f/result", id))
	if code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if release, _ := res["release_csv"].(string); !strings.Contains(release, "\n") {
		t.Fatal("result carries no release CSV")
	}

	if code, doc := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d (%v)", code, doc)
	}

	// SIGTERM: the server must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("tcserved exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("tcserved did not exit within 60s of SIGTERM")
	}
}
