// Command tcserved is the long-running anonymization service: it serves
// dataset registration, asynchronous anonymization jobs over the prepared
// engine, and ops endpoints, with the robustness contract of
// internal/serve — panic isolation, per-job deadlines, bounded-queue load
// shedding, transient-failure retry, and graceful drain on SIGTERM.
//
// See README.md in this directory for the job API and failure semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/faultinject"
	"repro/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
		queue         = flag.Int("queue", 64, "job queue bound; submissions beyond it get 429")
		jobs          = flag.Int("jobs", 2, "jobs executed concurrently")
		timeout       = flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
		maxTimeout    = flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
		grace         = flag.Duration("grace", 15*time.Second, "shutdown grace period before in-flight jobs are canceled")
		retries       = flag.Int("retries", 2, "retry budget for transient job failures")
		cacheEntries  = flag.Int("cache", 256, "result cache entries (0 disables)")
		engineWorkers = flag.Int("workers", 0, "per-engine parallel fan-out (0 = GOMAXPROCS)")
		preload       = flag.String("preload", "", "comma-separated synthetic datasets to register at boot: census-mcd, census-hcd, patients")
		dataDir       = flag.String("data-dir", "", "directory for persistent dataset storage; datasets found there are restored at boot")
		openBudget    = flag.Int("open-budget", 0, "chunk-coalescing byte budget for boot restores: > 0 rebuilds each stored dataset streaming (core.OpenStreaming) so the open never holds a second full table copy; 0 materializes")
		faultSpec     = flag.String("fault", os.Getenv("TCSERVED_FAULT"), "fault injection spec (testing only), e.g. panic-at=3,slow-task=50ms,transient=2")
	)
	flag.Parse()
	if err := run(*addr, serveConfig(*queue, *jobs, *timeout, *maxTimeout, *retries, *cacheEntries, *engineWorkers, *openBudget, *faultSpec), *preload, *dataDir, *grace); err != nil {
		log.Fatal(err)
	}
}

func serveConfig(queue, jobs int, timeout, maxTimeout time.Duration, retries, cache, workers, openBudget int, faultSpec string) serve.Config {
	cfg := serve.Config{
		MaxQueue:       queue,
		JobWorkers:     jobs,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
		RetryMax:       retries,
		CacheEntries:   cache,
		EngineWorkers:  workers,
		OpenBudget:     openBudget,
	}
	if faultSpec != "" {
		hooks, err := faultinject.Parse(faultSpec)
		if err != nil {
			log.Fatalf("tcserved: %v", err)
		}
		log.Printf("tcserved: FAULT INJECTION ARMED (%s) — testing only", faultSpec)
		cfg.Fault = hooks
	}
	return cfg
}

func run(addr string, cfg serve.Config, preload, dataDir string, grace time.Duration) error {
	if dataDir != "" {
		backend, err := store.NewFileBackend(dataDir)
		if err != nil {
			return err
		}
		defer backend.Close()
		cfg.Store = backend
	}
	srv := serve.New(cfg)

	// With -data-dir, datasets committed by an earlier run come back first
	// — same names, epoch counters and table hashes — and every later
	// registration or epoch writes through durably.
	restored := make(map[string]bool)
	if cfg.Store != nil {
		names, err := srv.RestoreDatasets()
		var strays *store.StrayFilesError
		if errors.As(err, &strays) {
			// Stray files are surfaced but never block the boot: the intact
			// datasets in names are all restored.
			log.Printf("tcserved: WARNING: %v", strays)
		} else if err != nil {
			return err
		}
		for _, name := range names {
			restored[name] = true
			log.Printf("tcserved: restored dataset %q from %s", name, dataDir)
		}
	}
	for _, kind := range strings.Split(preload, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		if restored[kind] {
			log.Printf("tcserved: dataset %q already restored from -data-dir; preload skipped", kind)
			continue
		}
		tbl, err := serve.SynthTable(kind, 0)
		if err != nil {
			return err
		}
		if err := srv.RegisterDataset(kind, tbl); err != nil {
			return err
		}
		log.Printf("tcserved: preloaded dataset %q (%d rows)", kind, tbl.Len())
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The actual address is printed on stdout so harnesses using port 0 can
	// discover the chosen port.
	fmt.Printf("tcserved listening on %s\n", ln.Addr())
	log.Printf("tcserved: serving on %s (queue=%d jobs=%d timeout=%v grace=%v)",
		ln.Addr(), cfg.MaxQueue, cfg.JobWorkers, cfg.DefaultTimeout, grace)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-stop:
		log.Printf("tcserved: %v received, draining (grace %v)", sig, grace)
	case err := <-errc:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("tcserved: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("tcserved: grace period expired, in-flight jobs canceled (%v)", err)
	} else {
		log.Printf("tcserved: drained cleanly")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
