// Command benchgate compares two benchjson evidence files and fails when
// any cell present in both regressed beyond a noise tolerance. CI runs it
// over the committed BENCH_<PR>.json trajectory — when both files are
// measured on the same machine a generous multiplicative tolerance
// separates real regressions from scheduler noise without requiring CI
// hardware to reproduce the timings.
//
// When consecutive evidence files come from machines of different speeds,
// absolute ratios gate the hardware instead of the code. The -norm flag
// divides each cell's ratio by the median ratio across all shared cells
// before applying the tolerance: a uniform machine-speed shift moves the
// median and is absorbed, while a cell that regressed relative to its
// peers still trips the gate.
//
// Cells are keyed by (algorithm, k, t, n, variant); the variant
// distinguishes the delta-append family ("delta-cold"/"delta-warm") from
// the classic from-scratch grid (empty variant), so older reports without
// variant cells compare unchanged.
//
// A multiplicative tolerance alone cannot gate sub-millisecond cells on a
// noisy host: 1.3x of 0.9ms is a 0.3ms margin, well inside scheduler
// jitter, so a cell can trip the gate with no code change at all. The
// -floor flag (seconds) adds an absolute grace: a cell only regresses
// when it exceeds BOTH the multiplicative limit and base+floor. A floor
// of a few milliseconds is far below any real regression on the cells
// that matter (which run tens of milliseconds to seconds) while making
// the ~1ms warm-repair cells immune to jitter.
//
// Usage:
//
//	benchgate -base BENCH_1.json -new BENCH_2.json [-tol 1.3] [-norm] [-floor 0.005]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
)

// cell's algorithm decodes through core.Algorithm's encoding.TextUnmarshaler,
// so any spelling ParseAlgorithm accepts compares under its canonical name.
type cell struct {
	Algorithm core.Algorithm `json:"algorithm"`
	K         int            `json:"k"`
	T         float64        `json:"t"`
	N         int            `json:"n"`
	Variant   string         `json:"variant"`
	Seconds   float64        `json:"seconds"`
}

type report struct {
	N     int    `json:"n"`
	Cells []cell `json:"cells"`
}

type key struct {
	alg     core.Algorithm
	k       int
	t       float64
	n       int
	variant string
}

func load(path string) (map[key]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cells := make(map[key]float64, len(rep.Cells))
	for _, c := range rep.Cells {
		n := c.N
		if n == 0 {
			n = rep.N // pre--full reports carried the size at report level
		}
		cells[key{alg: c.Algorithm, k: c.K, t: c.T, n: n, variant: c.Variant}] = c.Seconds
	}
	return cells, nil
}

func main() {
	base := flag.String("base", "", "baseline benchjson report")
	next := flag.String("new", "", "candidate benchjson report")
	tol := flag.Float64("tol", 1.3, "multiplicative noise tolerance")
	norm := flag.Bool("norm", false,
		"normalize out machine speed: gate each cell against the median new/base ratio across shared cells")
	floor := flag.Float64("floor", 0,
		"absolute noise grace in seconds: a cell regresses only beyond BOTH tol*base and base+floor (0 disables)")
	flag.Parse()
	if *base == "" || *next == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -new are required")
		os.Exit(2)
	}
	baseCells, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newCells, err := load(*next)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	keys := make([]key, 0, len(baseCells))
	for k := range baseCells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.alg != b.alg {
			return a.alg.String() < b.alg.String()
		}
		if a.k != b.k {
			return a.k < b.k
		}
		if a.t != b.t {
			return a.t < b.t
		}
		if a.n != b.n {
			return a.n < b.n
		}
		return a.variant < b.variant
	})

	// The machine-speed factor under -norm: the median new/base ratio over
	// shared cells. A uniform shift (slower evidence host) lands entirely in
	// the median; a single cell regressing relative to its peers does not.
	scale := 1.0
	if *norm {
		var ratios []float64
		for _, k := range keys {
			if nw, ok := newCells[k]; ok && baseCells[k] > 0 {
				ratios = append(ratios, nw/baseCells[k])
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			scale = ratios[len(ratios)/2]
			if len(ratios)%2 == 0 {
				scale = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
			}
			fmt.Printf("benchgate: normalizing by median machine-speed ratio %.2fx\n", scale)
		}
	}

	compared, failed := 0, 0
	for _, k := range keys {
		b := baseCells[k]
		nw, ok := newCells[k]
		if !ok {
			continue // cell not measured in the candidate (e.g. new sizes only)
		}
		compared++
		limit := b * scale * *tol
		if withGrace := b*scale + *floor; withGrace > limit {
			limit = withGrace
		}
		verdict := "ok"
		if nw > limit {
			verdict = "REGRESSED"
			failed++
		}
		label := k.alg.String()
		if k.variant != "" {
			label += "/" + k.variant
		}
		fmt.Printf("%-33s k=%d t=%.2f n=%-6d base=%8.3fs new=%8.3fs (%.2fx) %s\n",
			label, k.k, k.t, k.n, b, nw, nw/b, verdict)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable cells between the two reports")
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d cells regressed beyond %.2fx\n", failed, compared, *tol)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d cells within %.2fx of baseline\n", compared, *tol)
}
