package repro_test

// Integration tests asserting the paper's cross-cutting qualitative claims
// hold end-to-end on the synthetic evaluation data sets. These are the
// "shape" checks of EXPERIMENTS.md, encoded as tests so a regression in any
// module that silently broke a finding would fail the suite.

import (
	"testing"

	"repro"
	"repro/internal/emd"
	"repro/internal/privacy"
)

func anonOrDie(t *testing.T, tbl *repro.Table, alg repro.Algorithm, k int, tl float64) *repro.Result {
	t.Helper()
	res, err := repro.Anonymize(tbl, repro.Config{
		Algorithm: alg, K: k, T: tl, SkipAssessment: true,
	})
	if err != nil {
		t.Fatalf("%v k=%d t=%v: %v", alg, k, tl, err)
	}
	return res
}

// TestClaimEveryAlgorithmDeliversGuarantees: for every algorithm, data set
// and a spread of (k, t), the released table must verify as k-anonymous and
// t-close by the independent privacy checker.
func TestClaimEveryAlgorithmDeliversGuarantees(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	sets := map[string]*repro.Table{
		"MCD": repro.CensusMCD(),
		"HCD": repro.CensusHCD(),
		"PD":  repro.PatientDischarge(800, 20160314),
	}
	algs := []repro.Algorithm{repro.Merge, repro.KAnonymityFirst, repro.TClosenessFirst, repro.MondrianBaseline}
	for name, tbl := range sets {
		for _, alg := range algs {
			for _, cfg := range []struct {
				k  int
				tl float64
			}{{2, 0.13}, {5, 0.21}} {
				res := anonOrDie(t, tbl, alg, cfg.k, cfg.tl)
				rep, err := privacy.Assess(res.Anonymized)
				if err != nil {
					t.Fatal(err)
				}
				if rep.KAnonymity < cfg.k {
					t.Errorf("%s/%v k=%d t=%v: released k-anonymity %d",
						name, alg, cfg.k, cfg.tl, rep.KAnonymity)
				}
				if rep.TCloseness > cfg.tl+1e-9 {
					t.Errorf("%s/%v k=%d t=%v: released t-closeness %v",
						name, alg, cfg.k, cfg.tl, rep.TCloseness)
				}
			}
		}
	}
}

// TestClaimClusterInflationOrdering: at strict t, Algorithm 1 inflates
// cluster sizes most, Algorithm 2 less, Algorithm 3 least (Tables 1-3).
func TestClaimClusterInflationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tbl := repro.CensusMCD()
	k, tl := 5, 0.09
	avg1 := anonOrDie(t, tbl, repro.Merge, k, tl).Sizes.Avg
	avg2 := anonOrDie(t, tbl, repro.KAnonymityFirst, k, tl).Sizes.Avg
	avg3 := anonOrDie(t, tbl, repro.TClosenessFirst, k, tl).Sizes.Avg
	// Algorithm 3's average can exceed Algorithm 2's by a fraction of a
	// record when Eq. (3) raises its effective k above the requested k
	// while Algorithm 2's merge stops just short; allow one record of
	// slack, matching the granularity of the paper's tables.
	if !(avg1 >= avg2 && avg2 >= avg3-1) {
		t.Errorf("cluster inflation ordering violated: alg1 %.1f, alg2 %.1f, alg3 %.1f",
			avg1, avg2, avg3)
	}
}

// TestClaimAlgorithm3Balanced: when the Eq. (3) size divides n, Algorithm 3
// produces perfectly balanced clusters at exactly that size (Table 3).
func TestClaimAlgorithm3Balanced(t *testing.T) {
	tbl := repro.CensusMCD() // n = 1080
	for _, tl := range []float64{0.05, 0.13, 0.25} {
		res := anonOrDie(t, tbl, repro.TClosenessFirst, 5, tl)
		want, err := emd.RequiredClusterSize(tbl.Len(), 5, tl)
		if err != nil {
			t.Fatal(err)
		}
		want = emd.AdjustClusterSize(tbl.Len(), want)
		if res.Sizes.Min != want || res.Sizes.Max != want {
			t.Errorf("t=%v: sizes [%d,%d], want balanced %d",
				tl, res.Sizes.Min, res.Sizes.Max, want)
		}
	}
}

// TestClaimSSEOrderingAtK2: at k=2 (the paper's Figure 6 setting), the
// t-closeness-first algorithm preserves utility strictly best on the
// moderately correlated data at strict-to-moderate t, and the two
// QI-prioritizing algorithms sit close to each other well above it. (The
// paper's Figure 6 shows alg2 strictly between alg1 and alg3; on the
// synthetic data alg1 and alg2 trade places within ~25% at some t, so the
// assertion on their relative order carries that tolerance. See
// EXPERIMENTS.md.)
func TestClaimSSEOrderingAtK2(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tbl := repro.CensusMCD()
	for _, tl := range []float64{0.05, 0.09, 0.13} {
		sse1 := anonOrDie(t, tbl, repro.Merge, 2, tl).SSE
		sse2 := anonOrDie(t, tbl, repro.KAnonymityFirst, 2, tl).SSE
		sse3 := anonOrDie(t, tbl, repro.TClosenessFirst, 2, tl).SSE
		if sse3 > sse1 || sse3 > sse2 {
			t.Errorf("t=%v: alg3 SSE %.5f not the best (alg1 %.5f, alg2 %.5f)",
				tl, sse3, sse1, sse2)
		}
		if sse2 > sse1*1.25 {
			t.Errorf("t=%v: alg2 SSE %.5f far above alg1 %.5f", tl, sse2, sse1)
		}
	}
}

// TestClaimAlgorithm3FastestAtSmallT: Algorithm 3's analytic cluster sizing
// makes it far faster than Algorithm 1 (which microaggregates at the
// requested k and then merges) and Algorithm 2 (which swaps records) at
// strict t — Figure 5's key message.
func TestClaimAlgorithm3FastestAtSmallT(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tbl := repro.PatientDischarge(1200, 20160314)
	e1 := anonOrDie(t, tbl, repro.Merge, 2, 0.05).Elapsed
	e2 := anonOrDie(t, tbl, repro.KAnonymityFirst, 2, 0.05).Elapsed
	e3 := anonOrDie(t, tbl, repro.TClosenessFirst, 2, 0.05).Elapsed
	if e3 > e1 {
		t.Errorf("alg3 (%v) slower than alg1 (%v) at small t", e3, e1)
	}
	if e3 > e2 {
		t.Errorf("alg3 (%v) slower than alg2 (%v)", e3, e2)
	}
}

// TestClaimMicroaggregationBeatsGeneralization: microaggregation (Algorithm
// 3) preserves more utility than the Mondrian generalization baseline at
// equal (k, t) — the motivation of Section 4.
func TestClaimMicroaggregationBeatsGeneralization(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, tbl := range []*repro.Table{repro.CensusMCD(), repro.CensusHCD()} {
		for _, tl := range []float64{0.09, 0.17} {
			sseMicro := anonOrDie(t, tbl, repro.TClosenessFirst, 5, tl).SSE
			sseMondrian := anonOrDie(t, tbl, repro.MondrianBaseline, 5, tl).SSE
			if sseMicro >= sseMondrian {
				t.Errorf("t=%v: microaggregation SSE %.5f not below Mondrian %.5f",
					tl, sseMicro, sseMondrian)
			}
		}
	}
}

// TestClaimHCDHarderThanMCD: for Algorithm 2, the highly correlated data
// set needs at least as much cluster inflation as the moderately correlated
// one (Section 8.1's explanation of the MCD/HCD contrast). Algorithm 3 by
// contrast is correlation-independent in its cluster sizes.
func TestClaimHCDHarderThanMCD(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	k, tl := 5, 0.05
	avgMCD := anonOrDie(t, repro.CensusMCD(), repro.KAnonymityFirst, k, tl).Sizes.Avg
	avgHCD := anonOrDie(t, repro.CensusHCD(), repro.KAnonymityFirst, k, tl).Sizes.Avg
	if avgHCD < avgMCD*0.9 {
		t.Errorf("HCD avg cluster %.1f unexpectedly below MCD %.1f", avgHCD, avgMCD)
	}
	szMCD := anonOrDie(t, repro.CensusMCD(), repro.TClosenessFirst, k, tl).Sizes
	szHCD := anonOrDie(t, repro.CensusHCD(), repro.TClosenessFirst, k, tl).Sizes
	if szMCD.Min != szHCD.Min || szMCD.Max != szHCD.Max {
		t.Errorf("alg3 cluster sizes differ across correlation: %+v vs %+v", szMCD, szHCD)
	}
}

// TestClaimTightTForcesBiggerClusters: for Algorithm 3, smaller t means
// larger (or equal) enforced cluster size — Eq. (3) monotonicity observed
// end-to-end.
func TestClaimTightTForcesBiggerClusters(t *testing.T) {
	tbl := repro.CensusMCD()
	prev := 1 << 30
	for _, tl := range []float64{0.01, 0.05, 0.09, 0.17, 0.25} {
		res := anonOrDie(t, tbl, repro.TClosenessFirst, 2, tl)
		if res.EffectiveK > prev {
			t.Errorf("t=%v: effective k %d grew as t loosened (prev %d)",
				tl, res.EffectiveK, prev)
		}
		prev = res.EffectiveK
	}
}

// TestClaimSABRENeedsLargerClasses encodes the paper's Section 3 comparison
// with SABRE: the greedy bucketization's equivalence-class size is at least
// Algorithm 3's analytic Eq. (3) minimum, and in practice larger at strict
// t, costing utility.
func TestClaimSABRENeedsLargerClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tbl := repro.CensusMCD()
	for _, tl := range []float64{0.05, 0.13} {
		sab := anonOrDie(t, tbl, repro.SABREBaseline, 2, tl)
		a3 := anonOrDie(t, tbl, repro.TClosenessFirst, 2, tl)
		if sab.EffectiveK < a3.EffectiveK {
			t.Errorf("t=%v: SABRE EC size %d below Algorithm 3's %d",
				tl, sab.EffectiveK, a3.EffectiveK)
		}
		if sab.SSE < a3.SSE {
			t.Errorf("t=%v: SABRE SSE %v unexpectedly below Algorithm 3's %v",
				tl, sab.SSE, a3.SSE)
		}
	}
}

// TestClaimGeneralizationFamiliesLoseMoreUtility: both generalization
// baselines (Mondrian-t and Incognito-t) lose more utility than Algorithm 3
// at equal (k, t) — Section 4's argument across the whole family.
func TestClaimGeneralizationFamiliesLoseMoreUtility(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tbl := repro.CensusMCD()
	a3 := anonOrDie(t, tbl, repro.TClosenessFirst, 5, 0.17)
	for _, alg := range []repro.Algorithm{repro.MondrianBaseline, repro.IncognitoBaseline} {
		base := anonOrDie(t, tbl, alg, 5, 0.17)
		if base.SSE <= a3.SSE {
			t.Errorf("%v SSE %v not above Algorithm 3's %v", alg, base.SSE, a3.SSE)
		}
	}
}

// TestPipelineDeterminism: the whole pipeline — generator, algorithms,
// aggregation — is deterministic for a fixed seed, so published experiment
// outputs are reproducible bit for bit.
func TestPipelineDeterminism(t *testing.T) {
	run := func() []float64 {
		tbl := repro.PatientDischarge(300, 20160314)
		res, err := repro.Anonymize(tbl, repro.Config{
			Algorithm: repro.Merge, K: 3, T: 0.15, SkipAssessment: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := []float64{res.SSE, res.MaxEMD, float64(len(res.Clusters))}
		for c := 0; c < res.Anonymized.Width(); c++ {
			out = append(out, res.Anonymized.Value(0, c))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pipeline output differs across identical runs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
