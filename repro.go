// Package repro is the public facade of the t-closeness-through-
// microaggregation library, a from-scratch Go reproduction of
//
//	J. Soria-Comas, J. Domingo-Ferrer, D. Sánchez, S. Martínez,
//	"t-Closeness through Microaggregation: Strict Privacy with Enhanced
//	Utility Preservation", IEEE TKDE (arXiv:1512.02909).
//
// The facade re-exports the user-facing pieces of the internal packages:
//
//   - describing microdata (Schema, Attribute, Table, CSV I/O),
//   - preparing a reusable anonymization engine over a table (New) and
//     running any of the paper's algorithms or the comparison baselines
//     against it (Engine.Run, Spec), with context cancellation, engine-
//     scoped tuning options, and epoch-based ingest (Engine.Append,
//     Engine.Delete) with warm-start re-anonymization (Spec.Warm),
//   - verifying the released table's privacy level (Assess, KAnonymity,
//     TCloseness), and
//   - quantifying utility (NormalizedSSE).
//
// See ARCHITECTURE.md at the repository root for the package map, the
// determinism contract, and the full epoch lifecycle.
//
// # Lifecycle quickstart
//
// An engine lives through epochs: build once, run, ingest, re-run warm.
//
//	table := repro.CensusMCD() // or dataset built via NewTable/ReadCSV
//	eng, err := repro.New(table)
//
//	// Epoch 0: the initial release.
//	spec := repro.Spec{Algorithm: repro.TClosenessFirst, K: 5, T: 0.15, Warm: true}
//	res, err := eng.Run(ctx, spec)
//	// res.Anonymized is the k-anonymous t-close release. With Spec.Warm
//	// set, this first run also seeds the engine's warm cache.
//
//	// Epoch 1: a late batch arrives; epoch 2: records are retracted.
//	err = eng.Append(rows...)        // row values, one []any per record
//	err = eng.Delete(17, 63)         // current row ids; tombstone epoch
//
//	// Re-release: the warm run repairs the cached partition around the
//	// delta instead of partitioning from scratch — re-run cost tracks the
//	// delta, not the table. res.Warm reports the seed epoch and repair
//	// scope; privacy guarantees are identical to a cold run.
//	res, err = eng.Run(ctx, spec)
//
// The engine prepares the shared substrate — normalized quasi-identifier
// geometry, the EMD dataset-prefix spaces, a lazily built spatial index —
// once per epoch, so a parameter sweep pays for it a single time:
//
//	for _, k := range []int{2, 5, 10} {
//		for _, t := range []float64{0.05, 0.15, 0.25} {
//			res, err := eng.Run(ctx, repro.Spec{
//				Algorithm: repro.TClosenessFirst, K: k, T: t,
//			})
//			// ...
//		}
//	}
//
// Runs are safe to issue concurrently and cancel promptly when ctx does.
// Append opens a new table epoch whose runs are bit-identical to a fresh
// engine over the concatenated table; Delete opens a tombstone epoch whose
// runs are bit-identical to a fresh engine over the filtered table. Warm
// runs that find no usable seed fall back to a cold run transparently.
//
// # Parallel determinism contract
//
// The partition loops themselves are sharded: merge partner scans, swap
// candidate scoring, Algorithm 3's per-subset draws, SABRE's per-bucket
// draws and the candidate distance fills all fan out across the engine's
// worker budget (WithWorkers, defaulting to GOMAXPROCS). Parallelism never
// changes results — every shard owns disjoint state or a fixed result
// slot, and every reduction is order-stable on the same (distance, row) or
// (cost, index) tie keys the serial scans use — so partitions and releases
// are bit-identical at every worker count. The contract is pinned by
// worker-sweep property tests and a golden conformance fixture
// (internal/core/testdata); WithWorkers is therefore purely a throughput
// knob, safe to tune per deployment.
//
// Spec.Sharded opts a Merge or KAnonymityFirst run out of that contract in
// exchange for parallel cluster construction: the table splits into
// disjoint k-d shards, each shard builds clusters independently, and a
// reconciliation pass repairs k/t violations along the boundaries. The
// release still satisfies k and t exactly and is deterministic for a fixed
// worker budget, but different budgets produce different (equally valid)
// partitions, and the warm seed cache is bypassed. Choose sharded mode for
// large one-off anonymizations on multi-core hosts where wall-clock
// dominates; keep the default when releases must be reproducible across
// deployments with different worker settings, when runs are re-issued
// across epochs (warm mode is the bigger win there), or when utility must
// match the serial reference bit for bit.
//
// The one-shot Anonymize(table, cfg) remains fully supported as a shim
// over a throwaway engine for callers that anonymize a table exactly once.
//
// # Persistence
//
// Engines can be backed by a persistent columnar store so million-row
// tables load once, reopen without re-parsing CSV, and every Append/
// Delete epoch survives a process restart:
//
//	st, err := repro.FileStore("/var/lib/tcm")   // embedded, single file per dataset
//
//	// First boot: stream a large CSV straight into the store under a
//	// bounded memory budget (the table is never materialized), or
//	// snapshot a table you already hold with repro.Create.
//	stats, err := repro.IngestCSV(st, "patients", csvReader, 0)
//
//	eng, err := repro.Open(st, "patients")       // materialize + prepare
//	res, err := eng.Run(ctx, spec)
//
//	// Tables near the RAM ceiling: OpenStreaming builds the same engine
//	// chunk-at-a-time under a byte budget, never holding a second full
//	// copy of the raw table (releases stay bit-identical to Open's).
//	eng, err = repro.OpenStreaming(st, "patients", 8<<20)
//
//	// Epochs on an opened engine write through: each Append/Delete is
//	// durable (fsynced, checksummed) before it becomes visible to runs.
//	err = eng.Append(rows...)
//
//	// After a crash or restart: Open restores the same table (bit for
//	// bit — verify with repro.TableHash), the same epoch counter, and a
//	// replayable epoch log, so releases are byte-identical to the
//	// pre-restart engine's.
//	eng, err = repro.Open(st, "patients")
//
// The store is an implementation of the append-only block-log format
// documented in internal/store (columnar segments, dictionary pages,
// checksummed commit manifests); a torn tail from a crash rolls back to
// the last committed epoch on reopen. MemStore provides the same
// contract in memory. Engines without a store behave exactly as before —
// the in-memory path stays the hot path.
//
// # Serving
//
// For long-lived deployments the library ships as a service: cmd/tcserved
// exposes dataset registration, asynchronous anonymization jobs over
// prepared engines, epoch appends and deletes (warm re-anonymization by
// default, cold=true per job opts out), and ops endpoints (/healthz,
// /metrics) over HTTP. The serving layer (internal/serve) adds the robustness the
// library deliberately leaves to callers — worker panics are captured by
// internal/par and surface as one failed job rather than a dead process,
// every job runs under a deadline, a bounded queue sheds overload with
// 429 + Retry-After, transient failures retry with backoff, results are
// cached per (dataset epoch, spec), and SIGTERM drains in-flight jobs
// before exit. Its failure semantics are pinned by a fault-injection
// conformance suite (internal/serve/faultinject); see cmd/tcserved/README.md
// for the job API and the shutdown contract.
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/risk"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/tclose"
)

// Re-exported dataset types. See package dataset for details.
type (
	// Table is a columnar microdata set.
	Table = dataset.Table
	// Schema is an ordered list of attributes with roles.
	Schema = dataset.Schema
	// Attribute describes one column (name, role, kind).
	Attribute = dataset.Attribute
	// Role classifies an attribute's disclosiveness.
	Role = dataset.Role
	// Kind is an attribute's value domain (numeric or categorical).
	Kind = dataset.Kind
)

// Attribute roles.
const (
	Identifier      = dataset.Identifier
	QuasiIdentifier = dataset.QuasiIdentifier
	Confidential    = dataset.Confidential
	NonConfidential = dataset.NonConfidential
)

// Attribute kinds.
const (
	Numeric     = dataset.Numeric
	Categorical = dataset.Categorical
)

// NewSchema builds a Schema from attributes; see dataset.NewSchema.
func NewSchema(attrs ...Attribute) (*Schema, error) { return dataset.NewSchema(attrs...) }

// NewTable creates an empty table over a schema; see dataset.NewTable.
func NewTable(schema *Schema) (*Table, error) { return dataset.NewTable(schema) }

// ReadCSV decodes a table from the self-describing two-header CSV format;
// see dataset.ReadCSV.
func ReadCSV(r io.Reader) (*Table, error) { return dataset.ReadCSV(r) }

// Anonymization configuration and result types. See package core.
type (
	// Engine is a prepared, reusable anonymization session over one table:
	// the substrate is built once by New and shared by every Run. Safe for
	// concurrent Runs and Append.
	Engine = core.Engine
	// Spec parameterizes one Engine.Run (algorithm, k, t).
	Spec = core.Spec
	// Option configures an Engine at construction; see WithWorkers,
	// WithIndexCrossover, WithProgress.
	Option = core.Option
	// Progress is one progress event delivered to a WithProgress hook.
	Progress = core.Progress
	// Config is the legacy name of Spec.
	//
	// Deprecated: use Spec with New / Engine.Run.
	Config = core.Config
	// Result is an anonymization outcome: the released table plus privacy
	// and utility diagnostics.
	Result = core.Result
	// WarmStats describes how a warm-start run (Spec.Warm) was seeded and
	// how much local repair it did; Result.Warm is nil for cold runs.
	WarmStats = core.WarmStats
	// Algorithm selects which of the paper's methods to run.
	Algorithm = core.Algorithm
	// Cluster is a group of record indices sharing aggregated
	// quasi-identifiers.
	Cluster = micro.Cluster
	// Partitioner is a pluggable initial microaggregation for Algorithm 1.
	Partitioner = tclose.Partitioner
)

// New prepares a reusable anonymization engine over a private copy of the
// table; see core.NewEngine. Use Engine.Run to execute algorithms against
// it and Engine.Append to ingest new records in epochs.
func New(t *Table, opts ...Option) (*Engine, error) { return core.NewEngine(t, opts...) }

// Engine construction options; see the core package for details.
var (
	// WithWorkers caps the engine's goroutine fan-out for distance scans
	// and index builds (replaces the deprecated micro.MaxScanWorkers
	// global).
	WithWorkers = core.WithWorkers
	// WithIndexCrossover sets the candidate-set size at which the engine's
	// neighbor searches switch to the k-d tree index (replaces the
	// deprecated micro.IndexCrossover global).
	WithIndexCrossover = core.WithIndexCrossover
	// WithProgress installs a hook receiving coarse progress events from
	// the partition and merge loops.
	WithProgress = core.WithProgress
)

// Anonymization algorithms.
const (
	// Merge is the paper's Algorithm 1 (microaggregation + cluster merging).
	Merge = core.Merge
	// KAnonymityFirst is the paper's Algorithm 2 (swap refinement + merge).
	KAnonymityFirst = core.KAnonymityFirst
	// TClosenessFirst is the paper's Algorithm 3 (t-closeness by
	// construction; best utility and speed).
	TClosenessFirst = core.TClosenessFirst
	// MondrianBaseline is the generalization/recoding comparison baseline.
	MondrianBaseline = core.MondrianBaseline
)

// Persistent dataset storage; see the Persistence section of the package
// documentation and the internal/store package for the file format and
// crash-safety contract.
type (
	// Store is a persistent (or in-memory) columnar dataset backend with
	// durable epoch history.
	Store = store.Backend
	// IngestStats reports what a streaming CSV ingest did, including the
	// chunk buffer's high-water mark (the memory-budget contract).
	IngestStats = store.IngestStats
)

// FileStore opens (creating if needed) the embedded persistent store
// rooted at dir: one append-only checksummed file per dataset.
func FileStore(dir string) (Store, error) { return store.NewFileBackend(dir) }

// MemStore returns an in-memory Store with the same contract as
// FileStore, for tests and ephemeral use.
func MemStore() Store { return store.NewMemBackend() }

// Open materializes a stored dataset and prepares an engine over it with
// its epoch history restored; Append/Delete on the opened engine persist
// durably before becoming visible. See core.Open.
func Open(s Store, name string, opts ...Option) (*Engine, error) { return core.Open(s, name, opts...) }

// OpenStreaming is Open under a memory budget: the engine substrate is
// built chunk-at-a-time from the store's committed history, so peak
// memory during the open is bounded by the budget (<= 0 picks a default)
// plus the substrate itself — never a second full copy of the raw table.
// The opened engine is bit-identical to Open's (same TableHash, same
// releases); see core.OpenStreaming.
func OpenStreaming(s Store, name string, budget int, opts ...Option) (*Engine, error) {
	return core.OpenStreaming(s, name, budget, opts...)
}

// Create snapshots a table into the store under name and opens an engine
// over it; see core.Create.
func Create(s Store, name string, t *Table, opts ...Option) (*Engine, error) {
	return core.Create(s, name, t, opts...)
}

// IngestCSV bulk-loads a two-header CSV stream into the store as a new
// dataset without materializing the table, flushing columnar chunks
// whenever the buffer would exceed budget bytes (a default budget when
// budget <= 0). The result is bit-identical to ReadCSV + Create.
func IngestCSV(s Store, name string, r io.Reader, budget int) (IngestStats, error) {
	return store.IngestCSV(s, name, r, budget)
}

// TableHash returns a hex SHA-256 fingerprint of a table's full logical
// content (schema, dictionaries, exact value bits) — equal hashes mean
// bit-identical tables, the check the restart conformance relies on.
func TableHash(t *Table) string { return store.TableHash(t) }

// Anonymize runs the configured algorithm over a throwaway engine and
// returns the release and its diagnostics; see core.Anonymize. Every call
// rebuilds the prepared substrate, so parameter sweeps should use New and
// Engine.Run instead; results are bit-identical either way.
//
// Deprecated: use New and Engine.Run. Anonymize remains fully supported.
func Anonymize(t *Table, cfg Config) (*Result, error) { return core.Anonymize(t, cfg) }

// ParseAlgorithm resolves a command-line algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// PrivacyReport summarizes the privacy level of a released table.
type PrivacyReport = privacy.Report

// Assess computes the privacy report of a released table; see
// privacy.Assess.
func Assess(t *Table) (*PrivacyReport, error) { return privacy.Assess(t) }

// KAnonymity returns the k-anonymity level of a released table.
func KAnonymity(t *Table) (int, error) { return privacy.KAnonymity(t) }

// TCloseness returns the t-closeness level (worst-class EMD) of a released
// table.
func TCloseness(t *Table) (float64, error) { return privacy.TCloseness(t) }

// NormalizedSSE computes the paper's Eq. (5) utility loss between an
// original table and its anonymized release.
func NormalizedSSE(original, anonymized *Table) (float64, error) {
	return metrics.NormalizedSSE(original, anonymized)
}

// Synthetic evaluation data sets (deterministic; see package synth for how
// they substitute the paper's data).
var (
	// CensusMCD returns the 1,080-record moderately correlated Census-like
	// data set (QI↔confidential correlation ≈ 0.52).
	CensusMCD = synth.CensusMCD
	// CensusHCD returns the 1,080-record highly correlated Census-like data
	// set (correlation ≈ 0.92).
	CensusHCD = synth.CensusHCD
	// PatientDischarge returns an n-record patient-discharge-like data set
	// with 7 quasi-identifiers and weak correlation (≈ 0.13).
	PatientDischarge = synth.PatientDischarge
)

// AnatomyRelease produces the QI-preserving release style of Section 2.3:
// original quasi-identifier values are kept and the confidential values are
// permuted within each cluster, breaking the QI↔confidential link while
// losing no quasi-identifier information; see micro.AnatomyRelease.
func AnatomyRelease(t *Table, clusters []Cluster, seed int64) (*Table, error) {
	return micro.AnatomyRelease(t, clusters, seed)
}

// NTCloseness returns the (n,t)-closeness level of a partition — the
// relaxed model of Li et al. that compares each class against its n-record
// quasi-identifier neighborhood instead of the whole table; see
// privacy.NTClosenessOf.
func NTCloseness(t *Table, clusters []Cluster, n int) (float64, error) {
	return privacy.NTClosenessOf(t, clusters, n)
}

// Comparison baselines beyond the paper's own algorithms (Section 3 related
// work, implemented for the benchmark suite).
const (
	// SABREBaseline is the bucketization-and-redistribution framework of
	// Cao et al., the closest prior t-closeness-specific method.
	SABREBaseline = core.SABREBaseline
	// IncognitoBaseline is the classical full-domain generalization lattice
	// search with the t-closeness constraint (Li et al., ICDE 2007).
	IncognitoBaseline = core.IncognitoBaseline
)

// LinkageRisk runs the distance-based record-linkage attack of the SDC
// literature against a release and returns the fraction of records an
// intruder holding the original quasi-identifiers re-identifies; see
// package risk.
func LinkageRisk(original, anonymized *Table) (float64, error) {
	res, err := risk.DistanceLinkage(original, anonymized)
	if err != nil {
		return 0, err
	}
	return res.Rate(), nil
}

// CorrelationDistortion measures how much a release distorts the
// QI↔confidential Pearson correlations (mean absolute change over pairs);
// see metrics.CorrelationDistortion.
func CorrelationDistortion(original, anonymized *Table) (float64, error) {
	return metrics.CorrelationDistortion(original, anonymized)
}
