// Package dp implements the continuation the paper's conclusions point to:
// leveraging microaggregation to implement ε-differential privacy for
// microdata releases, following Soria-Comas, Domingo-Ferrer, Sánchez &
// Martínez, "Enhancing data utility in differential privacy via
// microaggregation-based k-anonymity" (VLDB Journal 2014) — reference [28]
// of the paper.
//
// The mechanism: first microaggregate the quasi-identifiers into clusters
// of at least k records using an *insensitive* partition (one whose cluster
// composition changes by at most one record when any single input record
// changes), then release each cluster centroid with Laplace noise
// calibrated to the centroid's sensitivity. Because a centroid averages at
// least k records, one record changes it by at most Δ/k per attribute
// (value range Δ), so the noise scale shrinks by a factor k compared to
// releasing record-level data — microaggregation buys utility under the
// same ε.
//
// The insensitive partition used here assigns rank-sorted runs of k records
// along a fixed ordering of the normalized quasi-identifier space (the
// single-axis projection insensitive microaggregation of [28]); moving one
// input record shifts each boundary by at most one position, which keeps
// the end-to-end release ε-differentially private with per-cluster
// sensitivity (one record affects at most two clusters, which the epsilon
// budget below accounts for by splitting ε across attributes with the
// composed 2/k per-attribute centroid sensitivity).
package dp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// Result is a differentially private release.
type Result struct {
	// Anonymized is the noisy centroid release: every record carries its
	// cluster's noisy quasi-identifier centroid. Confidential attributes
	// are NOT released record-wise (that would break differential privacy);
	// they are replaced by their noisy cluster means as well.
	Anonymized *dataset.Table
	// Clusters is the insensitive partition used.
	Clusters []micro.Cluster
	// Epsilon is the total privacy budget spent.
	Epsilon float64
	// NoiseScale maps each perturbed column index to the Laplace scale b
	// used for it.
	NoiseScale map[int]float64
}

// Anonymize produces an ε-differentially private release of the table
// using insensitive microaggregation with minimum cluster size k. The seed
// fixes the noise stream for reproducible experiments (production use
// should derive it from a secure source).
func Anonymize(t *dataset.Table, k int, epsilon float64, seed int64) (*Result, error) {
	if t == nil || t.Len() == 0 {
		return nil, errors.New("dp: data set has no records")
	}
	if err := t.Schema().Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, errors.New("dp: k must be at least 1")
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("dp: epsilon must be positive, got %v", epsilon)
	}
	for c := 0; c < t.Width(); c++ {
		a := t.Schema().Attr(c)
		if a.Role != dataset.Identifier && a.Kind != dataset.Numeric {
			return nil, fmt.Errorf("dp: attribute %q: only numeric attributes can be released under differential privacy here", a.Name)
		}
	}
	clusters := insensitivePartition(t, k)
	// Perturb every released numeric column: quasi-identifiers,
	// confidential and non-confidential alike (differential privacy makes
	// no QI/confidential distinction — everything released must be noisy).
	cols := releasedColumns(t)
	// Budget split evenly across released attributes. Each record belongs
	// to one cluster, but in the insensitive partition a change of one
	// record shifts each run boundary by at most one position, affecting at
	// most two adjacent clusters; the per-attribute centroid sensitivity is
	// therefore 2·Δ/k.
	epsPer := epsilon / float64(len(cols))
	rng := rand.New(rand.NewSource(seed))
	out := t.Clone()
	scales := make(map[int]float64, len(cols))
	for _, c := range cols {
		st := t.Stats(c)
		delta := st.Max - st.Min
		if delta == 0 {
			scales[c] = 0
			continue
		}
		b := 2 * delta / (float64(k) * epsPer)
		scales[c] = b
		for _, cl := range clusters {
			mean := 0.0
			for _, r := range cl.Rows {
				mean += t.Value(r, c)
			}
			mean /= float64(len(cl.Rows))
			noisy := mean + laplace(rng, b)
			for _, r := range cl.Rows {
				out.SetValue(r, c, noisy)
			}
		}
	}
	for _, c := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(c)
	}
	return &Result{
		Anonymized: out,
		Clusters:   clusters,
		Epsilon:    epsilon,
		NoiseScale: scales,
	}, nil
}

// insensitivePartition orders the records along the first principal
// normalized quasi-identifier axis (sum of normalized QI coordinates, a
// fixed data-independent projection) and cuts the order into consecutive
// runs of k (the last run absorbs the remainder). Changing one input record
// moves every cut boundary by at most one position.
func insensitivePartition(t *dataset.Table, k int) []micro.Cluster {
	n := t.Len()
	points := t.QIMatrix()
	score := make([]float64, n)
	for i, p := range points {
		s := 0.0
		for _, v := range p {
			s += v
		}
		score[i] = s
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] < score[order[b]]
		}
		return order[a] < order[b]
	})
	var clusters []micro.Cluster
	for start := 0; start < n; start += k {
		end := start + k
		if n-end < k {
			end = n
		}
		rows := append([]int(nil), order[start:end]...)
		clusters = append(clusters, micro.Cluster{Rows: rows})
		if end == n {
			break
		}
	}
	return clusters
}

// releasedColumns returns every non-identifier column (all numeric by the
// precondition in Anonymize).
func releasedColumns(t *dataset.Table) []int {
	var cols []int
	for c := 0; c < t.Width(); c++ {
		if t.Schema().Attr(c).Role != dataset.Identifier {
			cols = append(cols, c)
		}
	}
	return cols
}

// laplace draws from the Laplace distribution with mean 0 and scale b via
// inverse-CDF sampling.
func laplace(rng *rand.Rand, b float64) float64 {
	if b == 0 {
		return 0
	}
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}
