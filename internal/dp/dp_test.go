package dp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/synth"
)

func TestAnonymizeValidation(t *testing.T) {
	tbl := synth.Uniform(30, 2, 1)
	if _, err := Anonymize(nil, 2, 1, 1); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := Anonymize(tbl, 0, 1, 1); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := Anonymize(tbl, 2, 0, 1); err == nil {
		t.Error("epsilon = 0 should fail")
	}
	cat := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "city", Role: dataset.QuasiIdentifier, Kind: dataset.Categorical},
		dataset.Attribute{Name: "s", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	if err := cat.AppendRow("a", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := Anonymize(cat, 1, 1, 1); err == nil {
		t.Error("categorical released attribute should be rejected")
	}
}

func TestAnonymizePartitionAndKAnonymity(t *testing.T) {
	tbl := synth.Census(200, synth.FedTax, 3)
	for _, k := range []int{2, 5, 11} {
		res, err := Anonymize(tbl, k, 1.0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := micro.CheckPartition(res.Clusters, tbl.Len(), k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Every record in a cluster shares its noisy centroid, so the
		// release is k-anonymous on the quasi-identifiers (noise is added
		// per cluster, not per record).
		ka, err := privacy.KAnonymity(res.Anonymized)
		if err != nil {
			t.Fatal(err)
		}
		if ka < k {
			t.Errorf("k=%d: released k-anonymity %d", k, ka)
		}
	}
}

func TestInsensitivePartitionStability(t *testing.T) {
	// The defining property: changing one record's values moves every run
	// boundary by at most one position, so cluster memberships differ by a
	// bounded number of records.
	tbl := synth.Uniform(60, 2, 9)
	before := insensitivePartition(tbl, 5)
	mod := tbl.Clone()
	mod.SetValue(17, 0, mod.Value(17, 0)+0.9)
	after := insensitivePartition(mod, 5)
	if len(before) != len(after) {
		t.Fatalf("cluster count changed: %d vs %d", len(before), len(after))
	}
	// Each cluster's membership changes by at most 2 records (the moved
	// record leaving/arriving plus one boundary shift).
	for i := range before {
		b := map[int]bool{}
		for _, r := range before[i].Rows {
			b[r] = true
		}
		diff := 0
		for _, r := range after[i].Rows {
			if !b[r] {
				diff++
			}
		}
		if diff > 2 {
			t.Errorf("cluster %d changed by %d records; insensitivity violated", i, diff)
		}
	}
}

func TestNoiseScaleShrinksWithK(t *testing.T) {
	tbl := synth.Census(300, synth.FedTax, 5)
	r2, err := Anonymize(tbl, 2, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r20, err := Anonymize(tbl, 20, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c, b2 := range r2.NoiseScale {
		if b20 := r20.NoiseScale[c]; b20 >= b2 {
			t.Errorf("column %d: noise scale %v at k=20 not below %v at k=2", c, b20, b2)
		}
	}
}

func TestUtilityImprovesWithK(t *testing.T) {
	// The headline of the follow-up paper: at fixed epsilon, larger k
	// (more microaggregation) means less noise and better utility, up to
	// the point where cluster coarseness dominates. Compare k=1 (plain
	// per-record Laplace... here per-singleton-cluster) with k=20.
	tbl := synth.Census(500, synth.FedTax, 11)
	err1 := releaseError(t, tbl, 1)
	err20 := releaseError(t, tbl, 20)
	if err20 >= err1 {
		t.Errorf("k=20 release error %v not below k=1 error %v", err20, err1)
	}
}

func releaseError(t *testing.T, tbl *dataset.Table, k int) float64 {
	t.Helper()
	res, err := Anonymize(tbl, k, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	count := 0
	for c := 0; c < tbl.Width(); c++ {
		st := tbl.Stats(c)
		rng := st.Max - st.Min
		if rng == 0 {
			continue
		}
		for r := 0; r < tbl.Len(); r++ {
			d := (tbl.Value(r, c) - res.Anonymized.Value(r, c)) / rng
			total += d * d
			count++
		}
	}
	return total / float64(count)
}

func TestLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 200000
	b := 2.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := laplace(rng, b)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(0, b).
	if math.Abs(meanAbs-b) > 0.05 {
		t.Errorf("Laplace E|X| = %v, want %v", meanAbs, b)
	}
	if laplace(rng, 0) != 0 {
		t.Error("zero scale should give zero noise")
	}
}

func TestAnonymizeDeterministicForSeed(t *testing.T) {
	tbl := synth.Uniform(50, 2, 13)
	a, err := Anonymize(tbl, 5, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anonymize(tbl, 5, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.Len(); r++ {
		for c := 0; c < tbl.Width(); c++ {
			if a.Anonymized.Value(r, c) != b.Anonymized.Value(r, c) {
				t.Fatal("same seed must give the same release")
			}
		}
	}
	c, err := Anonymize(tbl, 5, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Anonymized.Value(0, 0) == a.Anonymized.Value(0, 0) {
		t.Error("different seeds should give different noise")
	}
}
