package sabre

import (
	"testing"
	"testing/quick"

	"repro/internal/emd"
	"repro/internal/micro"
	"repro/internal/synth"
)

func TestAnonymizeValidation(t *testing.T) {
	tbl := synth.Uniform(30, 2, 1)
	if _, err := Anonymize(nil, 2, 0.1); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := Anonymize(tbl, 0, 0.1); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := Anonymize(tbl, 2, 0); err == nil {
		t.Error("t = 0 should fail")
	}
	if _, err := Anonymize(tbl, 2, 2); err == nil {
		t.Error("t > 1 should fail")
	}
}

func TestAnonymizePartitionValid(t *testing.T) {
	for _, n := range []int{20, 100, 333} {
		tbl := synth.Uniform(n, 2, int64(n))
		for _, tl := range []float64{0.05, 0.15, 0.3} {
			res, err := Anonymize(tbl, 3, tl)
			if err != nil {
				t.Fatalf("n=%d t=%v: %v", n, tl, err)
			}
			if err := micro.CheckPartition(res.Clusters, n, 3); err != nil {
				t.Fatalf("n=%d t=%v: %v", n, tl, err)
			}
		}
	}
}

func TestAnonymizeMeetsTOnEvaluationData(t *testing.T) {
	// The bucketization bound is conservative, so the achieved EMD should
	// meet the requested t on the evaluation data sets.
	for _, tl := range []float64{0.09, 0.13, 0.21} {
		res, err := Anonymize(synth.CensusMCD(), 5, tl)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxEMD > tl+1e-9 {
			t.Errorf("MCD t=%v: achieved EMD %v", tl, res.MaxEMD)
		}
		res, err = Anonymize(synth.CensusHCD(), 5, tl)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxEMD > tl+1e-9 {
			t.Errorf("HCD t=%v: achieved EMD %v", tl, res.MaxEMD)
		}
	}
}

func TestGreedyBucketsVsAnalyticMinimum(t *testing.T) {
	// The paper's Section 3 claim: SABRE's greedy bucketization can demand
	// larger equivalence classes than the analytic minimum of Algorithm 3.
	// Verify the direction: SABRE's EC size is never smaller than the
	// Eq. (3) requirement on the same data.
	tbl := synth.CensusMCD()
	n := tbl.Len()
	for _, tl := range []float64{0.05, 0.09, 0.13, 0.21} {
		res, err := Anonymize(tbl, 2, tl)
		if err != nil {
			t.Fatal(err)
		}
		analytic, err := emd.RequiredClusterSize(n, 2, tl)
		if err != nil {
			t.Fatal(err)
		}
		if res.ECSize < analytic {
			t.Errorf("t=%v: SABRE EC size %d below analytic minimum %d",
				tl, res.ECSize, analytic)
		}
	}
}

func TestBucketizeProperties(t *testing.T) {
	f := func(nRaw, kRaw uint8, tRaw uint16) bool {
		n := 10 + int(nRaw)%500
		k := 1 + int(kRaw)%8
		tl := 0.02 + float64(tRaw%300)/1000.0
		buckets := bucketize(n, k, tl)
		if len(buckets) == 0 {
			return false
		}
		// Buckets tile [0, n) contiguously.
		pos := 0
		for _, b := range buckets {
			if b.lo != pos || b.hi <= b.lo {
				return false
			}
			pos = b.hi
		}
		if pos != n {
			return false
		}
		// The configuration respects the conservative bound.
		m := ecSize(n, k, buckets)
		return len(buckets) == 1 || worstECBound(n, m, buckets) <= tl+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStricterTMeansMoreBuckets(t *testing.T) {
	// A stricter t needs finer within-bucket spread, so the greedy phase
	// must split at least as much.
	prev := -1
	for _, tl := range []float64{0.25, 0.17, 0.09, 0.05, 0.01} {
		buckets := bucketize(1080, 2, tl)
		if prev >= 0 && len(buckets) < prev {
			t.Errorf("t=%v: fewer buckets (%d) than at looser t (%d)",
				tl, len(buckets), prev)
		}
		prev = len(buckets)
	}
}

func TestECSize(t *testing.T) {
	// Four equal buckets of 25 over n=100: smallest 25 -> m = 4 (or k).
	buckets := []bucket{{0, 25}, {25, 50}, {50, 75}, {75, 100}}
	if got := ecSize(100, 2, buckets); got != 4 {
		t.Errorf("ecSize = %d, want 4", got)
	}
	if got := ecSize(100, 10, buckets); got != 10 {
		t.Errorf("ecSize with k=10 = %d, want 10", got)
	}
	// Uneven buckets: smallest 10 -> m = 10.
	uneven := []bucket{{0, 10}, {10, 100}}
	if got := ecSize(100, 2, uneven); got != 10 {
		t.Errorf("uneven ecSize = %d, want 10", got)
	}
}
