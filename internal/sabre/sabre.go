// Package sabre implements a SABRE-style bucketization baseline for
// t-closeness (after Cao, Karras, Kalnis & Tan, "SABRE: a Sensitive
// Attribute Bucketization and REdistribution framework for t-closeness",
// VLDB Journal 2011), the closest related work the paper compares its
// t-closeness-first algorithm against in Section 3.
//
// SABRE proceeds in two phases:
//
//  1. Bucketization: the data set is partitioned into buckets by the
//     confidential attribute, greedily splitting while the resulting bucket
//     structure still admits t-close equivalence classes.
//  2. Redistribution: equivalence classes are formed by drawing from each
//     bucket a number of records proportional to the bucket's share of the
//     data set (records are picked QI-nearest to a seed, as in
//     microaggregation, to limit information loss).
//
// The paper's criticism — reproduced by the BenchmarkBaselineSABRE
// comparison — is that SABRE's greedy bucketization can produce more
// buckets than the analytically minimal number used by its Algorithm 3,
// which forces larger equivalence classes and hence more information loss.
//
// Faithfulness note: this is a reimplementation of SABRE's principle, not a
// line-by-line port (the original handles hierarchies over categorical SAs
// and several splitting heuristics). Buckets here are contiguous runs of
// the confidential-attribute ranking, split greedily at the median while a
// conservative EMD bound keeps the implied equivalence classes within t.
// The achieved t-closeness of the output is re-verified by the tests.
package sabre

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
	"repro/internal/par"
)

// Typed parameter-domain sentinels, so callers (the core spec validation,
// the serving layer) can classify invalid requests with errors.Is before
// any work is done. The messages are exactly the strings AnonymizeCtx has
// always returned inline.
var (
	// ErrBadK rejects k < 1.
	ErrBadK = errors.New("sabre: k must be at least 1")
	// ErrBadT rejects t outside (0, 1].
	ErrBadT = errors.New("sabre: t must be in (0, 1]")
)

// Result is the outcome of SABRE anonymization.
type Result struct {
	// Clusters partitions the table's records into equivalence classes.
	Clusters []micro.Cluster
	// Buckets is the number of confidential-attribute buckets the greedy
	// phase produced (compare with Algorithm 3's EffectiveK).
	Buckets int
	// ECSize is the base equivalence-class size implied by the buckets.
	ECSize int
	// MaxEMD is the achieved t-closeness level, maximized over classes and
	// confidential attributes.
	MaxEMD float64
}

// bucket is a contiguous run [lo, hi) of the confidential-attribute-sorted
// record order.
type bucket struct {
	lo, hi int
}

func (b bucket) size() int { return b.hi - b.lo }

// Env carries prepared substrate an engine caller can share with a SABRE
// run so the baseline stops rebuilding per-table state per call. Every
// field is optional (nil means build it here) and read-only.
type Env struct {
	// Mat is the normalized quasi-identifier matrix (dataset.Table
	// .QIMatrix flattened); it must describe exactly the table's records.
	Mat *micro.Matrix
	// Order is the record order by (first confidential value, row) — the
	// ranking the buckets slice.
	Order []int
}

// Anonymize partitions the table into k-anonymous equivalence classes aimed
// at t-closeness level tLevel using SABRE-style bucketization and
// redistribution.
func Anonymize(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	return AnonymizeCtx(context.Background(), t, k, tLevel, nil)
}

// AnonymizeCtx is Anonymize with cooperative cancellation — checked once
// per equivalence class, so an abandoned run stops within one class build —
// and an optional prepared environment.
func AnonymizeCtx(ctx context.Context, t *dataset.Table, k int, tLevel float64, env *Env) (*Result, error) {
	if t == nil || t.Len() == 0 {
		return nil, errors.New("sabre: data set has no records")
	}
	if err := t.Schema().Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if tLevel <= 0 || tLevel > 1 {
		return nil, fmt.Errorf("%w, got %v", ErrBadT, tLevel)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := t.Len()
	var order []int
	if env != nil && env.Order != nil {
		order = env.Order
	} else {
		confCol := t.Schema().Confidentials()[0]
		conf := t.ColumnView(confCol)
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			if conf[order[i]] != conf[order[j]] {
				return conf[order[i]] < conf[order[j]]
			}
			return order[i] < order[j]
		})
	}
	var mat *micro.Matrix
	if env != nil && env.Mat != nil {
		mat = env.Mat
	} else {
		mat = micro.NewMatrix(t.QIMatrix())
	}

	buckets := bucketize(n, k, tLevel)
	clusters, err := redistribute(ctx, t, mat, order, buckets, k)
	if err != nil {
		return nil, err
	}

	spaces := make([]*emd.Space, 0, len(t.Schema().Confidentials()))
	for _, c := range t.Schema().Confidentials() {
		s, err := emd.NewSpace(t.ColumnView(c))
		if err != nil {
			return nil, err
		}
		spaces = append(spaces, s)
	}
	worst := 0.0
	for _, c := range clusters {
		for _, s := range spaces {
			if d := s.EMDOf(c.Rows); d > worst {
				worst = d
			}
		}
	}
	return &Result{
		Clusters: clusters,
		Buckets:  len(buckets),
		ECSize:   ecSize(n, k, buckets),
		MaxEMD:   worst,
	}, nil
}

// bucketize greedily splits the rank domain [0, n) at bucket medians until
// the conservative worst-case EMD of a proportional equivalence class over
// the buckets drops to t. Splitting the largest bucket first reduces the
// dominant within-bucket spread term fastest, mirroring SABRE's
// dispersion-driven greedy order. Greedy splitting stops at the *first*
// feasible configuration, which is why it may need more buckets (and hence
// larger equivalence classes) than the analytic Eq. (3) minimum — the
// comparison the paper draws in Section 3.
func bucketize(n, k int, tLevel float64) []bucket {
	buckets := []bucket{{lo: 0, hi: n}}
	for worstECBound(n, ecSize(n, k, buckets), buckets) > tLevel {
		largest := 0
		for i, b := range buckets {
			if b.size() > buckets[largest].size() {
				largest = i
			}
		}
		b := buckets[largest]
		if b.size() < 2 {
			// Fully split and still infeasible: the caller's ecSize will be
			// n, producing a single all-records class with EMD 0.
			break
		}
		mid := b.lo + b.size()/2
		next := make([]bucket, 0, len(buckets)+1)
		next = append(next, buckets[:largest]...)
		next = append(next, bucket{b.lo, mid}, bucket{mid, b.hi})
		next = append(next, buckets[largest+1:]...)
		buckets = next
	}
	return buckets
}

// ecSize returns the equivalence-class size implied by the buckets: at
// least k, and large enough that the smallest bucket contributes at least
// one record per class (so proportional representation is possible).
func ecSize(n, k int, buckets []bucket) int {
	smallest := n
	for _, b := range buckets {
		if b.size() < smallest {
			smallest = b.size()
		}
	}
	if smallest == 0 {
		return k
	}
	// m * smallest/n >= 1  =>  m >= n/smallest.
	m := (n + smallest - 1) / smallest
	if m < k {
		m = k
	}
	if m > n {
		m = n
	}
	return m
}

// drawCounts returns how many records an equivalence class of size m draws
// from each bucket: floor(m·f_B), at least 1, with the remainder assigned
// to the buckets with the most proportional slack.
func drawCounts(n, m int, buckets []bucket) []int {
	counts := make([]int, len(buckets))
	total := 0
	for i, b := range buckets {
		c := m * b.size() / n
		if c < 1 {
			c = 1
		}
		counts[i] = c
		total += c
	}
	for total < m {
		best, slack := 0, -1.0
		for i, b := range buckets {
			s := float64(b.size()) - float64(counts[i])*float64(n)/float64(m)
			if s > slack {
				best, slack = i, s
			}
		}
		counts[best]++
		total++
	}
	return counts
}

// worstECBound conservatively bounds the EMD of an equivalence class of
// size m drawing drawCounts records from each bucket, wherever in the
// bucket those records sit. Two components, in ordered-distance units:
//
//   - within-bucket spread: the class mass assigned to bucket B may need to
//     travel across the whole bucket, at most (|B|-1)/(n-1) ranks
//     (analogous to the Proposition 2 per-subset cost, without the factor
//     1/2: conservative).
//   - proportional mismatch: |c_B/m − f_B| mass per bucket is in the wrong
//     bucket and may travel up to half the domain.
func worstECBound(n, m int, buckets []bucket) float64 {
	if m <= 0 {
		return 1
	}
	if m >= n {
		return 0 // a single class holding everything matches exactly
	}
	counts := drawCounts(n, m, buckets)
	nf, mf := float64(n), float64(m)
	var within, mismatch float64
	for i, b := range buckets {
		f := float64(b.size()) / nf
		classShare := float64(counts[i]) / mf
		if b.size() > 1 {
			within += classShare * float64(b.size()-1) / (nf - 1)
		}
		d := classShare - f
		if d < 0 {
			d = -d
		}
		mismatch += d
	}
	return within + mismatch*0.5
}

// sabreDrawParMinRows is the mean pool size at or above which the
// per-bucket draws of one equivalence class fan out across the matrix
// worker budget. Below it the pool handoff costs more than the draws; both
// sides produce identical classes. A variable so the worker-sweep tests can
// force the parallel path on small tables.
var sabreDrawParMinRows = 256

// redistribute forms the equivalence classes: MDAV-style seeds (the record
// farthest from the centroid of the remaining records), each class drawing
// its proportional share of QI-nearest records from every bucket. The
// neighbor queries run on micro.Searchers — one over the whole record set
// (in confidential-ranking order, the concatenation of the bucket pools)
// for the seeds, one per bucket pool for the draws — which route through a
// k-d tree over the QI cube above the crossover and fall back to the linear
// scans below it. The centroid of the remaining records is maintained as a
// running sum instead of a per-class rescan.
//
// The per-bucket draws of one class are independent shards — each touches
// only its own pool slice and Searcher — so they run on a reusable worker
// pool (repro/internal/par) when the pools are large enough to pay for the
// handoff. Each bucket's draws land in a fixed slot and are concatenated in
// bucket order, so the class is bit-identical to the serial loop's at any
// worker count (micro.Matrix.Workers, the engine's WithWorkers budget).
func redistribute(ctx context.Context, t *dataset.Table, mat *micro.Matrix, order []int, buckets []bucket, k int) ([]micro.Cluster, error) {
	n := t.Len()
	m := ecSize(n, k, buckets)
	// Per-bucket record pools in confidential order; their concatenation in
	// bucket order is exactly `order`, the tie-break order of every seed
	// query.
	pools := make([][]int, len(buckets))
	poolSearch := make([]*micro.Searcher, len(buckets))
	for i, b := range buckets {
		pools[i] = append([]int(nil), order[b.lo:b.hi]...)
		poolSearch[i] = mat.NewSparseSearcher(pools[i])
	}
	alive := append([]int(nil), order...)
	global := mat.NewSearcher(alive)
	rc := micro.NewRunningCentroid(mat)
	scratch := make([]bool, n)
	counts := drawCounts(n, m, buckets)
	pool := par.NewPool(1)
	if w := mat.Workers(); w >= 2 && len(buckets) >= 2 && n/len(buckets) >= sabreDrawParMinRows {
		pool = par.NewPool(w)
	}
	defer pool.Close()
	drawn := make([][]int, len(buckets))
	var clusters []micro.Cluster
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		left := len(alive)
		if left == 0 {
			break
		}
		if left < m+k { // not enough for another full class: flush the rest
			rows := make([]int, 0, left)
			for i := range pools {
				rows = append(rows, pools[i]...)
				pools[i] = nil
			}
			if len(clusters) > 0 && len(rows) < k {
				last := &clusters[len(clusters)-1]
				last.Rows = append(last.Rows, rows...)
			} else {
				clusters = append(clusters, micro.Cluster{Rows: rows})
			}
			break
		}
		// Seed: record farthest from the centroid of all remaining records.
		seed := global.Farthest(alive, rc.CentroidOf(alive))
		pool.Run(len(pools), func(i int) {
			take := counts[i]
			if take > len(pools[i]) {
				take = len(pools[i])
			}
			drawn[i] = drawn[i][:0]
			for j := 0; j < take; j++ {
				x := poolSearch[i].Nearest(pools[i], mat.Row(seed))
				pools[i] = removeOne(pools[i], x)
				poolSearch[i].RemoveOne(x)
				drawn[i] = append(drawn[i], x)
			}
		})
		rows := make([]int, 0, m)
		for i := range drawn {
			rows = append(rows, drawn[i]...)
		}
		alive = micro.FilterRows(alive, rows, scratch)
		rc.RemoveRows(rows)
		global.Remove(rows)
		clusters = append(clusters, micro.Cluster{Rows: rows})
	}
	return clusters, nil
}

func removeOne(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
