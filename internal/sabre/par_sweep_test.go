package sabre

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/synth"
)

// TestRedistributeWorkerCountInvariant pins SABRE's parallel determinism
// contract: the bucket draws of one equivalence class are sharded across
// the matrix worker budget, and the resulting classes must be bit-identical
// to the serial run at every worker count — including on a duplicate-heavy
// table where every distance and bucket boundary ties.
func TestRedistributeWorkerCountInvariant(t *testing.T) {
	old := sabreDrawParMinRows
	sabreDrawParMinRows = 1
	t.Cleanup(func() { sabreDrawParMinRows = old })

	dupSchema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "B", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "S", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	dup := dataset.MustTable(dupSchema)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 150; i++ {
		_ = dup.AppendNumericRow(float64(rng.Intn(3)), float64(rng.Intn(3)), float64(rng.Intn(4)))
	}
	tables := []struct {
		name string
		tbl  *dataset.Table
	}{
		{"census", synth.Census(180, synth.FedTax, 13)},
		{"patients", synth.PatientDischarge(200, 29)},
		{"duplicates", dup},
	}
	for _, tc := range tables {
		for _, k := range []int{2, 4} {
			for _, tl := range []float64{0.08, 0.25} {
				run := func(workers int) *Result {
					mat := micro.NewMatrix(tc.tbl.QIMatrix())
					mat.SetTuning(micro.Tuning{Workers: workers})
					res, err := AnonymizeCtx(context.Background(), tc.tbl, k, tl, &Env{Mat: mat})
					if err != nil {
						t.Fatalf("%s k=%d t=%v workers=%d: %v", tc.name, k, tl, workers, err)
					}
					return res
				}
				want := run(1)
				for _, w := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
					got := run(w)
					if !reflect.DeepEqual(got.Clusters, want.Clusters) {
						t.Fatalf("%s k=%d t=%v: classes at workers=%d diverge from serial",
							tc.name, k, tl, w)
					}
					if got.MaxEMD != want.MaxEMD || got.Buckets != want.Buckets || got.ECSize != want.ECSize {
						t.Fatalf("%s k=%d t=%v workers=%d: diagnostics diverge", tc.name, k, tl, w)
					}
				}
			}
		}
	}
}
