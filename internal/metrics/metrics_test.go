package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/synth"
)

func pairFixture(t *testing.T) (orig, anon *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "b", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	orig = dataset.MustTable(schema)
	rows := [][]float64{{0, 0, 1}, {10, 100, 2}}
	for _, r := range rows {
		if err := orig.AppendNumericRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	anon = orig.Clone()
	return orig, anon
}

func TestNormalizedSSEIdentityIsZero(t *testing.T) {
	orig, anon := pairFixture(t)
	sse, err := NormalizedSSE(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 0 {
		t.Errorf("identity SSE = %v, want 0", sse)
	}
}

func TestNormalizedSSEHandComputed(t *testing.T) {
	orig, anon := pairFixture(t)
	// Perturb record 0: a by 5 (range 10 -> NED 0.5), b by 50 (range 100 ->
	// NED 0.5). Per-record error = (0.25+0.25)/2 = 0.25; over n=2 -> 0.125.
	anon.SetValue(0, 0, 5)
	anon.SetValue(0, 1, 50)
	sse, err := NormalizedSSE(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sse-0.125) > 1e-12 {
		t.Errorf("SSE = %v, want 0.125", sse)
	}
}

func TestNormalizedSSEIgnoresConfidentialChanges(t *testing.T) {
	orig, anon := pairFixture(t)
	anon.SetValue(0, 2, 999)
	sse, err := NormalizedSSE(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 0 {
		t.Errorf("confidential-only change should not affect SSE, got %v", sse)
	}
}

func TestNormalizedSSEConstantColumn(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	orig := dataset.MustTable(schema)
	for i := 0; i < 3; i++ {
		if err := orig.AppendNumericRow(7, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	anon := orig.Clone()
	anon.SetValue(0, 0, 8)
	sse, err := NormalizedSSE(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 0 {
		t.Errorf("constant column should contribute 0, got %v", sse)
	}
}

func TestNormalizedSSEShapeErrors(t *testing.T) {
	orig, _ := pairFixture(t)
	other := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	if err := other.AppendNumericRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NormalizedSSE(orig, other); err == nil {
		t.Error("different shapes should fail")
	}
	short := orig.Clone()
	shortSub, err := short.Subset([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NormalizedSSE(orig, shortSub); err == nil {
		t.Error("different lengths should fail")
	}
}

func TestNormalizedSSENonNegative(t *testing.T) {
	f := func(perturb []float64) bool {
		orig := synth.Uniform(20, 2, 77)
		anon := orig.Clone()
		for i, p := range perturb {
			if math.IsNaN(p) || math.IsInf(p, 0) || math.Abs(p) > 1e100 {
				return true
			}
			r := i % anon.Len()
			anon.SetValue(r, 0, anon.Value(r, 0)+p)
		}
		sse, err := NormalizedSSE(orig, anon)
		return err == nil && sse >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRawSSE(t *testing.T) {
	orig, anon := pairFixture(t)
	anon.SetValue(0, 0, 3) // diff 3 -> 9
	anon.SetValue(1, 1, 90)
	sse, err := RawSSE(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sse-(9+100)) > 1e-12 {
		t.Errorf("RawSSE = %v, want 109", sse)
	}
}

func TestWithinClusterSSEAndILRatio(t *testing.T) {
	tbl := synth.Uniform(40, 3, 9)
	all := make([]int, tbl.Len())
	for i := range all {
		all[i] = i
	}
	single := []micro.Cluster{{Rows: all}}
	singletons := make([]micro.Cluster, tbl.Len())
	for i := range singletons {
		singletons[i] = micro.Cluster{Rows: []int{i}}
	}
	sst := SSTotal(tbl)
	if sst <= 0 {
		t.Fatal("SSTotal should be positive for random data")
	}
	// One big cluster loses everything: within-SSE == SSTotal, ratio 1.
	w := WithinClusterSSE(tbl, single)
	if math.Abs(w-sst) > 1e-9 {
		t.Errorf("single-cluster within SSE %v != SST %v", w, sst)
	}
	if r := ILRatio(tbl, single); math.Abs(r-1) > 1e-9 {
		t.Errorf("single-cluster ILRatio = %v, want 1", r)
	}
	// Singletons lose nothing.
	if w := WithinClusterSSE(tbl, singletons); w != 0 {
		t.Errorf("singleton within SSE = %v, want 0", w)
	}
	if r := ILRatio(tbl, singletons); r != 0 {
		t.Errorf("singleton ILRatio = %v, want 0", r)
	}
}

func TestILRatioMonotoneInClusterSize(t *testing.T) {
	// Coarser MDAV partitions lose more information.
	tbl := synth.Census(300, synth.FedTax, 3)
	points := tbl.QIMatrix()
	prev := -1.0
	for _, k := range []int{2, 5, 15, 50} {
		clusters, err := micro.MDAV(points, k)
		if err != nil {
			t.Fatal(err)
		}
		r := ILRatio(tbl, clusters)
		if r < prev-0.02 { // small tolerance: MDAV is a heuristic
			t.Errorf("ILRatio decreased sharply at k=%d: %v -> %v", k, prev, r)
		}
		prev = r
	}
}

func TestMeanAbsoluteError(t *testing.T) {
	orig, anon := pairFixture(t)
	anon.SetValue(0, 0, 2) // |0-2| = 2 over 2 QIs x 2 records -> 0.5
	mae, err := MeanAbsoluteError(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mae-0.5) > 1e-12 {
		t.Errorf("MAE = %v, want 0.5", mae)
	}
}

func TestAggregationReducesSSEWithSmallerClusters(t *testing.T) {
	// End-to-end: SSE after aggregation should grow with k.
	tbl := synth.Census(300, synth.FedTax, 11)
	points := tbl.QIMatrix()
	var last float64 = -1
	for _, k := range []int{2, 10, 75} {
		clusters, err := micro.MDAV(points, k)
		if err != nil {
			t.Fatal(err)
		}
		anon, err := micro.Aggregate(tbl, clusters)
		if err != nil {
			t.Fatal(err)
		}
		sse, err := NormalizedSSE(tbl, anon)
		if err != nil {
			t.Fatal(err)
		}
		if sse < last-1e-4 {
			t.Errorf("SSE at k=%d (%v) below k-smaller value (%v)", k, sse, last)
		}
		last = sse
	}
}

func TestCorrelationDistortion(t *testing.T) {
	orig := synth.Census(300, synth.Fica, 21)
	// Identity release: zero distortion.
	d, err := CorrelationDistortion(orig, orig.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identity distortion = %v", d)
	}
	// Shuffled confidential column: distortion approaches the original
	// correlation magnitude.
	anon := orig.Clone()
	conf := orig.Schema().Confidentials()[0]
	n := orig.Len()
	for r := 0; r < n; r++ {
		anon.SetValue(r, conf, orig.Value((r+n/2)%n, conf))
	}
	d, err = CorrelationDistortion(orig, anon)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.3 {
		t.Errorf("shuffle distortion = %v, want substantial", d)
	}
}

func TestCorrelationDistortionValidation(t *testing.T) {
	a := synth.Uniform(10, 2, 1)
	b := synth.Uniform(5, 2, 1)
	if _, err := CorrelationDistortion(a, b); err == nil {
		t.Error("size mismatch should fail")
	}
}
