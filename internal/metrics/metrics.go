// Package metrics implements the information-loss (utility) measures used
// in the paper's Section 8.3 evaluation, chiefly the normalized Sum of
// Squared Errors of Eq. (5), plus supporting within-cluster homogeneity
// measures used by the ablation benchmarks.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// ErrShape is returned when original and anonymized tables disagree in size
// or schema.
var ErrShape = errors.New("metrics: original and anonymized tables have different shapes")

// NormalizedSSE computes the paper's Eq. (5):
//
//	SSE = (1/n) Σ_records (1/m) Σ_attrs NED(a, a')²
//
// where NED is the Normalized Euclidean Distance — the absolute difference
// between the original and anonymized value divided by the attribute's range
// in the original table — and the sum runs over the m quasi-identifier
// attributes (the ones microaggregation perturbs). The result is
// independent of the data set size and of the attribute scales; 0 means the
// release is identical to the original on the quasi-identifiers.
func NormalizedSSE(original, anonymized *dataset.Table) (float64, error) {
	if err := checkShapes(original, anonymized); err != nil {
		return 0, err
	}
	qis := original.Schema().QuasiIdentifiers()
	if len(qis) == 0 {
		return 0, errors.New("metrics: schema has no quasi-identifier attributes")
	}
	n := original.Len()
	if n == 0 {
		return 0, nil
	}
	ranges := make([]float64, len(qis))
	for j, c := range qis {
		st := original.Stats(c)
		ranges[j] = st.Max - st.Min
	}
	total := 0.0
	for r := 0; r < n; r++ {
		rowErr := 0.0
		for j, c := range qis {
			if ranges[j] == 0 {
				continue // constant column: any perturbation is meaningless
			}
			ned := (original.Value(r, c) - anonymized.Value(r, c)) / ranges[j]
			rowErr += ned * ned
		}
		total += rowErr / float64(len(qis))
	}
	return total / float64(n), nil
}

// RawSSE computes the unnormalized sum of squared attribute errors over the
// quasi-identifiers, the classical microaggregation information-loss
// objective.
func RawSSE(original, anonymized *dataset.Table) (float64, error) {
	if err := checkShapes(original, anonymized); err != nil {
		return 0, err
	}
	qis := original.Schema().QuasiIdentifiers()
	total := 0.0
	for _, c := range qis {
		o, a := original.ColumnView(c), anonymized.ColumnView(c)
		for r := range o {
			d := o[r] - a[r]
			total += d * d
		}
	}
	return total, nil
}

// WithinClusterSSE computes the sum of squared distances from each record's
// normalized quasi-identifier vector to its cluster centroid — the quantity
// a microaggregation partition minimizes. It equals RawSSE of the
// min-max-normalized table after mean aggregation.
func WithinClusterSSE(t *dataset.Table, clusters []micro.Cluster) float64 {
	points := t.QIMatrix()
	total := 0.0
	for _, c := range clusters {
		cen := micro.Centroid(points, c.Rows)
		for _, r := range c.Rows {
			total += micro.Dist2(points[r], cen)
		}
	}
	return total
}

// SSTotal computes the total sum of squares of the normalized
// quasi-identifier matrix around its global centroid. The classical
// information-loss ratio is WithinClusterSSE / SSTotal.
func SSTotal(t *dataset.Table) float64 {
	points := t.QIMatrix()
	if len(points) == 0 {
		return 0
	}
	cen := micro.CentroidAll(points)
	total := 0.0
	for _, p := range points {
		total += micro.Dist2(p, cen)
	}
	return total
}

// ILRatio returns the classical SSE/SST information-loss ratio in [0,1] for
// a partition: 0 when every cluster is a single point, approaching 1 when
// all structure is lost.
func ILRatio(t *dataset.Table, clusters []micro.Cluster) float64 {
	sst := SSTotal(t)
	if sst == 0 {
		return 0
	}
	return WithinClusterSSE(t, clusters) / sst
}

func checkShapes(a, b *dataset.Table) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("%w: %d vs %d records", ErrShape, a.Len(), b.Len())
	}
	if !a.Schema().Equal(b.Schema()) {
		return fmt.Errorf("%w: schemas differ", ErrShape)
	}
	return nil
}

// MeanAbsoluteError returns the mean |a-a'| over the quasi-identifiers, a
// scale-dependent complement to NormalizedSSE used in reports.
func MeanAbsoluteError(original, anonymized *dataset.Table) (float64, error) {
	if err := checkShapes(original, anonymized); err != nil {
		return 0, err
	}
	qis := original.Schema().QuasiIdentifiers()
	if len(qis) == 0 || original.Len() == 0 {
		return 0, nil
	}
	total := 0.0
	for _, c := range qis {
		o, a := original.ColumnView(c), anonymized.ColumnView(c)
		for r := range o {
			total += math.Abs(o[r] - a[r])
		}
	}
	return total / float64(len(qis)*original.Len()), nil
}

// CorrelationDistortion measures how well a release preserves the
// statistical relationship between quasi-identifiers and confidential
// attributes: the mean absolute difference between the original and released
// Pearson correlation over every (QI, confidential) pair. 0 means analyses
// of the QI↔confidential relationship on the release reach the original
// conclusions; values near the original correlation magnitude mean the
// relationship was destroyed (as the Anatomy-style permutation release does
// by design).
func CorrelationDistortion(original, anonymized *dataset.Table) (float64, error) {
	if err := checkShapes(original, anonymized); err != nil {
		return 0, err
	}
	qis := original.Schema().QuasiIdentifiers()
	confs := original.Schema().Confidentials()
	if len(qis) == 0 || len(confs) == 0 {
		return 0, errors.New("metrics: need quasi-identifier and confidential attributes")
	}
	var total float64
	var pairs int
	for _, q := range qis {
		for _, c := range confs {
			ro, err := original.Correlation(q, c)
			if err != nil {
				return 0, err
			}
			ra, err := anonymized.Correlation(q, c)
			if err != nil {
				return 0, err
			}
			total += math.Abs(ro - ra)
			pairs++
		}
	}
	return total / float64(pairs), nil
}
