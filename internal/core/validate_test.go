package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/generalization"
	"repro/internal/micro"
	"repro/internal/sabre"
	"repro/internal/synth"
	"repro/internal/tclose"
)

// TestValidateSpecDomains pins the typed sentinel each algorithm's
// parameter domain maps to, for both the exported admission-time check and
// the engine run itself.
func TestValidateSpecDomains(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"merge k=0", Spec{Algorithm: Merge, K: 0, T: 0.2}, tclose.ErrBadK},
		{"alg2 t=0", Spec{Algorithm: KAnonymityFirst, K: 3, T: 0}, tclose.ErrBadT},
		{"alg3 t>1", Spec{Algorithm: TClosenessFirst, K: 3, T: 1.5}, tclose.ErrBadT},
		{"mondrian k=0", Spec{Algorithm: MondrianBaseline, K: 0, T: 0.2}, generalization.ErrBadK},
		{"incognito k=0", Spec{Algorithm: IncognitoBaseline, K: 0, T: 0.2}, generalization.ErrBadK},
		{"sabre k=0", Spec{Algorithm: SABREBaseline, K: 0, T: 0.2}, sabre.ErrBadK},
		{"sabre t=0", Spec{Algorithm: SABREBaseline, K: 3, T: 0}, sabre.ErrBadT},
		{"sabre t>1", Spec{Algorithm: SABREBaseline, K: 3, T: 2}, sabre.ErrBadT},
		{"unknown algorithm", Spec{Algorithm: Algorithm(99), K: 3, T: 0.2}, ErrUnknownAlgorithm},
		{"negative algorithm", Spec{Algorithm: Algorithm(-1), K: 3, T: 0.2}, ErrUnknownAlgorithm},
		{"sharded alg3", Spec{Algorithm: TClosenessFirst, K: 3, T: 0.2, Sharded: true}, ErrShardedUnsupported},
		{"sharded mondrian", Spec{Algorithm: MondrianBaseline, K: 3, T: 0.2, Sharded: true}, ErrShardedUnsupported},
		{"sharded sabre", Spec{Algorithm: SABREBaseline, K: 3, T: 0.2, Sharded: true}, ErrShardedUnsupported},
		{"sharded incognito", Spec{Algorithm: IncognitoBaseline, K: 3, T: 0.2, Sharded: true}, ErrShardedUnsupported},
		{"sharded custom partitioner", Spec{Algorithm: Merge, K: 3, T: 0.2, Sharded: true,
			Partitioner: func(points [][]float64, k int) ([]micro.Cluster, error) { return nil, nil }}, ErrShardedUnsupported},
		// Parameter domains are checked before the sharded gate, same order
		// the run would fail in.
		{"sharded alg2 k=0", Spec{Algorithm: KAnonymityFirst, K: 0, T: 0.2, Sharded: true}, tclose.ErrBadK},
	}
	for _, tc := range cases {
		if err := ValidateSpec(tc.spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: ValidateSpec = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Valid specs across the whole set pass.
	for _, alg := range []Algorithm{Merge, KAnonymityFirst, TClosenessFirst,
		MondrianBaseline, SABREBaseline, IncognitoBaseline} {
		if err := ValidateSpec(Spec{Algorithm: alg, K: 3, T: 0.2}); err != nil {
			t.Errorf("%v: valid spec rejected: %v", alg, err)
		}
	}

	// Sharded is valid exactly for the two algorithms with a shard driver.
	for _, alg := range []Algorithm{Merge, KAnonymityFirst} {
		if err := ValidateSpec(Spec{Algorithm: alg, K: 3, T: 0.2, Sharded: true}); err != nil {
			t.Errorf("%v: valid sharded spec rejected: %v", alg, err)
		}
	}

	// Engine.Run returns the same sentinels without running anything.
	eng, err := NewEngine(synth.Census(60, synth.FedTax, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if _, err := eng.Run(context.Background(), tc.spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: Run = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Mondrian and Incognito accept any t: only k is constrained.
	for _, alg := range []Algorithm{MondrianBaseline, IncognitoBaseline} {
		for _, tt := range []float64{0, -1, 7} {
			if err := ValidateSpec(Spec{Algorithm: alg, K: 2, T: tt}); err != nil {
				t.Errorf("%v t=%v: baseline t domain should be unconstrained, got %v", alg, tt, err)
			}
		}
	}
}

// TestValidateSpecBeforeSubstrate pins that an invalid one-shot Anonymize
// fails on validation even when the table itself could never be prepared —
// i.e. validation happens before any substrate build.
func TestValidateSpecBeforeSubstrate(t *testing.T) {
	if _, err := Anonymize(nil, Spec{Algorithm: Algorithm(42), K: 3, T: 0.2}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("Anonymize(nil, unknown alg) = %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := Anonymize(nil, Spec{Algorithm: SABREBaseline, K: 0, T: 0.2}); !errors.Is(err, sabre.ErrBadK) {
		t.Fatalf("Anonymize(nil, sabre k=0) = %v, want sabre.ErrBadK", err)
	}
}
