package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/synth"
)

// TestEngineDeleteMatchesCold pins the deletion-epoch contract: Delete
// followed by a cold Run is bit-identical to a fresh engine over the
// filtered table, for the paper's algorithms and a substrate-sharing
// baseline, on both numeric and categorical-confidential tables.
func TestEngineDeleteMatchesCold(t *testing.T) {
	tables := map[string]*dataset.Table{
		"patients": synth.PatientDischarge(600, synth.DefaultSeed),
		"cat":      catTable(t, 180),
	}
	// Duplicated and unordered ids are allowed.
	dead := []int{5, 17, 17, 44, 3, 101, 102, 103, 59}
	for name, tbl := range tables {
		eng, err := NewEngine(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Delete(dead...); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if eng.Epoch() != 1 || eng.Len() != tbl.Len()-8 {
			t.Fatalf("%s: epoch=%d len=%d after delete", name, eng.Epoch(), eng.Len())
		}
		keep := make([]int, 0, tbl.Len())
		drop := map[int]bool{}
		for _, r := range dead {
			drop[r] = true
		}
		for r := 0; r < tbl.Len(); r++ {
			if !drop[r] {
				keep = append(keep, r)
			}
		}
		filtered, err := tbl.Subset(keep)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{Merge, KAnonymityFirst, TClosenessFirst, SABREBaseline} {
			spec := Spec{Algorithm: alg, K: 3, T: 0.12, SkipAssessment: true}
			got, err := eng.Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("%s/%v: engine: %v", name, alg, err)
			}
			want, err := Anonymize(filtered, spec)
			if err != nil {
				t.Fatalf("%s/%v: cold: %v", name, alg, err)
			}
			assertSameResult(t, name+"/"+alg.String(), got, want)
			if hashOutput(got.Anonymized) != hashOutput(want.Anonymized) {
				t.Fatalf("%s/%v: release differs from cold run over filtered table", name, alg)
			}
		}
	}
}

// TestEngineDeleteErrors pins the all-or-nothing contract of Delete.
func TestEngineDeleteErrors(t *testing.T) {
	tbl := synth.PatientDischarge(50, synth.DefaultSeed)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(); err != nil {
		t.Fatalf("empty delete: %v", err)
	}
	if err := eng.Delete(50); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range delete: err = %v", err)
	}
	if err := eng.Delete(-1); err == nil {
		t.Fatal("negative row id accepted")
	}
	all := iota0(50)
	if err := eng.Delete(all...); err == nil {
		t.Fatal("deleting every record accepted")
	}
	if eng.Epoch() != 0 || eng.Len() != 50 {
		t.Fatalf("failed deletes changed state: epoch=%d len=%d", eng.Epoch(), eng.Len())
	}
	if _, err := eng.Run(context.Background(), Spec{Algorithm: TClosenessFirst, K: 2, T: 0.3, SkipAssessment: true}); err != nil {
		t.Fatalf("engine unusable after failed deletes: %v", err)
	}
}

// TestEngineWarmSameEpochIdentical: a warm re-run at the seed's own epoch
// has nothing to repair, so it must reproduce the seeding run's partition
// bit-for-bit (the merge finisher sees an already-t-close partition).
func TestEngineWarmSameEpochIdentical(t *testing.T) {
	tbl := synth.PatientDischarge(1200, synth.DefaultSeed)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{Merge, KAnonymityFirst, TClosenessFirst} {
		spec := Spec{Algorithm: alg, K: 3, T: 0.1, SkipAssessment: true, Warm: true}
		first, err := eng.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if first.Warm != nil {
			t.Fatalf("%v: first warm run should miss (cold fallback), got %+v", alg, first.Warm)
		}
		second, err := eng.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if second.Warm == nil {
			t.Fatalf("%v: second warm run should hit the seed cache", alg)
		}
		if second.Warm.SeedEpoch != 0 || second.Warm.Assigned != 0 || second.Warm.ScopeRows != 0 {
			t.Fatalf("%v: same-epoch warm stats should be all-zero, got %+v", alg, second.Warm)
		}
		if hashPartition(first) != hashPartition(second) {
			t.Fatalf("%v: same-epoch warm re-run diverged from its seed", alg)
		}
	}
}

// TestEngineWarmChainedEpochsUtility is the warm-start property test across
// chained append and delete epochs: after every epoch, a warm run of each
// paper algorithm must keep the full privacy guarantee (cover partition,
// k-anonymity at the effective k, MaxEMD <= t) and stay within a pinned
// utility bound of a cold run at the same epoch, while touching only a
// delta-sized repair frontier.
func TestEngineWarmChainedEpochsUtility(t *testing.T) {
	full := synth.PatientDischarge(1500, synth.DefaultSeed)
	base, err := full.Subset(iota0(1200))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	specs := []Spec{
		{Algorithm: Merge, K: 3, T: 0.1, SkipAssessment: true, Warm: true},
		{Algorithm: KAnonymityFirst, K: 2, T: 0.13, SkipAssessment: true, Warm: true},
		{Algorithm: TClosenessFirst, K: 2, T: 0.25, SkipAssessment: true, Warm: true},
	}
	// Seed every spec's cache at epoch 0.
	for _, spec := range specs {
		if _, err := eng.Run(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	type step struct {
		name string
		do   func() error
	}
	next := 1200
	appendBatch := func(k int) func() error {
		return func() error {
			rows := appendRows(full, next, next+k)
			next += k
			return eng.Append(rows...)
		}
	}
	steps := []step{
		{"append-40", appendBatch(40)},
		{"delete-30", func() error { return eng.Delete(iota0(30)...) }},
		{"append-60", appendBatch(60)},
		{"delete-scattered", func() error {
			ids := make([]int, 0, 25)
			for i := 0; i < 25; i++ {
				ids = append(ids, (i*47)%eng.Len())
			}
			return eng.Delete(ids...)
		}},
		{"append-100", appendBatch(100)},
	}
	for si, s := range steps {
		if err := s.do(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		n := eng.Len()
		for _, spec := range specs {
			warm, err := eng.Run(ctx, spec)
			if err != nil {
				t.Fatalf("%s/%v: warm: %v", s.name, spec.Algorithm, err)
			}
			if warm.Warm == nil {
				t.Fatalf("%s/%v: expected a warm hit", s.name, spec.Algorithm)
			}
			cold := spec
			cold.Warm = false
			want, err := eng.Run(ctx, cold)
			if err != nil {
				t.Fatalf("%s/%v: cold: %v", s.name, spec.Algorithm, err)
			}
			// Privacy is non-negotiable: warm runs keep the exact guarantee.
			minK := spec.K
			if warm.EffectiveK < minK {
				t.Fatalf("%s/%v: effective k %d below requested %d", s.name, spec.Algorithm, warm.EffectiveK, spec.K)
			}
			if err := micro.CheckPartition(warm.Clusters, n, minK); err != nil {
				t.Fatalf("%s/%v: warm partition invalid: %v", s.name, spec.Algorithm, err)
			}
			if warm.MaxEMD > spec.T {
				t.Fatalf("%s/%v: warm MaxEMD %v exceeds t=%v", s.name, spec.Algorithm, warm.MaxEMD, spec.T)
			}
			// Utility stays within the pinned bound of the cold run.
			if warm.SSE > 2*want.SSE+1e-9 {
				t.Fatalf("%s/%v: warm SSE %v vs cold %v exceeds 2x bound", s.name, spec.Algorithm, warm.SSE, want.SSE)
			}
			// The repair frontier is delta-sized, not table-sized.
			if warm.Warm.ScopeRows > n/2 {
				t.Fatalf("%s/%v: repair scope %d of %d rows — not local", s.name, spec.Algorithm, warm.Warm.ScopeRows, n)
			}
			_ = si
		}
	}
}

// TestEngineDeleteRacesCancelledRun overlaps Delete with an in-flight run
// that gets cancelled mid-partition: the run keeps its snapshot (nil or
// ctx.Err()), the deletes land, and epoch/len/substrate stay consistent for
// a follow-up run. CI runs this under -race; it is the race probe of the
// deletion epoch-swap path.
func TestEngineDeleteRacesCancelledRun(t *testing.T) {
	tbl := synth.PatientDischarge(4000, synth.DefaultSeed)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, runErr = eng.Run(ctx, Spec{Algorithm: KAnonymityFirst, K: 2, T: 0.02, SkipAssessment: true})
	}()
	time.Sleep(10 * time.Millisecond)
	var delErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5 && delErr == nil; i++ {
			delErr = eng.Delete(0, 1, 2)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	wg.Wait()
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want nil or context.Canceled", runErr)
	}
	if delErr != nil {
		t.Fatalf("delete racing cancelled run failed: %v", delErr)
	}
	if eng.Epoch() != 5 || eng.Len() != 3985 {
		t.Fatalf("delete state: epoch=%d len=%d, want 5/3985", eng.Epoch(), eng.Len())
	}
	if eng.Table().Len() != 3985 {
		t.Fatalf("substrate table length %d, want 3985", eng.Table().Len())
	}
	if _, err := eng.Run(context.Background(), Spec{Algorithm: TClosenessFirst, K: 3, T: 0.3, SkipAssessment: true}); err != nil {
		t.Fatalf("engine unusable after delete/cancel race: %v", err)
	}
}

// TestWarmAppendFullSizeSpeedup is the acceptance pin of the tentpole: on
// the full-size patient-discharge table, a 1%-append warm re-run of
// KAnonymityFirst completes at least 10x faster than a cold re-run at the
// same epoch, with SSE within 25% of the cold result and the t-closeness
// guarantee intact.
func TestWarmAppendFullSizeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size timing test")
	}
	const n = synth.PatientDischargeSize // 23,435
	const delta = n / 100                // 1% append
	full := synth.PatientDischarge(n, synth.DefaultSeed)
	base, err := full.Subset(iota0(n - delta))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := Spec{Algorithm: KAnonymityFirst, K: 2, T: 0.13, SkipAssessment: true, Warm: true}
	if _, err := eng.Run(ctx, spec); err != nil { // seeds the warm cache
		t.Fatal(err)
	}
	if err := eng.Append(appendRows(full, n-delta, n)...); err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Warm == nil || warm.Warm.Assigned != delta {
		t.Fatalf("warm run stats = %+v, want a hit assigning %d rows", warm.Warm, delta)
	}
	coldSpec := spec
	coldSpec.Warm = false
	cold, err := eng.Run(ctx, coldSpec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %v, warm %v (%.1fx), scope %d/%d rows, stats %+v, merges %d swaps %d, SSE cold %.6f warm %.6f, MaxEMD cold %.4f warm %.4f",
		cold.Elapsed, warm.Elapsed, float64(cold.Elapsed)/float64(warm.Elapsed),
		warm.Warm.ScopeRows, n, warm.Warm, warm.Merges, warm.Swaps,
		cold.SSE, warm.SSE, cold.MaxEMD, warm.MaxEMD)
	if warm.MaxEMD > spec.T {
		t.Fatalf("warm MaxEMD %v exceeds t=%v", warm.MaxEMD, spec.T)
	}
	if err := micro.CheckPartition(warm.Clusters, n, spec.K); err != nil {
		t.Fatalf("warm partition invalid: %v", err)
	}
	if warm.SSE > 1.25*cold.SSE {
		t.Fatalf("warm SSE %v beyond 1.25x cold %v", warm.SSE, cold.SSE)
	}
	if cold.Elapsed < 10*warm.Elapsed {
		t.Fatalf("warm re-run %v not 10x under cold %v", warm.Elapsed, cold.Elapsed)
	}
}
