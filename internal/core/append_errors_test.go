package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// catTable builds a small deterministic table with numeric quasi-identifiers
// and a categorical confidential attribute, the shape the Append label
// paths care about.
func catTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	schema, err := dataset.NewSchema(
		dataset.Attribute{Name: "age", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "zip", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "disease", Role: dataset.Confidential, Kind: dataset.Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := dataset.NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"flu", "asthma", "ulcer", "cold"}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(float64(20+i%37), float64(1000+7*i%400), labels[i%len(labels)]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestEngineAppendArityAndKindErrors pins the typed sentinels of the two
// malformed-batch paths — wrong row width and wrong value kind — and that
// a failed batch is all-or-nothing even when its first rows were valid.
func TestEngineAppendArityAndKindErrors(t *testing.T) {
	tbl := catTable(t, 40)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}

	// Short row, long row.
	if err := eng.Append([]any{21.0, 1200.0}); !errors.Is(err, dataset.ErrRowWidth) {
		t.Fatalf("short row: err = %v, want ErrRowWidth", err)
	}
	if err := eng.Append([]any{21.0, 1200.0, "flu", "extra"}); !errors.Is(err, dataset.ErrRowWidth) {
		t.Fatalf("long row: err = %v, want ErrRowWidth", err)
	}
	// Kind mismatches: number where the categorical confidential wants a
	// string, string where a numeric QI wants a number, unsupported type.
	if err := eng.Append([]any{21.0, 1200.0, 3.0}); !errors.Is(err, dataset.ErrKindMismatch) {
		t.Fatalf("numeric label: err = %v, want ErrKindMismatch", err)
	}
	if err := eng.Append([]any{"old", 1200.0, "flu"}); !errors.Is(err, dataset.ErrKindMismatch) {
		t.Fatalf("string age: err = %v, want ErrKindMismatch", err)
	}
	if err := eng.Append([]any{21.0, 1200.0, []byte("flu")}); !errors.Is(err, dataset.ErrKindMismatch) {
		t.Fatalf("byte-slice label: err = %v, want ErrKindMismatch", err)
	}
	// A batch whose first row is fine and second is malformed must not
	// ingest the first row.
	err = eng.Append(
		[]any{33.0, 1100.0, "flu"},
		[]any{34.0, 1100.0},
	)
	if !errors.Is(err, dataset.ErrRowWidth) {
		t.Fatalf("mixed batch: err = %v, want ErrRowWidth", err)
	}
	if eng.Epoch() != 0 || eng.Len() != 40 {
		t.Fatalf("failed appends changed state: epoch=%d len=%d", eng.Epoch(), eng.Len())
	}
	// The engine still runs, bit-identical to a cold engine over the
	// untouched table.
	spec := Spec{Algorithm: TClosenessFirst, K: 2, T: 0.3, SkipAssessment: true}
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Anonymize(tbl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hashPartition(res) != hashPartition(cold) {
		t.Fatal("engine partition drifted after failed appends")
	}
}

// TestEngineAppendUnknownLabelExtendsDomain: a label never seen at prepare
// time is not an error — it opens a new confidential bin, and post-append
// runs stay bit-identical to a cold engine over the concatenated table
// (the nominal EMD space gains the bin incrementally).
func TestEngineAppendUnknownLabelExtendsDomain(t *testing.T) {
	tbl := catTable(t, 40)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]any{
		{55.0, 1399.0, "shingles"}, // label unknown to the prepared dict
		{56.0, 1398.0, "flu"},
		{23.0, 1001.0, "shingles"},
	}
	if err := eng.Append(rows...); err != nil {
		t.Fatalf("unknown label append should succeed, got %v", err)
	}
	if eng.Epoch() != 1 || eng.Len() != 43 {
		t.Fatalf("append state: epoch=%d len=%d, want 1/43", eng.Epoch(), eng.Len())
	}
	coldTbl := catTable(t, 40)
	for _, r := range rows {
		if err := coldTbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	spec := Spec{Algorithm: TClosenessFirst, K: 2, T: 0.3, SkipAssessment: true}
	got, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Anonymize(coldTbl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hashPartition(got) != hashPartition(want) {
		t.Fatal("post-append partition differs from cold engine over concatenated table")
	}
	if hashOutput(got.Anonymized) != hashOutput(want.Anonymized) {
		t.Fatal("post-append release differs from cold engine over concatenated table")
	}
}

// TestEngineAppendRacesCancelledRun overlaps Append with an in-flight run
// that gets cancelled mid-partition: the run must return ctx.Err() (it
// keeps its epoch snapshot), the append must succeed, and the engine must
// stay consistent for a follow-up run. CI runs this package under -race,
// making this the race probe of the epoch-swap path.
func TestEngineAppendRacesCancelledRun(t *testing.T) {
	tbl := synth.PatientDischarge(4000, synth.DefaultSeed)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, runErr = eng.Run(ctx, Spec{Algorithm: KAnonymityFirst, K: 2, T: 0.02, SkipAssessment: true})
	}()
	// Let the run get into its partition loop, append concurrently, then
	// cancel while the appends are still landing.
	time.Sleep(10 * time.Millisecond)
	var appendErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// age, zip, admit day, stay, severity, sex, ward, charge.
		for i := 0; i < 5 && appendErr == nil; i++ {
			appendErr = eng.Append([]any{30.0, 90210.0, float64(1 + i%7), 2.0, 1.0, 1.0, 3.0, 15000.0})
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	wg.Wait()
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want nil or context.Canceled", runErr)
	}
	if appendErr != nil {
		t.Fatalf("append racing cancelled run failed: %v", appendErr)
	}
	if eng.Epoch() != 5 || eng.Len() != 4005 {
		t.Fatalf("append state: epoch=%d len=%d, want 5/4005", eng.Epoch(), eng.Len())
	}
	// The engine is fully usable afterwards, whatever the race outcome.
	if _, err := eng.Run(context.Background(), Spec{Algorithm: TClosenessFirst, K: 3, T: 0.3, SkipAssessment: true}); err != nil {
		t.Fatalf("engine unusable after append/cancel race: %v", err)
	}
}
