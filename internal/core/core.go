// Package core orchestrates the full anonymization pipeline of the paper:
// given a microdata table whose schema marks quasi-identifier and
// confidential attributes, it runs one of the three
// microaggregation-for-t-closeness algorithms (or a generalization
// baseline), performs the aggregation step, and assembles the privacy and
// utility diagnostics the evaluation section reports.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/generalization"
	"repro/internal/metrics"
	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/sabre"
	"repro/internal/tclose"
)

// Algorithm selects the anonymization method.
type Algorithm int

const (
	// Merge is the paper's Algorithm 1: standard microaggregation followed
	// by cluster merging until t-closeness holds.
	Merge Algorithm = iota
	// KAnonymityFirst is the paper's Algorithm 2: t-closeness-aware cluster
	// refinement by record swaps, finished with the merge step.
	KAnonymityFirst
	// TClosenessFirst is the paper's Algorithm 3: t-closeness by
	// construction via rank subsets; the best performer in the evaluation.
	TClosenessFirst
	// MondrianBaseline is the generalization/recoding baseline: Mondrian
	// median-cut partitioning with the t-closeness split constraint.
	MondrianBaseline
	// SABREBaseline is the bucketization-and-redistribution baseline of
	// Cao et al. (VLDB J 2011), the closest related work in Section 3.
	SABREBaseline
	// IncognitoBaseline is the full-domain generalization baseline: an
	// Incognito-style lattice search with the t-closeness constraint, the
	// classical approach of Li et al. (ICDE 2007).
	IncognitoBaseline
)

// String returns the name used in reports and benchmark output.
func (a Algorithm) String() string {
	switch a {
	case Merge:
		return "alg1-merge"
	case KAnonymityFirst:
		return "alg2-kanon-first"
	case TClosenessFirst:
		return "alg3-tclose-first"
	case MondrianBaseline:
		return "mondrian-t"
	case SABREBaseline:
		return "sabre"
	case IncognitoBaseline:
		return "incognito-t"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves a command-line name ("1", "alg1", "merge", ...)
// into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "1", "alg1", "merge", "alg1-merge":
		return Merge, nil
	case "2", "alg2", "kanon-first", "alg2-kanon-first":
		return KAnonymityFirst, nil
	case "3", "alg3", "tclose-first", "alg3-tclose-first":
		return TClosenessFirst, nil
	case "mondrian", "mondrian-t", "baseline":
		return MondrianBaseline, nil
	case "sabre":
		return SABREBaseline, nil
	case "incognito", "incognito-t":
		return IncognitoBaseline, nil
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q", s)
	}
}

// Config parameterizes Anonymize.
type Config struct {
	// Algorithm selects the anonymization method. The zero value is Merge
	// (Algorithm 1).
	Algorithm Algorithm
	// K is the k-anonymity parameter (minimum equivalence class size).
	K int
	// T is the t-closeness parameter (maximum EMD between any equivalence
	// class's confidential distribution and the global one).
	T float64
	// Partitioner overrides the initial microaggregation of Algorithm 1
	// (nil selects MDAV). Ignored by the other algorithms.
	Partitioner tclose.Partitioner
	// SkipAssessment suppresses the independent privacy re-verification of
	// the output, which costs an extra O(n + classes·bins) pass; benchmarks
	// of the algorithms themselves set it.
	SkipAssessment bool
}

// Result is the outcome of a full anonymization run.
type Result struct {
	// Anonymized is the released table: quasi-identifiers aggregated per
	// cluster, identifiers blanked, everything else untouched.
	Anonymized *dataset.Table
	// Clusters is the partition behind the release.
	Clusters []micro.Cluster
	// MaxEMD is the worst cluster-to-dataset EMD (the achieved t).
	MaxEMD float64
	// Sizes summarizes cluster cardinalities (Tables 1-3 of the paper).
	Sizes micro.SizeStats
	// SSE is the normalized sum of squared errors of Eq. (5) (Figures 6-7).
	SSE float64
	// Merges and Swaps count the work done by Algorithms 1 and 2.
	Merges, Swaps int
	// EffectiveK is the enforced minimum cluster size (Algorithm 3 raises
	// it per Eq. 3-4).
	EffectiveK int
	// Privacy is an independent re-verification of the release (nil when
	// Config.SkipAssessment is set).
	Privacy *privacy.Report
	// Elapsed is the wall-clock anonymization time (partition +
	// aggregation, excluding assessment).
	Elapsed time.Duration
}

// Anonymize runs the configured algorithm over the table and returns the
// release plus diagnostics. The input table is not modified.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	if t == nil {
		return nil, errors.New("core: nil table")
	}
	start := time.Now()
	var (
		clusters          []micro.Cluster
		maxEMD            float64
		merges, swaps, ek int
		anonymized        *dataset.Table
		err               error
	)
	switch cfg.Algorithm {
	case Merge:
		var res *tclose.Result
		res, err = tclose.Algorithm1(t, cfg.K, cfg.T, cfg.Partitioner)
		if err == nil {
			clusters, maxEMD, merges, ek = res.Clusters, res.MaxEMD, res.Merges, res.EffectiveK
		}
	case KAnonymityFirst:
		var res *tclose.Result
		res, err = tclose.Algorithm2(t, cfg.K, cfg.T)
		if err == nil {
			clusters, maxEMD, merges, swaps, ek = res.Clusters, res.MaxEMD, res.Merges, res.Swaps, res.EffectiveK
		}
	case TClosenessFirst:
		var res *tclose.Result
		res, err = tclose.Algorithm3(t, cfg.K, cfg.T)
		if err == nil {
			clusters, maxEMD, ek = res.Clusters, res.MaxEMD, res.EffectiveK
		}
	case MondrianBaseline:
		clusters, err = generalization.MondrianT(t, cfg.K, cfg.T)
		if err == nil {
			maxEMD, err = privacy.TClosenessOf(t, clusters)
			ek = cfg.K
		}
	case SABREBaseline:
		var res *sabre.Result
		res, err = sabre.Anonymize(t, cfg.K, cfg.T)
		if err == nil {
			clusters, maxEMD, ek = res.Clusters, res.MaxEMD, res.ECSize
		}
	case IncognitoBaseline:
		var res *generalization.GenResult
		res, err = generalization.IncognitoT(t, cfg.K, cfg.T, 0)
		if err == nil {
			clusters, maxEMD, ek = res.Clusters, res.MaxEMD, cfg.K
			anonymized, err = generalization.Recode(t, res.Levels, 0)
		}
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	switch {
	case anonymized != nil:
		// IncognitoBaseline already produced its generalized release.
	case cfg.Algorithm == MondrianBaseline:
		anonymized, err = generalization.Aggregate(t, clusters)
	default:
		anonymized, err = micro.Aggregate(t, clusters)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	sse, err := metrics.NormalizedSSE(t, anonymized)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Anonymized: anonymized,
		Clusters:   clusters,
		MaxEMD:     maxEMD,
		Sizes:      micro.Sizes(clusters),
		SSE:        sse,
		Merges:     merges,
		Swaps:      swaps,
		EffectiveK: ek,
		Elapsed:    elapsed,
	}
	if !cfg.SkipAssessment {
		rep, err := assess(t, clusters)
		if err != nil {
			return nil, err
		}
		res.Privacy = rep
	}
	return res, nil
}

// assess re-verifies the partition directly (rather than via the aggregated
// table) so that identical centroids of two different clusters cannot mask a
// too-small class.
func assess(t *dataset.Table, clusters []micro.Cluster) (*privacy.Report, error) {
	tc, err := privacy.TClosenessOf(t, clusters)
	if err != nil {
		return nil, err
	}
	ld, err := privacy.LDiversityOf(t, clusters)
	if err != nil {
		return nil, err
	}
	return &privacy.Report{
		Classes:    len(clusters),
		KAnonymity: micro.Sizes(clusters).Min,
		TCloseness: tc,
		LDiversity: ld,
	}, nil
}
