// Package core orchestrates the full anonymization pipeline of the paper:
// given a microdata table whose schema marks quasi-identifier and
// confidential attributes, it runs one of the three
// microaggregation-for-t-closeness algorithms (or a generalization
// baseline), performs the aggregation step, and assembles the privacy and
// utility diagnostics the evaluation section reports.
//
// The primary entry point is the Engine: NewEngine prepares the reusable
// per-table substrate once, Engine.Run executes any algorithm against it
// under a context, and Engine.Append ingests new records in epochs. The
// one-shot Anonymize remains as a thin compatibility shim over a throwaway
// engine.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/generalization"
	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/sabre"
	"repro/internal/tclose"
)

// Algorithm selects the anonymization method.
type Algorithm int

const (
	// Merge is the paper's Algorithm 1: standard microaggregation followed
	// by cluster merging until t-closeness holds.
	Merge Algorithm = iota
	// KAnonymityFirst is the paper's Algorithm 2: t-closeness-aware cluster
	// refinement by record swaps, finished with the merge step.
	KAnonymityFirst
	// TClosenessFirst is the paper's Algorithm 3: t-closeness by
	// construction via rank subsets; the best performer in the evaluation.
	TClosenessFirst
	// MondrianBaseline is the generalization/recoding baseline: Mondrian
	// median-cut partitioning with the t-closeness split constraint.
	MondrianBaseline
	// SABREBaseline is the bucketization-and-redistribution baseline of
	// Cao et al. (VLDB J 2011), the closest related work in Section 3.
	SABREBaseline
	// IncognitoBaseline is the full-domain generalization baseline: an
	// Incognito-style lattice search with the t-closeness constraint, the
	// classical approach of Li et al. (ICDE 2007).
	IncognitoBaseline
)

// String returns the name used in reports and benchmark output.
func (a Algorithm) String() string {
	switch a {
	case Merge:
		return "alg1-merge"
	case KAnonymityFirst:
		return "alg2-kanon-first"
	case TClosenessFirst:
		return "alg3-tclose-first"
	case MondrianBaseline:
		return "mondrian-t"
	case SABREBaseline:
		return "sabre"
	case IncognitoBaseline:
		return "incognito-t"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// MarshalText encodes the algorithm as its canonical report name (the
// String form, which ParseAlgorithm round-trips), implementing
// encoding.TextMarshaler so Algorithm fields serialize as readable names in
// JSON documents like the benchmark evidence files.
func (a Algorithm) MarshalText() ([]byte, error) {
	switch a {
	case Merge, KAnonymityFirst, TClosenessFirst, MondrianBaseline, SABREBaseline, IncognitoBaseline:
		return []byte(a.String()), nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", int(a))
}

// UnmarshalText decodes any name ParseAlgorithm accepts, implementing
// encoding.TextUnmarshaler.
func (a *Algorithm) UnmarshalText(text []byte) error {
	alg, err := ParseAlgorithm(string(text))
	if err != nil {
		return err
	}
	*a = alg
	return nil
}

// ParseAlgorithm resolves a command-line name ("1", "alg1", "merge", ...)
// into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "1", "alg1", "merge", "alg1-merge":
		return Merge, nil
	case "2", "alg2", "kanon-first", "alg2-kanon-first":
		return KAnonymityFirst, nil
	case "3", "alg3", "tclose-first", "alg3-tclose-first":
		return TClosenessFirst, nil
	case "mondrian", "mondrian-t", "baseline":
		return MondrianBaseline, nil
	case "sabre":
		return SABREBaseline, nil
	case "incognito", "incognito-t":
		return IncognitoBaseline, nil
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q", s)
	}
}

// Spec parameterizes one anonymization run (Engine.Run or the legacy
// Anonymize): which algorithm and at which privacy level.
type Spec struct {
	// Algorithm selects the anonymization method. The zero value is Merge
	// (Algorithm 1).
	Algorithm Algorithm
	// K is the k-anonymity parameter (minimum equivalence class size).
	K int
	// T is the t-closeness parameter (maximum EMD between any equivalence
	// class's confidential distribution and the global one).
	T float64
	// Partitioner overrides the initial microaggregation of Algorithm 1
	// (nil selects MDAV). Ignored by the other algorithms. Note that the
	// engine caches default-MDAV partitions per k; a custom partitioner is
	// invoked on every run.
	Partitioner tclose.Partitioner
	// SkipAssessment suppresses the independent privacy re-verification of
	// the output, which costs an extra O(n + classes·bins) pass; benchmarks
	// of the algorithms themselves set it.
	SkipAssessment bool
	// Sharded requests sharded partition construction for Merge and
	// KAnonymityFirst: the record space is split into disjoint k-d shards
	// (one per engine worker, subject to a per-shard size floor), the
	// cluster loop runs concurrently inside each shard, and a
	// reconciliation pass repairs k/t violations along shard boundaries.
	// k-anonymity and t-closeness hold exactly in the output, but the
	// partition is NOT bit-identical to the serial one — cluster shapes
	// near shard boundaries depend on the worker budget — which is why the
	// mode is an explicit opt-in rather than a transparent optimization.
	// With one worker (or a table too small to shard) the run delegates to
	// the serial algorithm and IS bit-identical. Unsupported algorithms and
	// custom Partitioners are rejected by ValidateSpec with
	// ErrShardedUnsupported; sharded runs ignore Warm (they neither read
	// nor seed the warm partition cache, whose entries are keyed by
	// worker-independent serial results).
	Sharded bool
	// Warm requests warm-start re-anonymization for the paper's three
	// algorithms: the run is seeded from the engine's cached partition of an
	// earlier epoch (appended rows assigned to their nearest clusters,
	// deletion damage repaired locally, t restored by the finishing merge),
	// so re-run cost after a small append/delete is proportional to the
	// delta rather than the table. A warm run that finds no usable seed —
	// first run at a (Algorithm, K, T) point, or a custom Partitioner —
	// falls back to a cold run and caches its partition as the seed for the
	// next one; Result.Warm reports which happened. Privacy guarantees are
	// identical either way (k-anonymity at the effective k and MaxEMD <= T);
	// only the partition, and with it utility, may differ from a cold run,
	// within the bounds pinned by the warm utility tests. Ignored by the
	// baselines, which always run cold.
	Warm bool
}

// Config is the legacy name of Spec, kept so one-shot Anonymize callers
// compile unchanged.
//
// Deprecated: use Spec with NewEngine / Engine.Run.
type Config = Spec

// Result is the outcome of a full anonymization run.
type Result struct {
	// Anonymized is the released table: quasi-identifiers aggregated per
	// cluster, identifiers blanked, everything else untouched.
	Anonymized *dataset.Table
	// Clusters is the partition behind the release.
	Clusters []micro.Cluster
	// MaxEMD is the worst cluster-to-dataset EMD (the achieved t).
	MaxEMD float64
	// Sizes summarizes cluster cardinalities (Tables 1-3 of the paper).
	Sizes micro.SizeStats
	// SSE is the normalized sum of squared errors of Eq. (5) (Figures 6-7).
	SSE float64
	// Merges and Swaps count the work done by Algorithms 1 and 2.
	Merges, Swaps int
	// EffectiveK is the enforced minimum cluster size (Algorithm 3 raises
	// it per Eq. 3-4).
	EffectiveK int
	// Warm describes the warm-start repair when the run was seeded from a
	// cached earlier-epoch partition; nil for cold runs (including warm
	// requests that found no usable seed and fell back).
	Warm *WarmStats
	// Privacy is an independent re-verification of the release (nil when
	// Spec.SkipAssessment is set).
	Privacy *privacy.Report
	// Elapsed is the wall-clock anonymization time (partition +
	// aggregation, excluding substrate preparation and assessment).
	Elapsed time.Duration
}

// Anonymize runs the configured algorithm over the table and returns the
// release plus diagnostics. The input table is not modified. Every call
// rebuilds the shared substrate from scratch; parameter sweeps should
// prepare an Engine once and Run each point instead.
//
// Deprecated: use NewEngine and Engine.Run. Anonymize remains fully
// supported and bit-identical to an Engine run over a fresh engine.
func Anonymize(t *dataset.Table, cfg Config) (*Result, error) {
	// Parameter validation precedes the substrate build so that invalid
	// calls stay as cheap as they were before the engine existed.
	if err := validateSpec(cfg); err != nil {
		return nil, err
	}
	eng, err := newEngine(t, false)
	if err != nil {
		return nil, err
	}
	return eng.Run(context.Background(), cfg)
}

// ErrUnknownAlgorithm rejects Spec.Algorithm values outside the six
// implemented methods. It is returned before any substrate work, so a
// malformed request (a service submission, a corrupted config) stays as
// cheap to reject as a parse error.
var ErrUnknownAlgorithm = errors.New("core: unknown algorithm")

// ErrShardedUnsupported rejects Spec.Sharded combined with an algorithm
// (or a custom Partitioner) that has no sharded construction path; see
// Spec.Sharded. Like the other domain sentinels it is returned before any
// substrate work.
var ErrShardedUnsupported = errors.New("core: sharded mode unsupported for this spec")

// ValidateSpec checks a Spec's parameters against its algorithm's domain
// without running anything, returning the same typed sentinel error the
// run itself would: tclose.ErrBadK/ErrBadT for the paper's algorithms,
// generalization.ErrBadK for the recoding baselines, sabre.ErrBadK/ErrBadT
// for SABRE, and ErrUnknownAlgorithm for an Algorithm value outside the
// implemented set. Engine.Run and Anonymize call it before touching the
// substrate; services should call it at admission time so an invalid
// submission is rejected with a 4xx instead of becoming a failed job.
//
// The domains deliberately mirror each algorithm's own checks — Mondrian
// and Incognito accept any t (values above the EMD ceiling are simply
// unconstrained), so only k is validated for them.
func ValidateSpec(spec Spec) error {
	switch spec.Algorithm {
	case Merge, KAnonymityFirst, TClosenessFirst:
		if spec.K < 1 {
			return tclose.ErrBadK
		}
		if spec.T <= 0 || spec.T > 1 {
			return fmt.Errorf("%w: got %v", tclose.ErrBadT, spec.T)
		}
	case MondrianBaseline, IncognitoBaseline:
		if spec.K < 1 {
			return generalization.ErrBadK
		}
	case SABREBaseline:
		if spec.K < 1 {
			return sabre.ErrBadK
		}
		if spec.T <= 0 || spec.T > 1 {
			return fmt.Errorf("%w, got %v", sabre.ErrBadT, spec.T)
		}
	default:
		return fmt.Errorf("%w %v", ErrUnknownAlgorithm, int(spec.Algorithm))
	}
	if spec.Sharded {
		switch spec.Algorithm {
		case Merge, KAnonymityFirst:
			if spec.Partitioner != nil {
				return fmt.Errorf("%w: custom partitioners see the whole point set and cannot run per shard", ErrShardedUnsupported)
			}
		default:
			return fmt.Errorf("%w: algorithm %v", ErrShardedUnsupported, spec.Algorithm)
		}
	}
	return nil
}

// validateSpec is the historical internal name; the exported ValidateSpec
// is the single source of truth.
func validateSpec(spec Spec) error { return ValidateSpec(spec) }

// assess re-verifies the partition directly (rather than via the aggregated
// table) so that identical centroids of two different clusters cannot mask a
// too-small class.
func assess(t *dataset.Table, clusters []micro.Cluster) (*privacy.Report, error) {
	tc, err := privacy.TClosenessOf(t, clusters)
	if err != nil {
		return nil, err
	}
	ld, err := privacy.LDiversityOf(t, clusters)
	if err != nil {
		return nil, err
	}
	return &privacy.Report{
		Classes:    len(clusters),
		KAnonymity: micro.Sizes(clusters).Min,
		TCloseness: tc,
		LDiversity: ld,
	}, nil
}
