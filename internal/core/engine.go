package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/generalization"
	"repro/internal/metrics"
	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/sabre"
	"repro/internal/store"
	"repro/internal/tclose"
)

// Engine is a prepared, reusable anonymization session over one table. It
// builds the shared substrate — the normalized quasi-identifier matrix, the
// per-attribute EMD dataset-prefix geometry, the packed confidential
// signatures, and a lazily built spatial index — once, and executes any
// number of Run calls against it without recomputation. Where a partition
// depends on fewer parameters than the full (algorithm, k, t) triple (MDAV
// on k alone, Algorithm 3 on the effective cluster size alone), it is
// additionally cached across runs, so parameter sweeps — the shape of the
// paper's whole evaluation — stop paying per point.
//
// An Engine is safe for concurrent use: Run calls may overlap each other
// and Append. Tuning is engine-scoped (see WithWorkers, WithIndexCrossover)
// instead of going through the deprecated micro package globals, so
// concurrent engines with different settings never race.
type Engine struct {
	tun      micro.Tuning
	progress func(Progress)

	// store, when non-nil, is the persistent backend every Append/Delete
	// epoch writes through to before becoming visible; set by Open/Create.
	store     store.Backend
	storeName string

	mu    sync.Mutex
	state *engineState

	// warm is the warm-start partition cache: the latest successful
	// partition per (Algorithm, K, T), in its epoch's row numbering,
	// populated and consumed by warm runs (see Spec.Warm and warm.go).
	warmMu sync.Mutex
	warm   map[warmKey]warmEntry
}

// engineState is one immutable table epoch: Run snapshots it, Append and
// Delete swap in a successor, and in-flight runs keep working on the
// snapshot they took.
type engineState struct {
	epoch int
	table *dataset.Table
	prep  *tclose.Prepared
	// log records how each epoch transformed row ids: log[i] maps epoch i
	// to epoch i+1 (len(log) == epoch). Warm runs replay it to carry a
	// cached partition forward onto the snapshot's numbering.
	log []epochChange
}

// epochChange is one epoch transition. Append epochs keep existing row ids
// stable (oldToNew nil); deletion epochs carry the full old-to-new mapping
// with -1 marking tombstoned rows.
type epochChange struct {
	appended int
	oldToNew []int
}

// Progress is one coarse-grained progress event of an engine run; see
// WithProgress.
type Progress struct {
	// Algorithm is the algorithm of the reporting run.
	Algorithm Algorithm
	// Phase names the loop reporting: "partition" or "merge".
	Phase string
	// Done counts completed work units (records clustered, merges done).
	Done int
	// Total is the known total for the phase, 0 when unbounded.
	Total int
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithWorkers caps the goroutine fan-out of every parallel seam of this
// engine: the distance scans and spatial-index builds, and — since the
// partition loops were sharded — Algorithm 1's merge partner scans,
// Algorithm 2's swap-candidate scoring and per-cluster distance fills,
// Algorithm 3's per-subset draws and SABRE's per-bucket draws. It replaces
// writing the deprecated micro.MaxScanWorkers global, which races across
// concurrent runs. Every seam reduces in a fixed order on the serial tie
// keys, so partitions and releases are bit-identical for any value (the
// worker-sweep and golden conformance tests pin this); set 1 to force
// fully serial execution. Values < 1 keep the process-wide default
// (GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.tun.Workers = n }
}

// WithIndexCrossover sets the candidate-set size at or above which this
// engine's neighbor searches build the k-d tree index, replacing the
// deprecated micro.IndexCrossover global. Both sides of the crossover
// produce identical partitions; it is purely a performance knob. Values < 1
// keep the process-wide default.
func WithIndexCrossover(n int) Option {
	return func(e *Engine) { e.tun.IndexCrossover = n }
}

// WithProgress installs a hook receiving coarse progress events from the
// partition and merge loops of the paper's three algorithms. The hook is
// called synchronously on the running goroutine — and, under concurrent
// runs, from several goroutines at once — so it must be fast and
// thread-safe.
func WithProgress(fn func(Progress)) Option {
	return func(e *Engine) { e.progress = fn }
}

// NewEngine prepares an engine over a private copy of the table: later
// mutations of the caller's table do not affect the engine, and ingest goes
// through Append. Preparation validates the schema and builds the shared
// substrate once.
func NewEngine(t *dataset.Table, opts ...Option) (*Engine, error) {
	return newEngine(t, true, opts...)
}

// newEngine optionally skips the defensive table copy — the Anonymize shim
// path, which by contract reads the caller's table directly and never
// appends.
func newEngine(t *dataset.Table, clone bool, opts ...Option) (*Engine, error) {
	if t == nil {
		return nil, errors.New("core: nil table")
	}
	e := &Engine{}
	for _, opt := range opts {
		opt(e)
	}
	if clone {
		t = t.Clone()
	}
	prep, err := tclose.Prepare(t)
	if err != nil {
		return nil, err
	}
	prep.Matrix().SetTuning(e.tun)
	prep.Matrix().EnableIndexCache()
	e.state = &engineState{table: t, prep: prep}
	return e, nil
}

// snapshot returns the current table epoch.
func (e *Engine) snapshot() *engineState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Epoch returns the number of Append batches ingested so far.
func (e *Engine) Epoch() int { return e.snapshot().epoch }

// Len returns the current number of records.
func (e *Engine) Len() int { return e.snapshot().table.Len() }

// Table returns the engine's current table. It is shared with in-flight
// and future runs and must be treated as read-only; ingest new records via
// Append.
func (e *Engine) Table() *dataset.Table { return e.snapshot().table }

// Append ingests a batch of records as a new table epoch: each row takes
// the same values dataset.Table.AppendRow does (float64/int for numeric
// attributes, string for categorical ones). The substrate is extended
// incrementally — EMD spaces merge the new values into their prefix
// geometry, and the normalized matrix is renormalized only when an
// appended value widens a quasi-identifier's range — and subsequent runs
// are bit-identical to runs of a fresh engine over the concatenated table.
// In-flight runs keep the epoch they started on. On error nothing changes.
func (e *Engine) Append(rows ...[]any) error {
	if len(rows) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.state
	table := st.table.Clone()
	var prevDictLens []int
	if e.store != nil {
		prevDictLens = store.DictLens(table)
	}
	for _, r := range rows {
		if err := table.AppendRow(r...); err != nil {
			return err
		}
	}
	prep, err := st.prep.Extend(table)
	if err != nil {
		return err
	}
	if e.store != nil {
		// Persist before the swap: the epoch is durable by the time any run
		// can observe it, and a persistence failure leaves the engine (and
		// the store, which discards torn epochs on replay) unchanged.
		if err := store.AppendRows(e.store, e.storeName, table, st.table.Len(), prevDictLens); err != nil {
			return fmt.Errorf("core: persisting append epoch: %w", err)
		}
	}
	e.state = &engineState{
		epoch: st.epoch + 1,
		table: table,
		prep:  prep,
		log:   appendLog(st.log, epochChange{appended: len(rows)}),
	}
	return nil
}

// appendLog extends an epoch log without aliasing the predecessor state's
// backing array (snapshots are immutable; in-flight runs read their log
// concurrently with later epochs being opened).
func appendLog(log []epochChange, ch epochChange) []epochChange {
	out := make([]epochChange, len(log)+1)
	copy(out, log)
	out[len(log)] = ch
	return out
}

// Delete removes records by row id as a new table epoch — the tombstone
// half of a continuously updated feed. Row ids refer to the current epoch's
// numbering (duplicates are allowed); surviving rows are renumbered densely
// in order. Unlike Append, a deletion cannot shrink the EMD prefix
// geometry incrementally, so the substrate is rebuilt over the filtered
// table — which makes every subsequent cold run bit-identical to a fresh
// engine over that table by construction. Warm runs see the deletion
// through the epoch log: tombstoned rows drop out of cached partitions and
// the clusters that lost them are repaired. In-flight runs keep the epoch
// they started on; on error nothing changes.
func (e *Engine) Delete(rowIDs ...int) error {
	if len(rowIDs) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.state
	n := st.table.Len()
	drop := make([]bool, n)
	for _, r := range rowIDs {
		if r < 0 || r >= n {
			return fmt.Errorf("core: delete row %d out of range [0,%d)", r, n)
		}
		drop[r] = true
	}
	oldToNew := make([]int, n)
	keep := make([]int, 0, n)
	for r := 0; r < n; r++ {
		if drop[r] {
			oldToNew[r] = -1
			continue
		}
		oldToNew[r] = len(keep)
		keep = append(keep, r)
	}
	if len(keep) == 0 {
		return errors.New("core: delete would remove every record")
	}
	table, err := st.table.Subset(keep)
	if err != nil {
		return err
	}
	prep, err := tclose.Prepare(table)
	if err != nil {
		return err
	}
	prep.Matrix().SetTuning(e.tun)
	prep.Matrix().EnableIndexCache()
	if e.store != nil {
		if err := e.store.DeleteEpoch(e.storeName, rowIDs); err != nil {
			return fmt.Errorf("core: persisting delete epoch: %w", err)
		}
	}
	e.state = &engineState{
		epoch: st.epoch + 1,
		table: table,
		prep:  prep,
		log:   appendLog(st.log, epochChange{oldToNew: oldToNew}),
	}
	return nil
}

// orderedSpaces returns the prepared EMD spaces when every confidential
// attribute uses the ordered distance — the frame the generalization
// baselines' t checks are defined over — and nil otherwise (the baselines
// then build their own ordered spaces, preserving their pre-engine
// behavior for categorical confidentials, which the prepared substrate
// models with the nominal distance instead).
func (st *engineState) orderedSpaces() []*emd.Space {
	spaces := st.prep.Spaces()
	for _, s := range spaces {
		if s.Nominal() {
			return nil
		}
	}
	return spaces
}

// runOpts builds the per-run options handed to the prepared algorithms.
func (e *Engine) runOpts(ctx context.Context, alg Algorithm) tclose.Run {
	run := tclose.Run{Ctx: ctx}
	if e.progress != nil {
		fn := e.progress
		run.Progress = func(p tclose.Progress) {
			fn(Progress{Algorithm: alg, Phase: p.Phase, Done: p.Done, Total: p.Total})
		}
	}
	return run
}

// Run executes one anonymization against the engine's current table epoch
// and returns the release plus diagnostics. The context cancels the run
// between partition, merge and refinement steps (the run then returns
// ctx.Err()); results are bit-identical to the one-shot Anonymize over the
// same records. Run is safe to call concurrently with other runs and with
// Append.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Result, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := e.snapshot()
	start := time.Now()
	var (
		clusters          []micro.Cluster
		maxEMD            float64
		merges, swaps, ek int
		anonymized        *dataset.Table
		warmStats         *WarmStats
		err               error
	)
	if res, ws, ok, werr := e.tryWarm(ctx, st, spec); werr != nil {
		return nil, werr
	} else if ok {
		clusters, maxEMD, merges, swaps, ek = res.Clusters, res.MaxEMD, res.Merges, res.Swaps, res.EffectiveK
		warmStats = ws
	} else {
		clusters, maxEMD, merges, swaps, ek, anonymized, err = e.runCold(ctx, st, spec)
		if err != nil {
			return nil, err
		}
	}
	if spec.Warm && warmable(spec) {
		e.storeWarm(spec, st, clusters, ek)
	}
	switch {
	case anonymized != nil:
		// IncognitoBaseline already produced its generalized release.
	case spec.Algorithm == MondrianBaseline:
		anonymized, err = generalization.Aggregate(st.table, clusters)
	default:
		anonymized, err = micro.Aggregate(st.table, clusters)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	sse, err := metrics.NormalizedSSE(st.table, anonymized)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Anonymized: anonymized,
		Clusters:   clusters,
		MaxEMD:     maxEMD,
		Sizes:      micro.Sizes(clusters),
		SSE:        sse,
		Merges:     merges,
		Swaps:      swaps,
		EffectiveK: ek,
		Warm:       warmStats,
		Elapsed:    elapsed,
	}
	if !spec.SkipAssessment {
		rep, err := assess(st.table, clusters)
		if err != nil {
			return nil, err
		}
		res.Privacy = rep
	}
	return res, nil
}

// runCold executes the cold partition path of Run — one full anonymization
// of the snapshot's table by the selected algorithm.
func (e *Engine) runCold(ctx context.Context, st *engineState, spec Spec) (
	clusters []micro.Cluster, maxEMD float64, merges, swaps, ek int,
	anonymized *dataset.Table, err error) {
	switch spec.Algorithm {
	case Merge:
		var res *tclose.Result
		if spec.Sharded {
			res, err = st.prep.Algorithm1Sharded(e.runOpts(ctx, spec.Algorithm), spec.K, spec.T)
		} else {
			res, err = st.prep.Algorithm1(e.runOpts(ctx, spec.Algorithm), spec.K, spec.T, spec.Partitioner)
		}
		if err == nil {
			clusters, maxEMD, merges, ek = res.Clusters, res.MaxEMD, res.Merges, res.EffectiveK
		}
	case KAnonymityFirst:
		var res *tclose.Result
		if spec.Sharded {
			res, err = st.prep.Algorithm2Sharded(e.runOpts(ctx, spec.Algorithm), spec.K, spec.T)
		} else {
			res, err = st.prep.Algorithm2(e.runOpts(ctx, spec.Algorithm), spec.K, spec.T)
		}
		if err == nil {
			clusters, maxEMD, merges, swaps, ek = res.Clusters, res.MaxEMD, res.Merges, res.Swaps, res.EffectiveK
		}
	case TClosenessFirst:
		var res *tclose.Result
		res, err = st.prep.Algorithm3(e.runOpts(ctx, spec.Algorithm), spec.K, spec.T)
		if err == nil {
			clusters, maxEMD, ek = res.Clusters, res.MaxEMD, res.EffectiveK
		}
	case MondrianBaseline:
		clusters, err = generalization.MondrianTPrepared(ctx, st.table, spec.K, spec.T, st.orderedSpaces())
		if err == nil {
			maxEMD, err = privacy.TClosenessOf(st.table, clusters)
			ek = spec.K
		}
	case SABREBaseline:
		var res *sabre.Result
		res, err = sabre.AnonymizeCtx(ctx, st.table, spec.K, spec.T, &sabre.Env{
			Mat:   st.prep.Matrix(),
			Order: st.prep.ConfOrder(),
		})
		if err == nil {
			clusters, maxEMD, ek = res.Clusters, res.MaxEMD, res.ECSize
		}
	case IncognitoBaseline:
		var res *generalization.GenResult
		res, err = generalization.IncognitoTPrepared(ctx, st.table, spec.K, spec.T, 0, st.orderedSpaces())
		if err == nil {
			clusters, maxEMD, ek = res.Clusters, res.MaxEMD, spec.K
			anonymized, err = generalization.Recode(st.table, res.Levels, 0)
		}
	default:
		err = fmt.Errorf("core: unknown algorithm %v", spec.Algorithm)
	}
	return clusters, maxEMD, merges, swaps, ek, anonymized, err
}
