package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/synth"
)

// mixedTable builds a small table with categorical columns so the
// restart tests exercise dictionary persistence, not just numerics.
func mixedTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "age", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "zip", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "city", Role: dataset.QuasiIdentifier, Kind: dataset.Categorical},
		dataset.Attribute{Name: "disease", Role: dataset.Confidential, Kind: dataset.Categorical},
	)
	tbl := dataset.MustTable(schema)
	cities := []string{"oslo", "bergen", "tromso", "stavanger"}
	diseases := []string{"flu", "cold", "asthma"}
	src := synth.PatientDischarge(n, 17)
	for r := 0; r < n; r++ {
		age := src.Value(r, 0)
		zip := src.Value(r, 1)
		if err := tbl.AppendRow(age, zip, cities[r%len(cities)], diseases[(r*7)%len(diseases)]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func releaseCSV(t *testing.T, e *Engine, spec Spec) []byte {
	t.Helper()
	res, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Anonymized.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Create → epochs → kill → Open must restore the same engine: epoch
// counter, table hash, epoch log (observable through warm runs), and
// byte-identical releases.
func TestOpenRestoresEngineAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mixedTable(t, 120)
	eng, err := Create(b, "ds", tbl)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Algorithm: TClosenessFirst, K: 4, T: 0.3}

	// The engine serves what was written, bit for bit.
	if got, want := store.TableHash(eng.Table()), store.TableHash(tbl); got != want {
		t.Fatalf("created engine hash %s, source %s", got, want)
	}

	// Epoch 1: append rows introducing a brand-new dictionary label.
	if err := eng.Append(
		[]any{33.0, 90100.0, "kirkenes", "flu"},
		[]any{58.0, 90200.0, "oslo", "asthma"},
	); err != nil {
		t.Fatal(err)
	}
	// Epoch 2: tombstone a few rows.
	if err := eng.Delete(3, 17, 40); err != nil {
		t.Fatal(err)
	}
	release := releaseCSV(t, eng, spec)

	// "Restart": a fresh backend over the same directory, a fresh engine.
	b2, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(b2, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Epoch() != 2 {
		t.Fatalf("restored epoch %d, want 2", eng2.Epoch())
	}
	if eng2.Len() != eng.Len() {
		t.Fatalf("restored %d rows, want %d", eng2.Len(), eng.Len())
	}
	if got, want := store.TableHash(eng2.Table()), store.TableHash(eng.Table()); got != want {
		t.Fatalf("restored table hash %s, want %s", got, want)
	}
	if got := releaseCSV(t, eng2, spec); !bytes.Equal(got, release) {
		t.Fatal("release after restart differs from release before")
	}

	// The restored engine continues the epoch sequence durably: labels
	// introduced after the restart must reuse the persisted dictionary.
	if err := eng2.Append([]any{41.0, 90300.0, "kirkenes", "cold"}); err != nil {
		t.Fatal(err)
	}
	b3, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng3, err := Open(b3, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if eng3.Epoch() != 3 {
		t.Fatalf("epoch after continued append: %d, want 3", eng3.Epoch())
	}
	if got, want := store.TableHash(eng3.Table()), store.TableHash(eng2.Table()); got != want {
		t.Fatalf("continued table hash %s, want %s", got, want)
	}
}

// The epoch log restored by Open must keep warm replay working: a warm
// seed taken at the restored epoch counter indexes into the log by epoch
// number, so the restored log must have exactly the pre-restart entries
// for post-restart epochs to replay across it without skew.
func TestOpenRestoresWarmReplay(t *testing.T) {
	dir := t.TempDir()
	b, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Create(b, "ds", mixedTable(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Algorithm: TClosenessFirst, K: 4, T: 0.3, Warm: true}
	if _, err := eng.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(5, 6, 7); err != nil {
		t.Fatal(err)
	}
	resLive, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if resLive.Warm == nil {
		t.Fatal("live warm run did not use the warm cache")
	}

	// Restart (epoch counter now 1, log has 1 restored entry), reseed the
	// cache at the restored epoch, open two more epochs, and verify warm
	// replay crosses them — which walks the restored log by epoch index.
	b2, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(b2, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Delete(10, 11); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Append([]any{29.0, 90500.0, "oslo", "cold"}); err != nil {
		t.Fatal(err)
	}
	res3, err := eng2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Warm == nil {
		t.Fatal("warm run after restart+delete+append did not use the warm cache")
	}
}

// Create with a mem backend behaves identically (same engine contract,
// no files).
func TestCreateMemBackend(t *testing.T) {
	b := store.NewMemBackend()
	tbl := mixedTable(t, 60)
	eng, err := Create(b, "ds", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Append([]any{25.0, 90400.0, "bergen", "flu"}); err != nil {
		t.Fatal(err)
	}
	eng2, err := Open(b, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Epoch() != 1 || eng2.Len() != tbl.Len()+1 {
		t.Fatalf("mem reopen: epoch %d len %d", eng2.Epoch(), eng2.Len())
	}
	if store.TableHash(eng2.Table()) != store.TableHash(eng.Table()) {
		t.Fatal("mem reopen hash mismatch")
	}
}
