package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/synth"
)

// The engine-level sharded-mode pins: privacy holds exactly through
// Engine.Run, the default path stays bit-identical after a sharded run
// shared the same engine (no cache aliasing between the modes), and
// sharded runs stay out of the warm seed cache. The table is sized just
// over twice the per-shard floor, so a multi-worker engine actually splits
// it (two shards) while the test stays fast.

const shardTestRows = 2200

func shardTestSpec(alg Algorithm) Spec {
	return Spec{Algorithm: alg, K: 3, T: 0.2, Sharded: true}
}

// TestShardedEngineRunPrivacyHolds runs both sharded algorithms through the
// engine and checks the release against the independent privacy assessment.
func TestShardedEngineRunPrivacyHolds(t *testing.T) {
	tbl := synth.Census(shardTestRows, synth.FedTax, 3)
	eng, err := NewEngine(tbl, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Merge, KAnonymityFirst} {
		spec := shardTestSpec(alg)
		res, err := eng.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%v sharded: %v", alg, err)
		}
		if res.Privacy == nil {
			t.Fatalf("%v sharded: no privacy assessment", alg)
		}
		if res.Privacy.KAnonymity < spec.K {
			t.Fatalf("%v sharded: assessed k-anonymity %d < k", alg, res.Privacy.KAnonymity)
		}
		if res.Privacy.TCloseness > spec.T {
			t.Fatalf("%v sharded: assessed t-closeness %v > t", alg, res.Privacy.TCloseness)
		}
		if res.MaxEMD > spec.T {
			t.Fatalf("%v sharded: MaxEMD %v > t", alg, res.MaxEMD)
		}
	}
}

// TestShardedDoesNotAliasSerialCaches pins the cache-separation contract:
// a serial run on an engine that already executed sharded runs must be
// bit-identical to a serial run on a fresh engine — neither the per-k
// partition caches nor the warm seed cache may carry sharded state into
// the default path.
func TestShardedDoesNotAliasSerialCaches(t *testing.T) {
	tbl := synth.Census(shardTestRows, synth.FedTax, 3)
	for _, alg := range []Algorithm{Merge, KAnonymityFirst} {
		shared, err := NewEngine(tbl, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := shared.Run(context.Background(), shardTestSpec(alg)); err != nil {
			t.Fatal(err)
		}
		serial := Spec{Algorithm: alg, K: 3, T: 0.2, SkipAssessment: true}
		after, err := shared.Run(context.Background(), serial)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewEngine(tbl, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run(context.Background(), serial)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(after.Clusters, want.Clusters) {
			t.Fatalf("%v: serial partition after a sharded run diverges from a fresh engine", alg)
		}
	}
}

// TestShardedStaysOutOfWarmCache pins both directions of the warm
// exclusion: a sharded run neither seeds the warm cache (a later warm
// serial run still starts cold) nor reads it (a sharded re-run after warm
// seeding reports no warm repair).
func TestShardedStaysOutOfWarmCache(t *testing.T) {
	tbl := synth.Census(shardTestRows, synth.FedTax, 3)
	eng, err := NewEngine(tbl, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	spec := shardTestSpec(KAnonymityFirst)
	spec.Warm = true // ignored: sharded runs are never warm-eligible
	if res, err := eng.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	} else if res.Warm != nil {
		t.Fatal("sharded run reported a warm repair")
	}
	warmSerial := Spec{Algorithm: KAnonymityFirst, K: 3, T: 0.2, Warm: true, SkipAssessment: true}
	res, err := eng.Run(context.Background(), warmSerial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm != nil {
		t.Fatal("warm serial run found a seed; the sharded run must not have stored one")
	}
	// The serial warm miss above seeded the cache; a repeat is warm now,
	// while a sharded re-run still is not.
	if res, err := eng.Run(context.Background(), warmSerial); err != nil {
		t.Fatal(err)
	} else if res.Warm == nil {
		t.Fatal("second warm serial run should have been seeded")
	}
	if res, err := eng.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	} else if res.Warm != nil {
		t.Fatal("sharded run consumed the warm cache")
	}
}
