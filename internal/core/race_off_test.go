//go:build !race

package core

// raceEnabled reports whether the race detector instruments this test
// binary; timing-sensitive assertions skip themselves under it.
const raceEnabled = false
