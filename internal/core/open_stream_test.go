package core

import (
	"bytes"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/synth"
)

// ingestCensus writes the census fixture through the streaming CSV
// ingester under a tiny chunk budget, so the stored dataset holds many
// small chunks and a streaming open has real batching to do.
func ingestCensus(t *testing.T, b store.Backend, name string, n int) *dataset.Table {
	t.Helper()
	tbl := synth.Census(n, synth.FedTax, synth.DefaultSeed)
	var csv strings.Builder
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if _, err := store.IngestCSV(b, name, strings.NewReader(csv.String()), 4<<10); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// OpenStreaming must be bit-identical to Open on the same backend: same
// table hash, same epoch counter, and byte-identical releases across all
// six algorithms on the census fixture.
func TestOpenStreamingBitIdenticalAllAlgorithms(t *testing.T) {
	b, err := store.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := ingestCensus(t, b, "census", 700)

	cold, err := Open(b, "census")
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := OpenStreaming(b, "census", 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := store.TableHash(streamed.Table()), store.TableHash(src); got != want {
		t.Fatalf("streamed table hash %s, source %s", got, want)
	}
	if streamed.Epoch() != cold.Epoch() {
		t.Fatalf("streamed epoch %d, cold %d", streamed.Epoch(), cold.Epoch())
	}
	for _, alg := range []Algorithm{
		Merge, KAnonymityFirst, TClosenessFirst,
		MondrianBaseline, SABREBaseline, IncognitoBaseline,
	} {
		spec := Spec{Algorithm: alg, K: 4, T: 0.3}
		want := releaseCSV(t, cold, spec)
		got := releaseCSV(t, streamed, spec)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: streamed release differs from cold open release", alg)
		}
	}
}

// The batch boundaries must not matter: any budget — one byte (every
// chunk its own batch), mid-size, larger than the dataset (one batch) —
// produces the same engine.
func TestOpenStreamingBudgetSweep(t *testing.T) {
	b, err := store.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ingestCensus(t, b, "census", 500)
	cold, err := Open(b, "census")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Algorithm: TClosenessFirst, K: 3, T: 0.25}
	wantHash := store.TableHash(cold.Table())
	wantRelease := releaseCSV(t, cold, spec)
	for _, budget := range []int{1, 4 << 10, 1 << 20} {
		eng, err := OpenStreaming(b, "census", budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if got := store.TableHash(eng.Table()); got != wantHash {
			t.Fatalf("budget %d: table hash %s, want %s", budget, got, wantHash)
		}
		if got := releaseCSV(t, eng, spec); !bytes.Equal(got, wantRelease) {
			t.Fatalf("budget %d: release differs", budget)
		}
	}
}

// Epoch histories — appends introducing new dictionary labels, deletes,
// then more appends — must stream back exactly as Open materializes
// them, on both backends: same hash, same epoch log (observable through
// warm replay), byte-identical releases, and the streamed engine must
// keep writing through durably.
func TestOpenStreamingEpochReplay(t *testing.T) {
	file, err := store.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for kind, b := range map[string]store.Backend{"file": file, "mem": store.NewMemBackend()} {
		t.Run(kind, func(t *testing.T) {
			eng, err := Create(b, "ds", mixedTable(t, 120))
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Append(
				[]any{33.0, 90100.0, "kirkenes", "flu"},
				[]any{58.0, 90200.0, "oslo", "asthma"},
			); err != nil {
				t.Fatal(err)
			}
			if err := eng.Delete(3, 17, 40); err != nil {
				t.Fatal(err)
			}
			if err := eng.Append([]any{41.0, 90300.0, "vadso", "cold"}); err != nil {
				t.Fatal(err)
			}
			spec := Spec{Algorithm: TClosenessFirst, K: 4, T: 0.3}
			release := releaseCSV(t, eng, spec)

			streamed, err := OpenStreaming(b, "ds", 1<<10)
			if err != nil {
				t.Fatal(err)
			}
			if streamed.Epoch() != 3 {
				t.Fatalf("streamed epoch %d, want 3", streamed.Epoch())
			}
			if got, want := store.TableHash(streamed.Table()), store.TableHash(eng.Table()); got != want {
				t.Fatalf("streamed table hash %s, want %s", got, want)
			}
			if got := releaseCSV(t, streamed, spec); !bytes.Equal(got, release) {
				t.Fatal("streamed release differs from the writing engine's")
			}

			// The epoch log must be intact for warm replay across epochs
			// opened after the streaming restore.
			warm := Spec{Algorithm: TClosenessFirst, K: 4, T: 0.3, Warm: true}
			if _, err := streamed.Run(t.Context(), warm); err != nil {
				t.Fatal(err)
			}
			if err := streamed.Delete(5, 6); err != nil {
				t.Fatal(err)
			}
			res, err := streamed.Run(t.Context(), warm)
			if err != nil {
				t.Fatal(err)
			}
			if res.Warm == nil {
				t.Fatal("warm run after streamed open did not use the warm cache")
			}

			// And the write-through continues: a fresh open (either path)
			// sees the epoch the streamed engine persisted.
			reopened, err := OpenStreaming(b, "ds", 0)
			if err != nil {
				t.Fatal(err)
			}
			if reopened.Epoch() != 4 {
				t.Fatalf("reopened epoch %d, want 4", reopened.Epoch())
			}
			if got, want := store.TableHash(reopened.Table()), store.TableHash(streamed.Table()); got != want {
				t.Fatalf("reopened table hash %s, want %s", got, want)
			}
		})
	}
}

// The memory contract: a 1M-row streaming open must never hold a second
// full copy of the raw table. Peak heap while opening stays within the
// final substrate plus a fixed allowance that is far smaller than the
// raw table (which a materializing open necessarily doubles through).
func TestOpenStreamingMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row open skipped in -short mode")
	}
	const rows = 1_000_000
	b, err := store.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := synth.PatientDischarge(rows, 5)
	rawTableBytes := uint64(8 * rows * src.Width())
	if err := store.Write(b, "big", src); err != nil {
		t.Fatal(err)
	}
	src = nil

	// Keep the collector close on the allocator's heels so sampled heap
	// tracks live bytes instead of GOGC headroom.
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	runtime.GC()

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	const budget = 8 << 20
	eng, err := OpenStreaming(b, "big", budget)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != rows {
		t.Fatalf("opened %d rows, want %d", eng.Len(), rows)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	live := after.HeapAlloc // the substrate the engine retains
	t.Logf("raw table %d MiB, substrate (live after open) %d MiB, sampled peak %d MiB",
		rawTableBytes>>20, live>>20, peak.Load()>>20)

	// The allowance covers one budget-sized batch, per-batch bookkeeping,
	// and GC lag — it must stay well under the raw table size, or the open
	// is holding a second copy.
	allowance := uint64(budget) + rawTableBytes/4
	if max := live + allowance; peak.Load() > max {
		t.Fatalf("peak heap %d MiB exceeds substrate %d MiB + allowance %d MiB",
			peak.Load()>>20, live>>20, allowance>>20)
	}
	runtime.KeepAlive(eng)
}
