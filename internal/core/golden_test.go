package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// The golden conformance suite pins the exact partitions and releases of
// all six algorithms over a committed fixture: a small deterministic
// synthetic table crossed with a (k, t) grid. Any refactor that silently
// changes a partition — a reordered tie-break, a drifted float, a
// mis-sharded loop — fails here immediately and reproducibly, rather than
// only when a property test happens to draw the right table. The fixture
// lives in testdata/golden_conformance.json; regenerate it with
//
//	go test ./internal/core -run TestGoldenConformance -update-golden
//
// and review the diff like any other behavior change: a hash moving IS the
// behavior change.

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_conformance.json from the current implementation")

const goldenPath = "testdata/golden_conformance.json"

// goldenCell is the pinned outcome of one (dataset, algorithm, k, t) run.
type goldenCell struct {
	Dataset    string    `json:"dataset"`
	Algorithm  Algorithm `json:"algorithm"`
	K          int       `json:"k"`
	T          float64   `json:"t"`
	Partition  string    `json:"partition_sha256"`
	Output     string    `json:"output_sha256"`
	MaxEMD     string    `json:"max_emd_hex"`
	EffectiveK int       `json:"effective_k"`
	Merges     int       `json:"merges"`
	Swaps      int       `json:"swaps"`
}

type goldenDoc struct {
	N     int          `json:"n"`
	Seed  int64        `json:"seed"`
	Cells []goldenCell `json:"cells"`
}

// goldenFixture is one (table, algorithms) pairing of the conformance
// suite. The microaggregation algorithms and the partition-shaped baselines
// run on the 7-QI patient-discharge geometry; Incognito runs on the 2-QI
// Census geometry, where its full-domain lattice is small enough for
// tier-1 time (the 7-QI lattice costs seconds per cell without adding
// conformance coverage — the lattice walk itself is the pinned behavior).
type goldenFixture struct {
	name string
	tbl  *dataset.Table
	algs []Algorithm
}

// goldenFixtures builds the fixture inputs: small enough that the full
// grid stays in tier-1 time, large enough that every algorithm forms
// multiple clusters, merges and swaps at the grid's tight cells.
func goldenFixtures() []goldenFixture {
	return []goldenFixture{
		{"patients", synth.PatientDischarge(240, 7),
			[]Algorithm{Merge, KAnonymityFirst, TClosenessFirst, MondrianBaseline, SABREBaseline}},
		{"census", synth.Census(240, synth.FedTax, 7),
			[]Algorithm{Merge, KAnonymityFirst, TClosenessFirst, MondrianBaseline, SABREBaseline, IncognitoBaseline}},
	}
}

// hashPartition hashes the exact cluster structure: cluster count, then
// each cluster's row ids in order. Any change in membership, ordering or
// grouping changes the digest.
func hashPartition(res *Result) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(res.Clusters)))
	h.Write(buf[:])
	for _, c := range res.Clusters {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(c.Rows)))
		h.Write(buf[:])
		for _, r := range c.Rows {
			binary.LittleEndian.PutUint64(buf[:], uint64(r))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashOutput hashes the released table bit-exactly: every cell's float64
// bits (and label where categorical), row-major.
func hashOutput(t *dataset.Table) string {
	h := sha256.New()
	var buf [8]byte
	for row := 0; row < t.Len(); row++ {
		for col := 0; col < t.Width(); col++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(t.Value(row, col)))
			h.Write(buf[:])
			if t.Schema().Attr(col).Kind == dataset.Categorical {
				h.Write([]byte(t.Label(row, col)))
				h.Write([]byte{0})
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenConformance(t *testing.T) {
	var got goldenDoc
	got.N = 240
	got.Seed = 7
	for _, fix := range goldenFixtures() {
		eng, err := NewEngine(fix.tbl)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range fix.algs {
			for _, k := range []int{2, 4} {
				for _, tl := range []float64{0.08, 0.2} {
					res, err := eng.Run(context.Background(), Spec{
						Algorithm: alg, K: k, T: tl, SkipAssessment: true,
					})
					if err != nil {
						t.Fatalf("%s %v k=%d t=%v: %v", fix.name, alg, k, tl, err)
					}
					got.Cells = append(got.Cells, goldenCell{
						Dataset:    fix.name,
						Algorithm:  alg,
						K:          k,
						T:          tl,
						Partition:  hashPartition(res),
						Output:     hashOutput(res.Anonymized),
						MaxEMD:     strconv.FormatFloat(res.MaxEMD, 'x', -1, 64),
						EffectiveK: res.EffectiveK,
						Merges:     res.Merges,
						Swaps:      res.Swaps,
					})
				}
			}
		}
	}
	if *updateGolden {
		enc, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(enc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cells", goldenPath, len(got.Cells))
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update-golden): %v", err)
	}
	var want goldenDoc
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if want.N != got.N || want.Seed != got.Seed {
		t.Fatalf("fixture header mismatch: file n=%d seed=%d, test n=%d seed=%d",
			want.N, want.Seed, got.N, got.Seed)
	}
	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("fixture has %d cells, test produced %d (regenerate with -update-golden)",
			len(want.Cells), len(got.Cells))
	}
	for i, w := range want.Cells {
		g := got.Cells[i]
		if w != g {
			t.Errorf("cell %s/%v k=%d t=%v diverges from golden fixture:\n got %+v\nwant %+v\n"+
				"(a hash moving here means partitions or releases changed bit-for-bit; "+
				"if intentional, regenerate with -update-golden and explain in the PR)",
				w.Dataset, w.Algorithm, w.K, w.T, g, w)
		}
	}
}

// TestGoldenConformanceWorkerSweep re-runs a tight grid corner of every
// algorithm at several worker counts against the same fixture hashes,
// wiring the parallel determinism contract into the golden suite itself.
func TestGoldenConformanceWorkerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("golden worker sweep: slow conformance test")
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update-golden): %v", err)
	}
	var want goldenDoc
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	pinned := make(map[string]goldenCell, len(want.Cells))
	for _, c := range want.Cells {
		pinned[fmt.Sprintf("%s/%v/%d/%v", c.Dataset, c.Algorithm, c.K, c.T)] = c
	}
	for _, fix := range goldenFixtures() {
		for _, workers := range []int{2, 8} {
			eng, err := NewEngine(fix.tbl, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range fix.algs {
				res, err := eng.Run(context.Background(), Spec{
					Algorithm: alg, K: 2, T: 0.08, SkipAssessment: true,
				})
				if err != nil {
					t.Fatalf("%s workers=%d %v: %v", fix.name, workers, alg, err)
				}
				w, ok := pinned[fmt.Sprintf("%s/%v/2/0.08", fix.name, alg)]
				if !ok {
					t.Fatalf("fixture missing cell %s/%v k=2 t=0.08", fix.name, alg)
				}
				if hashPartition(res) != w.Partition {
					t.Errorf("%s workers=%d %v: partition diverges from golden fixture",
						fix.name, workers, alg)
				}
			}
		}
	}
}
