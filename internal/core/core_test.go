package core

import (
	"testing"

	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/synth"
	"repro/internal/tclose"
)

func TestAnonymizeAllAlgorithms(t *testing.T) {
	tbl := synth.Census(300, synth.FedTax, 5)
	for _, alg := range []Algorithm{Merge, KAnonymityFirst, TClosenessFirst, MondrianBaseline} {
		res, err := Anonymize(tbl, Config{Algorithm: alg, K: 4, T: 0.2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Anonymized == nil || res.Anonymized.Len() != tbl.Len() {
			t.Fatalf("%v: bad release", alg)
		}
		if err := micro.CheckPartition(res.Clusters, tbl.Len(), 4); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.MaxEMD > 0.2+1e-9 {
			t.Errorf("%v: MaxEMD %v exceeds t", alg, res.MaxEMD)
		}
		if res.Privacy == nil {
			t.Fatalf("%v: missing privacy report", alg)
		}
		if res.Privacy.KAnonymity < 4 {
			t.Errorf("%v: privacy report k = %d", alg, res.Privacy.KAnonymity)
		}
		if res.Privacy.TCloseness > 0.2+1e-9 {
			t.Errorf("%v: privacy report t = %v", alg, res.Privacy.TCloseness)
		}
		if res.SSE < 0 {
			t.Errorf("%v: negative SSE", alg)
		}
		if res.Sizes.Min < 4 {
			t.Errorf("%v: min cluster size %d", alg, res.Sizes.Min)
		}
		// Independent verification on the released table itself.
		ka, err := privacy.KAnonymity(res.Anonymized)
		if err != nil {
			t.Fatal(err)
		}
		if ka < 4 {
			t.Errorf("%v: released table k-anonymity %d", alg, ka)
		}
	}
}

func TestAnonymizeSkipAssessment(t *testing.T) {
	tbl := synth.Uniform(60, 2, 9)
	res, err := Anonymize(tbl, Config{Algorithm: TClosenessFirst, K: 3, T: 0.2, SkipAssessment: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Privacy != nil {
		t.Error("SkipAssessment should omit the privacy report")
	}
}

func TestAnonymizeErrors(t *testing.T) {
	tbl := synth.Uniform(20, 2, 3)
	if _, err := Anonymize(nil, Config{K: 2, T: 0.1}); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := Anonymize(tbl, Config{Algorithm: Algorithm(42), K: 2, T: 0.1}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if _, err := Anonymize(tbl, Config{K: 0, T: 0.1}); err == nil {
		t.Error("bad k should propagate")
	}
	if _, err := Anonymize(tbl, Config{K: 2, T: 0}); err == nil {
		t.Error("bad t should propagate")
	}
}

func TestAnonymizeCustomPartitioner(t *testing.T) {
	tbl := synth.Uniform(80, 2, 13)
	var called bool
	part := tclose.Partitioner(func(points [][]float64, k int) ([]micro.Cluster, error) {
		called = true
		return micro.VMDAV(points, k, 0)
	})
	res, err := Anonymize(tbl, Config{Algorithm: Merge, K: 3, T: 0.25, Partitioner: part})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("custom partitioner was not used")
	}
	if res.MaxEMD > 0.25+1e-9 {
		t.Errorf("MaxEMD %v exceeds t", res.MaxEMD)
	}
}

func TestAnonymizeDoesNotModifyInput(t *testing.T) {
	tbl := synth.Census(100, synth.Fica, 3)
	before := make([]float64, tbl.Len())
	copy(before, tbl.ColumnView(0))
	if _, err := Anonymize(tbl, Config{Algorithm: Merge, K: 3, T: 0.2}); err != nil {
		t.Fatal(err)
	}
	after := tbl.ColumnView(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Anonymize modified its input table")
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{
		Merge:            "alg1-merge",
		KAnonymityFirst:  "alg2-kanon-first",
		TClosenessFirst:  "alg3-tclose-first",
		MondrianBaseline: "mondrian-t",
	}
	for alg, want := range cases {
		if got := alg.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(alg), got, want)
		}
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm should still stringify")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"1": Merge, "alg1": Merge, "merge": Merge,
		"2": KAnonymityFirst, "kanon-first": KAnonymityFirst,
		"3": TClosenessFirst, "tclose-first": TClosenessFirst,
		"mondrian": MondrianBaseline, "baseline": MondrianBaseline,
	}
	for in, want := range cases {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestAnonymizeElapsedPositive(t *testing.T) {
	tbl := synth.Uniform(50, 2, 21)
	res, err := Anonymize(tbl, Config{Algorithm: TClosenessFirst, K: 2, T: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed should be positive")
	}
	if res.EffectiveK < 2 {
		t.Errorf("EffectiveK = %d", res.EffectiveK)
	}
}

func TestAnonymizeNewBaselines(t *testing.T) {
	tbl := synth.Census(300, synth.FedTax, 17)
	for _, alg := range []Algorithm{SABREBaseline, IncognitoBaseline} {
		res, err := Anonymize(tbl, Config{Algorithm: alg, K: 3, T: 0.25})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := micro.CheckPartition(res.Clusters, tbl.Len(), 3); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.MaxEMD > 0.25+1e-9 {
			t.Errorf("%v: MaxEMD %v exceeds t", alg, res.MaxEMD)
		}
		if res.Privacy == nil || res.Privacy.KAnonymity < 3 {
			t.Errorf("%v: privacy report %+v", alg, res.Privacy)
		}
		ka, err := privacy.KAnonymity(res.Anonymized)
		if err != nil {
			t.Fatal(err)
		}
		if ka < 3 {
			t.Errorf("%v: released k-anonymity %d", alg, ka)
		}
	}
}

func TestParseAlgorithmNewBaselines(t *testing.T) {
	for name, want := range map[string]Algorithm{
		"sabre": SABREBaseline, "incognito": IncognitoBaseline, "incognito-t": IncognitoBaseline,
	} {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", name, got, err)
		}
	}
}
