package core

import (
	"errors"

	"repro/internal/dataset"
	"repro/internal/store"
)

// Open materializes a dataset from a persistent store and prepares an
// engine over it with its epoch history restored: the epoch counter and
// the row-id transition log match the engine that wrote the store, so
// warm replay and future epochs continue seamlessly across a process
// restart, and releases are bit-identical to the pre-restart engine's.
//
// The opened engine writes through: Append and Delete persist their
// epoch durably before it becomes visible to runs, and on a persistence
// error the engine is unchanged.
func Open(b store.Backend, name string, opts ...Option) (*Engine, error) {
	tbl, epochs, err := b.Open(name)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(tbl, false, opts...) // the store's table is already private
	if err != nil {
		return nil, err
	}
	log := make([]epochChange, len(epochs))
	for i, ep := range epochs {
		log[i] = epochChange{appended: ep.Appended, oldToNew: ep.OldToNew}
	}
	e.state.epoch = len(epochs)
	e.state.log = log
	e.store, e.storeName = b, name
	return e, nil
}

// Create snapshots the table into the store under name and opens an
// engine over it. The engine is built from what was just written — not
// from the caller's table — so the state it serves is exactly what a
// post-restart Open will serve, making restart hash-identity hold by
// construction. The caller's table is not retained.
func Create(b store.Backend, name string, t *dataset.Table, opts ...Option) (*Engine, error) {
	if t == nil {
		return nil, errors.New("core: nil table")
	}
	if err := store.Write(b, name, t); err != nil {
		return nil, err
	}
	return Open(b, name, opts...)
}
