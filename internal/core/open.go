package core

import (
	"errors"

	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/tclose"
)

// Open materializes a dataset from a persistent store and prepares an
// engine over it with its epoch history restored: the epoch counter and
// the row-id transition log match the engine that wrote the store, so
// warm replay and future epochs continue seamlessly across a process
// restart, and releases are bit-identical to the pre-restart engine's.
//
// The opened engine writes through: Append and Delete persist their
// epoch durably before it becomes visible to runs, and on a persistence
// error the engine is unchanged.
func Open(b store.Backend, name string, opts ...Option) (*Engine, error) {
	tbl, epochs, err := b.Open(name)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(tbl, false, opts...) // the store's table is already private
	if err != nil {
		return nil, err
	}
	log := make([]epochChange, len(epochs))
	for i, ep := range epochs {
		log[i] = epochChange{appended: ep.Appended, oldToNew: ep.OldToNew}
	}
	e.state.epoch = len(epochs)
	e.state.log = log
	e.store, e.storeName = b, name
	return e, nil
}

// DefaultOpenBudget is the chunk-coalescing byte budget OpenStreaming
// uses when the caller passes one that is not positive. It matches the
// default ingest budget: what was written under a given budget streams
// back under the same one.
const DefaultOpenBudget = 8 << 20

// OpenStreaming is Open for datasets that should never be materialized
// twice: it builds the engine substrate chunk-at-a-time from the store's
// committed history (store.Backend.Stream), extending the per-attribute
// EMD spaces and the normalized quasi-identifier matrix batch by batch,
// so peak memory during the open is bounded by the substrate itself plus
// the budget — never a second full copy of the raw table. Chunks are
// coalesced into roughly budget-byte batches before each substrate
// extension, keeping the build O(n × batches) instead of
// O(n × chunks); budget <= 0 means DefaultOpenBudget.
//
// The result is bit-identical to Open on the same backend — same
// store.TableHash, same epoch log, byte-identical releases — which the
// property suite pins across every algorithm. Histories with deletion
// epochs fall back to one full substrate rebuild over the filtered
// table at the end (exactly the engine's own Delete semantics), so they
// transiently hold the filtered table copy Subset makes.
func OpenStreaming(b store.Backend, name string, budget int, opts ...Option) (*Engine, error) {
	if budget <= 0 {
		budget = DefaultOpenBudget
	}
	e := &Engine{}
	for _, opt := range opts {
		opt(e)
	}
	var (
		bld *tclose.Builder
		bat *dataset.Batcher
	)
	flush := func(cols [][]float64, dictDelta [][]string) error {
		for c, delta := range dictDelta {
			if len(delta) == 0 {
				continue
			}
			if err := bld.ExtendDict(c, delta); err != nil {
				return err
			}
		}
		return bld.Append(cols)
	}
	epochs, err := b.Stream(name, store.StreamHandler{
		Begin: func(s *dataset.Schema, rows int) error {
			var err error
			if bld, err = tclose.NewBuilder(s, rows); err != nil {
				return err
			}
			bat = dataset.NewBatcher(s.Len(), budget, flush)
			return nil
		},
		Chunk: func(ch store.ColumnChunk) error {
			return bat.Add(ch.Cols, ch.DictDelta)
		},
		Tombstone: func(ids []int) error {
			if err := bat.Flush(); err != nil {
				return err
			}
			return bld.Delete(ids)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := bat.Flush(); err != nil {
		return nil, err
	}
	prep, err := bld.Finish()
	if err != nil {
		return nil, err
	}
	prep.Matrix().SetTuning(e.tun)
	prep.Matrix().EnableIndexCache()
	log := make([]epochChange, len(epochs))
	for i, ep := range epochs {
		log[i] = epochChange{appended: ep.Appended, oldToNew: ep.OldToNew}
	}
	e.state = &engineState{epoch: len(epochs), table: prep.Table(), prep: prep, log: log}
	e.store, e.storeName = b, name
	return e, nil
}

// Create snapshots the table into the store under name and opens an
// engine over it. The engine is built from what was just written — not
// from the caller's table — so the state it serves is exactly what a
// post-restart Open will serve, making restart hash-identity hold by
// construction. The caller's table is not retained.
func Create(b store.Backend, name string, t *dataset.Table, opts ...Option) (*Engine, error) {
	if t == nil {
		return nil, errors.New("core: nil table")
	}
	if err := store.Write(b, name, t); err != nil {
		return nil, err
	}
	return Open(b, name, opts...)
}
