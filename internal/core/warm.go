package core

import (
	"context"

	"repro/internal/micro"
	"repro/internal/tclose"
)

// WarmStats describes how a warm-start run was seeded and how much repair
// it did; see Spec.Warm. SeedEpoch is the epoch whose cached partition
// seeded the run, and the remaining fields quantify the repair frontier
// (tclose.WarmStats): the whole point of warm mode is that ScopeRows tracks
// the delta, not the table.
type WarmStats struct {
	// SeedEpoch is the table epoch whose partition seeded this run.
	SeedEpoch int
	// SeedClusters is the number of live clusters the seed carried over.
	SeedClusters int
	// Assigned counts appended rows assigned to their nearest seed cluster.
	Assigned int
	// Folded counts undersized clusters (deletion damage) folded into their
	// QI-nearest neighbor.
	Folded int
	// Split counts oversized clusters re-partitioned by MDAV.
	Split int
	// Repaired counts dirty t-violating clusters dissolved and re-extracted
	// by the swap refinement (KAnonymityFirst only).
	Repaired int
	// ScopeRows is the number of distinct rows the repair touched before
	// the finishing merge.
	ScopeRows int
}

// warmKey identifies one warm partition cache slot. The partition of every
// supported algorithm is fully determined by (Algorithm, K, T) over a given
// epoch, so together with the entry's epoch this is the "(epoch, Spec)" key
// of the cache; custom Partitioners are never cached (their output is not a
// function of the key).
type warmKey struct {
	alg Algorithm
	k   int
	t   float64
}

// warmEntry is a cached partition in the row numbering of its epoch,
// deep-copied on store so later repairs cannot alias it.
type warmEntry struct {
	epoch      int
	clusters   []micro.Cluster
	effectiveK int
}

// warmable reports whether warm-start applies to a spec: the paper's three
// algorithms with the default partitioner. Baselines always run cold, and so
// do sharded runs — warmKey has no worker dimension and sharded partitions
// vary with the worker budget, so letting them read or seed the cache would
// alias worker-dependent results with the serial ones.
func warmable(spec Spec) bool {
	if spec.Sharded {
		return false
	}
	switch spec.Algorithm {
	case Merge, KAnonymityFirst, TClosenessFirst:
		return spec.Partitioner == nil
	}
	return false
}

// storeWarm caches a successful warm-eligible run's partition as the seed
// for later epochs. Entries only move forward in epoch — a concurrent run
// over an older snapshot never clobbers a newer seed.
func (e *Engine) storeWarm(spec Spec, st *engineState, clusters []micro.Cluster, effK int) {
	cp := make([]micro.Cluster, len(clusters))
	for i, c := range clusters {
		cp[i] = micro.Cluster{Rows: append([]int(nil), c.Rows...)}
	}
	key := warmKey{alg: spec.Algorithm, k: spec.K, t: spec.T}
	e.warmMu.Lock()
	defer e.warmMu.Unlock()
	if old, ok := e.warm[key]; ok && old.epoch >= st.epoch {
		return
	}
	if e.warm == nil {
		e.warm = make(map[warmKey]warmEntry)
	}
	e.warm[key] = warmEntry{epoch: st.epoch, clusters: cp, effectiveK: effK}
}

// warmSeed maps the cached partition for spec forward through the epoch log
// onto the snapshot's row numbering: append epochs keep ids stable, deletion
// epochs remap survivors and drop tombstoned rows, marking clusters that
// lost members dirty. ok is false when no cache entry exists, the entry is
// newer than the snapshot (a concurrent run raced an append), or every
// seed cluster was deleted away — the caller then runs cold.
func (e *Engine) warmSeed(spec Spec, st *engineState) (tclose.WarmSeed, int, bool) {
	key := warmKey{alg: spec.Algorithm, k: spec.K, t: spec.T}
	e.warmMu.Lock()
	ent, ok := e.warm[key]
	e.warmMu.Unlock()
	if !ok || ent.epoch > st.epoch {
		return tclose.WarmSeed{}, 0, false
	}
	clusters := make([][]int, len(ent.clusters))
	for i, c := range ent.clusters {
		clusters[i] = append([]int(nil), c.Rows...)
	}
	dirty := make([]bool, len(clusters))
	for _, ch := range st.log[ent.epoch:st.epoch] {
		if ch.oldToNew == nil {
			continue // append epoch: row ids are stable
		}
		for ci, rows := range clusters {
			kept := rows[:0]
			for _, r := range rows {
				if nr := ch.oldToNew[r]; nr >= 0 {
					kept = append(kept, nr)
				} else {
					dirty[ci] = true
				}
			}
			clusters[ci] = kept
		}
	}
	seed := tclose.WarmSeed{EffectiveK: ent.effectiveK}
	for ci, rows := range clusters {
		if len(rows) == 0 {
			continue
		}
		seed.Clusters = append(seed.Clusters, micro.Cluster{Rows: rows})
		seed.Dirty = append(seed.Dirty, dirty[ci])
	}
	if len(seed.Clusters) == 0 {
		return tclose.WarmSeed{}, 0, false
	}
	return seed, ent.epoch, true
}

// tryWarm attempts a warm-start run for the snapshot. ok is false when warm
// mode does not apply or no usable seed exists — the caller falls through
// to the cold path (and, for warm-eligible specs, seeds the cache from its
// result).
func (e *Engine) tryWarm(ctx context.Context, st *engineState, spec Spec) (*tclose.Result, *WarmStats, bool, error) {
	if !spec.Warm || !warmable(spec) {
		return nil, nil, false, nil
	}
	seed, seedEpoch, ok := e.warmSeed(spec, st)
	if !ok {
		return nil, nil, false, nil
	}
	res, ws, err := st.prep.WarmRepair(e.runOpts(ctx, spec.Algorithm), spec.K, spec.T,
		seed, spec.Algorithm == KAnonymityFirst)
	if err != nil {
		return nil, nil, true, err
	}
	return res, &WarmStats{
		SeedEpoch:    seedEpoch,
		SeedClusters: ws.SeedClusters,
		Assigned:     ws.Assigned,
		Folded:       ws.Folded,
		Split:        ws.Split,
		Repaired:     ws.Repaired,
		ScopeRows:    ws.ScopeRows,
	}, true, nil
}
