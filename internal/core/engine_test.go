package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// assertSameResult compares the outcome fields that are deterministic
// functions of the partition; Elapsed and Privacy pointers are excluded.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Fatalf("%s: partitions diverge", label)
	}
	if got.MaxEMD != want.MaxEMD {
		t.Fatalf("%s: MaxEMD %v want %v", label, got.MaxEMD, want.MaxEMD)
	}
	if got.SSE != want.SSE {
		t.Fatalf("%s: SSE %v want %v", label, got.SSE, want.SSE)
	}
	if got.Merges != want.Merges || got.Swaps != want.Swaps || got.EffectiveK != want.EffectiveK {
		t.Fatalf("%s: merges/swaps/effectiveK (%d,%d,%d) want (%d,%d,%d)", label,
			got.Merges, got.Swaps, got.EffectiveK, want.Merges, want.Swaps, want.EffectiveK)
	}
}

// TestEngineSweepMatchesAnonymize is the equivalence property of the API
// redesign: a (k, t) sweep through one shared Engine yields results
// bit-identical to cold one-shot Anonymize calls, for every algorithm —
// including the cached-partition paths of Algorithms 1 and 3, which a sweep
// hits on its second t point.
func TestEngineSweepMatchesAnonymize(t *testing.T) {
	tbl := synth.Census(400, synth.FedTax, 5)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	algs := []Algorithm{Merge, KAnonymityFirst, TClosenessFirst, MondrianBaseline, SABREBaseline, IncognitoBaseline}
	for _, alg := range algs {
		for _, k := range []int{2, 4} {
			for _, tl := range []float64{0.08, 0.2} {
				spec := Spec{Algorithm: alg, K: k, T: tl, SkipAssessment: true}
				got, err := eng.Run(ctx, spec)
				if err != nil {
					t.Fatalf("%v k=%d t=%v: engine: %v", alg, k, tl, err)
				}
				want, err := Anonymize(tbl, spec)
				if err != nil {
					t.Fatalf("%v k=%d t=%v: cold: %v", alg, k, tl, err)
				}
				assertSameResult(t, spec.Algorithm.String(), got, want)
			}
		}
	}
}

// TestEngineSweepMatchesAnonymizeIndexed repeats the sweep equivalence on a
// table large enough to engage the shared k-d tree master and its per-run
// clones.
func TestEngineSweepMatchesAnonymizeIndexed(t *testing.T) {
	tbl := synth.PatientDischarge(2600, synth.DefaultSeed)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{Merge, TClosenessFirst} {
		for _, tl := range []float64{0.05, 0.2} {
			spec := Spec{Algorithm: alg, K: 3, T: tl, SkipAssessment: true}
			got, err := eng.Run(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Anonymize(tbl, spec)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, spec.Algorithm.String(), got, want)
		}
	}
}

// appendRows converts table rows into Append batches (numeric tables only).
func appendRows(tbl *dataset.Table, lo, hi int) [][]any {
	rows := make([][]any, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := make([]any, tbl.Width())
		for c := 0; c < tbl.Width(); c++ {
			row[c] = tbl.Value(r, c)
		}
		rows = append(rows, row)
	}
	return rows
}

// TestEngineAppendMatchesCold checks the epoch-append property: Append
// followed by Run is bit-identical to a cold run over the concatenated
// table, for every algorithm family touched by the prepared substrate.
func TestEngineAppendMatchesCold(t *testing.T) {
	full := synth.PatientDischarge(900, synth.DefaultSeed)
	base, err := full.Subset(iota0(700))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	// Two batches exercise repeated epochs.
	if err := eng.Append(appendRows(full, 700, 800)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append(appendRows(full, 800, 900)...); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 2 || eng.Len() != 900 {
		t.Fatalf("epoch=%d len=%d, want 2, 900", eng.Epoch(), eng.Len())
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{Merge, KAnonymityFirst, TClosenessFirst, SABREBaseline} {
		spec := Spec{Algorithm: alg, K: 3, T: 0.1, SkipAssessment: true}
		got, err := eng.Run(ctx, spec)
		if err != nil {
			t.Fatalf("%v: engine: %v", alg, err)
		}
		want, err := Anonymize(full, spec)
		if err != nil {
			t.Fatalf("%v: cold: %v", alg, err)
		}
		assertSameResult(t, alg.String(), got, want)
		// The released tables must agree value-for-value too.
		for c := 0; c < full.Width(); c++ {
			for r := 0; r < full.Len(); r++ {
				if got.Anonymized.Value(r, c) != want.Anonymized.Value(r, c) {
					t.Fatalf("%v: release diverges at (%d,%d)", alg, r, c)
				}
			}
		}
	}
}

// TestEngineAppendWidensRange forces the full-renormalization path: the
// appended record moves a quasi-identifier's min-max frame, so every
// normalized row changes, and the result must still match a cold engine.
func TestEngineAppendWidensRange(t *testing.T) {
	tbl := synth.Uniform(120, 2, 9)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	extreme := make([]any, tbl.Width())
	for c := 0; c < tbl.Width(); c++ {
		extreme[c] = 1e6 + float64(c)
	}
	ordinary := make([]any, tbl.Width())
	for c := 0; c < tbl.Width(); c++ {
		ordinary[c] = tbl.Value(3, c)
	}
	if err := eng.Append(extreme, ordinary); err != nil {
		t.Fatal(err)
	}
	cold := tbl.Clone()
	if err := cold.AppendRow(extreme...); err != nil {
		t.Fatal(err)
	}
	if err := cold.AppendRow(ordinary...); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{Merge, KAnonymityFirst, TClosenessFirst} {
		spec := Spec{Algorithm: alg, K: 2, T: 0.15, SkipAssessment: true}
		got, err := eng.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Anonymize(cold, spec)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, alg.String(), got, want)
	}
}

// TestEngineAppendErrorLeavesStateIntact: a bad batch must not advance the
// epoch or corrupt the substrate.
func TestEngineAppendErrorLeavesStateIntact(t *testing.T) {
	tbl := synth.Uniform(60, 2, 4)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Append([]any{1.0}); err == nil {
		t.Fatal("short row should fail")
	}
	if eng.Epoch() != 0 || eng.Len() != tbl.Len() {
		t.Fatalf("failed append changed state: epoch=%d len=%d", eng.Epoch(), eng.Len())
	}
	if _, err := eng.Run(context.Background(), Spec{Algorithm: TClosenessFirst, K: 2, T: 0.2, SkipAssessment: true}); err != nil {
		t.Fatalf("engine unusable after failed append: %v", err)
	}
}

// TestEngineRunCancelled: a pre-cancelled context aborts every algorithm
// with ctx.Err() before any partition work completes.
func TestEngineRunCancelled(t *testing.T) {
	tbl := synth.Census(300, synth.FedTax, 5)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	algs := []Algorithm{Merge, KAnonymityFirst, TClosenessFirst, MondrianBaseline, SABREBaseline, IncognitoBaseline}
	for _, alg := range algs {
		_, err := eng.Run(ctx, Spec{Algorithm: alg, K: 3, T: 0.1, SkipAssessment: true})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", alg, err)
		}
	}
}

// TestEngineRunCancelMidPartition cancels deliberately slow runs shortly
// after they start: each must return ctx.Err() promptly instead of
// completing (cold runs of these configurations take hundreds of
// milliseconds to seconds, so a nil error here would mean cancellation is
// not checked). Merge lands inside the ctx-aware MDAV partition; Algorithm
// 2 inside the swap-refinement rounds.
func TestEngineRunCancelMidPartition(t *testing.T) {
	tbl := synth.PatientDischarge(6000, synth.DefaultSeed)
	for _, alg := range []Algorithm{Merge, KAnonymityFirst} {
		eng, err := NewEngine(tbl) // fresh engine: no partition cache to short-circuit MDAV
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(15 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err = eng.Run(ctx, Spec{Algorithm: alg, K: 2, T: 0.02, SkipAssessment: true})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", alg, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%v: cancellation took %v, not prompt", alg, elapsed)
		}
	}
}

// TestEngineConcurrentRuns drives two goroutines through one engine —
// different parameter points, overlapping the lazy index build and the
// partition caches — and checks both against cold references. CI runs this
// package under -race, making it the data-race probe of the shared
// substrate.
func TestEngineConcurrentRuns(t *testing.T) {
	tbl := synth.Census(500, synth.Fica, 11)
	// A tiny crossover forces the shared k-d tree master (and its clones)
	// even at this size, maximizing contention on the lazy build.
	eng, err := NewEngine(tbl, WithIndexCrossover(32))
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Algorithm: Merge, K: 3, T: 0.08, SkipAssessment: true},
		{Algorithm: TClosenessFirst, K: 2, T: 0.12, SkipAssessment: true},
	}
	want := make([]*Result, len(specs))
	for i, spec := range specs {
		w, err := Anonymize(tbl, spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*rounds)
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := eng.Run(context.Background(), spec)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.Clusters, want[i].Clusters) || got.MaxEMD != want[i].MaxEMD {
					errs <- errors.New(spec.Algorithm.String() + ": concurrent run diverged from cold reference")
					return
				}
			}
		}(i, spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineSweepFaster is the headline acceptance property: a 6-point
// (k, t) sweep at n=1500 through one Engine beats six cold Anonymize calls
// by at least 1.5x end-to-end, with bit-identical partitions. Timing is
// taken as the best of three attempts to shed scheduler noise.
func TestEngineSweepFaster(t *testing.T) {
	tbl := synth.PatientDischarge(1500, synth.DefaultSeed)
	ks := []int{2, 3, 5}
	ts := []float64{0.05, 0.13}
	specs := make([]Spec, 0, 6)
	for _, k := range ks {
		for _, tl := range ts {
			specs = append(specs, Spec{Algorithm: TClosenessFirst, K: k, T: tl, SkipAssessment: true})
		}
	}
	ctx := context.Background()

	// Correctness first: one engine sweep against six cold calls.
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		got, err := eng.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Anonymize(tbl, spec)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, spec.Algorithm.String(), got, want)
	}

	if raceEnabled {
		t.Skip("timing assertion is meaningless under the race detector")
	}
	sweepEngine := func() time.Duration {
		start := time.Now()
		e, err := NewEngine(tbl)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if _, err := e.Run(ctx, spec); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	sweepCold := func() time.Duration {
		start := time.Now()
		for _, spec := range specs {
			if _, err := Anonymize(tbl, spec); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// Measured headroom is ~2x idle and ~1.7x under heavy background load;
	// best-of-5 keeps the 1.5x gate safe against scheduler noise.
	var bestRatio float64
	for attempt := 0; attempt < 5; attempt++ {
		cold := sweepCold()
		engine := sweepEngine()
		ratio := cold.Seconds() / engine.Seconds()
		t.Logf("attempt %d: cold=%v engine=%v (%.2fx)", attempt, cold, engine, ratio)
		if ratio > bestRatio {
			bestRatio = ratio
		}
		if bestRatio >= 1.5 {
			return
		}
	}
	t.Fatalf("engine sweep only %.2fx faster than cold calls, want >= 1.5x", bestRatio)
}

// TestEngineProgress: the WithProgress hook receives events from all three
// paper algorithms, tagged with the right algorithm.
func TestEngineProgress(t *testing.T) {
	tbl := synth.Census(300, synth.FedTax, 5)
	var mu sync.Mutex
	seen := make(map[Algorithm]map[string]int)
	eng, err := NewEngine(tbl, WithProgress(func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		if seen[p.Algorithm] == nil {
			seen[p.Algorithm] = make(map[string]int)
		}
		seen[p.Algorithm][p.Phase]++
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{Merge, KAnonymityFirst, TClosenessFirst} {
		if _, err := eng.Run(ctx, Spec{Algorithm: alg, K: 3, T: 0.05, SkipAssessment: true}); err != nil {
			t.Fatal(err)
		}
	}
	if seen[Merge]["merge"] == 0 {
		t.Error("no merge progress from Algorithm 1")
	}
	if seen[KAnonymityFirst]["partition"] == 0 {
		t.Error("no partition progress from Algorithm 2")
	}
	if seen[TClosenessFirst]["partition"] == 0 {
		t.Error("no partition progress from Algorithm 3")
	}
}

// TestEngineTuningOptions: engine-scoped tuning changes the execution
// strategy, never the result.
func TestEngineTuningOptions(t *testing.T) {
	tbl := synth.Census(400, synth.Fica, 7)
	spec := Spec{Algorithm: Merge, K: 3, T: 0.1, SkipAssessment: true}
	want, err := Anonymize(tbl, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		{WithWorkers(1)},
		{WithWorkers(3)},
		{WithIndexCrossover(16)},
		{WithWorkers(2), WithIndexCrossover(64)},
	} {
		eng, err := NewEngine(tbl, opts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "tuned engine", got, want)
	}
}

// TestEngineCopiesTable: mutating the caller's table after NewEngine must
// not leak into engine runs.
func TestEngineCopiesTable(t *testing.T) {
	tbl := synth.Uniform(80, 2, 3)
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Algorithm: TClosenessFirst, K: 2, T: 0.2, SkipAssessment: true}
	want, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetValue(0, 0, 12345)
	got, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "post-mutation run", got, want)
}

// TestAlgorithmTextRoundTrip: MarshalText emits the canonical name and
// UnmarshalText (via ParseAlgorithm) round-trips it for every algorithm;
// unknown values fail in both directions.
func TestAlgorithmTextRoundTrip(t *testing.T) {
	algs := []Algorithm{Merge, KAnonymityFirst, TClosenessFirst, MondrianBaseline, SABREBaseline, IncognitoBaseline}
	for _, alg := range algs {
		text, err := alg.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if string(text) != alg.String() {
			t.Errorf("%v: MarshalText = %q, want %q", alg, text, alg.String())
		}
		var back Algorithm
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v: UnmarshalText(%q): %v", alg, text, err)
		}
		if back != alg {
			t.Errorf("round-trip %v -> %q -> %v", alg, text, back)
		}
	}
	if _, err := Algorithm(99).MarshalText(); err == nil {
		t.Error("unknown algorithm should not marshal")
	}
	var a Algorithm
	if err := a.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown name should not unmarshal")
	}
}

// TestLegacyMondrianLooseT: the Mondrian baseline historically accepts any
// t (values above the EMD ceiling just leave splits unconstrained); the
// engine's up-front validation must not tighten that.
func TestLegacyMondrianLooseT(t *testing.T) {
	tbl := synth.Uniform(60, 2, 9)
	if _, err := Anonymize(tbl, Config{Algorithm: MondrianBaseline, K: 2, T: 1.5}); err != nil {
		t.Fatalf("legacy Mondrian with T>1 should still work: %v", err)
	}
	eng, err := NewEngine(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), Spec{Algorithm: MondrianBaseline, K: 2, T: 1.5}); err != nil {
		t.Fatalf("engine Mondrian with T>1 should work: %v", err)
	}
}

func iota0(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
