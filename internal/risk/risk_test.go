package risk

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/synth"
)

func TestDistanceLinkageIdentityRelease(t *testing.T) {
	// Releasing the original data re-identifies everyone (records are
	// distinct with probability 1 in the uniform generator).
	tbl := synth.Uniform(50, 2, 3)
	res, err := DistanceLinkage(tbl, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate()-1) > 1e-12 {
		t.Errorf("identity release linkage rate = %v, want 1", res.Rate())
	}
}

func TestDistanceLinkageKAnonymousRelease(t *testing.T) {
	// A k-anonymous release bounds re-identification at 1/k: each original
	// record's nearest anonymized points are the k identical centroids of
	// its cluster, so the tie-broken credit is exactly 1/size(cluster).
	tbl := synth.Census(300, synth.FedTax, 5)
	for _, k := range []int{2, 5, 10} {
		res, err := core.Anonymize(tbl, core.Config{
			Algorithm: core.TClosenessFirst, K: k, T: 0.2, SkipAssessment: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		link, err := DistanceLinkage(tbl, res.Anonymized)
		if err != nil {
			t.Fatal(err)
		}
		if link.Rate() > 1.0/float64(k)+1e-9 {
			t.Errorf("k=%d: linkage rate %v exceeds 1/k", k, link.Rate())
		}
		if link.Rate() <= 0 {
			t.Errorf("k=%d: linkage rate should be positive", k)
		}
	}
}

func TestDistanceLinkageRiskBoundedByK(t *testing.T) {
	// The 1/k ceiling tightens with k; small-k rates are noisy (Algorithm
	// 3's QI-scattered clusters push the empirical rate far below the
	// ceiling), so assert the ceilings rather than strict monotonicity.
	tbl := synth.Census(300, synth.FedTax, 9)
	for _, k := range []int{2, 5, 15} {
		res, err := core.Anonymize(tbl, core.Config{
			Algorithm: core.TClosenessFirst, K: k, T: 0.25, SkipAssessment: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		link, err := DistanceLinkage(tbl, res.Anonymized)
		if err != nil {
			t.Fatal(err)
		}
		if link.Rate() > 1.0/float64(k)+1e-9 {
			t.Errorf("k=%d: linkage rate %v above the 1/k ceiling", k, link.Rate())
		}
	}
}

func TestDistanceLinkageValidation(t *testing.T) {
	a := synth.Uniform(10, 2, 1)
	short, err := a.Subset([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistanceLinkage(a, short); err == nil {
		t.Error("size mismatch should fail")
	}
	other := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "s", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	for i := 0; i < 10; i++ {
		if err := other.AppendNumericRow(float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := DistanceLinkage(a, other); err == nil {
		t.Error("schema mismatch should fail")
	}
	empty, err := a.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistanceLinkage(empty, empty); err == nil {
		t.Error("empty tables should fail")
	}
}

func TestIntervalRisk(t *testing.T) {
	tbl := synth.Uniform(40, 2, 7)
	// Identity release: every record within any tolerance.
	r, err := IntervalRisk(tbl, tbl, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("identity interval risk = %v, want 1", r)
	}
	// Heavy perturbation drives the risk down.
	anon := tbl.Clone()
	for i := 0; i < anon.Len(); i++ {
		anon.SetValue(i, 0, anon.Value(i, 0)+10)
	}
	r, err = IntervalRisk(tbl, anon, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("perturbed interval risk = %v, want 0", r)
	}
}

func TestIntervalRiskValidation(t *testing.T) {
	tbl := synth.Uniform(10, 2, 9)
	if _, err := IntervalRisk(tbl, tbl, 0); err == nil {
		t.Error("p = 0 should fail")
	}
	if _, err := IntervalRisk(tbl, tbl, 1); err == nil {
		t.Error("p = 1 should fail")
	}
}

func TestAnatomyReleaseHasFullLinkage(t *testing.T) {
	// The QI-preserving permutation release keeps the original QI values,
	// so record linkage trivially succeeds — the point is that the linked
	// record's confidential value is no longer the subject's. This test
	// documents that property so adopters are not surprised.
	tbl := synth.Census(200, synth.FedTax, 13)
	res, err := core.Anonymize(tbl, core.Config{
		Algorithm: core.TClosenessFirst, K: 5, T: 0.2, SkipAssessment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	anon, err := micro.AnatomyRelease(tbl, res.Clusters, 1)
	if err != nil {
		t.Fatal(err)
	}
	link, err := DistanceLinkage(tbl, anon)
	if err != nil {
		t.Fatal(err)
	}
	if link.Rate() < 0.99 {
		t.Errorf("anatomy linkage rate = %v, want ~1 (QIs unchanged)", link.Rate())
	}
}
