// Package risk implements empirical disclosure-risk assessment for
// anonymized microdata via distance-based record linkage (Winkler et al.,
// "Disclosure risk assessment in perturbative microdata protection", cited
// as [32] by the paper). It complements the information-loss metrics: SDC
// evaluations report the trade-off between utility (package metrics) and
// risk (this package).
//
// The attack model: an intruder holds the original quasi-identifier values
// of the subjects (e.g. from an external register) and links each original
// record to its nearest record in the anonymized release. A linkage is
// correct when the nearest anonymized record is the one derived from that
// subject. For a k-anonymous release the nearest match is a centroid shared
// by >= k records, so the theoretical ceiling of correct linkage is 1/k;
// measuring the empirical rate validates that the release delivers it.
package risk

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// LinkageResult summarizes a record-linkage attack.
type LinkageResult struct {
	// Linked is the number of original records whose subject was correctly
	// re-identified (credited fractionally when several anonymized records
	// tie at the minimum distance: 1/|ties| if the true record is among
	// them, following the standard distance-based linkage accounting).
	Linked float64
	// Records is the number of records attacked.
	Records int
}

// Rate returns the proportion of correct re-identifications in [0, 1].
func (r LinkageResult) Rate() float64 {
	if r.Records == 0 {
		return 0
	}
	return r.Linked / float64(r.Records)
}

// DistanceLinkage runs the distance-based record-linkage attack: for every
// original record, all anonymized records at minimal quasi-identifier
// distance are located, and credit 1/|ties| is scored if the record derived
// from the same subject (same row index) is among them.
func DistanceLinkage(original, anonymized *dataset.Table) (LinkageResult, error) {
	if original.Len() != anonymized.Len() {
		return LinkageResult{}, fmt.Errorf("risk: table sizes differ: %d vs %d",
			original.Len(), anonymized.Len())
	}
	if original.Len() == 0 {
		return LinkageResult{}, errors.New("risk: no records")
	}
	if !original.Schema().Equal(anonymized.Schema()) {
		return LinkageResult{}, errors.New("risk: schemas differ")
	}
	qis := original.Schema().QuasiIdentifiers()
	if len(qis) == 0 {
		return LinkageResult{}, errors.New("risk: no quasi-identifiers")
	}
	// Normalize both tables with the original's ranges so distances are
	// commensurate.
	mins := make([]float64, len(qis))
	ranges := make([]float64, len(qis))
	for j, c := range qis {
		st := original.Stats(c)
		mins[j] = st.Min
		if st.Max > st.Min {
			ranges[j] = st.Max - st.Min
		} else {
			ranges[j] = 1
		}
	}
	n := original.Len()
	anonPts := make([][]float64, n)
	for r := 0; r < n; r++ {
		p := make([]float64, len(qis))
		for j, c := range qis {
			p[j] = (anonymized.Value(r, c) - mins[j]) / ranges[j]
		}
		anonPts[r] = p
	}
	res := LinkageResult{Records: n}
	probe := make([]float64, len(qis))
	for r := 0; r < n; r++ {
		for j, c := range qis {
			probe[j] = (original.Value(r, c) - mins[j]) / ranges[j]
		}
		bestD := -1.0
		ties := 0
		selfTied := false
		for a := 0; a < n; a++ {
			d := micro.Dist2(probe, anonPts[a])
			switch {
			case bestD < 0 || d < bestD:
				bestD = d
				ties = 1
				selfTied = a == r
			case d == bestD:
				ties++
				if a == r {
					selfTied = true
				}
			}
		}
		if selfTied {
			res.Linked += 1.0 / float64(ties)
		}
	}
	return res, nil
}

// IntervalRisk computes the rank-interval disclosure measure used alongside
// linkage in the SDC literature: the proportion of original records whose
// anonymized quasi-identifier values all fall within +-p percent of the
// attribute range around the original values — records an intruder could
// confirm with approximate background knowledge.
func IntervalRisk(original, anonymized *dataset.Table, p float64) (float64, error) {
	if original.Len() != anonymized.Len() {
		return 0, fmt.Errorf("risk: table sizes differ: %d vs %d",
			original.Len(), anonymized.Len())
	}
	if original.Len() == 0 {
		return 0, errors.New("risk: no records")
	}
	if p <= 0 || p >= 1 {
		return 0, errors.New("risk: p must be in (0, 1)")
	}
	qis := original.Schema().QuasiIdentifiers()
	if len(qis) == 0 {
		return 0, errors.New("risk: no quasi-identifiers")
	}
	tol := make([]float64, len(qis))
	for j, c := range qis {
		st := original.Stats(c)
		tol[j] = p * (st.Max - st.Min)
	}
	hits := 0
	for r := 0; r < original.Len(); r++ {
		within := true
		for j, c := range qis {
			d := original.Value(r, c) - anonymized.Value(r, c)
			if d < 0 {
				d = -d
			}
			if d > tol[j] {
				within = false
				break
			}
		}
		if within {
			hits++
		}
	}
	return float64(hits) / float64(original.Len()), nil
}
