package synth

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestCensusSizeAndSchema(t *testing.T) {
	tbl := CensusMCD()
	if tbl.Len() != CensusSize {
		t.Fatalf("len = %d, want %d", tbl.Len(), CensusSize)
	}
	s := tbl.Schema()
	if got := s.QuasiIdentifiers(); len(got) != 2 {
		t.Errorf("QIs = %v", got)
	}
	if got := s.Confidentials(); len(got) != 1 {
		t.Errorf("confidentials = %v", got)
	}
	if s.Attr(2).Name != "FEDTAX" {
		t.Errorf("confidential name = %q", s.Attr(2).Name)
	}
	if CensusHCD().Schema().Attr(2).Name != "FICA" {
		t.Error("HCD confidential should be FICA")
	}
	if err := tbl.Validate(); err != nil {
		t.Errorf("generated table invalid: %v", err)
	}
}

func TestCensusCorrelationTargets(t *testing.T) {
	// The substitution contract of DESIGN.md §4: the paper's quoted
	// QI↔confidential correlation (driven by the dominant quasi-identifier,
	// TAXINC) is ≈0.52 for MCD and ≈0.92 for HCD. With n=1080 sampling
	// noise allows a modest band.
	mcd, err := CensusMCD().MaxQIConfidentialCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if mcd < 0.42 || mcd > 0.62 {
		t.Errorf("MCD correlation = %.3f, want ≈0.52", mcd)
	}
	hcd, err := CensusHCD().MaxQIConfidentialCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if hcd < 0.85 || hcd > 0.97 {
		t.Errorf("HCD correlation = %.3f, want ≈0.92", hcd)
	}
	if hcd <= mcd {
		t.Errorf("HCD (%v) must exceed MCD (%v)", hcd, mcd)
	}
	// The mean over both quasi-identifiers is strictly lower because
	// POTHVAL is nearly independent of the confidential attribute.
	mean, err := CensusMCD().QIConfidentialCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if mean >= mcd {
		t.Errorf("mean correlation %v should be below max %v", mean, mcd)
	}
}

func TestCensusDeterministic(t *testing.T) {
	a := Census(50, FedTax, 123)
	b := Census(50, FedTax, 123)
	for r := 0; r < 50; r++ {
		for c := 0; c < 3; c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("value (%d,%d) differs across identical seeds", r, c)
			}
		}
	}
	c := Census(50, FedTax, 124)
	same := true
	for r := 0; r < 50 && same; r++ {
		same = a.Value(r, 0) == c.Value(r, 0)
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}

func TestCensusSkewedMarginals(t *testing.T) {
	// Income-like attributes must be right-skewed: mean > median.
	tbl := CensusMCD()
	for c := 0; c < 3; c++ {
		col := tbl.Column(c)
		if dataset.Mean(col) <= dataset.Median(col) {
			t.Errorf("column %d not right-skewed: mean %v median %v",
				c, dataset.Mean(col), dataset.Median(col))
		}
	}
}

func TestCensusPositiveValues(t *testing.T) {
	tbl := CensusHCD()
	for c := 0; c < 3; c++ {
		st := tbl.Stats(c)
		if st.Min <= 0 {
			t.Errorf("column %q has non-positive minimum %v", st.Name, st.Min)
		}
	}
}

func TestPatientDischargeSizeAndSchema(t *testing.T) {
	tbl := PatientDischarge(500, DefaultSeed)
	if tbl.Len() != 500 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if got := tbl.Schema().QuasiIdentifiers(); len(got) != 7 {
		t.Errorf("want 7 QIs, got %d", len(got))
	}
	if got := tbl.Schema().Confidentials(); len(got) != 1 {
		t.Errorf("want 1 confidential, got %d", len(got))
	}
	if err := tbl.Validate(); err != nil {
		t.Errorf("generated table invalid: %v", err)
	}
}

func TestPatientDischargeWeakCorrelation(t *testing.T) {
	tbl := PatientDischarge(8000, DefaultSeed)
	corr, err := tbl.QIConfidentialCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.05 || corr > 0.25 {
		t.Errorf("PD correlation = %.3f, want ≈0.13", corr)
	}
}

func TestPatientDischargeDomains(t *testing.T) {
	tbl := PatientDischarge(2000, 9)
	checks := []struct {
		col    string
		lo, hi float64
	}{
		{"AGE", 0, 100},
		{"ZIP", 90001, 93001},
		{"ADMIT_DAY", 1, 365},
		{"SEVERITY", 1, 5},
		{"SEX", 0, 1},
		{"WARD", 1, 8},
	}
	for _, c := range checks {
		idx := tbl.Schema().Index(c.col)
		if idx < 0 {
			t.Fatalf("column %q missing", c.col)
		}
		st := tbl.Stats(idx)
		if st.Min < c.lo || st.Max > c.hi {
			t.Errorf("%s range [%v,%v] outside [%v,%v]", c.col, st.Min, st.Max, c.lo, c.hi)
		}
	}
	stay := tbl.Stats(tbl.Schema().Index("STAY_DAYS"))
	if stay.Min < 1 {
		t.Errorf("STAY_DAYS min = %v, want >= 1", stay.Min)
	}
	charge := tbl.Stats(tbl.Schema().Index("CHARGE"))
	if charge.Min <= 0 {
		t.Errorf("CHARGE min = %v, want > 0", charge.Min)
	}
}

func TestPatientDischargeChargeHeavyTailed(t *testing.T) {
	tbl := PatientDischarge(5000, 3)
	col := tbl.Column(tbl.Schema().Index("CHARGE"))
	mean, med := dataset.Mean(col), dataset.Median(col)
	if mean <= med {
		t.Errorf("charge not right-skewed: mean %v median %v", mean, med)
	}
}

func TestUniform(t *testing.T) {
	tbl := Uniform(25, 3, 5)
	if tbl.Len() != 25 || tbl.Width() != 4 {
		t.Fatalf("dims %dx%d", tbl.Len(), tbl.Width())
	}
	if len(tbl.Schema().QuasiIdentifiers()) != 3 {
		t.Error("want 3 QIs")
	}
	for r := 0; r < tbl.Len(); r++ {
		for c := 0; c < tbl.Width(); c++ {
			v := tbl.Value(r, c)
			if v < 0 || v >= 1 || math.IsNaN(v) {
				t.Fatalf("value (%d,%d) = %v outside [0,1)", r, c, v)
			}
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := Uniform(10, 2, 42), Uniform(10, 2, 42)
	for r := 0; r < 10; r++ {
		if a.Value(r, 0) != b.Value(r, 0) {
			t.Fatal("Uniform not deterministic")
		}
	}
}
