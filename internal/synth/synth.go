// Package synth generates the synthetic evaluation data sets that stand in
// for the two real data sets used in the paper's Section 8, which are not
// redistributable (see DESIGN.md §4 for the substitution rationale):
//
//   - Census: the CASC reference "Census" file (1,080 records) with
//     TAXINC and POTHVAL as quasi-identifiers and FEDTAX (QI↔confidential
//     correlation ≈ 0.52, the "moderately correlated data set", MCD) or
//     FICA (correlation ≈ 0.92, the "highly correlated data set", HCD) as
//     the confidential attribute.
//   - PatientDischarge: the 2010 OSHPD Cedars-Sinai patient discharge file
//     (23,435 records after cleaning) with 7 quasi-identifiers and the
//     hospital charge as confidential attribute (correlation ≈ 0.129).
//
// The generators are deterministic for a given seed and are built from a
// Gaussian latent factor model, so the Pearson correlations between
// quasi-identifiers and confidential attributes — the property that drives
// every phenomenon in the paper's evaluation — are controlled analytically.
// All value scales mimic the originals (incomes in dollars, ages in years)
// but the records are entirely synthetic.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// DefaultSeed is the seed used by the package-level convenience
// constructors; fixing it makes every table, benchmark and example in the
// repository reproducible bit-for-bit.
const DefaultSeed = 20160314

// CensusSize is the number of records in the CASC Census data set.
const CensusSize = 1080

// PatientDischargeSize is the number of records in the cleaned Cedars-Sinai
// patient discharge data set.
const PatientDischargeSize = 23435

// Confidential selects which confidential attribute variant of the Census
// data set to generate.
type Confidential int

const (
	// FedTax yields the moderately correlated data set (MCD):
	// QI↔confidential Pearson correlation ≈ 0.52.
	FedTax Confidential = iota
	// Fica yields the highly correlated data set (HCD): correlation ≈ 0.92,
	// the worst case for t-closeness-aware microaggregation.
	Fica
)

// Census generates a Census-like table with n records. The schema has two
// numeric quasi-identifiers, TAXINC and POTHVAL, and one numeric
// confidential attribute, FEDTAX or FICA depending on which.
//
// Construction: TAXINC is the primary income latent; POTHVAL (income of
// *other* household members) is only weakly tied to it (latent correlation
// 0.15), which keeps the quasi-identifier space genuinely two-dimensional —
// the property that lets Algorithm 1's QI-nearest merging escape the
// confidential-attribute ranking instead of snowballing one giant cluster.
// The confidential attribute loads on TAXINC with independent noise. All
// attributes are shifted lognormal transforms of the latents (incomes are
// right-skewed). The loadings are calibrated so the measured Pearson
// correlation between TAXINC and the confidential attribute on the
// lognormal scale is ≈0.52 for FEDTAX and ≈0.92 for FICA — the figures the
// paper quotes for the MCD and HCD data sets (use
// dataset.Table.MaxQIConfidentialCorrelation to check them; the mean over
// both quasi-identifiers is lower because POTHVAL is nearly independent).
func Census(n int, which Confidential, seed int64) *dataset.Table {
	name := "FEDTAX"
	loading := mcdLoading
	if which == Fica {
		name = "FICA"
		loading = hcdLoading
	}
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "TAXINC", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "POTHVAL", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: name, Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	t := dataset.MustTable(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		zt, zp := censusLatents(rng)
		zc := loading*zt + math.Sqrt(1-loading*loading)*rng.NormFloat64()
		taxinc := 8000 + 30000*math.Exp(censusSigma*zt)
		pothval := 1000 + 12000*math.Exp(censusSigma*zp)
		var conf float64
		if which == Fica {
			conf = 300 + 2800*math.Exp(censusSigma*zc)
		} else {
			conf = 500 + 4500*math.Exp(censusSigma*zc)
		}
		// AppendNumericRow only fails on schema mismatch, impossible here.
		_ = t.AppendNumericRow(taxinc, pothval, conf)
	}
	return t
}

// Census generator calibration (see the calibration note in DESIGN.md §4).
// For equal lognormal shapes σ, two lognormals whose Gaussian latents
// correlate at ρ have Pearson correlation (e^{ρσ²}-1)/(e^{σ²}-1); the
// loadings below invert that relation for the targets 0.52 and 0.92 at
// σ = 0.6: ρ = ln(1 + target·(e^{σ²}-1))/σ².
const (
	qiCorr      = 0.15
	censusSigma = 0.6
	mcdLoading  = 0.5645
	hcdLoading  = 0.9320
)

// censusLatents draws the standardized quasi-identifier latents.
func censusLatents(rng *rand.Rand) (zt, zp float64) {
	u1 := rng.NormFloat64()
	u2 := rng.NormFloat64()
	zt = u1
	zp = qiCorr*u1 + math.Sqrt(1-qiCorr*qiCorr)*u2
	return zt, zp
}

// CensusMCD returns the 1,080-record moderately correlated Census data set
// with the default seed.
func CensusMCD() *dataset.Table { return Census(CensusSize, FedTax, DefaultSeed) }

// CensusHCD returns the 1,080-record highly correlated Census data set with
// the default seed.
func CensusHCD() *dataset.Table { return Census(CensusSize, Fica, DefaultSeed) }

// PatientDischarge generates a patient-discharge-like table with n records:
// seven quasi-identifiers of mixed scales (age, zip code, admission day,
// length of stay, severity, sex, ward) and one heavy-tailed confidential
// attribute (total charge) that is weakly correlated with the
// quasi-identifiers (mean absolute Pearson correlation ≈ 0.13, dominated by
// length of stay and severity, matching the 0.129 the paper reports).
func PatientDischarge(n int, seed int64) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "AGE", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "ZIP", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "ADMIT_DAY", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "STAY_DAYS", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "SEVERITY", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "SEX", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "WARD", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "CHARGE", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	t := dataset.MustTable(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		age := clamp(math.Round(52+21*rng.NormFloat64()), 0, 100)
		zip := math.Floor(90001 + 3000*rng.Float64())
		admit := math.Floor(1 + 365*rng.Float64())
		stayLatent := rng.NormFloat64()
		stay := math.Max(1, math.Round(math.Exp(1.1+0.7*stayLatent)))
		sevLatent := 0.35*stayLatent + math.Sqrt(1-0.35*0.35)*rng.NormFloat64()
		severity := severityLevel(sevLatent)
		sex := float64(rng.Intn(2))
		ward := float64(1 + rng.Intn(8))
		// Charge: driven by stay and severity plus a heavy lognormal tail,
		// giving a weak overall QI↔confidential correlation.
		noise := math.Exp(0.9 * rng.NormFloat64())
		charge := 4000 + 2600*stay + 3500*severity + 9000*noise
		_ = t.AppendNumericRow(age, zip, admit, stay, severity, sex, ward, charge)
	}
	return t
}

// PatientDischargeFull returns the full-size 23,435-record data set with the
// default seed.
func PatientDischargeFull() *dataset.Table {
	return PatientDischarge(PatientDischargeSize, DefaultSeed)
}

func severityLevel(z float64) float64 {
	switch {
	case z < -1.0:
		return 1
	case z < -0.2:
		return 2
	case z < 0.6:
		return 3
	case z < 1.4:
		return 4
	default:
		return 5
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Uniform generates a small featureless table with qi quasi-identifier
// columns drawn uniformly from [0,1) and one uniform confidential column.
// It is used by tests, examples and property checks that need arbitrary
// well-formed microdata without the Census structure.
func Uniform(n, qi int, seed int64) *dataset.Table {
	attrs := make([]dataset.Attribute, 0, qi+1)
	for i := 0; i < qi; i++ {
		attrs = append(attrs, dataset.Attribute{
			Name: "QI" + string(rune('A'+i)), Role: dataset.QuasiIdentifier, Kind: dataset.Numeric,
		})
	}
	attrs = append(attrs, dataset.Attribute{
		Name: "SECRET", Role: dataset.Confidential, Kind: dataset.Numeric,
	})
	t := dataset.MustTable(dataset.MustSchema(attrs...))
	rng := rand.New(rand.NewSource(seed))
	row := make([]float64, qi+1)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		_ = t.AppendNumericRow(row...)
	}
	return t
}
