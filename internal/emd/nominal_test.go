package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNominalSpaceBasics(t *testing.T) {
	s, err := NewNominalSpace([]float64{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Nominal() {
		t.Error("Nominal() should be true")
	}
	// Whole data set: distance 0.
	if d := s.EMDOf([]int{0, 1, 2, 3}); math.Abs(d) > 1e-12 {
		t.Errorf("whole-dataset nominal EMD = %v", d)
	}
	// Cluster {value 0}: p=(1,0,0), q=(1/4,1/2,1/4).
	// TV = (3/4 + 1/2 + 1/4)/2 = 3/4.
	if d := s.EMDOf([]int{0}); math.Abs(d-0.75) > 1e-12 {
		t.Errorf("nominal EMD = %v, want 0.75", d)
	}
}

func TestNominalVsOrderedDiffer(t *testing.T) {
	// Under the ordered distance, a cluster at value 1 of {0,1,2} is close
	// to the middle; under the nominal distance the position is irrelevant.
	vals := []float64{0, 1, 2}
	ord, err := NewSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	nom, err := NewNominalSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	mid := []int{1}
	end := []int{0}
	if ord.EMDOf(mid) >= ord.EMDOf(end) {
		t.Error("ordered distance should favor the middle value")
	}
	if math.Abs(nom.EMDOf(mid)-nom.EMDOf(end)) > 1e-12 {
		t.Error("nominal distance should be position-independent")
	}
}

func TestNominalMatchesExplicitDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = float64(rng.Intn(7))
	}
	s, err := NewNominalSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		size := 1 + rng.Intn(15)
		rows := rng.Perm(50)[:size]
		p := make([]float64, s.Bins())
		for _, r := range rows {
			p[s.Bin(r)] += 1.0 / float64(size)
		}
		q := make([]float64, s.Bins())
		for b := range q {
			q[b] = s.DatasetMass(b)
		}
		want, err := NominalDistance(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.EMDOf(rows); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: %v != %v", trial, got, want)
		}
	}
}

func TestNominalSwapConsistency(t *testing.T) {
	s, err := NewNominalSpace([]float64{0, 1, 2, 0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	h := s.HistOf([]int{0, 1})
	pred := h.EMDSwap(0, 5)
	h.Remove(0)
	h.Add(5)
	if math.Abs(pred-h.EMD()) > 1e-12 {
		t.Errorf("swap prediction %v != %v", pred, h.EMD())
	}
}

func TestNominalRange(t *testing.T) {
	f := func(raw []float64, pick []byte) bool {
		if len(raw) == 0 || len(pick) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		s, err := NewNominalSpace(raw)
		if err != nil {
			return false
		}
		rows := make([]int, 0, len(pick))
		for _, b := range pick {
			rows = append(rows, int(b)%len(raw))
		}
		d := s.EMDOf(rows)
		return d >= 0 && d < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNominalDistanceValidation(t *testing.T) {
	if _, err := NominalDistance([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch should fail")
	}
	d, err := NominalDistance([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil || d != 0 {
		t.Errorf("identity = %v, %v", d, err)
	}
}
