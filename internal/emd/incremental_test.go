package emd

import (
	"math"
	"math/rand"
	"testing"
)

// referenceEMDSwap is the naive O(m) floating-point evaluation the package
// shipped before the incremental-geometry engine: a full cumulative walk
// over every bin with virtual removal/addition. The property tests below pin
// the optimized engine against it.
func referenceEMDSwap(h *Hist, outBin, inBin int) float64 {
	s := h.space
	if s.m < 2 {
		return 0
	}
	size := h.size
	if outBin >= 0 {
		size--
	}
	if inBin >= 0 {
		size++
	}
	if size <= 0 {
		return 0
	}
	inv := 1.0 / float64(size)
	if s.nominal {
		var total float64
		for b := 0; b < s.m; b++ {
			c := h.counts[b]
			if b == outBin {
				c--
			}
			if b == inBin {
				c++
			}
			d := float64(c)*inv - s.q[b]
			if d < 0 {
				d = -d
			}
			total += d
		}
		return total / 2
	}
	var cum, total float64
	for b := 0; b < s.m-1; b++ {
		c := h.counts[b]
		if b == outBin {
			c--
		}
		if b == inBin {
			c++
		}
		cum += float64(c)*inv - s.q[b]
		if cum >= 0 {
			total += cum
		} else {
			total -= cum
		}
	}
	return total / float64(s.m-1)
}

func referenceEMD(h *Hist) float64 { return referenceEMDSwap(h, -1, -1) }

// randomSpace builds an ordered or nominal space whose value domain has a
// controlled number of distinct bins, so both dense (occ ≈ m) and sparse
// (occ ≪ m) regimes are exercised.
func randomSpace(t *testing.T, rng *rand.Rand, n int, nominal bool) *Space {
	t.Helper()
	domain := 1 + rng.Intn(2*n)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64()*float64(domain)) / 3
	}
	var s *Space
	var err error
	if nominal {
		s, err = NewNominalSpace(vals)
	} else {
		s, err = NewSpace(vals)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIncrementalEMDSwapMatchesReference drives randomized histograms
// through long sequences of virtual swap queries and committed mutations,
// checking every incremental result against the naive full recomputation.
func TestIncrementalEMDSwapMatchesReference(t *testing.T) {
	for _, nominal := range []bool{false, true} {
		rng := rand.New(rand.NewSource(20160314))
		for trial := 0; trial < 60; trial++ {
			n := 8 + rng.Intn(120)
			s := randomSpace(t, rng, n, nominal)
			size := 1 + rng.Intn(n-1)
			rows := rng.Perm(n)[:size]
			h := s.HistOf(rows)
			for step := 0; step < 80; step++ {
				out := rows[rng.Intn(len(rows))]
				in := rng.Intn(n)
				var got float64
				switch step % 4 {
				case 0: // same-size swap (the Algorithm 2 inner-loop query)
					got = h.EMDSwap(out, in)
				case 1: // add-only
					got = h.EMDSwap(-1, in)
					out = -1
				case 2: // remove-only
					got = h.EMDSwap(out, -1)
					in = -1
				default: // full EMD
					got = h.EMD()
					out, in = -1, -1
				}
				want := referenceEMDSwap(h, binOrMinus(s, out), binOrMinus(s, in))
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("nominal=%v trial %d step %d: incremental %v, reference %v",
						nominal, trial, step, got, want)
				}
				// Commit a mutation so the cached geometry is exercised
				// across states: mostly swaps, sometimes add/remove.
				switch {
				case step%7 == 3:
					add := rng.Intn(n)
					h.Add(add)
					rows = append(rows, add)
				case step%7 == 5 && len(rows) > 1:
					i := rng.Intn(len(rows))
					h.Remove(rows[i])
					rows = append(rows[:i], rows[i+1:]...)
				default:
					i := rng.Intn(len(rows))
					in := rng.Intn(n)
					h.Swap(rows[i], in)
					rows[i] = in
				}
			}
		}
	}
}

func binOrMinus(s *Space, rec int) int {
	if rec < 0 {
		return -1
	}
	return s.Bin(rec)
}

// TestIncrementalSwapExactlyMatchesMutation checks bit-for-bit equality
// between the virtual same-size swap and the EMD measured after actually
// mutating a fresh histogram: both paths run the same exact integer
// arithmetic, so the caller's tie-breaking comparisons are unaffected by
// which path produced a value.
func TestIncrementalSwapExactlyMatchesMutation(t *testing.T) {
	for _, nominal := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			n := 4 + rng.Intn(60)
			s := randomSpace(t, rng, n, nominal)
			size := 1 + rng.Intn(n-1)
			rows := rng.Perm(n)[:size]
			h := s.HistOf(rows)
			out := rows[rng.Intn(size)]
			in := rng.Intn(n)
			predicted := h.EMDSwap(out, in)
			fresh := s.HistOf(rows)
			fresh.Swap(out, in)
			if got := fresh.EMD(); got != predicted {
				t.Fatalf("nominal=%v trial %d: EMDSwap=%v but post-mutation EMD=%v (must be identical)",
					nominal, trial, predicted, got)
			}
		}
	}
}

// TestSwapEquivalentToRemoveAdd pins Hist.Swap to Remove+Add semantics.
func TestSwapEquivalentToRemoveAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(80)
		s := randomSpace(t, rng, n, trial%2 == 0)
		size := 1 + rng.Intn(n-1)
		rows := rng.Perm(n)[:size]
		a := s.HistOf(rows)
		b := s.HistOf(rows)
		out := rows[rng.Intn(size)]
		in := rng.Intn(n)
		a.Swap(out, in)
		b.Remove(out)
		b.Add(in)
		if a.EMD() != b.EMD() || a.Size() != b.Size() {
			t.Fatalf("trial %d: Swap diverges from Remove+Add: %v/%d vs %v/%d",
				trial, a.EMD(), a.Size(), b.EMD(), b.Size())
		}
	}
}

// TestHistOfPathsAgree checks the insert-based and batch-fill HistOf
// construction paths produce identical histograms across the size cutoff.
func TestHistOfPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 400
	s := randomSpace(t, rng, n, false)
	for _, size := range []int{1, histOfAddLimit - 1, histOfAddLimit, histOfAddLimit + 1, 200, n} {
		rows := rng.Perm(n)[:size]
		batch := s.HistOf(rows)
		incr := s.NewHist()
		for _, r := range rows {
			incr.Add(r)
		}
		if batch.EMD() != incr.EMD() || batch.Size() != incr.Size() {
			t.Fatalf("size %d: batch %v/%d vs incremental %v/%d",
				size, batch.EMD(), batch.Size(), incr.EMD(), incr.Size())
		}
	}
}
