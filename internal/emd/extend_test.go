package emd

import (
	"math/rand"
	"testing"
)

// assertSpacesEqual checks every observable of two spaces over the same
// record set: domain, per-record bins, dataset masses, full EMD queries on
// random subsets, and the closed-form two-record numerator.
func assertSpacesEqual(t *testing.T, label string, got, want *Space, rng *rand.Rand) {
	t.Helper()
	if got.N() != want.N() || got.Bins() != want.Bins() || got.Nominal() != want.Nominal() {
		t.Fatalf("%s: shape (n=%d m=%d nom=%v) want (n=%d m=%d nom=%v)", label,
			got.N(), got.Bins(), got.Nominal(), want.N(), want.Bins(), want.Nominal())
	}
	for b := 0; b < want.Bins(); b++ {
		if got.Value(b) != want.Value(b) {
			t.Fatalf("%s: Value(%d) = %v want %v", label, b, got.Value(b), want.Value(b))
		}
		if got.DatasetMass(b) != want.DatasetMass(b) {
			t.Fatalf("%s: DatasetMass(%d) = %v want %v", label, b, got.DatasetMass(b), want.DatasetMass(b))
		}
	}
	for rec := 0; rec < want.N(); rec++ {
		if got.Bin(rec) != want.Bin(rec) {
			t.Fatalf("%s: Bin(%d) = %d want %d", label, rec, got.Bin(rec), want.Bin(rec))
		}
	}
	for trial := 0; trial < 30; trial++ {
		size := 1 + rng.Intn(8)
		rows := make([]int, size)
		for i := range rows {
			rows[i] = rng.Intn(want.N())
		}
		if g, w := got.EMDOf(rows), want.EMDOf(rows); g != w {
			t.Fatalf("%s: EMDOf(%v) = %v want %v", label, rows, g, w)
		}
	}
	if !want.Nominal() {
		for trial := 0; trial < 30; trial++ {
			a, b := rng.Intn(want.Bins()), rng.Intn(want.Bins())
			if g, w := got.TwoRecordAbsDev(a, b), want.TwoRecordAbsDev(a, b); g != w {
				t.Fatalf("%s: TwoRecordAbsDev(%d,%d) = %d want %d", label, a, b, g, w)
			}
		}
	}
}

// TestSpaceExtendMatchesCold: Extend over any tail is bit-identical to a
// cold NewSpace/NewNominalSpace over the concatenated values, including
// tails that introduce new bins below, between, and above the old domain.
func TestSpaceExtendMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nominal := trial%2 == 1
		n := 5 + rng.Intn(60)
		base := make([]float64, n)
		for i := range base {
			base[i] = float64(rng.Intn(20)) // dense duplicates
		}
		tailLen := 1 + rng.Intn(25)
		tail := make([]float64, tailLen)
		for i := range tail {
			// Values from -5 to 30: below, inside, and above the old domain.
			tail[i] = float64(rng.Intn(36) - 5)
		}
		newSpace := NewSpace
		if nominal {
			newSpace = NewNominalSpace
		}
		old, err := newSpace(base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := old.Extend(tail)
		if err != nil {
			t.Fatal(err)
		}
		want, err := newSpace(append(append([]float64(nil), base...), tail...))
		if err != nil {
			t.Fatal(err)
		}
		assertSpacesEqual(t, "extend", got, want, rng)
	}
}

// TestSpaceExtendEmptyTail: an empty tail is an identity (the receiver is
// immutable, so returning it is safe).
func TestSpaceExtendEmptyTail(t *testing.T) {
	s, err := NewSpace([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Extend(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Error("empty extend should return the receiver")
	}
}

// TestSpaceExtendChained: repeated epoch extensions equal one cold build —
// the streaming-ingest access pattern.
func TestSpaceExtendChained(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all := make([]float64, 90)
	for i := range all {
		all[i] = float64(rng.Intn(25))
	}
	s, err := NewSpace(all[:30])
	if err != nil {
		t.Fatal(err)
	}
	for lo, hi := 30, 50; hi <= 90; lo, hi = hi, hi+20 {
		s, err = s.Extend(all[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
	}
	want, err := NewSpace(all)
	if err != nil {
		t.Fatal(err)
	}
	assertSpacesEqual(t, "chained", s, want, rng)
}
