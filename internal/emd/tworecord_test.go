package emd

import (
	"math/rand"
	"testing"
)

// TestTwoRecordAbsDevMatchesHist pins the closed-form two-record deviation
// numerator — the innermost evaluation of Algorithm 2's swap refinement at
// k=2 — to the general histogram machinery, over random discrete domains
// including duplicated bins and the extreme bins 0 and m−1.
func TestTwoRecordAbsDevMatchesHist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(300)
		vals := make([]float64, n)
		spread := 1 + rng.Intn(n)
		for i := range vals {
			vals[i] = float64(rng.Intn(spread))
		}
		s, err := NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 30; q++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if q == 0 {
				a, b = 0, n-1 // extreme record pair
			}
			want := s.HistOf([]int{a, b}).AbsDev()
			got := s.TwoRecordAbsDev(s.Bin(a), s.Bin(b))
			if got != want {
				t.Fatalf("trial %d: TwoRecordAbsDev(bins %d,%d) = %d, want %d",
					trial, s.Bin(a), s.Bin(b), got, want)
			}
		}
	}
}

// TestCrossingCacheMatchesSearch verifies that runAbsSumAt with the cached
// per-level crossing returns exactly what the binary-searched runAbsSum
// returns, for every level of random histograms.
func TestCrossingCacheMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(1 + rng.Intn(n)))
		}
		s, err := NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		size := 1 + rng.Intn(10)
		for K := int64(0); K <= int64(size); K++ {
			cross := s.levelCross(K, int64(size))
			for q := 0; q < 10; q++ {
				p := rng.Intn(s.m)
				qq := p + rng.Intn(s.m-p)
				nK := int64(s.n) * K
				want := s.runAbsSum(p, qq, nK, int64(size))
				got := s.runAbsSumAt(p, qq, nK, int64(size), cross)
				if got != want {
					t.Fatalf("trial %d K=%d [%d,%d): cached=%d searched=%d", trial, K, p, qq, got, want)
				}
			}
		}
	}
}
