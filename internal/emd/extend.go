package emd

import "sort"

// Extend returns the Space over the original records followed by newValues —
// bit-identical to NewSpace (or NewNominalSpace) over the concatenated value
// slice, but built incrementally: the old sorted distinct domain is merged
// with the sorted distinct values of the tail, old record bins are remapped
// through the merge instead of re-searched, and only the O(m) prefix
// geometry is recomputed. Cost is O(new·log new + n + m) against the cold
// build's O((n+new)·log(n+new)). The receiver is immutable and remains
// valid; this is the epoch step behind streaming ingest.
func (s *Space) Extend(newValues []float64) (*Space, error) {
	if len(newValues) == 0 {
		return s, nil
	}
	tail := append([]float64(nil), newValues...)
	sort.Float64s(tail)
	tailUniq := tail[:0]
	for i, v := range tail {
		if i == 0 || v != tailUniq[len(tailUniq)-1] {
			tailUniq = append(tailUniq, v)
		}
	}
	// Merge the two sorted distinct domains; binMap sends each old bin to
	// its index in the merged domain.
	merged := make([]float64, 0, s.m+len(tailUniq))
	binMap := make([]int, s.m)
	i, j := 0, 0
	for i < s.m && j < len(tailUniq) {
		switch {
		case s.values[i] < tailUniq[j]:
			binMap[i] = len(merged)
			merged = append(merged, s.values[i])
			i++
		case s.values[i] > tailUniq[j]:
			merged = append(merged, tailUniq[j])
			j++
		default:
			binMap[i] = len(merged)
			merged = append(merged, s.values[i])
			i, j = i+1, j+1
		}
	}
	for ; i < s.m; i++ {
		binMap[i] = len(merged)
		merged = append(merged, s.values[i])
	}
	merged = append(merged, tailUniq[j:]...)

	n2, m2 := s.n+len(newValues), len(merged)
	out := &Space{
		n:       n2,
		m:       m2,
		values:  merged,
		q:       make([]float64, m2),
		binOf:   make([]int, n2),
		qCounts: make([]int, m2),
		qcPref:  make([]int64, m2),
		sqcPref: make([]int64, m2),
		nominal: s.nominal,
	}
	for rec, b := range s.binOf {
		nb := binMap[b]
		out.binOf[rec] = nb
		out.qCounts[nb]++
	}
	for rec, v := range newValues {
		b := sort.SearchFloat64s(merged, v)
		out.binOf[s.n+rec] = b
		out.qCounts[b]++
	}
	var qc, sqc int64
	for b, c := range out.qCounts {
		out.q[b] = float64(c) / float64(n2)
		qc += int64(c)
		sqc += qc
		out.qcPref[b] = qc
		out.sqcPref[b] = sqc
	}
	out.halfCross = out.levelCross(1, 2)
	return out, nil
}
