package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinClusterEMDFormula(t *testing.T) {
	// (n+k)(n-k)/(4n(n-1)k) for a few hand values.
	cases := []struct {
		n, k int
		want float64
	}{
		{n: 4, k: 2, want: 6.0 * 2.0 / (4 * 4 * 3 * 2)},
		{n: 10, k: 5, want: 15.0 * 5.0 / (4 * 10 * 9 * 5)},
		{n: 1080, k: 2, want: 1082.0 * 1078.0 / (4 * 1080 * 1079 * 2)},
	}
	for _, c := range cases {
		if got := MinClusterEMD(c.n, c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinClusterEMD(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestMinClusterEMDDegenerate(t *testing.T) {
	if MinClusterEMD(10, 10) != 0 {
		t.Error("k = n should give 0")
	}
	if MinClusterEMD(10, 20) != 0 {
		t.Error("k > n should give 0")
	}
	if MinClusterEMD(1, 1) != 0 {
		t.Error("n < 2 should give 0")
	}
	if MinClusterEMD(10, 0) != 0 {
		t.Error("k = 0 should give 0")
	}
}

// TestProposition1Tight verifies the bound is tight when k divides n: the
// cluster that takes the median of each of the k groups of n/k consecutive
// ranks achieves exactly the Proposition 1 EMD (when n/k is odd, so the
// median is unambiguous).
func TestProposition1Tight(t *testing.T) {
	cases := []struct{ n, k int }{{9, 3}, {15, 3}, {25, 5}, {49, 7}, {81, 9}}
	for _, c := range cases {
		vals := make([]float64, c.n)
		for i := range vals {
			vals[i] = float64(i) // all distinct: rank == index
		}
		s, err := NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		g := c.n / c.k
		rows := make([]int, c.k)
		for i := 0; i < c.k; i++ {
			rows[i] = i*g + (g-1)/2 // median of the i-th group (g odd)
		}
		got := s.EMDOf(rows)
		want := MinClusterEMD(c.n, c.k)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d k=%d: median-cluster EMD %v != bound %v", c.n, c.k, got, want)
		}
	}
}

// TestProposition1LowerBound: no random cluster of size k may beat the
// Proposition 1 lower bound.
func TestProposition1LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	s, err := NewSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(n/2)
		if n%k != 0 {
			continue // bound is only guaranteed tight/valid when k | n
		}
		rows := rng.Perm(n)[:k]
		if d, bound := s.EMDOf(rows), MinClusterEMD(n, k); d < bound-1e-9 {
			t.Fatalf("cluster %v has EMD %v below bound %v (k=%d)", rows, d, bound, k)
		}
	}
}

func TestMaxSpreadClusterEMDFormula(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{n: 4, k: 2, want: 2.0 / (2 * 3 * 2)},
		{n: 1080, k: 2, want: 1078.0 / (2 * 1079 * 2)},
		{n: 1080, k: 30, want: 1050.0 / (2 * 1079 * 30)},
	}
	for _, c := range cases {
		if got := MaxSpreadClusterEMD(c.n, c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MaxSpreadClusterEMD(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

// TestProposition2UpperBound: every cluster built with exactly one record
// from each of k rank-consecutive subsets stays within the Proposition 2
// bound, whatever record is chosen from each subset.
func TestProposition2UpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(8)
		g := 1 + rng.Intn(9)
		n := k * g
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() // arbitrary values; ranks matter
		}
		s, err := NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		// Order records by value to form the rank subsets.
		order := rng.Perm(n)
		sortByValue(order, vals)
		rows := make([]int, k)
		for i := 0; i < k; i++ {
			rows[i] = order[i*g+rng.Intn(g)]
		}
		bound := MaxSpreadClusterEMD(n, k)
		if d := s.EMDOf(rows); d > bound+1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): spread cluster EMD %v exceeds bound %v",
				trial, n, k, d, bound)
		}
	}
}

// TestProposition2Extremal: taking the minimum of each subset attains
// exactly the bound when all values are distinct.
func TestProposition2Extremal(t *testing.T) {
	for _, c := range []struct{ n, k int }{{12, 3}, {20, 4}, {50, 5}} {
		vals := make([]float64, c.n)
		for i := range vals {
			vals[i] = float64(i)
		}
		s, err := NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		g := c.n / c.k
		rows := make([]int, c.k)
		for i := range rows {
			rows[i] = i * g // minimum of each subset
		}
		got := s.EMDOf(rows)
		want := MaxSpreadClusterEMD(c.n, c.k)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d k=%d: extremal EMD %v != bound %v", c.n, c.k, got, want)
		}
	}
}

func sortByValue(order []int, vals []float64) {
	// insertion sort: inputs are small in these tests
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && vals[order[j]] < vals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

func TestRequiredClusterSizeValidation(t *testing.T) {
	if _, err := RequiredClusterSize(10, 2, 0); err == nil {
		t.Error("t = 0 should fail")
	}
	if _, err := RequiredClusterSize(10, 2, -0.5); err == nil {
		t.Error("negative t should fail")
	}
	if _, err := RequiredClusterSize(0, 2, 0.1); err == nil {
		t.Error("n = 0 should fail")
	}
}

func TestRequiredClusterSizeHand(t *testing.T) {
	// n=1080, t=0.25: ceil(1080 / (2*1079*0.25 + 1)) = ceil(1080/540.5) = 2.
	k, err := RequiredClusterSize(1080, 2, 0.25)
	if err != nil || k != 2 {
		t.Errorf("k = %d, err = %v; want 2", k, err)
	}
	// n=1080, t=0.01: ceil(1080/22.58) = 48.
	k, _ = RequiredClusterSize(1080, 2, 0.01)
	if k != 48 {
		t.Errorf("k = %d, want 48", k)
	}
	// k dominates when the t requirement is loose.
	k, _ = RequiredClusterSize(1080, 30, 0.25)
	if k != 30 {
		t.Errorf("k = %d, want 30", k)
	}
}

// TestRequiredClusterSizeSufficient: the returned size, plugged back into
// the Proposition 2 bound, must meet t (that is what Algorithm 3 relies on).
func TestRequiredClusterSizeSufficient(t *testing.T) {
	f := func(nRaw, kRaw uint16, tRaw uint16) bool {
		n := 2 + int(nRaw)%5000
		k := 1 + int(kRaw)%64
		tl := 0.001 + float64(tRaw%1000)/2000.0 // (0.001, 0.5]
		size, err := RequiredClusterSize(n, k, tl)
		if err != nil {
			return false
		}
		if size < k && size < n {
			return false
		}
		if size >= n {
			return true // single cluster: EMD 0
		}
		return MaxSpreadClusterEMD(n, size) <= tl+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAdjustClusterSizeNoRemainder(t *testing.T) {
	if got := AdjustClusterSize(1080, 5); got != 5 {
		t.Errorf("k=5 divides 1080, got %d", got)
	}
	if got := AdjustClusterSize(1080, 7); got != 7 {
		// 1080 mod 7 = 2 <= 154: no adjustment.
		t.Errorf("AdjustClusterSize(1080,7) = %d, want 7", got)
	}
}

func TestAdjustClusterSizeRemainderTooLarge(t *testing.T) {
	// n=10, k=6: groups=1, r=4 > 1 -> must grow. After adjustment the
	// invariant r <= floor(n/k) holds.
	got := AdjustClusterSize(10, 6)
	if got < 6 || got > 10 {
		t.Fatalf("AdjustClusterSize(10,6) = %d out of range", got)
	}
	if r, g := 10%got, 10/got; got < 10 && r > g {
		t.Errorf("invariant violated: k=%d r=%d groups=%d", got, r, g)
	}
}

func TestAdjustClusterSizeInvariant(t *testing.T) {
	f := func(nRaw, kRaw uint16) bool {
		n := 1 + int(nRaw)%3000
		k := 1 + int(kRaw)%200
		got := AdjustClusterSize(n, k)
		if got < 1 || got > n {
			return false
		}
		if got < k && k <= n {
			return false // adjustment never shrinks k below the request
		}
		if got == n {
			return true
		}
		return n%got <= n/got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMaxSpreadDecreasingInK(t *testing.T) {
	// Larger clusters spread over more subsets are closer to the data set
	// distribution: the bound must decrease monotonically in k.
	n := 1080
	prev := math.Inf(1)
	for k := 1; k <= n; k++ {
		b := MaxSpreadClusterEMD(n, k)
		if b > prev+1e-15 {
			t.Fatalf("bound increased at k=%d: %v > %v", k, b, prev)
		}
		prev = b
	}
}

// TestMaxSpreadUnevenBound: clusters of size k+1 with two records from a
// central subset must respect the uneven-case bound for every choice of
// records.
func TestMaxSpreadUnevenBound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		k := 3 + rng.Intn(8)
		g := 2 + rng.Intn(8)
		r := 1 + rng.Intn(min2(g, k/2)) // extras, <= groups
		n := k*g + r
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		s, err := NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		order := rng.Perm(n)
		sortByValue(order, vals)
		// Subset sizes: g everywhere, extras in the central subset.
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = g
		}
		sizes[k/2] += r
		starts := make([]int, k)
		for i := 1; i < k; i++ {
			starts[i] = starts[i-1] + sizes[i-1]
		}
		// A cluster with one random record per subset, two from the center.
		rows := make([]int, 0, k+1)
		for i := 0; i < k; i++ {
			rows = append(rows, order[starts[i]+rng.Intn(sizes[i])])
		}
		for {
			extra := order[starts[k/2]+rng.Intn(sizes[k/2])]
			dup := false
			for _, x := range rows {
				if x == extra {
					dup = true
					break
				}
			}
			if !dup {
				rows = append(rows, extra)
				break
			}
		}
		bound := MaxSpreadClusterEMDUneven(n, k)
		if d := s.EMDOf(rows); d > bound+1e-9 {
			t.Fatalf("trial %d (n=%d k=%d r=%d): EMD %v exceeds uneven bound %v",
				trial, n, k, r, d, bound)
		}
	}
}

func TestMaxSpreadUnevenExceedsEven(t *testing.T) {
	for _, c := range []struct{ n, k int }{{102, 25}, {1081, 10}, {50, 7}} {
		if MaxSpreadClusterEMDUneven(c.n, c.k) <= MaxSpreadClusterEMD(c.n, c.k) {
			t.Errorf("uneven bound must exceed even bound for n=%d k=%d", c.n, c.k)
		}
	}
	if MaxSpreadClusterEMDUneven(10, 10) != 0 {
		t.Error("degenerate case should be 0")
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
