package emd

import (
	"errors"
	"math"
)

// This file implements the analytic results of Section 7 of the paper:
// Proposition 1 (a tight lower bound on the EMD of any k-record cluster),
// Proposition 2 (an upper bound on the EMD of clusters drawing one record
// from each of k rank-sorted subsets), Eq. (3) (the minimum cluster size
// that guarantees t-closeness under Proposition 2), and Eq. (4) (the
// cluster-size adjustment when k does not divide n).

// MinClusterEMD returns the Proposition 1 lower bound on the Earth Mover's
// Distance between any cluster of size k and a data set of n records:
//
//	EMD >= (n+k)(n-k) / (4n(n-1)k)
//
// The bound is tight when k divides n. It is 0 when k >= n (the cluster is
// the whole data set) and undefined (returns 0) for degenerate n < 2.
func MinClusterEMD(n, k int) float64 {
	if n < 2 || k <= 0 || k >= n {
		return 0
	}
	nf, kf := float64(n), float64(k)
	return (nf + kf) * (nf - kf) / (4 * nf * (nf - 1) * kf)
}

// MaxSpreadClusterEMD returns the Proposition 2 upper bound on the EMD of a
// cluster built by taking exactly one record from each of k subsets of n/k
// records sorted by confidential-attribute rank:
//
//	EMD <= (n-k) / (2(n-1)k)
//
// It is 0 when k >= n and 0 for degenerate n < 2.
func MaxSpreadClusterEMD(n, k int) float64 {
	if n < 2 || k <= 0 || k >= n {
		return 0
	}
	nf, kf := float64(n), float64(k)
	return (nf - kf) / (2 * (nf - 1) * kf)
}

// MaxSpreadClusterEMDUneven bounds the EMD of the oversized clusters that
// appear when k does not divide n: a cluster with k+1 records, one from each
// of k rank subsets plus a second from a central subset (Figures 3-4 of the
// paper). The paper notes the exact formulas are "tedious and unwieldy" and
// uses the Proposition 2 bound as an approximation; this function provides a
// rigorous (if loose) bound by adding the worst-case cost of re-balancing
// the extra record's probability mass across subsets:
//
//	EMD <= (n-k)/(2(n-1)k)  +  (k-1)n / (4k²(n-1))
//
// The first term is the Proposition 2 within-subset spreading cost; the
// second bounds the between-subset transport of the central subset's surplus
// mass (k-1)/(k(k+1)), accumulated over at most (k-1)/2 subset hops of
// ordered distance (n/k)/(n-1) each.
func MaxSpreadClusterEMDUneven(n, k int) float64 {
	if n < 2 || k <= 0 || k >= n {
		return 0
	}
	nf, kf := float64(n), float64(k)
	rebalance := (kf - 1) * nf / (4 * kf * kf * (nf - 1))
	return MaxSpreadClusterEMD(n, k) + rebalance
}

// ErrBadT is returned when a t-closeness level outside (0, +inf) is given.
var ErrBadT = errors.New("emd: t-closeness level must be positive")

// RequiredClusterSize returns the Eq. (3) cluster size for Algorithm 3: the
// smallest cluster size that simultaneously satisfies the k-anonymity
// parameter k and, via the Proposition 2 bound, the t-closeness parameter t
// on a data set of n records:
//
//	max{ k, ceil( n / (2(n-1)t + 1) ) }
//
// The result is capped at n (a single cluster containing the whole data set
// always satisfies t-closeness with EMD 0).
func RequiredClusterSize(n, k int, t float64) (int, error) {
	if t <= 0 {
		return 0, ErrBadT
	}
	if n <= 0 {
		return 0, errors.New("emd: data set size must be positive")
	}
	if k < 1 {
		k = 1
	}
	need := int(math.Ceil(float64(n) / (2*float64(n-1)*t + 1)))
	size := k
	if need > size {
		size = need
	}
	if size > n {
		size = n
	}
	return size, nil
}

// AdjustClusterSize applies the Eq. (4) remainder adjustment of Algorithm 3.
// With cluster size k on n records, r = n mod k records remain after forming
// floor(n/k) rank subsets; the construction can absorb at most one extra
// record per generated cluster, which requires r <= floor(n/k). When that
// fails, the paper increases k by floor(r / floor(n/k)); because a single
// application of the formula can leave a remainder that still violates the
// requirement, AdjustClusterSize iterates (increasing k by at least one per
// round) until r <= floor(n/k) holds. The result never exceeds n.
func AdjustClusterSize(n, k int) int {
	if k >= n {
		return n
	}
	if k < 1 {
		k = 1
	}
	for k < n {
		groups := n / k
		r := n % k
		if r <= groups {
			break
		}
		inc := r / groups
		if inc < 1 {
			inc = 1
		}
		k += inc
	}
	if k > n {
		k = n
	}
	return k
}
