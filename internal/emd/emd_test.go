package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceEmpty(t *testing.T) {
	if _, err := NewSpace(nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestSpaceBasics(t *testing.T) {
	// Values 5,1,5,3 -> bins {1,3,5}, q = {1/4, 1/4, 2/4}.
	s, err := NewSpace([]float64{5, 1, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.Bins() != 3 {
		t.Fatalf("n=%d m=%d", s.N(), s.Bins())
	}
	if s.Bin(0) != 2 || s.Bin(1) != 0 || s.Bin(2) != 2 || s.Bin(3) != 1 {
		t.Errorf("bins = %d %d %d %d", s.Bin(0), s.Bin(1), s.Bin(2), s.Bin(3))
	}
	if s.Value(0) != 1 || s.Value(1) != 3 || s.Value(2) != 5 {
		t.Error("bin values wrong")
	}
	if s.DatasetMass(2) != 0.5 {
		t.Errorf("q[2] = %v", s.DatasetMass(2))
	}
}

func TestEMDWholeDatasetIsZero(t *testing.T) {
	vals := []float64{9, 2, 7, 2, 5, 1}
	s, err := NewSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3, 4, 5}
	if d := s.EMDOf(all); math.Abs(d) > 1e-12 {
		t.Errorf("EMD of whole data set = %v, want 0", d)
	}
}

func TestEMDHandComputed(t *testing.T) {
	// Data set: values 1..4, one record each. q = (1/4,1/4,1/4,1/4).
	// Cluster {record with value 1}: p = (1,0,0,0).
	// Cumulative p-q: 3/4, 1/2, 1/4, 0 -> sum 3/2, / (m-1)=3 -> 1/2.
	s, err := NewSpace([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.EMDOf([]int{0}); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("EMD({1}) = %v, want 0.5", d)
	}
	// Cluster {1,4}: p=(1/2,0,0,1/2). Cum: 1/4, 0, -1/4, 0 -> 1/2 / 3 = 1/6.
	if d := s.EMDOf([]int{0, 3}); math.Abs(d-1.0/6) > 1e-12 {
		t.Errorf("EMD({1,4}) = %v, want 1/6", d)
	}
	// Cluster {2,3}: p=(0,1/2,1/2,0). Cum: -1/4, 0, 1/4, 0 -> 1/2/3 = 1/6.
	if d := s.EMDOf([]int{1, 2}); math.Abs(d-1.0/6) > 1e-12 {
		t.Errorf("EMD({2,3}) = %v, want 1/6", d)
	}
}

func TestEMDSingleBinSpace(t *testing.T) {
	s, err := NewSpace([]float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.EMDOf([]int{0}); d != 0 {
		t.Errorf("EMD over single-bin space = %v, want 0", d)
	}
}

func TestEMDMatchesExplicitDistance(t *testing.T) {
	// Hist.EMD must agree with the independent closed-form Distance over
	// explicit distributions.
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = float64(rng.Intn(12))
	}
	s, err := NewSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		size := 1 + rng.Intn(20)
		rows := rng.Perm(60)[:size]
		p := make([]float64, s.Bins())
		for _, r := range rows {
			p[s.Bin(r)] += 1.0 / float64(size)
		}
		q := make([]float64, s.Bins())
		for b := range q {
			q[b] = s.DatasetMass(b)
		}
		want, err := Distance(p, q)
		if err != nil {
			t.Fatal(err)
		}
		got := s.EMDOf(rows)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: EMDOf = %v, Distance = %v", trial, got, want)
		}
	}
}

func TestEMDRange(t *testing.T) {
	// EMD with ordered distance is always within [0, 1/2]: moving all mass
	// from one extreme to spread costs at most the mean rank distance.
	f := func(raw []float64, pick []byte) bool {
		if len(raw) < 2 || len(pick) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		s, err := NewSpace(raw)
		if err != nil {
			return false
		}
		rows := make([]int, 0, len(pick))
		for _, b := range pick {
			rows = append(rows, int(b)%len(raw))
		}
		d := s.EMDOf(rows)
		return d >= 0 && d <= 0.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistAddRemoveInverse(t *testing.T) {
	s, err := NewSpace([]float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	h := s.HistOf([]int{0, 2, 4})
	before := h.EMD()
	h.Add(5)
	h.Remove(5)
	if after := h.EMD(); math.Abs(after-before) > 1e-12 {
		t.Errorf("add+remove changed EMD: %v -> %v", before, after)
	}
	if h.Size() != 3 {
		t.Errorf("size = %d", h.Size())
	}
}

func TestHistRemoveEmptyPanics(t *testing.T) {
	s, _ := NewSpace([]float64{1, 2})
	h := s.NewHist()
	defer func() {
		if recover() == nil {
			t.Error("removing from empty histogram should panic")
		}
	}()
	h.Remove(0)
}

func TestEMDSwapMatchesMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = rng.Float64() * 10
	}
	s, err := NewSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		perm := rng.Perm(40)
		rows := perm[:5]
		out := rows[rng.Intn(5)]
		in := perm[5+rng.Intn(35)]
		h := s.HistOf(rows)
		predicted := h.EMDSwap(out, in)
		h.Remove(out)
		h.Add(in)
		actual := h.EMD()
		if math.Abs(predicted-actual) > 1e-12 {
			t.Fatalf("trial %d: EMDSwap = %v, post-mutation EMD = %v", trial, predicted, actual)
		}
	}
}

func TestEMDSwapAddOnlyAndRemoveOnly(t *testing.T) {
	s, err := NewSpace([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	h := s.HistOf([]int{0, 2})
	addOnly := h.EMDSwap(-1, 4)
	h2 := h.Clone()
	h2.Add(4)
	if math.Abs(addOnly-h2.EMD()) > 1e-12 {
		t.Errorf("add-only swap: %v vs %v", addOnly, h2.EMD())
	}
	removeOnly := h.EMDSwap(0, -1)
	h3 := h.Clone()
	h3.Remove(0)
	if math.Abs(removeOnly-h3.EMD()) > 1e-12 {
		t.Errorf("remove-only swap: %v vs %v", removeOnly, h3.EMD())
	}
}

func TestHistMerge(t *testing.T) {
	s, err := NewSpace([]float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	a := s.HistOf([]int{0, 1})
	b := s.HistOf([]int{4, 5})
	a.Merge(b)
	want := s.EMDOf([]int{0, 1, 4, 5})
	if math.Abs(a.EMD()-want) > 1e-12 {
		t.Errorf("merged EMD = %v, want %v", a.EMD(), want)
	}
	if a.Size() != 4 {
		t.Errorf("merged size = %d", a.Size())
	}
}

func TestHistMergeDifferentSpacesPanics(t *testing.T) {
	s1, _ := NewSpace([]float64{1, 2})
	s2, _ := NewSpace([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("merging across spaces should panic")
		}
	}()
	s1.NewHist().Merge(s2.NewHist())
}

func TestHistCloneIndependent(t *testing.T) {
	s, _ := NewSpace([]float64{1, 2, 3})
	h := s.HistOf([]int{0})
	c := h.Clone()
	c.Add(1)
	if h.Size() != 1 {
		t.Error("clone mutation leaked")
	}
}

func TestEmptyHistEMDZero(t *testing.T) {
	s, _ := NewSpace([]float64{1, 2, 3})
	if d := s.NewHist().EMD(); d != 0 {
		t.Errorf("empty histogram EMD = %v", d)
	}
}

func TestDistanceValidation(t *testing.T) {
	if _, err := Distance([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch should fail")
	}
	d, err := Distance([]float64{1}, []float64{1})
	if err != nil || d != 0 {
		t.Errorf("single-bin distance = %v, %v", d, err)
	}
}

func TestDistanceIdentity(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		p := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			p[i] = math.Abs(v)
			if math.IsNaN(p[i]) || math.IsInf(p[i], 0) {
				return true
			}
			total += p[i]
		}
		if total == 0 {
			return true
		}
		for i := range p {
			p[i] /= total
		}
		d, err := Distance(p, p)
		return err == nil && math.Abs(d) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEMDSubsetUnionBound checks a transport-theoretic sanity property: the
// EMD of a union of two equal-size clusters is at most the mean of their
// EMDs (mixing distributions cannot increase the distance beyond the
// mixture of distances; EMD is convex in its first argument).
func TestEMDSubsetUnionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	s, err := NewSpace(vals)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(50)
		a, b := perm[:10], perm[10:20]
		da, db := s.EMDOf(a), s.EMDOf(b)
		dab := s.EMDOf(append(append([]int{}, a...), b...))
		if dab > (da+db)/2+1e-9 {
			t.Fatalf("union EMD %v exceeds mean of parts (%v, %v)", dab, da, db)
		}
	}
}
