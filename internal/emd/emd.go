// Package emd implements the Earth Mover's Distance with ordered distance,
// the distribution distance that defines t-closeness for numeric (and
// ordinal categorical) attributes in the paper.
//
// For an attribute taking sorted distinct values {v1 < v2 < ... < vm}, the
// ordered distance between bins is ordered_distance(vi, vj) = |i-j|/(m-1),
// and the EMD between distributions P and Q over those values has the closed
// form
//
//	EMD(P,Q) = 1/(m-1) * Σ_{i=1..m} |Σ_{j<=i} (p_j - q_j)|
//
// which is O(m) to evaluate directly. The package precomputes, per
// confidential attribute, a Space holding the value domain of the entire
// data set and the data set's own distribution Q, so that the distance from
// any cluster's empirical distribution P to Q can be computed and
// incrementally updated as records are added, removed, or swapped (the inner
// loop of the paper's Algorithm 2).
//
// # Incremental geometry
//
// All distances are evaluated in exact integer arithmetic: for a cluster of
// size s over a data set of n records, the cumulative deviation at bin b is
//
//	dev(b) = n·C(b) − s·QC(b)
//
// where C and QC are the integer prefix counts of the cluster and the data
// set, and EMD = Σ|dev(b)| / (n·s·(m−1)). Between two bins occupied by the
// cluster, C is constant, so dev is a nonincreasing affine function of the
// precomputed data set prefix QC and its absolute sum over the run has a
// closed form around a binary-searched zero crossing. A histogram therefore
// maintains only its sorted list of occupied bins, and one full EMD — or one
// virtual same-size swap, the inner-loop query of Algorithm 2 — costs
// O(occ·log m) instead of O(m), where occ ≤ min(s, m) is the number of
// occupied bins. Exactness makes the incremental results bit-identical to
// the batch recomputation, so caller tie-breaking is unaffected.
//
// Integer range: the evaluation is exact while n·s·m < 2⁶³, i.e. for data
// sets up to roughly two million records.
package emd

import (
	"errors"
	"fmt"
	"sort"
)

// Space is the fixed frame of reference for EMD computations on one
// confidential attribute: the sorted distinct value domain of the whole data
// set T, the data set distribution Q over it, and the bin index of every
// record. A Space is immutable after construction and safe for concurrent
// use.
type Space struct {
	n       int       // number of records in T
	m       int       // number of distinct values (bins)
	values  []float64 // sorted distinct values
	q       []float64 // data set probability mass per bin (counts/n)
	binOf   []int     // record index -> bin index
	qCounts []int     // raw counts per bin
	qcPref  []int64   // qcPref[b] = Σ_{j<=b} qCounts[j]
	sqcPref []int64   // sqcPref[b] = Σ_{j<=b} qcPref[j] (range sums of qcPref)
	// halfCross is the first bin b with 2·qcPref[b] > n (m if none): the
	// sign crossing of the prefix level K=1 at cluster size 2, precomputed
	// so two-record histograms have a fully closed-form deviation numerator
	// (TwoRecordAbsDev).
	halfCross int
	nominal   bool // total-variation (equal ground distance) instead of ordered
}

// ErrEmpty is returned when constructing a Space from no records.
var ErrEmpty = errors.New("emd: no records")

// NewSpace builds a Space from the confidential attribute values of every
// record in the data set, indexed by record position.
func NewSpace(values []float64) (*Space, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	distinct := append([]float64(nil), values...)
	sort.Float64s(distinct)
	uniq := distinct[:0]
	for i, v := range distinct {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	uniq = append([]float64(nil), uniq...)
	s := &Space{
		n:       n,
		m:       len(uniq),
		values:  uniq,
		q:       make([]float64, len(uniq)),
		binOf:   make([]int, n),
		qCounts: make([]int, len(uniq)),
		qcPref:  make([]int64, len(uniq)),
		sqcPref: make([]int64, len(uniq)),
	}
	for i, v := range values {
		b := sort.SearchFloat64s(uniq, v)
		s.binOf[i] = b
		s.qCounts[b]++
	}
	var qc, sqc int64
	for b, c := range s.qCounts {
		s.q[b] = float64(c) / float64(n)
		qc += int64(c)
		sqc += qc
		s.qcPref[b] = qc
		s.sqcPref[b] = sqc
	}
	s.halfCross = s.levelCross(1, 2)
	return s, nil
}

// N returns the number of records in the data set the space was built from.
func (s *Space) N() int { return s.n }

// Bins returns the number of distinct values (bins) in the space.
func (s *Space) Bins() int { return s.m }

// Bin returns the bin index of record rec.
func (s *Space) Bin(rec int) int { return s.binOf[rec] }

// Value returns the attribute value of bin b.
func (s *Space) Value(b int) float64 { return s.values[b] }

// DatasetMass returns the data set probability mass of bin b.
func (s *Space) DatasetMass(b int) float64 { return s.q[b] }

// sqcAt returns sqcPref[b] with sqcAt(-1) = 0.
func (s *Space) sqcAt(b int) int64 {
	if b < 0 {
		return 0
	}
	return s.sqcPref[b]
}

// runAbsSum returns Σ_{b∈[p,q)} |nK − sz·qcPref[b]|, the absolute cumulative
// deviation over a run of bins where the cluster prefix count is the
// constant K (nK is passed premultiplied by n). Because qcPref is
// nondecreasing the deviation is nonincreasing over the run and changes sign
// at most once; the crossing is binary-searched and both sides are summed in
// closed form via the second-order prefix sqcPref. O(log(q−p)).
func (s *Space) runAbsSum(p, q int, nK, sz int64) int64 {
	if p >= q {
		return 0
	}
	cross := p + sort.Search(q-p, func(i int) bool {
		return sz*s.qcPref[p+i] > nK
	})
	return s.runAbsSumAt(p, q, nK, sz, cross)
}

// runAbsSumAt is runAbsSum with the global sign crossing for (nK, sz)
// already known: cross must be the first bin b with sz·qcPref[b] > nK (m if
// none), which the caller clamps into the run. O(1).
func (s *Space) runAbsSumAt(p, q int, nK, sz int64, cross int) int64 {
	if cross < p {
		cross = p
	} else if cross > q {
		cross = q
	}
	var total int64
	if cross > p {
		total += nK*int64(cross-p) - sz*(s.sqcAt(cross-1)-s.sqcAt(p-1))
	}
	if cross < q {
		total += sz*(s.sqcAt(q-1)-s.sqcAt(cross-1)) - nK*int64(q-cross)
	}
	return total
}

// levelCross returns the global crossing index for prefix level K at cluster
// size sz: the first bin b with sz·qcPref[b] > n·K, or m when none exists.
func (s *Space) levelCross(K, sz int64) int {
	nK := int64(s.n) * K
	return sort.Search(s.m, func(b int) bool {
		return sz*s.qcPref[b] > nK
	})
}

// Hist is the mutable empirical histogram of a cluster over a Space's bins.
// The zero value is not usable; obtain one from Space.NewHist.
type Hist struct {
	space  *Space
	counts []int
	size   int
	occ    []int // sorted bins with counts > 0
	// absDev caches the integer numerator Σ|dev(b)| of the current EMD
	// (ordered: over b ∈ [0, m−1); nominal: over all bins). It is
	// invalidated by any mutation and rebuilt lazily, so a burst of virtual
	// swap queries against one cluster state shares a single O(occ·log m)
	// evaluation.
	absDev   int64
	absDevOK bool
	// cross caches, for the cluster size crossSize, the global sign-crossing
	// bin of every prefix level K ∈ [0, size]: cross[K] is the first bin b
	// with size·qcPref[b] > n·K. The deviation over a constant-level run is
	// then a pure O(1) closed form (runAbsSumAt) with no binary search —
	// the decisive constant for Algorithm 2's swap refinement, which
	// evaluates millions of same-size swaps against same-size histograms.
	// Rebuilt only when the size changes, so the O(size·log m) build is
	// amortized across every query on that size.
	cross     []int
	crossSize int
}

// histOfAddLimit is the cluster size up to which HistOf maintains the
// occupied-bin list per insertion; larger clusters batch-fill the counts and
// scan the bins once, which is cheaper than O(size) inserts.
const histOfAddLimit = 64

// occFlatFactor decides when the run-decomposition is abandoned for a flat
// O(m) scan: with more than m/occFlatFactor occupied bins the binary
// searches cost more than walking every bin.
const occFlatFactor = 4

// NewHist returns an empty cluster histogram over the space.
func (s *Space) NewHist() *Hist {
	return &Hist{space: s, counts: make([]int, s.m), crossSize: -1}
}

// HistOf returns the histogram of the given record set.
func (s *Space) HistOf(records []int) *Hist {
	h := s.NewHist()
	if len(records) <= histOfAddLimit {
		for _, r := range records {
			h.Add(r)
		}
		return h
	}
	for _, r := range records {
		h.counts[s.binOf[r]]++
	}
	h.size = len(records)
	for b, c := range h.counts {
		if c > 0 {
			h.occ = append(h.occ, b)
		}
	}
	return h
}

// Size returns the number of records currently in the histogram.
func (h *Hist) Size() int { return h.size }

func (h *Hist) addBin(b int) {
	if h.counts[b] == 0 {
		i := sort.SearchInts(h.occ, b)
		h.occ = append(h.occ, 0)
		copy(h.occ[i+1:], h.occ[i:])
		h.occ[i] = b
	}
	h.counts[b]++
}

func (h *Hist) removeBin(b int) {
	if h.counts[b] == 0 {
		panic(fmt.Sprintf("emd: removing record from empty bin %d", b))
	}
	h.counts[b]--
	if h.counts[b] == 0 {
		i := sort.SearchInts(h.occ, b)
		h.occ = append(h.occ[:i], h.occ[i+1:]...)
	}
}

// Add inserts record rec into the histogram.
func (h *Hist) Add(rec int) {
	h.addBin(h.space.binOf[rec])
	h.size++
	h.absDevOK = false
}

// Remove deletes record rec from the histogram. It panics if the record's
// bin is already empty, which indicates a bookkeeping bug in the caller.
func (h *Hist) Remove(rec int) {
	h.removeBin(h.space.binOf[rec])
	h.size--
	h.absDevOK = false
}

// Swap atomically removes record out and adds record in. It is equivalent to
// Remove(out) followed by Add(in) but keeps the cached deviation sum alive
// when both records share a bin.
func (h *Hist) Swap(out, in int) {
	ob, ib := h.space.binOf[out], h.space.binOf[in]
	if ob == ib {
		if h.counts[ob] == 0 {
			panic(fmt.Sprintf("emd: removing record from empty bin %d", ob))
		}
		return
	}
	h.removeBin(ob)
	h.addBin(ib)
	h.absDevOK = false
}

// Merge adds every record counted in other into h. The two histograms must
// share a Space.
func (h *Hist) Merge(other *Hist) {
	if h.space != other.space {
		panic("emd: merging histograms over different spaces")
	}
	merged := make([]int, 0, len(h.occ)+len(other.occ))
	i, j := 0, 0
	for i < len(h.occ) && j < len(other.occ) {
		switch {
		case h.occ[i] < other.occ[j]:
			merged = append(merged, h.occ[i])
			i++
		case h.occ[i] > other.occ[j]:
			merged = append(merged, other.occ[j])
			j++
		default:
			merged = append(merged, h.occ[i])
			i, j = i+1, j+1
		}
	}
	merged = append(merged, h.occ[i:]...)
	merged = append(merged, other.occ[j:]...)
	h.occ = merged
	for _, b := range other.occ {
		h.counts[b] += other.counts[b]
	}
	h.size += other.size
	h.absDevOK = false
}

// Clone returns an independent copy of the histogram.
func (h *Hist) Clone() *Hist {
	return &Hist{
		space:     h.space,
		counts:    append([]int(nil), h.counts...),
		size:      h.size,
		occ:       append([]int(nil), h.occ...),
		absDev:    h.absDev,
		absDevOK:  h.absDevOK,
		cross:     append([]int(nil), h.cross...),
		crossSize: h.crossSize,
	}
}

// ensureCross (re)builds the per-level crossing cache for the current
// cluster size. O(size·log m) on a size change, O(1) afterwards.
func (h *Hist) ensureCross() {
	if h.crossSize == h.size {
		return
	}
	if cap(h.cross) > h.size {
		h.cross = h.cross[:h.size+1]
	} else {
		h.cross = make([]int, h.size+1)
	}
	sz := int64(h.size)
	for K := 0; K <= h.size; K++ {
		h.cross[K] = h.space.levelCross(int64(K), sz)
	}
	h.crossSize = h.size
}

// runAbsSumLvl sums the absolute deviation over the run [p, q) at integer
// prefix level K, using the cached crossing when it is valid for the
// current size (O(1)) and the binary search otherwise (O(log(q−p))).
func (h *Hist) runAbsSumLvl(p, q int, K int64) int64 {
	s := h.space
	nK := int64(s.n) * K
	sz := int64(h.size)
	if h.crossSize == h.size {
		return s.runAbsSumAt(p, q, nK, sz, h.cross[K])
	}
	return s.runAbsSum(p, q, nK, sz)
}

// EMD returns the Earth Mover's Distance (ordered distance) between the
// cluster distribution and the data set distribution. An empty histogram or
// a single-bin space has distance 0. The result is always in [0, 1/2].
//
// Cost: O(occ·log m) for a histogram occupying occ bins (O(m) when occ is a
// large fraction of m); repeated calls on an unchanged histogram are O(1).
func (h *Hist) EMD() float64 {
	s := h.space
	if s.m < 2 || h.size == 0 {
		return 0
	}
	h.ensureAbsDev()
	if s.nominal {
		return float64(h.absDev) / (2 * float64(s.n) * float64(h.size))
	}
	return float64(h.absDev) / (float64(s.n) * float64(h.size) * float64(s.m-1))
}

// ensureAbsDev (re)computes the cached integer deviation numerator.
func (h *Hist) ensureAbsDev() {
	if h.absDevOK {
		return
	}
	s := h.space
	if s.nominal {
		h.absDev = h.tvAbsDev()
	} else if len(h.occ)*occFlatFactor >= s.m {
		h.absDev = h.absDevFlat(-1, -1, int64(h.size))
	} else {
		h.absDev = h.absDevRuns()
	}
	h.absDevOK = true
}

// tvAbsDev returns Σ_b |n·c(b) − s·qc(b)| over all bins in O(occ): bins the
// cluster does not occupy contribute s·qc(b), summing to s·(n − Σ_occ qc).
func (h *Hist) tvAbsDev() int64 {
	s := h.space
	n64, sz := int64(s.n), int64(h.size)
	var total, qcOcc int64
	for _, b := range h.occ {
		total += abs64(n64*int64(h.counts[b]) - sz*int64(s.qCounts[b]))
		qcOcc += int64(s.qCounts[b])
	}
	return total + sz*(n64-qcOcc)
}

// absDevRuns returns Σ_{b∈[0,m−1)} |dev(b)| by decomposing the bin axis into
// runs of constant cluster prefix count. O(occ·log m), O(occ) when the
// crossing cache is valid for the current size.
func (h *Hist) absDevRuns() int64 {
	end := h.space.m - 1
	var total int64
	var K int64
	p := 0
	for _, b := range h.occ {
		if b >= end {
			break
		}
		total += h.runAbsSumLvl(p, b, K)
		K += int64(h.counts[b])
		p = b
	}
	total += h.runAbsSumLvl(p, end, K)
	return total
}

// absDevFlat is the O(m) reference evaluation of the ordered deviation
// numerator Σ_{b∈[0,m−1)} |n·C(b) − sz·QC(b)| with optional virtual removal
// from outBin and addition to inBin (−1 to skip); sz must already account
// for the virtual size change.
func (h *Hist) absDevFlat(outBin, inBin int, sz int64) int64 {
	s := h.space
	n64 := int64(s.n)
	var C, total int64
	for b := 0; b < s.m-1; b++ {
		C += int64(h.counts[b])
		if b >= outBin && outBin >= 0 {
			// prefix counts at and after outBin lose the removed record
			C -= 1
			outBin = -1 // subtract only once; C carries forward
		}
		if b >= inBin && inBin >= 0 {
			C += 1
			inBin = -1
		}
		total += abs64(n64*C - sz*s.qcPref[b])
	}
	return total
}

// EMDSwap returns the EMD the histogram would have after removing record
// out and adding record in, without mutating the histogram. Pass out < 0 to
// only add, in < 0 to only remove.
//
// A same-size swap is evaluated incrementally against the cached deviation
// geometry in O(occΔ·log m), where occΔ is the number of occupied bins
// between the two records' bins — O(1) on nominal spaces.
func (h *Hist) EMDSwap(out, in int) float64 {
	s := h.space
	ob, ib := -1, -1
	if out >= 0 {
		ob = s.binOf[out]
	}
	if in >= 0 {
		ib = s.binOf[in]
	}
	if s.m < 2 {
		return 0
	}
	if ob >= 0 && ib >= 0 {
		if ob == ib || h.size == 0 {
			return h.EMD()
		}
		h.ensureAbsDev()
		if s.nominal {
			return h.tvSwap(ob, ib)
		}
		if !h.usesRunDecomposition() {
			total := h.absDevFlat(ob, ib, int64(h.size))
			return float64(total) / (float64(s.n) * float64(h.size) * float64(s.m-1))
		}
		return h.orderedSwap(ob, ib)
	}
	// One-sided add or remove changes the cluster size, renormalizing every
	// bin: fall back to the flat evaluation.
	size := h.size
	if ob >= 0 {
		size--
	}
	if ib >= 0 {
		size++
	}
	if size <= 0 {
		return 0
	}
	if s.nominal {
		return h.tvVirtualFlat(ob, ib, int64(size))
	}
	total := h.absDevFlat(ob, ib, int64(size))
	return float64(total) / (float64(s.n) * float64(size) * float64(s.m-1))
}

// tvSwap is the O(1) nominal (total variation) same-size swap query.
func (h *Hist) tvSwap(ob, ib int) float64 {
	s := h.space
	return float64(h.tvSwapNum(ob, ib)) / (2 * float64(s.n) * float64(h.size))
}

// tvSwapNum is tvSwap's integer deviation numerator.
func (h *Hist) tvSwapNum(ob, ib int) int64 {
	s := h.space
	n64, sz := int64(s.n), int64(h.size)
	co, ci := int64(h.counts[ob]), int64(h.counts[ib])
	delta := abs64(n64*(co-1)-sz*int64(s.qCounts[ob])) - abs64(n64*co-sz*int64(s.qCounts[ob])) +
		abs64(n64*(ci+1)-sz*int64(s.qCounts[ib])) - abs64(n64*ci-sz*int64(s.qCounts[ib]))
	return h.absDev + delta
}

// tvVirtualFlat is the O(occ) nominal evaluation with a virtual size change.
func (h *Hist) tvVirtualFlat(outBin, inBin int, sz int64) float64 {
	s := h.space
	n64 := int64(s.n)
	var total, qcOcc int64
	seenOut, seenIn := false, false
	for _, b := range h.occ {
		c := int64(h.counts[b])
		if b == outBin {
			c--
			seenOut = true
		}
		if b == inBin {
			c++
			seenIn = true
		}
		total += abs64(n64*c - sz*int64(s.qCounts[b]))
		qcOcc += int64(s.qCounts[b])
	}
	if outBin >= 0 && !seenOut {
		// virtual removal from an unoccupied bin (count goes negative);
		// consistent with the definition, used only by misbehaving callers
		total += abs64(n64*(-1)-sz*int64(s.qCounts[outBin])) - sz*int64(s.qCounts[outBin])
	}
	if inBin >= 0 && !seenIn {
		total += abs64(n64-sz*int64(s.qCounts[inBin])) - sz*int64(s.qCounts[inBin])
	}
	return float64(total+sz*(n64-qcOcc)) / (2 * float64(s.n) * float64(sz))
}

// orderedSwap evaluates the same-size swap on an ordered space by
// recomputing only the runs between the two bins: within [lo, hi) the
// cluster prefix count shifts by ±1 and dev by ±n. With the per-size
// crossing cache warm (the steady state of Algorithm 2's refinement, whose
// histograms stay at size k) every run is an O(1) closed form, so a swap
// query costs O(occΔ) with no binary searches at all.
func (h *Hist) orderedSwap(ob, ib int) float64 {
	s := h.space
	return float64(h.orderedSwapNum(ob, ib)) /
		(float64(s.n) * float64(h.size) * float64(s.m-1))
}

// orderedSwapNum is orderedSwap's integer deviation numerator.
func (h *Hist) orderedSwapNum(ob, ib int) int64 {
	s := h.space
	h.ensureCross()
	lo, hi := ob, ib
	var sigma int64 = -1 // removing below adding: prefixes in between lose one
	if ib < ob {
		lo, hi = ib, ob
		sigma = 1
	}
	end := hi
	if end > s.m-1 {
		end = s.m - 1
	}
	// Cluster prefix count K at bin lo (inclusive).
	i := 0
	var K int64
	for ; i < len(h.occ) && h.occ[i] <= lo; i++ {
		K += int64(h.counts[h.occ[i]])
	}
	var base, swapped int64
	p := lo
	for ; i < len(h.occ) && h.occ[i] < end; i++ {
		b := h.occ[i]
		base += h.runAbsSumLvl(p, b, K)
		swapped += h.runAbsSumLvl(p, b, K+sigma)
		K += int64(h.counts[b])
		p = b
	}
	base += h.runAbsSumLvl(p, end, K)
	swapped += h.runAbsSumLvl(p, end, K+sigma)
	return h.absDev - base + swapped
}

// AbsDev returns the integer deviation numerator of the current EMD: the
// EMD equals AbsDev() divided by a positive constant depending only on the
// space, its kind, and the histogram size. Two same-size histograms over
// the same space therefore compare by EMD exactly as they compare by
// AbsDev — division by the shared constant is monotone, and at the integer
// magnitudes the package admits (n·s·m < 2⁶³, numerators well under 2⁵³)
// distinct numerators always round to distinct quotients.
func (h *Hist) AbsDev() int64 {
	if h.space.m < 2 || h.size == 0 {
		return 0
	}
	h.ensureAbsDev()
	return h.absDev
}

// usesRunDecomposition reports whether ordered same-size swap queries on
// the current histogram state take the run-decomposition path (which
// lazily builds the per-size crossing cache) rather than the flat O(m)
// walk. It is the single source of truth for that branch — shared by the
// query paths and WarmSwapCache so the warmed caches always cover exactly
// the caches a query may build.
func (h *Hist) usesRunDecomposition() bool {
	return len(h.occ)*occFlatFactor < h.space.m
}

// WarmSwapCache forces the lazy caches a swap query may otherwise build on
// first use — the deviation numerator and the per-size crossing table — so
// that subsequent EMDSwap/EMDSwapAbsDev calls against the *unchanged*
// histogram are pure reads. That is the concurrency contract of Algorithm
// 2's parallel eviction scoring: warm once on the owning goroutine, then
// fan out read-only swap evaluations; any mutation (Add/Remove/Swap/Merge)
// ends the read-only phase.
func (h *Hist) WarmSwapCache() {
	if h.space.m < 2 || h.size == 0 {
		return
	}
	h.ensureAbsDev()
	if !h.space.nominal && h.usesRunDecomposition() {
		h.ensureCross()
	}
}

// EMDSwapAbsDev is EMDSwap restricted to true same-size swaps (out and in
// both records), returning the integer deviation numerator of the post-swap
// EMD instead of the quotient. It lets a caller that holds a single space
// run its accept/reject comparisons in pure integer arithmetic — bit-exactly
// equivalent to comparing the EMDSwap floats (see AbsDev) — skipping one
// float division per evaluation in Algorithm 2's innermost loop.
func (h *Hist) EMDSwapAbsDev(out, in int) int64 {
	s := h.space
	if s.m < 2 {
		return 0
	}
	ob, ib := s.binOf[out], s.binOf[in]
	if ob == ib || h.size == 0 {
		return h.AbsDev()
	}
	h.ensureAbsDev()
	if s.nominal {
		return h.tvSwapNum(ob, ib)
	}
	if !h.usesRunDecomposition() {
		return h.absDevFlat(ob, ib, int64(h.size))
	}
	return h.orderedSwapNum(ob, ib)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// TwoRecordAbsDev returns the integer deviation numerator (see AbsDev) of a
// two-record cluster occupying bins a and b on an ordered space, in closed
// form with no loops or searches: the bin axis splits into three runs of
// constant cluster prefix count C ∈ {0, 1, 2}, whose deviations n·C − 2·QC
// are sign-definite except the middle run, which crosses at the precomputed
// half-mass bin. It is the innermost evaluation of Algorithm 2's swap
// refinement at k = 2, where every candidate swap produces a two-record
// histogram; the value is identical to HistOf([2 records]).AbsDev().
func (s *Space) TwoRecordAbsDev(a, b int) int64 {
	lo, hi := a, b
	if b < a {
		lo, hi = b, a
	}
	end := s.m - 1
	if lo > end {
		lo = end
	}
	if hi > end {
		hi = end
	}
	n64 := int64(s.n)
	// Run [0, lo): C = 0, dev = −2·QC ≤ 0.
	total := 2 * s.sqcAt(lo-1)
	// Run [lo, hi): C = 1, dev = n − 2·QC, crossing sign at halfCross.
	c := s.halfCross
	if c < lo {
		c = lo
	} else if c > hi {
		c = hi
	}
	total += n64*int64(c-lo) - 2*(s.sqcAt(c-1)-s.sqcAt(lo-1))
	total += 2*(s.sqcAt(hi-1)-s.sqcAt(c-1)) - n64*int64(hi-c)
	// Run [hi, m−1): C = 2, dev = 2n − 2·QC ≥ 0.
	total += 2*n64*int64(end-hi) - 2*(s.sqcAt(end-1)-s.sqcAt(hi-1))
	return total
}

// EMDOf computes the EMD of an explicit record set against the data set
// distribution; a convenience wrapper around HistOf(records).EMD().
func (s *Space) EMDOf(records []int) float64 {
	return s.HistOf(records).EMD()
}

// Distance computes the closed-form ordered-distance EMD between two
// explicit distributions p and q over the same m ordered bins. Both must sum
// to 1 (the function does not renormalize). It is mainly useful in tests as
// an independent re-derivation of Hist.EMD.
func Distance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, errors.New("emd: distributions have different lengths")
	}
	m := len(p)
	if m < 2 {
		return 0, nil
	}
	var cum, total float64
	for i := 0; i < m; i++ {
		cum += p[i] - q[i]
		if cum >= 0 {
			total += cum
		} else {
			total -= cum
		}
	}
	return total / float64(m-1), nil
}

// Nominal attributes
//
// The paper's conclusions list EMD support for nominal categorical
// attributes (values without a meaningful order, e.g. diagnoses) as future
// work, suggesting a distance that interprets the values' semantics. With
// no semantic model available, the canonical ground distance for nominal
// values is the equal distance (every pair of distinct categories at
// distance 1), under which the EMD has the closed form of the total
// variation distance:
//
//	EMD_nominal(P, Q) = 1/2 * Σ_i |p_i - q_i|
//
// NewNominalSpace builds a Space using that distance; Hist works on it
// unchanged. The result lies in [0, 1); for a cluster that is a subset of
// the data set it is at most 1 - |C|/n.
func NewNominalSpace(values []float64) (*Space, error) {
	s, err := NewSpace(values)
	if err != nil {
		return nil, err
	}
	s.nominal = true
	return s, nil
}

// Nominal reports whether the space uses the nominal (total variation)
// distance instead of the ordered distance.
func (s *Space) Nominal() bool { return s.nominal }

// NominalDistance computes the total variation distance between two
// explicit distributions over the same categories; the independent
// re-derivation of the nominal EMD used by tests.
func NominalDistance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, errors.New("emd: distributions have different lengths")
	}
	total := 0.0
	for i := range p {
		d := p[i] - q[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / 2, nil
}
