// Package emd implements the Earth Mover's Distance with ordered distance,
// the distribution distance that defines t-closeness for numeric (and
// ordinal categorical) attributes in the paper.
//
// For an attribute taking sorted distinct values {v1 < v2 < ... < vm}, the
// ordered distance between bins is ordered_distance(vi, vj) = |i-j|/(m-1),
// and the EMD between distributions P and Q over those values has the closed
// form
//
//	EMD(P,Q) = 1/(m-1) * Σ_{i=1..m} |Σ_{j<=i} (p_j - q_j)|
//
// which is O(m) to evaluate. The package precomputes, per confidential
// attribute, a Space holding the value domain of the entire data set and the
// data set's own distribution Q, so that the distance from any cluster's
// empirical distribution P to Q can be computed and incrementally updated as
// records are added, removed, or swapped (the inner loop of the paper's
// Algorithm 2).
package emd

import (
	"errors"
	"fmt"
	"sort"
)

// Space is the fixed frame of reference for EMD computations on one
// confidential attribute: the sorted distinct value domain of the whole data
// set T, the data set distribution Q over it, and the bin index of every
// record. A Space is immutable after construction and safe for concurrent
// use.
type Space struct {
	n       int       // number of records in T
	m       int       // number of distinct values (bins)
	values  []float64 // sorted distinct values
	q       []float64 // data set probability mass per bin (counts/n)
	binOf   []int     // record index -> bin index
	qCounts []int     // raw counts per bin
	nominal bool      // total-variation (equal ground distance) instead of ordered
}

// ErrEmpty is returned when constructing a Space from no records.
var ErrEmpty = errors.New("emd: no records")

// NewSpace builds a Space from the confidential attribute values of every
// record in the data set, indexed by record position.
func NewSpace(values []float64) (*Space, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	distinct := append([]float64(nil), values...)
	sort.Float64s(distinct)
	uniq := distinct[:0]
	for i, v := range distinct {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	uniq = append([]float64(nil), uniq...)
	s := &Space{
		n:       n,
		m:       len(uniq),
		values:  uniq,
		q:       make([]float64, len(uniq)),
		binOf:   make([]int, n),
		qCounts: make([]int, len(uniq)),
	}
	for i, v := range values {
		b := sort.SearchFloat64s(uniq, v)
		s.binOf[i] = b
		s.qCounts[b]++
	}
	for b, c := range s.qCounts {
		s.q[b] = float64(c) / float64(n)
	}
	return s, nil
}

// N returns the number of records in the data set the space was built from.
func (s *Space) N() int { return s.n }

// Bins returns the number of distinct values (bins) in the space.
func (s *Space) Bins() int { return s.m }

// Bin returns the bin index of record rec.
func (s *Space) Bin(rec int) int { return s.binOf[rec] }

// Value returns the attribute value of bin b.
func (s *Space) Value(b int) float64 { return s.values[b] }

// DatasetMass returns the data set probability mass of bin b.
func (s *Space) DatasetMass(b int) float64 { return s.q[b] }

// Hist is the mutable empirical histogram of a cluster over a Space's bins.
// The zero value is not usable; obtain one from Space.NewHist.
type Hist struct {
	space  *Space
	counts []int
	size   int
}

// NewHist returns an empty cluster histogram over the space.
func (s *Space) NewHist() *Hist {
	return &Hist{space: s, counts: make([]int, s.m)}
}

// HistOf returns the histogram of the given record set.
func (s *Space) HistOf(records []int) *Hist {
	h := s.NewHist()
	for _, r := range records {
		h.Add(r)
	}
	return h
}

// Size returns the number of records currently in the histogram.
func (h *Hist) Size() int { return h.size }

// Add inserts record rec into the histogram.
func (h *Hist) Add(rec int) {
	h.counts[h.space.binOf[rec]]++
	h.size++
}

// Remove deletes record rec from the histogram. It panics if the record's
// bin is already empty, which indicates a bookkeeping bug in the caller.
func (h *Hist) Remove(rec int) {
	b := h.space.binOf[rec]
	if h.counts[b] == 0 {
		panic(fmt.Sprintf("emd: removing record %d from empty bin %d", rec, b))
	}
	h.counts[b]--
	h.size--
}

// Merge adds every record counted in other into h. The two histograms must
// share a Space.
func (h *Hist) Merge(other *Hist) {
	if h.space != other.space {
		panic("emd: merging histograms over different spaces")
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.size += other.size
}

// Clone returns an independent copy of the histogram.
func (h *Hist) Clone() *Hist {
	c := &Hist{space: h.space, counts: append([]int(nil), h.counts...), size: h.size}
	return c
}

// EMD returns the Earth Mover's Distance (ordered distance) between the
// cluster distribution and the data set distribution. An empty histogram or
// a single-bin space has distance 0. The result is always in [0, 1/2].
func (h *Hist) EMD() float64 {
	return h.emdWithSwap(-1, -1)
}

// EMDSwap returns the EMD the histogram would have after removing record
// out and adding record in, without mutating the histogram. Pass out < 0 to
// only add, in < 0 to only remove.
func (h *Hist) EMDSwap(out, in int) float64 {
	ob, ib := -1, -1
	if out >= 0 {
		ob = h.space.binOf[out]
	}
	if in >= 0 {
		ib = h.space.binOf[in]
	}
	return h.emdWithSwap(ob, ib)
}

// emdWithSwap computes EMD with an optional virtual removal from bin outBin
// and addition to bin inBin (each -1 to skip).
func (h *Hist) emdWithSwap(outBin, inBin int) float64 {
	s := h.space
	if s.m < 2 {
		return 0
	}
	size := h.size
	if outBin >= 0 {
		size--
	}
	if inBin >= 0 {
		size++
	}
	if size <= 0 {
		return 0
	}
	inv := 1.0 / float64(size)
	if s.nominal {
		// Total variation: 1/2 * Σ|p - q| over every bin.
		var total float64
		for b := 0; b < s.m; b++ {
			c := h.counts[b]
			if b == outBin {
				c--
			}
			if b == inBin {
				c++
			}
			d := float64(c)*inv - s.q[b]
			if d < 0 {
				d = -d
			}
			total += d
		}
		return total / 2
	}
	var cum, total float64
	// The i=m term of the sum is always zero (both distributions sum to 1),
	// so the loop runs to m-1; keeping it would only accumulate rounding
	// noise.
	for b := 0; b < s.m-1; b++ {
		c := h.counts[b]
		if b == outBin {
			c--
		}
		if b == inBin {
			c++
		}
		cum += float64(c)*inv - s.q[b]
		if cum >= 0 {
			total += cum
		} else {
			total -= cum
		}
	}
	return total / float64(s.m-1)
}

// EMDOf computes the EMD of an explicit record set against the data set
// distribution; a convenience wrapper around HistOf(records).EMD().
func (s *Space) EMDOf(records []int) float64 {
	return s.HistOf(records).EMD()
}

// Distance computes the closed-form ordered-distance EMD between two
// explicit distributions p and q over the same m ordered bins. Both must sum
// to 1 (the function does not renormalize). It is mainly useful in tests as
// an independent re-derivation of Hist.EMD.
func Distance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, errors.New("emd: distributions have different lengths")
	}
	m := len(p)
	if m < 2 {
		return 0, nil
	}
	var cum, total float64
	for i := 0; i < m; i++ {
		cum += p[i] - q[i]
		if cum >= 0 {
			total += cum
		} else {
			total -= cum
		}
	}
	return total / float64(m-1), nil
}

// Nominal attributes
//
// The paper's conclusions list EMD support for nominal categorical
// attributes (values without a meaningful order, e.g. diagnoses) as future
// work, suggesting a distance that interprets the values' semantics. With
// no semantic model available, the canonical ground distance for nominal
// values is the equal distance (every pair of distinct categories at
// distance 1), under which the EMD has the closed form of the total
// variation distance:
//
//	EMD_nominal(P, Q) = 1/2 * Σ_i |p_i - q_i|
//
// NewNominalSpace builds a Space using that distance; Hist works on it
// unchanged. The result lies in [0, 1); for a cluster that is a subset of
// the data set it is at most 1 - |C|/n.
func NewNominalSpace(values []float64) (*Space, error) {
	s, err := NewSpace(values)
	if err != nil {
		return nil, err
	}
	s.nominal = true
	return s, nil
}

// Nominal reports whether the space uses the nominal (total variation)
// distance instead of the ordered distance.
func (s *Space) Nominal() bool { return s.nominal }

// NominalDistance computes the total variation distance between two
// explicit distributions over the same categories; the independent
// re-derivation of the nominal EMD used by tests.
func NominalDistance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, errors.New("emd: distributions have different lengths")
	}
	total := 0.0
	for i := range p {
		d := p[i] - q[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / 2, nil
}
