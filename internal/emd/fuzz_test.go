package emd

import (
	"testing"
)

// Native fuzz targets for the EMD geometry invariants. Inputs are byte
// strings decoded into small integer value domains (heavy bin collisions,
// the regime where the incremental machinery earns its keep); every target
// checks exact equalities, since the package computes on integer prefix
// geometry where incremental and batch results are bit-identical by
// contract. Seed corpora live in testdata/fuzz; CI runs a short -fuzz
// smoke leg on top of the committed seeds.

// fuzzValues decodes bytes into a bounded value slice: each byte becomes a
// value in a small domain so histograms share bins constantly.
func fuzzValues(data []byte, max int) []float64 {
	if len(data) > max {
		data = data[:max]
	}
	vals := make([]float64, 0, len(data))
	for _, b := range data {
		vals = append(vals, float64(b%17))
	}
	return vals
}

// FuzzHistIncremental drives a histogram through an arbitrary Add/Remove/
// Swap walk and pins every step to the batch rebuild: EMD, AbsDev and
// same-size swap queries must equal the from-scratch evaluation exactly.
func FuzzHistIncremental(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0, 1, 2, 3})
	f.Add([]byte{5, 5, 5, 9, 9, 0, 3, 3, 3, 3}, []byte{7, 7, 1, 0, 9, 4})
	f.Add([]byte{200, 14, 14, 3}, []byte{2, 2, 2})
	f.Fuzz(func(t *testing.T, valBytes, ops []byte) {
		vals := fuzzValues(valBytes, 64)
		if len(vals) < 2 {
			return
		}
		s, err := NewSpace(vals)
		if err != nil {
			t.Fatal(err)
		}
		n := len(vals)
		in := make([]bool, n)
		var rows []int
		h := s.NewHist()
		rebuildRows := func() []int {
			out := make([]int, 0, len(rows))
			for r := 0; r < n; r++ {
				if in[r] {
					out = append(out, r)
				}
			}
			return out
		}
		for _, op := range ops {
			rec := int(op) % n
			switch {
			case !in[rec]:
				h.Add(rec)
				in[rec] = true
			case len(rows) >= 0 && in[rec]:
				// Before removing, exercise the virtual swap query against
				// a batch rebuild with the swap applied.
				other := (rec + 1 + int(op)/7) % n
				if !in[other] {
					got := h.EMDSwap(rec, other)
					cur := rebuildRows()
					swapped := make([]int, 0, len(cur))
					for _, r := range cur {
						if r != rec {
							swapped = append(swapped, r)
						}
					}
					swapped = append(swapped, other)
					if want := s.EMDOf(swapped); got != want {
						t.Fatalf("EMDSwap(%d,%d) = %v, batch rebuild = %v", rec, other, got, want)
					}
					gotNum := h.EMDSwapAbsDev(rec, other)
					if want := s.HistOf(swapped).AbsDev(); gotNum != want {
						t.Fatalf("EMDSwapAbsDev(%d,%d) = %d, batch rebuild = %d", rec, other, gotNum, want)
					}
				}
				h.Remove(rec)
				in[rec] = false
			}
			rows = rebuildRows()
			if got, want := h.EMD(), s.EMDOf(rows); got != want {
				t.Fatalf("incremental EMD %v, batch %v (rows %v)", got, want, rows)
			}
			if got, want := h.AbsDev(), s.HistOf(rows).AbsDev(); got != want {
				t.Fatalf("incremental AbsDev %d, batch %d (rows %v)", got, want, rows)
			}
		}
		// Two-record closed form against the general path.
		if n >= 2 {
			a, b := 0, n/2
			got := s.TwoRecordAbsDev(s.Bin(a), s.Bin(b))
			if want := s.HistOf([]int{a, b}).AbsDev(); got != want {
				t.Fatalf("TwoRecordAbsDev = %d, HistOf.AbsDev = %d", got, want)
			}
		}
	})
}

// FuzzDistanceSymmetry pins the closed-form EMD (and its nominal variant)
// to its metric symmetry: Distance(p, q) == Distance(q, p) exactly, since
// negation is exact in IEEE-754.
func FuzzDistanceSymmetry(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{10, 0, 0, 5}, []byte{0, 0, 10, 5})
	f.Fuzz(func(t *testing.T, pb, qb []byte) {
		m := len(pb)
		if len(qb) < m {
			m = len(qb)
		}
		if m < 2 || m > 64 {
			return
		}
		var psum, qsum float64
		p := make([]float64, m)
		q := make([]float64, m)
		for i := 0; i < m; i++ {
			p[i] = float64(pb[i])
			q[i] = float64(qb[i])
			psum += p[i]
			qsum += q[i]
		}
		if psum == 0 || qsum == 0 {
			return
		}
		for i := range p {
			p[i] /= psum
			q[i] /= qsum
		}
		ab, err1 := Distance(p, q)
		ba, err2 := Distance(q, p)
		if (err1 == nil) != (err2 == nil) || ab != ba {
			t.Fatalf("Distance not symmetric: %v/%v vs %v/%v", ab, err1, ba, err2)
		}
		nab, err1 := NominalDistance(p, q)
		nba, err2 := NominalDistance(q, p)
		if (err1 == nil) != (err2 == nil) || nab != nba {
			t.Fatalf("NominalDistance not symmetric: %v/%v vs %v/%v", nab, err1, nba, err2)
		}
	})
}

// FuzzSpaceExtend pins the incremental epoch extension to the cold rebuild:
// Extend over any split of a value stream must equal NewSpace over the
// concatenation — same bins, same record mapping, same EMDs, same
// two-record closed forms.
func FuzzSpaceExtend(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{5, 6})
	f.Add([]byte{9, 9, 9}, []byte{9, 9})
	f.Add([]byte{3, 1, 4}, []byte{1, 5, 9, 2, 6, 200})
	f.Fuzz(func(t *testing.T, baseBytes, tailBytes []byte) {
		base := fuzzValues(baseBytes, 48)
		tail := fuzzValues(tailBytes, 48)
		if len(base) == 0 {
			return
		}
		s1, err := NewSpace(base)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := s1.Extend(tail)
		if err != nil {
			t.Fatal(err)
		}
		all := append(append([]float64(nil), base...), tail...)
		cold, err := NewSpace(all)
		if err != nil {
			t.Fatal(err)
		}
		if ext.N() != cold.N() || ext.Bins() != cold.Bins() {
			t.Fatalf("extend shape (%d,%d) vs rebuild (%d,%d)",
				ext.N(), ext.Bins(), cold.N(), cold.Bins())
		}
		for r := 0; r < cold.N(); r++ {
			if ext.Bin(r) != cold.Bin(r) {
				t.Fatalf("record %d: extend bin %d, rebuild bin %d", r, ext.Bin(r), cold.Bin(r))
			}
		}
		for b := 0; b < cold.Bins(); b++ {
			if ext.Value(b) != cold.Value(b) || ext.DatasetMass(b) != cold.DatasetMass(b) {
				t.Fatalf("bin %d: extend (%v,%v), rebuild (%v,%v)",
					b, ext.Value(b), ext.DatasetMass(b), cold.Value(b), cold.DatasetMass(b))
			}
		}
		// A representative subset EMD and the two-record closed form.
		subset := make([]int, 0, cold.N())
		for r := 0; r < cold.N(); r += 2 {
			subset = append(subset, r)
		}
		if len(subset) > 0 {
			if got, want := ext.EMDOf(subset), cold.EMDOf(subset); got != want {
				t.Fatalf("subset EMD: extend %v, rebuild %v", got, want)
			}
		}
		for a := 0; a < cold.Bins(); a++ {
			if got, want := ext.TwoRecordAbsDev(a, cold.Bins()-1), cold.TwoRecordAbsDev(a, cold.Bins()-1); got != want {
				t.Fatalf("TwoRecordAbsDev(%d,last): extend %d, rebuild %d", a, got, want)
			}
		}
	})
}
