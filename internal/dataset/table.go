package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Table is a columnar microdata set: n records over the attributes of a
// Schema. Numeric values are stored as float64; categorical values are
// stored as integer codes into a per-column dictionary, which keeps all
// distance and aggregation code on a single numeric path while preserving
// the original labels for output.
//
// A Table is not safe for concurrent mutation; concurrent reads are safe.
type Table struct {
	schema *Schema
	cols   [][]float64
	// dicts[i] maps code -> label for categorical column i (nil for numeric).
	dicts [][]string
	// codeOf[i] maps label -> code for categorical column i (nil for numeric).
	codeOf []map[string]int
	rows   int
}

// Common table construction errors.
var (
	ErrRowWidth     = errors.New("dataset: row width does not match schema")
	ErrKindMismatch = errors.New("dataset: value kind does not match attribute kind")
	ErrRowRange     = errors.New("dataset: row index out of range")
	ErrColRange     = errors.New("dataset: column index out of range")
)

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) (*Table, error) {
	if schema == nil || schema.Len() == 0 {
		return nil, ErrEmptySchema
	}
	t := &Table{
		schema: schema,
		cols:   make([][]float64, schema.Len()),
		dicts:  make([][]string, schema.Len()),
		codeOf: make([]map[string]int, schema.Len()),
	}
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Kind == Categorical {
			t.codeOf[i] = make(map[string]int)
		}
	}
	return t, nil
}

// MustTable is like NewTable but panics on error.
func MustTable(schema *Schema) *Table {
	t, err := NewTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of records.
func (t *Table) Len() int { return t.rows }

// Width returns the number of attributes.
func (t *Table) Width() int { return t.schema.Len() }

// Grow reserves column capacity so the table can reach at least rows
// total records without reallocating — the preallocation hint of a
// streaming build that knows the final size up front. It never shrinks
// and never changes Len.
func (t *Table) Grow(rows int) {
	for i, col := range t.cols {
		if cap(col) >= rows {
			continue
		}
		nc := make([]float64, len(col), rows)
		copy(nc, col)
		t.cols[i] = nc
	}
}

// AppendNumericRow appends a record whose values are all numeric. It returns
// an error if the schema contains categorical attributes or the width is
// wrong.
func (t *Table) AppendNumericRow(vals ...float64) error {
	if len(vals) != t.schema.Len() {
		return fmt.Errorf("%w: got %d values, schema has %d attributes",
			ErrRowWidth, len(vals), t.schema.Len())
	}
	for i := range vals {
		if t.schema.Attr(i).Kind != Numeric {
			return fmt.Errorf("%w: attribute %q is categorical",
				ErrKindMismatch, t.schema.Attr(i).Name)
		}
	}
	for i, v := range vals {
		t.cols[i] = append(t.cols[i], v)
	}
	t.rows++
	return nil
}

// AppendRow appends a mixed record. Each value must be a float64 (for
// numeric attributes) or a string (for categorical attributes).
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != t.schema.Len() {
		return fmt.Errorf("%w: got %d values, schema has %d attributes",
			ErrRowWidth, len(vals), t.schema.Len())
	}
	// Validate types first so a failed append leaves the table unchanged.
	for i, v := range vals {
		attr := t.schema.Attr(i)
		switch v.(type) {
		case float64, int:
			if attr.Kind != Numeric {
				return fmt.Errorf("%w: attribute %q wants a string", ErrKindMismatch, attr.Name)
			}
		case string:
			if attr.Kind != Categorical {
				return fmt.Errorf("%w: attribute %q wants a number", ErrKindMismatch, attr.Name)
			}
		default:
			return fmt.Errorf("%w: attribute %q: unsupported value type %T",
				ErrKindMismatch, attr.Name, v)
		}
	}
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			t.cols[i] = append(t.cols[i], x)
		case int:
			t.cols[i] = append(t.cols[i], float64(x))
		case string:
			code, ok := t.codeOf[i][x]
			if !ok {
				code = len(t.dicts[i])
				t.codeOf[i][x] = code
				t.dicts[i] = append(t.dicts[i], x)
			}
			t.cols[i] = append(t.cols[i], float64(code))
		}
	}
	t.rows++
	return nil
}

// AppendColumnChunk bulk-appends a batch of records given in columnar form:
// cols holds one slice per schema attribute, all of equal length, carrying
// raw numeric values (or categorical codes into the column's current
// dictionary). It is the chunked ingest counterpart of AppendRow — a
// storage backend or streaming loader decodes a whole column chunk and
// hands it over in one call instead of transposing to rows — and appends
// all-or-nothing: validation errors leave the table unchanged. Extend
// dictionaries first (ExtendDict) when a chunk introduces new labels.
func (t *Table) AppendColumnChunk(cols [][]float64) error {
	if len(cols) != t.schema.Len() {
		return fmt.Errorf("%w: got %d columns, schema has %d attributes",
			ErrRowWidth, len(cols), t.schema.Len())
	}
	n := len(cols[0])
	for i, col := range cols {
		if len(col) != n {
			return fmt.Errorf("%w: column %q has %d values, column %q has %d",
				ErrRowWidth, t.schema.Attr(i).Name, len(col), t.schema.Attr(0).Name, n)
		}
		if t.schema.Attr(i).Kind != Categorical {
			continue
		}
		for r, v := range col {
			code := int(v)
			if float64(code) != v || code < 0 || code >= len(t.dicts[i]) {
				return fmt.Errorf("%w: attribute %q chunk row %d: categorical code %v outside dictionary of %d",
					ErrKindMismatch, t.schema.Attr(i).Name, r, v, len(t.dicts[i]))
			}
		}
	}
	for i, col := range cols {
		t.cols[i] = append(t.cols[i], col...)
	}
	t.rows += n
	return nil
}

// ExtendDict appends new labels to the dictionary of categorical column
// col, assigning codes in order — the dict-page replay half of a chunked
// load. Labels already present are rejected (a loader replaying dictionary
// deltas must never see one twice), as is extending a numeric column.
func (t *Table) ExtendDict(col int, labels []string) error {
	if col < 0 || col >= t.schema.Len() {
		return fmt.Errorf("%w: %d", ErrColRange, col)
	}
	if t.schema.Attr(col).Kind != Categorical {
		return fmt.Errorf("%w: attribute %q is numeric", ErrKindMismatch, t.schema.Attr(col).Name)
	}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if _, dup := t.codeOf[col][l]; dup || seen[l] {
			return fmt.Errorf("dataset: attribute %q: duplicate dictionary label %q",
				t.schema.Attr(col).Name, l)
		}
		seen[l] = true
	}
	for _, l := range labels {
		t.codeOf[col][l] = len(t.dicts[col])
		t.dicts[col] = append(t.dicts[col], l)
	}
	return nil
}

// DictLen returns the dictionary size of categorical column col (0 for
// numeric columns).
func (t *Table) DictLen(col int) int { return len(t.dicts[col]) }

// Value returns the raw numeric value (or categorical code) at (row, col).
func (t *Table) Value(row, col int) float64 {
	return t.cols[col][row]
}

// SetValue overwrites the raw numeric value (or categorical code) at
// (row, col). It is used by the aggregation step of microaggregation.
func (t *Table) SetValue(row, col int, v float64) {
	t.cols[col][row] = v
}

// Label returns the string form of the value at (row, col): the dictionary
// label for categorical attributes, or the formatted number for numeric
// attributes.
func (t *Table) Label(row, col int) string {
	if t.schema.Attr(col).Kind == Categorical {
		code := int(t.cols[col][row])
		if code >= 0 && code < len(t.dicts[col]) {
			return t.dicts[col][code]
		}
		return fmt.Sprintf("<code %d>", code)
	}
	return formatFloat(t.cols[col][row])
}

// Column returns a copy of column col's raw values.
func (t *Table) Column(col int) []float64 {
	out := make([]float64, t.rows)
	copy(out, t.cols[col][:t.rows])
	return out
}

// ColumnView returns the live backing slice of column col. Callers must not
// modify it; it avoids the copy in hot loops.
func (t *Table) ColumnView(col int) []float64 {
	return t.cols[col][:t.rows]
}

// Dict returns a copy of the dictionary of categorical column col (nil for
// numeric columns).
func (t *Table) Dict(col int) []string {
	if t.dicts[col] == nil {
		return nil
	}
	out := make([]string, len(t.dicts[col]))
	copy(out, t.dicts[col])
	return out
}

// Row returns a copy of the raw values of record row.
func (t *Table) Row(row int) []float64 {
	out := make([]float64, t.schema.Len())
	for c := range t.cols {
		out[c] = t.cols[c][row]
	}
	return out
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		schema: t.schema,
		cols:   make([][]float64, len(t.cols)),
		dicts:  make([][]string, len(t.dicts)),
		codeOf: make([]map[string]int, len(t.codeOf)),
		rows:   t.rows,
	}
	for i := range t.cols {
		c.cols[i] = append([]float64(nil), t.cols[i]...)
		if t.dicts[i] != nil {
			c.dicts[i] = append([]string(nil), t.dicts[i]...)
		}
		if t.codeOf[i] != nil {
			c.codeOf[i] = make(map[string]int, len(t.codeOf[i]))
			for k, v := range t.codeOf[i] {
				c.codeOf[i][k] = v
			}
		}
	}
	return c
}

// Subset returns a new table containing only the given rows, in the given
// order. Dictionaries are shared structurally (copied) so the subset is
// independent.
func (t *Table) Subset(rows []int) (*Table, error) {
	s := t.Clone()
	for i := range s.cols {
		col := make([]float64, 0, len(rows))
		for _, r := range rows {
			if r < 0 || r >= t.rows {
				return nil, fmt.Errorf("%w: %d (table has %d rows)", ErrRowRange, r, t.rows)
			}
			col = append(col, t.cols[i][r])
		}
		s.cols[i] = col
	}
	s.rows = len(rows)
	return s, nil
}

// Validate checks the table for values that would break the anonymization
// pipeline: NaN or infinite numeric values, or categorical codes outside the
// dictionary.
func (t *Table) Validate() error {
	if err := t.schema.Validate(); err != nil {
		return err
	}
	for c := 0; c < t.Width(); c++ {
		attr := t.schema.Attr(c)
		for r := 0; r < t.rows; r++ {
			v := t.cols[c][r]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: attribute %q row %d: non-finite value %v",
					attr.Name, r, v)
			}
			if attr.Kind == Categorical {
				code := int(v)
				if float64(code) != v || code < 0 || code >= len(t.dicts[c]) {
					return fmt.Errorf("dataset: attribute %q row %d: invalid categorical code %v",
						attr.Name, r, v)
				}
			}
		}
	}
	return nil
}

// QIMatrix extracts the quasi-identifier columns as a row-major matrix,
// min-max normalized per column so every dimension contributes comparably to
// Euclidean distances (constant columns normalize to 0). The returned matrix
// has one row per record; callers own it.
func (t *Table) QIMatrix() [][]float64 {
	return t.matrixFor(t.schema.QuasiIdentifiers())
}

// MatrixFor extracts arbitrary columns as a normalized row-major matrix.
func (t *Table) MatrixFor(cols []int) [][]float64 {
	return t.matrixFor(cols)
}

func (t *Table) matrixFor(cols []int) [][]float64 {
	return t.normalizeRows(cols, 0, t.rows, t.normParams(cols))
}

// NormParams is the per-column min-max normalization frame of a matrix
// extraction: the post-scale minimum, the range (0 for constant columns),
// and the overflow-guard scale of each column. Two extractions with equal
// params produce bit-identical normalized rows for shared records, which is
// what lets an epoch append skip renormalizing the existing rows.
type NormParams struct {
	Mins, Ranges, Scales []float64
}

// Equal reports whether o describes the same normalization frame.
func (p NormParams) Equal(o NormParams) bool {
	if len(p.Mins) != len(o.Mins) {
		return false
	}
	for j := range p.Mins {
		if p.Mins[j] != o.Mins[j] || p.Ranges[j] != o.Ranges[j] || p.Scales[j] != o.Scales[j] {
			return false
		}
	}
	return true
}

// QINormParams returns the normalization frame QIMatrix uses.
func (t *Table) QINormParams() NormParams {
	return t.normParams(t.schema.QuasiIdentifiers())
}

func (t *Table) normParams(cols []int) NormParams {
	los := make([]float64, len(cols))
	his := make([]float64, len(cols))
	for j, c := range cols {
		los[j], his[j] = minMax(t.cols[c][:t.rows])
	}
	return NormParamsFromBounds(los, his)
}

// NormParamsFromBounds builds the normalization frame from explicit raw
// per-column bounds. It is the same derivation QINormParams applies to
// the bounds it scans from the table, factored out so a streaming build
// tracking running minima/maxima gets a bit-identical frame without
// holding the whole table.
func NormParamsFromBounds(los, his []float64) NormParams {
	p := NormParams{
		Mins:   make([]float64, len(los)),
		Ranges: make([]float64, len(los)),
		Scales: make([]float64, len(los)),
	}
	for j := range los {
		lo, hi := los[j], his[j]
		// scale halves the values before normalizing when hi-lo would
		// overflow float64 (possible for columns spanning nearly the full
		// float range).
		p.Scales[j] = 1
		if math.IsInf(hi-lo, 0) {
			p.Scales[j] = 0.5
			lo, hi = lo/2, hi/2
		}
		p.Mins[j] = lo
		if hi > lo {
			p.Ranges[j] = hi - lo
		} else {
			p.Ranges[j] = 0
		}
	}
	return p
}

// QIMatrixTail returns the normalized quasi-identifier rows [from, Len())
// under an explicit normalization frame — the epoch-append path, which
// reuses the frame of the prepared matrix when no appended value widened a
// column's range.
func (t *Table) QIMatrixTail(from int, p NormParams) [][]float64 {
	return t.normalizeRows(t.schema.QuasiIdentifiers(), from, t.rows, p)
}

// NormalizeQIInto writes the normalized quasi-identifier rows [lo, hi)
// under frame p into dst, row-major, without allocating: dst must hold at
// least (hi-lo)*len(QuasiIdentifiers()) values. It is the in-place core
// of QIMatrixTail, exposed so a streaming build can renormalize its
// backing array window by window when an appended batch widens a range.
func (t *Table) NormalizeQIInto(dst []float64, lo, hi int, p NormParams) {
	t.normalizeInto(dst, t.schema.QuasiIdentifiers(), lo, hi, p)
}

func (t *Table) normalizeRows(cols []int, lo, hi int, p NormParams) [][]float64 {
	m := make([][]float64, hi-lo)
	flat := make([]float64, (hi-lo)*len(cols))
	t.normalizeInto(flat, cols, lo, hi, p)
	for r := range m {
		m[r] = flat[r*len(cols) : (r+1)*len(cols)]
	}
	return m
}

func (t *Table) normalizeInto(dst []float64, cols []int, lo, hi int, p NormParams) {
	for r := lo; r < hi; r++ {
		row := dst[(r-lo)*len(cols) : (r-lo+1)*len(cols)]
		for j, c := range cols {
			if p.Ranges[j] > 0 {
				row[j] = (t.cols[c][r]*p.Scales[j] - p.Mins[j]) / p.Ranges[j]
			} else {
				row[j] = 0 // dst may be reused across renormalizations
			}
		}
	}
}

// Ranks returns, for the given column, the rank of each record's value among
// the sorted distinct values of that column (0-based), along with the sorted
// distinct values themselves. Ties share a rank. This is the ranking the
// ordered-distance EMD of Section 2.2 is defined over.
func (t *Table) Ranks(col int) (ranks []int, distinct []float64) {
	vals := t.cols[col][:t.rows]
	distinct = Distinct(vals)
	ranks = make([]int, len(vals))
	for i, v := range vals {
		ranks[i] = sort.SearchFloat64s(distinct, v)
	}
	return ranks, distinct
}

// Distinct returns the sorted distinct values of vals.
func Distinct(vals []float64) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return append([]float64(nil), out...)
}

func minMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Redact erases column col in place: numeric values become 0 and
// categorical columns are reset to a single "*" dictionary entry. It is used
// to blank identifier attributes before release.
func (t *Table) Redact(col int) {
	for r := 0; r < t.rows; r++ {
		t.cols[col][r] = 0
	}
	if t.schema.Attr(col).Kind == Categorical {
		t.dicts[col] = []string{"*"}
		t.codeOf[col] = map[string]int{"*": 0}
	}
}
