package dataset

import (
	"math"
	"math/rand"
	"testing"
)

// The Batcher must deliver every value and dictionary label exactly
// once, in order, with batch payloads bounded by the budget (except a
// single oversized chunk, which passes through whole).
func TestBatcherCoalesces(t *testing.T) {
	var gotVals []float64
	var gotDicts []string
	batches := 0
	bat := NewBatcher(2, 64*8*2, func(cols [][]float64, dicts [][]string) error {
		batches++
		if len(cols[0]) > 0 && 8*len(cols[0])*2 > 64*8*2 {
			t.Fatalf("batch of %d rows exceeds budget", len(cols[0]))
		}
		gotVals = append(gotVals, cols[0]...)
		gotVals = append(gotVals, cols[1]...)
		for _, d := range dicts {
			gotDicts = append(gotDicts, d...)
		}
		return nil
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(12)
		cols := [][]float64{make([]float64, n), make([]float64, n)}
		for r := 0; r < n; r++ {
			cols[0][r] = float64(i*100 + r)
			cols[1][r] = float64(-(i*100 + r))
		}
		var dicts [][]string
		if i%7 == 0 {
			dicts = [][]string{nil, {string(rune('a' + i/7))}}
		}
		if err := bat.Add(cols, dicts); err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.Flush(); err != nil {
		t.Fatal(err)
	}
	if batches < 3 {
		t.Fatalf("only %d batches for 40 chunks under a small budget", batches)
	}
	sum := 0.0
	for _, v := range gotVals {
		sum += v
	}
	if sum != 0 {
		t.Fatalf("value sum %v, want 0 (col1 mirrors col0 negated)", sum)
	}
	if len(gotDicts) != 6 {
		t.Fatalf("delivered %d dict labels, want 6", len(gotDicts))
	}
	for i, d := range gotDicts {
		if d != string(rune('a'+i)) {
			t.Fatalf("dict label %d is %q, want %q (order lost)", i, d, string(rune('a'+i)))
		}
	}
}

// An oversized single chunk flushes what is buffered first, then passes
// through as its own batch; a budget of 1 makes every Add its own batch.
func TestBatcherOversizedAndTiny(t *testing.T) {
	batches := 0
	bat := NewBatcher(1, 1, func(cols [][]float64, dicts [][]string) error {
		batches++
		return nil
	})
	for i := 0; i < 5; i++ {
		if err := bat.Add([][]float64{{1, 2, 3}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.Flush(); err != nil {
		t.Fatal(err)
	}
	if batches != 5 {
		t.Fatalf("budget 1: %d batches for 5 chunks, want 5", batches)
	}
	if err := bat.Flush(); err != nil {
		t.Fatal(err)
	}
	if batches != 5 {
		t.Fatal("empty Flush still delivered a batch")
	}
}

// NormParamsFromBounds over running bounds must equal the whole-column
// scan bit for bit, including NaN columns and near-overflow ranges.
func TestNormParamsFromBoundsMatchesScan(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "s", Role: Confidential, Kind: Numeric},
	)
	tbl := MustTable(schema)
	vals := [][]float64{
		{1, -math.MaxFloat64, 0},
		{5, math.MaxFloat64, 0},
		{math.NaN(), 3, 0},
		{2, 8, 0},
	}
	// Running bounds folded batch-by-batch, first value initializing —
	// the exact decomposition a streaming build uses.
	los := []float64{0, 0}
	his := []float64{0, 0}
	for r, row := range vals {
		if err := tbl.AppendNumericRow(row...); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			v := row[j]
			if r == 0 {
				los[j], his[j] = v, v
				continue
			}
			if v < los[j] {
				los[j] = v
			}
			if v > his[j] {
				his[j] = v
			}
		}
	}
	want := tbl.QINormParams()
	got := NormParamsFromBounds(los, his)
	if !got.Equal(want) && !(paramsNaNEqual(got, want)) {
		t.Fatalf("bounds-derived params %+v, scan params %+v", got, want)
	}
	// And the matrix built under the bounds-derived frame is bit-identical.
	a := tbl.QIMatrixTail(0, want)
	b := tbl.QIMatrixTail(0, got)
	for r := range a {
		for j := range a[r] {
			if math.Float64bits(a[r][j]) != math.Float64bits(b[r][j]) {
				t.Fatalf("row %d col %d: %v vs %v", r, j, a[r][j], b[r][j])
			}
		}
	}
}

// paramsNaNEqual treats NaN==NaN (Equal uses != and so reports false for
// frames with NaN members even when bit-identical).
func paramsNaNEqual(a, b NormParams) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	}
	return eq(a.Mins, b.Mins) && eq(a.Ranges, b.Ranges) && eq(a.Scales, b.Scales)
}

// NormalizeQIInto must write exactly what QIMatrixTail computes, and
// must overwrite stale values in a reused destination (zero-range
// columns included).
func TestNormalizeQIInto(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "c", Role: QuasiIdentifier, Kind: Numeric}, // constant → range 0
		Attribute{Name: "s", Role: Confidential, Kind: Numeric},
	)
	tbl := MustTable(schema)
	for r := 0; r < 10; r++ {
		if err := tbl.AppendNumericRow(float64(r*r), 7, float64(r%3)); err != nil {
			t.Fatal(err)
		}
	}
	p := tbl.QINormParams()
	want := tbl.QIMatrixTail(0, p)
	dst := make([]float64, 10*2)
	for i := range dst {
		dst[i] = math.Inf(1) // stale garbage that must be overwritten
	}
	tbl.NormalizeQIInto(dst, 0, 10, p)
	for r := 0; r < 10; r++ {
		for j := 0; j < 2; j++ {
			if math.Float64bits(dst[r*2+j]) != math.Float64bits(want[r][j]) {
				t.Fatalf("row %d col %d: %v, want %v", r, j, dst[r*2+j], want[r][j])
			}
		}
	}
}

// Grow is capacity-only: length, values and appends are unaffected, and
// post-Grow appends up to the reserved size do not reallocate columns.
func TestTableGrow(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "s", Role: Confidential, Kind: Numeric},
	)
	tbl := MustTable(schema)
	if err := tbl.AppendNumericRow(1, 2); err != nil {
		t.Fatal(err)
	}
	tbl.Grow(100)
	if tbl.Len() != 1 {
		t.Fatalf("Grow changed Len to %d", tbl.Len())
	}
	base := &tbl.ColumnView(0)[0]
	for r := 0; r < 99; r++ {
		if err := tbl.AppendNumericRow(float64(r), 0); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len %d, want 100", tbl.Len())
	}
	if base != &tbl.ColumnView(0)[0] {
		t.Fatal("appends within the reserved capacity reallocated the column")
	}
}
