package dataset

import "fmt"

// Batcher coalesces columnar chunks into budget-sized batches before a
// flush callback consumes them. Substrate builders pay O(rows-so-far)
// bookkeeping per batch (extending EMD prefix spaces, recomputing
// normalization bounds), so feeding them a long stream of small chunks —
// exactly what a tight-budget ingest produces — degenerates to
// O(n × chunks); re-batching near the memory budget keeps the build at
// O(n × batches) while the buffered bytes stay bounded by the budget
// (plus one incoming chunk, which is itself budget-bounded at write
// time).
//
// Coalescing dictionary deltas ahead of their values is sound because a
// chunk's codes only ever reference the dictionary as extended up to and
// including that chunk: applying all the deltas of a batch first can only
// widen the valid code range of the earlier chunks, never shrink it.
type Batcher struct {
	width  int
	budget int
	flush  func(cols [][]float64, dictDelta [][]string) error

	cols  [][]float64
	dicts [][]string
	bytes int
}

// NewBatcher returns a Batcher of the given column width that delivers
// batches of roughly budget bytes to flush. A non-positive budget
// flushes every Add immediately. The flush callback receives column
// slices owned by the Batcher's next batch — consume or copy them before
// returning.
func NewBatcher(width, budget int, flush func(cols [][]float64, dictDelta [][]string) error) *Batcher {
	if width <= 0 {
		panic(fmt.Sprintf("dataset: batcher width %d", width))
	}
	return &Batcher{width: width, budget: budget, flush: flush}
}

// Add buffers one chunk, flushing the buffered batch first when adding
// the chunk would exceed the budget. A single chunk larger than the
// whole budget passes through as its own batch.
func (b *Batcher) Add(cols [][]float64, dictDelta [][]string) error {
	if len(cols) != b.width {
		return fmt.Errorf("dataset: batcher got %d columns, want %d", len(cols), b.width)
	}
	size := 0
	rows := 0
	if b.width > 0 {
		rows = len(cols[0])
	}
	size += 8 * rows * b.width
	for _, d := range dictDelta {
		for _, s := range d {
			size += len(s) + 16
		}
	}
	if b.bytes > 0 && b.bytes+size > b.budget {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	if b.cols == nil {
		b.cols = make([][]float64, b.width)
	}
	for c := range cols {
		b.cols[c] = append(b.cols[c], cols[c]...)
	}
	for c, d := range dictDelta {
		if len(d) == 0 {
			continue
		}
		if b.dicts == nil {
			b.dicts = make([][]string, b.width)
		}
		b.dicts[c] = append(b.dicts[c], d...)
	}
	b.bytes += size
	if b.bytes >= b.budget {
		return b.Flush()
	}
	return nil
}

// Flush delivers the buffered batch, if any, and resets the buffer.
func (b *Batcher) Flush() error {
	if b.cols == nil && b.dicts == nil {
		return nil
	}
	cols, dicts := b.cols, b.dicts
	b.cols, b.dicts, b.bytes = nil, nil, 0
	if cols == nil {
		cols = make([][]float64, b.width)
	}
	return b.flush(cols, dicts)
}
