package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func mixedSchema() *Schema {
	return MustSchema(
		Attribute{Name: "age", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "city", Role: QuasiIdentifier, Kind: Categorical},
		Attribute{Name: "salary", Role: Confidential, Kind: Numeric},
	)
}

func TestAppendNumericRow(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: Confidential, Kind: Numeric},
	))
	if err := tbl.AppendNumericRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendNumericRow(3, 4); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 || tbl.Width() != 2 {
		t.Fatalf("dims = %dx%d, want 2x2", tbl.Len(), tbl.Width())
	}
	if got := tbl.Value(1, 0); got != 3 {
		t.Errorf("Value(1,0) = %v, want 3", got)
	}
}

func TestAppendNumericRowErrors(t *testing.T) {
	tbl := MustTable(mixedSchema())
	if err := tbl.AppendNumericRow(1, 2, 3); err == nil {
		t.Error("numeric row into categorical column should fail")
	}
	if err := tbl.AppendNumericRow(1); err == nil {
		t.Error("short row should fail")
	}
	if tbl.Len() != 0 {
		t.Errorf("failed appends must not grow the table, len = %d", tbl.Len())
	}
}

func TestAppendRowMixed(t *testing.T) {
	tbl := MustTable(mixedSchema())
	if err := tbl.AppendRow(34.0, "tarragona", 30000.0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(51, "barcelona", 42000.0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(29.0, "tarragona", 27000.0); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("len = %d, want 3", tbl.Len())
	}
	if got := tbl.Label(0, 1); got != "tarragona" {
		t.Errorf("Label(0,1) = %q", got)
	}
	if got := tbl.Label(1, 1); got != "barcelona" {
		t.Errorf("Label(1,1) = %q", got)
	}
	// Re-used label re-uses the code.
	if tbl.Value(0, 1) != tbl.Value(2, 1) {
		t.Error("identical labels should share a code")
	}
	if d := tbl.Dict(1); len(d) != 2 {
		t.Errorf("dictionary = %v, want 2 entries", d)
	}
	if d := tbl.Dict(0); d != nil {
		t.Errorf("numeric column dictionary should be nil, got %v", d)
	}
}

func TestAppendRowErrors(t *testing.T) {
	tbl := MustTable(mixedSchema())
	if err := tbl.AppendRow("x", "y", 1.0); err == nil {
		t.Error("string into numeric column should fail")
	}
	if err := tbl.AppendRow(1.0, 2.0, 3.0); err == nil {
		t.Error("number into categorical column should fail")
	}
	if err := tbl.AppendRow(1.0, "a", 3.0, 4.0); err == nil {
		t.Error("wide row should fail")
	}
	if err := tbl.AppendRow(1.0, struct{}{}, 3.0); err == nil {
		t.Error("unsupported type should fail")
	}
	if tbl.Len() != 0 {
		t.Errorf("failed appends must not grow the table, len = %d", tbl.Len())
	}
}

func TestLabelNumericFormatting(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: Confidential, Kind: Numeric},
	))
	if err := tbl.AppendNumericRow(42, 3.25); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Label(0, 0); got != "42" {
		t.Errorf("integer label = %q, want 42", got)
	}
	if got := tbl.Label(0, 1); got != "3.25" {
		t.Errorf("float label = %q, want 3.25", got)
	}
}

func TestRowAndColumn(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: Confidential, Kind: Numeric},
	))
	for i := 0; i < 4; i++ {
		if err := tbl.AppendNumericRow(float64(i), float64(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	row := tbl.Row(2)
	if row[0] != 2 || row[1] != 20 {
		t.Errorf("Row(2) = %v", row)
	}
	col := tbl.Column(1)
	if len(col) != 4 || col[3] != 30 {
		t.Errorf("Column(1) = %v", col)
	}
	// Column returns a copy: mutating it must not affect the table.
	col[0] = 999
	if tbl.Value(0, 1) == 999 {
		t.Error("Column must return a copy")
	}
	// ColumnView is live.
	view := tbl.ColumnView(1)
	if &view[0] != &tbl.cols[1][0] {
		t.Error("ColumnView must alias the backing store")
	}
}

func TestCloneIndependence(t *testing.T) {
	tbl := MustTable(mixedSchema())
	if err := tbl.AppendRow(1.0, "a", 2.0); err != nil {
		t.Fatal(err)
	}
	c := tbl.Clone()
	c.SetValue(0, 0, 99)
	if err := c.AppendRow(5.0, "b", 6.0); err != nil {
		t.Fatal(err)
	}
	if tbl.Value(0, 0) != 1 {
		t.Error("clone mutation leaked into original")
	}
	if tbl.Len() != 1 {
		t.Error("clone append leaked into original")
	}
	if len(tbl.Dict(1)) != 1 {
		t.Error("clone dictionary growth leaked into original")
	}
}

func TestSubset(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: Confidential, Kind: Numeric},
	))
	for i := 0; i < 5; i++ {
		if err := tbl.AppendNumericRow(float64(i), float64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.Subset([]int{4, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("subset len = %d", s.Len())
	}
	if s.Value(0, 0) != 4 || s.Value(1, 0) != 0 || s.Value(2, 0) != 2 {
		t.Errorf("subset rows wrong: %v %v %v", s.Value(0, 0), s.Value(1, 0), s.Value(2, 0))
	}
	if _, err := tbl.Subset([]int{7}); err == nil {
		t.Error("out-of-range subset should fail")
	}
	if _, err := tbl.Subset([]int{-1}); err == nil {
		t.Error("negative subset index should fail")
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: Confidential, Kind: Numeric},
	))
	if err := tbl.AppendNumericRow(1, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err == nil {
		t.Error("NaN value should fail validation")
	}
}

func TestValidateRejectsInf(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: Confidential, Kind: Numeric},
	))
	if err := tbl.AppendNumericRow(math.Inf(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err == nil {
		t.Error("infinite value should fail validation")
	}
}

func TestValidateRejectsBadCategoricalCode(t *testing.T) {
	tbl := MustTable(mixedSchema())
	if err := tbl.AppendRow(1.0, "a", 2.0); err != nil {
		t.Fatal(err)
	}
	tbl.SetValue(0, 1, 7) // out of dictionary
	if err := tbl.Validate(); err == nil {
		t.Error("dangling categorical code should fail validation")
	}
}

func TestValidateAcceptsGoodTable(t *testing.T) {
	tbl := MustTable(mixedSchema())
	if err := tbl.AppendRow(1.0, "a", 2.0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func TestQIMatrixNormalization(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "c", Role: Confidential, Kind: Numeric},
	))
	rows := [][]float64{{0, 100, 1}, {5, 200, 2}, {10, 150, 3}}
	for _, r := range rows {
		if err := tbl.AppendNumericRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	m := tbl.QIMatrix()
	if len(m) != 3 || len(m[0]) != 2 {
		t.Fatalf("matrix dims %dx%d", len(m), len(m[0]))
	}
	want := [][]float64{{0, 0}, {0.5, 1}, {1, 0.5}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(m[i][j]-want[i][j]) > 1e-12 {
				t.Errorf("m[%d][%d] = %v, want %v", i, j, m[i][j], want[i][j])
			}
		}
	}
}

func TestQIMatrixConstantColumn(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "c", Role: Confidential, Kind: Numeric},
	))
	for i := 0; i < 3; i++ {
		if err := tbl.AppendNumericRow(7, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := tbl.QIMatrix()
	for i := range m {
		if m[i][0] != 0 {
			t.Errorf("constant column should normalize to 0, got %v", m[i][0])
		}
	}
}

func TestQIMatrixValuesInUnitRange(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		tbl := MustTable(MustSchema(
			Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
			Attribute{Name: "c", Role: Confidential, Kind: Numeric},
		))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			if err := tbl.AppendNumericRow(v, 0); err != nil {
				return false
			}
		}
		for _, row := range tbl.QIMatrix() {
			if row[0] < 0 || row[0] > 1 || math.IsNaN(row[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRanks(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "c", Role: Confidential, Kind: Numeric},
	))
	for _, v := range []float64{5, 1, 5, 3} {
		if err := tbl.AppendNumericRow(0, v); err != nil {
			t.Fatal(err)
		}
	}
	ranks, distinct := tbl.Ranks(1)
	wantDistinct := []float64{1, 3, 5}
	if len(distinct) != 3 {
		t.Fatalf("distinct = %v", distinct)
	}
	for i := range wantDistinct {
		if distinct[i] != wantDistinct[i] {
			t.Errorf("distinct[%d] = %v", i, distinct[i])
		}
	}
	wantRanks := []int{2, 0, 2, 1}
	for i := range wantRanks {
		if ranks[i] != wantRanks[i] {
			t.Errorf("ranks[%d] = %d, want %d", i, ranks[i], wantRanks[i])
		}
	}
}

func TestDistinct(t *testing.T) {
	got := Distinct([]float64{3, 1, 3, 2, 1})
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Distinct[%d] = %v", i, got[i])
		}
	}
	if out := Distinct(nil); len(out) != 0 {
		t.Errorf("Distinct(nil) = %v", out)
	}
}

func TestDistinctProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		d := Distinct(vals)
		// Sorted strictly ascending.
		for i := 1; i < len(d); i++ {
			if d[i-1] >= d[i] {
				return false
			}
		}
		// Every input value present.
		for _, v := range vals {
			found := false
			for _, u := range d {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewTableRejectsNilSchema(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Error("nil schema should be rejected")
	}
}

func TestRedact(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "name", Role: Identifier, Kind: Categorical},
		Attribute{Name: "age", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "salary", Role: Confidential, Kind: Numeric},
	))
	if err := tbl.AppendRow("ana", 30.0, 100.0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow("bo", 40.0, 200.0); err != nil {
		t.Fatal(err)
	}
	tbl.Redact(0)
	for r := 0; r < tbl.Len(); r++ {
		if got := tbl.Label(r, 0); got != "*" {
			t.Errorf("redacted label row %d = %q, want *", r, got)
		}
	}
	if err := tbl.Validate(); err != nil {
		t.Errorf("redacted table invalid: %v", err)
	}
	// Numeric redaction zeroes.
	tbl.Redact(1)
	if tbl.Value(0, 1) != 0 || tbl.Value(1, 1) != 0 {
		t.Error("numeric redaction should zero the column")
	}
}
