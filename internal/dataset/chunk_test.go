package dataset

import (
	"errors"
	"math"
	"testing"
)

func chunkSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Attribute{Name: "age", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "city", Role: QuasiIdentifier, Kind: Categorical},
		Attribute{Name: "disease", Role: Confidential, Kind: Categorical},
	)
}

// A table built from dict pages + column chunks must be bit-identical to
// the same records appended row at a time: values, labels, and — the part
// that matters for future appends — the label→code assignment.
func TestAppendColumnChunkMatchesAppendRow(t *testing.T) {
	rows := [][]any{
		{30.0, "oslo", "flu"},
		{41.0, "bergen", "flu"},
		{30.5, "oslo", "cold"},
		{-2.0, "", "flu"}, // empty label is a legal dictionary entry
	}
	byRow := MustTable(chunkSchema(t))
	for _, r := range rows {
		if err := byRow.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}

	byChunk := MustTable(chunkSchema(t))
	if err := byChunk.ExtendDict(1, []string{"oslo", "bergen", ""}); err != nil {
		t.Fatal(err)
	}
	if err := byChunk.ExtendDict(2, []string{"flu", "cold"}); err != nil {
		t.Fatal(err)
	}
	// Split the records across two chunks to exercise repeated appends.
	chunks := [][][]float64{
		{{30, 41}, {0, 1}, {0, 0}},
		{{30.5, -2}, {0, 2}, {1, 0}},
	}
	for _, ch := range chunks {
		if err := byChunk.AppendColumnChunk(ch); err != nil {
			t.Fatal(err)
		}
	}

	if byChunk.Len() != byRow.Len() {
		t.Fatalf("rows: chunk %d, row-at-a-time %d", byChunk.Len(), byRow.Len())
	}
	for c := 0; c < byRow.Width(); c++ {
		for r := 0; r < byRow.Len(); r++ {
			a, b := byRow.Value(r, c), byChunk.Value(r, c)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("value (%d,%d): row-path %v chunk-path %v", r, c, a, b)
			}
			if byRow.Label(r, c) != byChunk.Label(r, c) {
				t.Fatalf("label (%d,%d): %q vs %q", r, c, byRow.Label(r, c), byChunk.Label(r, c))
			}
		}
	}
	// Appending the same new row to both must assign the same codes.
	for _, tbl := range []*Table{byRow, byChunk} {
		if err := tbl.AppendRow(7.0, "tromso", "cold"); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := byRow.Value(4, 1), byChunk.Value(4, 1); a != b {
		t.Fatalf("new label code diverged: %v vs %v", a, b)
	}
}

func TestAppendColumnChunkAllOrNothing(t *testing.T) {
	tbl := MustTable(chunkSchema(t))
	if err := tbl.ExtendDict(1, []string{"oslo"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ExtendDict(2, []string{"flu"}); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		cols [][]float64
		want error
	}{
		{"width", [][]float64{{1}, {0}}, ErrRowWidth},
		{"ragged", [][]float64{{1, 2}, {0}, {0, 0}}, ErrRowWidth},
		{"code out of range", [][]float64{{1}, {1}, {0}}, ErrKindMismatch},
		{"fractional code", [][]float64{{1}, {0.5}, {0}}, ErrKindMismatch},
		{"negative code", [][]float64{{1}, {-1}, {0}}, ErrKindMismatch},
	}
	for _, tc := range bad {
		if err := tbl.AppendColumnChunk(tc.cols); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if tbl.Len() != 0 {
			t.Fatalf("%s: failed chunk mutated the table (len %d)", tc.name, tbl.Len())
		}
	}
}

func TestExtendDictErrors(t *testing.T) {
	tbl := MustTable(chunkSchema(t))
	if err := tbl.ExtendDict(0, []string{"x"}); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("numeric column: got %v, want ErrKindMismatch", err)
	}
	if err := tbl.ExtendDict(9, []string{"x"}); !errors.Is(err, ErrColRange) {
		t.Errorf("out of range: got %v, want ErrColRange", err)
	}
	if err := tbl.ExtendDict(1, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ExtendDict(1, []string{"c", "a"}); err == nil {
		t.Error("duplicate label accepted")
	}
	if got := tbl.DictLen(1); got != 2 {
		t.Errorf("failed extend mutated the dict: len %d, want 2", got)
	}
}
