package dataset

import (
	"bytes"
	"math"
	"testing"
)

// Native fuzz targets for the parsing surfaces: arbitrary input must never
// panic, and every accepted input must satisfy the package invariants
// (valid schema, canonical round-trip). Seed corpora live in testdata/fuzz;
// CI runs a short -fuzz smoke leg on top of the committed seeds.

// FuzzReadCSV feeds arbitrary bytes to the two-header CSV reader. Accepted
// tables must validate and round-trip through WriteCSV canonically: writing
// the parsed table and re-reading it yields the same schema and the same
// cell bits.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("AGE,ZIP,DIAG\nquasi-identifier:numeric,quasi-identifier:numeric,confidential:categorical\n34,90001,flu\n41,90002,cold\n"))
	f.Add([]byte("X,S\nquasi-identifier,confidential\n1,2\n"))
	f.Add([]byte("A,B\nquasi-identifier:numeric,confidential:numeric\nNaN,+Inf\n-0,1e300\n"))
	f.Add([]byte("bad"))
	f.Add([]byte("A\nconfidential:categorical\n\"quo,ted\"\n"))
	// Regression seed: a lone empty categorical label used to serialize as
	// a blank line and vanish on the round trip.
	f.Add([]byte("0\nConfidentiAl:CAt\n\"\"\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Tables without both a quasi-identifier and a confidential attribute
		// parse but do not Validate; the algorithms re-validate at their own
		// entry points, so acceptance here only requires structural
		// soundness (enforced by NewSchema) and a canonical round-trip.
		var out bytes.Buffer
		if err := tbl.WriteCSV(&out); err != nil {
			t.Fatalf("writing parsed table: %v", err)
		}
		again, err := ReadCSV(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written table: %v\ncsv:\n%s", err, out.String())
		}
		if again.Len() != tbl.Len() || again.Width() != tbl.Width() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				tbl.Len(), tbl.Width(), again.Len(), again.Width())
		}
		for r := 0; r < tbl.Len(); r++ {
			for c := 0; c < tbl.Width(); c++ {
				a, b := tbl.Value(r, c), again.Value(r, c)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("round trip changed cell (%d,%d): %v -> %v", r, c, a, b)
				}
				if tbl.Schema().Attr(c).Kind == Categorical && tbl.Label(r, c) != again.Label(r, c) {
					t.Fatalf("round trip changed label (%d,%d): %q -> %q",
						r, c, tbl.Label(r, c), again.Label(r, c))
				}
			}
		}
	})
}

// FuzzParseRoleKind exercises the schema descriptor vocabulary: parsing
// must never panic, and every accepted value must round-trip through its
// String form.
func FuzzParseRoleKind(f *testing.F) {
	f.Add("quasi-identifier")
	f.Add("confidential:categorical")
	f.Add("identifier")
	f.Add("numeric")
	f.Add(":::")
	f.Fuzz(func(t *testing.T, s string) {
		if role, err := ParseRole(s); err == nil {
			back, err := ParseRole(role.String())
			if err != nil || back != role {
				t.Fatalf("role %q does not round-trip: %v %v", s, back, err)
			}
		}
		if kind, err := ParseKind(s); err == nil {
			back, err := ParseKind(kind.String())
			if err != nil || back != kind {
				t.Fatalf("kind %q does not round-trip: %v %v", s, back, err)
			}
		}
	})
}
