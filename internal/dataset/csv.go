package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV layout
//
// Tables round-trip through a two-header CSV format: the first row holds
// attribute names, the second row holds "role:kind" descriptors (e.g.
// "quasi-identifier:numeric", "confidential:categorical"), and every
// subsequent row is one record. This keeps files self-describing so the
// cmd/tcm tool needs no side-channel schema file.

// WriteCSV encodes the table to w in the two-header CSV format.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	desc := make([]string, t.schema.Len())
	for i := 0; i < t.schema.Len(); i++ {
		a := t.schema.Attr(i)
		desc[i] = a.Role.String() + ":" + a.Kind.String()
	}
	if err := cw.Write(desc); err != nil {
		return fmt.Errorf("dataset: writing schema row: %w", err)
	}
	rec := make([]string, t.schema.Len())
	for r := 0; r < t.rows; r++ {
		for c := 0; c < t.schema.Len(); c++ {
			if t.schema.Attr(c).Kind == Categorical {
				rec[c] = t.Label(r, c)
			} else {
				rec[c] = strconv.FormatFloat(t.cols[c][r], 'g', -1, 64)
			}
		}
		if len(rec) == 1 && rec[0] == "" {
			// A single empty field serializes to a blank line, which CSV
			// readers (including ours) skip as a non-record — silently
			// dropping the row on a round trip. Emit an explicitly quoted
			// empty field instead; the reader decodes it back to "".
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return fmt.Errorf("dataset: writing row %d: %w", r, err)
			}
			continue
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a table from r in the two-header CSV format produced by
// WriteCSV.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	names, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	descs, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading schema row: %w", err)
	}
	if len(descs) != len(names) {
		return nil, fmt.Errorf("dataset: schema row has %d fields, header has %d",
			len(descs), len(names))
	}
	attrs := make([]Attribute, len(names))
	for i, d := range descs {
		role, kind, err := parseDescriptor(d)
		if err != nil {
			return nil, fmt.Errorf("dataset: column %q: %w", names[i], err)
		}
		attrs[i] = Attribute{Name: names[i], Role: role, Kind: kind}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	row := make([]any, len(attrs))
	line := 2
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dataset: reading line %d: %w", line, err)
		}
		if len(rec) != len(attrs) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d",
				line, len(rec), len(attrs))
		}
		for i, field := range rec {
			if attrs[i].Kind == Categorical {
				row[i] = field
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d, column %q: %w",
					line, attrs[i].Name, err)
			}
			row[i] = v
		}
		if err := t.AppendRow(row...); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return t, nil
}

// ParseDescriptor parses one "role:kind" schema-row descriptor of the
// two-header CSV format (kind defaults to numeric when omitted). It is the
// piece of ReadCSV a streaming loader needs to build the schema from the
// two header rows before decoding records chunk by chunk.
func ParseDescriptor(d string) (Role, Kind, error) { return parseDescriptor(d) }

func parseDescriptor(d string) (Role, Kind, error) {
	parts := strings.SplitN(d, ":", 2)
	role, err := ParseRole(parts[0])
	if err != nil {
		return 0, 0, err
	}
	kind := Numeric
	if len(parts) == 2 {
		kind, err = ParseKind(parts[1])
		if err != nil {
			return 0, 0, err
		}
	}
	return role, kind, nil
}
