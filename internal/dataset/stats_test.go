package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(vals); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(vals); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
	// Median must not reorder its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("Pearson with constant input = %v, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		x, y := xs[:n], ys[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
				return true
			}
			// Extreme magnitudes overflow the intermediate products.
			if math.Abs(x[i]) > 1e150 || math.Abs(y[i]) > 1e150 {
				return true
			}
		}
		r, err := Pearson(x, y)
		if err != nil {
			return false
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableStats(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "c", Role: Confidential, Kind: Numeric},
	))
	for _, v := range []float64{1, 3, 3, 5} {
		if err := tbl.AppendNumericRow(v, 2*v); err != nil {
			t.Fatal(err)
		}
	}
	st := tbl.Stats(0)
	if st.Name != "a" || st.Min != 1 || st.Max != 5 || st.Mean != 3 || st.Distinct != 3 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestTableCorrelation(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "c", Role: Confidential, Kind: Numeric},
	))
	for i := 0; i < 10; i++ {
		if err := tbl.AppendNumericRow(float64(i), float64(3*i+1)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := tbl.Correlation(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Correlation = %v, want 1", r)
	}
	qc, err := tbl.QIConfidentialCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qc-1) > 1e-12 {
		t.Errorf("QIConfidentialCorrelation = %v, want 1", qc)
	}
}

func TestQIConfidentialCorrelationRequiresRoles(t *testing.T) {
	tbl := MustTable(MustSchema(
		Attribute{Name: "a", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "b", Role: QuasiIdentifier, Kind: Numeric},
	))
	if _, err := tbl.QIConfidentialCorrelation(); err == nil {
		t.Error("missing confidential attribute should fail")
	}
}
