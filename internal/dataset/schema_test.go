package dataset

import (
	"strings"
	"testing"
)

func TestRoleString(t *testing.T) {
	cases := map[Role]string{
		Identifier:      "identifier",
		QuasiIdentifier: "quasi-identifier",
		Confidential:    "confidential",
		NonConfidential: "non-confidential",
		Role(99):        "Role(99)",
	}
	for role, want := range cases {
		if got := role.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", int(role), got, want)
		}
	}
}

func TestParseRole(t *testing.T) {
	cases := map[string]Role{
		"identifier":       Identifier,
		"ID":               Identifier,
		"quasi-identifier": QuasiIdentifier,
		"qi":               QuasiIdentifier,
		"QuasiIdentifier":  QuasiIdentifier,
		"confidential":     Confidential,
		"sensitive":        Confidential,
		" sa ":             Confidential,
		"non-confidential": NonConfidential,
		"other":            NonConfidential,
	}
	for in, want := range cases {
		got, err := ParseRole(in)
		if err != nil {
			t.Errorf("ParseRole(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseRole(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseRole("bogus"); err == nil {
		t.Error("ParseRole(bogus) should fail")
	}
}

func TestRoleRoundTrip(t *testing.T) {
	for _, r := range []Role{Identifier, QuasiIdentifier, Confidential, NonConfidential} {
		got, err := ParseRole(r.String())
		if err != nil || got != r {
			t.Errorf("round trip of %v: got %v, err %v", r, got, err)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Numeric, Categorical} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip of %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func twoColSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "age", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "salary", Role: Confidential, Kind: Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaRejectsEmpty(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should be rejected")
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(
		Attribute{Name: "x", Role: QuasiIdentifier},
		Attribute{Name: "x", Role: Confidential},
	)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names should be rejected, got %v", err)
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	if _, err := NewSchema(Attribute{Name: ""}); err == nil {
		t.Error("empty attribute name should be rejected")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := twoColSchema(t)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Attr(0).Name != "age" || s.Attr(1).Name != "salary" {
		t.Errorf("Attr order wrong: %v", s.Attrs())
	}
	if i := s.Index("salary"); i != 1 {
		t.Errorf("Index(salary) = %d, want 1", i)
	}
	if i := s.Index("missing"); i != -1 {
		t.Errorf("Index(missing) = %d, want -1", i)
	}
	if got := s.Names(); got[0] != "age" || got[1] != "salary" {
		t.Errorf("Names = %v", got)
	}
}

func TestSchemaIndices(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "ssn", Role: Identifier},
		Attribute{Name: "age", Role: QuasiIdentifier},
		Attribute{Name: "zip", Role: QuasiIdentifier},
		Attribute{Name: "diag", Role: Confidential},
		Attribute{Name: "note", Role: NonConfidential},
	)
	if got := s.QuasiIdentifiers(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("QuasiIdentifiers = %v", got)
	}
	if got := s.Confidentials(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Confidentials = %v", got)
	}
	if got := s.Indices(Identifier); len(got) != 1 || got[0] != 0 {
		t.Errorf("Indices(Identifier) = %v", got)
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := twoColSchema(t).Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	noQI := MustSchema(Attribute{Name: "diag", Role: Confidential})
	if err := noQI.Validate(); err == nil {
		t.Error("schema without QIs should fail validation")
	}
	noConf := MustSchema(Attribute{Name: "age", Role: QuasiIdentifier})
	if err := noConf.Validate(); err == nil {
		t.Error("schema without confidential attributes should fail validation")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := twoColSchema(t)
	b := twoColSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas should be equal")
	}
	c := MustSchema(
		Attribute{Name: "age", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "salary", Role: QuasiIdentifier, Kind: Numeric},
	)
	if a.Equal(c) {
		t.Error("schemas with different roles should differ")
	}
	d := MustSchema(Attribute{Name: "age", Role: QuasiIdentifier, Kind: Numeric})
	if a.Equal(d) {
		t.Error("schemas with different lengths should differ")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on invalid input")
		}
	}()
	MustSchema()
}
