package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func csvFixture(t *testing.T) *Table {
	t.Helper()
	tbl := MustTable(MustSchema(
		Attribute{Name: "age", Role: QuasiIdentifier, Kind: Numeric},
		Attribute{Name: "city", Role: QuasiIdentifier, Kind: Categorical},
		Attribute{Name: "salary", Role: Confidential, Kind: Numeric},
	))
	rows := []struct {
		age    float64
		city   string
		salary float64
	}{
		{34, "tarragona", 30000.5},
		{51, "barcelona", 42000},
		{29, "tarragona", 27000},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.age, r.city, r.salary); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := csvFixture(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema().Equal(tbl.Schema()) {
		t.Fatal("schema did not survive round trip")
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("row count %d != %d", back.Len(), tbl.Len())
	}
	for r := 0; r < tbl.Len(); r++ {
		for c := 0; c < tbl.Width(); c++ {
			if back.Label(r, c) != tbl.Label(r, c) {
				t.Errorf("cell (%d,%d): %q != %q", r, c, back.Label(r, c), tbl.Label(r, c))
			}
		}
	}
}

func TestCSVHeaderContents(t *testing.T) {
	tbl := csvFixture(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if lines[0] != "age,city,salary" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "quasi-identifier:numeric,quasi-identifier:categorical,confidential:numeric" {
		t.Errorf("schema row = %q", lines[1])
	}
}

func TestReadCSVDefaultsToNumeric(t *testing.T) {
	in := "a,b\nqi,confidential\n1,2\n"
	tbl, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().Attr(0).Kind != Numeric {
		t.Error("kind should default to numeric")
	}
	if tbl.Value(0, 1) != 2 {
		t.Errorf("value = %v", tbl.Value(0, 1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":        "",
		"missing schema row": "a,b\n",
		"bad role":           "a,b\nwizard,confidential\n1,2\n",
		"bad kind":           "a,b\nqi:blob,confidential\n1,2\n",
		"non-numeric value":  "a,b\nqi,confidential\n1,oops\n",
		"short data row":     "a,b\nqi,confidential\n1\n",
		"schema/header skew": "a,b\nqi\n1,2\n",
		"duplicate names":    "a,a\nqi,confidential\n1,2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVEmptyTableIsFine(t *testing.T) {
	in := "a,b\nqi,confidential\n"
	tbl, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Errorf("len = %d", tbl.Len())
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	// Random numeric tables must round-trip exactly: float64 values survive
	// the 'g'/-1 formatting, and schema roles/kinds are preserved.
	f := func(vals []float64, qiCount uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		cols := 1 + int(qiCount)%3
		rows := len(vals) / (cols + 1)
		if rows == 0 {
			return true
		}
		attrs := make([]Attribute, 0, cols+1)
		for i := 0; i < cols; i++ {
			attrs = append(attrs, Attribute{
				Name: "q" + string(rune('0'+i)), Role: QuasiIdentifier, Kind: Numeric,
			})
		}
		attrs = append(attrs, Attribute{Name: "c", Role: Confidential, Kind: Numeric})
		tbl := MustTable(MustSchema(attrs...))
		row := make([]float64, cols+1)
		for r := 0; r < rows; r++ {
			for j := range row {
				row[j] = vals[(r*(cols+1)+j)%len(vals)]
			}
			if err := tbl.AppendNumericRow(row...); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if back.Len() != tbl.Len() || !back.Schema().Equal(tbl.Schema()) {
			return false
		}
		for r := 0; r < tbl.Len(); r++ {
			for c := 0; c < tbl.Width(); c++ {
				if back.Value(r, c) != tbl.Value(r, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadCSVNeverPanics(t *testing.T) {
	// Arbitrary byte soup must produce an error or a table, never a panic.
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadCSV panicked on %q: %v", raw, r)
			}
		}()
		_, _ = ReadCSV(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
