package dataset

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by statistics over empty inputs.
var ErrNoData = errors.New("dataset: no data")

// Mean returns the arithmetic mean of vals, or 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Variance returns the population variance of vals.
func Variance(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := Mean(vals)
	acc := 0.0
	for _, v := range vals {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(vals))
}

// StdDev returns the population standard deviation of vals.
func StdDev(vals []float64) float64 { return math.Sqrt(Variance(vals)) }

// Median returns the median of vals (average of the two middle elements for
// even lengths). vals is not modified.
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Pearson returns the Pearson product-moment correlation coefficient between
// x and y. It returns 0 when either side has zero variance and an error when
// lengths differ or are zero.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("dataset: correlation inputs have different lengths")
	}
	if len(x) == 0 {
		return 0, ErrNoData
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ColumnStats summarizes one table column.
type ColumnStats struct {
	Name   string
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// Distinct is the number of distinct values in the column.
	Distinct int
}

// Stats returns summary statistics for column col.
func (t *Table) Stats(col int) ColumnStats {
	vals := t.cols[col][:t.rows]
	lo, hi := minMax(vals)
	return ColumnStats{
		Name:     t.schema.Attr(col).Name,
		Mean:     Mean(vals),
		StdDev:   StdDev(vals),
		Min:      lo,
		Max:      hi,
		Distinct: len(Distinct(vals)),
	}
}

// Correlation returns the Pearson correlation between two columns of the
// table.
func (t *Table) Correlation(colA, colB int) (float64, error) {
	return Pearson(t.cols[colA][:t.rows], t.cols[colB][:t.rows])
}

// QIConfidentialCorrelation returns the mean absolute Pearson correlation
// between every (quasi-identifier, confidential) column pair. The paper uses
// a single figure of this kind to characterize the MCD (0.52), HCD (0.92)
// and Patient Discharge (0.129) data sets.
func (t *Table) QIConfidentialCorrelation() (float64, error) {
	qis := t.schema.QuasiIdentifiers()
	cas := t.schema.Confidentials()
	if len(qis) == 0 || len(cas) == 0 {
		return 0, errors.New("dataset: need at least one QI and one confidential attribute")
	}
	var sum float64
	var n int
	for _, q := range qis {
		for _, c := range cas {
			r, err := t.Correlation(q, c)
			if err != nil {
				return 0, err
			}
			sum += math.Abs(r)
			n++
		}
	}
	return sum / float64(n), nil
}

// MaxQIConfidentialCorrelation returns the largest absolute Pearson
// correlation over all (quasi-identifier, confidential) column pairs — the
// "correlation between both types of attributes" figure the paper quotes for
// its data sets, which in practice is driven by the dominant
// quasi-identifier.
func (t *Table) MaxQIConfidentialCorrelation() (float64, error) {
	qis := t.schema.QuasiIdentifiers()
	cas := t.schema.Confidentials()
	if len(qis) == 0 || len(cas) == 0 {
		return 0, errors.New("dataset: need at least one QI and one confidential attribute")
	}
	best := 0.0
	for _, q := range qis {
		for _, c := range cas {
			r, err := t.Correlation(q, c)
			if err != nil {
				return 0, err
			}
			if math.Abs(r) > best {
				best = math.Abs(r)
			}
		}
	}
	return best, nil
}
