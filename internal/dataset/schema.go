// Package dataset implements the microdata table substrate used by the
// t-closeness microaggregation algorithms.
//
// A microdata set is modeled, as in the paper, as a table T(A1,...,Am) with n
// records, where each attribute is classified by its disclosiveness into one
// of four roles: identifier, quasi-identifier, confidential, or
// non-confidential. The package provides typed columnar storage, CSV
// encoding/decoding, summary statistics (mean, standard deviation, Pearson
// correlation), min-max normalization for distance computations, and ranking
// of confidential attribute values as required by the Earth Mover's Distance.
package dataset

import (
	"errors"
	"fmt"
	"strings"
)

// Role classifies an attribute by its disclosiveness, following the
// classification of Hundepool et al. used in Section 2 of the paper.
type Role int

const (
	// Identifier attributes unambiguously identify a subject (e.g. passport
	// number). They must be removed before release and are never used by the
	// anonymization algorithms.
	Identifier Role = iota
	// QuasiIdentifier attributes do not identify a subject on their own but
	// may do so in combination (e.g. age, zip code). Microaggregation
	// perturbs these.
	QuasiIdentifier
	// Confidential attributes carry the sensitive information whose
	// disclosure t-closeness limits (e.g. salary, diagnosis).
	Confidential
	// NonConfidential attributes are neither identifying nor sensitive and
	// are released unchanged.
	NonConfidential
)

// String returns the lowercase name of the role as used in CSV schema
// headers.
func (r Role) String() string {
	switch r {
	case Identifier:
		return "identifier"
	case QuasiIdentifier:
		return "quasi-identifier"
	case Confidential:
		return "confidential"
	case NonConfidential:
		return "non-confidential"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ParseRole converts a string produced by Role.String (or common shorthand
// like "qi") back into a Role.
func ParseRole(s string) (Role, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "identifier", "id":
		return Identifier, nil
	case "quasi-identifier", "quasi_identifier", "quasiidentifier", "qi":
		return QuasiIdentifier, nil
	case "confidential", "sensitive", "sa":
		return Confidential, nil
	case "non-confidential", "non_confidential", "nonconfidential", "other":
		return NonConfidential, nil
	default:
		return 0, fmt.Errorf("dataset: unknown attribute role %q", s)
	}
}

// Kind is the value domain of an attribute.
type Kind int

const (
	// Numeric attributes hold float64 values; distances are Euclidean and
	// the aggregation operator is the mean.
	Numeric Kind = iota
	// Categorical attributes hold values from a finite dictionary. They are
	// stored as integer codes; ordinal categorical attributes are ranked by
	// their code order and aggregated by the median, as Section 2.3 of the
	// paper suggests.
	Categorical
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a string produced by Kind.String back into a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "numeric", "number", "num":
		return Numeric, nil
	case "categorical", "cat", "string":
		return Categorical, nil
	default:
		return 0, fmt.Errorf("dataset: unknown attribute kind %q", s)
	}
}

// Attribute describes one column of a microdata table.
type Attribute struct {
	// Name is the column header. Names must be unique within a schema.
	Name string
	// Role is the disclosiveness class of the attribute.
	Role Role
	// Kind is the value domain of the attribute.
	Kind Kind
}

// Schema is an immutable ordered list of attributes describing a table
// layout. Construct one with NewSchema; the zero value is an empty schema.
type Schema struct {
	attrs  []Attribute
	byName map[string]int
}

// ErrEmptySchema is returned when a schema with no attributes is used where
// at least one attribute is required.
var ErrEmptySchema = errors.New("dataset: schema has no attributes")

// NewSchema builds a Schema from the given attributes. It returns an error
// if two attributes share a name or any name is empty.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, ErrEmptySchema
	}
	s := &Schema{
		attrs:  make([]Attribute, len(attrs)),
		byName: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the attribute with the given name, or -1 if
// absent.
func (s *Schema) Index(name string) int {
	if s.byName == nil {
		return -1
	}
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Indices returns the positions of all attributes with the given role, in
// schema order.
func (s *Schema) Indices(role Role) []int {
	var out []int
	for i, a := range s.attrs {
		if a.Role == role {
			out = append(out, i)
		}
	}
	return out
}

// QuasiIdentifiers returns the positions of the quasi-identifier attributes.
func (s *Schema) QuasiIdentifiers() []int { return s.Indices(QuasiIdentifier) }

// Confidentials returns the positions of the confidential attributes.
func (s *Schema) Confidentials() []int { return s.Indices(Confidential) }

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Validate checks that the schema is usable for k-anonymous t-close
// anonymization: it must contain at least one quasi-identifier and at least
// one confidential attribute.
func (s *Schema) Validate() error {
	if s.Len() == 0 {
		return ErrEmptySchema
	}
	if len(s.QuasiIdentifiers()) == 0 {
		return errors.New("dataset: schema has no quasi-identifier attributes")
	}
	if len(s.Confidentials()) == 0 {
		return errors.New("dataset: schema has no confidential attributes")
	}
	return nil
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}
