package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/par"
)

// JobState is the lifecycle of an anonymization job.
type JobState string

const (
	// JobQueued: accepted, waiting for a job worker.
	JobQueued JobState = "queued"
	// JobRunning: executing on the dataset's engine.
	JobRunning JobState = "running"
	// JobDone: finished with a release (possibly straight from the cache).
	JobDone JobState = "done"
	// JobFailed: finished with an error (deadline, panic, engine error).
	JobFailed JobState = "failed"
	// JobCanceled: canceled by the client or by shutdown before finishing.
	JobCanceled JobState = "canceled"
)

// Error kinds exposed in job records, so clients can branch on failure
// class without parsing messages.
const (
	errKindDeadline  = "deadline"
	errKindPanic     = "panic"
	errKindTransient = "transient"
	errKindError     = "error"
)

// ErrDeadline is the typed error of a job that exceeded its per-job
// deadline; job records wrap it, so errors.Is works on the stored error.
var ErrDeadline = errors.New("serve: job deadline exceeded")

// PanicError is a run attempt that panicked: the recovered value plus the
// stack of the panicking goroutine. Worker-pool panics arrive as
// *par.Panic with the worker's own stack preserved; panics on the run
// goroutine carry the stack captured at the recovery point.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("serve: job panicked: %v", e.Value) }

// transienter classifies errors whose cause is non-deterministic — worth
// retrying. faultinject's injected transient error implements it, and so
// can any future storage/network error type.
type transienter interface{ Transient() bool }

func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// job is one asynchronous anonymization request and its full record: spec,
// lifecycle, progress, attempts, outcome. All mutable fields are guarded
// by mu; the identity fields are immutable after submit.
type job struct {
	id      uint64
	ds      *datasetEntry
	spec    core.Spec
	algName string
	timeout time.Duration
	noCache bool

	mu         sync.Mutex
	state      JobState
	cancelReq  bool
	cancelRun  context.CancelFunc // non-nil while running
	attempts   int
	taskEvents int // progress ticks of the current attempt (faultinject index)
	progress   core.Progress
	epoch      int // dataset epoch the job ran (or hit the cache) against
	cached     bool
	res        *core.Result
	err        error
	errKind    string
	stack      []byte
	submitted  time.Time
	started    time.Time
	finished   time.Time
}

// noteProgress records the latest progress event and returns the 1-based
// task-event index within the current attempt.
func (j *job) noteProgress(p core.Progress) int {
	j.mu.Lock()
	j.taskEvents++
	n := j.taskEvents
	j.progress = p
	j.mu.Unlock()
	return n
}

// requestCancel cancels the job: a queued job flips straight to canceled
// (the worker will skip it), a running job gets its context canceled and
// finishes through the normal classification path. Finished jobs are
// untouched. Returns the state after the request.
func (j *job) requestCancel(m *metrics) JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobQueued:
		j.cancelReq = true
		j.state = JobCanceled
		j.errKind = errKindError
		j.err = context.Canceled
		j.finished = time.Now()
		m.cancels.Add(1)
	case JobRunning:
		j.cancelReq = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
	}
	return j.state
}

// runJob executes one dequeued job end to end: deadline, attempts with
// backoff on transient failures, panic recovery, classification, cache
// publication.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != JobQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx, cancel := context.WithTimeout(s.rootCtx, j.timeout)
	defer cancel()
	j.mu.Lock()
	j.cancelRun = cancel
	canceled := j.cancelReq // cancel raced the dequeue
	j.mu.Unlock()
	if canceled {
		cancel()
	}

	var res *core.Result
	var err error
	for attempt := 1; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt
		j.taskEvents = 0
		j.mu.Unlock()
		res, err = s.attempt(ctx, j)
		if err == nil || ctx.Err() != nil || !isTransient(err) || attempt > s.cfg.RetryMax {
			break
		}
		s.metrics.transients.Add(1)
		s.metrics.retries.Add(1)
		backoff := s.cfg.RetryBackoff << (attempt - 1)
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		if ctx.Err() != nil {
			err = ctx.Err()
			break
		}
	}
	s.finishJob(j, res, err)
}

// attempt runs the engine once with panic isolation. The dataset's run
// lock serializes runs and appends per dataset, which makes the epoch read
// exact for the cache key; the engine itself stays concurrency-safe — the
// lock is a serving-layer bookkeeping contract, not an engine requirement.
func (s *Server) attempt(ctx context.Context, j *job) (res *core.Result, err error) {
	if err := s.cfg.Fault.BeforeAttempt(); err != nil {
		return nil, err
	}
	defer func() {
		if v := recover(); v != nil {
			s.metrics.panics.Add(1)
			if p, ok := v.(*par.Panic); ok {
				err = &PanicError{Value: p.Value, Stack: p.Stack}
			} else {
				err = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}
	}()
	ds := j.ds
	ds.runMu.Lock()
	defer ds.runMu.Unlock()
	ds.current.Store(j)
	defer ds.current.Store(nil)
	j.mu.Lock()
	j.epoch = ds.eng.Epoch()
	j.mu.Unlock()
	return ds.eng.Run(ctx, j.spec)
}

// finishJob classifies the outcome into the job record and the metrics,
// and publishes successful results to the cache.
func (s *Server) finishJob(j *job, res *core.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelRun = nil
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = JobDone
		j.res = res
		s.metrics.runs.Add(1)
		s.metrics.observe(j.finished.Sub(j.started))
		if res.Warm != nil {
			s.metrics.warmHits.Add(1)
			s.metrics.warmRepairRows.Add(int64(res.Warm.ScopeRows))
			s.metrics.warmRepairClusters.Add(int64(res.Warm.Folded + res.Warm.Split + res.Warm.Repaired))
		} else if j.spec.Warm {
			s.metrics.warmMisses.Add(1)
		}
		if j.spec.Sharded {
			s.metrics.shardedRuns.Add(1)
		}
		if !j.noCache && j.spec.Partitioner == nil {
			s.cache.put(s.cacheKeyOf(j.ds.name, j.epoch, j.spec), res)
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.state = JobFailed
		j.errKind = errKindDeadline
		j.err = fmt.Errorf("%w after %v", ErrDeadline, j.timeout)
		s.metrics.timeouts.Add(1)
		s.metrics.failures.Add(1)
	case errors.Is(err, context.Canceled):
		// Client cancel or shutdown grace expiry; either way the job did
		// not fail on its own.
		j.state = JobCanceled
		j.errKind = errKindError
		j.err = err
		s.metrics.cancels.Add(1)
	default:
		j.state = JobFailed
		j.err = err
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			j.errKind = errKindPanic
			j.stack = pe.Stack
		case isTransient(err):
			j.errKind = errKindTransient
			s.metrics.transients.Add(1)
		default:
			j.errKind = errKindError
		}
		s.metrics.failures.Add(1)
	}
}

// cacheKeyOf derives the result-cache key of a submission. Serial releases
// are worker-independent (the parallel determinism contract), so their keys
// carry workers == 0; sharded releases vary with the engine worker budget,
// so their keys pin the budget the dataset's engine runs under.
func (s *Server) cacheKeyOf(dataset string, epoch int, spec core.Spec) cacheKey {
	key := cacheKey{
		dataset:        dataset,
		epoch:          epoch,
		algorithm:      spec.Algorithm,
		k:              spec.K,
		t:              spec.T,
		skipAssessment: spec.SkipAssessment,
		warm:           spec.Warm,
		sharded:        spec.Sharded,
	}
	if spec.Sharded {
		key.workers = s.engineWorkers()
	}
	return key
}

// engineWorkers is the effective parallel fan-out of every dataset engine:
// the configured cap, or the process-wide default the engine falls back to.
func (s *Server) engineWorkers() int {
	if s.cfg.EngineWorkers > 0 {
		return s.cfg.EngineWorkers
	}
	return runtime.GOMAXPROCS(0)
}
