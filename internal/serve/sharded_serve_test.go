package serve

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCacheKeyShardedNeverAliasesSerial pins the key derivation directly:
// sharded and serial submissions at the same parameter point occupy
// different slots, sharded keys pin the engine worker budget, and serial
// keys stay worker-independent (the parallel determinism contract).
func TestCacheKeyShardedNeverAliasesSerial(t *testing.T) {
	s4 := &Server{cfg: Config{EngineWorkers: 4}}
	s8 := &Server{cfg: Config{EngineWorkers: 8}}
	serial := core.Spec{Algorithm: core.KAnonymityFirst, K: 2, T: 0.15}
	sharded := serial
	sharded.Sharded = true

	if s4.cacheKeyOf("d", 0, serial) == s4.cacheKeyOf("d", 0, sharded) {
		t.Fatal("sharded and serial submissions share a cache key")
	}
	if s4.cacheKeyOf("d", 0, sharded) == s8.cacheKeyOf("d", 0, sharded) {
		t.Fatal("sharded keys under different worker budgets collide")
	}
	if s4.cacheKeyOf("d", 0, serial) != s8.cacheKeyOf("d", 0, serial) {
		t.Fatal("serial keys must be worker-independent")
	}
}

// TestServeShardedJobs drives the sharded mode over HTTP: a sharded job
// runs (counted in /metrics), its release is cached under its own key — a
// serial submission at the same parameter point misses, and each resubmit
// hits its own slot — and sharded requests for unsupported algorithms are
// rejected at admission with 400.
func TestServeShardedJobs(t *testing.T) {
	s, ts := testServer(t, Config{})
	registerSynth(t, ts.URL, "patients", "patients", 500)

	shardedReq := map[string]any{
		"dataset": "patients", "algorithm": "alg2", "k": 2, "t": 0.15,
		"skip_assessment": true, "sharded": true,
	}
	res := submitAndWait(t, ts.URL, shardedReq)
	if res["warm"] != nil {
		t.Fatalf("sharded job reported a warm repair: %v", res["warm"])
	}
	if got := s.metrics.shardedRuns.Load(); got != 1 {
		t.Fatalf("shardedRuns = %d, want 1", got)
	}

	// Same parameter point, serial and cold: must miss the cache (202, a
	// real run), not be served the sharded release.
	serialReq := map[string]any{
		"dataset": "patients", "algorithm": "alg2", "k": 2, "t": 0.15,
		"skip_assessment": true, "cold": true,
	}
	code, doc, _ := submit(t, ts.URL, serialReq)
	if code != http.StatusAccepted {
		t.Fatalf("serial submit after sharded should miss the cache: %d (%v)", code, doc)
	}
	if waitJob(t, ts.URL, jobID(t, doc), 60*time.Second)["state"] != string(JobDone) {
		t.Fatal("serial job did not finish")
	}
	if got := s.metrics.shardedRuns.Load(); got != 1 {
		t.Fatalf("serial run bumped shardedRuns to %d", got)
	}

	// Both releases are now cached under their own keys.
	code, doc, _ = submit(t, ts.URL, shardedReq)
	if code != http.StatusOK || doc["cached"] != true {
		t.Fatalf("sharded resubmit should hit the cache: %d %v", code, doc)
	}
	code, doc, _ = submit(t, ts.URL, serialReq)
	if code != http.StatusOK || doc["cached"] != true {
		t.Fatalf("serial resubmit should hit the cache: %d %v", code, doc)
	}

	// The metrics document exposes the counter.
	code, m, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK || m["sharded_runs"].(float64) != 1 {
		t.Fatalf("metrics sharded_runs: %d %v", code, m["sharded_runs"])
	}

	// Unsupported algorithms are rejected at admission.
	for _, alg := range []string{"alg3", "mondrian", "sabre", "incognito"} {
		code, doc, _ := submit(t, ts.URL, map[string]any{
			"dataset": "patients", "algorithm": alg, "k": 2, "t": 0.15, "sharded": true,
		})
		if code != http.StatusBadRequest {
			t.Fatalf("%s sharded: status %d (%v), want 400", alg, code, doc)
		}
	}
}
