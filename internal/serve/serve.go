// Package serve is the fault-tolerant anonymization service layer over
// core.Engine: dataset registration and epoch ingest, asynchronous
// anonymization jobs (submit / status-with-progress / result / cancel),
// and the ops endpoints (/healthz, /metrics) a long-running deployment
// needs. Robustness is the headline contract:
//
//   - Panic isolation: a panicking job — a defensive panic escaping the
//     clustering core, on the run goroutine or re-raised from a worker
//     pool — fails only that job; its record carries the recovered value
//     and stack, and the process keeps serving.
//   - Deadlines: every job runs under context.WithTimeout; exceeding it
//     fails the job with the typed ErrDeadline promptly.
//   - Backpressure: the job queue is bounded; submissions beyond the bound
//     are shed with 429 and a Retry-After estimate instead of growing the
//     process without bound.
//   - Retry with backoff: attempts failing with a transient
//     (non-deterministic) error are retried with exponential backoff;
//     deterministic failures — panics included — are not.
//   - Graceful shutdown: Shutdown stops admissions, drains queued and
//     in-flight jobs within the caller's grace context, then cancels
//     whatever remains.
//
// Identical submissions are served from a keyed result cache over
// (dataset, epoch, Spec) without re-running the engine. Jobs on the
// paper's three algorithms run warm by default: after an append or delete
// epoch the engine repairs its cached partition locally instead of
// recomputing from scratch (cold=true per job opts out), and /metrics
// reports the warm hit/miss split plus the repair scope. The
// internal/serve/faultinject subpackage can inject panics, slowdowns and
// transient failures so the conformance suite proves each degradation
// path end to end.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve/faultinject"
	"repro/internal/store"
	"repro/internal/synth"
)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// MaxQueue bounds the job queue; submissions beyond it get 429.
	MaxQueue int
	// JobWorkers is the number of jobs executed concurrently.
	JobWorkers int
	// DefaultTimeout is the per-job deadline when a submission names none.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines.
	MaxTimeout time.Duration
	// RetryMax is the number of retries (beyond the first attempt) for
	// transient failures.
	RetryMax int
	// RetryBackoff is the first retry's backoff; it doubles per attempt.
	RetryBackoff time.Duration
	// CacheEntries bounds the result cache (0 disables caching).
	CacheEntries int
	// JobHistory bounds retained finished-job records; the oldest finished
	// jobs are forgotten beyond it.
	JobHistory int
	// MaxDatasets bounds registered datasets.
	MaxDatasets int
	// EngineWorkers caps each dataset engine's parallel fan-out
	// (core.WithWorkers); 0 keeps the engine default.
	EngineWorkers int
	// MaxBodyBytes bounds request bodies (CSV uploads, append batches).
	MaxBodyBytes int64
	// Fault, when non-nil, injects faults into job execution; see package
	// faultinject. Nil in production.
	Fault *faultinject.Hooks
	// Store, when non-nil, makes registered datasets persistent: each
	// registration snapshots the table into the store and every append or
	// delete epoch writes through durably before it becomes visible, so
	// RestoreDatasets on a later boot serves the same datasets at the same
	// epochs with identical table hashes. Nil keeps datasets in memory only.
	Store store.Backend
	// OpenBudget, when positive, makes RestoreDatasets rebuild each stored
	// dataset through the streaming open path (core.OpenStreaming) with
	// this chunk-coalescing byte budget: boot-time peak memory per dataset
	// is bounded by the budget plus the engine substrate, never a second
	// full copy of the raw table. 0 keeps the materializing core.Open.
	OpenBudget int
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	} else if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// datasetEntry is one registered dataset and its prepared engine. runMu
// serializes runs and appends on the dataset so the epoch recorded for the
// cache key is exactly the epoch the run executed against; current routes
// engine progress events to the job running right now.
type datasetEntry struct {
	name    string
	eng     *core.Engine
	created time.Time

	runMu   sync.Mutex
	current atomic.Pointer[job]
}

// Server is the anonymization service. It implements http.Handler; create
// with New, stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics metrics
	cache   *resultCache

	rootCtx    context.Context
	rootCancel context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	datasets map[string]*datasetEntry
	reserved map[string]bool // names mid-registration, held out of reuse
	jobs     map[uint64]*job
	history  []uint64 // finished job ids, oldest first
	nextID   uint64
}

// New builds a Server and starts its job workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		cache:    newResultCache(cfg.CacheEntries),
		queue:    make(chan *job, cfg.MaxQueue),
		datasets: make(map[string]*datasetEntry),
		reserved: make(map[string]bool),
		jobs:     make(map[uint64]*job),
	}
	s.metrics.start = time.Now()
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleRemoveDataset)
	s.mux.HandleFunc("POST /v1/datasets/{name}/rows", s.handleAppend)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}/rows", s.handleDeleteRows)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)

	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: no new submissions are admitted, queued and
// in-flight jobs run to completion within ctx, and when ctx expires first
// the remaining jobs are canceled (finishing in the canceled state) before
// Shutdown returns. It returns ctx.Err() when the grace period expired,
// nil on a clean drain. Safe to call once; later calls just wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.rootCancel() // cancel in-flight job contexts
		<-done
		return ctx.Err()
	}
}

// --- datasets ---

// RegisterDataset registers a table under a name and prepares its engine.
// With a persistent store configured (Config.Store) the table is
// snapshotted into the store first and the engine opened over the stored
// bytes, so the state it serves is exactly what a post-restart
// RestoreDatasets will serve. It is the programmatic form of
// POST /v1/datasets, used by tcserved's preload flag.
func (s *Server) RegisterDataset(name string, t *dataset.Table) error {
	if name == "" {
		return errors.New("serve: dataset name must not be empty")
	}
	// Reserve the name before touching the store: a registration losing the
	// race must fail here, not after writing (and orphaning) a snapshot
	// file for a name that turns out to be taken.
	if err := s.reserveDataset(name); err != nil {
		return err
	}
	ds := &datasetEntry{name: name, created: time.Now()}
	var (
		eng *core.Engine
		err error
	)
	if s.cfg.Store != nil {
		eng, err = core.Create(s.cfg.Store, name, t, s.engineOptions(ds)...)
		if err != nil && !errors.Is(err, store.ErrExists) {
			// The snapshot may have been committed before the engine build
			// failed; best-effort removal keeps the store orphan-free.
			_ = s.cfg.Store.Remove(name)
		}
	} else {
		eng, err = core.NewEngine(t, s.engineOptions(ds)...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.reserved, name)
	if err != nil {
		return err
	}
	ds.eng = eng
	s.datasets[name] = ds
	return nil
}

// reserveDataset holds a name for an in-flight registration, enforcing
// the availability and capacity checks up front.
func (s *Server) reserveDataset(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errors.New("serve: server is draining")
	}
	if _, ok := s.datasets[name]; ok {
		return fmt.Errorf("serve: dataset %q already registered", name)
	}
	if s.reserved[name] {
		return fmt.Errorf("serve: dataset %q already registered", name)
	}
	if len(s.datasets)+len(s.reserved) >= s.cfg.MaxDatasets {
		return fmt.Errorf("serve: dataset limit (%d) reached", s.cfg.MaxDatasets)
	}
	s.reserved[name] = true
	return nil
}

// RestoreDatasets opens every dataset committed in Config.Store and
// registers it under its stored name — the boot-time counterpart of
// write-through registration. Each restored engine carries the epoch
// counter, replayable epoch log, and bit-identical table of the engine
// that wrote the store, so releases match across the restart. It returns
// the restored names in lexical order; with no store configured it
// restores nothing. With Config.OpenBudget set, each engine is rebuilt
// through the streaming open path instead of materializing the table
// twice.
//
// A data directory holding files the store cannot account for does not
// abort the boot: every intact dataset is still restored, and the names
// come back alongside a *store.StrayFilesError (match with errors.As)
// describing what was skipped, so the operator learns about the strays
// without losing service.
func (s *Server) RestoreDatasets() ([]string, error) {
	if s.cfg.Store == nil {
		return nil, nil
	}
	names, listErr := s.cfg.Store.List()
	var strays *store.StrayFilesError
	if listErr != nil && !errors.As(listErr, &strays) {
		return nil, listErr
	}
	for _, name := range names {
		if err := s.reserveDataset(name); err != nil {
			return nil, err
		}
		ds := &datasetEntry{name: name, created: time.Now()}
		var (
			eng *core.Engine
			err error
		)
		if s.cfg.OpenBudget > 0 {
			eng, err = core.OpenStreaming(s.cfg.Store, name, s.cfg.OpenBudget, s.engineOptions(ds)...)
		} else {
			eng, err = core.Open(s.cfg.Store, name, s.engineOptions(ds)...)
		}
		s.mu.Lock()
		delete(s.reserved, name)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("serve: restoring dataset %q: %w", name, err)
		}
		ds.eng = eng
		s.datasets[name] = ds
		s.mu.Unlock()
	}
	return names, listErr
}

// engineOptions wires the per-dataset engine: the worker cap and the
// progress hook that routes events to the running job and gives the fault
// layer its task index.
func (s *Server) engineOptions(ds *datasetEntry) []core.Option {
	opts := []core.Option{core.WithProgress(func(p core.Progress) {
		j := ds.current.Load()
		if j == nil {
			return
		}
		n := j.noteProgress(p)
		s.cfg.Fault.OnTask(n)
	})}
	if s.cfg.EngineWorkers > 0 {
		opts = append(opts, core.WithWorkers(s.cfg.EngineWorkers))
	}
	return opts
}

func (s *Server) dataset(name string) *datasetEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasets[name]
}

// SynthTable resolves the built-in synthetic dataset names ("census-mcd",
// "census-hcd", "patients"), so a server can be exercised without
// uploading data; n <= 0 selects each generator's default size. It backs
// both the ?synth registration parameter and tcserved's -preload flag.
func SynthTable(kind string, n int) (*dataset.Table, error) {
	switch kind {
	case "census-mcd":
		if n <= 0 {
			return synth.CensusMCD(), nil
		}
		return synth.Census(n, synth.FedTax, synth.DefaultSeed), nil
	case "census-hcd":
		if n <= 0 {
			return synth.CensusHCD(), nil
		}
		return synth.Census(n, synth.Fica, synth.DefaultSeed), nil
	case "patients":
		if n <= 0 {
			n = 1000
		}
		return synth.PatientDischarge(n, synth.DefaultSeed), nil
	default:
		return nil, fmt.Errorf("serve: unknown synthetic dataset %q", kind)
	}
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	var tbl *dataset.Table
	if kind := r.URL.Query().Get("synth"); kind != "" {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 1 {
				httpError(w, http.StatusBadRequest, "bad n parameter")
				return
			}
			n = v
		}
		t, err := SynthTable(kind, n)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if name == "" {
			name = kind
		}
		tbl = t
	} else {
		if name == "" {
			httpError(w, http.StatusBadRequest, "name query parameter required for CSV registration")
			return
		}
		t, err := dataset.ReadCSV(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parsing CSV: "+err.Error())
			return
		}
		tbl = t
	}
	if err := s.RegisterDataset(name, tbl); err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "limit") {
			code = http.StatusTooManyRequests
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": name, "rows": tbl.Len(), "epoch": 0,
	})
}

// handleListDatasets returns one summary document per dataset, sorted by
// name: row count, epoch, a compact "name:role:kind" schema summary, and
// the table hash a client can compare across restarts to confirm a
// -data-dir restore served back the exact bytes.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := make([]*datasetEntry, 0, len(s.datasets))
	for _, ds := range s.datasets {
		entries = append(entries, ds)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	docs := make([]map[string]any, len(entries))
	for i, ds := range entries {
		tbl := ds.eng.Table()
		sch := tbl.Schema()
		summary := make([]string, sch.Len())
		for c := 0; c < sch.Len(); c++ {
			a := sch.Attr(c)
			summary[c] = a.Name + ":" + a.Role.String() + ":" + a.Kind.String()
		}
		docs[i] = map[string]any{
			"name":       ds.name,
			"rows":       tbl.Len(),
			"epoch":      ds.eng.Epoch(),
			"schema":     summary,
			"table_hash": store.TableHash(tbl),
			"created":    ds.created.UTC().Format(time.RFC3339),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": docs})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	ds := s.dataset(r.PathValue("name"))
	if ds == nil {
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	sch := ds.eng.Table().Schema()
	attrs := make([]map[string]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		a := sch.Attr(i)
		attrs[i] = map[string]string{"name": a.Name, "role": a.Role.String(), "kind": a.Kind.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":       ds.name,
		"rows":       ds.eng.Len(),
		"epoch":      ds.eng.Epoch(),
		"attributes": attrs,
		"table_hash": store.TableHash(ds.eng.Table()),
		"created":    ds.created.UTC().Format(time.RFC3339),
	})
}

// handleRemoveDataset unregisters a dataset and deletes its persistent
// state: the engine entry goes away, its cached results are evicted, and
// the backing store file (when a store is configured) is removed. A
// dataset with queued or running jobs is busy — 409, retry after they
// finish; finished jobs keep their results and history. 404 on unknown
// names.
func (s *Server) handleRemoveDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	ds, ok := s.datasets[name]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	for _, j := range s.jobs {
		if j.ds != ds {
			continue
		}
		j.mu.Lock()
		busy := j.state == JobQueued || j.state == JobRunning
		j.mu.Unlock()
		if busy {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, "dataset has jobs in flight")
			return
		}
	}
	delete(s.datasets, name)
	s.mu.Unlock()
	s.cache.evictDataset(name)
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Remove(name); err != nil && !errors.Is(err, store.ErrUnknownDataset) {
			// The entry is already unregistered; surface the orphaned file.
			httpError(w, http.StatusInternalServerError, "removing stored dataset: "+err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "removed": true})
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	ds := s.dataset(r.PathValue("name"))
	if ds == nil {
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	var req struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing body: "+err.Error())
		return
	}
	if len(req.Rows) == 0 {
		httpError(w, http.StatusBadRequest, "no rows")
		return
	}
	// Serialize with runs so a run's recorded epoch stays exact.
	ds.runMu.Lock()
	err := ds.eng.Append(req.Rows...)
	ds.runMu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": ds.name, "rows": ds.eng.Len(), "epoch": ds.eng.Epoch(),
	})
}

// handleDeleteRows removes records by current row id, advancing the dataset
// one tombstone epoch. Like Append it is serialized with runs under runMu so
// the epoch a job records is exactly the epoch it executed against; warm
// seeds cached for earlier epochs are remapped through the tombstones on the
// next warm job rather than discarded.
func (s *Server) handleDeleteRows(w http.ResponseWriter, r *http.Request) {
	ds := s.dataset(r.PathValue("name"))
	if ds == nil {
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	var req struct {
		Rows []int `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing body: "+err.Error())
		return
	}
	if len(req.Rows) == 0 {
		httpError(w, http.StatusBadRequest, "no rows")
		return
	}
	ds.runMu.Lock()
	err := ds.eng.Delete(req.Rows...)
	ds.runMu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": ds.name, "rows": ds.eng.Len(), "epoch": ds.eng.Epoch(),
	})
}

// --- jobs ---

type submitRequest struct {
	Dataset        string  `json:"dataset"`
	Algorithm      string  `json:"algorithm"`
	K              int     `json:"k"`
	T              float64 `json:"t"`
	TimeoutMillis  int64   `json:"timeout_ms"`
	SkipAssessment bool    `json:"skip_assessment"`
	NoCache        bool    `json:"no_cache"`
	// Cold opts this job out of warm-start re-anonymization. By default the
	// paper's three algorithms run with core.Spec.Warm set, so a re-run after
	// an append/delete epoch is repaired from the previous partition instead
	// of recomputed from scratch; cold=true forces a from-scratch run that
	// neither reads nor seeds the engine's warm cache. Baselines always run
	// cold regardless.
	Cold bool `json:"cold"`
	// Sharded requests sharded partition construction (core.Spec.Sharded):
	// clusters are built concurrently from disjoint k-d shards and
	// reconciled at the boundaries. k and t hold exactly, but the partition
	// varies with the engine worker budget, so sharded releases are cached
	// under their own (sharded, workers) key and never alias serial ones.
	// Sharded jobs always run cold (the warm seed cache stores
	// worker-independent serial partitions only). Only alg1/merge and
	// alg2/kanon-first support it; other algorithms are rejected with 400.
	Sharded bool `json:"sharded"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing body: "+err.Error())
		return
	}
	ds := s.dataset(req.Dataset)
	if ds == nil {
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	alg, err := core.ParseAlgorithm(req.Algorithm)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec := core.Spec{Algorithm: alg, K: req.K, T: req.T, SkipAssessment: req.SkipAssessment, Sharded: req.Sharded}
	// Warm by default for the paper's algorithms; cold=true is the escape
	// hatch. Baselines never set Warm, keeping their cache keys stable, and
	// neither do sharded jobs — they run cold by design, and leaving Warm off
	// keeps one cache key per sharded parameter point.
	switch alg {
	case core.Merge, core.KAnonymityFirst, core.TClosenessFirst:
		spec.Warm = !req.Cold && !req.Sharded
	}
	if err := core.ValidateSpec(spec); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	j := &job{
		ds:        ds,
		spec:      spec,
		algName:   alg.String(),
		timeout:   timeout,
		noCache:   req.NoCache,
		state:     JobQueued,
		submitted: time.Now(),
		epoch:     ds.eng.Epoch(),
	}

	// Cache fast path: an identical (dataset epoch, Spec) release is served
	// without touching the queue or the engine.
	if !req.NoCache {
		if res, ok := s.cache.get(s.cacheKeyOf(ds.name, ds.eng.Epoch(), spec)); ok {
			s.metrics.cacheHits.Add(1)
			j.state = JobDone
			j.cached = true
			j.res = res
			j.started = j.submitted
			j.finished = j.submitted
			s.registerJob(j)
			writeJSON(w, http.StatusOK, s.statusDoc(j))
			return
		}
		s.metrics.cacheMiss.Add(1)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Re-verify under the lock: the entry resolved before the cache check
	// could have been removed (DELETE /v1/datasets/{name}) since, and a job
	// must never enqueue against an unregistered engine.
	if s.datasets[req.Dataset] != ds {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	select {
	case s.queue <- j:
		s.registerJobLocked(j)
		s.mu.Unlock()
		w.Header().Set("Location", fmt.Sprintf("/v1/jobs/%d", j.id))
		writeJSON(w, http.StatusAccepted, s.statusDoc(j))
	default:
		s.mu.Unlock()
		s.metrics.shed.Add(1)
		secs, estimate := s.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": "job queue full",
			// The header is clamped to 60s (proxies and generic clients treat
			// large values poorly); the body carries the real backlog estimate
			// so clients running long jobs can back off realistically.
			"retry_after_seconds": estimate,
		})
	}
}

// retryAfter estimates when queue capacity should free up: the p50 run
// latency times the queue backlog per worker. The first value is for the
// Retry-After header, clamped to [1, 60]; the second is the unclamped
// estimate in seconds (at least 1 — with no completed runs yet, p50 is
// unknown and both fall back to 1).
func (s *Server) retryAfter() (headerSecs int, estimateSecs float64) {
	p50, _ := s.metrics.quantiles()
	if p50 <= 0 {
		return 1, 1
	}
	backlogPerWorker := float64(len(s.queue))/float64(s.cfg.JobWorkers) + 1
	estimateSecs = p50.Seconds() * backlogPerWorker
	if estimateSecs < 1 {
		estimateSecs = 1
	}
	secs := int(math.Ceil(estimateSecs))
	if secs > 60 {
		secs = 60
	}
	return secs, estimateSecs
}

func (s *Server) registerJob(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registerJobLocked(j)
}

func (s *Server) registerJobLocked(j *job) {
	s.nextID++
	j.id = s.nextID
	s.jobs[j.id] = j
	s.pruneHistoryLocked()
}

// pruneHistoryLocked forgets the oldest finished jobs beyond JobHistory so
// a long-running server's job map stays bounded. Queued and running jobs
// are never pruned.
func (s *Server) pruneHistoryLocked() {
	if len(s.jobs) <= s.cfg.JobHistory {
		return
	}
	for id, j := range s.jobs {
		if len(s.jobs) <= s.cfg.JobHistory {
			break
		}
		j.mu.Lock()
		finished := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
		j.mu.Unlock()
		if finished {
			delete(s.jobs, id)
		}
	}
}

func (s *Server) job(idStr string) *job {
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, s.statusDoc(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	state := j.requestCancel(&s.metrics)
	writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "state": state})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	j.mu.Lock()
	state := j.state
	res := j.res
	j.mu.Unlock()
	if state != JobDone {
		writeJSON(w, http.StatusConflict, s.statusDoc(j))
		return
	}
	var csv strings.Builder
	if err := res.Anonymized.WriteCSV(&csv); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding release: "+err.Error())
		return
	}
	doc := map[string]any{
		"id":          j.id,
		"dataset":     j.ds.name,
		"epoch":       j.epoch,
		"algorithm":   j.algName,
		"k":           j.spec.K,
		"t":           j.spec.T,
		"cached":      j.cached,
		"rows":        res.Anonymized.Len(),
		"clusters":    len(res.Clusters),
		"max_emd":     res.MaxEMD,
		"sse":         res.SSE,
		"effective_k": res.EffectiveK,
		"merges":      res.Merges,
		"swaps":       res.Swaps,
		"elapsed_ms":  float64(res.Elapsed) / float64(time.Millisecond),
		"sizes": map[string]any{
			"min": res.Sizes.Min, "max": res.Sizes.Max,
			"avg": res.Sizes.Avg, "num": res.Sizes.Num,
		},
		"release_csv": csv.String(),
	}
	if res.Warm != nil {
		doc["warm"] = map[string]any{
			"seed_epoch":    res.Warm.SeedEpoch,
			"seed_clusters": res.Warm.SeedClusters,
			"assigned":      res.Warm.Assigned,
			"folded":        res.Warm.Folded,
			"split":         res.Warm.Split,
			"repaired":      res.Warm.Repaired,
			"scope_rows":    res.Warm.ScopeRows,
		}
	}
	if res.Privacy != nil {
		doc["privacy"] = map[string]any{
			"classes":     res.Privacy.Classes,
			"k_anonymity": res.Privacy.KAnonymity,
			"t_closeness": res.Privacy.TCloseness,
			"l_diversity": res.Privacy.LDiversity,
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// statusDoc renders a job's record, including — for failed jobs — the
// error kind and, for panics, the recovered stack.
func (s *Server) statusDoc(j *job) map[string]any {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := map[string]any{
		"id":         j.id,
		"dataset":    j.ds.name,
		"epoch":      j.epoch,
		"algorithm":  j.algName,
		"k":          j.spec.K,
		"t":          j.spec.T,
		"state":      j.state,
		"cached":     j.cached,
		"attempts":   j.attempts,
		"timeout_ms": j.timeout.Milliseconds(),
		"submitted":  j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if j.state == JobRunning || (j.state == JobDone && !j.cached) ||
		j.state == JobFailed {
		doc["progress"] = map[string]any{
			"phase": j.progress.Phase,
			"done":  j.progress.Done,
			"total": j.progress.Total,
		}
	}
	if j.err != nil {
		doc["error"] = j.err.Error()
		doc["error_kind"] = j.errKind
		if len(j.stack) > 0 {
			doc["stack"] = string(j.stack)
		}
	}
	if !j.finished.IsZero() {
		doc["finished"] = j.finished.UTC().Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			doc["run_ms"] = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	return doc
}

// --- ops ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
