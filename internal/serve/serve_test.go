package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/serve/faultinject"
)

// testServer spins up a Server inside an httptest listener. The returned
// cleanup drains it.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// doJSON issues a request with an optional JSON body and decodes the JSON
// response into a generic document.
func doJSON(t *testing.T, method, url string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, doc, resp.Header
}

// registerSynth registers a built-in synthetic dataset over HTTP.
func registerSynth(t *testing.T, base, kind, name string, n int) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/datasets?synth=%s&name=%s", base, kind, name)
	if n > 0 {
		url += fmt.Sprintf("&n=%d", n)
	}
	code, doc, _ := doJSON(t, http.MethodPost, url, nil)
	if code != http.StatusCreated {
		t.Fatalf("register %s: status %d (%v)", kind, code, doc)
	}
}

// submit posts a job and returns (status code, doc).
func submit(t *testing.T, base string, req map[string]any) (int, map[string]any, http.Header) {
	t.Helper()
	return doJSON(t, http.MethodPost, base+"/v1/jobs", req)
}

// waitJob polls a job until it leaves the queued/running states.
func waitJob(t *testing.T, base string, id float64, within time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		code, doc, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%.0f", base, id), nil)
		if code != http.StatusOK {
			t.Fatalf("job status: %d (%v)", code, doc)
		}
		switch doc["state"] {
		case string(JobDone), string(JobFailed), string(JobCanceled):
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %v still %v after %v", id, doc["state"], within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func jobID(t *testing.T, doc map[string]any) float64 {
	t.Helper()
	id, ok := doc["id"].(float64)
	if !ok {
		t.Fatalf("no job id in %v", doc)
	}
	return id
}

// TestServiceLifecycle drives the happy path end to end over HTTP:
// register, submit, poll with progress, fetch the release, verify it
// parses as the documented CSV format, check ops endpoints.
func TestServiceLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	registerSynth(t, ts.URL, "census-mcd", "census", 240)

	code, doc, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/census", nil)
	if code != http.StatusOK || doc["rows"].(float64) != 240 {
		t.Fatalf("dataset info: %d %v", code, doc)
	}

	code, doc, _ = submit(t, ts.URL, map[string]any{
		"dataset": "census", "algorithm": "alg3", "k": 5, "t": 0.15,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, doc)
	}
	final := waitJob(t, ts.URL, jobID(t, doc), 30*time.Second)
	if final["state"] != string(JobDone) {
		t.Fatalf("job finished %v: %v", final["state"], final["error"])
	}

	code, res, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%.0f/result", ts.URL, jobID(t, doc)), nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d (%v)", code, res)
	}
	release, err := dataset.ReadCSV(strings.NewReader(res["release_csv"].(string)))
	if err != nil {
		t.Fatalf("release CSV does not parse: %v", err)
	}
	if release.Len() != 240 {
		t.Fatalf("release has %d rows, want 240", release.Len())
	}
	if res["privacy"] == nil {
		t.Fatal("result carries no privacy report")
	}
	if kAnon := res["privacy"].(map[string]any)["k_anonymity"].(float64); kAnon < 5 {
		t.Fatalf("release k-anonymity %v < 5", kAnon)
	}

	code, hz, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, hz)
	}
	code, m, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK || m["runs"].(float64) != 1 {
		t.Fatalf("metrics: %d %v", code, m)
	}
}

// TestResultCache pins the acceptance criterion: an identical (dataset
// epoch, Spec) submission is served from the cache without re-running the
// engine, and an Append (epoch bump) naturally invalidates it.
func TestResultCache(t *testing.T) {
	s, ts := testServer(t, Config{})
	registerSynth(t, ts.URL, "census-mcd", "census", 200)

	req := map[string]any{"dataset": "census", "algorithm": "alg3", "k": 4, "t": 0.2}
	code, doc, _ := submit(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	waitJob(t, ts.URL, jobID(t, doc), 30*time.Second)
	runsAfterFirst := s.metrics.runs.Load()
	if runsAfterFirst != 1 {
		t.Fatalf("first job: runs = %d, want 1", runsAfterFirst)
	}

	// Identical submission: answered synchronously, already done, cached.
	code, doc2, _ := submit(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("cached submit: status %d, want 200", code)
	}
	if doc2["state"] != string(JobDone) || doc2["cached"] != true {
		t.Fatalf("cached submit doc: %v", doc2)
	}
	if s.metrics.runs.Load() != runsAfterFirst {
		t.Fatal("cache hit re-ran the engine")
	}
	if s.metrics.cacheHits.Load() != 1 {
		t.Fatalf("cacheHits = %d, want 1", s.metrics.cacheHits.Load())
	}
	// The cached job's result endpoint serves the same release.
	code, res, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%.0f/result", ts.URL, jobID(t, doc2)), nil)
	if code != http.StatusOK || res["cached"] != true {
		t.Fatalf("cached result: %d %v", code, res)
	}

	// A different parameter point is a miss.
	code, doc3, _ := submit(t, ts.URL, map[string]any{"dataset": "census", "algorithm": "alg3", "k": 5, "t": 0.2})
	if code != http.StatusAccepted {
		t.Fatalf("different spec should queue, got %d", code)
	}
	waitJob(t, ts.URL, jobID(t, doc3), 30*time.Second)

	// Append rows: epoch bump invalidates the (epoch-keyed) entry.
	code, _, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/census/rows", map[string]any{
		"rows": [][]any{{40000.0, 9000.0, 2500.0}},
	})
	if code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}
	code, doc4, _ := submit(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("post-append submit should miss the cache, got %d", code)
	}
	final := waitJob(t, ts.URL, jobID(t, doc4), 30*time.Second)
	if final["epoch"].(float64) != 1 {
		t.Fatalf("post-append job ran against epoch %v, want 1", final["epoch"])
	}
}

// TestSubmitValidation: malformed submissions are rejected at admission
// with 4xx instead of becoming failed jobs.
func TestSubmitValidation(t *testing.T) {
	s, ts := testServer(t, Config{})
	registerSynth(t, ts.URL, "census-mcd", "census", 120)

	cases := []struct {
		req  map[string]any
		code int
	}{
		{map[string]any{"dataset": "nope", "algorithm": "alg3", "k": 3, "t": 0.2}, http.StatusNotFound},
		{map[string]any{"dataset": "census", "algorithm": "bogus", "k": 3, "t": 0.2}, http.StatusBadRequest},
		{map[string]any{"dataset": "census", "algorithm": "alg3", "k": 0, "t": 0.2}, http.StatusBadRequest},
		{map[string]any{"dataset": "census", "algorithm": "alg2", "k": 3, "t": 1.5}, http.StatusBadRequest},
		{map[string]any{"dataset": "census", "algorithm": "sabre", "k": 3, "t": 0}, http.StatusBadRequest},
	}
	for i, tc := range cases {
		code, doc, _ := submit(t, ts.URL, tc.req)
		if code != tc.code {
			t.Errorf("case %d: status %d (%v), want %d", i, code, doc, tc.code)
		}
	}
	if s.metrics.failures.Load() != 0 {
		t.Fatal("invalid submissions became failed jobs")
	}

	// Dataset registration edge cases.
	code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets?synth=census-mcd&name=census", nil)
	if code != http.StatusConflict {
		t.Fatalf("duplicate dataset: %d, want 409", code)
	}
	code, _, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets?synth=unknown-kind", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown synth: %d, want 400", code)
	}
	code, _, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/99999", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
}

// TestRegisterCSVAndAppendErrors registers a dataset by CSV upload and
// pins the append rejection paths surfacing as 400s.
func TestRegisterCSVAndAppendErrors(t *testing.T) {
	_, ts := testServer(t, Config{})

	// The upload body is simply the dataset package's self-describing CSV
	// format; round-trip a table through WriteCSV to produce it.
	var buf bytes.Buffer
	tbl := mustCatTable(t, 30)
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets?name=clinic", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("CSV register: %d", resp.StatusCode)
	}

	// Arity mismatch → 400, epoch unchanged.
	code, doc, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": [][]any{{21.0, 1000.0}},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("short row append: %d (%v)", code, doc)
	}
	// Kind mismatch → 400.
	code, _, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": [][]any{{21.0, 1000.0, 7.0}},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("kind mismatch append: %d", code)
	}
	code, info, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusOK || info["epoch"].(float64) != 0 {
		t.Fatalf("failed appends advanced the epoch: %v", info)
	}
	// A valid append with a brand-new label succeeds.
	code, doc, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": [][]any{{61.0, 1399.0, "shingles"}},
	})
	if code != http.StatusOK || doc["epoch"].(float64) != 1 {
		t.Fatalf("new-label append: %d %v", code, doc)
	}
}

// TestBackpressureSheds pins the queue bound: with one worker pinned by a
// slow job and the queue full, further submissions get 429 + Retry-After.
func TestBackpressureSheds(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.SlowTask(20 * time.Millisecond)
	s, ts := testServer(t, Config{MaxQueue: 1, JobWorkers: 1, Fault: fault})
	registerSynth(t, ts.URL, "patients", "patients", 400)

	req := func(k int) map[string]any {
		return map[string]any{"dataset": "patients", "algorithm": "alg3", "k": k, "t": 0.1, "skip_assessment": true, "no_cache": true}
	}
	// First job occupies the worker (slow tasks); second fills the queue.
	code, first, _ := submit(t, ts.URL, req(2))
	if code != http.StatusAccepted {
		t.Fatalf("job1: %d", code)
	}
	var queuedID float64
	deadline := time.Now().Add(10 * time.Second)
	shed := false
	var retryAfter string
	for time.Now().Before(deadline) {
		code, doc, hdr := submit(t, ts.URL, req(3))
		switch code {
		case http.StatusAccepted:
			queuedID = jobID(t, doc)
		case http.StatusTooManyRequests:
			shed = true
			retryAfter = hdr.Get("Retry-After")
		default:
			t.Fatalf("submit: unexpected status %d (%v)", code, doc)
		}
		if shed {
			break
		}
	}
	if !shed {
		t.Fatal("queue never shed load")
	}
	if retryAfter == "" {
		t.Fatal("429 without Retry-After header")
	}
	if s.metrics.shed.Load() < 1 {
		t.Fatal("shed counter not incremented")
	}

	// Un-jam the pipeline and let everything finish: the shed was load
	// management, not a failure.
	fault.SlowTask(0)
	waitJob(t, ts.URL, jobID(t, first), 60*time.Second)
	if queuedID != 0 {
		waitJob(t, ts.URL, queuedID, 60*time.Second)
	}
	code, hz, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz after shed: %d %v", code, hz)
	}
}

// TestCancelQueuedAndRunning: canceling a queued job flips it immediately;
// canceling a running job interrupts the engine promptly.
func TestCancelQueuedAndRunning(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.SlowTask(20 * time.Millisecond)
	_, ts := testServer(t, Config{MaxQueue: 4, JobWorkers: 1, Fault: fault})
	registerSynth(t, ts.URL, "patients", "patients", 400)

	req := map[string]any{"dataset": "patients", "algorithm": "alg2", "k": 2, "t": 0.05, "skip_assessment": true, "no_cache": true}
	_, running, _ := submit(t, ts.URL, req)
	_, queued, _ := submit(t, ts.URL, req)

	// The second job is queued behind the slow first: cancel it.
	code, doc, _ := doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%.0f", ts.URL, jobID(t, queued)), nil)
	if code != http.StatusOK || doc["state"] != string(JobCanceled) {
		t.Fatalf("cancel queued: %d %v", code, doc)
	}

	// Cancel the running one; it must settle quickly despite slow tasks.
	start := time.Now()
	doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%.0f", ts.URL, jobID(t, running)), nil)
	final := waitJob(t, ts.URL, jobID(t, running), 30*time.Second)
	if final["state"] != string(JobCanceled) {
		t.Fatalf("cancel running: state %v", final["state"])
	}
	if time.Since(start) > 15*time.Second {
		t.Fatal("running cancel was not prompt")
	}
	fault.SlowTask(0)
}

// mustCatTable builds the categorical-confidential fixture used by the CSV
// registration test.
func mustCatTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	schema, err := dataset.NewSchema(
		dataset.Attribute{Name: "AGE", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "ZIP", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "DISEASE", Role: dataset.Confidential, Kind: dataset.Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := dataset.NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"flu", "asthma", "ulcer", "cold"}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(float64(20+i%37), float64(1000+7*i%400), labels[i%len(labels)]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}
