// Package faultinject is the hook layer the serving conformance suite uses
// to prove degradation paths end to end: it can make a run panic at its
// nth task, stretch every task by a fixed delay (to trip deadlines), and
// fail the next n run attempts with a transient error (to exercise
// retry-with-backoff). Production builds run with a nil *Hooks, whose
// methods are all no-ops; nothing in this package is reachable unless a
// server (or tcserved via TCSERVED_FAULT) is explicitly configured with
// hooks. Every later scale layer — out-of-core storage, cross-cluster
// sharding — is expected to be tested against the same three primitives.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrTransient is the injected transient failure. It implements the
// serving layer's transient classification (Transient() bool), so injected
// failures are retried exactly like real transient ones.
var ErrTransient = &transientError{}

type transientError struct{}

func (*transientError) Error() string   { return "faultinject: injected transient failure" }
func (*transientError) Transient() bool { return true }

// Hooks injects faults into job execution. The zero value injects nothing;
// a nil *Hooks is valid and injects nothing. All fields are read through
// atomics, so tests may re-arm a live server's hooks between requests.
type Hooks struct {
	// panicAtTask > 0 panics on the nth task event (1-based) of every run
	// attempt. Task events are the engine's coarse progress ticks, so the
	// panic lands mid-partition on the run's goroutine — the exact shape of
	// a defensive panic escaping the clustering core.
	panicAtTask atomic.Int64
	// taskDelay stretches every task event, as nanoseconds.
	taskDelay atomic.Int64
	// transientRuns counts down: while positive, each BeforeAttempt consumes
	// one and fails with ErrTransient.
	transientRuns atomic.Int64

	// Injected counts the faults actually delivered, by kind.
	Panics     atomic.Int64
	Delays     atomic.Int64
	Transients atomic.Int64
}

// PanicAtTask arms (n > 0) or disarms (n <= 0) the panic-at-nth-task
// fault for every subsequent run attempt.
func (h *Hooks) PanicAtTask(n int) { h.panicAtTask.Store(int64(n)) }

// SlowTask stretches every task event by d (0 disarms).
func (h *Hooks) SlowTask(d time.Duration) { h.taskDelay.Store(int64(d)) }

// FailNextRuns makes the next n run attempts fail with ErrTransient
// before any engine work.
func (h *Hooks) FailNextRuns(n int) { h.transientRuns.Store(int64(n)) }

// BeforeAttempt is called by the job runner at the start of each run
// attempt; a non-nil return aborts the attempt with that error.
func (h *Hooks) BeforeAttempt() error {
	if h == nil {
		return nil
	}
	for {
		n := h.transientRuns.Load()
		if n <= 0 {
			return nil
		}
		if h.transientRuns.CompareAndSwap(n, n-1) {
			h.Transients.Add(1)
			return ErrTransient
		}
	}
}

// OnTask is called with the 1-based task-event index of the current run
// attempt. It may sleep (slow-task) and may panic (panic-at-nth-task); the
// panic unwinds the run goroutine through the engine, which is exactly the
// path the panic-isolation contract must survive.
func (h *Hooks) OnTask(n int) {
	if h == nil {
		return
	}
	if d := time.Duration(h.taskDelay.Load()); d > 0 {
		h.Delays.Add(1)
		time.Sleep(d)
	}
	if at := h.panicAtTask.Load(); at > 0 && int64(n) == at {
		h.Panics.Add(1)
		panic(fmt.Sprintf("faultinject: injected panic at task %d", n))
	}
}

// Parse builds Hooks from a comma-separated spec like
//
//	panic-at=3,slow-task=50ms,transient=2
//
// — the form tcserved accepts via -fault / TCSERVED_FAULT. An empty spec
// returns nil (no injection).
func Parse(spec string) (*Hooks, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	h := &Hooks{}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: malformed clause %q", part)
		}
		switch key {
		case "panic-at":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: panic-at: %w", err)
			}
			h.PanicAtTask(n)
		case "slow-task":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: slow-task: %w", err)
			}
			h.SlowTask(d)
		case "transient":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: transient: %w", err)
			}
			h.FailNextRuns(n)
		default:
			return nil, errors.New("faultinject: unknown clause key " + strconv.Quote(key))
		}
	}
	return h, nil
}
