package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/faultinject"
)

// TestPanicIsolation is the headline robustness criterion: a job that
// panics mid-partition fails with the recovered stack in its record, the
// process keeps serving (/healthz stays 200), and a subsequent identical
// job succeeds once the fault is disarmed.
func TestPanicIsolation(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.PanicAtTask(3) // detonate on the third progress tick: mid-partition
	s, ts := testServer(t, Config{Fault: fault})
	registerSynth(t, ts.URL, "census-mcd", "census", 240)

	req := map[string]any{"dataset": "census", "algorithm": "alg3", "k": 4, "t": 0.2}
	code, doc, _ := submit(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitJob(t, ts.URL, jobID(t, doc), 30*time.Second)
	if final["state"] != string(JobFailed) {
		t.Fatalf("panicking job state = %v, want failed", final["state"])
	}
	if final["error_kind"] != errKindPanic {
		t.Fatalf("error_kind = %v, want panic", final["error_kind"])
	}
	errMsg, _ := final["error"].(string)
	if !strings.Contains(errMsg, "injected panic") {
		t.Fatalf("error %q does not carry the panic value", errMsg)
	}
	stack, _ := final["stack"].(string)
	if stack == "" {
		t.Fatal("failed job record carries no recovered stack")
	}
	// The stack must reach the panic site — through the engine, not just
	// the recovery shim.
	if !strings.Contains(stack, "faultinject") {
		t.Fatalf("stack does not show the panic site:\n%s", stack)
	}
	if fault.Panics.Load() != 1 {
		t.Fatalf("injected panics = %d, want 1", fault.Panics.Load())
	}
	if s.metrics.panics.Load() != 1 {
		t.Fatal("panic metric not incremented")
	}

	// The process keeps serving.
	code, hz, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz after panic: %d %v", code, hz)
	}

	// A failed run must not have been cached; the identical job now
	// succeeds end to end.
	fault.PanicAtTask(0)
	code, doc2, _ := submit(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d (cached=%v — failed result leaked into cache?)", code, doc2["cached"])
	}
	final2 := waitJob(t, ts.URL, jobID(t, doc2), 30*time.Second)
	if final2["state"] != string(JobDone) {
		t.Fatalf("identical job after panic: %v (%v)", final2["state"], final2["error"])
	}
}

// TestDeadlineExceeded: a job over its per-job deadline fails promptly
// with the typed deadline kind, and the stored error wraps ErrDeadline.
func TestDeadlineExceeded(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.SlowTask(25 * time.Millisecond)
	s, ts := testServer(t, Config{Fault: fault})
	registerSynth(t, ts.URL, "patients", "patients", 600)

	start := time.Now()
	code, doc, _ := submit(t, ts.URL, map[string]any{
		"dataset": "patients", "algorithm": "alg2", "k": 2, "t": 0.05,
		"timeout_ms": 120, "skip_assessment": true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitJob(t, ts.URL, jobID(t, doc), 30*time.Second)
	if final["state"] != string(JobFailed) || final["error_kind"] != errKindDeadline {
		t.Fatalf("deadline job: state=%v kind=%v err=%v", final["state"], final["error_kind"], final["error"])
	}
	// "Promptly": well under the test's own generous bound — the engine
	// checks ctx between rounds, and slow tasks are 25ms each.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline took %v to surface", elapsed)
	}
	if !strings.Contains(final["error"].(string), ErrDeadline.Error()) {
		t.Fatalf("stored error %q does not wrap ErrDeadline", final["error"])
	}
	if s.metrics.timeouts.Load() != 1 {
		t.Fatal("timeout metric not incremented")
	}
	fault.SlowTask(0)
}

// TestTransientRetrySucceeds: attempts failing with a transient error are
// retried with backoff and the job ultimately succeeds; a persistent
// transient fault exhausts the retry budget and fails with the transient
// kind.
func TestTransientRetrySucceeds(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.FailNextRuns(2)
	s, ts := testServer(t, Config{Fault: fault, RetryMax: 2, RetryBackoff: 5 * time.Millisecond})
	registerSynth(t, ts.URL, "census-mcd", "census", 200)

	code, doc, _ := submit(t, ts.URL, map[string]any{
		"dataset": "census", "algorithm": "alg3", "k": 3, "t": 0.25,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitJob(t, ts.URL, jobID(t, doc), 30*time.Second)
	if final["state"] != string(JobDone) {
		t.Fatalf("retried job: %v (%v)", final["state"], final["error"])
	}
	if final["attempts"].(float64) != 3 {
		t.Fatalf("attempts = %v, want 3 (2 transient failures + success)", final["attempts"])
	}
	if s.metrics.retries.Load() != 2 {
		t.Fatalf("retries = %d, want 2", s.metrics.retries.Load())
	}

	// Persistent transient fault: budget exhausts, job fails transient.
	fault.FailNextRuns(100)
	code, doc2, _ := submit(t, ts.URL, map[string]any{
		"dataset": "census", "algorithm": "alg3", "k": 7, "t": 0.25, "no_cache": true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit2: %d", code)
	}
	final2 := waitJob(t, ts.URL, jobID(t, doc2), 30*time.Second)
	if final2["state"] != string(JobFailed) || final2["error_kind"] != errKindTransient {
		t.Fatalf("exhausted retries: state=%v kind=%v", final2["state"], final2["error_kind"])
	}
	if final2["attempts"].(float64) != 3 { // first attempt + RetryMax retries
		t.Fatalf("attempts = %v, want 3", final2["attempts"])
	}
	fault.FailNextRuns(0)
}

// TestGracefulShutdownDrains: Shutdown with a generous grace lets queued
// and in-flight jobs finish (clean nil return), and post-drain submissions
// are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	s, ts := testServer(t, Config{MaxQueue: 8, JobWorkers: 1})
	registerSynth(t, ts.URL, "census-mcd", "census", 200)

	var ids []float64
	for i := 0; i < 3; i++ {
		code, doc, _ := submit(t, ts.URL, map[string]any{
			"dataset": "census", "algorithm": "alg3", "k": 2 + i, "t": 0.2, "no_cache": true,
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids = append(ids, jobID(t, doc))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown returned %v, want nil", err)
	}
	for _, id := range ids {
		code, doc, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%.0f", ts.URL, id), nil)
		if code != http.StatusOK || doc["state"] != string(JobDone) {
			t.Fatalf("job %v after drain: %v (%v)", id, doc["state"], doc["error"])
		}
	}
	// Draining refuses new work but stays reachable.
	code, _, _ := submit(t, ts.URL, map[string]any{"dataset": "census", "algorithm": "alg3", "k": 2, "t": 0.2})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", code)
	}
	code, hz, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK || hz["status"] != "draining" {
		t.Fatalf("healthz during drain: %d %v", code, hz)
	}
}

// TestShutdownGraceExpiryCancels: when in-flight work cannot finish within
// the grace period, Shutdown cancels it — the job lands in the canceled
// state and Shutdown still returns (with the grace context's error).
func TestShutdownGraceExpiryCancels(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.SlowTask(50 * time.Millisecond)
	s, ts := testServer(t, Config{JobWorkers: 1, Fault: fault})
	registerSynth(t, ts.URL, "patients", "patients", 600)

	code, doc, _ := submit(t, ts.URL, map[string]any{
		"dataset": "patients", "algorithm": "alg2", "k": 2, "t": 0.05, "skip_assessment": true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// Give the job a moment to start.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.inFlight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("grace-expired shutdown returned nil, want context error")
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("shutdown hung %v after grace expiry", elapsed)
	}
	final := waitJob(t, ts.URL, jobID(t, doc), 10*time.Second)
	if final["state"] != string(JobCanceled) {
		t.Fatalf("in-flight job after forced shutdown: %v", final["state"])
	}
	fault.SlowTask(0)
}

// TestFaultInjectionStress is the heavy leg CI runs with SERVE_FAULT_HEAVY:
// a burst of jobs under rotating faults (panics, slowdowns, transients)
// must leave the server healthy, every job in a terminal state, and a
// final clean job working.
func TestFaultInjectionStress(t *testing.T) {
	if os.Getenv("SERVE_FAULT_HEAVY") == "" {
		t.Skip("set SERVE_FAULT_HEAVY=1 for the heavy fault-injection leg")
	}
	fault := &faultinject.Hooks{}
	s, ts := testServer(t, Config{MaxQueue: 32, JobWorkers: 4, Fault: fault,
		RetryMax: 1, RetryBackoff: time.Millisecond})
	registerSynth(t, ts.URL, "census-mcd", "census", 240)

	var ids []float64
	for round := 0; round < 12; round++ {
		switch round % 4 {
		case 0:
			fault.PanicAtTask(1 + round%5)
		case 1:
			fault.PanicAtTask(0)
			fault.FailNextRuns(2)
		case 2:
			fault.SlowTask(time.Millisecond)
		case 3:
			fault.SlowTask(0)
		}
		code, doc, _ := submit(t, ts.URL, map[string]any{
			"dataset": "census", "algorithm": []string{"alg1", "alg2", "alg3"}[round%3],
			"k": 2 + round%4, "t": 0.15, "no_cache": true, "skip_assessment": true,
		})
		switch code {
		case http.StatusAccepted, http.StatusOK:
			ids = append(ids, jobID(t, doc))
		case http.StatusTooManyRequests:
			// Shedding under stress is correct behavior.
		default:
			t.Fatalf("round %d: status %d (%v)", round, code, doc)
		}
	}
	for _, id := range ids {
		waitJob(t, ts.URL, id, 60*time.Second)
	}

	// Disarm everything: the server must still do clean work.
	fault.PanicAtTask(0)
	fault.SlowTask(0)
	fault.FailNextRuns(0)
	code, doc, _ := submit(t, ts.URL, map[string]any{
		"dataset": "census", "algorithm": "alg3", "k": 5, "t": 0.15,
	})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("final submit: %d", code)
	}
	final := waitJob(t, ts.URL, jobID(t, doc), 60*time.Second)
	if final["state"] != string(JobDone) {
		t.Fatalf("final clean job: %v (%v)", final["state"], final["error"])
	}
	code, hz, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz after stress: %d %v", code, hz)
	}
	if s.metrics.panics.Load() == 0 {
		t.Fatal("stress run injected no panics — fault wiring broken")
	}
}
