package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the number of recent run latencies kept for the quantile
// estimates: large enough that p99 is meaningful, small and fixed so a
// long-lived server's metrics cost stays constant.
const latWindow = 512

// metrics is the server's KPI state: monotonic counters plus a fixed-size
// ring of recent successful-run latencies for p50/p99.
type metrics struct {
	start time.Time

	runs       atomic.Int64 // successful engine runs
	failures   atomic.Int64 // jobs finished in the failed state
	panics     atomic.Int64 // run attempts that ended in a recovered panic
	retries    atomic.Int64 // transient-failure retries performed
	timeouts   atomic.Int64 // jobs failed on their deadline
	cancels    atomic.Int64 // jobs finished in the canceled state
	shed       atomic.Int64 // submissions rejected by the full queue (429)
	cacheHits  atomic.Int64 // submissions served from the result cache
	cacheMiss  atomic.Int64 // submissions that had to run the engine
	inFlight   atomic.Int64 // jobs currently executing
	transients atomic.Int64 // transient attempt failures observed

	warmHits           atomic.Int64 // runs seeded from a warm partition
	warmMisses         atomic.Int64 // warm-requested runs that fell back cold
	warmRepairRows     atomic.Int64 // rows touched by warm repairs (scope)
	warmRepairClusters atomic.Int64 // clusters folded/split/re-extracted warm

	shardedRuns atomic.Int64 // successful sharded-construction runs

	latMu   sync.Mutex
	lat     [latWindow]time.Duration
	latLen  int
	latNext int
}

func (m *metrics) observe(d time.Duration) {
	m.latMu.Lock()
	m.lat[m.latNext] = d
	m.latNext = (m.latNext + 1) % latWindow
	if m.latLen < latWindow {
		m.latLen++
	}
	m.latMu.Unlock()
}

// quantiles returns the p50 and p99 of the recorded window (zeros when no
// run has completed yet).
func (m *metrics) quantiles() (p50, p99 time.Duration) {
	m.latMu.Lock()
	n := m.latLen
	buf := make([]time.Duration, n)
	copy(buf, m.lat[:n])
	m.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := func(q float64) int {
		i := int(q * float64(n-1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	return buf[idx(0.50)], buf[idx(0.99)]
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Runs       int64 `json:"runs"`
	Failures   int64 `json:"failures"`
	Panics     int64 `json:"panics"`
	Retries    int64 `json:"retries"`
	Transients int64 `json:"transient_failures"`
	Timeouts   int64 `json:"timeouts"`
	Canceled   int64 `json:"canceled"`
	Shed       int64 `json:"shed"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// Warm-start KPIs: hit/miss split of warm-eligible runs, plus the repair
	// scope actually touched — the numbers that show re-anonymization cost
	// tracking the delta rather than the table.
	WarmHits           int64 `json:"warm_hits"`
	WarmMisses         int64 `json:"warm_misses"`
	WarmRepairRows     int64 `json:"warm_repair_rows"`
	WarmRepairClusters int64 `json:"warm_repair_clusters"`

	// ShardedRuns counts successful sharded-construction runs (see the
	// "sharded" submission flag).
	ShardedRuns int64 `json:"sharded_runs"`

	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	InFlight      int64 `json:"jobs_in_flight"`
	Datasets      int   `json:"datasets"`

	P50Millis float64 `json:"run_latency_p50_ms"`
	P99Millis float64 `json:"run_latency_p99_ms"`
}

func (s *Server) snapshotMetrics() MetricsSnapshot {
	p50, p99 := s.metrics.quantiles()
	s.mu.Lock()
	datasets := len(s.datasets)
	s.mu.Unlock()
	return MetricsSnapshot{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Runs:          s.metrics.runs.Load(),
		Failures:      s.metrics.failures.Load(),
		Panics:        s.metrics.panics.Load(),
		Retries:       s.metrics.retries.Load(),
		Transients:    s.metrics.transients.Load(),
		Timeouts:      s.metrics.timeouts.Load(),
		Canceled:      s.metrics.cancels.Load(),
		Shed:          s.metrics.shed.Load(),
		CacheHits:          s.metrics.cacheHits.Load(),
		CacheMisses:        s.metrics.cacheMiss.Load(),
		WarmHits:           s.metrics.warmHits.Load(),
		WarmMisses:         s.metrics.warmMisses.Load(),
		WarmRepairRows:     s.metrics.warmRepairRows.Load(),
		WarmRepairClusters: s.metrics.warmRepairClusters.Load(),
		ShardedRuns:        s.metrics.shardedRuns.Load(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		InFlight:      s.metrics.inFlight.Load(),
		Datasets:      datasets,
		P50Millis:     float64(p50) / float64(time.Millisecond),
		P99Millis:     float64(p99) / float64(time.Millisecond),
	}
}
