package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/store"
)

// listDocs fetches the enriched GET /v1/datasets listing with the
// volatile created timestamps stripped.
func listDocs(t *testing.T, base string) []map[string]any {
	t.Helper()
	code, doc, _ := doJSON(t, http.MethodGet, base+"/v1/datasets", nil)
	if code != http.StatusOK {
		t.Fatalf("list datasets: %d (%v)", code, doc)
	}
	raw, err := json.Marshal(doc["datasets"])
	if err != nil {
		t.Fatal(err)
	}
	var docs []map[string]any
	if err := json.Unmarshal(raw, &docs); err != nil {
		t.Fatalf("datasets field is not a document list: %v", err)
	}
	for _, d := range docs {
		delete(d, "created")
	}
	return docs
}

// A store-backed server writes every registration and epoch through, and
// a fresh server over the same directory restores the same datasets:
// names, epochs, schema summaries, and table hashes all match, and the
// restored engines keep accepting epochs at the right counter.
func TestPersistentRestore(t *testing.T) {
	dir := t.TempDir()
	backend, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Store: backend})

	registerSynth(t, ts.URL, "patients", "clinic", 300)
	code, doc, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": [][]any{patientRow(7)},
	})
	if code != http.StatusOK {
		t.Fatalf("append: %d (%v)", code, doc)
	}
	code, doc, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": []int{1, 5},
	})
	if code != http.StatusOK {
		t.Fatalf("delete: %d (%v)", code, doc)
	}
	before := listDocs(t, ts.URL)
	if len(before) != 1 || before[0]["epoch"].(float64) != 2 {
		t.Fatalf("listing before restore: %v", before)
	}
	if before[0]["table_hash"].(string) == "" {
		t.Fatal("listing carries no table hash")
	}

	// "Restart": a second server over a fresh backend on the same files.
	backend2, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := testServer(t, Config{Store: backend2})
	names, err := srv2.RestoreDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "clinic" {
		t.Fatalf("restored %v, want [clinic]", names)
	}
	after := listDocs(t, ts2.URL)
	if got, want := mustMarshal(t, after), mustMarshal(t, before); got != want {
		t.Fatalf("listing changed across restore:\nbefore: %s\nafter:  %s", want, got)
	}

	// Restored engines continue the durable epoch sequence.
	code, doc, _ = doJSON(t, http.MethodDelete, ts2.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": []int{0},
	})
	if code != http.StatusOK || doc["epoch"].(float64) != 3 {
		t.Fatalf("epoch after post-restore delete: %d (%v)", code, doc)
	}

	// Restored names are taken: a re-registration conflicts instead of
	// clobbering the stored dataset.
	code, doc, _ = doJSON(t, http.MethodPost, ts2.URL+"/v1/datasets?synth=patients&name=clinic", nil)
	if code != http.StatusConflict {
		t.Fatalf("re-register restored name: %d (%v)", code, doc)
	}
}

// A failed persistent registration must not leave an orphan snapshot:
// the name stays reusable and the store stays empty.
func TestPersistentRegisterConflict(t *testing.T) {
	backend, err := store.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Store: backend})
	registerSynth(t, ts.URL, "patients", "clinic", 50)
	code, doc, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets?synth=patients&name=clinic", nil)
	if code != http.StatusConflict {
		t.Fatalf("duplicate register: %d (%v)", code, doc)
	}
	names, err := backend.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("store holds %v after conflicting register, want just clinic", names)
	}
}

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
