package serve

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// patientRow is a valid row for the "patients" synthetic schema (8 numeric
// columns: age, zip, admit day, stay, severity, sex, ward, charge).
func patientRow(i int) []any {
	return []any{
		float64(30 + i%40), float64(90000 + i%25), float64(1 + i%28),
		float64(1 + i%9), float64(i % 4), float64(i % 2), float64(i % 6),
		float64(800 + 37*i),
	}
}

// submitAndWait submits a job and waits for it to finish done, returning the
// result document.
func submitAndWait(t *testing.T, base string, req map[string]any) map[string]any {
	t.Helper()
	code, doc, _ := submit(t, base, req)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit %v: status %d (%v)", req, code, doc)
	}
	final := waitJob(t, base, jobID(t, doc), 60*time.Second)
	if final["state"] != string(JobDone) {
		t.Fatalf("job finished %v: %v", final["state"], final["error"])
	}
	code, res, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%.0f/result", base, jobID(t, doc)), nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d (%v)", code, res)
	}
	return res
}

// TestServeWarmLifecycle drives the warm-start contract over HTTP: the first
// warm-eligible job is a warm miss that seeds the cache, a job after an
// append epoch is a warm hit whose repair scope is the delta, a job after a
// delete epoch stays warm, and /metrics exposes the hit/miss split and
// repair scope.
func TestServeWarmLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{})
	registerSynth(t, ts.URL, "patients", "patients", 500)

	req := map[string]any{
		"dataset": "patients", "algorithm": "alg2", "k": 2, "t": 0.15,
		"skip_assessment": true,
	}

	// First run: warm by default, but no seed exists yet — a warm miss that
	// runs cold and seeds the cache. The result carries no warm block.
	res := submitAndWait(t, ts.URL, req)
	if res["warm"] != nil {
		t.Fatalf("first run should be a warm miss, got warm block %v", res["warm"])
	}
	if got := s.metrics.warmMisses.Load(); got != 1 {
		t.Fatalf("warmMisses = %d, want 1", got)
	}

	// Append 10 rows: the next job sees a new epoch, misses the result
	// cache, and repairs the seeded partition instead of running cold.
	rows := make([][]any, 10)
	for i := range rows {
		rows[i] = patientRow(i)
	}
	code, doc, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/patients/rows", map[string]any{"rows": rows})
	if code != http.StatusOK || doc["epoch"].(float64) != 1 {
		t.Fatalf("append: %d %v", code, doc)
	}
	res = submitAndWait(t, ts.URL, req)
	warm, ok := res["warm"].(map[string]any)
	if !ok {
		t.Fatalf("post-append run is not warm: %v", res)
	}
	if warm["seed_epoch"].(float64) != 0 || warm["assigned"].(float64) != 10 {
		t.Fatalf("warm block: %v", warm)
	}
	if got := s.metrics.warmHits.Load(); got != 1 {
		t.Fatalf("warmHits = %d, want 1", got)
	}

	// Delete a few rows: a tombstone epoch. The cached seed is remapped, so
	// the follow-up job is again a warm hit over the filtered table.
	code, doc, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/patients/rows", map[string]any{"rows": []int{3, 99, 205}})
	if code != http.StatusOK || doc["epoch"].(float64) != 2 || doc["rows"].(float64) != 507 {
		t.Fatalf("delete: %d %v", code, doc)
	}
	res = submitAndWait(t, ts.URL, req)
	if _, ok := res["warm"].(map[string]any); !ok {
		t.Fatalf("post-delete run is not warm: %v", res)
	}
	if got := s.metrics.warmHits.Load(); got != 2 {
		t.Fatalf("warmHits = %d, want 2", got)
	}

	// The metrics document exposes the warm KPI fields.
	code, m, _ := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m["warm_hits"].(float64) != 2 || m["warm_misses"].(float64) != 1 {
		t.Fatalf("metrics warm split: hits %v misses %v", m["warm_hits"], m["warm_misses"])
	}
	if m["warm_repair_rows"].(float64) <= 0 {
		t.Fatalf("warm_repair_rows = %v, want > 0", m["warm_repair_rows"])
	}
}

// TestServeColdEscapeHatch pins the cold=true escape hatch: the job runs
// from scratch with no warm block, and warm and cold releases occupy
// distinct result-cache slots.
func TestServeColdEscapeHatch(t *testing.T) {
	s, ts := testServer(t, Config{})
	registerSynth(t, ts.URL, "patients", "patients", 400)

	warmReq := map[string]any{
		"dataset": "patients", "algorithm": "alg1", "k": 3, "t": 0.2,
		"skip_assessment": true,
	}
	coldReq := map[string]any{
		"dataset": "patients", "algorithm": "alg1", "k": 3, "t": 0.2,
		"skip_assessment": true, "cold": true,
	}

	submitAndWait(t, ts.URL, warmReq)
	if got := s.metrics.warmMisses.Load(); got != 1 {
		t.Fatalf("warmMisses = %d, want 1", got)
	}

	// The cold job has a different cache key, so it queues and re-runs; it
	// never counts toward the warm split.
	code, doc, _ := submit(t, ts.URL, coldReq)
	if code != http.StatusAccepted {
		t.Fatalf("cold submit should miss the cache: %d (%v)", code, doc)
	}
	final := waitJob(t, ts.URL, jobID(t, doc), 60*time.Second)
	if final["state"] != string(JobDone) {
		t.Fatalf("cold job: %v (%v)", final["state"], final["error"])
	}
	if got := s.metrics.warmMisses.Load(); got != 1 {
		t.Fatalf("cold run counted as warm miss: warmMisses = %d", got)
	}

	// Both releases are now cached under their own keys.
	code, doc, _ = submit(t, ts.URL, warmReq)
	if code != http.StatusOK || doc["cached"] != true {
		t.Fatalf("warm resubmit should hit the cache: %d %v", code, doc)
	}
	code, doc, _ = submit(t, ts.URL, coldReq)
	if code != http.StatusOK || doc["cached"] != true {
		t.Fatalf("cold resubmit should hit the cache: %d %v", code, doc)
	}
}

// TestServeDeleteRowsErrors pins the deletion endpoint's rejection paths:
// unknown dataset, empty and out-of-range ids, delete-everything — all
// without advancing the epoch.
func TestServeDeleteRowsErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	registerSynth(t, ts.URL, "patients", "small", 60)

	code, _, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/nope/rows", map[string]any{"rows": []int{0}})
	if code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d, want 404", code)
	}
	cases := []map[string]any{
		{"rows": []int{}},
		{"rows": []int{60}},
		{"rows": []int{-1}},
	}
	for i, body := range cases {
		code, doc, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/small/rows", body)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: %d (%v), want 400", i, code, doc)
		}
	}
	// Deleting every record is rejected by the engine.
	all := make([]int, 60)
	for i := range all {
		all[i] = i
	}
	code, doc, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/small/rows", map[string]any{"rows": all})
	if code != http.StatusBadRequest {
		t.Fatalf("delete-all: %d (%v), want 400", code, doc)
	}
	code, info, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/small", nil)
	if code != http.StatusOK || info["epoch"].(float64) != 0 || info["rows"].(float64) != 60 {
		t.Fatalf("failed deletes changed the dataset: %v", info)
	}
}
