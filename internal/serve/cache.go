package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// cacheKey identifies one release: the dataset at a specific epoch crossed
// with the full parameter point. Identical submissions against an
// unchanged dataset are O(1); any Append bumps the epoch and naturally
// invalidates without eviction logic.
type cacheKey struct {
	dataset        string
	epoch          int
	algorithm      core.Algorithm
	k              int
	t              float64
	skipAssessment bool
	// warm separates warm-mode and cold releases: a warm run seeded from an
	// earlier epoch may yield a (validly anonymized) partition different from
	// the cold one, and a cold=true client asked for exactly the cold one.
	warm bool
	// sharded separates sharded-construction releases from serial ones, and
	// workers (set only on sharded keys — sharded output varies with the
	// engine worker budget, serial output does not) pins the budget the
	// release was built under: a sharded result must never be served for a
	// serial request, or for a sharded request under a different budget.
	sharded bool
	workers int
}

// resultCache is a small mutex-guarded LRU over completed results. Results
// are immutable once published (the engine returns fresh tables per run
// and the server never mutates them), so entries are shared by pointer.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *core.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[cacheKey]*list.Element)}
}

func (c *resultCache) get(k cacheKey) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// evictDataset drops every cached release of the named dataset — the
// unregistration path, where a later dataset reusing the name must never
// be served the old dataset's releases.
func (c *resultCache) evictDataset(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if key := el.Value.(*cacheEntry).key; key.dataset == name {
			c.ll.Remove(el)
			delete(c.items, key)
		}
		el = next
	}
}

func (c *resultCache) put(k cacheKey, res *core.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
