package serve

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve/faultinject"
	"repro/internal/store"
)

// DELETE /v1/datasets/{name} removes the dataset end to end: the engine
// entry, its cached results, and the backing store file. A re-registered
// dataset under the same name must not be served stale results from the
// removed one's cache.
func TestRemoveDataset(t *testing.T) {
	dir := t.TempDir()
	backend, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Store: backend})
	registerSynth(t, ts.URL, "patients", "clinic", 300)

	// Prime the result cache: first run computes, identical resubmission
	// answers from cache.
	req := map[string]any{"dataset": "clinic", "algorithm": "alg3", "k": 4, "t": 0.2, "skip_assessment": true}
	code, doc, _ := submit(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, doc)
	}
	waitJob(t, ts.URL, jobID(t, doc), 60*time.Second)
	code, doc, _ = submit(t, ts.URL, req)
	if code != http.StatusOK || doc["cached"] != true {
		t.Fatalf("resubmit before remove: %d cached=%v, want a cache hit", code, doc["cached"])
	}

	code, doc, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusOK || doc["removed"] != true || doc["name"] != "clinic" {
		t.Fatalf("remove: %d (%v)", code, doc)
	}
	// Engine entry is gone from every surface.
	code, _, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusNotFound {
		t.Fatalf("GET after remove: %d, want 404", code)
	}
	code, doc, _ = submit(t, ts.URL, req)
	if code != http.StatusNotFound {
		t.Fatalf("submit after remove: %d (%v), want 404", code, doc)
	}
	// The store file is gone too: nothing to restore.
	names, err := backend.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("store after remove: names=%v err=%v, want empty", names, err)
	}

	// Unknown names 404 — including the one just removed.
	code, _, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusNotFound {
		t.Fatalf("double remove: %d, want 404", code)
	}

	// Re-register the same name with the same synthetic table: identical
	// dataset name, epoch, and spec. The old result must NOT come back —
	// eviction, not epoch bumping, is what protects this key.
	registerSynth(t, ts.URL, "patients", "clinic", 300)
	code, doc, _ = submit(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit after re-register: %d (%v)", code, doc)
	}
	if doc["cached"] == true {
		t.Fatal("resubmission after remove + re-register served the evicted dataset's cached result")
	}
	waitJob(t, ts.URL, jobID(t, doc), 60*time.Second)
}

// A dataset with queued or running jobs is busy: DELETE answers 409 and
// removes nothing; once the jobs finish the removal goes through.
func TestRemoveDatasetBusy(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.SlowTask(20 * time.Millisecond)
	_, ts := testServer(t, Config{JobWorkers: 1, Fault: fault})
	registerSynth(t, ts.URL, "patients", "clinic", 300)

	req := map[string]any{"dataset": "clinic", "algorithm": "alg3", "k": 3, "t": 0.15, "skip_assessment": true, "no_cache": true}
	code, doc, _ := submit(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := jobID(t, doc)

	code, doc, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusConflict {
		t.Fatalf("remove with job in flight: %d (%v), want 409", code, doc)
	}
	// The dataset survived the refused removal.
	code, _, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusOK {
		t.Fatalf("GET after refused remove: %d", code)
	}

	fault.SlowTask(0)
	waitJob(t, ts.URL, id, 60*time.Second)
	code, doc, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusOK || doc["removed"] != true {
		t.Fatalf("remove after drain: %d (%v)", code, doc)
	}
}

// The 429 body carries the real backlog estimate alongside the clamped
// Retry-After header. On a cold start — no completed runs, so no p50 —
// both fall back to exactly 1.
func TestShedBodyCarriesEstimate(t *testing.T) {
	fault := &faultinject.Hooks{}
	fault.SlowTask(20 * time.Millisecond)
	_, ts := testServer(t, Config{MaxQueue: 1, JobWorkers: 1, Fault: fault})
	registerSynth(t, ts.URL, "patients", "patients", 400)

	req := func(k int) map[string]any {
		return map[string]any{"dataset": "patients", "algorithm": "alg3", "k": k, "t": 0.1, "skip_assessment": true, "no_cache": true}
	}
	code, first, _ := submit(t, ts.URL, req(2))
	if code != http.StatusAccepted {
		t.Fatalf("job1: %d", code)
	}
	var queued []float64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, doc, hdr := submit(t, ts.URL, req(3))
		if code == http.StatusAccepted {
			queued = append(queued, jobID(t, doc))
			continue
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("submit: unexpected status %d (%v)", code, doc)
		}
		// Shed before any run completed: the estimate has no p50 to work
		// from and must fall back to 1 — not 0, not the 60s clamp.
		est, ok := doc["retry_after_seconds"].(float64)
		if !ok {
			t.Fatalf("429 body carries no retry_after_seconds: %v", doc)
		}
		if est != 1 {
			t.Fatalf("cold-start estimate %v, want exactly 1", est)
		}
		if hdr.Get("Retry-After") != "1" {
			t.Fatalf("cold-start Retry-After header %q, want 1", hdr.Get("Retry-After"))
		}
		fault.SlowTask(0)
		waitJob(t, ts.URL, jobID(t, first), 60*time.Second)
		for _, id := range queued {
			waitJob(t, ts.URL, id, 60*time.Second)
		}
		return
	}
	t.Fatal("queue never shed load")
}

// RestoreDatasets with OpenBudget set rebuilds every stored dataset
// through the streaming open: same names, epochs, and table hashes as the
// materializing path, and the restored engines keep accepting epochs.
func TestRestoreDatasetsStreaming(t *testing.T) {
	dir := t.TempDir()
	backend, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Store: backend})
	registerSynth(t, ts.URL, "patients", "clinic", 300)
	code, doc, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": [][]any{patientRow(7)},
	})
	if code != http.StatusOK {
		t.Fatalf("append: %d (%v)", code, doc)
	}
	code, doc, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": []int{2, 9},
	})
	if code != http.StatusOK {
		t.Fatalf("delete: %d (%v)", code, doc)
	}
	before := listDocs(t, ts.URL)

	backend2, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := testServer(t, Config{Store: backend2, OpenBudget: 1 << 16})
	names, err := srv2.RestoreDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "clinic" {
		t.Fatalf("restored %v, want [clinic]", names)
	}
	after := listDocs(t, ts2.URL)
	if got, want := mustMarshal(t, after), mustMarshal(t, before); got != want {
		t.Fatalf("streaming restore changed the listing:\nbefore: %s\nafter:  %s", want, got)
	}
	code, doc, _ = doJSON(t, http.MethodDelete, ts2.URL+"/v1/datasets/clinic/rows", map[string]any{
		"rows": []int{0},
	})
	if code != http.StatusOK || doc["epoch"].(float64) != 3 {
		t.Fatalf("epoch after post-restore delete: %d (%v)", code, doc)
	}
}

// Stray files in the data dir are advisory: RestoreDatasets restores
// every intact dataset and passes the *store.StrayFilesError through for
// the operator, instead of aborting the boot.
func TestRestoreDatasetsToleratesStrays(t *testing.T) {
	dir := t.TempDir()
	backend, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Store: backend})
	registerSynth(t, ts.URL, "patients", "clinic", 200)
	if err := os.WriteFile(filepath.Join(dir, "%zz-bogus.tcs"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	backend2, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := testServer(t, Config{Store: backend2})
	names, err := srv2.RestoreDatasets()
	var strays *store.StrayFilesError
	if !errors.As(err, &strays) {
		t.Fatalf("RestoreDatasets error %v, want a *store.StrayFilesError", err)
	}
	if len(strays.Files) != 1 || strays.Files[0] != "%zz-bogus.tcs" {
		t.Fatalf("stray files %v", strays.Files)
	}
	if len(names) != 1 || names[0] != "clinic" {
		t.Fatalf("restored %v despite strays, want [clinic]", names)
	}
	code, _, _ := doJSON(t, http.MethodGet, ts2.URL+"/v1/datasets/clinic", nil)
	if code != http.StatusOK {
		t.Fatalf("restored dataset not served: %d", code)
	}
}
