// Package generalization implements the generalization/recoding baseline
// the paper argues against: Mondrian multidimensional partitioning (LeFevre
// et al., ICDE 2006) for k-anonymity, and its t-closeness adaptation in the
// style of Li et al. (the "Closeness" paper's Mondrian extension referenced
// in Section 3).
//
// Mondrian recursively splits the record set at the median of the
// quasi-identifier with the widest normalized range; a split is allowed only
// if both halves keep at least k records (and, in the t-closeness variant,
// both halves stay within EMD t of the global confidential distribution).
// The release recodes each quasi-identifier to the midpoint of its range in
// the leaf partition, modelling generalization's loss of granularity, which
// lets the benchmark suite compare SSE against microaggregation on equal
// terms.
package generalization

import (
	"context"
	"errors"
	"sort"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// ErrBadK mirrors micro.ErrBadK for the Mondrian entry points.
var ErrBadK = errors.New("generalization: k must be at least 1")

// Mondrian partitions the table's records into equivalence classes of at
// least k records using median-cut multidimensional partitioning on the
// quasi-identifiers.
func Mondrian(t *dataset.Table, k int) ([]micro.Cluster, error) {
	return mondrian(context.Background(), t, k, nil, 0)
}

// MondrianT partitions like Mondrian but additionally enforces t-closeness:
// a split is performed only when both halves keep their confidential
// distribution within EMD tLevel of the whole data set. The root partition
// trivially satisfies t-closeness (EMD 0), so the result always carries the
// guarantee — at the cost of coarse partitions for small t.
func MondrianT(t *dataset.Table, k int, tLevel float64) ([]micro.Cluster, error) {
	return MondrianTCtx(context.Background(), t, k, tLevel)
}

// MondrianTCtx is MondrianT with cooperative cancellation, checked once per
// recursive split.
func MondrianTCtx(ctx context.Context, t *dataset.Table, k int, tLevel float64) ([]micro.Cluster, error) {
	return MondrianTPrepared(ctx, t, k, tLevel, nil)
}

// MondrianTPrepared is MondrianTCtx with caller-supplied ordered-distance
// EMD spaces, one per confidential attribute in schema order — the engine
// path, which prepares them once per table instead of once per run. nil
// spaces are built here; supplying nominal spaces is a caller bug (this
// baseline's t check is defined over the ordered distance).
func MondrianTPrepared(ctx context.Context, t *dataset.Table, k int, tLevel float64, spaces []*emd.Space) ([]micro.Cluster, error) {
	if spaces == nil {
		confs := t.Schema().Confidentials()
		spaces = make([]*emd.Space, len(confs))
		for i, c := range confs {
			s, err := emd.NewSpace(t.ColumnView(c))
			if err != nil {
				return nil, err
			}
			spaces[i] = s
		}
	}
	return mondrian(ctx, t, k, spaces, tLevel)
}

func mondrian(ctx context.Context, t *dataset.Table, k int, spaces []*emd.Space, tLevel float64) ([]micro.Cluster, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	if t.Len() == 0 {
		return nil, micro.ErrEmpty
	}
	if ctx == nil {
		ctx = context.Background()
	}
	qis := t.Schema().QuasiIdentifiers()
	cols := make([][]float64, len(qis))
	ranges := make([]float64, len(qis))
	for j, c := range qis {
		cols[j] = t.ColumnView(c)
		st := t.Stats(c)
		if st.Max > st.Min {
			ranges[j] = st.Max - st.Min
		} else {
			ranges[j] = 1
		}
	}
	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	var clusters []micro.Cluster
	var splitErr error
	var split func(rows []int)
	split = func(rows []int) {
		if splitErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			splitErr = err
			return
		}
		if len(rows) >= 2*k {
			if left, right, ok := bestCut(cols, ranges, rows, k); ok &&
				(spaces == nil || (within(spaces, left, tLevel) && within(spaces, right, tLevel))) {
				split(left)
				split(right)
				return
			}
		}
		clusters = append(clusters, micro.Cluster{Rows: rows})
	}
	split(all)
	if splitErr != nil {
		return nil, splitErr
	}
	return clusters, nil
}

// bestCut finds the widest (normalized) quasi-identifier dimension over the
// rows that admits a median cut leaving at least k records on each side.
// Dimensions are tried in decreasing width order until one admits a valid
// cut; ok is false when none does (e.g. all records identical).
func bestCut(cols [][]float64, ranges []float64, rows []int, k int) (left, right []int, ok bool) {
	type dimWidth struct {
		dim   int
		width float64
	}
	widths := make([]dimWidth, len(cols))
	for j := range cols {
		lo, hi := cols[j][rows[0]], cols[j][rows[0]]
		for _, r := range rows[1:] {
			v := cols[j][r]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		widths[j] = dimWidth{dim: j, width: (hi - lo) / ranges[j]}
	}
	sort.Slice(widths, func(i, j int) bool {
		if widths[i].width != widths[j].width {
			return widths[i].width > widths[j].width
		}
		return widths[i].dim < widths[j].dim
	})
	for _, w := range widths {
		if w.width == 0 {
			break
		}
		col := cols[w.dim]
		sorted := append([]int(nil), rows...)
		sort.Slice(sorted, func(a, b int) bool {
			if col[sorted[a]] != col[sorted[b]] {
				return col[sorted[a]] < col[sorted[b]]
			}
			return sorted[a] < sorted[b]
		})
		median := col[sorted[(len(sorted)-1)/2]]
		// Strict partition: values <= median left, > median right. Ties all
		// fall left, which can empty the right side; check both bounds.
		cut := len(sorted)
		for i, r := range sorted {
			if col[r] > median {
				cut = i
				break
			}
		}
		if cut >= k && len(sorted)-cut >= k {
			return sorted[:cut], sorted[cut:], true
		}
	}
	return nil, nil, false
}

func within(spaces []*emd.Space, rows []int, tLevel float64) bool {
	for _, s := range spaces {
		if s.EMDOf(rows) > tLevel {
			return false
		}
	}
	return true
}

// Aggregate produces the generalized release for a Mondrian partition: each
// quasi-identifier value is recoded to the midpoint of the attribute's range
// within its equivalence class (the numeric stand-in for publishing the
// range itself), identifiers are blanked, and other attributes are released
// unchanged.
func Aggregate(t *dataset.Table, clusters []micro.Cluster) (*dataset.Table, error) {
	if err := micro.CheckPartition(clusters, t.Len(), 1); err != nil {
		return nil, err
	}
	out := t.Clone()
	qis := t.Schema().QuasiIdentifiers()
	for _, c := range clusters {
		for _, col := range qis {
			lo, hi := t.Value(c.Rows[0], col), t.Value(c.Rows[0], col)
			for _, r := range c.Rows[1:] {
				v := t.Value(r, col)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			mid := (lo + hi) / 2
			for _, r := range c.Rows {
				out.SetValue(r, col, mid)
			}
		}
	}
	for _, col := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(col)
	}
	return out, nil
}
