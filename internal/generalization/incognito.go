package generalization

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// Incognito-style full-domain generalization adapted to t-closeness, the
// approach of Li et al. (ICDE 2007) that the paper's Section 3 describes as
// the classical way to attain t-closeness: take a full-domain k-anonymity
// lattice search and add the t-closeness constraint when checking whether a
// generalization is viable.
//
// Each numeric quasi-identifier gets a generalization hierarchy of
// quantile intervals: level 0 is the exact value, each higher level halves
// the number of intervals, and the top level is a single interval covering
// the whole domain. A lattice node assigns one level per quasi-identifier;
// both k-anonymity and t-closeness are monotone along the lattice (coarser
// generalization merges equivalence classes, which can only raise the
// minimum class size and, by convexity of the Earth Mover's Distance in the
// class distribution, can only lower the maximum class-to-global EMD), so a
// bottom-up breadth-first search that prunes ancestors of satisfying nodes
// finds exactly the minimal satisfying generalizations, among which the one
// with the lowest normalized SSE (midpoint recoding) is returned.

// GenResult is the outcome of IncognitoT.
type GenResult struct {
	// Levels is the chosen generalization level per quasi-identifier (in
	// schema order of the quasi-identifiers); 0 means no generalization.
	Levels []int
	// Clusters are the equivalence classes induced by the generalization.
	Clusters []micro.Cluster
	// MaxEMD is the achieved t-closeness level.
	MaxEMD float64
	// NodesChecked counts lattice nodes evaluated (search effort).
	NodesChecked int
}

// hierarchy precomputes, for one quasi-identifier, the interval index of
// every record at every level.
type hierarchy struct {
	levels int     // number of levels above exact (level 0)
	bins   [][]int // bins[level][row] -> interval index; level 0 = exact rank
}

func buildHierarchy(t *dataset.Table, col, maxLevels int) *hierarchy {
	ranks, distinct := t.Ranks(col)
	m := len(distinct)
	natural := 0
	for (1 << natural) < m {
		natural++
	}
	levels := natural
	if levels > maxLevels {
		levels = maxLevels
	}
	h := &hierarchy{levels: levels, bins: make([][]int, levels+1)}
	h.bins[0] = ranks
	for l := 1; l <= levels; l++ {
		// Interval width doubles per level; the top level is always a
		// single interval even when the hierarchy height is capped, so the
		// lattice's top node is guaranteed to satisfy any (k, t).
		width := 1 << l
		if l == levels {
			width = m
		}
		binRow := make([]int, len(ranks))
		for r, rank := range ranks {
			binRow[r] = rank / width
		}
		h.bins[l] = binRow
	}
	return h
}

// IncognitoT searches the full-domain generalization lattice bottom-up for
// the minimal generalizations that make the table k-anonymous and t-close,
// and returns the one with the lowest information loss. maxLevels caps the
// per-attribute hierarchy height (8 covers up to 256 intervals; pass 0 for
// the default).
//
// If even the top node (everything generalized to a single interval, i.e.
// one equivalence class) fails — impossible, since a single class has EMD
// 0 and size n — an error is returned only for invalid parameters.
func IncognitoT(t *dataset.Table, k int, tLevel float64, maxLevels int) (*GenResult, error) {
	return IncognitoTCtx(context.Background(), t, k, tLevel, maxLevels)
}

// IncognitoTCtx is IncognitoT with cooperative cancellation, checked once
// per evaluated lattice node.
func IncognitoTCtx(ctx context.Context, t *dataset.Table, k int, tLevel float64, maxLevels int) (*GenResult, error) {
	return IncognitoTPrepared(ctx, t, k, tLevel, maxLevels, nil)
}

// IncognitoTPrepared is IncognitoTCtx with caller-supplied ordered-distance
// EMD spaces, one per confidential attribute in schema order — the engine
// path, which prepares them once per table instead of once per run. nil
// spaces are built here.
func IncognitoTPrepared(ctx context.Context, t *dataset.Table, k int, tLevel float64, maxLevels int, spaces []*emd.Space) (*GenResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t == nil || t.Len() == 0 {
		return nil, micro.ErrEmpty
	}
	if err := t.Schema().Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if k > t.Len() {
		// The coarsest possible release is a single class of all records.
		k = t.Len()
	}
	if tLevel <= 0 || tLevel > 1 {
		return nil, fmt.Errorf("generalization: t must be in (0, 1], got %v", tLevel)
	}
	if maxLevels <= 0 {
		maxLevels = 8
	}
	qis := t.Schema().QuasiIdentifiers()
	for _, c := range qis {
		if t.Schema().Attr(c).Kind != dataset.Numeric {
			return nil, errors.New("generalization: IncognitoT supports numeric quasi-identifiers only")
		}
	}
	hier := make([]*hierarchy, len(qis))
	for i, c := range qis {
		hier[i] = buildHierarchy(t, c, maxLevels)
	}
	if spaces == nil {
		spaces = make([]*emd.Space, 0, 1)
		for _, c := range t.Schema().Confidentials() {
			s, err := emd.NewSpace(t.ColumnView(c))
			if err != nil {
				return nil, err
			}
			spaces = append(spaces, s)
		}
	}

	// Enumerate lattice nodes in ascending total height so the first
	// satisfying nodes found at each height are minimal unless dominated by
	// an already-found satisfying node.
	type node struct {
		levels []int
	}
	var satisfying []node
	dominated := func(levels []int) bool {
		for _, s := range satisfying {
			leq := true
			for i := range levels {
				if levels[i] < s.levels[i] {
					leq = false
					break
				}
			}
			if leq {
				return true
			}
		}
		return false
	}
	best := (*GenResult)(nil)
	bestSSE := math.Inf(1)
	checked := 0
	maxHeight := 0
	for _, h := range hier {
		maxHeight += h.levels
	}
	for height := 0; height <= maxHeight; height++ {
		anyLive := false
		for _, levels := range nodesAtHeight(hier, height) {
			if dominated(levels) {
				continue
			}
			anyLive = true
			checked++
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			clusters, maxEMD, ok := evaluate(t, hier, spaces, levels, k, tLevel)
			if !ok {
				continue
			}
			satisfying = append(satisfying, node{levels: append([]int(nil), levels...)})
			anon, err := recode(t, hier, levels)
			if err != nil {
				return nil, err
			}
			sse := quickSSE(t, anon, qis)
			if sse < bestSSE {
				bestSSE = sse
				best = &GenResult{
					Levels:   append([]int(nil), levels...),
					Clusters: clusters,
					MaxEMD:   maxEMD,
				}
			}
		}
		// Once every node at a height is dominated, all deeper nodes are
		// dominated too (domination is upward-closed along the lattice).
		if !anyLive && best != nil {
			break
		}
	}
	if best == nil {
		return nil, errors.New("generalization: no satisfying node (unreachable)")
	}
	best.NodesChecked = checked
	return best, nil
}

// nodesAtHeight enumerates all level vectors with the given total height.
func nodesAtHeight(hier []*hierarchy, height int) [][]int {
	var out [][]int
	cur := make([]int, len(hier))
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == len(hier) {
			if left == 0 {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		maxL := hier[i].levels
		for l := 0; l <= maxL && l <= left; l++ {
			cur[i] = l
			rec(i+1, left-l)
		}
	}
	rec(0, height)
	return out
}

// evaluate groups records by generalized QI tuple and checks k-anonymity
// and t-closeness.
func evaluate(t *dataset.Table, hier []*hierarchy, spaces []*emd.Space, levels []int, k int, tLevel float64) ([]micro.Cluster, float64, bool) {
	n := t.Len()
	groups := make(map[string][]int)
	var order []string
	key := make([]byte, 0, 4*len(hier))
	for r := 0; r < n; r++ {
		key = key[:0]
		for i, h := range hier {
			b := h.bins[levels[i]][r]
			key = append(key, byte(b), byte(b>>8), byte(b>>16), '|')
		}
		s := string(key)
		if _, seen := groups[s]; !seen {
			order = append(order, s)
		}
		groups[s] = append(groups[s], r)
	}
	clusters := make([]micro.Cluster, 0, len(order))
	worst := 0.0
	for _, s := range order {
		rows := groups[s]
		if len(rows) < k {
			return nil, 0, false
		}
		for _, sp := range spaces {
			if d := sp.EMDOf(rows); d > worst {
				worst = d
				if worst > tLevel {
					return nil, 0, false
				}
			}
		}
		clusters = append(clusters, micro.Cluster{Rows: rows})
	}
	return clusters, worst, true
}

// recode produces the generalized release: each quasi-identifier value is
// replaced by the midpoint of its interval's actual value range at the
// node's level; identifiers are redacted.
func recode(t *dataset.Table, hier []*hierarchy, levels []int) (*dataset.Table, error) {
	out := t.Clone()
	qis := t.Schema().QuasiIdentifiers()
	for i, col := range qis {
		bins := hier[i].bins[levels[i]]
		lo := map[int]float64{}
		hi := map[int]float64{}
		for r := 0; r < t.Len(); r++ {
			v := t.Value(r, col)
			b := bins[r]
			if cur, ok := lo[b]; !ok || v < cur {
				lo[b] = v
			}
			if cur, ok := hi[b]; !ok || v > cur {
				hi[b] = v
			}
		}
		for r := 0; r < t.Len(); r++ {
			b := bins[r]
			out.SetValue(r, col, (lo[b]+hi[b])/2)
		}
	}
	for _, col := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(col)
	}
	return out, nil
}

// quickSSE is the Eq. (5) normalized SSE restricted to the given columns,
// inlined here to avoid an import cycle with the metrics package.
func quickSSE(orig, anon *dataset.Table, cols []int) float64 {
	n := orig.Len()
	if n == 0 || len(cols) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range cols {
		st := orig.Stats(c)
		rng := st.Max - st.Min
		if rng == 0 {
			continue
		}
		o, a := orig.ColumnView(c), anon.ColumnView(c)
		for r := 0; r < n; r++ {
			d := (o[r] - a[r]) / rng
			total += d * d
		}
	}
	return total / float64(n*len(cols))
}

// Recode exposes the release step for a found generalization so callers can
// materialize the anonymized table from a GenResult.
func Recode(t *dataset.Table, levels []int, maxLevels int) (*dataset.Table, error) {
	if maxLevels <= 0 {
		maxLevels = 8
	}
	qis := t.Schema().QuasiIdentifiers()
	if len(levels) != len(qis) {
		return nil, fmt.Errorf("generalization: %d levels for %d quasi-identifiers",
			len(levels), len(qis))
	}
	hier := make([]*hierarchy, len(qis))
	for i, c := range qis {
		hier[i] = buildHierarchy(t, c, maxLevels)
		if levels[i] < 0 || levels[i] > hier[i].levels {
			return nil, fmt.Errorf("generalization: level %d out of range for attribute %d",
				levels[i], i)
		}
	}
	return recode(t, hier, levels)
}
