package generalization

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/synth"
)

func TestMondrianErrors(t *testing.T) {
	tbl := synth.Uniform(10, 2, 1)
	if _, err := Mondrian(tbl, 0); err == nil {
		t.Error("k = 0 should fail")
	}
	empty := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	if _, err := Mondrian(empty, 2); err == nil {
		t.Error("empty table should fail")
	}
}

func TestMondrianPartitionValid(t *testing.T) {
	for _, n := range []int{1, 5, 50, 200} {
		for _, k := range []int{1, 2, 5} {
			tbl := synth.Uniform(n, 3, int64(n+k))
			clusters, err := Mondrian(tbl, k)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			kk := k
			if n < kk {
				kk = n
			}
			if err := micro.CheckPartition(clusters, n, kk); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
		}
	}
}

func TestMondrianSplitsWhenPossible(t *testing.T) {
	// 100 well-spread records with k=2 must produce many classes, not one.
	tbl := synth.Uniform(100, 2, 3)
	clusters, err := Mondrian(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) < 20 {
		t.Errorf("only %d clusters; Mondrian should split aggressively at k=2", len(clusters))
	}
	// Every leaf must be smaller than 2*2k (cannot split further only below
	// 2k, modulo ties collapsing cuts).
	for _, c := range clusters {
		if c.Size() >= 4*2 {
			t.Errorf("suspiciously large leaf: %d records", c.Size())
		}
	}
}

func TestMondrianIdenticalRecords(t *testing.T) {
	// All-identical QIs admit no cut: a single class results.
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	for i := 0; i < 10; i++ {
		if err := tbl.AppendNumericRow(5, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	clusters, err := Mondrian(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Errorf("identical records should form one class, got %d", len(clusters))
	}
}

func TestMondrianTGuarantee(t *testing.T) {
	tbl := synth.CensusMCD()
	for _, tl := range []float64{0.05, 0.15, 0.25} {
		clusters, err := MondrianT(tbl, 2, tl)
		if err != nil {
			t.Fatal(err)
		}
		if err := micro.CheckPartition(clusters, tbl.Len(), 2); err != nil {
			t.Fatal(err)
		}
		tc, err := privacy.TClosenessOf(tbl, clusters)
		if err != nil {
			t.Fatal(err)
		}
		if tc > tl+1e-12 {
			t.Errorf("t=%v: partition t-closeness %v exceeds bound", tl, tc)
		}
	}
}

func TestMondrianTCoarserThanMondrian(t *testing.T) {
	tbl := synth.CensusHCD()
	plain, err := Mondrian(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := MondrianT(tbl, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(constrained) > len(plain) {
		t.Errorf("t-constrained Mondrian has more classes (%d) than plain (%d)",
			len(constrained), len(plain))
	}
}

func TestMondrianProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%150
		k := 1 + int(kRaw)%6
		tbl := synth.Uniform(n, 2, seed)
		clusters, err := Mondrian(tbl, k)
		if err != nil {
			return false
		}
		kk := k
		if n < kk {
			kk = n
		}
		return micro.CheckPartition(clusters, n, kk) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAggregateMidpoints(t *testing.T) {
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "id", Role: dataset.Identifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	for _, v := range []float64{10, 20, 40} {
		if err := tbl.AppendNumericRow(1, v, v); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Aggregate(tbl, []micro.Cluster{{Rows: []int{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Midpoint of [10,40] is 25 (not the mean 23.33).
	for r := 0; r < 3; r++ {
		if got := out.Value(r, 1); got != 25 {
			t.Errorf("row %d recoded to %v, want 25", r, got)
		}
		if out.Value(r, 0) != 0 {
			t.Error("identifier not blanked")
		}
		if out.Value(r, 2) != tbl.Value(r, 2) {
			t.Error("confidential modified")
		}
	}
}

func TestAggregateRejectsNonPartition(t *testing.T) {
	tbl := synth.Uniform(4, 1, 2)
	if _, err := Aggregate(tbl, []micro.Cluster{{Rows: []int{0}}}); err == nil {
		t.Error("incomplete partition should fail")
	}
}

func TestMondrianAnonymizedTableIsKAnonymous(t *testing.T) {
	tbl := synth.Census(400, synth.FedTax, 7)
	clusters, err := Mondrian(tbl, 5)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := Aggregate(tbl, clusters)
	if err != nil {
		t.Fatal(err)
	}
	k, err := privacy.KAnonymity(anon)
	if err != nil {
		t.Fatal(err)
	}
	if k < 5 {
		t.Errorf("k-anonymity = %d, want >= 5", k)
	}
}
