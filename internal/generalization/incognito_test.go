package generalization

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/privacy"
	"repro/internal/synth"
)

func TestIncognitoTValidation(t *testing.T) {
	tbl := synth.Uniform(20, 2, 1)
	if _, err := IncognitoT(nil, 2, 0.1, 0); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := IncognitoT(tbl, 0, 0.1, 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := IncognitoT(tbl, 2, 0, 0); err == nil {
		t.Error("t = 0 should fail")
	}
	if _, err := IncognitoT(tbl, 2, 1.5, 0); err == nil {
		t.Error("t > 1 should fail")
	}
}

func TestIncognitoTGuarantees(t *testing.T) {
	tbl := synth.Census(300, synth.FedTax, 7)
	for _, cfg := range []struct {
		k  int
		tl float64
	}{{2, 0.3}, {5, 0.2}, {10, 0.15}} {
		res, err := IncognitoT(tbl, cfg.k, cfg.tl, 6)
		if err != nil {
			t.Fatalf("k=%d t=%v: %v", cfg.k, cfg.tl, err)
		}
		if err := micro.CheckPartition(res.Clusters, tbl.Len(), cfg.k); err != nil {
			t.Fatalf("k=%d t=%v: %v", cfg.k, cfg.tl, err)
		}
		if res.MaxEMD > cfg.tl+1e-9 {
			t.Errorf("k=%d t=%v: MaxEMD %v", cfg.k, cfg.tl, res.MaxEMD)
		}
		tc, err := privacy.TClosenessOf(tbl, res.Clusters)
		if err != nil {
			t.Fatal(err)
		}
		if tc > cfg.tl+1e-9 {
			t.Errorf("independent t-closeness check: %v", tc)
		}
		if res.NodesChecked < 1 {
			t.Error("NodesChecked not reported")
		}
	}
}

func TestIncognitoTFindsBottomWhenTrivial(t *testing.T) {
	// With k=1 and a loose t, the exact data (levels all zero) satisfies
	// and must be selected: zero information loss dominates.
	tbl := synth.Uniform(50, 2, 9)
	res, err := IncognitoT(tbl, 1, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Levels {
		if l != 0 {
			t.Errorf("level[%d] = %d, want 0", i, l)
		}
	}
}

func TestIncognitoTStricterTNeedsCoarserNode(t *testing.T) {
	tbl := synth.Census(300, synth.Fica, 3)
	loose, err := IncognitoT(tbl, 2, 0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := IncognitoT(tbl, 2, 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(ls []int) int {
		s := 0
		for _, l := range ls {
			s += l
		}
		return s
	}
	if sum(strict.Levels) < sum(loose.Levels) {
		t.Errorf("stricter t chose a finer node: %v vs %v", strict.Levels, loose.Levels)
	}
}

func TestIncognitoTKLargerThanN(t *testing.T) {
	tbl := synth.Uniform(6, 2, 5)
	res, err := IncognitoT(tbl, 50, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Errorf("k > n should force a single class, got %d", len(res.Clusters))
	}
}

func TestIncognitoTRejectsCategoricalQI(t *testing.T) {
	catTbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "city", Role: dataset.QuasiIdentifier, Kind: dataset.Categorical},
		dataset.Attribute{Name: "salary", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	for _, city := range []string{"a", "b", "c", "d"} {
		if err := catTbl.AppendRow(city, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := IncognitoT(catTbl, 2, 0.3, 4); err == nil {
		t.Error("categorical quasi-identifier should be rejected")
	}
}

func TestRecodeMatchesSearchRelease(t *testing.T) {
	tbl := synth.Census(200, synth.FedTax, 11)
	res, err := IncognitoT(tbl, 3, 0.25, 6)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := Recode(tbl, res.Levels, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The recoded release must be k-anonymous at the found node.
	ka, err := privacy.KAnonymity(anon)
	if err != nil {
		t.Fatal(err)
	}
	if ka < 3 {
		t.Errorf("recoded release k-anonymity = %d", ka)
	}
}

func TestRecodeValidation(t *testing.T) {
	tbl := synth.Uniform(10, 2, 3)
	if _, err := Recode(tbl, []int{1}, 4); err == nil {
		t.Error("wrong level count should fail")
	}
	if _, err := Recode(tbl, []int{99, 0}, 4); err == nil {
		t.Error("out-of-range level should fail")
	}
}
