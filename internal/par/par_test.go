package par

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestCellsCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		n := 137
		hits := make([]int32, n)
		Cells(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]int32, n)
			Chunks(n, workers, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestPoolRunsEveryTaskAndReuses(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		if p.Size() < 1 {
			t.Fatalf("pool size %d", p.Size())
		}
		for round := 0; round < 50; round++ {
			n := 1 + round%7
			hits := make([]int32, n)
			p.Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d round=%d: task %d ran %d times", workers, round, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestArgminMatchesSerialScan pins the order-stable contract: at any worker
// count the winner equals the serial left-to-right first-strict-improvement
// scan, including on adversarial all-ties inputs.
func TestArgminMatchesSerialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sweep := []int{1, 2, 3, 8, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		vals := make([]float64, n)
		ivals := make([]int64, n)
		skip := make([]bool, n)
		for i := range vals {
			v := float64(rng.Intn(5)) // heavy ties
			vals[i] = v
			ivals[i] = int64(rng.Intn(5))
			skip[i] = rng.Intn(4) == 0
			if skip[i] {
				vals[i] = math.Inf(1)
			}
		}
		refF := -1
		for i, v := range vals {
			if !math.IsInf(v, 1) && (refF < 0 || v < vals[refF]) {
				refF = i
			}
		}
		refI := -1
		for i := range ivals {
			if skip[i] {
				continue
			}
			if refI < 0 || ivals[i] < ivals[refI] {
				refI = i
			}
		}
		for _, w := range sweep {
			if got := ArgminFloat64(n, w, func(i int) float64 { return vals[i] }); got != refF {
				t.Fatalf("trial %d workers=%d: ArgminFloat64 = %d, serial = %d", trial, w, got, refF)
			}
			if got := ArgminInt64(n, w, func(i int) bool { return skip[i] }, func(i int) int64 { return ivals[i] }); got != refI {
				t.Fatalf("trial %d workers=%d: ArgminInt64 = %d, serial = %d", trial, w, got, refI)
			}
		}
	}
}

func TestArgminAllSkipped(t *testing.T) {
	for _, w := range []int{1, 4} {
		// All-+Inf inputs follow the serial first-strict-improvement scan:
		// the first index is accepted (best < 0) and never displaced.
		if got := ArgminFloat64(10, w, func(int) float64 { return math.Inf(1) }); got != 0 {
			t.Fatalf("workers=%d: ArgminFloat64 all +Inf = %d, want 0", w, got)
		}
		if got := ArgminInt64(10, w, func(int) bool { return true }, func(int) int64 { return 0 }); got != -1 {
			t.Fatalf("workers=%d: ArgminInt64 with all skipped = %d, want -1", w, got)
		}
		if got := ArgminFloat64(0, w, func(int) float64 { return 0 }); got != -1 {
			t.Fatalf("workers=%d: ArgminFloat64 n=0 = %d, want -1", w, got)
		}
	}
}
