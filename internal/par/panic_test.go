package par

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// recoverPanic runs fn and returns the recovered panic value (nil when fn
// returns normally).
func recoverPanic(fn func()) (v any) {
	defer func() { v = recover() }()
	fn()
	return nil
}

// wantWorkerPanic asserts that v is a *Panic wrapping the given value with
// a non-empty worker stack that still names this package's test frame.
func wantWorkerPanic(t *testing.T, v any, value string) *Panic {
	t.Helper()
	p, ok := v.(*Panic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *par.Panic", v, v)
	}
	if got, _ := p.Value.(string); got != value {
		t.Fatalf("panic value = %v, want %q", p.Value, value)
	}
	if len(p.Stack) == 0 {
		t.Fatalf("panic carries no worker stack")
	}
	if !strings.Contains(p.String(), value) {
		t.Fatalf("String() = %q does not contain the panic value", p.String())
	}
	var err error = p
	if err.Error() == "" {
		t.Fatalf("empty Error()")
	}
	return p
}

func TestCellsPanicReRaisedOnCaller(t *testing.T) {
	var ran atomic.Int32
	v := recoverPanic(func() {
		Cells(64, 4, func(i int) {
			if i == 13 {
				panic("cell boom")
			}
			ran.Add(1)
		})
	})
	p := wantWorkerPanic(t, v, "cell boom")
	if !strings.Contains(string(p.Stack), "par.TestCellsPanicReRaisedOnCaller") &&
		!strings.Contains(string(p.Stack), "par_test") && !strings.Contains(string(p.Stack), "panic_test") {
		// The stack is from the worker goroutine; it must at least show the
		// panicking closure's frames rather than the caller's.
		if !strings.Contains(string(p.Stack), "goroutine") {
			t.Fatalf("stack looks empty:\n%s", p.Stack)
		}
	}
	if int(ran.Load()) >= 64 {
		t.Fatalf("all cells ran despite panic")
	}
}

func TestChunksPanicReRaisedOnCaller(t *testing.T) {
	v := recoverPanic(func() {
		Chunks(100, 4, func(w, lo, hi int) {
			if w == 2 {
				panic("chunk boom")
			}
		})
	})
	wantWorkerPanic(t, v, "chunk boom")
}

func TestChunksSerialPanicUnwrapped(t *testing.T) {
	// The single-chunk fallback runs inline on the caller: the raw panic
	// value must propagate unwrapped, as it always has.
	v := recoverPanic(func() {
		Chunks(5, 1, func(w, lo, hi int) { panic("inline boom") })
	})
	if s, _ := v.(string); s != "inline boom" {
		t.Fatalf("serial panic = %v (%T), want raw string", v, v)
	}
}

func TestArgminPanicReRaisedOnCaller(t *testing.T) {
	v := recoverPanic(func() {
		ArgminFloat64(100, 4, func(i int) float64 {
			if i == 57 {
				panic("eval boom")
			}
			return float64(i)
		})
	})
	wantWorkerPanic(t, v, "eval boom")

	v = recoverPanic(func() {
		ArgminInt64(100, 4, nil, func(i int) int64 {
			if i == 3 {
				panic("eval64 boom")
			}
			return int64(i)
		})
	})
	wantWorkerPanic(t, v, "eval64 boom")
}

// TestPoolPanicNoDeadlockNoLeak pins the three pool guarantees of the
// robustness contract: a panicking task re-raises on the Run caller rather
// than crashing the process, Run neither deadlocks nor leaks goroutines,
// and the same pool keeps working for later rounds.
func TestPoolPanicNoDeadlockNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)

	done := make(chan any, 1)
	go func() {
		done <- recoverPanic(func() {
			p.Run(128, func(i int) {
				if i%17 == 5 {
					panic("task boom")
				}
			})
		})
	}()
	select {
	case v := <-done:
		wantWorkerPanic(t, v, "task boom")
	case <-time.After(30 * time.Second):
		t.Fatal("Pool.Run deadlocked on a panicking round")
	}

	// The pool survives the poisoned round: a clean round still runs every
	// task exactly once.
	var ran atomic.Int32
	p.Run(200, func(i int) { ran.Add(1) })
	if ran.Load() != 200 {
		t.Fatalf("post-panic round ran %d/200 tasks", ran.Load())
	}

	// And a second panicking round still re-raises (the box is per-round).
	v := recoverPanic(func() {
		p.Run(8, func(i int) { panic("again") })
	})
	wantWorkerPanic(t, v, "again")

	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after close", before, g)
	}
}

func TestPoolSerialPanicUnwrapped(t *testing.T) {
	p := NewPool(1) // degenerate pool: tasks run inline
	defer p.Close()
	v := recoverPanic(func() {
		p.Run(3, func(i int) { panic(errors.New("inline")) })
	})
	if _, ok := v.(*Panic); ok {
		t.Fatalf("inline panic was wrapped; want raw value")
	}
	if err, _ := v.(error); err == nil || err.Error() != "inline" {
		t.Fatalf("inline panic = %v, want raw error", v)
	}
}

// TestNestedFanoutPanicNotDoubleWrapped pins that a panic crossing two
// fan-out layers (Pool task running Chunks, as the sharded partition loops
// do) surfaces as a single *Panic with the innermost worker's stack.
func TestNestedFanoutPanicNotDoubleWrapped(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	v := recoverPanic(func() {
		p.Run(4, func(i int) {
			Chunks(16, 2, func(w, lo, hi int) {
				if i == 1 && w == 1 {
					panic("deep boom")
				}
			})
		})
	})
	wantWorkerPanic(t, v, "deep boom")
}
