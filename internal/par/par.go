// Package par holds the small concurrency helpers shared by the benchmark
// drivers.
package par

import "sync"

// Cells evaluates n independent work items on a bounded pool of worker
// goroutines and returns when all are done. Each item must write only its
// own result slot, which keeps the overall output deterministic regardless
// of scheduling. workers < 1 is treated as 1.
func Cells(n, workers int, cell func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cell(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
