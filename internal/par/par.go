// Package par holds the small concurrency primitives shared by the
// partition loops and the benchmark drivers: a bounded one-shot fan-out
// (Cells), a reusable fixed-size worker pool (Pool) for loops that fan out
// thousands of times, and order-stable argmin reductions whose results are
// bit-identical to the serial left-to-right scan at any worker count.
//
// # Panic isolation
//
// A panic inside a task does not crash the process from an anonymous
// worker goroutine: every fan-out recovers worker panics, lets the round
// finish (remaining tasks are skipped once a panic is recorded), and
// re-raises the first panic on the submitting goroutine as a *Panic
// carrying the original value and the panicking worker's stack. Callers
// that recover engine panics — the serving layer — therefore see them on
// the goroutine that called Run/Cells/Chunks, with the worker stack
// preserved, and the pool itself stays usable for later rounds. On the
// serial fallbacks (degenerate pool, single chunk) tasks run inline, so a
// panic propagates on the caller's goroutine unwrapped, exactly as before.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Panic is a worker panic re-raised on the submitting goroutine. Value is
// the original panic value; Stack is the stack of the panicking worker
// goroutine, captured at recovery time.
type Panic struct {
	Value any
	Stack []byte
}

// Error makes *Panic an error, so services recovering it can store and
// classify it like any other failure.
func (p *Panic) Error() string {
	return fmt.Sprintf("par: worker panic: %v", p.Value)
}

// String returns the panic value followed by the captured worker stack.
func (p *Panic) String() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.Value, p.Stack)
}

// panicBox records the first panic of one fan-out round. Later panics of
// the same round are dropped: the round fails once, deterministically, on
// the earliest recovery.
type panicBox struct {
	tripped atomic.Bool
	mu      sync.Mutex
	p       *Panic
}

// run executes fn, recording a recovered panic. Once the box is tripped,
// remaining tasks of the round are skipped — their results would be
// discarded by the re-raise anyway, and skipping lets a poisoned round
// drain quickly.
func (b *panicBox) run(fn func()) {
	if b.tripped.Load() {
		return
	}
	defer func() {
		if v := recover(); v != nil {
			b.record(v)
		}
	}()
	fn()
}

// record stores the first panic of the round, preserving an already
// wrapped *Panic (a nested fan-out) instead of double-wrapping it.
func (b *panicBox) record(v any) {
	b.mu.Lock()
	if b.p == nil {
		if p, ok := v.(*Panic); ok {
			b.p = p
		} else {
			b.p = &Panic{Value: v, Stack: debug.Stack()}
		}
		b.tripped.Store(true)
	}
	b.mu.Unlock()
}

// rethrow re-raises the recorded panic, if any, on the calling goroutine.
// It must be called after the round's workers are known to be done, so the
// read is ordered after every record.
func (b *panicBox) rethrow() {
	if b.tripped.Load() {
		b.mu.Lock()
		p := b.p
		b.mu.Unlock()
		panic(p)
	}
}

// Cells evaluates n independent work items on a bounded pool of worker
// goroutines and returns when all are done. Each item must write only its
// own result slot, which keeps the overall output deterministic regardless
// of scheduling. workers < 1 is treated as 1.
func Cells(n, workers int, cell func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var box panicBox
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The recover inside box.run keeps the worker consuming after a
			// task panics, so the feeding loop below can never block on a
			// dead pool.
			for i := range work {
				box.run(func() { cell(i) })
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	box.rethrow()
}

// Chunks splits [0, n) into at most workers near-equal contiguous chunks and
// evaluates fn(w, lo, hi) for each on its own goroutine, returning when all
// are done. Chunk boundaries depend only on (n, workers), so any per-chunk
// result written to slot w is deterministic. workers < 1 is treated as 1; a
// single chunk runs on the calling goroutine with no fan-out at all, so
// serial callers pay nothing.
func Chunks(n, workers int, fn func(w, lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	var box panicBox
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			box.run(func() { fn(w, w*n/workers, (w+1)*n/workers) })
		}(w)
	}
	wg.Wait()
	box.rethrow()
}

// Pool is a reusable fixed-size worker pool for loops that fan out many
// times (one fan-out per partition round, say): the goroutines are spawned
// once and fed through a channel, so a round pays only the channel handoff
// instead of a spawn per task. Run blocks until every task of the round is
// done, making rounds strictly sequential; tasks within a round must touch
// disjoint state (their own shard, their own result slot), which keeps the
// outcome deterministic regardless of scheduling.
//
// A Pool is owned by a single running goroutine: Run must not be called
// concurrently. Close releases the workers; a closed pool must not be used
// again.
type Pool struct {
	workers int
	work    chan poolTask
	wg      sync.WaitGroup
}

type poolTask struct {
	i    int
	fn   func(int)
	done *sync.WaitGroup
	box  *panicBox
}

// exec runs the task with panic capture, always signalling completion so a
// panicking round can neither deadlock Run nor kill the pooled worker.
func (t poolTask) exec() {
	defer t.done.Done()
	t.box.run(func() { t.fn(t.i) })
}

// NewPool spawns a pool of the given size. Sizes < 2 return a degenerate
// pool whose Run executes inline on the caller — the serial fallback every
// gated parallel seam relies on, costing nothing when tuning says one
// worker.
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers < 2 {
		return p
	}
	p.work = make(chan poolTask)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.work {
				t.exec()
			}
		}()
	}
	return p
}

// Size returns the pool's worker count (at least 1).
func (p *Pool) Size() int {
	if p.workers < 1 {
		return 1
	}
	return p.workers
}

// Run evaluates task(i) for i in [0, n) across the pool and returns when
// all are done. Tasks must write only their own result slots. On a
// degenerate (serial) pool the tasks run inline in index order.
func (p *Pool) Run(n int, task func(i int)) {
	if p.work == nil || n <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var done sync.WaitGroup
	var box panicBox
	done.Add(n)
	for i := 0; i < n; i++ {
		p.work <- poolTask{i: i, fn: task, done: &done, box: &box}
	}
	done.Wait()
	box.rethrow()
}

// Close shuts the pool's workers down. Safe on a degenerate pool.
func (p *Pool) Close() {
	if p.work != nil {
		close(p.work)
		p.wg.Wait()
		p.work = nil
	}
}

// ArgminFloat64 returns the index minimizing eval(i) over [0, n), breaking
// ties toward the lowest index — exactly the winner of the serial
// left-to-right scan that keeps the first strict improvement. Indices the
// caller wants skipped must evaluate to +Inf, which only loses to real
// candidates when real (finite) candidates exist — as in every partition
// loop, whose costs are finite. eval must never return NaN: a NaN poisons
// whichever scan first accepts it (every later < comparison is false), so
// the winner would depend on which chunk held it — breaking the
// worker-count invariance this package guarantees. n = 0 returns -1. Chunk
// boundaries and the chunk-ordered combine depend only on (n, workers), so
// the result is bit-identical at any worker count. eval must be safe for
// concurrent calls
// on distinct indices.
func ArgminFloat64(n, workers int, eval func(i int) float64) int {
	if workers < 2 || n < 2 {
		best, bestV := -1, 0.0
		for i := 0; i < n; i++ {
			if v := eval(i); best < 0 || v < bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	if workers > n {
		workers = n
	}
	bestIdx := make([]int, workers)
	bestVal := make([]float64, workers)
	Chunks(n, workers, func(w, lo, hi int) {
		best, bestV := -1, 0.0
		for i := lo; i < hi; i++ {
			if v := eval(i); best < 0 || v < bestV {
				best, bestV = i, v
			}
		}
		bestIdx[w], bestVal[w] = best, bestV
	})
	best, bestV := -1, 0.0
	for w := 0; w < workers; w++ {
		if bestIdx[w] >= 0 && (best < 0 || bestVal[w] < bestV) {
			best, bestV = bestIdx[w], bestVal[w]
		}
	}
	return best
}

// ArgminInt64 is ArgminFloat64 over int64 costs with an explicit skip
// predicate: indices where skip(i) is true never win. It returns -1 when
// every index is skipped.
func ArgminInt64(n, workers int, skip func(i int) bool, eval func(i int) int64) int {
	if workers < 2 || n < 2 {
		best := -1
		var bestV int64
		for i := 0; i < n; i++ {
			if skip != nil && skip(i) {
				continue
			}
			if v := eval(i); best < 0 || v < bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	if workers > n {
		workers = n
	}
	bestIdx := make([]int, workers)
	bestVal := make([]int64, workers)
	Chunks(n, workers, func(w, lo, hi int) {
		best := -1
		var bestV int64
		for i := lo; i < hi; i++ {
			if skip != nil && skip(i) {
				continue
			}
			if v := eval(i); best < 0 || v < bestV {
				best, bestV = i, v
			}
		}
		bestIdx[w], bestVal[w] = best, bestV
	})
	best := -1
	var bestV int64
	for w := 0; w < workers; w++ {
		if bestIdx[w] >= 0 && (best < 0 || bestVal[w] < bestV) {
			best, bestV = bestIdx[w], bestVal[w]
		}
	}
	return best
}
