package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/dataset"
)

// replayHooks receive committed content during a file replay. Either hook
// may be nil; chunk sees snapshot and append chunks in commit order, tomb
// sees each deletion epoch's removed row ids (in the numbering of the
// epoch it was committed against, ascending, unique).
type replayHooks struct {
	chunk func(schema *dataset.Schema, ch ColumnChunk) error
	tomb  func(rowIDs []int) error
}

// corruptf wraps ErrCorrupt with position detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// readBlock reads one block from r; remain is how many bytes the file
// still holds, so a length field claiming more than the file can contain
// fails as a truncated block before allocating anything. It returns
// io.EOF at a clean block boundary, io.ErrUnexpectedEOF when the file
// ends mid-block, and ErrCorrupt on a checksum mismatch or impossible
// length.
func readBlock(r *bufio.Reader, remain int64) (kind byte, payload []byte, size int64, err error) {
	kind, err = r.ReadByte()
	if err == io.EOF {
		return 0, nil, 0, io.EOF
	}
	if err != nil {
		return 0, nil, 0, err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxBlockLen {
		return 0, nil, 0, corruptf("block length %d exceeds limit", n)
	}
	if int64(n) > remain-(1+4+4) {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	want := binary.LittleEndian.Uint32(crcb[:])
	got := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, payload)
	if got != want {
		return 0, nil, 0, corruptf("block checksum mismatch (kind %d, %d bytes)", kind, n)
	}
	return kind, payload, int64(1) + 4 + int64(n) + 4, nil
}

// scanValid walks the whole file verifying framing and checksums, and
// returns the end offset of the last commit block — the committed region
// replayCommitted is allowed to decode. A torn tail (truncation after at
// least one commit) is tolerated per the crash-safety contract; a file
// with no commit at all is ErrTruncated; a checksum mismatch anywhere is
// ErrCorrupt.
func scanValid(r io.Reader, fileSize int64) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [len(magic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return 0, fmt.Errorf("%w: missing header", ErrTruncated)
	}
	if string(m[:]) != magic {
		return 0, corruptf("bad magic %q", m[:])
	}
	off := int64(len(magic))
	lastCommitEnd := int64(0)
	for {
		kind, _, size, err := readBlock(br, fileSize-off)
		switch {
		case err == io.EOF || err == io.ErrUnexpectedEOF:
			if lastCommitEnd == 0 {
				return 0, ErrTruncated
			}
			return lastCommitEnd, nil
		case err != nil:
			return 0, err
		}
		off += size
		if kind == kindCommit {
			lastCommitEnd = off
		}
	}
}

// replayState is the pass-2 decoder: it walks the committed region,
// enforces the epoch structure, rebuilds the write-side state, and feeds
// the hooks.
type replayState struct {
	fileState
	hooks   replayHooks
	commits int // commit blocks decoded so far (snapshot included)

	// staging for the epoch under assembly.
	pendingDict [][]string
	pendingSegs [][]float64
	pendingTomb []int
	hasTomb     bool
	epochRows   int // rows applied since the last commit
}

func (rs *replayState) width() int { return rs.schema.Len() }

func (rs *replayState) onSchema(p []byte) error {
	if rs.schema != nil {
		return corruptf("duplicate schema block")
	}
	r := payloadReader{b: p}
	n := int(r.u32())
	if r.bad || n <= 0 || n > 1<<20 {
		return corruptf("schema attribute count %d", n)
	}
	attrs := make([]dataset.Attribute, 0, n)
	for i := 0; i < n; i++ {
		name := r.str()
		role, kind := r.u8(), r.u8()
		if r.bad {
			return corruptf("schema block short at attribute %d", i)
		}
		if role > byte(dataset.NonConfidential) || kind > byte(dataset.Categorical) {
			return corruptf("attribute %q has role %d kind %d", name, role, kind)
		}
		attrs = append(attrs, dataset.Attribute{
			Name: name, Role: dataset.Role(role), Kind: dataset.Kind(kind),
		})
	}
	if !r.done() {
		return corruptf("schema block has trailing bytes")
	}
	schema, err := dataset.NewSchema(attrs...)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rs.schema = schema
	rs.dictLens = make([]int, schema.Len())
	return nil
}

func (rs *replayState) onDict(p []byte) error {
	if rs.schema == nil {
		return corruptf("dictionary page before schema")
	}
	if len(rs.pendingSegs) > 0 || rs.hasTomb {
		return corruptf("dictionary page inside a chunk or deletion epoch")
	}
	r := payloadReader{b: p}
	col, n := int(r.u32()), int(r.u32())
	if r.bad || col < 0 || col >= rs.width() {
		return corruptf("dictionary page column %d", col)
	}
	if rs.schema.Attr(col).Kind != dataset.Categorical {
		return corruptf("dictionary page on numeric column %d", col)
	}
	labels := make([]string, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		labels = append(labels, r.str())
	}
	if !r.done() {
		return corruptf("dictionary page malformed")
	}
	if rs.pendingDict == nil {
		rs.pendingDict = make([][]string, rs.width())
	}
	rs.pendingDict[col] = append(rs.pendingDict[col], labels...)
	rs.dictLens[col] += len(labels)
	return nil
}

func (rs *replayState) onSegment(p []byte) error {
	if rs.schema == nil {
		return corruptf("segment before schema")
	}
	if rs.hasTomb {
		return corruptf("segment inside a deletion epoch")
	}
	r := payloadReader{b: p}
	col, n := int(r.u32()), int(r.u32())
	if r.bad || col != len(rs.pendingSegs) || col >= rs.width() {
		return corruptf("segment for column %d, expected column %d", col, len(rs.pendingSegs))
	}
	if int64(len(p)) != 8+8*int64(n) {
		return corruptf("segment of column %d declares %d rows in %d bytes", col, n, len(p))
	}
	if col > 0 && n != len(rs.pendingSegs[0]) {
		return corruptf("segment of column %d has %d rows, chunk has %d", col, n, len(rs.pendingSegs[0]))
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(r.u64())
	}
	rs.pendingSegs = append(rs.pendingSegs, vals)
	if len(rs.pendingSegs) == rs.width() {
		return rs.finishChunk()
	}
	return nil
}

// finishChunk seals the staged chunk and delivers it.
func (rs *replayState) finishChunk() error {
	ch := ColumnChunk{Rows: len(rs.pendingSegs[0]), Cols: rs.pendingSegs, DictDelta: rs.pendingDict}
	rs.pendingSegs, rs.pendingDict = nil, nil
	rs.rows += ch.Rows
	rs.epochRows += ch.Rows
	if rs.hooks.chunk != nil {
		if err := rs.hooks.chunk(rs.schema, ch); err != nil {
			return err
		}
	}
	return nil
}

func (rs *replayState) onTombstone(p []byte) error {
	if rs.schema == nil {
		return corruptf("tombstone before schema")
	}
	if len(rs.pendingSegs) > 0 || rs.pendingDict != nil || rs.hasTomb {
		return corruptf("tombstone inside a chunk or duplicated")
	}
	r := payloadReader{b: p}
	n := int(r.u32())
	if r.bad || int64(len(p)) != 4+4*int64(n) {
		return corruptf("tombstone declares %d ids in %d bytes", n, len(p))
	}
	ids := make([]int, n)
	prev := -1
	for i := range ids {
		id := int(r.u32())
		if id <= prev || id >= rs.rows {
			return corruptf("tombstone id %d out of order or range (rows %d)", id, rs.rows)
		}
		ids[i], prev = id, id
	}
	rs.pendingTomb, rs.hasTomb = ids, true
	return nil
}

func (rs *replayState) onCommit(p []byte) error {
	if rs.schema == nil {
		return corruptf("commit before schema")
	}
	if len(rs.pendingSegs) > 0 {
		return corruptf("commit with a partial chunk staged")
	}
	if rs.pendingDict != nil {
		return corruptf("commit with dictionary pages but no segments")
	}
	r := payloadReader{b: p}
	ekind := r.u8()
	epoch := int(r.u32())
	totalRows, deltaRows := r.u64(), r.u64()
	r.u64() // manifest digest; verified against the rolling state by the caller
	if r.bad || !r.done() {
		return corruptf("commit block malformed")
	}
	if rs.commits == 0 {
		if ekind != epochSnapshot || epoch != 0 {
			return corruptf("first commit must be snapshot epoch 0 (kind %d, epoch %d)", ekind, epoch)
		}
	} else {
		if ekind != epochAppend && ekind != epochDelete {
			return corruptf("commit kind %d after the snapshot", ekind)
		}
		if epoch != rs.epoch+1 {
			return corruptf("epoch %d after epoch %d", epoch, rs.epoch)
		}
	}
	switch ekind {
	case epochSnapshot, epochAppend:
		if rs.hasTomb {
			return corruptf("append commit with a tombstone staged")
		}
		if int(deltaRows) != rs.epochRows {
			return corruptf("commit declares %d new rows, epoch staged %d", deltaRows, rs.epochRows)
		}
		if ekind == epochAppend {
			rs.epoch = epoch
			rs.epochs = append(rs.epochs, Epoch{Appended: rs.epochRows})
		}
	case epochDelete:
		if !rs.hasTomb || rs.epochRows != 0 {
			return corruptf("delete commit without exactly one tombstone")
		}
		oldToNew := oldToNewMap(rs.rows, rs.pendingTomb)
		if rs.hooks.tomb != nil {
			if err := rs.hooks.tomb(rs.pendingTomb); err != nil {
				return err
			}
		}
		rs.rows -= len(rs.pendingTomb)
		rs.epoch = epoch
		rs.epochs = append(rs.epochs, Epoch{OldToNew: oldToNew})
		rs.pendingTomb, rs.hasTomb = nil, false
	}
	if int(totalRows) != rs.rows {
		return corruptf("commit declares %d total rows, replay has %d", totalRows, rs.rows)
	}
	rs.epochRows = 0
	rs.commits++
	return nil
}

// load opens and replays the committed region of a dataset file,
// returning freshly rebuilt write-side state.
func (b *FileBackend) load(name string, hooks replayHooks) (*fileState, error) {
	path := b.path(name)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
		}
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	validEnd, err := scanValid(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	st, err := replayCommitted(f, validEnd, hooks)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// replayCommitted decodes exactly the committed region [0, validEnd) of
// src, which scanValid has already checksum-verified.
func replayCommitted(src io.Reader, validEnd int64, hooks replayHooks) (*fileState, error) {
	br := bufio.NewReaderSize(src, 1<<16)
	if _, err := io.ReadFull(br, make([]byte, len(magic))); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	rs := &replayState{hooks: hooks}
	off := int64(len(magic))
	for off < validEnd {
		kind, payload, size, err := readBlock(br, validEnd-off)
		if err != nil {
			return nil, corruptf("committed region unreadable at offset %d: %v", off, err)
		}
		off += size
		if off > validEnd {
			return nil, corruptf("block crosses the committed boundary")
		}
		if kind == kindCommit {
			// The manifest digest attests every block before this commit.
			pr := payloadReader{b: payload}
			pr.u8()
			pr.u32()
			pr.u64()
			pr.u64()
			if manifest := pr.u64(); !pr.bad && manifest != rs.rolling {
				return nil, corruptf("commit manifest digest mismatch before offset %d", off)
			}
		}
		blockCRC := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, payload)
		switch kind {
		case kindSchema:
			err = rs.onSchema(payload)
		case kindDict:
			err = rs.onDict(payload)
		case kindSegment:
			err = rs.onSegment(payload)
		case kindTombstone:
			err = rs.onTombstone(payload)
		case kindCommit:
			err = rs.onCommit(payload)
		default:
			err = corruptf("unknown block kind %d", kind)
		}
		if err != nil {
			return nil, err
		}
		rs.rolling = rollCRC(rs.rolling, blockCRC)
	}
	if rs.schema == nil || rs.commits == 0 {
		return nil, ErrTruncated
	}
	return &rs.fileState, nil
}
