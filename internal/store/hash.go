package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/dataset"
)

// TableHash returns a hex SHA-256 fingerprint of a table's full logical
// content: schema (names, roles, kinds), dictionaries (labels in code
// order), and every column's values as exact float64 bits. Two tables
// with equal hashes are bit-identical for the engine — same releases,
// same future code assignments — so the hash is what the restart
// conformance checks compare across a snapshot/reopen boundary.
func TableHash(t *dataset.Table) string {
	h := sha256.New()
	var b8 [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		h.Write(b8[:])
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	s := t.Schema()
	wu(uint64(s.Len()))
	for c := 0; c < s.Len(); c++ {
		a := s.Attr(c)
		ws(a.Name)
		wu(uint64(a.Role))
		wu(uint64(a.Kind))
	}
	wu(uint64(t.Len()))
	for c := 0; c < s.Len(); c++ {
		dict := t.Dict(c)
		wu(uint64(len(dict)))
		for _, l := range dict {
			ws(l)
		}
		for _, v := range t.ColumnView(c) {
			wu(math.Float64bits(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
