package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// Stream must replay the exact committed history Open materializes —
// chunks and tombstones interleaved in commit order — so a handler that
// applies every event reconstructs a bit-identical table, on both
// backends, across random epoch histories.
func TestStreamReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		tbl := randomTable(rng)
		for kind, b := range backends(t) {
			name := fmt.Sprintf("ds-%d", trial)
			if err := Write(b, name, tbl); err != nil {
				t.Fatal(err)
			}
			cur := tbl.Clone()
			for e := 0; e < 4; e++ {
				if cur.Len() > 2 && rng.Intn(2) == 0 {
					var ids []int
					for r := 0; r < cur.Len(); r++ {
						if rng.Intn(4) == 0 {
							ids = append(ids, r)
						}
					}
					if err := b.DeleteEpoch(name, ids); err != nil {
						t.Fatalf("%s delete: %v", kind, err)
					}
					keep := make([]int, 0, cur.Len())
					seen := make(map[int]bool, len(ids))
					for _, id := range ids {
						seen[id] = true
					}
					for r := 0; r < cur.Len(); r++ {
						if !seen[r] {
							keep = append(keep, r)
						}
					}
					sub, err := cur.Subset(keep)
					if err != nil {
						t.Fatal(err)
					}
					cur = sub
					continue
				}
				from, lens := cur.Len(), DictLens(cur)
				n := 1 + rng.Intn(10)
				for r := 0; r < n; r++ {
					vals := make([]any, cur.Width())
					for c := 0; c < cur.Width(); c++ {
						if cur.Schema().Attr(c).Kind == dataset.Categorical {
							vals[c] = fmt.Sprintf("new-%d-%d-%d", e, r, rng.Intn(3))
						} else {
							vals[c] = rng.NormFloat64()
						}
					}
					if err := cur.AppendRow(vals...); err != nil {
						t.Fatal(err)
					}
				}
				if err := AppendRows(b, name, cur, from, lens); err != nil {
					t.Fatalf("%s append: %v", kind, err)
				}
			}

			wantTbl, wantEpochs, err := b.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			var rebuilt *dataset.Table
			beginRows := -1
			epochs, err := b.Stream(name, StreamHandler{
				Begin: func(s *dataset.Schema, rows int) error {
					beginRows = rows
					var err error
					rebuilt, err = dataset.NewTable(s)
					return err
				},
				Chunk: func(ch ColumnChunk) error { return applyChunk(rebuilt, ch) },
				Tombstone: func(ids []int) error {
					keep := make([]int, 0, rebuilt.Len()-len(ids))
					ti := 0
					for r := 0; r < rebuilt.Len(); r++ {
						if ti < len(ids) && ids[ti] == r {
							ti++
							continue
						}
						keep = append(keep, r)
					}
					sub, err := rebuilt.Subset(keep)
					if err != nil {
						return err
					}
					rebuilt = sub
					return nil
				},
			})
			if err != nil {
				t.Fatalf("%s stream: %v", kind, err)
			}
			if beginRows != wantTbl.Len() {
				t.Fatalf("%s: Begin rows hint %d, final table has %d", kind, beginRows, wantTbl.Len())
			}
			requireTablesIdentical(t, wantTbl, rebuilt)
			if len(epochs) != len(wantEpochs) {
				t.Fatalf("%s: stream returned %d epochs, Open %d", kind, len(epochs), len(wantEpochs))
			}
			for i := range epochs {
				if epochs[i].Appended != wantEpochs[i].Appended ||
					fmt.Sprint(epochs[i].OldToNew) != fmt.Sprint(wantEpochs[i].OldToNew) {
					t.Fatalf("%s epoch %d: %+v, want %+v", kind, i, epochs[i], wantEpochs[i])
				}
			}
		}
	}
}

// All-nil hooks are allowed: Stream then only returns the epoch log.
func TestStreamNilHooks(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(12)))
	for kind, b := range backends(t) {
		if err := Write(b, "ds", tbl); err != nil {
			t.Fatal(err)
		}
		if err := b.DeleteEpoch("ds", []int{0}); err != nil {
			t.Fatal(err)
		}
		epochs, err := b.Stream("ds", StreamHandler{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(epochs) != 1 || epochs[0].OldToNew == nil {
			t.Fatalf("%s: epochs %+v, want one deletion epoch", kind, epochs)
		}
		if _, err := b.Stream("missing", StreamHandler{}); !errors.Is(err, ErrUnknownDataset) {
			t.Fatalf("%s: unknown dataset error %v", kind, err)
		}
	}
}

// A .tcs file whose name cannot be unescaped must be surfaced by List as
// a StrayFilesError — alongside the valid names, never silently dropped.
func TestListSurfacesStrayFiles(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(b, "good", randomTable(rand.New(rand.NewSource(13)))); err != nil {
		t.Fatal(err)
	}
	// "%zz" is not a valid escape, so this name cannot have been written
	// by the backend (it always writes url.PathEscape output).
	stray := "%zz-bogus.tcs"
	if err := os.WriteFile(filepath.Join(dir, stray), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := b.List()
	if len(names) != 1 || names[0] != "good" {
		t.Fatalf("names %v, want [good]", names)
	}
	var strays *StrayFilesError
	if !errors.As(err, &strays) {
		t.Fatalf("List error %v, want a *StrayFilesError", err)
	}
	if len(strays.Files) != 1 || strays.Files[0] != stray {
		t.Fatalf("stray files %v, want [%s]", strays.Files, stray)
	}

	// A clean directory reports no error at all.
	if err := os.Remove(filepath.Join(dir, stray)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.List(); err != nil {
		t.Fatalf("List after cleanup: %v", err)
	}
}
