package store

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/dataset"
)

// lockState returns the dataset's write-side state with its mutex held
// (the caller must unlock), loading it from disk on first use. A state
// poisoned by a failed write (schema cleared) is transparently reloaded,
// so the cache always mirrors what is durably on disk.
func (b *FileBackend) lockState(name string) (*fileState, error) {
	b.mu.Lock()
	st, ok := b.states[name]
	if !ok {
		st = &fileState{}
		b.states[name] = st
	}
	b.mu.Unlock()
	st.mu.Lock()
	if st.schema == nil {
		fresh, err := b.load(name, replayHooks{})
		if err != nil {
			st.mu.Unlock()
			b.mu.Lock()
			if b.states[name] == st {
				delete(b.states, name)
			}
			b.mu.Unlock()
			return nil, err
		}
		st.schema = fresh.schema
		st.rows = fresh.rows
		st.epoch = fresh.epoch
		st.epochs = fresh.epochs
		st.dictLens = fresh.dictLens
		st.rolling = fresh.rolling
	}
	return st, nil
}

// Open implements Backend: a full replay materializing the table with
// every committed epoch (appends and tombstones) applied.
func (b *FileBackend) Open(name string) (*dataset.Table, []Epoch, error) {
	st, err := b.lockState(name)
	if err != nil {
		return nil, nil, err
	}
	defer st.mu.Unlock()
	var tbl *dataset.Table
	fresh, err := b.load(name, replayHooks{
		chunk: func(s *dataset.Schema, ch ColumnChunk) error {
			if tbl == nil {
				var err error
				if tbl, err = dataset.NewTable(s); err != nil {
					return err
				}
			}
			// A chunk the table rejects (duplicate dictionary labels, codes
			// out of range) is invalid persisted data, not a caller mistake.
			if err := applyChunk(tbl, ch); err != nil {
				return corruptf("applying chunk: %v", err)
			}
			return nil
		},
		tomb: func(ids []int) error {
			keep := make([]int, 0, tbl.Len()-len(ids))
			ti := 0
			for r := 0; r < tbl.Len(); r++ {
				if ti < len(ids) && ids[ti] == r {
					ti++
					continue
				}
				keep = append(keep, r)
			}
			sub, err := tbl.Subset(keep)
			if err != nil {
				return err
			}
			tbl = sub
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if tbl == nil {
		if tbl, err = dataset.NewTable(fresh.schema); err != nil {
			return nil, nil, err
		}
	}
	return tbl, fresh.epochs, nil
}

// Chunks implements Backend, streaming committed chunks without
// materializing the table.
func (b *FileBackend) Chunks(name string, fn func(*dataset.Schema, ColumnChunk) error) error {
	st, err := b.lockState(name)
	if err != nil {
		return err
	}
	defer st.mu.Unlock()
	_, err = b.load(name, replayHooks{chunk: fn})
	return err
}

// Stream implements Backend. The replay is necessarily a second pass
// over the file (scanValid must find the last commit first so torn tails
// never reach the handler), but it decodes one chunk at a time — nothing
// beyond the current chunk is resident.
func (b *FileBackend) Stream(name string, h StreamHandler) ([]Epoch, error) {
	st, err := b.lockState(name)
	if err != nil {
		return nil, err
	}
	defer st.mu.Unlock()
	if h.Begin != nil {
		if err := h.Begin(st.schema, st.rows); err != nil {
			return nil, err
		}
	}
	var chunk func(*dataset.Schema, ColumnChunk) error
	if h.Chunk != nil {
		chunk = func(_ *dataset.Schema, ch ColumnChunk) error { return h.Chunk(ch) }
	}
	fresh, err := b.load(name, replayHooks{chunk: chunk, tomb: h.Tombstone})
	if err != nil {
		return nil, err
	}
	return fresh.epochs, nil
}

// validateCodes rejects categorical values that are not integral codes
// within the column's post-chunk dictionary, so structurally valid but
// meaningless data never reaches disk.
func validateCodes(schema *dataset.Schema, ch ColumnChunk, dictLens []int) error {
	for c := 0; c < schema.Len(); c++ {
		if schema.Attr(c).Kind != dataset.Categorical {
			continue
		}
		limit := float64(dictLens[c])
		if ch.DictDelta != nil {
			limit += float64(len(ch.DictDelta[c]))
		}
		for _, v := range ch.Cols[c] {
			if v != math.Trunc(v) || v < 0 || v >= limit {
				return fmt.Errorf("store: column %d value %v is not a dictionary code below %v", c, v, limit)
			}
		}
	}
	return nil
}

// oldToNewMap builds a deletion epoch's row-id mapping: rows is the
// pre-epoch row count, ids the sorted unique tombstoned ids.
func oldToNewMap(rows int, ids []int) []int {
	oldToNew := make([]int, rows)
	next, ti := 0, 0
	for r := 0; r < rows; r++ {
		if ti < len(ids) && ids[ti] == r {
			oldToNew[r] = -1
			ti++
			continue
		}
		oldToNew[r] = next
		next++
	}
	return oldToNew
}

// appendBlocks appends one epoch's sealed blocks to the dataset file and
// fsyncs. On any failure the file is truncated back to its previous size
// when possible and the cached state is poisoned, forcing the next
// operation to reload the on-disk truth — whatever actually landed.
func (b *FileBackend) appendBlocks(name string, st *fileState, buf []byte) error {
	fail := func(err error) error {
		st.schema = nil // poison; see lockState
		return err
	}
	f, err := os.OpenFile(b.path(name), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return fail(err)
	}
	prevEnd, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fail(err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Truncate(prevEnd)
		f.Close()
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Truncate(prevEnd)
		f.Close()
		return fail(err)
	}
	return f.Close()
}

// AppendEpoch implements Backend: one buffered write of the chunk's
// dictionary pages, segments and commit manifest, fsynced before return.
func (b *FileBackend) AppendEpoch(name string, ch ColumnChunk) error {
	st, err := b.lockState(name)
	if err != nil {
		return err
	}
	defer st.mu.Unlock()
	if err := validateChunk(st.schema, ch); err != nil {
		return err
	}
	if err := validateCodes(st.schema, ch, st.dictLens); err != nil {
		return err
	}
	w := newBlockBuf(st.rolling)
	chunkBlocks(w, ch)
	w.block(kindCommit, commitPayload(epochAppend, st.epoch+1, st.rows+ch.Rows, ch.Rows, w.rolling))
	if err := b.appendBlocks(name, st, w.buf); err != nil {
		return err
	}
	st.rows += ch.Rows
	st.epoch++
	st.epochs = append(st.epochs, Epoch{Appended: ch.Rows})
	for c, delta := range ch.DictDelta {
		st.dictLens[c] += len(delta)
	}
	st.rolling = w.rolling
	return nil
}

// DeleteEpoch implements Backend: a tombstone block plus commit manifest
// in one fsynced write.
func (b *FileBackend) DeleteEpoch(name string, rowIDs []int) error {
	st, err := b.lockState(name)
	if err != nil {
		return err
	}
	defer st.mu.Unlock()
	seen := make(map[int]bool, len(rowIDs))
	ids := make([]int, 0, len(rowIDs))
	for _, id := range rowIDs {
		if id < 0 || id >= st.rows {
			return fmt.Errorf("store: delete row %d out of range (%d rows)", id, st.rows)
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	w := newBlockBuf(st.rolling)
	w.block(kindTombstone, tombstonePayload(ids))
	w.block(kindCommit, commitPayload(epochDelete, st.epoch+1, st.rows-len(ids), 0, w.rolling))
	if err := b.appendBlocks(name, st, w.buf); err != nil {
		return err
	}
	st.epochs = append(st.epochs, Epoch{OldToNew: oldToNewMap(st.rows, ids)})
	st.rows -= len(ids)
	st.epoch++
	st.rolling = w.rolling
	return nil
}

// fileSnapshotWriter streams a new dataset's snapshot into a .tmp file,
// renamed into place only at Commit so every .tcs file is committed.
type fileSnapshotWriter struct {
	b        *FileBackend
	name     string
	tmp      string
	f        *os.File
	bw       *bufio.Writer
	schema   *dataset.Schema
	dictLens []int
	rows     int
	rolling  uint64
	done     bool
}

// Create implements Backend.
func (b *FileBackend) Create(name string, schema *dataset.Schema) (SnapshotWriter, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty dataset name")
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("store: nil or empty schema")
	}
	b.mu.Lock()
	if b.tmps[name] {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if _, err := os.Stat(b.path(name)); err == nil {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	b.tmps[name] = true
	b.mu.Unlock()
	tmp := b.path(name) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		b.mu.Lock()
		delete(b.tmps, name)
		b.mu.Unlock()
		return nil, err
	}
	w := &fileSnapshotWriter{
		b: b, name: name, tmp: tmp, f: f,
		bw:     bufio.NewWriterSize(f, 1<<16),
		schema: schema, dictLens: make([]int, schema.Len()),
	}
	bb := newBlockBuf(0)
	bb.block(kindSchema, schemaPayload(schema))
	w.rolling = bb.rolling
	if _, err := w.bw.WriteString(magic); err != nil {
		w.abort()
		return nil, err
	}
	if _, err := w.bw.Write(bb.buf); err != nil {
		w.abort()
		return nil, err
	}
	return w, nil
}

func (w *fileSnapshotWriter) Append(ch ColumnChunk) error {
	if w.done {
		return fmt.Errorf("store: snapshot writer already closed")
	}
	if err := validateChunk(w.schema, ch); err != nil {
		return err
	}
	if err := validateCodes(w.schema, ch, w.dictLens); err != nil {
		return err
	}
	bb := newBlockBuf(w.rolling)
	chunkBlocks(bb, ch)
	if _, err := w.bw.Write(bb.buf); err != nil {
		return err
	}
	w.rolling = bb.rolling
	w.rows += ch.Rows
	for c, delta := range ch.DictDelta {
		w.dictLens[c] += len(delta)
	}
	return nil
}

func (w *fileSnapshotWriter) Commit() error {
	if w.done {
		return fmt.Errorf("store: snapshot writer already closed")
	}
	bb := newBlockBuf(w.rolling)
	bb.block(kindCommit, commitPayload(epochSnapshot, 0, w.rows, w.rows, w.rolling))
	if _, err := w.bw.Write(bb.buf); err != nil {
		w.abort()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return err
	}
	if err := w.f.Close(); err != nil {
		w.abort()
		return err
	}
	final := w.b.path(w.name)
	if err := os.Rename(w.tmp, final); err != nil {
		os.Remove(w.tmp)
		w.release()
		return err
	}
	syncDir(w.b.dir)
	st := &fileState{
		schema: w.schema, rows: w.rows,
		dictLens: w.dictLens, rolling: bb.rolling,
	}
	w.b.mu.Lock()
	w.b.states[w.name] = st
	delete(w.b.tmps, w.name)
	w.b.mu.Unlock()
	w.done = true
	return nil
}

func (w *fileSnapshotWriter) Close() error {
	if !w.done {
		w.abort()
	}
	return nil
}

// abort discards the partial snapshot: close, remove the temp file, free
// the name.
func (w *fileSnapshotWriter) abort() {
	w.f.Close()
	os.Remove(w.tmp)
	w.release()
}

func (w *fileSnapshotWriter) release() {
	w.b.mu.Lock()
	delete(w.b.tmps, w.name)
	w.b.mu.Unlock()
	w.done = true
}

// syncDir fsyncs a directory so a rename into it is durable; best-effort
// on filesystems that reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
