package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// DefaultIngestBudget is the chunk-buffer budget IngestCSV uses when the
// caller passes budget <= 0: large enough for good segment sizes, small
// enough that a million-row ingest never holds the table in memory.
const DefaultIngestBudget = 8 << 20

// IngestStats reports what a streaming ingest did; MaxBufferedBytes is
// the high-water mark of the chunk buffer (values + new dictionary
// labels), the number the memory-budget contract is stated in.
type IngestStats struct {
	// Rows ingested in total.
	Rows int
	// Chunks flushed to the backend.
	Chunks int
	// MaxBufferedBytes is the largest chunk buffer held at any point.
	MaxBufferedBytes int
}

// IngestCSV bulk-loads a dataset in the two-header CSV format (see
// dataset.WriteCSV) straight into a backend without materializing the
// table: records are decoded into a columnar chunk buffer and flushed as
// a snapshot chunk whenever the buffer would exceed budget bytes
// (DefaultIngestBudget when budget <= 0). Label→code assignment is
// first-seen order, the same rule dataset.ReadCSV uses, so a table opened
// from the ingested snapshot is bit-identical to dataset.ReadCSV of the
// same input.
func IngestCSV(b Backend, name string, r io.Reader, budget int) (IngestStats, error) {
	var stats IngestStats
	if budget <= 0 {
		budget = DefaultIngestBudget
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	names, err := cr.Read()
	if err != nil {
		return stats, fmt.Errorf("store: reading header: %w", err)
	}
	names = append([]string(nil), names...)
	descs, err := cr.Read()
	if err != nil {
		return stats, fmt.Errorf("store: reading schema row: %w", err)
	}
	if len(descs) != len(names) {
		return stats, fmt.Errorf("store: schema row has %d fields, header has %d", len(descs), len(names))
	}
	attrs := make([]dataset.Attribute, len(names))
	for i, d := range descs {
		role, kind, err := dataset.ParseDescriptor(d)
		if err != nil {
			return stats, fmt.Errorf("store: column %q: %w", names[i], err)
		}
		attrs[i] = dataset.Attribute{Name: names[i], Role: role, Kind: kind}
	}
	schema, err := dataset.NewSchema(attrs...)
	if err != nil {
		return stats, err
	}
	w, err := b.Create(name, schema)
	if err != nil {
		return stats, err
	}
	defer w.Close()

	width := schema.Len()
	codeOf := make([]map[string]int, width) // full dictionaries, first-seen order
	for c := range codeOf {
		if attrs[c].Kind == dataset.Categorical {
			codeOf[c] = make(map[string]int)
		}
	}
	cols := make([][]float64, width)
	delta := make([][]string, width) // labels introduced by the buffered chunk
	buffered := 0                    // bytes held: 8 per value + new label bytes
	hasDelta := false

	flush := func() error {
		if buffered > stats.MaxBufferedBytes {
			stats.MaxBufferedBytes = buffered
		}
		ch := ColumnChunk{Rows: len(cols[0]), Cols: cols}
		if hasDelta {
			ch.DictDelta = delta
		}
		if err := w.Append(ch); err != nil {
			return err
		}
		stats.Chunks++
		cols = make([][]float64, width)
		delta = make([][]string, width)
		buffered, hasDelta = 0, false
		return nil
	}

	scratch := make([]float64, width)
	line := 2
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return stats, fmt.Errorf("store: reading line %d: %w", line, err)
		}
		if len(rec) != width {
			return stats, fmt.Errorf("store: line %d has %d fields, want %d", line, len(rec), width)
		}
		// Decode the record before buffering it so a flush can happen on a
		// clean chunk boundary, keeping the buffer at or under budget.
		rowBytes := 8 * width
		var newLabels []int // columns whose field is a first-seen label
		for c, field := range rec {
			if attrs[c].Kind != dataset.Categorical {
				v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
				if err != nil {
					return stats, fmt.Errorf("store: line %d, column %q: %w", line, attrs[c].Name, err)
				}
				scratch[c] = v
				continue
			}
			code, ok := codeOf[c][field]
			if !ok {
				code = len(codeOf[c])
				newLabels = append(newLabels, c)
				rowBytes += len(field)
			}
			scratch[c] = float64(code)
		}
		if buffered > 0 && buffered+rowBytes > budget {
			if err := flush(); err != nil {
				return stats, err
			}
		}
		for _, c := range newLabels {
			label := strings.Clone(rec[c])
			codeOf[c][label] = len(codeOf[c])
			delta[c] = append(delta[c], label)
			hasDelta = true
		}
		for c := range scratch {
			cols[c] = append(cols[c], scratch[c])
		}
		buffered += rowBytes
		stats.Rows++
	}
	if err := flush(); err != nil {
		return stats, err
	}
	return stats, w.Commit()
}
