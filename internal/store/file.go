package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
)

// File format
//
// A FileBackend keeps one file per dataset, <escaped-name>.tcs, as an
// append-only log of checksummed blocks:
//
//	file  := magic block*
//	magic := "TCSTOR01" (8 bytes)
//	block := kind u8 | len u32 | payload[len] | crc32c(kind ‖ payload) u32
//
// All integers are little-endian; floats travel as their IEEE-754 bits, so
// values round-trip exactly (including -0 and the bit patterns of NaNs).
// Block kinds:
//
//	schema    (1): attribute count, then (name, role, kind) per attribute.
//	            Always the first block of a file.
//	dict      (2): column index + labels newly appended to that column's
//	            dictionary, in code order — a dictionary page.
//	segment   (3): column index + the column's values for one chunk of
//	            rows — a columnar segment. A chunk is written as its
//	            dictionary pages followed by one segment per column in
//	            schema order, all with the same row count.
//	tombstone (4): row ids (current numbering) removed by a deletion epoch.
//	commit    (5): the epoch manifest — epoch kind (snapshot/append/
//	            delete), epoch number, total rows after the epoch, rows
//	            added by it, and a rolling FNV-64a digest of every prior
//	            block's CRC. A commit makes everything before it durable
//	            and attested: replay verifies the digest, so blocks
//	            cannot be dropped, reordered or spliced between commits
//	            without detection.
//
// Crash-safety contract: an epoch's blocks are staged in one buffered
// write and fsynced before AppendEpoch/DeleteEpoch/Commit returns, so a
// committed epoch survives SIGKILL. A crash mid-epoch leaves a torn tail —
// complete or truncated blocks after the last commit — which replay
// silently discards, reopening at the last committed epoch. A checksum
// mismatch or impossible structure anywhere in the committed region is
// *corruption*, not a crash artifact, and fails Open with ErrCorrupt; a
// file that ends before its first commit fails with ErrTruncated. The
// decoder never panics on hostile input (fuzzed by FuzzFileOpen).
const magic = "TCSTOR01"

const (
	kindSchema    byte = 1
	kindDict      byte = 2
	kindSegment   byte = 3
	kindTombstone byte = 4
	kindCommit    byte = 5

	epochSnapshot byte = 0
	epochAppend   byte = 1
	epochDelete   byte = 2

	// maxBlockLen bounds a single block's payload; anything larger is
	// structurally impossible for the writers here and rejected before
	// allocation when decoding.
	maxBlockLen = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FileBackend is the embedded persistent Backend: one append-only
// columnar file per dataset under a root directory. Safe for concurrent
// use; operations on one dataset are serialized.
type FileBackend struct {
	dir string

	mu     sync.Mutex
	states map[string]*fileState // decoded write-side state per dataset
	tmps   map[string]bool       // names with a Create in flight
}

// fileState is the decoded write-side state of one dataset — everything
// AppendEpoch/DeleteEpoch need without materializing the table.
type fileState struct {
	mu       sync.Mutex
	schema   *dataset.Schema
	rows     int
	epoch    int
	epochs   []Epoch
	dictLens []int
	rolling  uint64 // manifest digest over every block written so far
}

// NewFileBackend opens (creating if needed) the file store rooted at dir.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileBackend{dir: dir, states: make(map[string]*fileState), tmps: make(map[string]bool)}, nil
}

// Dir returns the backend's root directory.
func (b *FileBackend) Dir() string { return b.dir }

// Close implements Backend. The file backend holds no long-lived handles.
func (b *FileBackend) Close() error { return nil }

func (b *FileBackend) path(name string) string {
	return filepath.Join(b.dir, url.PathEscape(name)+".tcs")
}

// StrayFilesError reports .tcs entries in the data directory whose names
// this backend cannot account for (the dataset-name unescape fails) —
// data-dir corruption, foreign files, or a renamed dataset file. List
// returns it *alongside* the valid names so callers can keep serving
// what is intact while surfacing what is not; match with errors.As.
type StrayFilesError struct {
	// Files holds the stray file names (base names, not paths).
	Files []string
}

func (e *StrayFilesError) Error() string {
	return fmt.Sprintf("store: %d stray .tcs file(s) in data dir not written by this backend: %s",
		len(e.Files), strings.Join(e.Files, ", "))
}

// List returns the committed dataset names (files are only renamed into
// place at snapshot commit, so every .tcs file is a committed dataset).
// When the directory also holds .tcs files this backend cannot have
// written, the names are still returned and the error is a
// *StrayFilesError describing the strays — they are surfaced, never
// silently dropped.
func (b *FileBackend) List() ([]string, error) {
	ents, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var names, strays []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tcs") {
			continue
		}
		name, err := url.PathUnescape(strings.TrimSuffix(e.Name(), ".tcs"))
		if err != nil {
			strays = append(strays, e.Name())
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(strays) > 0 {
		return names, &StrayFilesError{Files: strays}
	}
	return names, nil
}

// Remove deletes a dataset file and forgets its state.
func (b *FileBackend) Remove(name string) error {
	b.mu.Lock()
	delete(b.states, name)
	b.mu.Unlock()
	if err := os.Remove(b.path(name)); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
		}
		return err
	}
	return nil
}

// --- encoding helpers ---

// blockBuf assembles blocks into one write buffer, tracking the rolling
// manifest digest as each block is sealed.
type blockBuf struct {
	buf     []byte
	rolling uint64
}

func newBlockBuf(rolling uint64) *blockBuf { return &blockBuf{rolling: rolling} }

func (w *blockBuf) block(kind byte, payload []byte) {
	crc := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, payload)
	w.buf = append(w.buf, kind)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = append(w.buf, payload...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	w.rolling = rollCRC(w.rolling, crc)
}

// rollCRC folds one block CRC into the manifest digest (FNV-64a step).
func rollCRC(rolling uint64, crc uint32) uint64 {
	h := fnv.New64a()
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:8], rolling)
	binary.LittleEndian.PutUint32(b[8:], crc)
	h.Write(b[:])
	return h.Sum64()
}

func schemaPayload(s *dataset.Schema) []byte {
	var p []byte
	p = binary.LittleEndian.AppendUint32(p, uint32(s.Len()))
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(a.Name)))
		p = append(p, a.Name...)
		p = append(p, byte(a.Role), byte(a.Kind))
	}
	return p
}

func dictPayload(col int, labels []string) []byte {
	var p []byte
	p = binary.LittleEndian.AppendUint32(p, uint32(col))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(labels)))
	for _, l := range labels {
		p = binary.LittleEndian.AppendUint32(p, uint32(len(l)))
		p = append(p, l...)
	}
	return p
}

func segmentPayload(col int, vals []float64) []byte {
	p := make([]byte, 0, 8+8*len(vals))
	p = binary.LittleEndian.AppendUint32(p, uint32(col))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(vals)))
	for _, v := range vals {
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
	}
	return p
}

func tombstonePayload(rowIDs []int) []byte {
	p := make([]byte, 0, 4+4*len(rowIDs))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(rowIDs)))
	for _, r := range rowIDs {
		p = binary.LittleEndian.AppendUint32(p, uint32(r))
	}
	return p
}

func commitPayload(epochKind byte, epoch, totalRows, deltaRows int, manifest uint64) []byte {
	var p []byte
	p = append(p, epochKind)
	p = binary.LittleEndian.AppendUint32(p, uint32(epoch))
	p = binary.LittleEndian.AppendUint64(p, uint64(totalRows))
	p = binary.LittleEndian.AppendUint64(p, uint64(deltaRows))
	p = binary.LittleEndian.AppendUint64(p, manifest)
	return p
}

// chunkBlocks writes one chunk as dictionary pages then per-column
// segments in schema order.
func chunkBlocks(w *blockBuf, ch ColumnChunk) {
	for c, delta := range ch.DictDelta {
		if len(delta) > 0 {
			w.block(kindDict, dictPayload(c, delta))
		}
	}
	for c, col := range ch.Cols {
		w.block(kindSegment, segmentPayload(c, col))
	}
}

// --- decoding helpers ---

// payloadReader decodes a block payload with saturating bounds checks; a
// short or oversized payload surfaces as ErrCorrupt from done().
type payloadReader struct {
	b   []byte
	off int
	bad bool
}

func (r *payloadReader) u8() byte {
	if r.off+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) str() string {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *payloadReader) done() bool { return !r.bad && r.off == len(r.b) }
