package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// validFileBytes builds a committed dataset file (snapshot + one append
// epoch + one delete epoch) to seed the fuzzer with realistic input.
func validFileBytes(t testing.TB) []byte {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl := randomTable(rand.New(rand.NewSource(12)))
	for tbl.Len() < 4 {
		tbl = randomTable(rand.New(rand.NewSource(13)))
	}
	if err := Write(b, "seed", tbl); err != nil {
		t.Fatal(err)
	}
	from, lens := tbl.Len(), DictLens(tbl)
	if err := tbl.AppendRow(rowFor(tbl)...); err != nil {
		t.Fatal(err)
	}
	if err := AppendRows(b, "seed", tbl, from, lens); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteEpoch("seed", []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "seed.tcs"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// decodeBytes runs the full decode pipeline (scan + committed replay,
// materializing the table like Open does) over an in-memory file image.
func decodeBytes(data []byte) error {
	end, err := scanValid(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return err
	}
	var tbl *dataset.Table
	_, err = replayCommitted(bytes.NewReader(data), end, replayHooks{
		chunk: func(s *dataset.Schema, ch ColumnChunk) error {
			if tbl == nil {
				var err error
				if tbl, err = dataset.NewTable(s); err != nil {
					return err
				}
			}
			if err := applyChunk(tbl, ch); err != nil {
				return corruptf("applying chunk: %v", err)
			}
			return nil
		},
	})
	return err
}

func hostileMutations(raw []byte) [][]byte {
	muts := [][]byte{
		{},
		[]byte(magic),
		raw[:len(raw)/2],
		raw[:len(raw)-3],
		append(append([]byte(nil), raw...), 0xDE, 0xAD),
	}
	for _, off := range []int{0, 9, len(raw) / 3, len(raw) - 5} {
		m := append([]byte(nil), raw...)
		m[off] ^= 0x40
		muts = append(muts, m)
	}
	return muts
}

// FuzzFileDecode pins the decoder's contract on hostile input: decode
// either succeeds or fails with a typed error (ErrCorrupt /
// ErrTruncated) — it never panics and never returns an untyped failure.
func FuzzFileDecode(f *testing.F) {
	raw := validFileBytes(f)
	f.Add(raw)
	for _, m := range hostileMutations(raw) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := decodeBytes(data); err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped decode error: %v", err)
			}
		}
	})
}

// The same contract through the real Open path, for the seed corpus.
func TestOpenHostileInput(t *testing.T) {
	raw := validFileBytes(t)
	for i, data := range append([][]byte{raw}, hostileMutations(raw)...) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "ds.tcs"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := NewFileBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		tbl, _, err := b.Open("ds")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("input %d: untyped error: %v", i, err)
			}
			continue
		}
		if tbl == nil {
			t.Fatalf("input %d: nil table without error", i)
		}
	}
}
