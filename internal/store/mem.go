package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
)

// MemBackend is an in-memory Backend with the same contract as the file
// store — chunk history, epoch log, copy-on-read — for tests and
// ephemeral use. Safe for concurrent use.
type MemBackend struct {
	mu       sync.Mutex
	datasets map[string]*memDataset
	pending  map[string]bool
}

type memDataset struct {
	schema *dataset.Schema
	chunks []ColumnChunk // snapshot + append-epoch chunks in commit order
	epochs []Epoch
	table  *dataset.Table // current materialized state
}

// NewMemBackend returns an empty in-memory store.
func NewMemBackend() *MemBackend {
	return &MemBackend{datasets: make(map[string]*memDataset), pending: make(map[string]bool)}
}

// Close implements Backend.
func (b *MemBackend) Close() error { return nil }

// List implements Backend.
func (b *MemBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.datasets))
	for n := range b.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements Backend.
func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.datasets[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	delete(b.datasets, name)
	return nil
}

func (b *MemBackend) get(name string) (*memDataset, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return d, nil
}

// Open implements Backend. The table is a deep copy, so callers cannot
// alias the store's state.
func (b *MemBackend) Open(name string) (*dataset.Table, []Epoch, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.datasets[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	epochs := make([]Epoch, len(d.epochs))
	copy(epochs, d.epochs)
	return d.table.Clone(), epochs, nil
}

// Chunks implements Backend.
func (b *MemBackend) Chunks(name string, fn func(*dataset.Schema, ColumnChunk) error) error {
	d, err := b.get(name)
	if err != nil {
		return err
	}
	b.mu.Lock()
	chunks := make([]ColumnChunk, len(d.chunks))
	copy(chunks, d.chunks)
	b.mu.Unlock()
	for _, ch := range chunks {
		if err := fn(d.schema, copyChunk(ch)); err != nil {
			return err
		}
	}
	return nil
}

// Stream implements Backend. The chunk/tombstone interleaving is
// reconstructed from the epoch log: the snapshot's chunks come first
// (len(chunks) minus one per append epoch), then each epoch contributes
// its chunk or its tombstone ids (recovered from OldToNew) in order.
// Chunks are deep-copied so the handler cannot alias store history.
func (b *MemBackend) Stream(name string, h StreamHandler) ([]Epoch, error) {
	b.mu.Lock()
	d, ok := b.datasets[name]
	if !ok {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	chunks := make([]ColumnChunk, len(d.chunks))
	copy(chunks, d.chunks)
	epochs := make([]Epoch, len(d.epochs))
	copy(epochs, d.epochs)
	schema, rows := d.schema, d.table.Len()
	b.mu.Unlock()

	if h.Begin != nil {
		if err := h.Begin(schema, rows); err != nil {
			return nil, err
		}
	}
	emit := func(ch ColumnChunk) error {
		if h.Chunk == nil {
			return nil
		}
		return h.Chunk(copyChunk(ch))
	}
	snapshot := len(chunks)
	for _, ep := range epochs {
		if ep.OldToNew == nil {
			snapshot--
		}
	}
	for _, ch := range chunks[:snapshot] {
		if err := emit(ch); err != nil {
			return nil, err
		}
	}
	next := snapshot
	for _, ep := range epochs {
		if ep.OldToNew == nil {
			if err := emit(chunks[next]); err != nil {
				return nil, err
			}
			next++
			continue
		}
		if h.Tombstone == nil {
			continue
		}
		var ids []int
		for id, to := range ep.OldToNew {
			if to == -1 {
				ids = append(ids, id)
			}
		}
		if err := h.Tombstone(ids); err != nil {
			return nil, err
		}
	}
	return epochs, nil
}

// AppendEpoch implements Backend.
func (b *MemBackend) AppendEpoch(name string, ch ColumnChunk) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.datasets[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	if err := validateChunk(d.schema, ch); err != nil {
		return err
	}
	if err := validateCodes(d.schema, ch, DictLens(d.table)); err != nil {
		return err
	}
	cp := copyChunk(ch)
	if err := applyChunk(d.table, cp); err != nil {
		return err
	}
	d.chunks = append(d.chunks, cp)
	d.epochs = append(d.epochs, Epoch{Appended: ch.Rows})
	return nil
}

// DeleteEpoch implements Backend.
func (b *MemBackend) DeleteEpoch(name string, rowIDs []int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.datasets[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	rows := d.table.Len()
	seen := make(map[int]bool, len(rowIDs))
	ids := make([]int, 0, len(rowIDs))
	for _, id := range rowIDs {
		if id < 0 || id >= rows {
			return fmt.Errorf("store: delete row %d out of range (%d rows)", id, rows)
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	keep := make([]int, 0, rows-len(ids))
	ti := 0
	for r := 0; r < rows; r++ {
		if ti < len(ids) && ids[ti] == r {
			ti++
			continue
		}
		keep = append(keep, r)
	}
	sub, err := d.table.Subset(keep)
	if err != nil {
		return err
	}
	d.table = sub
	d.epochs = append(d.epochs, Epoch{OldToNew: oldToNewMap(rows, ids)})
	return nil
}

// memSnapshotWriter stages a snapshot; nothing is visible until Commit.
type memSnapshotWriter struct {
	b      *MemBackend
	name   string
	schema *dataset.Schema
	table  *dataset.Table
	chunks []ColumnChunk
	done   bool
}

// Create implements Backend.
func (b *MemBackend) Create(name string, schema *dataset.Schema) (SnapshotWriter, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty dataset name")
	}
	tbl, err := dataset.NewTable(schema)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.datasets[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if b.pending[name] {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	b.pending[name] = true
	return &memSnapshotWriter{b: b, name: name, schema: schema, table: tbl}, nil
}

func (w *memSnapshotWriter) Append(ch ColumnChunk) error {
	if w.done {
		return fmt.Errorf("store: snapshot writer already closed")
	}
	if err := validateChunk(w.schema, ch); err != nil {
		return err
	}
	if err := validateCodes(w.schema, ch, DictLens(w.table)); err != nil {
		return err
	}
	cp := copyChunk(ch)
	if err := applyChunk(w.table, cp); err != nil {
		return err
	}
	w.chunks = append(w.chunks, cp)
	return nil
}

func (w *memSnapshotWriter) Commit() error {
	if w.done {
		return fmt.Errorf("store: snapshot writer already closed")
	}
	w.done = true
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	delete(w.b.pending, w.name)
	w.b.datasets[w.name] = &memDataset{schema: w.schema, chunks: w.chunks, table: w.table}
	return nil
}

func (w *memSnapshotWriter) Close() error {
	if !w.done {
		w.done = true
		w.b.mu.Lock()
		delete(w.b.pending, w.name)
		w.b.mu.Unlock()
	}
	return nil
}

// copyChunk deep-copies a chunk so stored history cannot alias caller
// slices (Write and chunkOfRows hand out ColumnView sub-slices).
func copyChunk(ch ColumnChunk) ColumnChunk {
	out := ColumnChunk{Rows: ch.Rows, Cols: make([][]float64, len(ch.Cols))}
	for c, col := range ch.Cols {
		out.Cols[c] = append([]float64(nil), col...)
	}
	if ch.DictDelta != nil {
		out.DictDelta = make([][]string, len(ch.DictDelta))
		for c, d := range ch.DictDelta {
			out.DictDelta[c] = append([]string(nil), d...)
		}
	}
	return out
}
