// Package store is the persistent columnar dataset layer under the
// anonymization engine: a Backend abstracts how dataset.Table snapshots
// and their epoch history (appends and tombstone deletions) are kept, so
// million-row tables load once, reopen without re-decoding CSV, and
// Engine.Append/Engine.Delete epochs survive a process restart.
//
// Data moves in ColumnChunks — a bounded batch of records in columnar
// form plus the dictionary labels the batch introduced — in both
// directions: the streaming CSV ingester (IngestCSV) flushes chunks under
// a memory budget instead of materializing rows, and a reader rebuilds a
// table chunk by chunk through dataset.Table.ExtendDict and
// dataset.Table.AppendColumnChunk. The round trip is bit-identical —
// values (as float64 bits), dictionary label order, and the label→code
// assignment all survive — which is what lets an engine rebuilt from a
// snapshot produce byte-identical releases; the property suite pins it.
//
// Two backends ship: FileBackend, the embedded single-file-per-dataset
// persistent store (columnar segments, dictionary pages, an append-only
// epoch log, checksummed commit manifests — see file.go for the format
// and the crash-safety contract), and MemBackend, an in-memory
// implementation of the same contract for tests and ephemeral use. The
// in-memory QI matrix and EMD prefix spaces remain the hot path; the
// store only feeds and persists them.
package store

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
)

// ColumnChunk is a bounded batch of records in columnar form: one value
// slice per schema attribute (raw numerics, or categorical codes into the
// dictionary as extended by every chunk up to and including this one).
// DictDelta carries the labels this chunk introduced, per column in code
// order, so a reader replays ExtendDict(col, DictDelta[col]) before
// AppendColumnChunk(Cols) and reconstructs the exact dictionaries.
type ColumnChunk struct {
	// Rows is the number of records in the chunk.
	Rows int
	// Cols holds the values, one slice of length Rows per attribute.
	Cols [][]float64
	// DictDelta holds newly introduced dictionary labels per column (nil
	// for numeric columns and for chunks introducing none).
	DictDelta [][]string
}

// Epoch is one durable entry of a dataset's epoch log, mirroring the
// engine's own append/tombstone transitions so a reopened engine can
// replay the history it had before the restart.
type Epoch struct {
	// Appended is the number of records an append epoch added (0 for
	// deletion epochs).
	Appended int
	// OldToNew maps the previous epoch's row ids to this epoch's (-1 for
	// tombstoned rows); nil for append epochs, whose ids are stable.
	OldToNew []int
}

// SnapshotWriter streams the epoch-0 snapshot of a new dataset into a
// backend chunk by chunk. Nothing is visible to Open/List until Commit
// returns; Close without a Commit aborts and discards the partial write.
type SnapshotWriter interface {
	// Append adds one chunk to the pending snapshot.
	Append(ch ColumnChunk) error
	// Commit finalizes the snapshot durably and registers the dataset.
	Commit() error
	// Close releases resources; called after Commit it is a no-op,
	// called before it discards the pending snapshot.
	Close() error
}

// StreamHandler receives a dataset's committed history in commit order
// during Backend.Stream. Any hook may be nil. Begin fires once, before
// any content, with the schema and the final row count (after every
// committed epoch — a preallocation hint for out-of-core builders).
// Chunk fires for every snapshot and append-epoch chunk, Tombstone for
// every deletion epoch, interleaved exactly as committed; tombstone row
// ids are in the numbering of the epoch they were committed against,
// ascending and unique. Handlers own the chunk slices they receive.
type StreamHandler struct {
	Begin     func(schema *dataset.Schema, rows int) error
	Chunk     func(ch ColumnChunk) error
	Tombstone func(rowIDs []int) error
}

// Backend is a store of named columnar datasets with durable epoch
// history. Implementations must be safe for concurrent use; per-dataset
// operations (AppendEpoch, DeleteEpoch vs Open/Chunks) may be serialized
// internally.
type Backend interface {
	// Create starts streaming a new dataset's snapshot. It fails if the
	// name is taken.
	Create(name string, schema *dataset.Schema) (SnapshotWriter, error)
	// Open materializes the dataset: the table with every committed epoch
	// applied, plus the replayable epoch log.
	Open(name string) (*dataset.Table, []Epoch, error)
	// Chunks streams the dataset's schema and committed column chunks in
	// commit order (snapshot chunks first, then append-epoch chunks;
	// deletion epochs do not produce chunks — consume Stream or Open for
	// a tombstone-aware view).
	Chunks(name string, fn func(*dataset.Schema, ColumnChunk) error) error
	// Stream replays the dataset's full committed history — chunks and
	// tombstones interleaved in commit order — without materializing the
	// table, and returns the epoch log Open would return. It is the
	// out-of-core counterpart of Open: peak memory is one chunk plus
	// whatever the handler retains. See StreamHandler.
	Stream(name string, h StreamHandler) ([]Epoch, error)
	// AppendEpoch durably records an append epoch: the chunk holds the
	// appended records and any dictionary labels they introduced.
	AppendEpoch(name string, ch ColumnChunk) error
	// DeleteEpoch durably records a tombstone epoch removing the given
	// row ids (current numbering, duplicates allowed).
	DeleteEpoch(name string, rowIDs []int) error
	// List returns the committed dataset names in lexical order. An
	// implementation may return valid names alongside an advisory error
	// describing entries it could not account for (FileBackend returns a
	// *StrayFilesError); callers should use the names they got either way.
	List() ([]string, error)
	// Remove deletes a dataset and its history.
	Remove(name string) error
	// Close releases the backend's resources.
	Close() error
}

// Typed decode errors; see the crash-safety contract in file.go. Both are
// wrapped with position detail — match with errors.Is.
var (
	// ErrCorrupt reports a structurally invalid dataset file: a bad magic
	// number, a checksum mismatch, or an impossible block layout.
	ErrCorrupt = errors.New("store: corrupt dataset file")
	// ErrTruncated reports a dataset file that ends before its first
	// committed snapshot — an interrupted initial ingest, which is not
	// recoverable (a torn tail after a commit, by contrast, is silently
	// discarded as the crash-safety contract specifies).
	ErrTruncated = errors.New("store: dataset file truncated before first commit")
	// ErrUnknownDataset reports an Open/append/delete of a name the
	// backend does not hold.
	ErrUnknownDataset = errors.New("store: unknown dataset")
	// ErrExists rejects Create over a name already committed or pending.
	ErrExists = errors.New("store: dataset already exists")
)

// Write snapshots an in-memory table into the backend under name, in
// chunks of writeChunkRows records, and commits. It is the non-streaming
// counterpart of IngestCSV for tables that already live in memory
// (synthetic generators, HTTP uploads already decoded).
func Write(b Backend, name string, t *dataset.Table) error {
	w, err := b.Create(name, t.Schema())
	if err != nil {
		return err
	}
	defer w.Close()
	width := t.Width()
	dictDelta := make([][]string, width)
	for c := 0; c < width; c++ {
		if d := t.Dict(c); len(d) > 0 {
			dictDelta[c] = d
		}
	}
	for lo := 0; lo < t.Len() || lo == 0; lo += writeChunkRows {
		hi := lo + writeChunkRows
		if hi > t.Len() {
			hi = t.Len()
		}
		ch := ColumnChunk{Rows: hi - lo, Cols: make([][]float64, width), DictDelta: dictDelta}
		for c := 0; c < width; c++ {
			ch.Cols[c] = t.ColumnView(c)[lo:hi]
		}
		if err := w.Append(ch); err != nil {
			return err
		}
		dictDelta = nil // dictionaries ride the first chunk only
		if hi == t.Len() {
			break
		}
	}
	return w.Commit()
}

// writeChunkRows is the chunk granularity of Write: large enough that
// per-chunk framing overhead vanishes, small enough that readers stream.
const writeChunkRows = 1 << 16

// applyChunk replays one chunk onto a table: dictionary deltas first,
// then the bulk column append.
func applyChunk(t *dataset.Table, ch ColumnChunk) error {
	for c, delta := range ch.DictDelta {
		if len(delta) == 0 {
			continue
		}
		if err := t.ExtendDict(c, delta); err != nil {
			return err
		}
	}
	if ch.Rows == 0 {
		return nil
	}
	return t.AppendColumnChunk(ch.Cols)
}

// chunkOfRows converts validated row values (the engine's Append input,
// already applied to table) back into the columnar epoch chunk covering
// table rows [from, table.Len()), with dictionary deltas relative to
// prevDictLens. It is how a store-bound engine persists an append epoch
// without re-encoding values.
func chunkOfRows(t *dataset.Table, from int, prevDictLens []int) ColumnChunk {
	width := t.Width()
	ch := ColumnChunk{Rows: t.Len() - from, Cols: make([][]float64, width)}
	for c := 0; c < width; c++ {
		ch.Cols[c] = t.ColumnView(c)[from:]
		if n := t.DictLen(c); prevDictLens != nil && n > prevDictLens[c] {
			if ch.DictDelta == nil {
				ch.DictDelta = make([][]string, width)
			}
			ch.DictDelta[c] = t.Dict(c)[prevDictLens[c]:]
		}
	}
	return ch
}

// AppendRows encodes the tail of an already-extended table as an epoch
// chunk and records it durably: table holds the post-append state, from
// is the pre-append length, prevDictLens the pre-append dictionary sizes
// (nil when no categorical column exists). See chunkOfRows.
func AppendRows(b Backend, name string, t *dataset.Table, from int, prevDictLens []int) error {
	return b.AppendEpoch(name, chunkOfRows(t, from, prevDictLens))
}

// DictLens returns the current dictionary length of every column — the
// "before" frame AppendRows needs to compute a delta.
func DictLens(t *dataset.Table) []int {
	out := make([]int, t.Width())
	for c := range out {
		out[c] = t.DictLen(c)
	}
	return out
}

// validateChunk sanity-checks a chunk against a schema before it is
// written: width, equal column lengths, and dictionary deltas only on
// categorical columns. Code-range validation happens on replay (the
// reader's table enforces it); this keeps writers from persisting
// structurally impossible chunks.
func validateChunk(schema *dataset.Schema, ch ColumnChunk) error {
	if len(ch.Cols) != schema.Len() {
		return fmt.Errorf("store: chunk has %d columns, schema has %d", len(ch.Cols), schema.Len())
	}
	for c, col := range ch.Cols {
		if len(col) != ch.Rows {
			return fmt.Errorf("store: chunk column %d has %d values, want %d", c, len(col), ch.Rows)
		}
	}
	if ch.DictDelta != nil && len(ch.DictDelta) != schema.Len() {
		return fmt.Errorf("store: chunk dict delta has %d columns, schema has %d", len(ch.DictDelta), schema.Len())
	}
	for c, delta := range ch.DictDelta {
		if len(delta) > 0 && schema.Attr(c).Kind != dataset.Categorical {
			return fmt.Errorf("store: dict delta on numeric column %d", c)
		}
	}
	return nil
}
