package store

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// backends returns one fresh instance of every Backend implementation.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"file": fb, "mem": NewMemBackend()}
}

// randomTable generates a table with adversarial content: mixed kinds,
// empty and unicode labels, negative zero, infinities and NaN values.
func randomTable(rng *rand.Rand) *dataset.Table {
	width := 2 + rng.Intn(4)
	attrs := make([]dataset.Attribute, width)
	for c := range attrs {
		kind := dataset.Numeric
		if rng.Intn(2) == 0 {
			kind = dataset.Categorical
		}
		role := dataset.QuasiIdentifier
		if c == width-1 {
			role = dataset.Confidential
		}
		attrs[c] = dataset.Attribute{Name: fmt.Sprintf("a%d", c), Role: role, Kind: kind}
	}
	tbl := dataset.MustTable(dataset.MustSchema(attrs...))
	labels := []string{"", "oslo", "ærøskøbing", "日本", "x,y\n\"z\"", "-0", "b"}
	specials := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 1e-300, -7.25}
	rows := rng.Intn(120)
	for r := 0; r < rows; r++ {
		vals := make([]any, width)
		for c := range vals {
			if attrs[c].Kind == dataset.Categorical {
				vals[c] = labels[rng.Intn(len(labels))]
			} else if rng.Intn(4) == 0 {
				vals[c] = specials[rng.Intn(len(specials))]
			} else {
				vals[c] = rng.NormFloat64() * 100
			}
		}
		if err := tbl.AppendRow(vals...); err != nil {
			panic(err)
		}
	}
	return tbl
}

// requireTablesIdentical asserts bit-identity: schema, dictionaries
// (order and content — which pins the label→code assignment), and every
// value's float64 bits.
func requireTablesIdentical(t *testing.T, want, got *dataset.Table) {
	t.Helper()
	ws, gs := want.Schema(), got.Schema()
	if ws.Len() != gs.Len() {
		t.Fatalf("width: want %d, got %d", ws.Len(), gs.Len())
	}
	for c := 0; c < ws.Len(); c++ {
		if ws.Attr(c) != gs.Attr(c) {
			t.Fatalf("attr %d: want %+v, got %+v", c, ws.Attr(c), gs.Attr(c))
		}
		wd, gd := want.Dict(c), got.Dict(c)
		if len(wd) != len(gd) {
			t.Fatalf("col %d dict: want %d labels, got %d", c, len(wd), len(gd))
		}
		for i := range wd {
			if wd[i] != gd[i] {
				t.Fatalf("col %d dict[%d]: want %q, got %q", c, i, wd[i], gd[i])
			}
		}
	}
	if want.Len() != got.Len() {
		t.Fatalf("rows: want %d, got %d", want.Len(), got.Len())
	}
	for c := 0; c < ws.Len(); c++ {
		wv, gv := want.ColumnView(c), got.ColumnView(c)
		for r := range wv {
			if math.Float64bits(wv[r]) != math.Float64bits(gv[r]) {
				t.Fatalf("value (%d,%d): want %v (%x), got %v (%x)",
					r, c, wv[r], math.Float64bits(wv[r]), gv[r], math.Float64bits(gv[r]))
			}
		}
	}
	if TableHash(want) != TableHash(got) {
		t.Fatal("TableHash disagrees on bit-identical tables")
	}
}

// Snapshot → reopen must reproduce the table bit-identically, including
// through a fresh backend over the same directory (a process restart).
func TestSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		tbl := randomTable(rng)
		for kind, b := range backends(t) {
			name := fmt.Sprintf("ds-%d", trial)
			if err := Write(b, name, tbl); err != nil {
				t.Fatalf("%s trial %d: %v", kind, trial, err)
			}
			got, epochs, err := b.Open(name)
			if err != nil {
				t.Fatalf("%s trial %d: %v", kind, trial, err)
			}
			if len(epochs) != 0 {
				t.Fatalf("%s: fresh snapshot has %d epochs", kind, len(epochs))
			}
			requireTablesIdentical(t, tbl, got)
			if fb, ok := b.(*FileBackend); ok {
				fresh, err := NewFileBackend(fb.Dir())
				if err != nil {
					t.Fatal(err)
				}
				reopened, _, err := fresh.Open(name)
				if err != nil {
					t.Fatalf("reopen trial %d: %v", trial, err)
				}
				requireTablesIdentical(t, tbl, reopened)
			}
		}
	}
}

// Epoch replay: a sequence of appends (with new dictionary labels) and
// deletes must reproduce both the table and the epoch log, in-process
// and across a reopen.
func TestEpochReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		tbl := randomTable(rng)
		for kind, b := range backends(t) {
			name := fmt.Sprintf("ds-%d", trial)
			if err := Write(b, name, tbl); err != nil {
				t.Fatal(err)
			}
			cur := tbl.Clone()
			var wantEpochs []Epoch
			for e := 0; e < 4; e++ {
				if cur.Len() > 2 && rng.Intn(2) == 0 {
					var ids []int
					for r := 0; r < cur.Len(); r++ {
						if rng.Intn(4) == 0 {
							ids = append(ids, r)
						}
					}
					if err := b.DeleteEpoch(name, ids); err != nil {
						t.Fatalf("%s delete: %v", kind, err)
					}
					wantEpochs = append(wantEpochs, Epoch{OldToNew: oldToNewMap(cur.Len(), ids)})
					keep := make([]int, 0, cur.Len())
					seen := make(map[int]bool, len(ids))
					for _, id := range ids {
						seen[id] = true
					}
					for r := 0; r < cur.Len(); r++ {
						if !seen[r] {
							keep = append(keep, r)
						}
					}
					sub, err := cur.Subset(keep)
					if err != nil {
						t.Fatal(err)
					}
					cur = sub
					continue
				}
				from, lens := cur.Len(), DictLens(cur)
				n := 1 + rng.Intn(10)
				for r := 0; r < n; r++ {
					vals := make([]any, cur.Width())
					for c := 0; c < cur.Width(); c++ {
						if cur.Schema().Attr(c).Kind == dataset.Categorical {
							vals[c] = fmt.Sprintf("new-%d-%d-%d", e, r, rng.Intn(3))
						} else {
							vals[c] = rng.NormFloat64()
						}
					}
					if err := cur.AppendRow(vals...); err != nil {
						t.Fatal(err)
					}
				}
				if err := AppendRows(b, name, cur, from, lens); err != nil {
					t.Fatalf("%s append: %v", kind, err)
				}
				wantEpochs = append(wantEpochs, Epoch{Appended: n})
			}
			check := func(label string, open Backend) {
				got, epochs, err := open.Open(name)
				if err != nil {
					t.Fatalf("%s %s open: %v", kind, label, err)
				}
				requireTablesIdentical(t, cur, got)
				if len(epochs) != len(wantEpochs) {
					t.Fatalf("%s %s: %d epochs, want %d", kind, label, len(epochs), len(wantEpochs))
				}
				for i := range epochs {
					if epochs[i].Appended != wantEpochs[i].Appended {
						t.Fatalf("%s %s epoch %d: appended %d, want %d",
							kind, label, i, epochs[i].Appended, wantEpochs[i].Appended)
					}
					if fmt.Sprint(epochs[i].OldToNew) != fmt.Sprint(wantEpochs[i].OldToNew) {
						t.Fatalf("%s %s epoch %d: oldToNew %v, want %v",
							kind, label, i, epochs[i].OldToNew, wantEpochs[i].OldToNew)
					}
				}
			}
			check("live", b)
			if fb, ok := b.(*FileBackend); ok {
				fresh, err := NewFileBackend(fb.Dir())
				if err != nil {
					t.Fatal(err)
				}
				check("reopened", fresh)
			}
		}
	}
}

// datasetFile writes a snapshot plus one append epoch and returns the
// backend dir, file path, and the file size right after the snapshot
// commit (= the first commit boundary).
func datasetFile(t *testing.T) (dir, path string, snapEnd int64, snapRows int) {
	t.Helper()
	dir = t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl := randomTable(rand.New(rand.NewSource(7)))
	for tbl.Len() < 3 { // ensure a non-trivial snapshot
		tbl = randomTable(rand.New(rand.NewSource(8)))
	}
	if err := Write(b, "ds", tbl); err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(dir, "ds.tcs")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	snapEnd, snapRows = fi.Size(), tbl.Len()
	from, lens := tbl.Len(), DictLens(tbl)
	if err := tbl.AppendRow(rowFor(tbl)...); err != nil {
		t.Fatal(err)
	}
	if err := AppendRows(b, "ds", tbl, from, lens); err != nil {
		t.Fatal(err)
	}
	return dir, path, snapEnd, snapRows
}

func rowFor(tbl *dataset.Table) []any {
	vals := make([]any, tbl.Width())
	for c := range vals {
		if tbl.Schema().Attr(c).Kind == dataset.Categorical {
			vals[c] = "appended-label"
		} else {
			vals[c] = 42.5
		}
	}
	return vals
}

// A torn tail — truncation anywhere after the last surviving commit —
// must silently reopen at that commit, not error.
func TestTornTailRecovers(t *testing.T) {
	dir, path, snapEnd, snapRows := datasetFile(t)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{snapEnd, snapEnd + 1, snapEnd + 5, int64(len(full)) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := NewFileBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		tbl, epochs, err := b.Open("ds")
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if tbl.Len() != snapRows || len(epochs) != 0 {
			t.Fatalf("cut at %d: %d rows / %d epochs, want snapshot state %d/0",
				cut, tbl.Len(), len(epochs), snapRows)
		}
	}
	// Untouched file still has the append epoch.
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	b, _ := NewFileBackend(dir)
	tbl, epochs, err := b.Open("ds")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != snapRows+1 || len(epochs) != 1 {
		t.Fatalf("full file: %d rows / %d epochs", tbl.Len(), len(epochs))
	}
}

// Corruption in the committed region must surface as ErrCorrupt; a file
// that ends before its first commit must surface as ErrTruncated. Never
// a panic, never silent data loss.
func TestCorruptAndTruncated(t *testing.T) {
	dir, path, snapEnd, _ := datasetFile(t)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func() error {
		b, err := NewFileBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = b.Open("ds")
		return err
	}
	// Flip one byte at several places inside the committed region.
	for _, off := range []int64{8, snapEnd / 2, snapEnd - 2} {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := reopen(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", off, err)
		}
	}
	// Bad magic.
	mut := append([]byte(nil), full...)
	mut[0] = 'X'
	os.WriteFile(path, mut, 0o644)
	if err := reopen(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
	// Truncated before the first commit.
	for _, cut := range []int64{0, 4, 8, 20, snapEnd - 1} {
		if int(cut) > len(full) {
			continue
		}
		os.WriteFile(path, full[:cut], 0o644)
		if err := reopen(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestBackendErrors(t *testing.T) {
	for kind, b := range backends(t) {
		if _, _, err := b.Open("nope"); !errors.Is(err, ErrUnknownDataset) {
			t.Errorf("%s: open missing: %v", kind, err)
		}
		if err := b.Remove("nope"); !errors.Is(err, ErrUnknownDataset) {
			t.Errorf("%s: remove missing: %v", kind, err)
		}
		tbl := randomTable(rand.New(rand.NewSource(3)))
		if err := Write(b, "ds", tbl); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Create("ds", tbl.Schema()); !errors.Is(err, ErrExists) {
			t.Errorf("%s: duplicate create: %v", kind, err)
		}
		if err := b.DeleteEpoch("ds", []int{tbl.Len() + 5}); err == nil {
			t.Errorf("%s: out-of-range delete accepted", kind)
		}
		names, err := b.List()
		if err != nil || len(names) != 1 || names[0] != "ds" {
			t.Errorf("%s: list %v, %v", kind, names, err)
		}
		if err := b.Remove("ds"); err != nil {
			t.Errorf("%s: remove: %v", kind, err)
		}
		if names, _ := b.List(); len(names) != 0 {
			t.Errorf("%s: list after remove: %v", kind, names)
		}
	}
}

// An aborted snapshot must leave nothing behind and free the name.
func TestSnapshotAbort(t *testing.T) {
	for kind, b := range backends(t) {
		tbl := randomTable(rand.New(rand.NewSource(4)))
		w, err := b.Create("ds", tbl.Schema())
		if err != nil {
			t.Fatal(err)
		}
		if _, werr := b.Create("ds", tbl.Schema()); !errors.Is(werr, ErrExists) {
			t.Errorf("%s: concurrent create of pending name: %v", kind, werr)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if names, _ := b.List(); len(names) != 0 {
			t.Errorf("%s: aborted snapshot is listed: %v", kind, names)
		}
		if err := Write(b, "ds", tbl); err != nil {
			t.Errorf("%s: name not freed after abort: %v", kind, err)
		}
		if fb, ok := b.(*FileBackend); ok {
			ents, _ := os.ReadDir(fb.Dir())
			for _, e := range ents {
				if filepath.Ext(e.Name()) == ".tmp" {
					t.Errorf("temp file left behind: %s", e.Name())
				}
			}
		}
	}
}

// IngestCSV must match dataset.ReadCSV bit for bit and honor its buffer
// budget even when that forces many small chunks.
func TestIngestCSVMatchesReadCSV(t *testing.T) {
	src := synth.PatientDischarge(2000, 11)
	var buf bytes.Buffer
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := dataset.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for kind, b := range backends(t) {
		const budget = 16 << 10
		stats, err := IngestCSV(b, "ds", bytes.NewReader(buf.Bytes()), budget)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if stats.Rows != src.Len() {
			t.Fatalf("%s: ingested %d rows, want %d", kind, stats.Rows, src.Len())
		}
		if stats.Chunks < 2 {
			t.Fatalf("%s: budget %d did not force chunking (%d chunks)", kind, budget, stats.Chunks)
		}
		if stats.MaxBufferedBytes > budget {
			t.Fatalf("%s: buffered %d bytes, budget %d", kind, stats.MaxBufferedBytes, budget)
		}
		got, _, err := b.Open("ds")
		if err != nil {
			t.Fatal(err)
		}
		requireTablesIdentical(t, want, got)
	}
}

// The headline contract: a million-row CSV ingests under a bounded
// buffer budget — the table is never materialized on the write path —
// and reopens bit-identical without re-parsing CSV.
func TestIngestMillionRowsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row ingest skipped in -short mode")
	}
	const rows = 1_000_000
	src := synth.PatientDischarge(rows, 5)
	csvPath := filepath.Join(t.TempDir(), "big.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	const budget = 4 << 20
	stats, err := IngestCSV(b, "big", in, budget)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != rows {
		t.Fatalf("ingested %d rows, want %d", stats.Rows, rows)
	}
	if stats.MaxBufferedBytes > budget {
		t.Fatalf("chunk buffer peaked at %d bytes, budget %d", stats.MaxBufferedBytes, budget)
	}
	if stats.Chunks < rows*8*src.Width()/budget/2 {
		t.Fatalf("suspiciously few chunks (%d) for budget %d", stats.Chunks, budget)
	}
	got, _, err := b.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rows {
		t.Fatalf("reopened %d rows, want %d", got.Len(), rows)
	}
	if TableHash(got) != TableHash(src) {
		t.Fatal("reopened table hash differs from source")
	}
}

// Chunks streams the same content Open materializes.
func TestChunksStream(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(9)))
	for kind, b := range backends(t) {
		if err := Write(b, "ds", tbl); err != nil {
			t.Fatal(err)
		}
		rebuilt := dataset.MustTable(tbl.Schema())
		err := b.Chunks("ds", func(s *dataset.Schema, ch ColumnChunk) error {
			return applyChunk(rebuilt, ch)
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		requireTablesIdentical(t, tbl, rebuilt)
	}
}
