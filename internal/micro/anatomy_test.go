package micro

import (
	"sort"
	"testing"

	"repro/internal/synth"
)

func TestAnatomyReleasePreservesQIs(t *testing.T) {
	tbl := synth.Census(200, synth.FedTax, 3)
	clusters, err := MDAV(tbl.QIMatrix(), 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := AnatomyRelease(tbl, clusters, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tbl.Schema().QuasiIdentifiers() {
		for r := 0; r < tbl.Len(); r++ {
			if out.Value(r, col) != tbl.Value(r, col) {
				t.Fatalf("QI value (%d,%d) changed", r, col)
			}
		}
	}
}

func TestAnatomyReleasePermutesWithinClusters(t *testing.T) {
	tbl := synth.Census(200, synth.FedTax, 3)
	clusters, err := MDAV(tbl.QIMatrix(), 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := AnatomyRelease(tbl, clusters, 1)
	if err != nil {
		t.Fatal(err)
	}
	conf := tbl.Schema().Confidentials()[0]
	changed := 0
	for _, c := range clusters {
		// The multiset of confidential values per cluster is invariant.
		orig := make([]float64, 0, len(c.Rows))
		perm := make([]float64, 0, len(c.Rows))
		for _, r := range c.Rows {
			orig = append(orig, tbl.Value(r, conf))
			perm = append(perm, out.Value(r, conf))
			if tbl.Value(r, conf) != out.Value(r, conf) {
				changed++
			}
		}
		sort.Float64s(orig)
		sort.Float64s(perm)
		for i := range orig {
			if orig[i] != perm[i] {
				t.Fatal("cluster confidential multiset changed")
			}
		}
	}
	if changed == 0 {
		t.Error("permutation left every record in place; link not broken")
	}
}

func TestAnatomyReleaseDeterministic(t *testing.T) {
	tbl := synth.Uniform(60, 2, 5)
	clusters, err := MDAV(tbl.QIMatrix(), 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnatomyRelease(tbl, clusters, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnatomyRelease(tbl, clusters, 42)
	if err != nil {
		t.Fatal(err)
	}
	conf := tbl.Schema().Confidentials()[0]
	for r := 0; r < tbl.Len(); r++ {
		if a.Value(r, conf) != b.Value(r, conf) {
			t.Fatal("same seed should give the same release")
		}
	}
}

func TestAnatomyReleaseRejectsNonPartition(t *testing.T) {
	tbl := synth.Uniform(10, 2, 7)
	if _, err := AnatomyRelease(tbl, []Cluster{{Rows: []int{0, 1}}}, 1); err == nil {
		t.Error("incomplete partition should fail")
	}
}
