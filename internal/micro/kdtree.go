package micro

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements the spatial-index neighbor substrate: a bucketed k-d
// tree over a fixed candidate row set of a Matrix, supporting deletion and
// exact branch-and-bound Nearest / Farthest / KNearest queries plus an
// incremental nearest-first candidate stream.
//
// Determinism contract: every query breaks ties in exact (distance, rank)
// order, where rank is the position of the row in the slice the tree was
// built from. Because the partition loops only ever *delete* rows (never
// reorder them), the rank order of the surviving rows always coincides with
// their relative order in the caller's shrinking candidate slice, so every
// query returns bit-identically the same row the linear scan over that slice
// would have returned. The bounding-box bounds themselves are exact in
// floating point: each per-dimension gap term of minDist2 (maxDist2) is a
// lower (upper) bound of the corresponding term of RowDist2, the terms are
// accumulated in the same dimension order, and float64 addition and squaring
// are monotone under rounding — so a pruned subtree provably cannot contain
// a better row, and pruning never changes the result, only the work.

// kdLeafSize is the bucket size at which recursion stops. Leaves are scanned
// linearly over a tree-ordered contiguous copy of the coordinates, so small
// buckets keep the scan cache-friendly while bounding tree depth.
const kdLeafSize = 16

// kdParallelMin is the subtree size below which the build stops spawning
// goroutines and recurses inline.
const kdParallelMin = 4096

type kdNode struct {
	start, end  int32 // item positions covered by this subtree
	left, right int32 // children; -1 for leaves
	parent      int32 // -1 for the root
	count       int32 // alive items in the subtree
	// radLo and radHi bound the true (non-squared) distance from the
	// pivot to every point in the subtree, conservatively rounded outward.
	// Together with the pivot-to-query distance they give triangle-
	// inequality annulus bounds that keep pruning effective in higher
	// dimensions, where axis-aligned boxes alone prune poorly.
	radLo, radHi float64
}

// kdEps is the relative safety margin applied to every radial bound. The
// bounds chain a handful of float64 operations (distance accumulation,
// square root, one addition, one squaring), each within a few ulps
// (relative error ~1e-15); inflating or deflating by 1e-12 provably covers
// the accumulated rounding, so a radial prune can never cut off the true
// best row — pruning decisions are conservative, query results stay exact.
const kdEps = 1e-12

// KDTree is a deletable k-d tree over a subset of the rows of a Matrix.
type KDTree struct {
	m   *Matrix
	dim int

	nodes []kdNode
	boxes []float64 // per node: dim lows then dim highs

	items  []int32   // row ids in tree order (position-indexed)
	rank   []int32   // build-order rank of each position's row
	pts    []float64 // tree-ordered copy of the row coordinates
	alive  []bool
	leafOf []int32 // position -> leaf node
	posOf  []int32 // row -> position; -1 when the row is not in the tree

	pivot []float64 // centroid of the build points, anchor of the radial bounds
	rad2  []float64 // squared pivot distance per position

	nAlive int
}

// kdQuery carries the per-query pivot geometry: conservative lower and
// upper bounds on the true distance from the pivot to the query point.
type kdQuery struct {
	p            []float64
	dcpLo, dcpHi float64
}

func (t *KDTree) newQuery(p []float64) kdQuery {
	d := math.Sqrt(Dist2(t.pivot, p))
	return kdQuery{p: p, dcpLo: d * (1 - kdEps), dcpHi: d * (1 + kdEps)}
}

// radialMin2 returns a safe lower bound on the squared distance from the
// query to any point of node nd: points live in the pivot annulus
// [radLo, radHi], so their distance to the query is at least the gap
// between that annulus and the pivot-to-query distance.
func (nd *kdNode) radialMin2(q *kdQuery) float64 {
	g := q.dcpLo - nd.radHi
	if h := nd.radLo - q.dcpHi; h > g {
		g = h
	}
	if g <= 0 {
		return 0
	}
	return g * g * (1 - kdEps)
}

// radialMax2 returns a safe upper bound on the squared distance from the
// query to any point of node nd.
func (nd *kdNode) radialMax2(q *kdQuery) float64 {
	u := q.dcpHi + nd.radHi
	return u * u * (1 + kdEps)
}

// kdNodeCount returns the number of tree nodes a segment of s items
// produces, memoizing by size. The build recursion visits exactly the sizes
// this recursion visits, so a fully populated memo can be read concurrently
// by the parallel build.
func kdNodeCount(s int, memo map[int]int32) int32 {
	if s <= kdLeafSize {
		return 1
	}
	if v, ok := memo[s]; ok {
		return v
	}
	l := (s + 1) / 2
	v := 1 + kdNodeCount(l, memo) + kdNodeCount(s-l, memo)
	memo[s] = v
	return v
}

// NewKDTree builds a k-d tree over the given rows of m. The order of rows
// fixes the tie-breaking rank of every query (see the determinism contract
// above). Splits are at the median position of the widest bounding-box
// dimension, so the tree is balanced regardless of the data; duplicated
// points cost pruning power, never correctness. Subtrees of at least
// kdParallelMin items are built concurrently under the MaxScanWorkers
// budget; every goroutine writes disjoint preallocated ranges, so the built
// tree is identical to a serial build.
func NewKDTree(m *Matrix, rows []int) *KDTree {
	n := len(rows)
	if n == 0 || m.dim == 0 {
		return nil
	}
	memo := make(map[int]int32)
	total := int(kdNodeCount(n, memo))
	t := &KDTree{
		m:      m,
		dim:    m.dim,
		nodes:  make([]kdNode, total),
		boxes:  make([]float64, total*2*m.dim),
		items:  make([]int32, n),
		rank:   make([]int32, n),
		pts:    make([]float64, n*m.dim),
		alive:  make([]bool, n),
		leafOf: make([]int32, n),
		posOf:  make([]int32, m.n),
		nAlive: n,
	}
	for i := range t.posOf {
		t.posOf[i] = -1
	}
	for i, r := range rows {
		t.items[i] = int32(r)
		t.rank[i] = int32(i)
		copy(t.pts[i*t.dim:(i+1)*t.dim], m.Row(r))
		t.alive[i] = true
	}
	t.pivot = make([]float64, t.dim)
	for i := 0; i < n; i++ {
		for j, v := range t.pts[i*t.dim : (i+1)*t.dim] {
			t.pivot[j] += v
		}
	}
	for j := range t.pivot {
		t.pivot[j] /= float64(n)
	}
	t.rad2 = make([]float64, n)
	for i := 0; i < n; i++ {
		t.rad2[i] = Dist2(t.pivot, t.pts[i*t.dim:(i+1)*t.dim])
	}
	workers := m.workerBudget()
	var tokens chan struct{}
	if workers > 1 && n >= kdParallelMin {
		tokens = make(chan struct{}, workers-1)
	}
	var wg sync.WaitGroup
	t.build(0, -1, 0, int32(n), memo, tokens, &wg)
	wg.Wait()
	for i, r := range t.items {
		t.posOf[r] = int32(i)
	}
	return t
}

// build fills node idx covering positions [start, end). Child node indices
// are a pure function of the segment sizes (preorder layout), so concurrent
// subtree builds write disjoint node ranges without coordination.
func (t *KDTree) build(idx, parent, start, end int32, memo map[int]int32, tokens chan struct{}, wg *sync.WaitGroup) {
	nd := &t.nodes[idx]
	nd.start, nd.end, nd.parent = start, end, parent
	nd.count = end - start
	box := t.boxes[int(idx)*2*t.dim : (int(idx)+1)*2*t.dim]
	lo, hi := box[:t.dim], box[t.dim:]
	first := t.pts[int(start)*t.dim : int(start+1)*t.dim]
	copy(lo, first)
	copy(hi, first)
	r2lo, r2hi := t.rad2[start], t.rad2[start]
	for i := start + 1; i < end; i++ {
		p := t.pts[int(i)*t.dim : int(i+1)*t.dim]
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
		if r2 := t.rad2[i]; r2 < r2lo {
			r2lo = r2
		} else if r2 > r2hi {
			r2hi = r2
		}
	}
	nd.radLo = math.Sqrt(r2lo) * (1 - kdEps)
	nd.radHi = math.Sqrt(r2hi) * (1 + kdEps)
	size := end - start
	if size <= kdLeafSize {
		nd.left, nd.right = -1, -1
		for i := start; i < end; i++ {
			t.leafOf[i] = idx
		}
		return
	}
	ax := 0
	width := hi[0] - lo[0]
	for j := 1; j < t.dim; j++ {
		if w := hi[j] - lo[j]; w > width {
			ax, width = j, w
		}
	}
	t.sortSegment(start, end, ax)
	sizeL := (size + 1) / 2
	mid := start + sizeL
	nd.left = idx + 1
	nd.right = idx + 1 + kdNodeCount(int(sizeL), memo)
	left, right := nd.left, nd.right
	if tokens != nil && size >= kdParallelMin {
		select {
		case tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				t.build(left, idx, start, mid, memo, tokens, wg)
				<-tokens
			}()
			t.build(right, idx, mid, end, memo, tokens, wg)
			return
		default:
		}
	}
	t.build(left, idx, start, mid, memo, tokens, wg)
	t.build(right, idx, mid, end, memo, tokens, wg)
}

// sortSegment orders positions [start, end) by (coordinate on axis ax,
// rank): the secondary rank key makes the tree layout — though not any query
// result — independent of sort stability.
func (t *KDTree) sortSegment(start, end int32, ax int) {
	sort.Sort(kdSegment{t: t, off: int(start), n: int(end - start), ax: ax})
}

type kdSegment struct {
	t   *KDTree
	off int
	n   int
	ax  int
}

func (s kdSegment) Len() int { return s.n }

func (s kdSegment) key(i int) (float64, int32) {
	p := s.off + i
	return s.t.pts[p*s.t.dim+s.ax], s.t.rank[p]
}

func (s kdSegment) Less(i, j int) bool {
	ci, ri := s.key(i)
	cj, rj := s.key(j)
	if ci != cj {
		return ci < cj
	}
	return ri < rj
}

func (s kdSegment) Swap(i, j int) {
	t := s.t
	a, b := s.off+i, s.off+j
	t.items[a], t.items[b] = t.items[b], t.items[a]
	t.rank[a], t.rank[b] = t.rank[b], t.rank[a]
	t.rad2[a], t.rad2[b] = t.rad2[b], t.rad2[a]
	pa := t.pts[a*t.dim : (a+1)*t.dim]
	pb := t.pts[b*t.dim : (b+1)*t.dim]
	for k := range pa {
		pa[k], pb[k] = pb[k], pa[k]
	}
}

// Clone returns an independent copy of the tree: deletions on the clone do
// not affect the original (or other clones). Only the mutable liveness
// state — per-node alive counts and the alive bits — is copied; the
// geometry, layout, bounds and rank arrays are immutable after the build
// and shared, so a clone costs O(n) memory copies against the
// O(n·log n) sort-dominated build.
func (t *KDTree) Clone() *KDTree {
	c := *t
	c.nodes = append([]kdNode(nil), t.nodes...)
	c.alive = append([]bool(nil), t.alive...)
	return &c
}

// Len returns the number of rows still alive in the tree.
func (t *KDTree) Len() int { return t.nAlive }

// Contains reports whether row is in the tree and not deleted.
func (t *KDTree) Contains(row int) bool {
	pos := t.posOf[row]
	return pos >= 0 && t.alive[pos]
}

// Delete removes a row from every future query, updating subtree counts
// along the leaf-to-root path (O(log n)). Deleting a row that is not alive
// in the tree is a caller bug and panics: the partition loops mirror their
// candidate-slice removals into the tree one-to-one, so a mismatch means the
// two views have desynchronized.
func (t *KDTree) Delete(row int) {
	pos := t.posOf[row]
	if pos < 0 || !t.alive[pos] {
		panic(fmt.Sprintf("micro: KDTree.Delete(%d): row not alive in tree", row))
	}
	t.alive[pos] = false
	t.nAlive--
	for ni := t.leafOf[pos]; ni >= 0; ni = t.nodes[ni].parent {
		t.nodes[ni].count--
	}
}

// dist2At returns the squared distance between the tree-ordered point at pos
// and p, accumulating dimensions in the same order as Matrix.RowDist2 so the
// float64 result is identical.
func (t *KDTree) dist2At(pos int32, p []float64) float64 {
	r := t.pts[int(pos)*t.dim : (int(pos)+1)*t.dim]
	var s float64
	for j, v := range p {
		d := r[j] - v
		s += d * d
	}
	return s
}

// minDist2 returns an exact float64 lower bound on the squared distance from
// p to any point in node ni's bounding box.
func (t *KDTree) minDist2(ni int32, p []float64) float64 {
	box := t.boxes[int(ni)*2*t.dim : (int(ni)+1)*2*t.dim]
	lo, hi := box[:t.dim], box[t.dim:]
	var s float64
	for j, v := range p {
		if v < lo[j] {
			d := lo[j] - v
			s += d * d
		} else if v > hi[j] {
			d := v - hi[j]
			s += d * d
		}
	}
	return s
}

// lowerBound2 returns the tighter of the box and annulus lower bounds on
// the squared distance from the query to any point of node ni.
func (t *KDTree) lowerBound2(ni int32, q *kdQuery) float64 {
	lb := t.minDist2(ni, q.p)
	if r := t.nodes[ni].radialMin2(q); r > lb {
		lb = r
	}
	return lb
}

// upperBound2 returns the tighter of the box and annulus upper bounds on
// the squared distance from the query to any point of node ni.
func (t *KDTree) upperBound2(ni int32, q *kdQuery) float64 {
	ub := t.maxDist2(ni, q.p)
	if r := t.nodes[ni].radialMax2(q); r < ub {
		ub = r
	}
	return ub
}

// maxDist2 returns an exact float64 upper bound on the squared distance from
// p to any point in node ni's bounding box.
func (t *KDTree) maxDist2(ni int32, p []float64) float64 {
	box := t.boxes[int(ni)*2*t.dim : (int(ni)+1)*2*t.dim]
	lo, hi := box[:t.dim], box[t.dim:]
	var s float64
	for j, v := range p {
		a := v - lo[j]
		if a < 0 {
			a = -a
		}
		b := hi[j] - v
		if b < 0 {
			b = -b
		}
		if b > a {
			a = b
		}
		s += a * a
	}
	return s
}

// kdBest carries the incumbent of a single-result query.
type kdBest struct {
	d     float64
	rank  int32
	row   int32
	found bool
}

// Nearest returns the alive row nearest to p in exact (distance, rank)
// order, or -1 when the tree is empty.
func (t *KDTree) Nearest(p []float64) int {
	if t.nAlive == 0 {
		return -1
	}
	q := t.newQuery(p)
	var b kdBest
	t.nearest(0, &q, &b)
	return int(b.row)
}

func (t *KDTree) nearest(ni int32, q *kdQuery, b *kdBest) {
	nd := &t.nodes[ni]
	if nd.count == 0 {
		return
	}
	if nd.left < 0 {
		for i := nd.start; i < nd.end; i++ {
			if !t.alive[i] {
				continue
			}
			d := t.dist2At(i, q.p)
			if !b.found || d < b.d || (d == b.d && t.rank[i] < b.rank) {
				b.found, b.d, b.rank, b.row = true, d, t.rank[i], t.items[i]
			}
		}
		return
	}
	c1, c2 := nd.left, nd.right
	d1, d2 := t.lowerBound2(c1, q), t.lowerBound2(c2, q)
	if d2 < d1 {
		c1, c2, d1, d2 = c2, c1, d2, d1
	}
	// Descend on equality: a subtree at exactly the incumbent distance can
	// still hold an equal-distance row with a smaller rank.
	if !b.found || d1 <= b.d {
		t.nearest(c1, q, b)
	}
	if !b.found || d2 <= b.d {
		t.nearest(c2, q, b)
	}
}

// Farthest returns the alive row farthest from p, breaking distance ties
// toward the smallest rank, or -1 when the tree is empty.
func (t *KDTree) Farthest(p []float64) int {
	if t.nAlive == 0 {
		return -1
	}
	q := t.newQuery(p)
	var b kdBest
	t.farthest(0, &q, &b)
	return int(b.row)
}

func (t *KDTree) farthest(ni int32, q *kdQuery, b *kdBest) {
	nd := &t.nodes[ni]
	if nd.count == 0 {
		return
	}
	if nd.left < 0 {
		for i := nd.start; i < nd.end; i++ {
			if !t.alive[i] {
				continue
			}
			d := t.dist2At(i, q.p)
			if !b.found || d > b.d || (d == b.d && t.rank[i] < b.rank) {
				b.found, b.d, b.rank, b.row = true, d, t.rank[i], t.items[i]
			}
		}
		return
	}
	c1, c2 := nd.left, nd.right
	d1, d2 := t.upperBound2(c1, q), t.upperBound2(c2, q)
	if d2 > d1 {
		c1, c2, d1, d2 = c2, c1, d2, d1
	}
	if !b.found || d1 >= b.d {
		t.farthest(c1, q, b)
	}
	if !b.found || d2 >= b.d {
		t.farthest(c2, q, b)
	}
}

// kdKEntry is one member of the bounded k-nearest heap.
type kdKEntry struct {
	d    float64
	rank int32
	row  int32
}

// kdKHeap is a max-heap by (d, rank): the top is the current worst of the k
// best, the entry the next better candidate displaces.
type kdKHeap []kdKEntry

func (h kdKHeap) worse(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d > h[j].d
	}
	return h[i].rank > h[j].rank
}

func (h kdKHeap) siftUp(i int) {
	for i > 0 {
		par := (i - 1) / 2
		if !h.worse(i, par) {
			return
		}
		h[i], h[par] = h[par], h[i]
		i = par
	}
}

func (h kdKHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		next := l
		if r := l + 1; r < n && h.worse(r, l) {
			next = r
		}
		if !h.worse(next, i) {
			return
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
}

// KNearest returns the k alive rows nearest to p in ascending (distance,
// rank) order — exactly the first k entries of a full (distance, rank) sort
// of the alive rows. Fewer than k alive rows returns all of them.
func (t *KDTree) KNearest(p []float64, k int) []int {
	if k > t.nAlive {
		k = t.nAlive
	}
	if k <= 0 {
		return nil
	}
	q := t.newQuery(p)
	h := make(kdKHeap, 0, k)
	t.kNearest(0, &q, k, &h)
	// Heap-sort the survivors into ascending (d, rank) order in place.
	out := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = int(h[0].row)
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		h.siftDown(0)
	}
	return out
}

func (t *KDTree) kNearest(ni int32, q *kdQuery, k int, h *kdKHeap) {
	nd := &t.nodes[ni]
	if nd.count == 0 {
		return
	}
	if nd.left < 0 {
		for i := nd.start; i < nd.end; i++ {
			if !t.alive[i] {
				continue
			}
			d := t.dist2At(i, q.p)
			if len(*h) < k {
				*h = append(*h, kdKEntry{d: d, rank: t.rank[i], row: t.items[i]})
				h.siftUp(len(*h) - 1)
			} else if top := (*h)[0]; d < top.d || (d == top.d && t.rank[i] < top.rank) {
				(*h)[0] = kdKEntry{d: d, rank: t.rank[i], row: t.items[i]}
				h.siftDown(0)
			}
		}
		return
	}
	c1, c2 := nd.left, nd.right
	d1, d2 := t.lowerBound2(c1, q), t.lowerBound2(c2, q)
	if d2 < d1 {
		c1, c2, d1, d2 = c2, c1, d2, d1
	}
	if len(*h) < k || d1 <= (*h)[0].d {
		t.kNearest(c1, q, k, h)
	}
	if len(*h) < k || d2 <= (*h)[0].d {
		t.kNearest(c2, q, k, h)
	}
}
