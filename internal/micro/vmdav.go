package micro

// VMDAVGammaDefault is the gain threshold recommended by Solanas and
// Martínez-Ballesté for V-MDAV's cluster extension step.
const VMDAVGammaDefault = 0.2

// VMDAV implements V-MDAV (Variable-size Maximum Distance to AVerage,
// Solanas & Martínez-Ballesté 2006), the variable-group-size refinement of
// MDAV referenced in Section 5 of the paper. Unlike MDAV, clusters may grow
// beyond k (up to 2k-1 records) when an unassigned record is closer to the
// cluster than to its own unassigned neighborhood, which better adapts to
// non-uniform point densities.
//
// gamma controls how eagerly clusters are extended: an unassigned record u
// at squared distance du from the cluster centroid is absorbed if
// du < gamma * din, where din is the squared distance from u to its nearest
// unassigned neighbor. gamma <= 0 selects VMDAVGammaDefault.
func VMDAV(points [][]float64, k int, gamma float64) ([]Cluster, error) {
	return VMDAVMatrix(NewMatrix(points), k, gamma)
}

// VMDAVMatrix is VMDAV over an already-flattened point matrix. Like
// MDAVMatrix it runs on the shared partition substrate: running centroid of
// the unassigned records, and Farthest/KNearest/Nearest routed through a
// Searcher (k-d tree above IndexCrossover, linear scans below).
func VMDAVMatrix(m *Matrix, k int, gamma float64) ([]Cluster, error) {
	n := m.N()
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if gamma <= 0 {
		gamma = VMDAVGammaDefault
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	rc := NewRunningCentroid(m)
	search := m.NewSearcher(remaining)
	scratch := make([]bool, n)
	one := make([]int, 1)
	cbuf := make([]float64, m.Dim())
	var clusters []Cluster
	for len(remaining) >= 2*k {
		xr := search.Farthest(remaining, rc.CentroidOf(remaining))
		rows := search.KNearest(remaining, m.Row(xr), k)
		remaining = FilterRows(remaining, rows, scratch)
		rc.RemoveRows(rows)
		search.Remove(rows)
		// Extension: absorb up to k-1 more records that are locally closer
		// to this cluster than to the rest of the unassigned points.
		for len(rows) < 2*k-1 && len(remaining) > k {
			cen := m.CentroidRows(rows, cbuf)
			u := search.Nearest(remaining, cen)
			du := m.RowDist2(u, cen)
			din := nearestNeighborDist2(m, search, remaining, u)
			if du < gamma*din {
				rows = append(rows, u)
				one[0] = u
				remaining = FilterRows(remaining, one, scratch)
				rc.RemoveRows(one)
				search.Remove(one)
			} else {
				break
			}
		}
		clusters = append(clusters, Cluster{Rows: rows})
	}
	// Fewer than 2k remain: k..2k-1 records form a final cluster; fewer than
	// k are assigned to their nearest existing cluster.
	if len(remaining) >= k || len(clusters) == 0 {
		if len(remaining) > 0 {
			clusters = append(clusters, Cluster{Rows: remaining})
		}
	} else {
		centroids := make([][]float64, len(clusters))
		for i, cl := range clusters {
			centroids[i] = m.CentroidRows(cl.Rows, nil)
		}
		for _, r := range remaining {
			best, bestD := 0, m.RowDist2(r, centroids[0])
			for i := 1; i < len(centroids); i++ {
				if d := m.RowDist2(r, centroids[i]); d < bestD {
					best, bestD = i, d
				}
			}
			clusters[best].Rows = append(clusters[best].Rows, r)
		}
	}
	return clusters, nil
}

// nearestNeighborDist2 returns the squared distance from record u to its
// nearest other record among the remaining rows (u itself is one of them):
// the two nearest rows to u's point include u at distance zero, so the
// first of them that is not u realizes the minimum over the others.
func nearestNeighborDist2(m *Matrix, search *Searcher, remaining []int, u int) float64 {
	for _, r := range search.KNearest(remaining, m.Row(u), 2) {
		if r != u {
			return m.RowDist2(r, m.Row(u))
		}
	}
	return 0
}
