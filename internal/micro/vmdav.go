package micro

// VMDAVGammaDefault is the gain threshold recommended by Solanas and
// Martínez-Ballesté for V-MDAV's cluster extension step.
const VMDAVGammaDefault = 0.2

// VMDAV implements V-MDAV (Variable-size Maximum Distance to AVerage,
// Solanas & Martínez-Ballesté 2006), the variable-group-size refinement of
// MDAV referenced in Section 5 of the paper. Unlike MDAV, clusters may grow
// beyond k (up to 2k-1 records) when an unassigned record is closer to the
// cluster than to its own unassigned neighborhood, which better adapts to
// non-uniform point densities.
//
// gamma controls how eagerly clusters are extended: an unassigned record u
// at squared distance du from the cluster centroid is absorbed if
// du < gamma * din, where din is the squared distance from u to its nearest
// unassigned neighbor. gamma <= 0 selects VMDAVGammaDefault.
func VMDAV(points [][]float64, k int, gamma float64) ([]Cluster, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if gamma <= 0 {
		gamma = VMDAVGammaDefault
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	scratch := make([]bool, n)
	one := make([]int, 1)
	var clusters []Cluster
	for len(remaining) >= 2*k {
		c := Centroid(points, remaining)
		xr := Farthest(points, remaining, c)
		rows := KNearest(points, remaining, points[xr], k)
		remaining = FilterRows(remaining, rows, scratch)
		// Extension: absorb up to k-1 more records that are locally closer
		// to this cluster than to the rest of the unassigned points.
		for len(rows) < 2*k-1 && len(remaining) > k {
			cen := Centroid(points, rows)
			u := Nearest(points, remaining, cen)
			du := Dist2(points[u], cen)
			din := nearestNeighborDist2(points, remaining, u)
			if du < gamma*din {
				rows = append(rows, u)
				one[0] = u
				remaining = FilterRows(remaining, one, scratch)
			} else {
				break
			}
		}
		clusters = append(clusters, Cluster{Rows: rows})
	}
	// Fewer than 2k remain: k..2k-1 records form a final cluster; fewer than
	// k are assigned to their nearest existing cluster.
	if len(remaining) >= k || len(clusters) == 0 {
		if len(remaining) > 0 {
			clusters = append(clusters, Cluster{Rows: remaining})
		}
	} else {
		centroids := make([][]float64, len(clusters))
		for i, cl := range clusters {
			centroids[i] = Centroid(points, cl.Rows)
		}
		for _, r := range remaining {
			best, bestD := 0, Dist2(points[r], centroids[0])
			for i := 1; i < len(centroids); i++ {
				if d := Dist2(points[r], centroids[i]); d < bestD {
					best, bestD = i, d
				}
			}
			clusters[best].Rows = append(clusters[best].Rows, r)
		}
	}
	return clusters, nil
}

// nearestNeighborDist2 returns the squared distance from record u to its
// nearest other record among rows.
func nearestNeighborDist2(points [][]float64, rows []int, u int) float64 {
	best := -1.0
	for _, r := range rows {
		if r == u {
			continue
		}
		d := Dist2(points[r], points[u])
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
