package micro

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func shardTestMatrix(n, dim int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64()
		}
		pts[i] = row
	}
	return NewMatrix(pts)
}

// TestShardRowsDisjointCover pins the contract the sharded partition
// drivers rely on: the shards are pairwise disjoint, jointly cover the
// candidate set exactly, each is sorted ascending, and at most w come back.
func TestShardRowsDisjointCover(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 500} {
		for _, w := range []int{1, 2, 3, 8, 64} {
			m := shardTestMatrix(n, 3, int64(n*31+w))
			rows := make([]int, n)
			for i := range rows {
				rows[i] = i
			}
			shards := m.ShardRows(rows, w)
			if len(shards) > w && w >= 1 {
				t.Fatalf("n=%d w=%d: got %d shards", n, w, len(shards))
			}
			seen := make([]bool, n)
			for si, shard := range shards {
				if len(shard) == 0 {
					t.Fatalf("n=%d w=%d: empty shard %d", n, w, si)
				}
				if !sort.IntsAreSorted(shard) {
					t.Fatalf("n=%d w=%d: shard %d not ascending: %v", n, w, si, shard)
				}
				for _, r := range shard {
					if r < 0 || r >= n || seen[r] {
						t.Fatalf("n=%d w=%d: row %d out of range or duplicated", n, w, r)
					}
					seen[r] = true
				}
			}
			for r, ok := range seen {
				if !ok {
					t.Fatalf("n=%d w=%d: row %d not covered", n, w, r)
				}
			}
		}
	}
}

// TestShardRowsSubsetCandidates splits a non-full candidate set (so the
// per-call tree path is taken rather than the shared master) and checks the
// cover is exactly that subset.
func TestShardRowsSubsetCandidates(t *testing.T) {
	m := shardTestMatrix(200, 2, 9)
	var rows []int
	for r := 0; r < 200; r += 3 {
		rows = append(rows, r)
	}
	shards := m.ShardRows(rows, 4)
	var got []int
	for _, s := range shards {
		got = append(got, s...)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("shards do not cover the candidate subset exactly")
	}
}

// TestShardRowsDeterministic pins the split to be a pure function of
// (points, rows, w).
func TestShardRowsDeterministic(t *testing.T) {
	m1 := shardTestMatrix(300, 3, 77)
	m2 := shardTestMatrix(300, 3, 77)
	rows := make([]int, 300)
	for i := range rows {
		rows[i] = i
	}
	for _, w := range []int{2, 5, 8} {
		if !reflect.DeepEqual(m1.ShardRows(rows, w), m2.ShardRows(rows, w)) {
			t.Fatalf("w=%d: shard split not deterministic", w)
		}
	}
}

// TestShardRowsBalance checks the median-cut walk keeps shard sizes within
// the tree's guarantee: splitting the largest subtree first cannot leave a
// shard bigger than twice the even split on continuous data.
func TestShardRowsBalance(t *testing.T) {
	m := shardTestMatrix(1024, 3, 5)
	rows := make([]int, 1024)
	for i := range rows {
		rows[i] = i
	}
	for _, w := range []int{2, 4, 8} {
		shards := m.ShardRows(rows, w)
		if len(shards) != w {
			t.Fatalf("w=%d: got %d shards", w, len(shards))
		}
		for si, s := range shards {
			if len(s) > 2*1024/w {
				t.Fatalf("w=%d: shard %d has %d rows (> 2n/w)", w, si, len(s))
			}
		}
	}
}

// TestShardRowsDegenerate: w<2, tiny candidate sets, and zero-dimension
// geometry all come back as one shard equal to the input.
func TestShardRowsDegenerate(t *testing.T) {
	m := shardTestMatrix(10, 2, 3)
	rows := []int{4}
	for _, w := range []int{0, 1, 4} {
		shards := m.ShardRows(rows, w)
		if len(shards) != 1 || !reflect.DeepEqual(shards[0], rows) {
			t.Fatalf("w=%d single row: got %v", w, shards)
		}
	}
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if got := m.ShardRows(all, 1); len(got) != 1 || !reflect.DeepEqual(got[0], all) {
		t.Fatalf("w=1: got %v", got)
	}
}
