// Package micro implements multivariate microaggregation, the perturbative
// statistical-disclosure-control substrate on which the paper's t-closeness
// algorithms are built.
//
// Microaggregation has two steps (Section 2.3 of the paper): a partition
// step that groups the records into clusters of at least k similar records,
// and an aggregation step that replaces each record's quasi-identifier
// values by a cluster representative (the mean for numeric attributes, the
// median for categorical ones). Applying it to the quasi-identifier
// projection of a data set yields a k-anonymous data set.
//
// The package provides the MDAV and V-MDAV partition heuristics (optimal
// multivariate microaggregation is NP-hard) and the aggregation step.
package micro

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Cluster is a group of record indices that will share their aggregated
// quasi-identifier values (an equivalence class of the k-anonymous output).
type Cluster struct {
	// Rows are indices into the originating table.
	Rows []int
}

// Size returns the number of records in the cluster.
func (c Cluster) Size() int { return len(c.Rows) }

// Partition-level errors.
var (
	ErrBadK  = errors.New("micro: minimum cluster size k must be at least 1")
	ErrEmpty = errors.New("micro: no records to partition")
)

// CheckPartition verifies that clusters form a partition of exactly n
// records with no duplicates and that every cluster has at least k records
// (except that a single cluster smaller than k is tolerated only when it is
// the entire data set and n < k). It is used by tests and by the privacy
// verifiers.
func CheckPartition(clusters []Cluster, n, k int) error {
	seen := make([]bool, n)
	total := 0
	for ci, c := range clusters {
		if len(c.Rows) < k && !(len(clusters) == 1 && n < k) {
			return fmt.Errorf("micro: cluster %d has %d records, want >= %d", ci, len(c.Rows), k)
		}
		for _, r := range c.Rows {
			if r < 0 || r >= n {
				return fmt.Errorf("micro: cluster %d contains out-of-range row %d", ci, r)
			}
			if seen[r] {
				return fmt.Errorf("micro: row %d appears in more than one cluster", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("micro: clusters cover %d of %d records", total, n)
	}
	return nil
}

// SizeStats summarizes the cardinalities of a set of clusters; the paper's
// Tables 1-3 report the Min and the Avg ("actual microaggregation level").
type SizeStats struct {
	Min int
	Max int
	Avg float64
	Num int
}

// Sizes computes SizeStats over clusters. Empty input yields the zero value.
func Sizes(clusters []Cluster) SizeStats {
	if len(clusters) == 0 {
		return SizeStats{}
	}
	st := SizeStats{Min: clusters[0].Size(), Max: clusters[0].Size(), Num: len(clusters)}
	total := 0
	for _, c := range clusters {
		s := c.Size()
		total += s
		if s < st.Min {
			st.Min = s
		}
		if s > st.Max {
			st.Max = s
		}
	}
	st.Avg = float64(total) / float64(len(clusters))
	return st
}

// Dist2 returns the squared Euclidean distance between points a and b.
// Microaggregation only ever compares distances, so the square root is
// skipped everywhere.
func Dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Centroid returns the mean point of the given rows of a row-major matrix.
func Centroid(points [][]float64, rows []int) []float64 {
	if len(rows) == 0 || len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	c := make([]float64, dim)
	for _, r := range rows {
		p := points[r]
		for j := 0; j < dim; j++ {
			c[j] += p[j]
		}
	}
	inv := 1.0 / float64(len(rows))
	for j := range c {
		c[j] *= inv
	}
	return c
}

// CentroidAll returns the mean point over all rows of the matrix.
func CentroidAll(points [][]float64) []float64 {
	rows := make([]int, len(points))
	for i := range rows {
		rows[i] = i
	}
	return Centroid(points, rows)
}

// Farthest returns the row among rows whose point is farthest (Euclidean)
// from p, breaking ties toward the lowest index for determinism.
func Farthest(points [][]float64, rows []int, p []float64) int {
	best, bestD := -1, -1.0
	for _, r := range rows {
		d := Dist2(points[r], p)
		if d > bestD {
			best, bestD = r, d
		}
	}
	return best
}

// Nearest returns the row among rows whose point is nearest to p, breaking
// ties toward the lowest index.
func Nearest(points [][]float64, rows []int, p []float64) int {
	best := -1
	bestD := -1.0
	for _, r := range rows {
		d := Dist2(points[r], p)
		if best == -1 || d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// KNearest returns the k rows among rows whose points are nearest to p (p
// itself may be one of them if its row is in rows), in ascending
// (distance, row) order. If fewer than k rows are available, all are
// returned. Selection is partial — O(len(rows) + k·log k) instead of a full
// sort — but the output order, including ties, matches the sort exactly.
func KNearest(points [][]float64, rows []int, p []float64, k int) []int {
	if k > len(rows) {
		k = len(rows)
	}
	ds := make([]distRow, len(rows))
	for i, r := range rows {
		ds[i] = distRow{row: r, d: Dist2(points[r], p)}
	}
	selectSmallest(ds, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].row
	}
	return out
}

// Aggregate performs the aggregation step: it returns a copy of t in which
// every quasi-identifier value is replaced by its cluster representative —
// the mean for numeric attributes, the (lower) median code for categorical
// attributes. Confidential and non-confidential attributes are left intact;
// identifier attributes are blanked to 0 (they must not be released).
func Aggregate(t *dataset.Table, clusters []Cluster) (*dataset.Table, error) {
	if err := CheckPartition(clusters, t.Len(), 1); err != nil {
		return nil, err
	}
	out := t.Clone()
	qis := t.Schema().QuasiIdentifiers()
	for _, c := range clusters {
		for _, col := range qis {
			rep := representative(t, c.Rows, col)
			for _, r := range c.Rows {
				out.SetValue(r, col, rep)
			}
		}
	}
	for _, col := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(col)
	}
	return out, nil
}

func representative(t *dataset.Table, rows []int, col int) float64 {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = t.Value(r, col)
	}
	if t.Schema().Attr(col).Kind == dataset.Categorical {
		// Median code: a value that exists in the dictionary, minimizing the
		// ordinal distance to the cluster members.
		sort.Float64s(vals)
		return vals[(len(vals)-1)/2]
	}
	return dataset.Mean(vals)
}

// AggregationOp selects the cluster representative used for numeric
// quasi-identifiers in AggregateWith; categorical attributes always use the
// median code.
type AggregationOp int

const (
	// OpMean uses the arithmetic mean — the SSE-optimal operator for any
	// fixed partition, and the paper's choice.
	OpMean AggregationOp = iota
	// OpMedian uses the lower median — more robust to outliers but
	// SSE-suboptimal; provided for the aggregation-operator ablation.
	OpMedian
)

// AggregateWith is Aggregate with an explicit numeric aggregation operator.
func AggregateWith(t *dataset.Table, clusters []Cluster, op AggregationOp) (*dataset.Table, error) {
	if err := CheckPartition(clusters, t.Len(), 1); err != nil {
		return nil, err
	}
	out := t.Clone()
	qis := t.Schema().QuasiIdentifiers()
	for _, c := range clusters {
		for _, col := range qis {
			var rep float64
			if op == OpMedian && t.Schema().Attr(col).Kind == dataset.Numeric {
				vals := make([]float64, len(c.Rows))
				for i, r := range c.Rows {
					vals[i] = t.Value(r, col)
				}
				sort.Float64s(vals)
				rep = vals[(len(vals)-1)/2]
			} else {
				rep = representative(t, c.Rows, col)
			}
			for _, r := range c.Rows {
				out.SetValue(r, col, rep)
			}
		}
	}
	for _, col := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(col)
	}
	return out, nil
}
