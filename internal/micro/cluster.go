// Package micro implements multivariate microaggregation, the perturbative
// statistical-disclosure-control substrate on which the paper's t-closeness
// algorithms are built.
//
// Microaggregation has two steps (Section 2.3 of the paper): a partition
// step that groups the records into clusters of at least k similar records,
// and an aggregation step that replaces each record's quasi-identifier
// values by a cluster representative (the mean for numeric attributes, the
// median for categorical ones). Applying it to the quasi-identifier
// projection of a data set yields a k-anonymous data set.
//
// The package provides the MDAV and V-MDAV partition heuristics (optimal
// multivariate microaggregation is NP-hard) and the aggregation step.
//
// # Performance
//
// Both partition heuristics — and, through the shared Searcher/Stream
// substrate, the t-closeness partitioners of package tclose and the SABRE
// baseline — run their hot neighbor queries (Farthest, Nearest, KNearest,
// and the nearest-first candidate stream) against a deletable k-d tree
// over the normalized quasi-identifier cube instead of an O(remaining)
// linear scan per query:
//
//   - The tree (KDTree) is bucketed (kdLeafSize-record leaves scanned over
//     a tree-ordered contiguous coordinate copy), built once per partition
//     run in O(n·log²n) — in parallel under the MaxScanWorkers budget for
//     large inputs — and supports O(log n) deletion via per-subtree alive
//     counts, matching the partition loops that retire k records per round.
//   - Queries prune subtrees with exact branch-and-bound bounds: the
//     bounding-box distance (exact in floating point by per-dimension term
//     domination and rounding monotonicity) combined with a
//     triangle-inequality annulus bound around a per-tree pivot
//     (conservatively rounded by kdEps), which retains pruning power in
//     higher dimensions where boxes alone degrade.
//   - NewSearcher builds the tree only for candidate sets of at least
//     IndexCrossover rows; below that the linear Matrix scans win and are
//     used directly. IndexCrossover is a package variable so benchmarks can
//     tune it and tests can force either path.
//
// Determinism contract: every indexed query breaks ties in exact
// (distance, build rank) order, where build rank is the row's position in
// the slice the Searcher was built from. Partition loops only ever delete
// rows, so build-rank order always agrees with the relative order of the
// caller's shrinking candidate slice, and every query — and therefore every
// partition — is bit-identical between the indexed and linear paths. The
// property tests in kdtree_test.go enforce this, including after deletions
// and on adversarially duplicated point sets.
//
// The candidate Stream adds two regime switches on the linear path, both
// invisible to consumers: a drain that radix-sorts the remainder once a
// consumer has taken streamDrainAt candidates, and a presort mode that
// skips the lazy heap outright after presortStreak consecutive drained
// streams (the steady state of Algorithm 2 at tight t levels).
package micro

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Cluster is a group of record indices that will share their aggregated
// quasi-identifier values (an equivalence class of the k-anonymous output).
type Cluster struct {
	// Rows are indices into the originating table.
	Rows []int
}

// Size returns the number of records in the cluster.
func (c Cluster) Size() int { return len(c.Rows) }

// Partition-level errors.
var (
	ErrBadK  = errors.New("micro: minimum cluster size k must be at least 1")
	ErrEmpty = errors.New("micro: no records to partition")
)

// CheckPartition verifies that clusters form a partition of exactly n
// records with no duplicates and that every cluster has at least k records
// (except that a single cluster smaller than k is tolerated only when it is
// the entire data set and n < k). It is used by tests and by the privacy
// verifiers.
func CheckPartition(clusters []Cluster, n, k int) error {
	seen := make([]bool, n)
	total := 0
	for ci, c := range clusters {
		if len(c.Rows) < k && !(len(clusters) == 1 && n < k) {
			return fmt.Errorf("micro: cluster %d has %d records, want >= %d", ci, len(c.Rows), k)
		}
		for _, r := range c.Rows {
			if r < 0 || r >= n {
				return fmt.Errorf("micro: cluster %d contains out-of-range row %d", ci, r)
			}
			if seen[r] {
				return fmt.Errorf("micro: row %d appears in more than one cluster", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("micro: clusters cover %d of %d records", total, n)
	}
	return nil
}

// SizeStats summarizes the cardinalities of a set of clusters; the paper's
// Tables 1-3 report the Min and the Avg ("actual microaggregation level").
type SizeStats struct {
	Min int
	Max int
	Avg float64
	Num int
}

// Sizes computes SizeStats over clusters. Empty input yields the zero value.
func Sizes(clusters []Cluster) SizeStats {
	if len(clusters) == 0 {
		return SizeStats{}
	}
	st := SizeStats{Min: clusters[0].Size(), Max: clusters[0].Size(), Num: len(clusters)}
	total := 0
	for _, c := range clusters {
		s := c.Size()
		total += s
		if s < st.Min {
			st.Min = s
		}
		if s > st.Max {
			st.Max = s
		}
	}
	st.Avg = float64(total) / float64(len(clusters))
	return st
}

// Dist2 returns the squared Euclidean distance between points a and b.
// Microaggregation only ever compares distances, so the square root is
// skipped everywhere.
func Dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Centroid returns the mean point of the given rows of a row-major matrix.
func Centroid(points [][]float64, rows []int) []float64 {
	if len(rows) == 0 || len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	c := make([]float64, dim)
	for _, r := range rows {
		p := points[r]
		for j := 0; j < dim; j++ {
			c[j] += p[j]
		}
	}
	inv := 1.0 / float64(len(rows))
	for j := range c {
		c[j] *= inv
	}
	return c
}

// CentroidAll returns the mean point over all rows of the matrix.
func CentroidAll(points [][]float64) []float64 {
	rows := make([]int, len(points))
	for i := range rows {
		rows[i] = i
	}
	return Centroid(points, rows)
}

// Aggregate performs the aggregation step: it returns a copy of t in which
// every quasi-identifier value is replaced by its cluster representative —
// the mean for numeric attributes, the (lower) median code for categorical
// attributes. Confidential and non-confidential attributes are left intact;
// identifier attributes are blanked to 0 (they must not be released).
func Aggregate(t *dataset.Table, clusters []Cluster) (*dataset.Table, error) {
	if err := CheckPartition(clusters, t.Len(), 1); err != nil {
		return nil, err
	}
	out := t.Clone()
	qis := t.Schema().QuasiIdentifiers()
	for _, c := range clusters {
		for _, col := range qis {
			rep := representative(t, c.Rows, col)
			for _, r := range c.Rows {
				out.SetValue(r, col, rep)
			}
		}
	}
	for _, col := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(col)
	}
	return out, nil
}

func representative(t *dataset.Table, rows []int, col int) float64 {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = t.Value(r, col)
	}
	if t.Schema().Attr(col).Kind == dataset.Categorical {
		// Median code: a value that exists in the dictionary, minimizing the
		// ordinal distance to the cluster members.
		sort.Float64s(vals)
		return vals[(len(vals)-1)/2]
	}
	return dataset.Mean(vals)
}

// AggregationOp selects the cluster representative used for numeric
// quasi-identifiers in AggregateWith; categorical attributes always use the
// median code.
type AggregationOp int

const (
	// OpMean uses the arithmetic mean — the SSE-optimal operator for any
	// fixed partition, and the paper's choice.
	OpMean AggregationOp = iota
	// OpMedian uses the lower median — more robust to outliers but
	// SSE-suboptimal; provided for the aggregation-operator ablation.
	OpMedian
)

// AggregateWith is Aggregate with an explicit numeric aggregation operator.
func AggregateWith(t *dataset.Table, clusters []Cluster, op AggregationOp) (*dataset.Table, error) {
	if err := CheckPartition(clusters, t.Len(), 1); err != nil {
		return nil, err
	}
	out := t.Clone()
	qis := t.Schema().QuasiIdentifiers()
	for _, c := range clusters {
		for _, col := range qis {
			var rep float64
			if op == OpMedian && t.Schema().Attr(col).Kind == dataset.Numeric {
				vals := make([]float64, len(c.Rows))
				for i, r := range c.Rows {
					vals[i] = t.Value(r, col)
				}
				sort.Float64s(vals)
				rep = vals[(len(vals)-1)/2]
			} else {
				rep = representative(t, c.Rows, col)
			}
			for _, r := range c.Rows {
				out.SetValue(r, col, rep)
			}
		}
	}
	for _, col := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(col)
	}
	return out, nil
}
