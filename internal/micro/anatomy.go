package micro

import (
	"math/rand"

	"repro/internal/dataset"
)

// AnatomyRelease implements the alternative release style mentioned in
// Section 2.3 of the paper (after Xiao & Tao's Anatomy and Soria-Comas &
// Domingo-Ferrer's probabilistic k-anonymity): instead of replacing the
// quasi-identifier values with cluster centroids, the original
// quasi-identifier values are preserved and the link between them and the
// confidential attributes is broken by randomly permuting the confidential
// values within each cluster.
//
// The quasi-identifiers lose no information at all (SSE is zero), and an
// intruder who locates a subject's record can still only associate it with
// the within-cluster distribution of the confidential attribute — the same
// guarantee the centroid release offers, including t-closeness, which is a
// property of the cluster's value multiset and therefore invariant under
// within-cluster permutation.
//
// seed makes the permutation deterministic for reproducible releases.
func AnatomyRelease(t *dataset.Table, clusters []Cluster, seed int64) (*dataset.Table, error) {
	if err := CheckPartition(clusters, t.Len(), 1); err != nil {
		return nil, err
	}
	out := t.Clone()
	rng := rand.New(rand.NewSource(seed))
	confs := t.Schema().Confidentials()
	for _, c := range clusters {
		if len(c.Rows) < 2 {
			continue
		}
		// One permutation for all confidential attributes of a record, so
		// multi-attribute correlations within a record survive.
		perm := rng.Perm(len(c.Rows))
		for _, col := range confs {
			for i, r := range c.Rows {
				out.SetValue(r, col, t.Value(c.Rows[perm[i]], col))
			}
		}
	}
	for _, col := range t.Schema().Indices(dataset.Identifier) {
		out.Redact(col)
	}
	return out, nil
}
