package micro

import (
	"math/rand"
	"sort"
	"testing"
)

// TestRadixDrainIsolated pins the stable LSD radix sort of drained stream
// remainders to a comparison sort, on heavy-tie keys, across both the
// 11-bit (small array) and 16-bit (large array) digit widths.
func TestRadixDrainIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		if trial == 0 {
			n = 1<<14 + 137 // force the 16-bit digit path
		}
		a := make([]drainEntry, n)
		for i := range a {
			a[i] = drainEntry{d: float64(rng.Intn(50)) * 0.25, tie: int32(rng.Intn(3000)), row: int32(i)}
		}
		want := append([]drainEntry(nil), a...)
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].d != want[j].d {
				return want[i].d < want[j].d
			}
			return want[i].tie < want[j].tie
		})
		var tmp []drainEntry
		counts := make([]int32, 1<<16)
		got := radixSortDrain(a, &tmp, counts, true)
		for i := range got {
			if got[i].d != want[i].d || got[i].tie != want[i].tie {
				t.Fatalf("trial %d n=%d: mismatch at %d", trial, n, i)
			}
		}
	}
}
