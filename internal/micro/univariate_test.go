package micro

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceSSE finds the optimal partition SSE by exhaustive search over
// consecutive-group partitions with sizes in [k, 2k-1] (optimal partitions
// are always of this form).
func bruteForceSSE(sorted []float64, k int) float64 {
	n := len(sorted)
	var rec func(start int) float64
	memo := make(map[int]float64)
	rec = func(start int) float64 {
		if start == n {
			return 0
		}
		if v, ok := memo[start]; ok {
			return v
		}
		best := math.Inf(1)
		for size := k; size <= 2*k-1 && start+size <= n; size++ {
			if n-(start+size) != 0 && n-(start+size) < k {
				continue
			}
			var sum, sum2 float64
			for _, v := range sorted[start : start+size] {
				sum += v
				sum2 += v * v
			}
			sse := sum2 - sum*sum/float64(size)
			if rest := rec(start + size); sse+rest < best {
				best = sse + rest
			}
		}
		memo[start] = best
		return best
	}
	return rec(0)
}

func partitionSSE(values []float64, clusters []Cluster) float64 {
	total := 0.0
	for _, c := range clusters {
		var sum, sum2 float64
		for _, r := range c.Rows {
			sum += values[r]
			sum2 += values[r] * values[r]
		}
		total += sum2 - sum*sum/float64(len(c.Rows))
	}
	return total
}

func TestOptimalUnivariateErrors(t *testing.T) {
	if _, err := OptimalUnivariate(nil, 2); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := OptimalUnivariate([]float64{1, 2}, 0); err == nil {
		t.Error("k = 0 should fail")
	}
}

func TestOptimalUnivariateSmall(t *testing.T) {
	clusters, err := OptimalUnivariate([]float64{5, 1, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Size() != 3 {
		t.Errorf("n < 2k should give one cluster: %v", clusters)
	}
}

func TestOptimalUnivariateHand(t *testing.T) {
	// Two tight value groups: {1, 1.1, 1.2} and {9, 9.1, 9.2} with k=3.
	values := []float64{9.1, 1, 9.2, 1.1, 9, 1.2}
	clusters, err := OptimalUnivariate(values, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("want 2 clusters, got %v", clusters)
	}
	for _, c := range clusters {
		low, high := 0, 0
		for _, r := range c.Rows {
			if values[r] < 5 {
				low++
			} else {
				high++
			}
		}
		if low != 0 && high != 0 {
			t.Errorf("cluster mixes the two value groups: %v", c.Rows)
		}
	}
}

func TestOptimalUnivariateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(18)
		k := 2 + rng.Intn(3)
		if n < 2*k {
			continue
		}
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64() * 10
		}
		clusters, err := OptimalUnivariate(values, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckPartition(clusters, n, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := partitionSSE(values, clusters)
		sorted := append([]float64(nil), values...)
		insertionSort(sorted)
		want := bruteForceSSE(sorted, k)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d k=%d): SSE %v, optimal %v", trial, n, k, got, want)
		}
	}
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestOptimalUnivariateNeverWorseThanMDAV(t *testing.T) {
	// On one dimension, the exact DP must never lose to the MDAV heuristic.
	f := func(raw []float64, kRaw uint8) bool {
		k := 2 + int(kRaw)%4
		if len(raw) < 2*k {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		opt, err := OptimalUnivariate(raw, k)
		if err != nil {
			return false
		}
		points := make([][]float64, len(raw))
		for i, v := range raw {
			points[i] = []float64{v}
		}
		mdav, err := MDAV(points, k)
		if err != nil {
			return false
		}
		return partitionSSE(raw, opt) <= partitionSSE(raw, mdav)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalUnivariateSizesBounded(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		k := 1 + int(kRaw)%6
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		for _, v := range raw {
			// v*v in the prefix sums overflows beyond ~1e154.
			if math.Abs(v) > 1e150 {
				return true
			}
		}
		clusters, err := OptimalUnivariate(raw, k)
		if err != nil {
			return false
		}
		if err := CheckPartition(clusters, len(raw), min(k, len(raw))); err != nil {
			return false
		}
		if len(raw) >= 2*k {
			for _, c := range clusters {
				if c.Size() < k || c.Size() > 2*k-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
