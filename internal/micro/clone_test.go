package micro

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomMatrix(rng *rand.Rand, n, dim int) *Matrix {
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(rng.Intn(40)) / 40 // coarse grid forces distance ties
		}
		pts[i] = row
	}
	return NewMatrix(pts)
}

// TestKDTreeCloneIndependence: deletions on a clone never leak into the
// master or sibling clones, and every clone's queries stay bit-identical to
// the linear scans over its own surviving candidate set — the package's
// determinism contract.
func TestKDTreeCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 300, 3)
	rows := make([]int, m.N())
	for i := range rows {
		rows[i] = i
	}
	master := NewKDTree(m, rows)
	c1, c2 := master.Clone(), master.Clone()
	scratch := make([]bool, m.N())
	alive1, alive2 := append([]int(nil), rows...), append([]int(nil), rows...)
	for round := 0; round < 25; round++ {
		// Delete disjoint random batches from each clone.
		del1 := []int{alive1[rng.Intn(len(alive1))]}
		c1.Delete(del1[0])
		alive1 = FilterRows(alive1, del1, scratch)
		del2 := []int{alive2[rng.Intn(len(alive2))]}
		c2.Delete(del2[0])
		alive2 = FilterRows(alive2, del2, scratch)

		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if got, want := c1.Nearest(q), m.Nearest(alive1, q); got != want {
			t.Fatalf("clone1 Nearest = %d, linear scan %d", got, want)
		}
		if got, want := c2.Farthest(q), m.Farthest(alive2, q); got != want {
			t.Fatalf("clone2 Farthest = %d, linear scan %d", got, want)
		}
		if got, want := c1.KNearest(q, 5), m.KNearest(alive1, q, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("clone1 KNearest = %v, linear scan %v", got, want)
		}
	}
	// The master saw none of it.
	if master.Len() != len(rows) {
		t.Fatalf("master Len = %d after clone deletions, want %d", master.Len(), len(rows))
	}
	q := []float64{0.3, 0.7, 0.1}
	if got, want := master.Nearest(q), m.Nearest(rows, q); got != want {
		t.Fatalf("master Nearest = %d, linear scan %d", got, want)
	}
}

// TestIndexCacheSharesOneBuild: Searchers over the full ascending row set
// of a cache-enabled matrix share one master (verified by behavior: both
// are indexed, and independent removals do not interfere), while subset
// searchers stay independent of the cache.
func TestIndexCacheSharesOneBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMatrix(rng, 200, 2)
	m.SetTuning(Tuning{IndexCrossover: 16})
	m.EnableIndexCache()
	rows := make([]int, m.N())
	for i := range rows {
		rows[i] = i
	}
	s1 := m.NewSearcher(rows)
	s2 := m.NewSearcher(rows)
	if !s1.Indexed() || !s2.Indexed() {
		t.Fatal("full-set searchers should be indexed at this crossover")
	}
	scratch := make([]bool, m.N())
	alive1 := append([]int(nil), rows...)
	drop := []int{4, 9, 44}
	s1.Remove(drop)
	alive1 = FilterRows(alive1, drop, scratch)
	q := []float64{0.2, 0.8}
	if got, want := s1.Nearest(alive1, q), m.Nearest(alive1, q); got != want {
		t.Fatalf("s1 Nearest = %d, want %d", got, want)
	}
	// s2 must still see every row despite s1's removals.
	if got, want := s2.Nearest(rows, q), m.Nearest(rows, q); got != want {
		t.Fatalf("s2 Nearest = %d, want %d (leaked removals?)", got, want)
	}
}

// TestMatrixTuningDeterminism: per-matrix worker budgets change only the
// execution strategy; scan results stay bit-identical, and the tuned matrix
// ignores the deprecated globals.
func TestMatrixTuningDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := make([][]float64, 9000) // above parallelScanMin
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	serial := NewMatrix(pts)
	serial.SetTuning(Tuning{Workers: 1})
	rows := make([]int, len(pts))
	for i := range rows {
		rows[i] = i
	}
	q := []float64{0.5, 0.5}
	wantF, wantN := serial.Farthest(rows, q), serial.Nearest(rows, q)
	wantK := serial.KNearest(rows, q, 7)
	for _, workers := range []int{2, 3, 8} {
		m := NewMatrix(pts)
		m.SetTuning(Tuning{Workers: workers})
		if got := m.Farthest(rows, q); got != wantF {
			t.Fatalf("workers=%d: Farthest %d want %d", workers, got, wantF)
		}
		if got := m.Nearest(rows, q); got != wantN {
			t.Fatalf("workers=%d: Nearest %d want %d", workers, got, wantN)
		}
		if got := m.KNearest(rows, q, 7); !reflect.DeepEqual(got, wantK) {
			t.Fatalf("workers=%d: KNearest %v want %v", workers, got, wantK)
		}
	}
}

// TestMatrixAppendRowsCopy: the extended matrix carries the old rows
// bit-identically plus the tail, leaves the receiver untouched, and
// inherits tuning and cache-enablement.
func TestMatrixAppendRowsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomMatrix(rng, 50, 3)
	m.SetTuning(Tuning{Workers: 2, IndexCrossover: 8})
	m.EnableIndexCache()
	tail := [][]float64{{0.1, 0.2, 0.3}, {0.9, 0.8, 0.7}}
	out := m.AppendRowsCopy(tail)
	if out.N() != 52 || out.Dim() != 3 {
		t.Fatalf("extended shape %dx%d", out.N(), out.Dim())
	}
	for i := 0; i < m.N(); i++ {
		if !reflect.DeepEqual(m.Row(i), out.Row(i)) {
			t.Fatalf("row %d diverged", i)
		}
	}
	for i, row := range tail {
		if !reflect.DeepEqual(out.Row(m.N()+i), row) {
			t.Fatalf("tail row %d diverged", i)
		}
	}
	if out.TuningOf() != m.TuningOf() {
		t.Error("tuning did not carry over")
	}
	if !out.IndexCacheEnabled() {
		t.Error("index cache enablement did not carry over")
	}
	if m.N() != 50 {
		t.Error("receiver mutated")
	}
}
