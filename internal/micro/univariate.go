package micro

import (
	"sort"
)

// OptimalUnivariate computes the SSE-optimal univariate microaggregation of
// Hansen & Mukherjee (2003): unlike the multivariate problem (NP-hard,
// Section 2.3 of the paper), the one-dimensional case is solved exactly in
// O(nk) time by dynamic programming over the sorted values, because an
// optimal partition always consists of runs of consecutive sorted values
// with sizes in [k, 2k-1].
//
// It returns clusters of original record indices. For n < 2k the result is
// a single cluster. The function is used as an exact reference in tests
// (MDAV must never beat it on one dimension) and by the partitioner
// ablation.
func OptimalUnivariate(values []float64, k int) ([]Cluster, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if n < 2*k {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return []Cluster{{Rows: all}}, nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if values[order[a]] != values[order[b]] {
			return values[order[a]] < values[order[b]]
		}
		return order[a] < order[b]
	})
	// Prefix sums over the sorted values for O(1) within-group SSE:
	// sse(a..b) = Σv² − (Σv)²/len over sorted positions a..b inclusive.
	pre := make([]float64, n+1)
	pre2 := make([]float64, n+1)
	for i, idx := range order {
		v := values[idx]
		pre[i+1] = pre[i] + v
		pre2[i+1] = pre2[i] + v*v
	}
	groupSSE := func(a, b int) float64 { // inclusive sorted positions
		s := pre[b+1] - pre[a]
		s2 := pre2[b+1] - pre2[a]
		l := float64(b - a + 1)
		return s2 - s*s/l
	}
	const inf = 1e308
	// best[i] = minimal SSE of partitioning sorted positions [0, i).
	best := make([]float64, n+1)
	cut := make([]int, n+1) // cut[i] = start of the last group ending at i-1
	for i := 1; i <= n; i++ {
		best[i] = inf
		// The last group covers positions [j, i-1] with k <= i-j <= 2k-1.
		lo := i - (2*k - 1)
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i-k; j++ {
			if j > 0 && best[j] >= inf {
				continue
			}
			var prev float64
			if j > 0 {
				prev = best[j]
			}
			if c := prev + groupSSE(j, i-1); c < best[i] {
				best[i] = c
				cut[i] = j
			}
		}
		if best[i] >= inf && i >= k {
			// Unreachable for valid inputs (n >= 2k guarantees feasibility),
			// kept as a defensive invariant.
			continue
		}
	}
	// Reconstruct groups back-to-front.
	var clusters []Cluster
	for i := n; i > 0; {
		j := cut[i]
		rows := make([]int, 0, i-j)
		for p := j; p < i; p++ {
			rows = append(rows, order[p])
		}
		clusters = append(clusters, Cluster{Rows: rows})
		i = j
	}
	// Reverse for ascending order of values.
	for l, r := 0, len(clusters)-1; l < r; l, r = l+1, r-1 {
		clusters[l], clusters[r] = clusters[r], clusters[l]
	}
	return clusters, nil
}
