package micro

import "sort"

// This file implements spatial shard extraction: splitting a candidate row
// set into disjoint, spatially coherent shards by walking the top levels of
// the k-d tree. The sharded partition drivers (internal/tclose) build
// clusters concurrently inside each shard and reconcile the boundaries
// afterwards, so the quality of a shard is its geometric coherence — records
// that are quasi-identifier neighbors should land in the same shard, which
// is exactly what the tree's median cuts produce.

// ShardRows partitions rows into at most w disjoint shards that jointly
// cover rows exactly, each shard spatially coherent (a subtree of the k-d
// tree over the candidate set) and in ascending row order. The split walks
// the top of the tree, repeatedly replacing the largest remaining subtree by
// its two children until w subtrees exist, so shard sizes stay balanced
// within the tree's median-cut guarantee. The result is deterministic for a
// given (rows, w) pair.
//
// Degenerate inputs — w < 2, fewer than two rows, or a geometry the tree
// cannot index (zero dimensions) — return the whole set as one shard.
// When the matrix has a shared index cache and rows is the full ascending
// row set, the cached master tree is reused instead of building a throwaway
// one.
func (m *Matrix) ShardRows(rows []int, w int) [][]int {
	single := func() [][]int {
		return [][]int{append([]int(nil), rows...)}
	}
	if w <= 1 || len(rows) < 2 {
		return single()
	}
	var tree *KDTree
	if m.cache != nil && fullAscending(rows, m.n) {
		tree = m.cache.acquire(m, rows)
	} else {
		tree = NewKDTree(m, rows)
	}
	if tree == nil {
		return single()
	}
	return tree.ShardRows(w)
}

// ShardRows splits the tree's alive rows into at most w disjoint subtree
// shards; see Matrix.ShardRows. Fewer than w shards are returned when the
// tree runs out of splittable internal nodes first.
func (t *KDTree) ShardRows(w int) [][]int {
	sel := []int32{0}
	for len(sel) < w {
		// Split the largest remaining subtree; ties break toward the
		// earliest selected position, keeping the walk deterministic.
		best := -1
		for i, ni := range sel {
			nd := &t.nodes[ni]
			if nd.left < 0 || nd.count < 2 {
				continue
			}
			if best < 0 || nd.count > t.nodes[sel[best]].count {
				best = i
			}
		}
		if best < 0 {
			break
		}
		nd := &t.nodes[sel[best]]
		sel[best] = nd.left
		sel = append(sel, nd.right)
	}
	shards := make([][]int, 0, len(sel))
	for _, ni := range sel {
		nd := &t.nodes[ni]
		shard := make([]int, 0, nd.count)
		for pos := nd.start; pos < nd.end; pos++ {
			if t.alive[pos] {
				shard = append(shard, int(t.items[pos]))
			}
		}
		if len(shard) == 0 {
			continue
		}
		// Ascending row order fixes the (distance, row) tie-break rank of
		// every per-shard Searcher, the same convention the partition loops
		// rely on everywhere else.
		sort.Ints(shard)
		shards = append(shards, shard)
	}
	return shards
}
