package micro

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// referenceFarthest and referenceNearest are the retired [][]float64 linear
// scans, kept here as the naive oracles the optimized paths are pinned to.
func referenceFarthest(points [][]float64, rows []int, p []float64) int {
	best, bestD := -1, -1.0
	for _, r := range rows {
		if d := Dist2(points[r], p); d > bestD {
			best, bestD = r, d
		}
	}
	return best
}

func referenceNearest(points [][]float64, rows []int, p []float64) int {
	best, bestD := -1, -1.0
	for _, r := range rows {
		if d := Dist2(points[r], p); best == -1 || d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// referenceKNearest is the full-sort implementation KNearest shipped with
// before partial selection; the property tests pin the optimized selection
// paths to it, including tie-breaking order.
func referenceKNearest(points [][]float64, rows []int, p []float64, k int) []int {
	type rd struct {
		row int
		d   float64
	}
	ds := make([]rd, len(rows))
	for i, r := range rows {
		ds[i] = rd{row: r, d: Dist2(points[r], p)}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].row < ds[j].row
	})
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].row
	}
	return out
}

func tiePoints(rng *rand.Rand, n, dim int, ties bool) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			if ties {
				// Values from a tiny grid force many exactly-equal distances,
				// exercising the (distance, row) tie-breaking order.
				pts[i][j] = float64(rng.Intn(3))
			} else {
				pts[i][j] = rng.Float64()
			}
		}
	}
	return pts
}

// TestKNearestMatchesSortReference compares partial selection against the
// full sort over random geometries, including heavy-tie grids, for every k.
func TestKNearestMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20160314))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		dim := 1 + rng.Intn(4)
		pts := tiePoints(rng, n, dim, trial%2 == 0)
		rows := rng.Perm(n)[:1+rng.Intn(n)]
		sort.Ints(rows)
		p := pts[rng.Intn(n)]
		k := 1 + rng.Intn(n+2) // may exceed len(rows)
		want := referenceKNearest(pts, rows, p, k)
		m := NewMatrix(pts)
		if gotM := m.KNearest(rows, p, k); !reflect.DeepEqual(gotM, want) {
			t.Fatalf("trial %d (n=%d k=%d): Matrix.KNearest=%v want %v", trial, n, k, gotM, want)
		}
	}
}

// TestMatrixScansMatchReference compares the flat-matrix Farthest/Nearest
// scans against the [][]float64 reference implementations.
func TestMatrixScansMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		dim := 1 + rng.Intn(5)
		pts := tiePoints(rng, n, dim, trial%3 == 0)
		rows := rng.Perm(n)[:1+rng.Intn(n)]
		sort.Ints(rows)
		p := pts[rng.Intn(n)]
		m := NewMatrix(pts)
		if got, want := m.Farthest(rows, p), referenceFarthest(pts, rows, p); got != want {
			t.Fatalf("trial %d: Matrix.Farthest=%d want %d", trial, got, want)
		}
		if got, want := m.Nearest(rows, p), referenceNearest(pts, rows, p); got != want {
			t.Fatalf("trial %d: Matrix.Nearest=%d want %d", trial, got, want)
		}
	}
}

// referenceMDAV is the pre-optimization MDAV: fresh centroid rescan per
// round, full-sort KNearest, map-based removal. It is the behavioral
// reference for the incremental implementation.
func referenceMDAV(points [][]float64, k int) ([]Cluster, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 1 {
		return nil, ErrBadK
	}
	removeRows := func(remaining, drop []int) []int {
		dropSet := make(map[int]struct{}, len(drop))
		for _, r := range drop {
			dropSet[r] = struct{}{}
		}
		out := remaining[:0]
		for _, r := range remaining {
			if _, gone := dropSet[r]; !gone {
				out = append(out, r)
			}
		}
		return out
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var clusters []Cluster
	for len(remaining) >= 3*k {
		c := Centroid(points, remaining)
		xr := referenceFarthest(points, remaining, c)
		cluster1 := referenceKNearest(points, remaining, points[xr], k)
		remaining = removeRows(remaining, cluster1)
		xs := referenceFarthest(points, remaining, points[xr])
		cluster2 := referenceKNearest(points, remaining, points[xs], k)
		remaining = removeRows(remaining, cluster2)
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: cluster2})
	}
	if len(remaining) >= 2*k {
		c := Centroid(points, remaining)
		xr := referenceFarthest(points, remaining, c)
		cluster1 := referenceKNearest(points, remaining, points[xr], k)
		remaining = removeRows(remaining, cluster1)
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: remaining})
	} else if len(remaining) > 0 {
		clusters = append(clusters, Cluster{Rows: remaining})
	}
	return clusters, nil
}

// TestMDAVMatchesReference pins the incremental MDAV (running centroid,
// partial selection, flat matrix) to the naive implementation: identical
// partitions on randomized inputs. The running centroid accumulates
// floating-point error of a different shape than the fresh rescan, but on
// continuous random geometry the distance gaps dwarf it; the fixed seed
// keeps the check deterministic.
func TestMDAVMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20160314))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(200)
		dim := 1 + rng.Intn(4)
		pts := tiePoints(rng, n, dim, false)
		k := 1 + rng.Intn(8)
		got, err := MDAV(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceMDAV(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d dim=%d): partitions diverge\n got %v\nwant %v",
				trial, n, k, dim, got, want)
		}
	}
}
