// This file exercises the goroutine fan-out of the Matrix distance scans:
// the row count exceeds parallelScanMin, so Farthest/KNearest run chunked,
// and the result must still be identical to the serial naive reference.
package micro

import (
	"math/rand"
	"testing"
)

func TestParallelScansMatchReferenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 9000
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	clusters, err := MDAV(pts, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPartition(clusters, n, 500); err != nil {
		t.Fatal(err)
	}
	// reference comparison on the large parallel path
	want, err := referenceMDAV(pts, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(clusters) {
		t.Fatalf("cluster counts diverge: %d vs %d", len(clusters), len(want))
	}
	for i := range want {
		if len(want[i].Rows) != len(clusters[i].Rows) {
			t.Fatalf("cluster %d sizes diverge", i)
		}
		for j := range want[i].Rows {
			if want[i].Rows[j] != clusters[i].Rows[j] {
				t.Fatalf("cluster %d row %d: %d vs %d", i, j, clusters[i].Rows[j], want[i].Rows[j])
			}
		}
	}
}
