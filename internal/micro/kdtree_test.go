package micro

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// kdRef is the linear-scan oracle for a KDTree: the same candidate rows in
// the same build order, with deletions applied, scanned naively with ties
// broken toward the earliest surviving position of the build order.
type kdRef struct {
	pts  [][]float64
	rows []int // alive rows in build order
}

func (r *kdRef) delete(row int) {
	for i, x := range r.rows {
		if x == row {
			r.rows = append(r.rows[:i], r.rows[i+1:]...)
			return
		}
	}
}

func (r *kdRef) nearest(p []float64) int {
	best, bestD := -1, 0.0
	for _, x := range r.rows {
		if d := Dist2(r.pts[x], p); best == -1 || d < bestD {
			best, bestD = x, d
		}
	}
	return best
}

func (r *kdRef) farthest(p []float64) int {
	best, bestD := -1, -1.0
	for _, x := range r.rows {
		if d := Dist2(r.pts[x], p); d > bestD {
			best, bestD = x, d
		}
	}
	return best
}

// kNearest returns the k alive rows sorted by (distance, build position).
func (r *kdRef) kNearest(p []float64, k int) []int {
	type dr struct {
		d   float64
		pos int
	}
	ds := make([]dr, len(r.rows))
	for i, x := range r.rows {
		ds[i] = dr{d: Dist2(r.pts[x], p), pos: i}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].pos < ds[j].pos
	})
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = r.rows[ds[i].pos]
	}
	return out
}

// kdTrialPoints generates random point sets; every third trial uses a tiny
// value grid, forcing many exactly-duplicated points and exact distance
// ties — the adversarial case for branch-and-bound tie handling.
func kdTrialPoints(rng *rand.Rand, trial int) ([][]float64, int) {
	n := 20 + rng.Intn(400)
	dim := 1 + rng.Intn(7)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			if trial%3 == 0 {
				pts[i][j] = float64(rng.Intn(3))
			} else {
				pts[i][j] = rng.Float64()
			}
		}
	}
	return pts, n
}

// TestKDTreeMatchesLinearReference pins every KDTree query — including
// after interleaved deletions — to the linear-scan oracle, on random and
// adversarially duplicated point sets, with both ascending and permuted
// build orders (permuted orders exercise the rank-based tie-breaking that
// the confidential-ranking subsets of Algorithm 3 and SABRE rely on).
func TestKDTreeMatchesLinearReference(t *testing.T) {
	if testing.Short() {
		t.Skip("kd-tree vs linear reference: slow property test")
	}
	rng := rand.New(rand.NewSource(20160314))
	for trial := 0; trial < 120; trial++ {
		pts, n := kdTrialPoints(rng, trial)
		rows := rng.Perm(n)[:1+rng.Intn(n)]
		if trial%2 == 0 {
			sort.Ints(rows)
		}
		m := NewMatrix(pts)
		tree := NewKDTree(m, rows)
		ref := &kdRef{pts: pts, rows: append([]int(nil), rows...)}
		for round := 0; tree.Len() > 0; round++ {
			for q := 0; q < 3; q++ {
				var p []float64
				if q == 0 && len(ref.rows) > 0 {
					p = pts[ref.rows[rng.Intn(len(ref.rows))]]
				} else {
					p = make([]float64, m.Dim())
					for j := range p {
						p[j] = rng.Float64() * 3
					}
				}
				if got, want := tree.Nearest(p), ref.nearest(p); got != want {
					t.Fatalf("trial %d round %d: Nearest=%d want %d", trial, round, got, want)
				}
				if got, want := tree.Farthest(p), ref.farthest(p); got != want {
					t.Fatalf("trial %d round %d: Farthest=%d want %d", trial, round, got, want)
				}
				k := 1 + rng.Intn(tree.Len()+2)
				if got, want := tree.KNearest(p, k), ref.kNearest(p, k); !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d round %d k=%d: KNearest=%v want %v", trial, round, k, got, want)
				}
			}
			// Delete a random batch and re-verify on the shrunken set.
			del := 1 + rng.Intn(3)
			for i := 0; i < del && len(ref.rows) > 0; i++ {
				x := ref.rows[rng.Intn(len(ref.rows))]
				tree.Delete(x)
				ref.delete(x)
			}
			if tree.Len() != len(ref.rows) {
				t.Fatalf("trial %d: Len=%d want %d", trial, tree.Len(), len(ref.rows))
			}
		}
	}
}

// TestStreamMatchesSortedOrder drains Searcher streams fully and checks the
// emission order equals the exact (distance, build position) sort of the
// alive rows, across the lazy-head, drain, and presort modes and both the
// indexed and linear paths. Crossover and point dimensionality are varied
// so low-dimensional runs exercise the k-d stream and high-dimensional runs
// the linear one.
func TestStreamMatchesSortedOrder(t *testing.T) {
	defer func(c, d, p int) { IndexCrossover, streamDrainAt, presortStreak = c, d, p }(
		IndexCrossover, streamDrainAt, presortStreak)
	// Force the drain escape hatch and the presort mode on small candidate
	// sets: every full traversal below drains, and after two drained
	// streams the third starts presorted.
	streamDrainAt = 8
	presortStreak = 2
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		pts, n := kdTrialPoints(rng, trial)
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		if trial%2 == 0 {
			IndexCrossover = 1 // force the tree
		} else {
			IndexCrossover = 1 << 30 // force the linear path
		}
		m := NewMatrix(pts)
		search := m.NewSearcher(rows)
		ref := &kdRef{pts: pts, rows: rows}
		for round := 0; round < 5 && len(rows) > 0; round++ {
			p := pts[rows[rng.Intn(len(rows))]]
			want := ref.kNearest(p, len(rows))
			st := search.Stream(rows, p)
			got := make([]int, 0, len(rows))
			for {
				r, ok := st.Next()
				if !ok {
					break
				}
				got = append(got, r)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d round %d: stream order diverges\n got %v\nwant %v", trial, round, got, want)
			}
			drop := rows[:1+rng.Intn(len(rows))]
			drop = append([]int(nil), drop[:1+rng.Intn(len(drop))]...)
			scratch := make([]bool, n)
			rows = FilterRows(rows, drop, scratch)
			search.Remove(drop)
			ref.rows = rows
		}
	}
}

// TestMDAVIndexMatchesScan pins the indexed MDAV partition to the linear
// scan partition (and to the naive reference) on random and heavy-tie
// geometries: the crossover is forced in both directions and the outputs
// must be identical.
func TestMDAVIndexMatchesScan(t *testing.T) {
	defer func(c int) { IndexCrossover = c }(IndexCrossover)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		pts, n := kdTrialPoints(rng, trial)
		k := 1 + rng.Intn(6)
		IndexCrossover = 1 << 30
		scan, err := MDAV(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		IndexCrossover = 1
		indexed, err := MDAV(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scan, indexed) {
			t.Fatalf("trial %d (n=%d k=%d): MDAV index vs scan partitions diverge", trial, n, k)
		}
		want, err := referenceMDAV(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, want) {
			t.Fatalf("trial %d (n=%d k=%d): indexed MDAV diverges from naive reference", trial, n, k)
		}
	}
}

// TestVMDAVIndexMatchesScan pins the indexed V-MDAV partition to the linear
// scan partition across random geometries, duplicated points, and gammas.
func TestVMDAVIndexMatchesScan(t *testing.T) {
	defer func(c int) { IndexCrossover = c }(IndexCrossover)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		pts, n := kdTrialPoints(rng, trial)
		k := 1 + rng.Intn(6)
		gamma := rng.Float64()
		IndexCrossover = 1 << 30
		scan, err := VMDAV(pts, k, gamma)
		if err != nil {
			t.Fatal(err)
		}
		IndexCrossover = 1
		indexed, err := VMDAV(pts, k, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scan, indexed) {
			t.Fatalf("trial %d (n=%d k=%d gamma=%v): V-MDAV index vs scan partitions diverge", trial, n, k, gamma)
		}
	}
}
