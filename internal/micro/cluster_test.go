package micro

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestClusterSize(t *testing.T) {
	c := Cluster{Rows: []int{1, 2, 3}}
	if c.Size() != 3 {
		t.Errorf("Size = %d", c.Size())
	}
	if (Cluster{}).Size() != 0 {
		t.Error("empty cluster size should be 0")
	}
}

func TestCheckPartitionValid(t *testing.T) {
	clusters := []Cluster{{Rows: []int{0, 1}}, {Rows: []int{3, 2}}}
	if err := CheckPartition(clusters, 4, 2); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}

func TestCheckPartitionErrors(t *testing.T) {
	cases := []struct {
		name     string
		clusters []Cluster
		n, k     int
	}{
		{"undersized cluster", []Cluster{{Rows: []int{0}}, {Rows: []int{1, 2}}}, 3, 2},
		{"duplicate row", []Cluster{{Rows: []int{0, 1}}, {Rows: []int{1, 2}}}, 3, 2},
		{"missing row", []Cluster{{Rows: []int{0, 1}}}, 3, 2},
		{"out of range", []Cluster{{Rows: []int{0, 5}}}, 3, 2},
		{"negative row", []Cluster{{Rows: []int{-1, 0}}}, 3, 2},
	}
	for _, c := range cases {
		if err := CheckPartition(c.clusters, c.n, c.k); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCheckPartitionToleratesSmallWholeDataset(t *testing.T) {
	// A single cluster smaller than k is the correct output when n < k.
	if err := CheckPartition([]Cluster{{Rows: []int{0, 1}}}, 2, 5); err != nil {
		t.Errorf("single whole-data-set cluster rejected: %v", err)
	}
}

func TestSizes(t *testing.T) {
	st := Sizes([]Cluster{{Rows: []int{0, 1}}, {Rows: []int{2, 3, 4}}, {Rows: []int{5, 6, 7, 8}}})
	if st.Min != 2 || st.Max != 4 || st.Num != 3 || math.Abs(st.Avg-3) > 1e-12 {
		t.Errorf("Sizes = %+v", st)
	}
	if z := Sizes(nil); z.Num != 0 || z.Min != 0 {
		t.Errorf("Sizes(nil) = %+v", z)
	}
}

func TestDist2(t *testing.T) {
	if d := Dist2([]float64{0, 0}, []float64{3, 4}); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if d := Dist2([]float64{1}, []float64{1}); d != 0 {
		t.Errorf("Dist2 identical = %v", d)
	}
}

func TestCentroid(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 2}, {4, 10}}
	c := Centroid(pts, []int{0, 1, 2})
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Centroid = %v", c)
	}
	c = Centroid(pts, []int{2})
	if c[0] != 4 || c[1] != 10 {
		t.Errorf("singleton centroid = %v", c)
	}
	if Centroid(pts, nil) != nil {
		t.Error("empty rows should give nil centroid")
	}
}

func TestCentroidAll(t *testing.T) {
	pts := [][]float64{{1}, {3}}
	if c := CentroidAll(pts); c[0] != 2 {
		t.Errorf("CentroidAll = %v", c)
	}
}

func TestFarthestNearest(t *testing.T) {
	m := NewMatrix([][]float64{{0}, {5}, {2}, {9}})
	rows := []int{0, 1, 2, 3}
	if got := m.Farthest(rows, []float64{0}); got != 3 {
		t.Errorf("Farthest = %d, want 3", got)
	}
	if got := m.Nearest(rows, []float64{4.9}); got != 1 {
		t.Errorf("Nearest = %d, want 1", got)
	}
	// Ties break to the lowest index.
	tie := NewMatrix([][]float64{{1}, {1}})
	if got := tie.Nearest([]int{0, 1}, []float64{1}); got != 0 {
		t.Errorf("tie Nearest = %d, want 0", got)
	}
}

func TestKNearest(t *testing.T) {
	m := NewMatrix([][]float64{{0}, {10}, {1}, {5}, {2}})
	rows := []int{0, 1, 2, 3, 4}
	got := m.KNearest(rows, []float64{0}, 3)
	want := []int{0, 2, 4}
	if len(got) != 3 {
		t.Fatalf("KNearest = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("KNearest[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// k larger than available returns everything.
	if got := m.KNearest(rows[:2], []float64{0}, 5); len(got) != 2 {
		t.Errorf("oversized k: %v", got)
	}
}

func aggFixture(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "id", Role: dataset.Identifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "age", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "city", Role: dataset.QuasiIdentifier, Kind: dataset.Categorical},
		dataset.Attribute{Name: "salary", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	rows := []struct {
		id     float64
		age    float64
		city   string
		salary float64
	}{
		{1, 20, "aa", 100},
		{2, 30, "bb", 200},
		{3, 40, "bb", 300},
		{4, 50, "cc", 400},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.id, r.age, r.city, r.salary); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAggregateMeansAndMedians(t *testing.T) {
	tbl := aggFixture(t)
	clusters := []Cluster{{Rows: []int{0, 1, 2}}, {Rows: []int{3}}}
	out, err := Aggregate(tbl, clusters)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric QI replaced by mean.
	for _, r := range []int{0, 1, 2} {
		if got := out.Value(r, 1); got != 30 {
			t.Errorf("row %d age = %v, want 30", r, got)
		}
	}
	if got := out.Value(3, 1); got != 50 {
		t.Errorf("singleton age = %v", got)
	}
	// Categorical QI replaced by the median code: codes (aa=0,bb=1,bb=1),
	// sorted 0,1,1 -> median 1 -> "bb".
	for _, r := range []int{0, 1, 2} {
		if got := out.Label(r, 2); got != "bb" {
			t.Errorf("row %d city = %q, want bb", r, got)
		}
	}
	// Identifier blanked.
	for r := 0; r < 4; r++ {
		if out.Value(r, 0) != 0 {
			t.Errorf("identifier row %d = %v, want 0", r, out.Value(r, 0))
		}
	}
	// Confidential untouched.
	for r := 0; r < 4; r++ {
		if out.Value(r, 3) != tbl.Value(r, 3) {
			t.Errorf("confidential row %d modified", r)
		}
	}
	// Original untouched.
	if tbl.Value(0, 1) != 20 {
		t.Error("Aggregate modified its input")
	}
}

func TestAggregateRejectsNonPartition(t *testing.T) {
	tbl := aggFixture(t)
	if _, err := Aggregate(tbl, []Cluster{{Rows: []int{0, 1}}}); err == nil {
		t.Error("incomplete partition should fail")
	}
}

func TestAggregateEvenMedianUsesLower(t *testing.T) {
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "c", Role: dataset.QuasiIdentifier, Kind: dataset.Categorical},
		dataset.Attribute{Name: "s", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	for _, v := range []string{"a", "b", "c", "d"} {
		if err := tbl.AppendRow(v, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Aggregate(tbl, []Cluster{{Rows: []int{0, 1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	// Codes 0,1,2,3: lower median is 1 -> "b", an existing category.
	if got := out.Label(0, 0); got != "b" {
		t.Errorf("even median = %q, want b", got)
	}
}
