package micro

import (
	"math/rand"
	"reflect"
	"testing"
)

// Determinism across MaxScanWorkers values, including the parallel kd build.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("scan worker sweep: slow property test")
	}
	rng := rand.New(rand.NewSource(5))
	n := 9000
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	defer func(w int) { MaxScanWorkers = w }(MaxScanWorkers)
	var ref []Cluster
	for _, w := range []int{1, 2, 8} {
		MaxScanWorkers = w
		got, err := MDAV(pts, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
		} else if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: partition differs", w)
		}
	}
}
