package micro

import (
	"runtime"
	"sort"
	"sync"
)

// Matrix is a flat row-major point store: n rows of dim float64 values in
// one contiguous backing array, stride-indexed for cache locality. The hot
// distance scans of the partition heuristics run over a Matrix instead of a
// [][]float64 so that walking consecutive rows touches consecutive memory.
//
// A Matrix is immutable after construction except for SetTuning and
// EnableIndexCache, which must be called before the matrix is shared;
// concurrent queries (including Searchers over it) are then safe.
type Matrix struct {
	data []float64
	n    int
	dim  int
	// tun holds engine-scoped tuning overrides; zero fields fall back to
	// the deprecated package-level defaults, so legacy callers and tests
	// that set the globals keep their behavior.
	tun Tuning
	// cache, when enabled, shares one lazily built k-d tree across every
	// Searcher over the full ascending row set (see IndexCache).
	cache *IndexCache
}

// Tuning carries per-Matrix overrides of the package-level performance
// knobs. The zero value defers every decision to the deprecated package
// variables (MaxScanWorkers, IndexCrossover), so an untuned Matrix behaves
// exactly as before; values < 1 also fall back to the defaults.
//
// Tuning a Matrix instead of writing the globals is what makes concurrent
// anonymization runs race-free: the globals are process-wide mutable state,
// while a Matrix's tuning is fixed before the matrix is shared.
type Tuning struct {
	// Workers caps the goroutine fan-out of parallel distance scans and of
	// the k-d tree build over this matrix.
	Workers int
	// IndexCrossover is the candidate-set size at or above which Searchers
	// over this matrix build the k-d tree index.
	IndexCrossover int
}

// SetTuning installs engine-scoped tuning for this matrix. It must be
// called before the matrix is shared across goroutines.
func (m *Matrix) SetTuning(t Tuning) { m.tun = t }

// TuningOf returns the matrix's tuning overrides.
func (m *Matrix) TuningOf() Tuning { return m.tun }

// NewMatrix copies points into a flat row-major Matrix. All rows must have
// the same length.
func NewMatrix(points [][]float64) *Matrix {
	n := len(points)
	if n == 0 {
		return &Matrix{}
	}
	dim := len(points[0])
	m := &Matrix{data: make([]float64, n*dim), n: n, dim: dim}
	for i, p := range points {
		copy(m.data[i*dim:(i+1)*dim], p)
	}
	return m
}

// AppendRowsCopy returns a new Matrix holding this matrix's rows followed
// by tail, leaving the receiver untouched (epoch-style ingest: in-flight
// queries over the old matrix stay valid). Tuning carries over; an enabled
// index cache carries over as a fresh, unbuilt cache, since the master tree
// of the old row set is invalid for the extended one.
func (m *Matrix) AppendRowsCopy(tail [][]float64) *Matrix {
	dim := m.dim
	if dim == 0 && len(tail) > 0 {
		dim = len(tail[0])
	}
	out := &Matrix{
		data: make([]float64, (m.n+len(tail))*dim),
		n:    m.n + len(tail),
		dim:  dim,
		tun:  m.tun,
	}
	copy(out.data, m.data)
	for i, p := range tail {
		copy(out.data[(m.n+i)*dim:(m.n+i+1)*dim], p)
	}
	if m.cache != nil {
		out.cache = &IndexCache{}
	}
	return out
}

// N returns the number of rows.
func (m *Matrix) N() int { return m.n }

// Dim returns the number of columns per row.
func (m *Matrix) Dim() int { return m.dim }

// Row returns row i as a slice aliasing the backing array.
func (m *Matrix) Row(i int) []float64 {
	return m.data[i*m.dim : (i+1)*m.dim : (i+1)*m.dim]
}

// RowDist2 returns the squared Euclidean distance between row i and point p.
func (m *Matrix) RowDist2(i int, p []float64) float64 {
	row := m.data[i*m.dim : (i+1)*m.dim]
	var s float64
	for j, v := range p {
		d := row[j] - v
		s += d * d
	}
	return s
}

// parallelScanMin is the number of candidate rows below which a distance
// scan stays single-threaded: goroutine fan-out only pays for itself on
// large remainders (full-size data sets), and small scans dominate the tail
// of every partition run.
const parallelScanMin = 8192

// MaxScanWorkers caps the goroutine fan-out of the parallel distance scans
// and of the k-d tree build for matrices without their own tuning. It
// defaults to runtime.GOMAXPROCS(0) — the old hardcoded cap of 8 silently
// throttled benchmark machines with more cores. Results are bit-identical
// for any value (each worker owns a disjoint, deterministic chunk); set it
// to 1 to force serial execution.
//
// Deprecated: writing this global from library code races with concurrent
// anonymization runs. Prefer per-matrix configuration via Matrix.SetTuning
// (engine callers: the WithWorkers option); the variable remains as the
// process-wide default.
var MaxScanWorkers = runtime.GOMAXPROCS(0)

// Workers returns the sanitized worker budget of this matrix (at least 1):
// its own tuning when set, the package default otherwise. It is the fan-out
// cap the partition loops share with the distance scans, so one engine
// option (core.WithWorkers) tunes every parallel seam over the matrix.
func (m *Matrix) Workers() int { return m.workerBudget() }

// workerBudget returns the sanitized worker cap for this matrix: its own
// tuning when set, the package default otherwise.
func (m *Matrix) workerBudget() int {
	w := m.tun.Workers
	if w < 1 {
		w = MaxScanWorkers
	}
	if w < 1 {
		return 1
	}
	return w
}

// ScanWorkers returns the fan-out a row scan of the given size should use
// over this matrix: the worker budget above the parallel-scan floor, 1
// below it. External scan loops (e.g. the jump engine's distance fills)
// route through it so the engagement floor stays one knob shared with the
// matrix's own scans.
func (m *Matrix) ScanWorkers(nRows int) int { return m.scanWorkers(nRows) }

// scanWorkers returns the fan-out for a parallel scan over nRows.
func (m *Matrix) scanWorkers(nRows int) int {
	w := m.workerBudget()
	if nRows < parallelScanMin || w < 2 {
		return 1
	}
	return w
}

// chunkBounds splits [0,n) into w near-equal chunks and returns the
// boundaries of chunk i.
func chunkBounds(n, w, i int) (lo, hi int) {
	lo = i * n / w
	hi = (i + 1) * n / w
	return lo, hi
}

// Farthest returns the row among rows whose point is farthest (squared
// Euclidean) from p. Ties break toward the earliest position in rows, which
// for the ascending row sets used by the partitioners is the lowest index —
// matching the serial scan exactly, so parallel execution is deterministic.
func (m *Matrix) Farthest(rows []int, p []float64) int {
	w := m.scanWorkers(len(rows))
	if w == 1 {
		best, bestD := -1, -1.0
		for _, r := range rows {
			if d := m.RowDist2(r, p); d > bestD {
				best, bestD = r, d
			}
		}
		return best
	}
	bestRow := make([]int, w)
	bestD := make([]float64, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo, hi := chunkBounds(len(rows), w, i)
			b, bd := -1, -1.0
			for _, r := range rows[lo:hi] {
				if d := m.RowDist2(r, p); d > bd {
					b, bd = r, d
				}
			}
			bestRow[i], bestD[i] = b, bd
		}(i)
	}
	wg.Wait()
	best, bd := -1, -1.0
	for i := 0; i < w; i++ {
		if bestRow[i] >= 0 && bestD[i] > bd {
			best, bd = bestRow[i], bestD[i]
		}
	}
	return best
}

// Nearest returns the row among rows whose point is nearest to p, breaking
// ties toward the earliest position in rows.
func (m *Matrix) Nearest(rows []int, p []float64) int {
	w := m.scanWorkers(len(rows))
	if w == 1 {
		best, bestD := -1, -1.0
		for _, r := range rows {
			if d := m.RowDist2(r, p); best == -1 || d < bestD {
				best, bestD = r, d
			}
		}
		return best
	}
	bestRow := make([]int, w)
	bestD := make([]float64, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo, hi := chunkBounds(len(rows), w, i)
			b, bd := -1, -1.0
			for _, r := range rows[lo:hi] {
				if d := m.RowDist2(r, p); b == -1 || d < bd {
					b, bd = r, d
				}
			}
			bestRow[i], bestD[i] = b, bd
		}(i)
	}
	wg.Wait()
	best, bd := -1, -1.0
	for i := 0; i < w; i++ {
		if bestRow[i] >= 0 && (best == -1 || bestD[i] < bd) {
			best, bd = bestRow[i], bestD[i]
		}
	}
	return best
}

// distRow pairs a candidate row with its squared distance to the query
// point; the total order (d, then row) is the tie-breaking order every
// selection routine in the package agrees on.
type distRow struct {
	d   float64
	row int
}

func distRowLess(a, b distRow) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.row < b.row
}

// fillDists computes the distances from every candidate row to p, fanning
// out across goroutines for large candidate sets (each chunk writes a
// disjoint range, so the result is deterministic).
func (m *Matrix) fillDists(ds []distRow, rows []int, p []float64) {
	w := m.scanWorkers(len(rows))
	if w == 1 {
		for i, r := range rows {
			ds[i] = distRow{d: m.RowDist2(r, p), row: r}
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo, hi := chunkBounds(len(rows), w, i)
			for j := lo; j < hi; j++ {
				ds[j] = distRow{d: m.RowDist2(rows[j], p), row: rows[j]}
			}
		}(i)
	}
	wg.Wait()
}

// selectSmallest partially sorts ds so that ds[:k] holds the k smallest
// entries in (d, row) order. Quickselect with median-of-three pivoting gives
// O(len(ds)) expected time, and the final sort of the k survivors restores
// the exact output order of a full sort. The (d, row) order is total (rows
// are distinct), so the result does not depend on pivot choices.
func selectSmallest(ds []distRow, k int) {
	lo, hi := 0, len(ds)
	for hi-lo > 1 && k > lo && k < hi {
		pivot := medianOfThree(ds, lo, hi)
		i, j := lo, hi-1
		for i <= j {
			for distRowLess(ds[i], pivot) {
				i++
			}
			for distRowLess(pivot, ds[j]) {
				j--
			}
			if i <= j {
				ds[i], ds[j] = ds[j], ds[i]
				i++
				j--
			}
		}
		// Invariant: ds[lo:i] <= pivot <= ds[i:hi] elementwise (with the
		// middle band equal to pivot); recurse into the side containing k.
		if k <= j {
			hi = j + 1
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	sort.Slice(ds[:k], func(i, j int) bool { return distRowLess(ds[i], ds[j]) })
}

func medianOfThree(ds []distRow, lo, hi int) distRow {
	a, b, c := ds[lo], ds[lo+(hi-lo)/2], ds[hi-1]
	if distRowLess(b, a) {
		a, b = b, a
	}
	if distRowLess(c, b) {
		b = c
		if distRowLess(b, a) {
			b = a
		}
	}
	return b
}

// KNearest returns the k rows among rows whose points are nearest to p, in
// ascending (distance, row) order — the same order, including ties, as
// sorting every candidate. Cost is O(len(rows) + k·log k) instead of the
// full sort's O(len(rows)·log len(rows)).
func (m *Matrix) KNearest(rows []int, p []float64, k int) []int {
	if k > len(rows) {
		k = len(rows)
	}
	ds := make([]distRow, len(rows))
	m.fillDists(ds, rows, p)
	selectSmallest(ds, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].row
	}
	return out
}

// RunningCentroid maintains the mean point of a shrinking row set in O(dim)
// per removed row, replacing the O(remaining·dim) full rescan the partition
// heuristics used to pay at the top of every cluster round.
type RunningCentroid struct {
	m   *Matrix
	sum []float64
	cnt int
	buf []float64
}

// NewRunningCentroid sums every row of the matrix.
func NewRunningCentroid(m *Matrix) *RunningCentroid {
	rc := &RunningCentroid{
		m:   m,
		sum: make([]float64, m.dim),
		buf: make([]float64, m.dim),
		cnt: m.n,
	}
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		for j, v := range row {
			rc.sum[j] += v
		}
	}
	return rc
}

// RemoveRows subtracts the given rows from the running sum.
func (rc *RunningCentroid) RemoveRows(rows []int) {
	for _, r := range rows {
		row := rc.m.Row(r)
		for j, v := range row {
			rc.sum[j] -= v
		}
	}
	rc.cnt -= len(rows)
}

// Count returns the number of rows still in the sum.
func (rc *RunningCentroid) Count() int { return rc.cnt }

// rcExactCutoff is the remainder size below which CentroidOf recomputes the
// mean from scratch instead of using the running sum. Small remainders are
// where structurally exact distance ties live (e.g. the final two records
// are always equidistant from their midpoint), and there the winner is
// decided by rounding noise — recomputing with the same summation order as
// the naive implementation keeps the choice bit-identical to it. For large
// remainders the incremental drift (~1e-14) is far below any non-tied
// distance gap.
const rcExactCutoff = 128

// CentroidOf returns the mean point of rows, which must be exactly the rows
// still in the running sum. The returned slice is reused by subsequent
// calls. O(dim) per call for large row sets, an exact O(len(rows)·dim)
// rescan below rcExactCutoff.
func (rc *RunningCentroid) CentroidOf(rows []int) []float64 {
	if len(rows) <= rcExactCutoff {
		for j := range rc.buf {
			rc.buf[j] = 0
		}
		for _, r := range rows {
			row := rc.m.Row(r)
			for j, v := range row {
				rc.buf[j] += v
			}
		}
		inv := 1.0 / float64(len(rows))
		for j := range rc.buf {
			rc.buf[j] *= inv
		}
		return rc.buf
	}
	inv := 1.0 / float64(rc.cnt)
	for j, v := range rc.sum {
		rc.buf[j] = v * inv
	}
	return rc.buf
}

// CentroidRows returns the mean point of the given rows in dst (allocated
// when nil), summing rows in slice order and dimensions in ascending order —
// the same float64 operation order as Centroid on a [][]float64.
func (m *Matrix) CentroidRows(rows []int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.dim)
	}
	for j := range dst {
		dst[j] = 0
	}
	for _, r := range rows {
		row := m.Row(r)
		for j, v := range row {
			dst[j] += v
		}
	}
	inv := 1.0 / float64(len(rows))
	for j := range dst {
		dst[j] *= inv
	}
	return dst
}

// FilterRows returns remaining minus the rows in drop, preserving order. It
// is the shared sorted-remove helper of every partition loop: scratch must
// have length at least the maximum row index plus one; it is used as a
// membership marker and reset before returning, so a single allocation
// serves every call of a partition run (the per-call map the previous
// removeRows/removeSorted copies allocated was a measurable share of the
// hot loop).
func FilterRows(remaining, drop []int, scratch []bool) []int {
	for _, r := range drop {
		scratch[r] = true
	}
	out := remaining[:0]
	for _, r := range remaining {
		if !scratch[r] {
			out = append(out, r)
		}
	}
	for _, r := range drop {
		scratch[r] = false
	}
	return out
}
