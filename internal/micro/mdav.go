package micro

// MDAV (Maximum Distance to AVerage) is the fixed-size multivariate
// microaggregation heuristic of Domingo-Ferrer and Mateo-Sanz used as the
// baseline partitioner in the paper (cost O(n^2/k)).
//
// While at least 3k records remain, MDAV finds the record xr farthest from
// the centroid of the remaining records and the record xs farthest from xr,
// and forms one cluster of the k records nearest to each. When between 2k
// and 3k-1 records remain, a cluster is formed around the record farthest
// from the centroid and the rest form the final cluster. When fewer than 2k
// remain, they all join a single final cluster.
//
// MDAV partitions points (a row-major matrix of normalized quasi-identifier
// vectors) into clusters of size at least k. If len(points) < 2k the result
// is a single cluster containing every record.
//
// The implementation keeps the remaining-set centroid as a running sum
// (O(k·dim) to update per extracted cluster instead of an O(n·dim) rescan),
// selects the k nearest records by partial selection instead of a full
// sort, and scans distances over a flat stride-indexed copy of the points,
// in parallel for large remainders.
func MDAV(points [][]float64, k int) ([]Cluster, error) {
	return MDAVMatrix(NewMatrix(points), k)
}

// MDAVMatrix is MDAV over an already-flattened point matrix.
func MDAVMatrix(m *Matrix, k int) ([]Cluster, error) {
	n := m.N()
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 1 {
		return nil, ErrBadK
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	rc := NewRunningCentroid(m)
	scratch := make([]bool, n)
	var clusters []Cluster
	for len(remaining) >= 3*k {
		xr := m.Farthest(remaining, rc.CentroidOf(remaining))
		cluster1 := m.KNearest(remaining, m.Row(xr), k)
		remaining = FilterRows(remaining, cluster1, scratch)
		rc.RemoveRows(cluster1)
		xs := m.Farthest(remaining, m.Row(xr))
		cluster2 := m.KNearest(remaining, m.Row(xs), k)
		remaining = FilterRows(remaining, cluster2, scratch)
		rc.RemoveRows(cluster2)
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: cluster2})
	}
	if len(remaining) >= 2*k {
		xr := m.Farthest(remaining, rc.CentroidOf(remaining))
		cluster1 := m.KNearest(remaining, m.Row(xr), k)
		remaining = FilterRows(remaining, cluster1, scratch)
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: remaining})
	} else if len(remaining) > 0 {
		clusters = append(clusters, Cluster{Rows: remaining})
	}
	return clusters, nil
}
