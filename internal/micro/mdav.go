package micro

// MDAV (Maximum Distance to AVerage) is the fixed-size multivariate
// microaggregation heuristic of Domingo-Ferrer and Mateo-Sanz used as the
// baseline partitioner in the paper (cost O(n^2/k)).
//
// While at least 3k records remain, MDAV finds the record xr farthest from
// the centroid of the remaining records and the record xs farthest from xr,
// and forms one cluster of the k records nearest to each. When between 2k
// and 3k-1 records remain, a cluster is formed around the record farthest
// from the centroid and the rest form the final cluster. When fewer than 2k
// remain, they all join a single final cluster.
//
// MDAV partitions points (a row-major matrix of normalized quasi-identifier
// vectors) into clusters of size at least k. If len(points) < 2k the result
// is a single cluster containing every record.
func MDAV(points [][]float64, k int) ([]Cluster, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 1 {
		return nil, ErrBadK
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var clusters []Cluster
	for len(remaining) >= 3*k {
		c := Centroid(points, remaining)
		xr := Farthest(points, remaining, c)
		cluster1 := KNearest(points, remaining, points[xr], k)
		remaining = removeRows(remaining, cluster1)
		xs := Farthest(points, remaining, points[xr])
		cluster2 := KNearest(points, remaining, points[xs], k)
		remaining = removeRows(remaining, cluster2)
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: cluster2})
	}
	if len(remaining) >= 2*k {
		c := Centroid(points, remaining)
		xr := Farthest(points, remaining, c)
		cluster1 := KNearest(points, remaining, points[xr], k)
		remaining = removeRows(remaining, cluster1)
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: remaining})
	} else if len(remaining) > 0 {
		clusters = append(clusters, Cluster{Rows: remaining})
	}
	return clusters, nil
}

// removeRows returns remaining minus the rows in drop, preserving order.
// drop is small (O(k)) so the linear scan per element is cheaper in practice
// than building a set.
func removeRows(remaining, drop []int) []int {
	dropSet := make(map[int]struct{}, len(drop))
	for _, r := range drop {
		dropSet[r] = struct{}{}
	}
	out := remaining[:0]
	for _, r := range remaining {
		if _, gone := dropSet[r]; !gone {
			out = append(out, r)
		}
	}
	return out
}
