package micro

import "context"

// MDAV (Maximum Distance to AVerage) is the fixed-size multivariate
// microaggregation heuristic of Domingo-Ferrer and Mateo-Sanz used as the
// baseline partitioner in the paper (cost O(n^2/k)).
//
// While at least 3k records remain, MDAV finds the record xr farthest from
// the centroid of the remaining records and the record xs farthest from xr,
// and forms one cluster of the k records nearest to each. When between 2k
// and 3k-1 records remain, a cluster is formed around the record farthest
// from the centroid and the rest form the final cluster. When fewer than 2k
// remain, they all join a single final cluster.
//
// MDAV partitions points (a row-major matrix of normalized quasi-identifier
// vectors) into clusters of size at least k. If len(points) < 2k the result
// is a single cluster containing every record.
//
// The implementation keeps the remaining-set centroid as a running sum
// (O(k·dim) to update per extracted cluster instead of an O(n·dim) rescan),
// selects the k nearest records by partial selection instead of a full
// sort, and routes the Farthest/KNearest queries through a Searcher: a
// deletable k-d tree over the normalized QI cube for large inputs
// (subquadratic rounds), the flat linear scan below IndexCrossover.
func MDAV(points [][]float64, k int) ([]Cluster, error) {
	return MDAVMatrix(NewMatrix(points), k)
}

// MDAVMatrix is MDAV over an already-flattened point matrix.
func MDAVMatrix(m *Matrix, k int) ([]Cluster, error) {
	return MDAVMatrixCtx(context.Background(), m, k)
}

// MDAVMatrixCtx is MDAVMatrix with cooperative cancellation, checked once
// per cluster-extraction round (each round costs O(n·dim) at most), so an
// abandoned run stops within one round and returns ctx.Err().
func MDAVMatrixCtx(ctx context.Context, m *Matrix, k int) ([]Cluster, error) {
	n := m.N()
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if ctx == nil {
		ctx = context.Background()
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	rc := NewRunningCentroid(m)
	search := m.NewSearcher(remaining)
	scratch := make([]bool, n)
	extract := func(seed []float64) []int {
		xr := search.Farthest(remaining, seed)
		cluster := search.KNearest(remaining, m.Row(xr), k)
		remaining = FilterRows(remaining, cluster, scratch)
		rc.RemoveRows(cluster)
		search.Remove(cluster)
		return cluster
	}
	var clusters []Cluster
	for len(remaining) >= 3*k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cluster1 := extract(rc.CentroidOf(remaining))
		// The paper seeds the second cluster at the record farthest from the
		// first seed, which is cluster1[0] (distance 0 to itself).
		cluster2 := extract(m.Row(cluster1[0]))
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: cluster2})
	}
	if len(remaining) >= 2*k {
		cluster1 := extract(rc.CentroidOf(remaining))
		clusters = append(clusters, Cluster{Rows: cluster1}, Cluster{Rows: remaining})
	} else if len(remaining) > 0 {
		clusters = append(clusters, Cluster{Rows: remaining})
	}
	return clusters, nil
}
