package micro

import (
	"math"
	"sync"

	"repro/internal/par"
)

// Searcher routes the partition loops' hot neighbor queries — Farthest,
// Nearest, KNearest, and the nearest-first candidate Stream — either through
// a deletable k-d tree over the candidate rows or through the linear Matrix
// scans, whichever the candidate-set size warrants. Both paths return
// bit-identical results (the property tests enforce it), so the crossover is
// purely a performance knob.
//
// The caller keeps its shrinking candidate slice as before and passes the
// current slice to every query: when the Searcher is unindexed the slice is
// the scan domain, and when it is indexed the slice is ignored (the tree
// tracks liveness itself via Remove). The slice must always contain exactly
// the rows not yet removed, in build order with removed rows dropped —
// precisely what FilterRows maintains.
//
// Shard handout: a single Searcher is not safe for concurrent use (it owns
// mutable liveness and stream scratch), but distinct Searchers over the
// same Matrix are — the Matrix is immutable after tuning and the shared
// index cache serializes master acquisition. The sharded partition loops
// rely on exactly this: one Searcher per disjoint row shard (rank subset,
// bucket pool), each owned by one worker at a time.
type Searcher struct {
	m    *Matrix
	tree *KDTree
	// buildRows retains the build order until the tree is actually built:
	// construction is lazy, triggered by the first query whose shape the
	// tree helps (see ensureTree), so workloads that never take a
	// tree-eligible path — e.g. Farthest-only loops in high dimensions —
	// never pay for a build. pending accumulates removals issued before the
	// build and is replayed into the fresh tree.
	buildRows []int
	pending   []int
	// cache, when non-nil, supplies the tree as a clone of a shared master
	// built once per Matrix row-set epoch (see IndexCache) instead of a
	// fresh per-Searcher build.
	cache *IndexCache

	// Reusable scratch for Stream: only one stream may be live at a time.
	stream      Stream
	linBuf      []distRow // pristine (distance, row) pairs in candidate order
	linHeap     []distRow // heapified copy consumed by the lazy phase
	drainStreak int       // consecutive preceding streams that drained
	emitMark    []bool    // row-indexed marks for drain's remainder collection
	drainA      []drainEntry
	drainTmp    []drainEntry
	radixCounts []int32
}

// IndexCrossover is the candidate-set size at or above which NewSearcher
// builds the k-d tree index for matrices without their own tuning. Below it
// the linear scans win: they are a single cache-friendly pass with no
// per-query tree overhead, and the whole partition run stays comfortably
// inside the quadratic regime. The value is a package variable so
// benchmarks can tune it and tests can force either path; both paths
// produce identical partitions.
//
// Deprecated: writing this global from library code races with concurrent
// anonymization runs. Prefer per-matrix configuration via Matrix.SetTuning
// (engine callers: the WithIndexCrossover option); the variable remains as
// the process-wide default.
var IndexCrossover = 2048

// indexCrossover returns the effective crossover for this matrix.
func (m *Matrix) indexCrossover() int {
	if c := m.tun.IndexCrossover; c >= 1 {
		return c
	}
	return IndexCrossover
}

// IndexCache shares one lazily built k-d tree master across Searchers. The
// expensive part of a tree — geometry, layout, bounds — is immutable after
// the build; only liveness (alive bits, subtree counts) mutates under
// deletion. The cache therefore builds the master on first demand and hands
// every Searcher an O(n) clone sharing the immutable arrays, so a sweep of
// anonymization runs over one prepared table pays the O(n·log n) build once
// instead of once per run. Concurrent acquisitions are serialized; clones
// are independent, so concurrent runs never observe each other's deletions.
type IndexCache struct {
	mu    sync.Mutex
	tree  *KDTree
	built bool
}

// acquire returns an independent clone of the master tree over rows,
// building the master on first use. A degenerate build (no tree) is
// memoized as nil.
func (c *IndexCache) acquire(m *Matrix, rows []int) *KDTree {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.built {
		c.tree = NewKDTree(m, rows)
		c.built = true
	}
	if c.tree == nil {
		return nil
	}
	return c.tree.Clone()
}

// IndexCacheEnabled reports whether EnableIndexCache was called.
func (m *Matrix) IndexCacheEnabled() bool { return m.cache != nil }

// EnableIndexCache attaches a shared-master index cache to the matrix:
// Searchers over the full ascending row set then clone one lazily built
// master tree instead of each building their own. Like SetTuning, it must
// be called before the matrix is shared across goroutines.
func (m *Matrix) EnableIndexCache() {
	if m.cache == nil {
		m.cache = &IndexCache{}
	}
}

// fullAscending reports whether rows is exactly 0..n-1 — the only candidate
// set the shared master tree is valid for, since the build order fixes the
// tie-breaking rank of every query.
func fullAscending(rows []int, n int) bool {
	if len(rows) != n {
		return false
	}
	for i, r := range rows {
		if r != i {
			return false
		}
	}
	return true
}

// NewSearcher returns a Searcher over the given candidate rows, building
// the k-d tree when the candidate set is at least the matrix's index
// crossover. The rows slice fixes the tie-breaking rank order (see KDTree).
func (m *Matrix) NewSearcher(rows []int) *Searcher {
	s := &Searcher{m: m}
	if len(rows) >= m.indexCrossover() {
		s.buildRows = append([]int(nil), rows...)
		if m.cache != nil && fullAscending(rows, m.n) {
			s.cache = m.cache
		}
	}
	return s
}

// ensureTree builds the k-d tree on first demand — from the shared master
// cache when one applies, fresh otherwise — and replays removals that
// arrived before the build. A build that yields no tree (degenerate
// zero-dimension matrix) permanently reverts the Searcher to linear scans.
func (s *Searcher) ensureTree() *KDTree {
	if s.tree == nil && s.buildRows != nil {
		if s.cache != nil {
			s.tree = s.cache.acquire(s.m, s.buildRows)
		} else {
			s.tree = NewKDTree(s.m, s.buildRows)
		}
		if s.tree != nil {
			for _, r := range s.pending {
				s.tree.Delete(r)
			}
		}
		s.buildRows, s.pending = nil, nil
	}
	return s.tree
}

// NewSparseSearcher is NewSearcher for candidate sets that are sparse,
// geometry-scattered slices of the matrix — e.g. the confidential-ranking
// subsets of Algorithm 3 or SABRE's bucket pools, whose members are
// contiguous in the *confidential* ranking and therefore spread across the
// whole QI cube. In low dimensions the tree still prunes; in high
// dimensions the nearest-neighbor ball around a query covers most of such
// a sparse set's bounding boxes and the traversal degrades below the plain
// linear scan, so the tree is built only up to kdWideDimLimit dimensions.
func (m *Matrix) NewSparseSearcher(rows []int) *Searcher {
	if m.dim > kdWideDimLimit {
		return &Searcher{m: m}
	}
	return m.NewSearcher(rows)
}

// Indexed reports whether queries can run against the k-d tree (built or
// pending a lazy build).
func (s *Searcher) Indexed() bool { return s.tree != nil || s.buildRows != nil }

// StreamIndexed reports whether Stream would traverse the k-d tree rather
// than run in linear mode — true only below the wide-query dimensionality
// limit with an index available. Callers with their own ordering structures
// (e.g. Algorithm 2's interval-jump refinement) use it to take over exactly
// the regime where a stream would pay for a full linear distance pass
// anyway.
func (s *Searcher) StreamIndexed() bool {
	return s.m.dim <= kdWideDimLimit && s.Indexed()
}

// Remove deletes rows from the index. Removals issued before the lazy build
// are deferred and replayed; unindexed Searchers ignore them — the caller's
// candidate slice is the only liveness state the linear scans need.
func (s *Searcher) Remove(rows []int) {
	if s.tree != nil {
		for _, r := range rows {
			s.tree.Delete(r)
		}
	} else if s.buildRows != nil {
		s.pending = append(s.pending, rows...)
	}
}

// RemoveOne deletes a single row from the index.
func (s *Searcher) RemoveOne(row int) {
	if s.tree != nil {
		s.tree.Delete(row)
	} else if s.buildRows != nil {
		s.pending = append(s.pending, row)
	}
}

// Farthest returns the candidate row farthest from p, ties toward the
// earliest surviving position of the build order. The tree is used only in
// low dimensions: a farthest search prunes through upper bounds, and with
// concentrated high-dimensional geometry every subtree's upper bound hugs
// the incumbent, so the traversal degrades below the linear scan (measured
// crossover between 3 and 4 dimensions on uniform cubes).
func (s *Searcher) Farthest(rows []int, p []float64) int {
	if s.m.dim <= kdWideDimLimit {
		if t := s.ensureTree(); t != nil {
			return t.Farthest(p)
		}
	}
	return s.m.Farthest(rows, p)
}

// Nearest returns the candidate row nearest to p, ties toward the earliest
// surviving position of the build order. Nearest searches keep the tree at
// any dimensionality: they prune with the incumbent ball, which stays tiny
// in a dense candidate set even when boxes overlap the query.
func (s *Searcher) Nearest(rows []int, p []float64) int {
	if t := s.ensureTree(); t != nil {
		return t.Nearest(p)
	}
	return s.m.Nearest(rows, p)
}

// KNearest returns the k candidate rows nearest to p in ascending
// (distance, tie) order. The linear path ties by row id while the tree ties
// by build rank, so callers that rely on exact tie order must build the
// Searcher over rows in ascending order (as every partition loop does), in
// which case the two coincide.
func (s *Searcher) KNearest(rows []int, p []float64, k int) []int {
	if t := s.ensureTree(); t != nil {
		return t.KNearest(p, k)
	}
	return s.m.KNearest(rows, p, k)
}

// Stream returns the candidate rows in ascending (distance to p, tie) order
// one at a time, lazily: consumers that stop early pay only for what they
// take, while consumers that keep going trip the drain escape hatch (see
// Stream.Next). The rows slice must not change while the stream is in use,
// and no rows may be removed from the Searcher until the stream is
// abandoned. Streams reuse scratch buffers owned by the Searcher, so only
// one stream may be live per Searcher.
func (s *Searcher) Stream(rows []int, p []float64) *Stream {
	st := &s.stream
	// Close out the previous stream's drain history. A lazy stream that
	// drained proves the heap phase was wasted work (the drain re-walks and
	// sorts everything the heap held), so it votes for presorting the next
	// stream; a lazy stream that finished inside its head, or a presorted
	// stream whose consumer stopped where the head would have sufficed,
	// resets the streak. The mode only moves work between phases — emission
	// order is identical either way.
	if st.s == s {
		if st.rest == nil || (st.presorted && st.restPos < streamDrainAt) {
			s.drainStreak = 0
		}
	}
	st.s = s
	st.emitted = 0
	st.emittedRows = st.emittedRows[:0]
	st.rest = nil
	st.restPos = 0
	st.lin = nil
	st.presorted = false
	if s.m.dim <= kdWideDimLimit {
		if tree := s.ensureTree(); tree != nil {
			st.kd.t = tree
			st.kd.q = tree.newQuery(p)
			st.kd.pq = st.kd.pq[:0]
			st.kd.push(kdSEntry{d: tree.lowerBound2(0, &st.kd.q), node: 0})
			st.total = tree.Len()
			return st
		}
	}
	// Linear mode: precompute every distance in candidate order, then
	// heapify a copy and pop lazily in (distance, row) order — for the
	// ascending row sets the partition loops use, identical to
	// (distance, position) order. The pristine array stays in candidate
	// (tie) order so a drain can collect the remainder already tie-sorted.
	if cap(s.linBuf) < len(rows) {
		s.linBuf = make([]distRow, len(rows))
		s.linHeap = make([]distRow, len(rows))
	}
	ds := s.linBuf[:len(rows)]
	// The distance fill fans out across the matrix's worker budget for
	// large candidate sets (each chunk writes disjoint slots of the same
	// values, so the result is bit-identical at any worker count).
	s.m.fillDists(ds, rows, p)
	st.kd.t = nil
	st.total = len(rows)
	if s.drainStreak >= presortStreak && len(rows) > 2*streamDrainAt {
		// Recent streams all blew through their lazy heads: skip the heap
		// and radix-sort everything up front. The entry conversion is
		// chunk-parallel like the fill; the radix passes stay serial — at
		// partition-loop drain sizes the per-digit offset synchronization
		// would cost more than the passes themselves.
		rem := growDrain(&s.drainA, len(ds))
		w := s.m.scanWorkers(len(ds))
		par.Chunks(len(ds), w, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := ds[i]
				rem[i] = drainEntry{d: e.d, tie: int32(e.row), row: int32(e.row)}
			}
		})
		st.rest = st.finishDrain(rem, false)
		st.presorted = true
		return st
	}
	heap := s.linHeap[:len(rows)]
	copy(heap, ds)
	st.lin = linStream(heap)
	st.lin.init()
	return st
}

// kdWideDimLimit is the dimensionality above which the "wide" query shapes
// — Farthest and the nearest-first Stream — stop using the k-d tree. Both
// must keep subtrees alive whenever a loose bound crosses their frontier
// (the incumbent farthest distance, or the emission front), and in higher
// dimensions box and annulus bounds are loose enough (every box is "close"
// to every query) that the traversal touches most of the tree while paying
// per-node constants; the flat linear pass is strictly cheaper there.
// Nearest/KNearest keep the tree at any dimension: their incumbent ball
// collapses after the first leaf and keeps cutting deep even when boxes
// overlap the query ball. The measured crossover for both wide shapes sits
// between 3 and 4 dimensions on uniform cubes and on the Patient Discharge
// mixed-cardinality geometry.
const kdWideDimLimit = 3

// presortStreak is the number of consecutive heavily-consumed streams after
// which the next stream skips the lazy heap and radix-sorts everything up
// front. A presort that turns out unnecessary (the consumer stops inside
// what the head would have covered) costs one full sort, so the bar is set
// high enough that the mode only engages in sustained full-drain regimes —
// tight t levels, where every cluster exhausts every candidate — and a
// single light cluster resets it. A variable so tests can force the mode.
var presortStreak = 8

// streamDrainAt is the number of lazily popped candidates after which a
// stream concludes the consumer is going to take most of the candidate set
// and materializes the remainder into one radix-sorted array: popping R
// candidates off a priority queue costs O(R·log R) with cache-hostile
// constants, while the radix sort is O(R) over contiguous memory. The
// switch preserves the exact (distance, tie) emission order, so it is
// invisible to the consumer. A variable so tests can force drains on small
// candidate sets.
var streamDrainAt = 384

// Stream yields rows in exact ascending (distance, tie) order; see
// Searcher.Stream.
type Stream struct {
	s         *Searcher
	kd        kdStream
	lin       linStream // lazy binary heap of the linear mode; nil in indexed mode
	presorted bool      // remainder materialized at creation, not by a drain
	emitted   int
	// emittedRows records the rows emitted by an indexed stream's lazy
	// phase so a drain can exclude them (linear drains exclude the head of
	// lin instead).
	emittedRows []int32
	total       int
	rest        []drainEntry // radix-sorted remainder after the drain switch
	restPos     int
}

// Next returns the next-nearest row, or ok=false when the candidates are
// exhausted.
func (st *Stream) Next() (row int, ok bool) {
	if st.rest != nil {
		if st.restPos >= len(st.rest) {
			return -1, false
		}
		row = int(st.rest[st.restPos].row)
		st.restPos++
		return row, true
	}
	if st.emitted >= streamDrainAt && st.total-st.emitted > streamDrainAt {
		st.drain()
		return st.Next()
	}
	st.emitted++
	if st.lin != nil {
		row, ok = st.lin.next()
		if ok {
			st.emittedRows = append(st.emittedRows, int32(row))
		}
		return row, ok
	}
	return st.kd.next()
}

// drain materializes every not-yet-emitted candidate and sorts it into
// exact (distance, tie) order with a stable LSD radix sort over the
// distance bits. Linear streams collect the remainder from the pristine
// candidate-order array (already tie-ordered, so stability alone fixes
// ties); indexed streams collect arbitrary-order entries from the traversal
// queue and radix-sort the tie key first.
func (st *Stream) drain() {
	var rem []drainEntry
	sortTies := false
	if st.lin != nil {
		mark := st.s.emitMark
		if len(mark) < st.s.m.n {
			mark = make([]bool, st.s.m.n)
			st.s.emitMark = mark
		}
		for _, r := range st.emittedRows {
			mark[r] = true
		}
		rem = growDrain(&st.s.drainA, 0)[:0]
		for _, e := range st.s.linBuf[:st.total] {
			if !mark[e.row] {
				rem = append(rem, drainEntry{d: e.d, tie: int32(e.row), row: int32(e.row)})
			}
		}
		st.s.drainA = rem
		for _, r := range st.emittedRows {
			mark[r] = false
		}
		st.lin = nil
	} else {
		rem = st.kd.collectRest(growDrain(&st.s.drainA, 0)[:0])
		st.s.drainA = rem
		sortTies = true
	}
	st.rest = st.finishDrain(rem, sortTies)
}

// finishDrain radix-sorts the materialized remainder and records the drain
// in the Searcher's streak.
func (st *Stream) finishDrain(rem []drainEntry, sortTies bool) []drainEntry {
	if st.s.radixCounts == nil {
		st.s.radixCounts = make([]int32, 1<<16)
	}
	sorted := radixSortDrain(rem, &st.s.drainTmp, st.s.radixCounts, sortTies)
	// The radix passes ping-pong between the two scratch buffers, so the
	// sorted result may live in either; reanchor them so the next drain
	// never aliases its source and destination.
	st.s.drainA = sorted
	st.restPos = 0
	if st.s.drainStreak < 1<<30 {
		st.s.drainStreak++
	}
	return sorted
}

// drainEntry is one materialized stream candidate: tie is the stream's
// tie-break key (build rank for indexed streams, row id for linear ones).
type drainEntry struct {
	d   float64
	tie int32
	row int32
}

func growDrain(buf *[]drainEntry, n int) []drainEntry {
	if cap(*buf) < n {
		*buf = make([]drainEntry, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// radixSortDrain sorts entries into ascending (d, tie) order with a stable
// LSD radix sort over the float64 distance bits (all distances are
// non-negative squared distances, whose IEEE-754 bit patterns order
// identically to their values). When sortTies is false the input must
// already be in ascending tie order — stability then resolves equal
// distances for free; when true, tie-key passes run first. Digits whose
// value is constant across the array are skipped. The digit width adapts to
// the array: 11-bit digits keep the count array at 8 KiB for small drains
// (where clearing a 256 KiB count array would dominate), 16-bit digits
// halve the number of passes once the data outweighs the clearing.
func radixSortDrain(a []drainEntry, tmp *[]drainEntry, counts []int32, sortTies bool) []drainEntry {
	if len(a) < 2 {
		return a
	}
	bits := 11
	if len(a) >= 1<<14 {
		bits = 16
	}
	b := growDrain(tmp, len(a))
	var orD, andD uint64
	andD = ^uint64(0)
	var orT, andT uint32
	andT = ^uint32(0)
	for _, e := range a {
		db := math.Float64bits(e.d)
		orD |= db
		andD &= db
		orT |= uint32(e.tie)
		andT &= uint32(e.tie)
	}
	mask := uint32(1)<<bits - 1
	if sortTies {
		for shift := 0; shift < 32; shift += bits {
			if (orT>>shift)&mask == (andT>>shift)&mask {
				continue // constant digit: nothing to order
			}
			radixPassTie(a, b, counts[:1<<bits], shift, mask)
			a, b = b, a
		}
	}
	for shift := 0; shift < 64; shift += bits {
		if uint32(orD>>uint(shift))&mask == uint32(andD>>uint(shift))&mask {
			continue
		}
		radixPassDist(a, b, counts[:1<<bits], shift, mask)
		a, b = b, a
	}
	*tmp = b
	return a
}

func radixPassTie(src, dst []drainEntry, counts []int32, shift int, mask uint32) {
	clear(counts)
	for i := range src {
		counts[(uint32(src[i].tie)>>shift)&mask]++
	}
	var sum int32
	for i := range counts {
		c := counts[i]
		counts[i] = sum
		sum += c
	}
	for i := range src {
		d := (uint32(src[i].tie) >> shift) & mask
		dst[counts[d]] = src[i]
		counts[d]++
	}
}

func radixPassDist(src, dst []drainEntry, counts []int32, shift int, mask uint32) {
	clear(counts)
	for i := range src {
		counts[uint32(math.Float64bits(src[i].d)>>uint(shift))&mask]++
	}
	var sum int32
	for i := range counts {
		c := counts[i]
		counts[i] = sum
		sum += c
	}
	for i := range src {
		d := uint32(math.Float64bits(src[i].d)>>uint(shift)) & mask
		dst[counts[d]] = src[i]
		counts[d]++
	}
}

// linStream is a binary min-heap over precomputed (distance, row) pairs,
// popped lazily in (distance, row) order.
type linStream []distRow

func (h *linStream) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h linStream) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		next := l
		if r := l + 1; r < n && distRowLess(h[r], h[l]) {
			next = r
		}
		if !distRowLess(h[next], h[i]) {
			return
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
}

func (h *linStream) next() (int, bool) {
	if len(*h) == 0 {
		return -1, false
	}
	top := (*h)[0].row
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	h.siftDown(0)
	return top, true
}

// kdStream is the best-first traversal of the k-d tree: a priority queue
// holding both unexpanded subtrees (keyed by their bounding-box lower bound)
// and concrete points (keyed by their exact distance). Popping in ascending
// key order yields points in nondecreasing distance; at equal keys subtrees
// expand before points emit, so every equal-distance point enters the queue
// before the first of them leaves it and the (distance, rank) tie order is
// exact.
type kdStream struct {
	t  *KDTree
	q  kdQuery
	pq []kdSEntry
}

// kdSEntry is a stream queue element: node >= 0 marks an unexpanded subtree,
// node < 0 a point (row, rank valid).
type kdSEntry struct {
	d    float64
	rank int32
	node int32
	row  int32
}

func (s *kdStream) less(a, b kdSEntry) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	an, bn := a.node >= 0, b.node >= 0
	if an != bn {
		return an // subtrees expand before equal-distance points emit
	}
	if an {
		return a.node < b.node
	}
	return a.rank < b.rank
}

func (s *kdStream) push(e kdSEntry) {
	s.pq = append(s.pq, e)
	i := len(s.pq) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !s.less(s.pq[i], s.pq[par]) {
			return
		}
		s.pq[i], s.pq[par] = s.pq[par], s.pq[i]
		i = par
	}
}

func (s *kdStream) pop() kdSEntry {
	top := s.pq[0]
	last := len(s.pq) - 1
	s.pq[0] = s.pq[last]
	s.pq = s.pq[:last]
	i, n := 0, len(s.pq)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		next := l
		if r := l + 1; r < n && s.less(s.pq[r], s.pq[l]) {
			next = r
		}
		if !s.less(s.pq[next], s.pq[i]) {
			break
		}
		s.pq[i], s.pq[next] = s.pq[next], s.pq[i]
		i = next
	}
	return top
}

// collectRest appends every not-yet-emitted alive point to out: each such
// point sits in exactly one pending queue entry — as a concrete point entry
// or inside an unexpanded subtree — so one pass over the queue plus subtree
// walks is exhaustive and duplicate-free.
func (s *kdStream) collectRest(out []drainEntry) []drainEntry {
	for _, e := range s.pq {
		if e.node < 0 {
			out = append(out, drainEntry{d: e.d, tie: e.rank, row: e.row})
			continue
		}
		out = s.collectSubtree(e.node, out)
	}
	s.pq = s.pq[:0]
	return out
}

func (s *kdStream) collectSubtree(ni int32, out []drainEntry) []drainEntry {
	t := s.t
	nd := &t.nodes[ni]
	if nd.count == 0 {
		return out
	}
	if nd.left < 0 {
		for i := nd.start; i < nd.end; i++ {
			if !t.alive[i] {
				continue
			}
			out = append(out, drainEntry{d: t.dist2At(i, s.q.p), tie: t.rank[i], row: t.items[i]})
		}
		return out
	}
	out = s.collectSubtree(nd.left, out)
	return s.collectSubtree(nd.right, out)
}

func (s *kdStream) next() (int, bool) {
	t := s.t
	for len(s.pq) > 0 {
		e := s.pop()
		if e.node < 0 {
			return int(e.row), true
		}
		nd := &t.nodes[e.node]
		if nd.count == 0 {
			continue
		}
		if nd.left < 0 {
			for i := nd.start; i < nd.end; i++ {
				if !t.alive[i] {
					continue
				}
				s.push(kdSEntry{d: t.dist2At(i, s.q.p), rank: t.rank[i], node: -1, row: t.items[i]})
			}
			continue
		}
		s.push(kdSEntry{d: t.lowerBound2(nd.left, &s.q), node: nd.left})
		s.push(kdSEntry{d: t.lowerBound2(nd.right, &s.q), node: nd.right})
	}
	return -1, false
}
