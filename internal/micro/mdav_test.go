package micro

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestMDAVErrors(t *testing.T) {
	if _, err := MDAV(nil, 2); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := MDAV(randomPoints(5, 2, 1), 0); err == nil {
		t.Error("k = 0 should fail")
	}
}

func TestMDAVPartitionAndSizeBounds(t *testing.T) {
	for _, n := range []int{1, 2, 5, 7, 10, 33, 100} {
		for _, k := range []int{1, 2, 3, 5} {
			pts := randomPoints(n, 3, int64(n*100+k))
			clusters, err := MDAV(pts, k)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if err := CheckPartition(clusters, n, min(k, n)); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			// MDAV's fixed-size guarantee: every cluster has between k and
			// 2k-1 records when n >= k; a lone smaller cluster only if n<k.
			if n >= k {
				for ci, c := range clusters {
					if c.Size() < k || c.Size() > 2*k-1 {
						t.Errorf("n=%d k=%d: cluster %d has size %d outside [k, 2k-1]",
							n, k, ci, c.Size())
					}
				}
			}
		}
	}
}

func TestMDAVSizeBoundsProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%120
		k := 1 + int(kRaw)%10
		pts := randomPoints(n, 2, seed)
		clusters, err := MDAV(pts, k)
		if err != nil {
			return false
		}
		if err := CheckPartition(clusters, n, min(k, n)); err != nil {
			return false
		}
		if n < k {
			return len(clusters) == 1
		}
		for _, c := range clusters {
			if c.Size() < k || c.Size() > 2*k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMDAVDeterministic(t *testing.T) {
	pts := randomPoints(50, 2, 4)
	a, err := MDAV(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MDAV(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("MDAV is not deterministic")
	}
}

func TestMDAVSmallerThan2K(t *testing.T) {
	pts := randomPoints(5, 2, 9)
	clusters, err := MDAV(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Size() != 5 {
		t.Errorf("n < 2k should give one cluster of n, got %v", clusters)
	}
}

func TestMDAVGroupsNeighbors(t *testing.T) {
	// Two well-separated point blobs of size 3 with k=3 must map to the two
	// blobs exactly.
	pts := [][]float64{
		{0, 0}, {0.01, 0}, {0, 0.01},
		{10, 10}, {10.01, 10}, {10, 10.01},
	}
	clusters, err := MDAV(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	for _, c := range clusters {
		low, high := 0, 0
		for _, r := range c.Rows {
			if r < 3 {
				low++
			} else {
				high++
			}
		}
		if low != 0 && high != 0 {
			t.Errorf("cluster mixes the two blobs: %v", c.Rows)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
