package micro

import (
	"testing"
	"testing/quick"
)

func TestVMDAVErrors(t *testing.T) {
	if _, err := VMDAV(nil, 2, 0); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := VMDAV(randomPoints(5, 2, 1), 0, 0); err == nil {
		t.Error("k = 0 should fail")
	}
}

func TestVMDAVPartitionAndSizeBounds(t *testing.T) {
	for _, n := range []int{1, 2, 6, 11, 50, 101} {
		for _, k := range []int{1, 2, 4} {
			pts := randomPoints(n, 2, int64(n*37+k))
			clusters, err := VMDAV(pts, k, 0)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if err := CheckPartition(clusters, n, 1); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if n >= k {
				for ci, c := range clusters {
					if c.Size() < k {
						t.Errorf("n=%d k=%d: cluster %d undersized (%d)", n, k, ci, c.Size())
					}
				}
			}
		}
	}
}

func TestVMDAVSizeUpperBound(t *testing.T) {
	// V-MDAV may extend clusters, but never beyond 2k-1 before the final
	// leftover assignment; leftovers (< k) can push a cluster to at most
	// (2k-1) + (k-1) = 3k-2.
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := 1 + int(nRaw)%120
		k := 1 + int(kRaw)%8
		clusters, err := VMDAV(randomPoints(n, 2, seed), k, 0)
		if err != nil {
			return false
		}
		if err := CheckPartition(clusters, n, 1); err != nil {
			return false
		}
		for _, c := range clusters {
			if n >= k && c.Size() < k {
				return false
			}
			if c.Size() > 3*k-2 && len(clusters) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVMDAVGammaDefault(t *testing.T) {
	pts := randomPoints(30, 2, 5)
	a, err := VMDAV(pts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VMDAV(pts, 3, VMDAVGammaDefault)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("gamma 0 should select the default: %d vs %d clusters", len(a), len(b))
	}
}

func TestVMDAVExtendsInDenseRegions(t *testing.T) {
	// A tight blob of 5 points plus distant scattered points: with k=3 the
	// blob should be kept together by the extension step rather than split.
	pts := [][]float64{
		{0, 0}, {0.001, 0}, {0, 0.001}, {0.001, 0.001}, {0.0005, 0.0005},
		{10, 10}, {20, 20}, {30, 30},
	}
	clusters, err := VMDAV(pts, 3, VMDAVGammaDefault)
	if err != nil {
		t.Fatal(err)
	}
	// Find the cluster containing point 0; all five blob points should sit
	// in one cluster.
	for _, c := range clusters {
		has0 := false
		blob := 0
		for _, r := range c.Rows {
			if r == 0 {
				has0 = true
			}
			if r < 5 {
				blob++
			}
		}
		if has0 && blob != 5 {
			t.Errorf("blob split across clusters: %v", clusters)
		}
	}
}
