package privacy

import (
	"errors"
	"sort"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// (n,t)-closeness (Li, Li & Venkatasubramanian, TKDE 2010) relaxes
// t-closeness: an equivalence class E satisfies (n,t)-closeness if there is
// a "natural" superset of records containing E, with at least n records,
// whose confidential-attribute distribution is within EMD t of E's. The
// paper notes its algorithms "are easily adaptable to (n,t)-closeness";
// this file provides the corresponding verifier so adopters can check
// releases against the relaxed model too.
//
// Following the original proposal, the natural superset of a class is taken
// to be its quasi-identifier neighborhood: the nMin records closest (in
// normalized QI space) to the class centroid, which always includes the
// class itself.

// NTClosenessOf returns the (nMin, t)-closeness level of a partition: the
// maximum over classes and confidential attributes of the EMD between the
// class distribution and its nMin-record QI-neighborhood distribution. The
// release satisfies (nMin, t)-closeness for any t at or above the returned
// level. When nMin >= the table size, this degenerates to plain
// t-closeness.
func NTClosenessOf(t *dataset.Table, classes []micro.Cluster, nMin int) (float64, error) {
	if t.Len() == 0 {
		return 0, ErrNoRecords
	}
	if nMin < 1 {
		return 0, errors.New("privacy: n must be at least 1")
	}
	if nMin > t.Len() {
		nMin = t.Len()
	}
	confs := t.Schema().Confidentials()
	if len(confs) == 0 {
		return 0, errors.New("privacy: schema has no confidential attributes")
	}
	points := t.QIMatrix()
	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	worst := 0.0
	for _, col := range confs {
		vals := t.ColumnView(col)
		for _, class := range classes {
			neighborhood := qiNeighborhood(points, all, class, nMin)
			// Build a local space over the neighborhood's values: the
			// reference distribution of (n,t)-closeness is the
			// neighborhood, not the full table.
			local := make([]float64, len(neighborhood))
			for i, r := range neighborhood {
				local[i] = vals[r]
			}
			space, err := emd.NewSpace(local)
			if err != nil {
				return 0, err
			}
			// Class rows mapped to positions in the local space.
			pos := make(map[int]int, len(neighborhood))
			for i, r := range neighborhood {
				pos[r] = i
			}
			rows := make([]int, 0, len(class.Rows))
			for _, r := range class.Rows {
				if p, ok := pos[r]; ok {
					rows = append(rows, p)
				}
			}
			if d := space.EMDOf(rows); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// IsNTClose reports whether the partition satisfies (nMin, t)-closeness at
// level tLevel.
func IsNTClose(t *dataset.Table, classes []micro.Cluster, nMin int, tLevel float64) (bool, error) {
	level, err := NTClosenessOf(t, classes, nMin)
	if err != nil {
		return false, err
	}
	return level <= tLevel, nil
}

// qiNeighborhood returns the nMin rows nearest to the class centroid,
// guaranteeing that every class member is included (swapping out the
// farthest non-members if needed).
func qiNeighborhood(points [][]float64, all []int, class micro.Cluster, nMin int) []int {
	if nMin < len(class.Rows) {
		nMin = len(class.Rows)
	}
	centroid := micro.Centroid(points, class.Rows)
	type rd struct {
		row int
		d   float64
	}
	ds := make([]rd, len(all))
	for i, r := range all {
		ds[i] = rd{row: r, d: micro.Dist2(points[r], centroid)}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].row < ds[j].row
	})
	member := make(map[int]bool, len(class.Rows))
	for _, r := range class.Rows {
		member[r] = true
	}
	out := make([]int, 0, nMin)
	included := make(map[int]bool, nMin)
	for _, e := range ds[:nMin] {
		out = append(out, e.row)
		included[e.row] = true
	}
	// Ensure class members are present: replace the farthest non-members.
	missing := make([]int, 0)
	for _, r := range class.Rows {
		if !included[r] {
			missing = append(missing, r)
		}
	}
	for i := len(out) - 1; i >= 0 && len(missing) > 0; i-- {
		if !member[out[i]] {
			out[i] = missing[len(missing)-1]
			missing = missing[:len(missing)-1]
		}
	}
	return out
}
