package privacy

import (
	"testing"

	"repro/internal/micro"
	"repro/internal/synth"
	"repro/internal/tclose"
)

func TestNTClosenessDegeneratesToTCloseness(t *testing.T) {
	// With nMin >= table size the neighborhood is the whole table, so the
	// (n,t) level equals the plain t-closeness level.
	tbl := synth.Census(150, synth.FedTax, 9)
	clusters, err := micro.MDAV(tbl.QIMatrix(), 5)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := NTClosenessOf(tbl, clusters, tbl.Len())
	if err != nil {
		t.Fatal(err)
	}
	tc, err := TClosenessOf(tbl, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if diff := nt - tc; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("(n=all,t) level %v != t-closeness level %v", nt, tc)
	}
}

func TestNTClosenessRelaxesT(t *testing.T) {
	// A class compared to its local neighborhood is at most as far as from
	// the global distribution on QI-correlated data, so the (n,t) level is
	// no larger than the plain t level for small neighborhoods.
	tbl := synth.CensusHCD()
	clusters, err := micro.MDAV(tbl.QIMatrix(), 5)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := TClosenessOf(tbl, clusters)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := NTClosenessOf(tbl, clusters, 50)
	if err != nil {
		t.Fatal(err)
	}
	if nt > tc+1e-9 {
		t.Errorf("(50,t) level %v exceeds plain t level %v on correlated data", nt, tc)
	}
	ok, err := IsNTClose(tbl, clusters, 50, nt+1e-9)
	if err != nil || !ok {
		t.Errorf("IsNTClose at its own level = %v, %v", ok, err)
	}
	ok, _ = IsNTClose(tbl, clusters, 50, nt/2)
	if nt > 0 && ok {
		t.Error("IsNTClose below the level should be false")
	}
}

func TestNTClosenessValidation(t *testing.T) {
	tbl := synth.Uniform(20, 2, 3)
	clusters, err := micro.MDAV(tbl.QIMatrix(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NTClosenessOf(tbl, clusters, 0); err == nil {
		t.Error("n = 0 should fail")
	}
	empty, _ := tbl.Subset(nil)
	if _, err := NTClosenessOf(empty, nil, 5); err == nil {
		t.Error("empty table should fail")
	}
}

func TestNTClosenessOfTCloseOutput(t *testing.T) {
	// A partition that satisfies plain t-closeness satisfies
	// (n,t)-closeness at every neighborhood size at some level; the checker
	// must not exceed ~2x the global level on Algorithm 3 output (the
	// neighborhood distribution is itself close to global for spread
	// clusters).
	tbl := synth.CensusMCD()
	res, err := tclose.Algorithm3(tbl, 5, 0.13)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := NTClosenessOf(tbl, res.Clusters, 200)
	if err != nil {
		t.Fatal(err)
	}
	if nt > 2*0.13 {
		t.Errorf("(200,t) level %v implausibly large for a t=0.13 release", nt)
	}
}
