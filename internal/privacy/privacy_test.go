package privacy

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/synth"
)

// anonFixture builds a 6-record table already in anonymized form: two
// equivalence classes of 3 identical QI vectors each.
func anonFixture(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "age", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "zip", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "salary", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	rows := [][]float64{
		{30, 1000, 10}, {30, 1000, 20}, {30, 1000, 30},
		{50, 2000, 40}, {50, 2000, 50}, {50, 2000, 60},
	}
	for _, r := range rows {
		if err := tbl.AppendNumericRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestEquivalenceClasses(t *testing.T) {
	tbl := anonFixture(t)
	classes, err := EquivalenceClasses(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(classes))
	}
	if classes[0].Size() != 3 || classes[1].Size() != 3 {
		t.Errorf("class sizes = %d, %d", classes[0].Size(), classes[1].Size())
	}
	// Order of first appearance is preserved.
	if classes[0].Rows[0] != 0 || classes[1].Rows[0] != 3 {
		t.Errorf("class order wrong: %v", classes)
	}
}

func TestEquivalenceClassesErrors(t *testing.T) {
	empty := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "age", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "salary", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	if _, err := EquivalenceClasses(empty); err == nil {
		t.Error("empty table should fail")
	}
	noQI := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "salary", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	if err := noQI.AppendNumericRow(1); err != nil {
		t.Fatal(err)
	}
	if _, err := EquivalenceClasses(noQI); err == nil {
		t.Error("table without QIs should fail")
	}
}

func TestKAnonymity(t *testing.T) {
	tbl := anonFixture(t)
	k, err := KAnonymity(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("KAnonymity = %d, want 3", k)
	}
	ok, err := IsKAnonymous(tbl, 3)
	if err != nil || !ok {
		t.Errorf("IsKAnonymous(3) = %v, %v", ok, err)
	}
	ok, _ = IsKAnonymous(tbl, 4)
	if ok {
		t.Error("IsKAnonymous(4) should be false")
	}
}

func TestKAnonymityBrokenBySingleton(t *testing.T) {
	tbl := anonFixture(t)
	// Give record 5 a unique QI combination.
	tbl.SetValue(5, 0, 99)
	k, err := KAnonymity(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("KAnonymity = %d, want 1", k)
	}
}

func TestTCloseness(t *testing.T) {
	tbl := anonFixture(t)
	// Class 1 holds the lower half of salaries, class 2 the upper half:
	// both are far from the global distribution.
	tc, err := TCloseness(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Each class covers 3 consecutive ranks out of 6 distinct values:
	// EMD = (|3/6-0|+... ) hand value: p=(1/3,1/3,1/3,0,0,0), q=(1/6 x6).
	// cum: 1/6, 2/6, 3/6, 2/6, 1/6 -> sum 9/6, /(m-1)=5 -> 0.3.
	if math.Abs(tc-0.3) > 1e-12 {
		t.Errorf("TCloseness = %v, want 0.3", tc)
	}
	// IsTClose compares exactly; use thresholds clear of the float error of
	// the 0.3 result.
	ok, err := IsTClose(tbl, 0.31)
	if err != nil || !ok {
		t.Errorf("IsTClose(0.31) = %v, %v", ok, err)
	}
	ok, _ = IsTClose(tbl, 0.29)
	if ok {
		t.Error("IsTClose(0.29) should be false")
	}
}

func TestTClosenessOfExplicitPartition(t *testing.T) {
	tbl := anonFixture(t)
	// Interleaved partition: each class spreads over the salary range, so
	// the EMD is much smaller than the contiguous split.
	classes := []micro.Cluster{{Rows: []int{0, 2, 4}}, {Rows: []int{1, 3, 5}}}
	tc, err := TClosenessOf(tbl, classes)
	if err != nil {
		t.Fatal(err)
	}
	if tc >= 0.3 {
		t.Errorf("interleaved partition EMD = %v, want < 0.3", tc)
	}
}

func TestLDiversity(t *testing.T) {
	tbl := anonFixture(t)
	l, err := LDiversity(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if l != 3 {
		t.Errorf("LDiversity = %d, want 3", l)
	}
	// Collapse one class's salaries to a single value.
	tbl.SetValue(1, 2, 10)
	tbl.SetValue(2, 2, 10)
	l, _ = LDiversity(tbl)
	if l != 1 {
		t.Errorf("LDiversity after collapse = %d, want 1", l)
	}
}

func TestPSensitive(t *testing.T) {
	tbl := anonFixture(t)
	ok, err := PSensitive(tbl, 3, 3)
	if err != nil || !ok {
		t.Errorf("PSensitive(3,3) = %v, %v", ok, err)
	}
	ok, _ = PSensitive(tbl, 3, 4)
	if ok {
		t.Error("PSensitive(3,4) should fail: only 3 distinct values per class")
	}
	ok, _ = PSensitive(tbl, 4, 2)
	if ok {
		t.Error("PSensitive(4,2) should fail: classes have 3 records")
	}
}

func TestAssess(t *testing.T) {
	tbl := anonFixture(t)
	rep, err := Assess(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes != 2 || rep.KAnonymity != 3 || rep.LDiversity != 3 {
		t.Errorf("Report = %+v", rep)
	}
	if math.Abs(rep.TCloseness-0.3) > 1e-12 {
		t.Errorf("Report.TCloseness = %v", rep.TCloseness)
	}
}

func TestVerifiersAgreeWithPipeline(t *testing.T) {
	// The verifiers must confirm what micro.Aggregate + MDAV promise on a
	// real data set.
	tbl := synth.Census(200, synth.FedTax, 5)
	clusters, err := micro.MDAV(tbl.QIMatrix(), 4)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := micro.Aggregate(tbl, clusters)
	if err != nil {
		t.Fatal(err)
	}
	k, err := KAnonymity(anon)
	if err != nil {
		t.Fatal(err)
	}
	if k < 4 {
		t.Errorf("aggregated MDAV output has k-anonymity %d, want >= 4", k)
	}
	// The partition-level and table-level t-closeness must agree, unless
	// two clusters aggregated to identical centroids (not the case here).
	tcPart, err := TClosenessOf(tbl, clusters)
	if err != nil {
		t.Fatal(err)
	}
	tcTable, err := TCloseness(anon)
	if err != nil {
		t.Fatal(err)
	}
	if tcTable > tcPart+1e-12 {
		t.Errorf("table t-closeness %v worse than partition %v", tcTable, tcPart)
	}
}

func TestTClosenessRequiresConfidential(t *testing.T) {
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "age", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "x", Role: dataset.NonConfidential, Kind: dataset.Numeric},
	))
	if err := tbl.AppendNumericRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := TCloseness(tbl); err == nil {
		t.Error("missing confidential attribute should fail")
	}
	if _, err := LDiversity(tbl); err == nil {
		t.Error("missing confidential attribute should fail for l-diversity")
	}
}
