// Package privacy implements verifiers for the syntactic privacy models
// discussed in the paper: k-anonymity, t-closeness, l-diversity and
// p-sensitive k-anonymity. The verifiers operate on an anonymized table (or
// on an explicit cluster partition of the original table) and are used by
// the test suite to check, independently of the anonymization algorithms,
// that their outputs deliver the promised guarantees.
package privacy

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// ErrNoRecords is returned when a verifier is given an empty table.
var ErrNoRecords = errors.New("privacy: table has no records")

// EquivalenceClasses groups the records of t by their full quasi-identifier
// value combination and returns the groups as clusters. In an anonymized
// table these are the equivalence classes of Definition 1.
func EquivalenceClasses(t *dataset.Table) ([]micro.Cluster, error) {
	if t.Len() == 0 {
		return nil, ErrNoRecords
	}
	qis := t.Schema().QuasiIdentifiers()
	if len(qis) == 0 {
		return nil, errors.New("privacy: schema has no quasi-identifiers")
	}
	groups := make(map[string][]int)
	var order []string
	key := make([]byte, 0, 16*len(qis))
	for r := 0; r < t.Len(); r++ {
		key = key[:0]
		for _, c := range qis {
			key = appendFloatKey(key, t.Value(r, c))
		}
		k := string(key)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]micro.Cluster, len(order))
	for i, k := range order {
		out[i] = micro.Cluster{Rows: groups[k]}
	}
	return out, nil
}

func appendFloatKey(b []byte, v float64) []byte {
	return append(b, fmt.Sprintf("%x|", v)...)
}

// KAnonymity returns the k-anonymity level of the table: the size of its
// smallest equivalence class. A table satisfies k-anonymity for any k up to
// this value.
func KAnonymity(t *dataset.Table) (int, error) {
	classes, err := EquivalenceClasses(t)
	if err != nil {
		return 0, err
	}
	return micro.Sizes(classes).Min, nil
}

// IsKAnonymous reports whether the table satisfies k-anonymity.
func IsKAnonymous(t *dataset.Table, k int) (bool, error) {
	level, err := KAnonymity(t)
	if err != nil {
		return false, err
	}
	return level >= k, nil
}

// TCloseness returns the t-closeness level of the table: the maximum, over
// all equivalence classes and all confidential attributes, of the Earth
// Mover's Distance (ordered distance) between the class distribution and the
// whole-table distribution. The table satisfies t-closeness for any t at or
// above this value.
func TCloseness(t *dataset.Table) (float64, error) {
	classes, err := EquivalenceClasses(t)
	if err != nil {
		return 0, err
	}
	return TClosenessOf(t, classes)
}

// TClosenessOf returns the t-closeness level of an explicit partition of the
// table's records. It allows checking a partition before aggregation.
func TClosenessOf(t *dataset.Table, classes []micro.Cluster) (float64, error) {
	confs := t.Schema().Confidentials()
	if len(confs) == 0 {
		return 0, errors.New("privacy: schema has no confidential attributes")
	}
	worst := 0.0
	for _, col := range confs {
		// Ordered-distance EMD for numeric attributes, total-variation EMD
		// for nominal categorical ones, mirroring package tclose.
		var space *emd.Space
		var err error
		if t.Schema().Attr(col).Kind == dataset.Categorical {
			space, err = emd.NewNominalSpace(t.ColumnView(col))
		} else {
			space, err = emd.NewSpace(t.ColumnView(col))
		}
		if err != nil {
			return 0, err
		}
		for _, c := range classes {
			if d := space.EMDOf(c.Rows); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// IsTClose reports whether the table satisfies t-closeness at level tLevel.
func IsTClose(t *dataset.Table, tLevel float64) (bool, error) {
	level, err := TCloseness(t)
	if err != nil {
		return false, err
	}
	return level <= tLevel, nil
}

// LDiversity returns the distinct l-diversity level of the table: the
// minimum, over equivalence classes and confidential attributes, of the
// number of distinct confidential values in the class.
func LDiversity(t *dataset.Table) (int, error) {
	classes, err := EquivalenceClasses(t)
	if err != nil {
		return 0, err
	}
	return LDiversityOf(t, classes)
}

// LDiversityOf returns the distinct l-diversity level of an explicit
// partition.
func LDiversityOf(t *dataset.Table, classes []micro.Cluster) (int, error) {
	confs := t.Schema().Confidentials()
	if len(confs) == 0 {
		return 0, errors.New("privacy: schema has no confidential attributes")
	}
	best := -1
	for _, col := range confs {
		vals := t.ColumnView(col)
		for _, c := range classes {
			distinct := make(map[float64]struct{}, len(c.Rows))
			for _, r := range c.Rows {
				distinct[vals[r]] = struct{}{}
			}
			if best < 0 || len(distinct) < best {
				best = len(distinct)
			}
		}
	}
	if best < 0 {
		return 0, ErrNoRecords
	}
	return best, nil
}

// PSensitive reports whether the table satisfies p-sensitive k-anonymity:
// it is k-anonymous and every equivalence class contains at least p distinct
// values of every confidential attribute.
func PSensitive(t *dataset.Table, k, p int) (bool, error) {
	ok, err := IsKAnonymous(t, k)
	if err != nil || !ok {
		return false, err
	}
	classes, err := EquivalenceClasses(t)
	if err != nil {
		return false, err
	}
	confs := t.Schema().Confidentials()
	for _, col := range confs {
		vals := t.ColumnView(col)
		for _, c := range classes {
			distinct := make(map[float64]struct{}, len(c.Rows))
			for _, r := range c.Rows {
				distinct[vals[r]] = struct{}{}
			}
			if len(distinct) < p {
				return false, nil
			}
		}
	}
	return true, nil
}

// Report is a one-stop summary of the privacy level of an anonymized table.
type Report struct {
	// Classes is the number of equivalence classes.
	Classes int
	// KAnonymity is the size of the smallest equivalence class.
	KAnonymity int
	// TCloseness is the worst-class EMD to the global distribution.
	TCloseness float64
	// LDiversity is the smallest number of distinct confidential values in
	// any class.
	LDiversity int
}

// Assess computes a Report for the table.
func Assess(t *dataset.Table) (*Report, error) {
	classes, err := EquivalenceClasses(t)
	if err != nil {
		return nil, err
	}
	tc, err := TClosenessOf(t, classes)
	if err != nil {
		return nil, err
	}
	ld, err := LDiversityOf(t, classes)
	if err != nil {
		return nil, err
	}
	return &Report{
		Classes:    len(classes),
		KAnonymity: micro.Sizes(classes).Min,
		TCloseness: tc,
		LDiversity: ld,
	}, nil
}
