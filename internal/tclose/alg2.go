package tclose

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// Algorithm2 implements the paper's Algorithm 2 (k-anonymity-first
// t-closeness aware microaggregation) the way Section 8 evaluates it: the
// k-anonymity-first partition is used as the microaggregation function
// inside Algorithm 1, so the merge step finishes off any clusters (typically
// the last ones, formed when few unclustered records remain) that the swap
// refinement could not bring within t. The result therefore always satisfies
// t-closeness.
//
// Cost: O(n^3/k) in the worst case (each cluster may scan all remaining
// records, evaluating one EMD per in-cluster eviction candidate), O(n^2/k)
// when no swaps are needed.
func Algorithm2(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	p, err := newProblem(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	clusters, swaps := p.kAnonymityFirstPartition()
	merged, merges := p.mergeUntilTClose(clusters)
	return &Result{
		Clusters:   merged,
		MaxEMD:     p.maxEMD(merged),
		Merges:     merges,
		Swaps:      swaps,
		EffectiveK: p.k,
	}, nil
}

// Algorithm2Standalone runs only the k-anonymity-first partition, without
// the finishing merge step. As the paper notes, it alone cannot guarantee
// t-closeness (records may be exhausted before the last clusters reach t),
// so Result.MaxEMD may exceed t; it is exposed for the ablation benchmarks
// comparing the guarantee's cost.
func Algorithm2Standalone(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	p, err := newProblem(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	clusters, swaps := p.kAnonymityFirstPartition()
	return &Result{
		Clusters:   clusters,
		MaxEMD:     p.maxEMD(clusters),
		Swaps:      swaps,
		EffectiveK: p.k,
	}, nil
}

// kAnonymityFirstPartition builds clusters MDAV-style (around the record
// farthest from the centroid of the unclustered records, then around the
// record farthest from that one), refining each cluster with generateCluster
// before moving on.
func (p *problem) kAnonymityFirstPartition() ([]micro.Cluster, int) {
	n := p.table.Len()
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	var clusters []micro.Cluster
	swaps := 0
	for len(avail) > 0 {
		xa := micro.Centroid(p.points, avail)
		x0 := micro.Farthest(p.points, avail, xa)
		c, s := p.generateCluster(x0, avail)
		swaps += s
		avail = removeSorted(avail, c)
		clusters = append(clusters, micro.Cluster{Rows: c})
		if len(avail) == 0 {
			break
		}
		x1 := micro.Farthest(p.points, avail, p.points[x0])
		c, s = p.generateCluster(x1, avail)
		swaps += s
		avail = removeSorted(avail, c)
		clusters = append(clusters, micro.Cluster{Rows: c})
	}
	return clusters, swaps
}

// generateCluster implements the paper's GenerateCluster: starting from the
// k records QI-closest to the source record x (x included), while the
// cluster's EMD to the data set exceeds t and unconsidered records remain,
// take the next QI-closest record y and swap it with the in-cluster record
// y' whose eviction minimizes the EMD of C ∪ {y} \ {y'}; the swap is kept
// only if it strictly improves the EMD. Records considered but not swapped
// in (and records swapped out) remain available to later clusters — only the
// returned cluster is removed from the caller's pool.
//
// If fewer than 2k records remain, they all form the final cluster.
func (p *problem) generateCluster(x int, avail []int) (cluster []int, swaps int) {
	if len(avail) < 2*p.k {
		return append([]int(nil), avail...), 0
	}
	// All available records sorted by QI distance to x: the first k seed the
	// cluster; the rest are swap candidates in order.
	cands := make([]int, len(avail))
	copy(cands, avail)
	px := p.points[x]
	sort.Slice(cands, func(i, j int) bool {
		di, dj := micro.Dist2(p.points[cands[i]], px), micro.Dist2(p.points[cands[j]], px)
		if di != dj {
			return di < dj
		}
		return cands[i] < cands[j]
	})
	cluster = append([]int(nil), cands[:p.k]...)
	hs := p.newHistSet(cluster)
	cur := hs.emd()
	for _, y := range cands[p.k:] {
		if cur <= p.t {
			break
		}
		bestIdx, bestEMD := -1, cur
		for i, out := range cluster {
			if d := hs.emdSwap(out, y); d < bestEMD {
				bestIdx, bestEMD = i, d
			}
		}
		if bestIdx >= 0 {
			hs.remove(cluster[bestIdx])
			hs.add(y)
			cluster[bestIdx] = y
			cur = bestEMD
			swaps++
		}
	}
	return cluster, swaps
}

// removeSorted returns avail minus drop, preserving order.
func removeSorted(avail, drop []int) []int {
	dropSet := make(map[int]struct{}, len(drop))
	for _, r := range drop {
		dropSet[r] = struct{}{}
	}
	out := avail[:0]
	for _, r := range avail {
		if _, gone := dropSet[r]; !gone {
			out = append(out, r)
		}
	}
	return out
}
