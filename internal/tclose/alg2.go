package tclose

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
	"repro/internal/par"
)

// Algorithm2 implements the paper's Algorithm 2 (k-anonymity-first
// t-closeness aware microaggregation) the way Section 8 evaluates it: the
// k-anonymity-first partition is used as the microaggregation function
// inside Algorithm 1, so the merge step finishes off any clusters (typically
// the last ones, formed when few unclustered records remain) that the swap
// refinement could not bring within t. The result therefore always satisfies
// t-closeness.
//
// The swap refinement runs on the incremental EMD geometry of package emd
// (see the package Performance section): candidates come off a lazily
// consumed heap, eviction candidates are deduplicated by confidential-bin
// signature, candidates whose signature already failed against the current
// cluster state are skipped in O(1), and each surviving evaluation costs
// O(occΔ·log m) instead of the naive full-histogram walk.
func Algorithm2(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	prep, err := prepareOneShot(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	return prep.Algorithm2(Run{}, k, tLevel)
}

// Algorithm2 runs the paper's Algorithm 2 against the prepared substrate;
// see the package-level Algorithm2. The k-anonymity-first partition depends
// on both k and t (the swap refinement targets t), so it is never cached.
func (prep *Prepared) Algorithm2(run Run, k int, tLevel float64) (*Result, error) {
	p, err := prep.newRun(run, k, tLevel)
	if err != nil {
		return nil, err
	}
	clusters, swaps, err := p.kAnonymityFirstPartition()
	if err != nil {
		return nil, err
	}
	merged, merges, err := p.mergeUntilTClose(clusters)
	if err != nil {
		return nil, err
	}
	return &Result{
		Clusters:   merged,
		MaxEMD:     p.maxEMD(merged),
		Merges:     merges,
		Swaps:      swaps,
		EffectiveK: p.k,
	}, nil
}

// Algorithm2Standalone runs only the k-anonymity-first partition, without
// the finishing merge step. As the paper notes, it alone cannot guarantee
// t-closeness (records may be exhausted before the last clusters reach t),
// so Result.MaxEMD may exceed t; it is exposed for the ablation benchmarks
// comparing the guarantee's cost.
func Algorithm2Standalone(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	prep, err := prepareOneShot(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	p, err := prep.newRun(Run{}, k, tLevel)
	if err != nil {
		return nil, err
	}
	clusters, swaps, err := p.kAnonymityFirstPartition()
	if err != nil {
		return nil, err
	}
	return &Result{
		Clusters:   clusters,
		MaxEMD:     p.maxEMD(clusters),
		Swaps:      swaps,
		EffectiveK: p.k,
	}, nil
}

// kAnonymityFirstPartition builds clusters MDAV-style (around the record
// farthest from the centroid of the unclustered records, then around the
// record farthest from that one), refining each cluster with generateCluster
// before moving on. The centroid of the unclustered records is maintained
// incrementally (O(kd) per extracted cluster instead of an O(nd) rescan),
// and both the farthest-seed queries and the candidate ordering run on a
// micro.Searcher — a deletable k-d tree over the normalized QI cube for
// large inputs, the linear scans below the crossover.
// Cancellation is checked once per seed-pair round, so an abandoned run
// stops within two cluster extractions.
func (p *problem) kAnonymityFirstPartition() ([]micro.Cluster, int, error) {
	n := p.table.Len()
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	rc := micro.NewRunningCentroid(p.mat)
	search := p.mat.NewSearcher(avail)
	// The paper's headline configuration (k = 2, one ordered confidential
	// attribute) runs on the interval-jump engine instead of the candidate
	// stream whenever the stream would be linear-mode anyway (see
	// swapjump.go): same partitions, no per-cluster distance sort.
	var jump *swapJump
	if p.k == 2 && len(p.spaces) == 1 && !p.spaces[0].Nominal() && !search.StreamIndexed() {
		jump = p.newSwapJump()
	}
	var clusters []micro.Cluster
	swaps := 0
	extract := func(x int) []int {
		c, s := p.generateCluster(x, avail, search, jump)
		swaps += s
		avail = micro.FilterRows(avail, c, p.rowScratch)
		if jump != nil {
			jump.filter(c, p.rowScratch)
		}
		rc.RemoveRows(c)
		search.Remove(c)
		clusters = append(clusters, micro.Cluster{Rows: c})
		return c
	}
	for len(avail) > 0 {
		if err := p.interrupted(); err != nil {
			return nil, 0, err
		}
		x0 := search.Farthest(avail, rc.CentroidOf(avail))
		extract(x0)
		if len(avail) == 0 {
			break
		}
		x1 := search.Farthest(avail, p.mat.Row(x0))
		extract(x1)
		p.reportProgress("partition", n-len(avail), n)
	}
	return clusters, swaps, nil
}

// generateCluster implements the paper's GenerateCluster: starting from the
// k records QI-closest to the source record x (x included), while the
// cluster's EMD to the data set exceeds t and unconsidered records remain,
// take the next QI-closest record y and swap it with the in-cluster record
// y' whose eviction minimizes the EMD of C ∪ {y} \ {y'}; the swap is kept
// only if it strictly improves the EMD. Records considered but not swapped
// in (and records swapped out) remain available to later clusters — only the
// returned cluster is removed from the caller's pool.
//
// Two memoizations prune the refinement without changing its outcome, since
// every EMD depends only on the multiset of confidential bins:
//
//   - eviction candidates sharing a bin signature yield identical post-swap
//     EMDs, so only the first of each signature is evaluated (the naive loop
//     picked the lowest-index minimum, which is exactly the first
//     occurrence);
//   - a candidate whose signature was already tried against the *current*
//     cluster state without improvement would fail again, so it is skipped;
//     the memo is cleared whenever a swap changes the cluster.
//
// If fewer than 2k records remain, they all form the final cluster.
//
// Candidates come off the Searcher's nearest-first stream in exact
// (distance, row) order: lazily from the k-d tree (or the linear heap) while
// consumption is light, switching to one radix-sorted remainder array when a
// cluster turns out to consume most of the candidate set — the regime of
// tight t levels, where nearly every cluster exhausts all candidates without
// reaching t and the finishing merge step does the rest.
func (p *problem) generateCluster(x int, avail []int, search *micro.Searcher, jump *swapJump) (cluster []int, swaps int) {
	if len(avail) < 2*p.k {
		return append([]int(nil), avail...), 0
	}
	if jump != nil {
		return p.generateClusterJump(jump, p.mat.Row(x))
	}
	stream := search.Stream(avail, p.mat.Row(x))
	cluster = make([]int, 0, p.k)
	for len(cluster) < p.k {
		y, _ := stream.Next()
		cluster = append(cluster, y)
	}
	hs := p.newHistSet(cluster)
	cur := hs.emd()
	sigOK := p.sigs != nil
	if sigOK {
		p.rejected.reset()
	}
	if p.k == 2 && len(hs) == 1 && !p.spaces[0].Nominal() {
		// k = 2 over a single ordered confidential attribute — the paper's
		// headline configuration. Every candidate swap leaves a two-record
		// histogram whose deviation numerator has a closed form
		// (emd.Space.TwoRecordAbsDev), so each evaluation is a handful of
		// integer operations with no pointer chasing. The signature memos
		// are dropped here: they only ever skip evaluations whose outcome
		// is forced (same bin, same cluster state, same non-improvement),
		// and with O(1) evaluations the bookkeeping costs more than the
		// evaluations it saves. Decisions are bit-identical to the general
		// path (integer comparisons, see emd.Hist.AbsDev).
		h := hs[0]
		sp := p.spaces[0]
		u0, u1 := sp.Bin(cluster[0]), sp.Bin(cluster[1])
		curNum := h.AbsDev()
		for cur > p.t {
			y, ok := stream.Next()
			if !ok {
				break
			}
			yb := sp.Bin(y)
			bestIdx, bestNum := -1, curNum
			if yb != u0 {
				if d := sp.TwoRecordAbsDev(u1, yb); d < bestNum {
					bestIdx, bestNum = 0, d
				}
			}
			if u1 != u0 && yb != u1 {
				if d := sp.TwoRecordAbsDev(u0, yb); d < bestNum {
					bestIdx, bestNum = 1, d
				}
			}
			if bestIdx >= 0 {
				h.Swap(cluster[bestIdx], y)
				cluster[bestIdx] = y
				if bestIdx == 0 {
					u0 = yb
				} else {
					u1 = yb
				}
				curNum = bestNum
				cur = h.EMD()
				swaps++
			}
		}
		return cluster, swaps
	}
	if len(hs) == 1 {
		// Single confidential attribute (the common case): every EMD in
		// the refinement shares one denominator, so the accept/reject
		// comparisons run on the exact integer deviation numerators —
		// bit-identical decisions (emd.Hist.AbsDev) without a float
		// division per evaluation.
		h := hs[0]
		for cur > p.t {
			y, ok := stream.Next()
			if !ok {
				break
			}
			if sigOK && p.rejected.testAndSet(p.sigs[y]) {
				continue
			}
			bestIdx := p.scoreEvictionsInt(h, cluster, y, sigOK)
			if bestIdx >= 0 {
				h.Swap(cluster[bestIdx], y)
				cluster[bestIdx] = y
				cur = h.EMD()
				swaps++
				if sigOK {
					p.rejected.reset()
				}
			}
		}
		return cluster, swaps
	}
	for cur > p.t {
		y, ok := stream.Next()
		if !ok {
			break
		}
		if sigOK && p.rejected.testAndSet(p.sigs[y]) {
			continue
		}
		bestIdx, bestEMD := p.scoreEvictionsFloat(hs, cluster, y, cur, sigOK)
		if bestIdx >= 0 {
			hs.swap(cluster[bestIdx], y)
			cluster[bestIdx] = y
			cur = bestEMD
			swaps++
			if sigOK {
				p.rejected.reset()
			}
		}
	}
	return cluster, swaps
}

// scoreEvictionsInt returns the in-cluster eviction index whose swap with
// candidate y minimizes the post-swap integer deviation numerator, or -1
// when no swap strictly improves on the cluster's current numerator. Ties
// break toward the lowest index and duplicate-signature members after the
// first are skipped — exactly the serial left-to-right scan — and for
// clusters at or above evictScanParMin the evaluations fan out across the
// worker budget: the histogram's swap geometry is warmed once on the owning
// goroutine (emd.Hist.WarmSwapCache), after which every evaluation is a
// pure read, and the chunk-ordered argmin reduction reproduces the serial
// winner bit-for-bit.
func (p *problem) scoreEvictionsInt(h *emd.Hist, cluster []int, y int, sigOK bool) int {
	if p.workers >= 2 && len(cluster) >= evictScanParMin {
		var skip func(int) bool
		if sigOK {
			mask := p.evictSkipMask(cluster)
			skip = func(i int) bool { return mask[i] }
		}
		h.WarmSwapCache()
		idx := par.ArgminInt64(len(cluster), p.workers, skip, func(i int) int64 {
			return h.EMDSwapAbsDev(cluster[i], y)
		})
		if idx >= 0 && h.EMDSwapAbsDev(cluster[idx], y) < h.AbsDev() {
			return idx
		}
		return -1
	}
	bestIdx, bestNum := -1, h.AbsDev()
	if sigOK {
		p.evaluated.reset()
	}
	for i, out := range cluster {
		if sigOK && p.evaluated.testAndSet(p.sigs[out]) {
			continue
		}
		if d := h.EMDSwapAbsDev(out, y); d < bestNum {
			bestIdx, bestNum = i, d
		}
	}
	return bestIdx
}

// scoreEvictionsFloat is scoreEvictionsInt for the multi-attribute path,
// where the post-swap cost is the maximum EMD across the histogram set and
// comparisons run on floats. It additionally returns the winning cost (the
// serial loop reuses it as the new current EMD).
func (p *problem) scoreEvictionsFloat(hs histSet, cluster []int, y int, cur float64, sigOK bool) (int, float64) {
	if p.workers >= 2 && len(cluster) >= evictScanParMin {
		var mask []bool
		if sigOK {
			mask = p.evictSkipMask(cluster)
		}
		for _, h := range hs {
			h.WarmSwapCache()
		}
		idx := par.ArgminFloat64(len(cluster), p.workers, func(i int) float64 {
			if mask != nil && mask[i] {
				return math.Inf(1)
			}
			return hs.emdSwap(cluster[i], y)
		})
		if idx >= 0 && (mask == nil || !mask[idx]) {
			if d := hs.emdSwap(cluster[idx], y); d < cur {
				return idx, d
			}
		}
		return -1, cur
	}
	bestIdx, bestEMD := -1, cur
	if sigOK {
		p.evaluated.reset()
	}
	for i, out := range cluster {
		if sigOK && p.evaluated.testAndSet(p.sigs[out]) {
			continue
		}
		if d := hs.emdSwap(out, y); d < bestEMD {
			bestIdx, bestEMD = i, d
		}
	}
	return bestIdx, bestEMD
}

// evictSkipMask marks duplicate-signature eviction candidates (every
// occurrence of a signature after its first), the same pruning the serial
// scan applies via the evaluated set, built serially so the parallel
// evaluations never touch shared memo state. The returned slice is scratch
// reused by the next call.
func (p *problem) evictSkipMask(cluster []int) []bool {
	if cap(p.evictSkip) < len(cluster) {
		p.evictSkip = make([]bool, len(cluster))
	}
	p.evictSkip = p.evictSkip[:len(cluster)]
	p.evaluated.reset()
	for i, out := range cluster {
		p.evictSkip[i] = p.evaluated.testAndSet(p.sigs[out])
	}
	return p.evictSkip
}
