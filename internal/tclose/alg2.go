package tclose

import (
	"repro/internal/dataset"
	"repro/internal/micro"
)

// Algorithm2 implements the paper's Algorithm 2 (k-anonymity-first
// t-closeness aware microaggregation) the way Section 8 evaluates it: the
// k-anonymity-first partition is used as the microaggregation function
// inside Algorithm 1, so the merge step finishes off any clusters (typically
// the last ones, formed when few unclustered records remain) that the swap
// refinement could not bring within t. The result therefore always satisfies
// t-closeness.
//
// The swap refinement runs on the incremental EMD geometry of package emd
// (see the package Performance section): candidates come off a lazily
// consumed heap, eviction candidates are deduplicated by confidential-bin
// signature, candidates whose signature already failed against the current
// cluster state are skipped in O(1), and each surviving evaluation costs
// O(occΔ·log m) instead of the naive full-histogram walk.
func Algorithm2(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	p, err := newProblem(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	clusters, swaps := p.kAnonymityFirstPartition()
	merged, merges := p.mergeUntilTClose(clusters)
	return &Result{
		Clusters:   merged,
		MaxEMD:     p.maxEMD(merged),
		Merges:     merges,
		Swaps:      swaps,
		EffectiveK: p.k,
	}, nil
}

// Algorithm2Standalone runs only the k-anonymity-first partition, without
// the finishing merge step. As the paper notes, it alone cannot guarantee
// t-closeness (records may be exhausted before the last clusters reach t),
// so Result.MaxEMD may exceed t; it is exposed for the ablation benchmarks
// comparing the guarantee's cost.
func Algorithm2Standalone(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	p, err := newProblem(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	clusters, swaps := p.kAnonymityFirstPartition()
	return &Result{
		Clusters:   clusters,
		MaxEMD:     p.maxEMD(clusters),
		Swaps:      swaps,
		EffectiveK: p.k,
	}, nil
}

// kAnonymityFirstPartition builds clusters MDAV-style (around the record
// farthest from the centroid of the unclustered records, then around the
// record farthest from that one), refining each cluster with generateCluster
// before moving on. The centroid of the unclustered records is maintained
// incrementally (O(kd) per extracted cluster instead of an O(nd) rescan).
func (p *problem) kAnonymityFirstPartition() ([]micro.Cluster, int) {
	n := p.table.Len()
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	rc := micro.NewRunningCentroid(p.mat)
	var clusters []micro.Cluster
	swaps := 0
	for len(avail) > 0 {
		x0 := p.mat.Farthest(avail, rc.CentroidOf(avail))
		c, s := p.generateCluster(x0, avail)
		swaps += s
		avail = micro.FilterRows(avail, c, p.rowScratch)
		rc.RemoveRows(c)
		clusters = append(clusters, micro.Cluster{Rows: c})
		if len(avail) == 0 {
			break
		}
		x1 := p.mat.Farthest(avail, p.mat.Row(x0))
		c, s = p.generateCluster(x1, avail)
		swaps += s
		avail = micro.FilterRows(avail, c, p.rowScratch)
		rc.RemoveRows(c)
		clusters = append(clusters, micro.Cluster{Rows: c})
	}
	return clusters, swaps
}

// candHeap is a binary min-heap of swap candidates in ascending (QI
// distance, row) order — the exact order the naive implementation obtained
// by fully sorting all candidates up front. Lazy consumption means a
// cluster that reaches t after few candidates pays O(n + taken·log n)
// instead of the unconditional O(n log n) sort.
type candHeap struct {
	d   []float64
	row []int
}

func (h *candHeap) len() int { return len(h.row) }

func (h *candHeap) less(i, j int) bool {
	if h.d[i] != h.d[j] {
		return h.d[i] < h.d[j]
	}
	return h.row[i] < h.row[j]
}

func (h *candHeap) init() {
	for i := len(h.row)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *candHeap) siftDown(i int) {
	n := len(h.row)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		next := l
		if r := l + 1; r < n && h.less(r, l) {
			next = r
		}
		if !h.less(next, i) {
			return
		}
		h.d[i], h.d[next] = h.d[next], h.d[i]
		h.row[i], h.row[next] = h.row[next], h.row[i]
		i = next
	}
}

// pop removes and returns the nearest remaining candidate row.
func (h *candHeap) pop() int {
	top := h.row[0]
	last := len(h.row) - 1
	h.d[0], h.row[0] = h.d[last], h.row[last]
	h.d, h.row = h.d[:last], h.row[:last]
	h.siftDown(0)
	return top
}

// generateCluster implements the paper's GenerateCluster: starting from the
// k records QI-closest to the source record x (x included), while the
// cluster's EMD to the data set exceeds t and unconsidered records remain,
// take the next QI-closest record y and swap it with the in-cluster record
// y' whose eviction minimizes the EMD of C ∪ {y} \ {y'}; the swap is kept
// only if it strictly improves the EMD. Records considered but not swapped
// in (and records swapped out) remain available to later clusters — only the
// returned cluster is removed from the caller's pool.
//
// Two memoizations prune the refinement without changing its outcome, since
// every EMD depends only on the multiset of confidential bins:
//
//   - eviction candidates sharing a bin signature yield identical post-swap
//     EMDs, so only the first of each signature is evaluated (the naive loop
//     picked the lowest-index minimum, which is exactly the first
//     occurrence);
//   - a candidate whose signature was already tried against the *current*
//     cluster state without improvement would fail again, so it is skipped;
//     the memo is cleared whenever a swap changes the cluster.
//
// If fewer than 2k records remain, they all form the final cluster.
func (p *problem) generateCluster(x int, avail []int) (cluster []int, swaps int) {
	if len(avail) < 2*p.k {
		return append([]int(nil), avail...), 0
	}
	heap := &candHeap{d: make([]float64, len(avail)), row: make([]int, len(avail))}
	px := p.mat.Row(x)
	for i, r := range avail {
		heap.d[i] = p.mat.RowDist2(r, px)
		heap.row[i] = r
	}
	heap.init()
	cluster = make([]int, 0, p.k)
	for len(cluster) < p.k {
		cluster = append(cluster, heap.pop())
	}
	hs := p.newHistSet(cluster)
	cur := hs.emd()
	sigOK := p.sigs != nil
	if sigOK {
		p.rejected.reset()
	}
	for cur > p.t && heap.len() > 0 {
		y := heap.pop()
		if sigOK && p.rejected.testAndSet(p.sigs[y]) {
			continue
		}
		bestIdx, bestEMD := -1, cur
		if sigOK {
			p.evaluated.reset()
		}
		for i, out := range cluster {
			if sigOK && p.evaluated.testAndSet(p.sigs[out]) {
				continue
			}
			if d := hs.emdSwap(out, y); d < bestEMD {
				bestIdx, bestEMD = i, d
			}
		}
		if bestIdx >= 0 {
			hs.swap(cluster[bestIdx], y)
			cluster[bestIdx] = y
			cur = bestEMD
			swaps++
			if sigOK {
				p.rejected.reset()
			}
		}
	}
	return cluster, swaps
}
