package tclose

import (
	"reflect"
	"testing"

	"repro/internal/micro"
	"repro/internal/synth"
)

// This file pins the spatial-index paths of the t-closeness algorithms to
// their linear-scan counterparts: with micro.IndexCrossover forced low,
// every Farthest/Nearest/candidate-stream query runs on the k-d tree, and
// the partitions must be identical — not merely close — to the ones the
// linear scans produce (which TestKAnonymityFirstPartitionMatchesReference
// in turn pins to the naive reference implementation).

func withCrossover(t *testing.T, c int, f func()) {
	t.Helper()
	old := micro.IndexCrossover
	micro.IndexCrossover = c
	defer func() { micro.IndexCrossover = old }()
	f()
}

func TestAlgorithm2IndexMatchesScan(t *testing.T) {
	if testing.Short() {
		t.Skip("index vs scan sweep: slow property test")
	}
	tbl := synth.PatientDischarge(700, 5)
	for _, k := range []int{1, 2, 4} {
		for _, tl := range []float64{0.04, 0.15, 0.3} {
			var scan, indexed *Result
			var err error
			withCrossover(t, 1<<30, func() {
				scan, err = Algorithm2(tbl, k, tl)
			})
			if err != nil {
				t.Fatal(err)
			}
			withCrossover(t, 1, func() {
				indexed, err = Algorithm2(tbl, k, tl)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scan, indexed) {
				t.Fatalf("k=%d t=%v: Algorithm2 index vs scan results diverge", k, tl)
			}
		}
	}
}

func TestAlgorithm3IndexMatchesScan(t *testing.T) {
	tbl := synth.PatientDischarge(600, 9)
	for _, k := range []int{2, 5} {
		for _, tl := range []float64{0.03, 0.1, 0.3} {
			var scan, indexed *Result
			var err error
			withCrossover(t, 1<<30, func() {
				scan, err = Algorithm3(tbl, k, tl)
			})
			if err != nil {
				t.Fatal(err)
			}
			withCrossover(t, 1, func() {
				indexed, err = Algorithm3(tbl, k, tl)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scan, indexed) {
				t.Fatalf("k=%d t=%v: Algorithm3 index vs scan results diverge", k, tl)
			}
		}
	}
}

// referenceMergeUntilTClose is the pre-heap merge loop: a linear scan for
// the worst cluster per merge. The heap-based loop must merge the same
// clusters in the same order.
func referenceMergeUntilTClose(p *problem, clusters []micro.Cluster) ([]micro.Cluster, int) {
	st := &mergeState{
		rows:     make([][]int, len(clusters)),
		hists:    make([]histSet, len(clusters)),
		emds:     make([]float64, len(clusters)),
		centroid: make([][]float64, len(clusters)),
		alive:    make([]bool, len(clusters)),
		nAlive:   len(clusters),
	}
	for i, c := range clusters {
		st.rows[i] = append([]int(nil), c.Rows...)
		st.hists[i] = p.newHistSet(c.Rows)
		st.emds[i] = st.hists[i].emd()
		st.centroid[i] = micro.Centroid(p.points, c.Rows)
		st.alive[i] = true
	}
	merges := 0
	for st.nAlive > 1 {
		worst, worstEMD := -1, 0.0
		for i := range st.rows {
			if st.alive[i] && st.emds[i] > worstEMD {
				worst, worstEMD = i, st.emds[i]
			}
		}
		if worst < 0 || worstEMD <= p.t {
			break
		}
		closest, closestD := -1, 0.0
		for j := range st.rows {
			if !st.alive[j] || j == worst {
				continue
			}
			d := micro.Dist2(st.centroid[worst], st.centroid[j])
			if closest < 0 || d < closestD {
				closest, closestD = j, d
			}
		}
		if closest < 0 {
			break
		}
		st.merge(p, worst, closest)
		merges++
	}
	out := make([]micro.Cluster, 0, st.nAlive)
	for i := range st.rows {
		if st.alive[i] {
			out = append(out, micro.Cluster{Rows: st.rows[i]})
		}
	}
	return out, merges
}

// TestMergeHeapMatchesLinearScan pins the worst-cluster max-heap of the
// Algorithm 1 merge loop to the linear scan it replaced, including the
// lowest-index tie-breaking among equal EMDs (MDAV partitions of discrete
// data produce many clusters with identical confidential histograms, so
// ties are common, not hypothetical).
func TestMergeHeapMatchesLinearScan(t *testing.T) {
	tables := []struct {
		name string
		k    int
		tl   float64
	}{
		{"tight", 2, 0.03},
		{"mid", 3, 0.1},
		{"loose", 5, 0.3},
	}
	tbl := synth.PatientDischarge(500, 77)
	for _, tc := range tables {
		p, err := newProblem(tbl, tc.k, tc.tl)
		if err != nil {
			t.Fatal(err)
		}
		clusters, err := micro.MDAV(p.points, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		gotClusters, gotMerges, err := p.mergeUntilTClose(clusters)
		if err != nil {
			t.Fatal(err)
		}
		wantClusters, wantMerges := referenceMergeUntilTClose(p, clusters)
		if gotMerges != wantMerges {
			t.Errorf("%s: merges=%d want %d", tc.name, gotMerges, wantMerges)
		}
		if !reflect.DeepEqual(gotClusters, wantClusters) {
			t.Fatalf("%s: merged partitions diverge", tc.name)
		}
	}
}
