package tclose

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// Builder assembles the Prepared substrate incrementally from columnar
// batches — the out-of-core counterpart of Prepare. Feed it the chunks
// of a stored dataset (dictionary deltas, value batches, tombstones) in
// commit order and Finish returns a Prepared bit-identical to
// Prepare(table-with-everything-applied): same table, same EMD spaces
// (chained emd.Space.Extend is pinned bit-identical to a cold build),
// same normalization frame (running min-max bounds reproduce the
// whole-column scan exactly, including the NaN semantics), same
// normalized matrix (rows are renormalized in place whenever a batch
// widens a quasi-identifier's range, so the final frame covers every
// row). Peak memory is the growing substrate plus one batch — never a
// second copy of the raw table.
//
// Deletions invalidate the incremental state: a tombstone batch filters
// the table and Finish falls back to a cold Prepare, mirroring how the
// engine itself rebuilds on Delete. A Builder is single-use and not safe
// for concurrent use.
type Builder struct {
	table    *dataset.Table
	qiCols   []int
	confCols []int

	spaces []*emd.Space
	los    []float64 // running raw bounds per quasi-identifier
	his    []float64
	norm   dataset.NormParams
	flat   []float64 // normalized QI rows of every incorporated record
	rows   int       // records incorporated into spaces/flat

	hint  int
	dirty bool // a deletion invalidated the incremental substrate
}

// NewBuilder validates the schema and returns an empty Builder. rowsHint,
// when positive, preallocates the table columns and the normalized
// matrix backing for that many records.
func NewBuilder(schema *dataset.Schema, rowsHint int) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	tbl, err := dataset.NewTable(schema)
	if err != nil {
		return nil, err
	}
	b := &Builder{
		table:    tbl,
		qiCols:   schema.QuasiIdentifiers(),
		confCols: schema.Confidentials(),
		hint:     rowsHint,
	}
	b.los = make([]float64, len(b.qiCols))
	b.his = make([]float64, len(b.qiCols))
	if rowsHint > 0 {
		tbl.Grow(rowsHint)
		b.flat = make([]float64, 0, rowsHint*len(b.qiCols))
	}
	return b, nil
}

// Table returns the table under construction. Callers must not mutate it
// directly; it is exposed for inspection (length, dictionaries).
func (b *Builder) Table() *dataset.Table { return b.table }

// ExtendDict applies a dictionary delta, exactly as a replayed chunk
// would before its values.
func (b *Builder) ExtendDict(col int, labels []string) error {
	return b.table.ExtendDict(col, labels)
}

// Append incorporates one batch of full-width columns: the table grows,
// each confidential EMD space extends, and the batch rows are normalized
// into the matrix backing — renormalizing every prior row first when the
// batch widens a quasi-identifier's min-max range.
func (b *Builder) Append(cols [][]float64) error {
	old := b.table.Len()
	if err := b.table.AppendColumnChunk(cols); err != nil {
		return err
	}
	n := b.table.Len()
	if n == old || b.dirty {
		return nil
	}
	for i, c := range b.confCols {
		var (
			s   *emd.Space
			err error
		)
		if b.rows == 0 {
			if b.table.Schema().Attr(c).Kind == dataset.Categorical {
				s, err = emd.NewNominalSpace(b.table.ColumnView(c))
			} else {
				s, err = emd.NewSpace(b.table.ColumnView(c))
			}
		} else {
			s, err = b.spaces[i].Extend(b.table.ColumnView(c)[old:])
		}
		if err != nil {
			return fmt.Errorf("tclose: building EMD space for %q: %w",
				b.table.Schema().Attr(c).Name, err)
		}
		if b.spaces == nil {
			b.spaces = make([]*emd.Space, len(b.confCols))
		}
		b.spaces[i] = s
	}
	// Fold the batch into the running bounds with the exact comparison
	// sequence of a whole-column scan (first value initializes, the rest
	// compare), so the resulting frame is bit-identical even around NaN.
	for j, c := range b.qiCols {
		vals := b.table.ColumnView(c)[old:]
		start := 0
		if b.rows == 0 {
			b.los[j], b.his[j] = vals[0], vals[0]
			start = 1
		}
		for _, v := range vals[start:] {
			if v < b.los[j] {
				b.los[j] = v
			}
			if v > b.his[j] {
				b.his[j] = v
			}
		}
	}
	norm := dataset.NormParamsFromBounds(b.los, b.his)
	dim := len(b.qiCols)
	if cap(b.flat) < n*dim {
		grown := make([]float64, len(b.flat), n*dim)
		copy(grown, b.flat)
		b.flat = grown
	}
	b.flat = b.flat[:n*dim]
	if b.rows == 0 || !norm.Equal(b.norm) {
		// A widened range invalidates every previously normalized row.
		b.table.NormalizeQIInto(b.flat, 0, n, norm)
	} else {
		b.table.NormalizeQIInto(b.flat[old*dim:], old, n, norm)
	}
	b.norm = norm
	b.rows = n
	return nil
}

// Delete removes the given rows (current numbering, ascending, unique)
// and marks the incremental substrate invalid: Finish will rebuild it
// with a cold Prepare over the filtered table, exactly as the engine
// does for a deletion epoch.
func (b *Builder) Delete(rowIDs []int) error {
	rows := b.table.Len()
	keep := make([]int, 0, rows-len(rowIDs))
	ti := 0
	for r := 0; r < rows; r++ {
		if ti < len(rowIDs) && rowIDs[ti] == r {
			ti++
			continue
		}
		keep = append(keep, r)
	}
	if ti != len(rowIDs) {
		return fmt.Errorf("tclose: delete ids not ascending unique in range (%d rows)", rows)
	}
	sub, err := b.table.Subset(keep)
	if err != nil {
		return err
	}
	b.table = sub
	if b.hint > 0 {
		b.table.Grow(b.hint)
	}
	b.dirty = true
	b.spaces, b.flat = nil, nil
	b.rows = b.table.Len()
	return nil
}

// Finish seals the build and returns the Prepared. An empty table
// returns ErrNoRecords, as Prepare does.
func (b *Builder) Finish() (*Prepared, error) {
	if b.table.Len() == 0 {
		return nil, ErrNoRecords
	}
	if b.dirty {
		return Prepare(b.table)
	}
	dim := len(b.qiCols)
	points := make([][]float64, b.rows)
	for i := range points {
		points[i] = b.flat[i*dim : (i+1)*dim]
	}
	p := &Prepared{
		table:  b.table,
		points: points,
		mat:    micro.NewMatrix(points),
		spaces: b.spaces,
		norm:   b.norm,
	}
	p.initSignatures()
	return p, nil
}
