package tclose

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/micro"
	"repro/internal/par"
)

// WarmSeed is a previous epoch's partition mapped into the current epoch's
// row numbering, the starting point of a warm-start re-anonymization. The
// engine layer (internal/core) builds seeds from its warm partition cache:
// append epochs leave row ids untouched, deletion epochs remap survivors and
// drop tombstoned rows, marking every cluster that lost a member Dirty.
type WarmSeed struct {
	// Clusters is the seed partition over current row ids. Rows of the
	// current table not covered by any cluster are treated as appended since
	// the seed epoch and assigned to their nearest cluster. Empty clusters
	// (fully tombstoned) are skipped.
	Clusters []micro.Cluster
	// Dirty flags clusters that lost rows to deletion epochs; they join the
	// repair frontier even if they received no appended rows.
	Dirty []bool
	// EffectiveK is the cluster size the seed run enforced (the Eq. 3-4
	// adjusted k' for Algorithm 3, the plain k otherwise). Repair enforces
	// max(EffectiveK, k).
	EffectiveK int
}

// WarmStats quantifies how much work a warm-start repair actually did — the
// evidence that re-run cost is proportional to the delta, surfaced through
// core.Result and the serving layer's /metrics.
type WarmStats struct {
	// SeedClusters is the number of non-empty seed clusters.
	SeedClusters int
	// Assigned is the number of uncovered (appended) rows assigned to their
	// nearest seed cluster.
	Assigned int
	// Folded is the number of undersized clusters folded into their
	// QI-nearest neighbor.
	Folded int
	// Split is the number of oversized clusters re-partitioned by MDAV.
	Split int
	// Repaired is the number of dirty t-violating clusters dissolved into
	// the swap re-extraction pool (k-anonymity-first repair only).
	Repaired int
	// ScopeRows is the number of distinct rows inside the repair frontier:
	// assigned rows plus every row of a folded, split, or dissolved cluster.
	// Rows of clean clusters are never touched before the finishing merge.
	ScopeRows int
}

// ErrBadSeed rejects warm seeds that do not partition a subset of the
// current table's rows.
var ErrBadSeed = errors.New("tclose: invalid warm seed")

// WarmRepair re-anonymizes the current table starting from a previous
// epoch's partition instead of from scratch: uncovered rows are assigned to
// their QI-nearest seed cluster, undersized clusters (deletion damage) are
// folded into their nearest neighbor, oversized clusters are re-split with
// MDAV, and — when swapRepair is set, the k-anonymity-first repair —
// dirty clusters still beyond t are dissolved into a pool and re-extracted
// with the same swap refinement a cold Algorithm 2 run uses. The finishing
// merge loop of Algorithm 1 then restores the t-closeness guarantee exactly
// as it does for every cold run, so the result always satisfies
// k-anonymity (at the seed's effective k) and t-closeness; only utility,
// not privacy, depends on the seed's quality.
//
// The repair touches only the affected frontier (WarmStats.ScopeRows):
// clean clusters are carried over untouched, which is what makes a small
// append re-run cost proportional to the delta rather than the table.
func (prep *Prepared) WarmRepair(run Run, k int, tLevel float64, seed WarmSeed, swapRepair bool) (*Result, *WarmStats, error) {
	p, err := prep.newRun(run, k, tLevel)
	if err != nil {
		return nil, nil, err
	}
	effK := seed.EffectiveK
	if effK < p.k {
		effK = p.k
	}
	n := p.table.Len()

	// Validate the seed and copy the live clusters: the repair mutates row
	// slices freely, the caller's seed must survive intact.
	covered := make([]bool, n)
	var rows [][]int
	var dirty []bool
	touched := make([]bool, n) // repair frontier membership
	for ci, c := range seed.Clusters {
		if len(c.Rows) == 0 {
			continue
		}
		for _, r := range c.Rows {
			if r < 0 || r >= n {
				return nil, nil, fmt.Errorf("%w: row %d out of range [0,%d)", ErrBadSeed, r, n)
			}
			if covered[r] {
				return nil, nil, fmt.Errorf("%w: row %d in two clusters", ErrBadSeed, r)
			}
			covered[r] = true
		}
		rows = append(rows, append([]int(nil), c.Rows...))
		d := ci < len(seed.Dirty) && seed.Dirty[ci]
		dirty = append(dirty, d)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("%w: no non-empty clusters", ErrBadSeed)
	}
	stats := &WarmStats{SeedClusters: len(rows)}

	// added counts rows assigned to each cluster, the pile-up measure the
	// split pass triggers on.
	added := make([]int, len(rows))

	// Assign every uncovered (appended) row to the cluster whose seed
	// centroid is QI-nearest. Targets are the pre-assignment centroids, so
	// the result is independent of assignment order; ties break toward the
	// lower cluster index via the Searcher's (distance, index) order.
	var newRows []int
	for r := 0; r < n; r++ {
		if !covered[r] {
			newRows = append(newRows, r)
		}
	}
	if len(newRows) > 0 {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		cents := make([][]float64, len(rows))
		for i, rs := range rows {
			cents[i] = micro.Centroid(p.points, rs)
		}
		cm := micro.NewMatrix(cents)
		cm.SetTuning(p.mat.TuningOf())
		idxs := make([]int, len(cents))
		for i := range idxs {
			idxs[i] = i
		}
		search := cm.NewSearcher(idxs)
		for done, r := range newRows {
			if done%256 == 0 {
				if err := p.interrupted(); err != nil {
					return nil, nil, err
				}
				p.reportProgress("repair", done, len(newRows))
			}
			ci := search.Nearest(idxs, p.mat.Row(r))
			rows[ci] = append(rows[ci], r)
			dirty[ci] = true
			added[ci]++
			touched[r] = true
		}
		stats.Assigned = len(newRows)
	}

	alive := make([]bool, len(rows))
	for i := range alive {
		alive[i] = true
	}
	nAlive := len(rows)

	// Fold undersized clusters (deletion damage) into their QI-nearest live
	// neighbor. The scan restarts from the lowest index after each fold —
	// deterministic, and the undersized population is bounded by the number
	// of clusters deletions touched, not the table.
	for {
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		small := -1
		for i := range rows {
			if alive[i] && len(rows[i]) < effK {
				small = i
				break
			}
		}
		if small < 0 || nAlive <= 1 {
			break
		}
		sc := micro.Centroid(p.points, rows[small])
		best, bestD := -1, 0.0
		for j := range rows {
			if !alive[j] || j == small {
				continue
			}
			if d := micro.Dist2(sc, micro.Centroid(p.points, rows[j])); best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			break
		}
		for _, r := range rows[small] {
			touched[r] = true
		}
		rows[best] = append(rows[best], rows[small]...)
		dirty[best] = true
		alive[small] = false
		rows[small] = nil
		nAlive--
		stats.Folded++
	}

	// Re-split clusters where assigned rows piled up — at least a full
	// cluster's worth, and at least as many as the rows carried over — with
	// MDAV, so a hot spot in the appended delta cannot degrade utility.
	// Absolute size is deliberately not the trigger: large clusters built
	// by the seed's own merge step are legitimate, and a handful of
	// assignments into one must not re-partition it, or a local repair
	// would turn into a global rerun.
	for i := 0; i < len(added); i++ {
		if !alive[i] || added[i] < effK || added[i]*2 < len(rows[i]) || len(rows[i]) < 2*effK {
			continue
		}
		if err := p.interrupted(); err != nil {
			return nil, nil, err
		}
		members := rows[i]
		pts := make([][]float64, len(members))
		for j, r := range members {
			pts[j] = p.points[r]
		}
		sub := micro.NewMatrix(pts)
		sub.SetTuning(p.mat.TuningOf())
		parts, err := micro.MDAVMatrixCtx(p.run.Ctx, sub, effK)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range members {
			touched[r] = true
		}
		for pi, part := range parts {
			mapped := make([]int, len(part.Rows))
			for j, lr := range part.Rows {
				mapped[j] = members[lr]
			}
			if pi == 0 {
				rows[i] = mapped
			} else {
				rows = append(rows, mapped)
				dirty = append(dirty, true)
				alive = append(alive, true)
				nAlive++
			}
		}
		stats.Split++
	}

	// One reusable scratch histogram per confidential space computes every
	// per-cluster EMD of the repair in O(rows·log m) incremental updates —
	// allocating a fresh O(m) histogram per cluster, as the cold merge
	// machinery can afford to, would cost more than the entire repair on
	// high-cardinality confidential attributes.
	scratch := make(histSet, len(p.spaces))
	for i, s := range p.spaces {
		scratch[i] = s.NewHist()
	}

	// Swap-based repair (the k-anonymity-first mode): dirty clusters still
	// beyond t are dissolved into one pool and re-extracted with the same
	// GenerateCluster refinement a cold Algorithm 2 run uses, confined to
	// the frontier instead of the table. Only meaningful when the enforced
	// cluster size is the run's own k (it always is for Algorithm 2).
	var swaps int
	if swapRepair && effK == p.k {
		var pool []int
		for i := range rows {
			if !alive[i] || !dirty[i] {
				continue
			}
			if err := p.interrupted(); err != nil {
				return nil, nil, err
			}
			if scratch.emdOf(rows[i]) <= p.t {
				continue
			}
			pool = append(pool, rows[i]...)
			alive[i] = false
			rows[i] = nil
			nAlive--
			stats.Repaired++
		}
		if len(pool) > 0 {
			slices.Sort(pool)
			for _, r := range pool {
				touched[r] = true
			}
			reclusters, s, err := p.partitionPool(pool)
			if err != nil {
				return nil, nil, err
			}
			swaps = s
			for _, c := range reclusters {
				rows = append(rows, c.Rows)
				alive = append(alive, true)
				nAlive++
			}
		}
	}

	for r := 0; r < n; r++ {
		if touched[r] {
			stats.ScopeRows++
		}
	}

	// The finishing merge loop restores the t-closeness guarantee over the
	// whole partition with the same policy as every cold Algorithm 1/2 run
	// (worst-EMD cluster merges with its QI-nearest neighbor): clean
	// clusters whose EMD drifted over t under the shifted data set
	// distribution are handled here too. It runs on the scratch histogram
	// instead of per-cluster ones, so a repair with few or no violations
	// costs one incremental pass over the rows.
	final := make([][]int, 0, nAlive)
	for i := range rows {
		if alive[i] {
			final = append(final, rows[i])
		}
	}
	merged, merges, maxEMD, err := p.warmMergeUntilTClose(final, scratch)
	if err != nil {
		return nil, nil, err
	}
	return &Result{
		Clusters:   merged,
		MaxEMD:     maxEMD,
		Merges:     merges,
		Swaps:      swaps,
		EffectiveK: effK,
	}, stats, nil
}

// emdOf computes the maximum EMD of a record set across the scratch
// histogram set, leaving the scratch empty again: O(rows·log m) incremental
// updates with no per-call allocation.
func (hs histSet) emdOf(rows []int) float64 {
	for _, r := range rows {
		hs.add(r)
	}
	d := hs.emd()
	for _, r := range rows {
		hs.remove(r)
	}
	return d
}

// warmMergeUntilTClose is Algorithm 1's merge loop re-expressed over the
// scratch histogram: identical policy (pop the worst-EMD cluster, merge it
// with the QI-centroid-nearest live cluster, tie-breaking on the same
// (value, index) keys), but cluster EMDs come from incremental scratch
// passes instead of per-cluster O(m) histograms. A warm repair with no
// violations therefore costs one pass over the rows — the cold mergeState,
// built for runs that merge thousands of clusters, would spend more time
// allocating histograms than the whole repair. It additionally returns the
// partition's final maximum EMD (a byproduct of the bookkeeping).
func (p *problem) warmMergeUntilTClose(clusters [][]int, scratch histSet) ([]micro.Cluster, int, float64, error) {
	n := len(clusters)
	emds := make([]float64, n)
	cents := make([][]float64, n)
	alive := make([]bool, n)
	nAlive := n
	var worst worstHeap
	for i, rows := range clusters {
		emds[i] = scratch.emdOf(rows)
		cents[i] = micro.Centroid(p.points, rows)
		alive[i] = true
		if emds[i] > p.t {
			worst.push(worstEntry{emd: emds[i], idx: i})
		}
	}
	merges := 0
	for nAlive > 1 {
		if err := p.interrupted(); err != nil {
			return nil, 0, 0, err
		}
		var w int
		for {
			if len(worst) == 0 {
				w = -1
				break
			}
			e := worst.pop()
			if alive[e.idx] && emds[e.idx] == e.emd {
				w = e.idx
				break
			}
		}
		if w < 0 {
			break
		}
		eval := func(j int) float64 {
			if !alive[j] || j == w {
				return math.Inf(1)
			}
			return micro.Dist2(cents[w], cents[j])
		}
		workers := 1
		if p.workers >= 2 && nAlive >= mergePartnerParMin {
			workers = p.workers
		}
		closest := par.ArgminFloat64(len(clusters), workers, eval)
		if closest < 0 || !alive[closest] || closest == w {
			break
		}
		na, nb := float64(len(clusters[w])), float64(len(clusters[closest]))
		clusters[w] = append(clusters[w], clusters[closest]...)
		emds[w] = scratch.emdOf(clusters[w])
		ca, cb := cents[w], cents[closest]
		for j := range ca {
			ca[j] = (ca[j]*na + cb[j]*nb) / (na + nb)
		}
		alive[closest] = false
		clusters[closest] = nil
		nAlive--
		if emds[w] > p.t {
			worst.push(worstEntry{emd: emds[w], idx: w})
		}
		merges++
		p.reportProgress("merge", merges, 0)
	}
	out := make([]micro.Cluster, 0, nAlive)
	maxEMD := 0.0
	for i, rows := range clusters {
		if !alive[i] {
			continue
		}
		out = append(out, micro.Cluster{Rows: rows})
		if emds[i] > maxEMD {
			maxEMD = emds[i]
		}
	}
	return out, merges, maxEMD, nil
}

// partitionPool is kAnonymityFirstPartition confined to a row subset: the
// same farthest-pair seeding and swap refinement, with the pool centroid
// recomputed per round (the pool is a repair frontier, not the table, so
// the O(|pool|·d) rescan is cheap) and no interval-jump engine (the jump
// engine's precomputed rank order covers the full table only).
func (p *problem) partitionPool(pool []int) ([]micro.Cluster, int, error) {
	avail := append([]int(nil), pool...)
	search := p.mat.NewSearcher(avail)
	cent := make([]float64, p.mat.Dim())
	var clusters []micro.Cluster
	swaps := 0
	extract := func(x int) {
		c, s := p.generateCluster(x, avail, search, nil)
		swaps += s
		avail = micro.FilterRows(avail, c, p.rowScratch)
		search.Remove(c)
		clusters = append(clusters, micro.Cluster{Rows: c})
	}
	for len(avail) > 0 {
		if err := p.interrupted(); err != nil {
			return nil, 0, err
		}
		x0 := search.Farthest(avail, p.mat.CentroidRows(avail, cent))
		extract(x0)
		if len(avail) == 0 {
			break
		}
		x1 := search.Farthest(avail, p.mat.Row(x0))
		extract(x1)
	}
	return clusters, swaps, nil
}
