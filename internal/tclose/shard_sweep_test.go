package tclose

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/micro"
	"repro/internal/privacy"
)

// This file pins the sharded construction mode's contract: privacy is
// exact (every output cluster satisfies k and t, verified independently),
// utility stays within a bounded factor of the serial reference, and the
// degenerate one-shard case is bit-identical to the serial algorithm.

// lowerShardFloor forces sharding open on small test tables.
func lowerShardFloor(t *testing.T, v int) {
	t.Helper()
	old := shardMinRows
	shardMinRows = v
	t.Cleanup(func() { shardMinRows = old })
}

// Utility bounds of the sharded result relative to the serial reference.
// Boundary reconciliation can cost utility but must stay in the same
// regime; the absolute slack covers serial references that happen to be
// (near) zero on the duplicate-heavy fixture.
const (
	shardSSEFactor = 3.0
	shardSSESlack  = 0.02
)

type shardedAlg struct {
	name    string
	serial  func(p *Prepared, k int, tl float64) (*Result, error)
	sharded func(p *Prepared, k int, tl float64) (*Result, error)
}

func shardedAlgorithms() []shardedAlg {
	return []shardedAlg{
		{
			name:    "alg1",
			serial:  func(p *Prepared, k int, tl float64) (*Result, error) { return p.Algorithm1(Run{}, k, tl, nil) },
			sharded: func(p *Prepared, k int, tl float64) (*Result, error) { return p.Algorithm1Sharded(Run{}, k, tl) },
		},
		{
			name:    "alg2",
			serial:  func(p *Prepared, k int, tl float64) (*Result, error) { return p.Algorithm2(Run{}, k, tl) },
			sharded: func(p *Prepared, k int, tl float64) (*Result, error) { return p.Algorithm2Sharded(Run{}, k, tl) },
		},
	}
}

// normalizedSSEOf aggregates the partition and computes the release's
// normalized SSE — the utility measure the paper's figures report.
func normalizedSSEOf(t *testing.T, tbl *dataset.Table, clusters []micro.Cluster) float64 {
	t.Helper()
	anon, err := micro.Aggregate(tbl, clusters)
	if err != nil {
		t.Fatal(err)
	}
	sse, err := metrics.NormalizedSSE(tbl, anon)
	if err != nil {
		t.Fatal(err)
	}
	return sse
}

// assertExactPartition checks the clusters cover every row exactly once.
func assertExactPartition(t *testing.T, n int, clusters []micro.Cluster) {
	t.Helper()
	seen := make([]bool, n)
	for _, c := range clusters {
		for _, r := range c.Rows {
			if r < 0 || r >= n || seen[r] {
				t.Fatalf("row %d out of range or duplicated in partition", r)
			}
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("row %d missing from partition", r)
		}
	}
}

// TestShardedWorkerSweepPrivacyAndUtility is the sharded counterpart of the
// worker-count invariance sweep: for W ∈ {1, 2, 3, 8} over the PR 5
// adversarial fixtures, every sharded partition must satisfy k and t
// exactly (independently re-verified, not taken from the result), and its
// SSE must stay within the pinned bound of the serial reference. Unlike the
// serial sweep, partitions at W >= 2 are NOT required to be bit-identical —
// that is precisely the relaxation the mode trades for concurrency.
func TestShardedWorkerSweepPrivacyAndUtility(t *testing.T) {
	lowerParFloors(t)
	lowerShardFloor(t, 16)
	tables := []struct {
		name string
		tbl  *dataset.Table
	}{
		{"duplicates", duplicateHeavyTable(240, 5)},
		{"multiconf", multiConfTable(260, 31)},
	}
	ks := []int{2, 5}
	ts := []float64{0.1, 0.3}
	if testing.Short() {
		ks = ks[:1]
	}
	for _, tc := range tables {
		n := tc.tbl.Len()
		for _, alg := range shardedAlgorithms() {
			for _, k := range ks {
				for _, tl := range ts {
					want, err := alg.serial(prepareWorkers(t, tc.tbl, 1), k, tl)
					if err != nil {
						t.Fatalf("%s %s k=%d t=%v serial: %v", tc.name, alg.name, k, tl, err)
					}
					wantSSE := normalizedSSEOf(t, tc.tbl, want.Clusters)
					for _, w := range []int{1, 2, 3, 8} {
						got, err := alg.sharded(prepareWorkers(t, tc.tbl, w), k, tl)
						if err != nil {
							t.Fatalf("%s %s k=%d t=%v W=%d: %v", tc.name, alg.name, k, tl, w, err)
						}
						assertExactPartition(t, n, got.Clusters)
						if min := micro.Sizes(got.Clusters).Min; min < k {
							t.Fatalf("%s %s k=%d t=%v W=%d: min cluster size %d < k",
								tc.name, alg.name, k, tl, w, min)
						}
						tc2, err := privacy.TClosenessOf(tc.tbl, got.Clusters)
						if err != nil {
							t.Fatal(err)
						}
						if tc2 > tl {
							t.Fatalf("%s %s k=%d t=%v W=%d: verified t-closeness %v exceeds t",
								tc.name, alg.name, k, tl, w, tc2)
						}
						if got.MaxEMD > tl {
							t.Fatalf("%s %s k=%d t=%v W=%d: reported MaxEMD %v exceeds t",
								tc.name, alg.name, k, tl, w, got.MaxEMD)
						}
						if sse := normalizedSSEOf(t, tc.tbl, got.Clusters); sse > wantSSE*shardSSEFactor+shardSSESlack {
							t.Fatalf("%s %s k=%d t=%v W=%d: SSE %v beyond bound of serial %v",
								tc.name, alg.name, k, tl, w, sse, wantSSE)
						}
						if w == 1 {
							if !reflect.DeepEqual(got.Clusters, want.Clusters) {
								t.Fatalf("%s %s k=%d t=%v: W=1 sharded diverges from serial",
									tc.name, alg.name, k, tl)
							}
						}
					}
				}
			}
		}
	}
}

// TestShardedDelegatesBelowFloor pins the escape hatch: at the default
// per-shard size floor a small table cannot shard at any worker count, so
// the sharded entry points are the serial algorithms verbatim.
func TestShardedDelegatesBelowFloor(t *testing.T) {
	tbl := multiConfTable(150, 9)
	for _, alg := range shardedAlgorithms() {
		want, err := alg.serial(prepareWorkers(t, tbl, 8), 3, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := alg.sharded(prepareWorkers(t, tbl, 8), 3, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: below the shard floor the sharded run must equal serial", alg.name)
		}
	}
}

// TestShardedDeterministicPerWorkerCount: for a fixed worker count the
// sharded partition is a pure function of the inputs (the shard split and
// per-shard loops are deterministic; only *across* worker counts do
// results differ).
func TestShardedDeterministicPerWorkerCount(t *testing.T) {
	lowerShardFloor(t, 16)
	tbl := duplicateHeavyTable(220, 17)
	for _, alg := range shardedAlgorithms() {
		for _, w := range []int{2, 4} {
			a, err := alg.sharded(prepareWorkers(t, tbl, w), 2, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			b, err := alg.sharded(prepareWorkers(t, tbl, w), 2, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s W=%d: sharded run not deterministic", alg.name, w)
			}
		}
	}
}
