package tclose

import (
	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
	"repro/internal/par"
)

// Algorithm3 implements the paper's Algorithm 3 (t-closeness-first
// microaggregation). It never evaluates an Earth Mover's Distance:
// t-closeness holds by construction.
//
//  1. The cluster size is set to k' = max{k, ceil(n/(2(n-1)t+1))} (Eq. 3,
//     derived from the Proposition 2 bound EMD <= (n-k)/(2(n-1)k)) and then
//     adjusted for the n mod k' remainder (Eq. 4).
//  2. The records are split into k' subsets of floor(n/k') records in
//     ascending order of the confidential attribute, with the n mod k'
//     remaining records assigned to the central subset(s), near the median,
//     where an extra record costs the least EMD.
//  3. Clusters are formed MDAV-style (seeded at the record farthest from
//     the centroid of the unclustered records, then at the record farthest
//     from that one), each taking the QI-nearest record from every subset —
//     plus one extra record from a central subset while extras remain, so
//     some clusters have k'+1 records (Figures 3-4 of the paper).
//
// Every cluster draws at most one record per subset (two from a central
// subset), so by Proposition 2 its EMD is at most (n-k')/(2(n-1)k') <= t.
// Cost is O(n^2/k), the same order as MDAV, with no EMD evaluations.
//
// Exactness caveat (Section 7 of the paper): when k' does not divide n, the
// clusters that absorb an extra record can slightly exceed the Proposition 2
// bound; the paper deliberately uses that bound as an approximation because
// the exact uneven-case formulas are unwieldy. In that case Result.MaxEMD
// may marginally exceed t, but never emd.MaxSpreadClusterEMDUneven(n, k').
// When k' divides n — as in all of the paper's experiments — the t-closeness
// guarantee is exact.
//
// When several confidential attributes are present the subsets are ranked on
// the first one; the construction guarantee covers that attribute, and
// Result.MaxEMD reports the worst EMD across all of them.
func Algorithm3(t *dataset.Table, k int, tLevel float64) (*Result, error) {
	prep, err := prepareOneShot(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	return prep.Algorithm3(Run{}, k, tLevel)
}

// Algorithm3 runs the paper's Algorithm 3 against the prepared substrate;
// see the package-level Algorithm3. The partition (and its achieved EMD)
// depends on (k, t) only through the effective cluster size k', so it is
// cached per k': every (k, t) grid point mapping to an already-computed k'
// returns a deep copy of the cached partition without touching the
// quasi-identifier geometry at all.
func (prep *Prepared) Algorithm3(run Run, k int, tLevel float64) (*Result, error) {
	p, err := prep.newRun(run, k, tLevel)
	if err != nil {
		return nil, err
	}
	n := prep.table.Len()
	kEff, err := emd.RequiredClusterSize(n, p.k, p.t)
	if err != nil {
		return nil, err
	}
	kEff = emd.AdjustClusterSize(n, kEff)
	if kEff >= n {
		// A single cluster containing the whole data set: EMD is 0.
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		clusters := []micro.Cluster{{Rows: all}}
		return &Result{Clusters: clusters, MaxEMD: 0, EffectiveK: kEff}, nil
	}
	prep.cacheMu.Lock()
	cached, ok := prep.alg3ByK[kEff]
	prep.cacheMu.Unlock()
	if !ok {
		clusters, err := p.tClosenessFirstPartition(kEff)
		if err != nil {
			return nil, err
		}
		cached = alg3Cached{clusters: clusters, maxEMD: p.maxEMD(clusters)}
		prep.cacheMu.Lock()
		if prep.alg3ByK == nil {
			prep.alg3ByK = make(map[int]alg3Cached)
		}
		prep.alg3ByK[kEff] = cached
		prep.cacheMu.Unlock()
	}
	return &Result{
		Clusters:   copyClusters(cached.clusters),
		MaxEMD:     cached.maxEMD,
		EffectiveK: kEff,
	}, nil
}

// copyClusters deep-copies a partition so cached state never escapes to
// callers that may mutate their Result.
func copyClusters(clusters []micro.Cluster) []micro.Cluster {
	out := make([]micro.Cluster, len(clusters))
	for i, c := range clusters {
		out[i] = micro.Cluster{Rows: append([]int(nil), c.Rows...)}
	}
	return out
}

// rankSubsets splits record indices into k subsets of floor(n/k) records in
// ascending order of the first confidential attribute, assigning the n mod k
// remaining records to the central subset(s): all to the middle subset when
// k is odd, split between the two middle subsets when k is even (Figures 3-4
// of the paper). The Eq. (4) adjustment guarantees n mod k <= floor(n/k).
func (p *problem) rankSubsets(k int) [][]int {
	n := p.table.Len()
	// The (value, row) ranking is shared substrate, sorted once per table
	// epoch; the subsets copy their slices out of it.
	order := p.ConfOrder()
	base := n / k
	r := n % k
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = base
	}
	if r > 0 {
		if k%2 == 1 {
			sizes[k/2] += r
		} else {
			sizes[k/2-1] += (r + 1) / 2
			sizes[k/2] += r / 2
		}
	}
	subsets := make([][]int, k)
	pos := 0
	for i := 0; i < k; i++ {
		subsets[i] = append([]int(nil), order[pos:pos+sizes[i]]...)
		pos += sizes[i]
	}
	return subsets
}

// tClosenessFirstPartition forms floor(n/k) clusters, each with exactly one
// QI-nearest record per rank subset plus at most one extra record from a
// central subset while extras remain. The centroid of the remaining records
// is maintained incrementally, the farthest-seed queries run on a Searcher
// over the whole record set, and each rank subset carries its own Searcher
// for the per-cluster nearest-record draws — k-d-tree-backed above the
// crossover (subsets only in low dimensions, where pruning over a sparse
// QI-scattered set still wins; see micro.NewSparseSearcher), linear
// otherwise, with identical results either way. Subset Searchers tie-break
// by position in the confidential ranking, exactly as the linear scan over
// the subset slice does.
// Cancellation is checked once per seed-pair round, so an abandoned run
// stops within two cluster builds.
func (p *problem) tClosenessFirstPartition(k int) ([]micro.Cluster, error) {
	n := p.table.Len()
	subsets := p.rankSubsets(k)
	base := n / k
	var clusters []micro.Cluster
	// Live membership for centroid/farthest computations over the whole
	// remaining data set.
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	rc := micro.NewRunningCentroid(p.mat)
	global := p.mat.NewSearcher(remaining)
	subSearch := make([]*micro.Searcher, k)
	for i := range subsets {
		subSearch[i] = p.mat.NewSparseSearcher(subsets[i])
	}
	take := func(i int, seed []float64) int {
		x := subSearch[i].Nearest(subsets[i], seed)
		subsets[i] = removeOne(subsets[i], x)
		subSearch[i].RemoveOne(x)
		return x
	}
	// The k per-subset draws of one cluster are independent shards: each
	// touches only its own subset slice and Searcher, so they run on a
	// reusable worker pool when the subsets are big enough to pay for the
	// handoff. Draw results land in fixed slots and are appended in subset
	// order, so the cluster is identical to the serial loop's at any worker
	// count (and the pool is degenerate — fully inline — at one worker).
	pool := par.NewPool(1)
	if p.workers >= 2 && k >= 2 && base >= alg3DrawParMinRows {
		pool = par.NewPool(p.workers)
	}
	defer pool.Close()
	drawn := make([]int, k)
	build := func(seed []float64) micro.Cluster {
		rows := make([]int, 0, k+1)
		pool.Run(k, func(i int) {
			if len(subsets[i]) == 0 {
				drawn[i] = -1
				return
			}
			drawn[i] = take(i, seed)
		})
		for i := 0; i < k; i++ {
			if drawn[i] >= 0 {
				rows = append(rows, drawn[i])
			}
		}
		// Extra record: while some subset still holds more records than the
		// clusters left to build, it must shed one extra now. Take it from
		// the most overfull (central) subset.
		left := base - len(clusters) - 1 // clusters still to build after this one
		surplus, at := 0, -1
		for i := 0; i < k; i++ {
			if s := len(subsets[i]) - left; s > surplus {
				surplus, at = s, i
			}
		}
		if at >= 0 && surplus > 0 {
			rows = append(rows, take(at, seed))
		}
		remaining = micro.FilterRows(remaining, rows, p.rowScratch)
		rc.RemoveRows(rows)
		global.Remove(rows)
		return micro.Cluster{Rows: rows}
	}
	for len(remaining) > 0 {
		if err := p.interrupted(); err != nil {
			return nil, err
		}
		x0 := global.Farthest(remaining, rc.CentroidOf(remaining))
		c := build(p.mat.Row(x0))
		clusters = append(clusters, c)
		if len(remaining) == 0 {
			break
		}
		x1 := global.Farthest(remaining, p.mat.Row(x0))
		clusters = append(clusters, build(p.mat.Row(x1)))
		p.reportProgress("partition", n-len(remaining), n)
	}
	return clusters, nil
}

// removeOne returns s with the first occurrence of v removed.
func removeOne(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
