package tclose

import (
	"repro/internal/micro"
	"repro/internal/par"
)

// This file implements the sharded partition-construction mode: instead of
// growing clusters from one sequential frontier over the whole table, the
// normalized QI cube is split into disjoint, spatially coherent record
// shards along the k-d tree's median cuts (micro.Matrix.ShardRows), the
// per-algorithm cluster loop runs independently inside each shard on the
// internal/par pool, and a reconciliation pass repairs the privacy
// properties along shard boundaries: undersized clusters fold into their
// QI-nearest neighbor (k-anonymity), then the scratch-histogram finishing
// merge of the warm-repair machinery restores t-closeness exactly as it
// does for every cold run. k and t therefore hold exactly in the output;
// what the mode relaxes is bit-identity to the serial partition — cluster
// shapes near shard boundaries depend on the shard count, so results vary
// with the worker budget. Callers opt in explicitly (core.Spec.Sharded).
//
// With one shard (one worker, or a table too small to split) the drivers
// delegate to the serial algorithms unchanged, so W=1 sharded output is
// bit-identical to serial — including the k=2 interval-jump engine, which
// only the full-table frontier can use.

// shardMinRows is the minimum shard size worth a dedicated worker: below
// it, per-shard Searcher builds and the reconciliation pass outweigh the
// saved frontier work. A variable so the sweep tests can shard tiny tables.
var shardMinRows = 1024

// shardRows splits the full row set for this run, capping the shard count
// at the worker budget and at what the per-shard size floor allows. nil
// means sharding is not worthwhile (or not possible) and the caller should
// run the serial algorithm.
func (p *problem) shardRows() [][]int {
	n := p.table.Len()
	floor := shardMinRows
	if 2*p.k > floor {
		floor = 2 * p.k
	}
	w := p.workers
	if maxW := n / floor; w > maxW {
		w = maxW
	}
	if w <= 1 {
		return nil
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	shards := p.mat.ShardRows(rows, w)
	if len(shards) <= 1 {
		return nil
	}
	return shards
}

// shardProblem builds the run-private state for one shard's cluster loop.
// The Prepared substrate is shared read-only (its concurrency contract);
// everything mutable — row scratch, signature memos — is private to the
// shard, and the inner parallel seams are pinned to one worker so the
// fan-out happens across shards, not inside them. Progress is not forwarded:
// ProgressFunc is called synchronously on the run's goroutine by contract,
// which concurrent shards cannot honor.
func (p *problem) shardProblem() *problem {
	sp := &problem{
		Prepared:   p.Prepared,
		k:          p.k,
		t:          p.t,
		run:        Run{Ctx: p.run.Ctx},
		workers:    1,
		rowScratch: make([]bool, p.table.Len()),
	}
	if p.sigs != nil {
		sp.rejected = newSigSet(p.sigDomain)
		sp.evaluated = newSigSet(p.sigDomain)
	}
	return sp
}

// Algorithm2Sharded is Algorithm 2 (k-anonymity-first) under the sharded
// construction mode: the farthest-pair seeding and swap refinement run
// independently inside each k-d shard, followed by boundary reconciliation.
// The output satisfies k-anonymity and t-closeness exactly; see the file
// comment for the determinism semantics. With an effective shard count of
// one it is Algorithm2 verbatim.
func (prep *Prepared) Algorithm2Sharded(run Run, k int, tLevel float64) (*Result, error) {
	p, err := prep.newRun(run, k, tLevel)
	if err != nil {
		return nil, err
	}
	shards := p.shardRows()
	if shards == nil {
		return prep.Algorithm2(run, k, tLevel)
	}
	clusters := make([][]micro.Cluster, len(shards))
	swaps := make([]int, len(shards))
	errs := make([]error, len(shards))
	par.Cells(len(shards), p.workers, func(i int) {
		sp := p.shardProblem()
		clusters[i], swaps[i], errs[i] = sp.partitionPool(shards[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	totalSwaps := 0
	for _, s := range swaps {
		totalSwaps += s
	}
	res, err := p.reconcileShards(clusters)
	if err != nil {
		return nil, err
	}
	res.Swaps = totalSwaps
	return res, nil
}

// Algorithm1Sharded is Algorithm 1 (Merge) under the sharded construction
// mode: MDAV runs independently inside each k-d shard on a per-shard
// sub-matrix, followed by boundary reconciliation. Custom partitioners are
// not supported — they see the whole point set by contract, which has no
// per-shard meaning (core.ValidateSpec rejects the combination). With an
// effective shard count of one it is Algorithm1 with the default
// partitioner, verbatim.
func (prep *Prepared) Algorithm1Sharded(run Run, k int, tLevel float64) (*Result, error) {
	p, err := prep.newRun(run, k, tLevel)
	if err != nil {
		return nil, err
	}
	shards := p.shardRows()
	if shards == nil {
		return prep.Algorithm1(run, k, tLevel, nil)
	}
	clusters := make([][]micro.Cluster, len(shards))
	errs := make([]error, len(shards))
	par.Cells(len(shards), p.workers, func(i int) {
		clusters[i], errs[i] = p.shardMDAV(shards[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return p.reconcileShards(clusters)
}

// shardMDAV partitions one shard with MDAV over a sub-matrix of the shard's
// points (the WarmRepair split pass's pattern), mapping local rows back to
// table rows. The sub-matrix keeps the parent's tuning except the worker
// budget, pinned to 1: the fan-out is across shards. Shards smaller than 2k
// come back as a single cluster for the fold pass to absorb.
func (p *problem) shardMDAV(rows []int) ([]micro.Cluster, error) {
	pts := make([][]float64, len(rows))
	for j, r := range rows {
		pts[j] = p.points[r]
	}
	sub := micro.NewMatrix(pts)
	tun := p.mat.TuningOf()
	tun.Workers = 1
	sub.SetTuning(tun)
	parts, err := micro.MDAVMatrixCtx(p.run.Ctx, sub, p.k)
	if err != nil {
		return nil, err
	}
	out := make([]micro.Cluster, len(parts))
	for pi, part := range parts {
		mapped := make([]int, len(part.Rows))
		for j, lr := range part.Rows {
			mapped[j] = rows[lr]
		}
		out[pi] = micro.Cluster{Rows: mapped}
	}
	return out, nil
}

// reconcileShards repairs the concatenated per-shard partitions into one
// valid release: clusters that came out undersized (possible only from
// degenerate shard sizes — the partition loops guarantee >= k otherwise)
// fold into their QI-nearest neighbor, then the scratch-histogram finishing
// merge restores t-closeness with the same policy as every cold run.
// Cluster order is shard order then per-shard extraction order, so the
// result is deterministic for a fixed shard split.
func (p *problem) reconcileShards(perShard [][]micro.Cluster) (*Result, error) {
	var rows [][]int
	for _, cs := range perShard {
		for _, c := range cs {
			rows = append(rows, c.Rows)
		}
	}
	alive := make([]bool, len(rows))
	for i := range alive {
		alive[i] = true
	}
	nAlive := len(rows)

	// Fold pass, restarting from the lowest index after each fold (the
	// WarmRepair policy): the undersized population is at most one cluster
	// per degenerate shard, so the quadratic partner scan is over a handful
	// of clusters.
	for {
		if err := p.interrupted(); err != nil {
			return nil, err
		}
		small := -1
		for i := range rows {
			if alive[i] && len(rows[i]) < p.k {
				small = i
				break
			}
		}
		if small < 0 || nAlive <= 1 {
			break
		}
		sc := micro.Centroid(p.points, rows[small])
		best, bestD := -1, 0.0
		for j := range rows {
			if !alive[j] || j == small {
				continue
			}
			if d := micro.Dist2(sc, micro.Centroid(p.points, rows[j])); best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			break
		}
		rows[best] = append(rows[best], rows[small]...)
		alive[small] = false
		rows[small] = nil
		nAlive--
	}

	final := make([][]int, 0, nAlive)
	for i := range rows {
		if alive[i] {
			final = append(final, rows[i])
		}
	}
	scratch := make(histSet, len(p.spaces))
	for i, s := range p.spaces {
		scratch[i] = s.NewHist()
	}
	merged, merges, maxEMD, err := p.warmMergeUntilTClose(final, scratch)
	if err != nil {
		return nil, err
	}
	return &Result{
		Clusters:   merged,
		MaxEMD:     maxEMD,
		Merges:     merges,
		EffectiveK: p.k,
	}, nil
}
