// Package tclose implements the paper's contribution: three
// microaggregation-based algorithms that generate k-anonymous t-close data
// sets.
//
//   - Algorithm 1 (Merge): standard microaggregation on the
//     quasi-identifiers followed by merging of clusters until every cluster's
//     confidential-attribute distribution is within EMD t of the data set
//     distribution.
//   - Algorithm 2 (k-anonymity-first): clusters are formed on the
//     quasi-identifiers and refined by record swaps to approach t-closeness;
//     because the refinement cannot always succeed (e.g. for the last
//     cluster), the partition is finished with Algorithm 1's merge step.
//   - Algorithm 3 (t-closeness-first): the cluster size k' required for
//     t-closeness is derived analytically (Proposition 2 / Eq. 3-4), the
//     records are split into k' rank subsets of the confidential attribute,
//     and clusters take one QI-nearest record per subset, satisfying
//     t-closeness by construction without ever evaluating an EMD.
//
// All three return a Result whose Clusters field partitions the input table;
// micro.Aggregate turns that partition into the anonymized release.
//
// # Prepared substrate
//
// The package-level Algorithm1/2/3 functions are one-shot: each call builds
// the per-table substrate (normalized QI geometry, EMD spaces, signatures)
// and throws it away. Sweep callers should Prepare once and invoke the
// Prepared methods of the same names, which share the substrate across
// runs, support context cancellation and progress reporting through Run,
// and cache the partitions that depend on fewer parameters than the full
// (k, t) pair (MDAV per k, Algorithm 3 per effective cluster size). Both
// paths produce bit-identical results; a Prepared is safe for concurrent
// runs.
//
// # Performance
//
// The algorithms run on incremental data structures rather than the naive
// formulations of the paper. With n records, m distinct confidential values,
// d quasi-identifiers and cluster size k:
//
//   - Algorithm 1: the partitioner's cost plus the merge loop, whose
//     per-cluster histograms, EMDs and centroids are cached and updated in
//     O(1) amortized per merge, and whose worst-cluster selection runs on a
//     lazily invalidated max-heap — O(merges·(log(n/k) + n/k)) with the
//     linear term only in the partner scan. MDAV itself routes its
//     Farthest/KNearest rounds through the micro.Searcher spatial index
//     (k-d tree over the normalized QI cube, subquadratic per round where
//     the geometry prunes) with the per-round centroid maintained
//     incrementally in O(kd).
//   - Algorithm 2: farthest seeds come from the spatial index and swap
//     candidates from the Searcher's nearest-first stream (lazy while
//     consumption is light, one radix-sorted pass in the full-drain regime
//     of tight t). Each candidate is evaluated against each distinct
//     occupied confidential bin of the cluster — not each member — and each
//     evaluation runs on the exact integer prefix-sum geometry of package
//     emd with per-size crossing caches: O(occΔ) integer operations with no
//     binary searches. For the paper's k=2 single-attribute configuration
//     the refinement leaves the stream entirely: the interval-jump engine
//     (swapjump.go) exploits the closed-form two-record deviation
//     (emd.Space.TwoRecordAbsDev) being piecewise convex in the candidate
//     bin to jump straight to each accepted swap — O(avail) setup per
//     cluster instead of a full distance sort, with identical partitions.
//     Candidates whose confidential-bin signature already failed against
//     the current cluster state are skipped in O(1) where that memo still
//     pays for itself.
//   - Algorithm 3: seed and per-subset nearest queries run on Searchers
//     (one global, one per rank subset) plus O(n·k) subset bookkeeping;
//     still no EMD evaluations at all.
//
// Every optimized path is pinned to its naive reference implementation by
// property tests (identical partitions and EMDs); EMD evaluation is exact
// integer arithmetic, so incremental and batch results are bit-identical.
//
// # Parallel determinism contract
//
// The partition loops are sharded across the engine worker budget
// (micro.Matrix.Workers, set by core.WithWorkers): Algorithm 1's merge
// partner evaluations fan out with an order-stable argmin on the serial
// scan's (cost, index) tie key; Algorithm 2's eviction scoring fans out
// the same way on the integer (numerator, index) key after warming the
// histogram's swap geometry (emd.Hist.WarmSwapCache) so the concurrent
// evaluations are pure reads; Algorithm 2's per-cluster distance fills are
// chunked with each chunk writing disjoint slots; and Algorithm 3's
// per-subset draws run on a reusable worker pool (internal/par) where each
// task owns exactly one rank subset and its Searcher, with results landing
// in fixed slots appended in subset order. Every seam therefore produces
// partitions bit-identical to the serial run at any worker count — pinned
// by the worker-sweep property tests in this package, the SABRE sweep, and
// the golden conformance fixtures in internal/core — and each seam keeps a
// serial fallback below its engagement floor, so a one-worker engine pays
// no fan-out overhead at all.
//
// The sharded construction mode (Algorithm1Sharded / Algorithm2Sharded,
// opted into via core.Spec.Sharded) is the deliberate exception to this
// contract. It parallelizes cluster construction itself — the sequential
// frontier the seams above cannot touch — by splitting the table into
// disjoint k-d shards (micro.Matrix.ShardRows), running the cluster loop
// independently per shard, and reconciling the boundaries (undersized
// clusters fold into their QI-nearest neighbor, then the scratch-histogram
// finishing merge restores t). The output always satisfies k and t exactly,
// and is deterministic for a fixed worker budget, but is bit-identical to
// the serial run only when the effective shard count is one (a one-worker
// engine, or a table below the per-shard size floor, delegates to the
// serial algorithm outright). Choose it when wall-clock on a multi-core
// host matters more than cross-budget reproducibility; the shard sweep
// tests pin the privacy guarantee and bound the utility cost.
package tclose

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// Partitioner produces a k-anonymous partition of the given normalized
// quasi-identifier points. micro.MDAV is the default; micro.VMDAV (curried
// with a gamma) and Algorithm2Standalone-based partitioners also satisfy it.
type Partitioner func(points [][]float64, k int) ([]micro.Cluster, error)

// Result is the outcome of one of the t-closeness algorithms.
type Result struct {
	// Clusters partitions the input table's records.
	Clusters []micro.Cluster
	// MaxEMD is the largest Earth Mover's Distance between any cluster's
	// confidential-attribute distribution and the data set distribution,
	// maximized over all confidential attributes. MaxEMD <= T for every
	// algorithm that carries the t-closeness guarantee.
	MaxEMD float64
	// Merges counts cluster mergers performed (Algorithms 1 and 2).
	Merges int
	// Swaps counts record swaps performed (Algorithm 2).
	Swaps int
	// EffectiveK is the cluster size actually enforced: the input k for
	// Algorithms 1 and 2, and the Eq. (3)/(4) adjusted k' for Algorithm 3.
	EffectiveK int
}

// Sizes returns the min/avg/max cluster cardinalities of the result, the
// quantity the paper's Tables 1-3 report.
func (r *Result) Sizes() micro.SizeStats { return micro.Sizes(r.Clusters) }

// Parameter errors shared by the algorithms.
var (
	ErrBadK      = errors.New("tclose: k must be at least 1")
	ErrBadT      = errors.New("tclose: t must be in (0, 1]")
	ErrNoRecords = errors.New("tclose: data set has no records")
)

// Parallel-seam engagement floors. Below these sizes the fan-out overhead
// outweighs the shard work and the loops stay serial; both sides produce
// bit-identical partitions, so the floors are pure performance knobs. They
// are variables so the worker-sweep property tests can force the parallel
// paths on small tables.
var (
	// mergePartnerParMin is the live-cluster count at or above which
	// Algorithm 1's merge partner scan fans out.
	mergePartnerParMin = 1024
	// evictScanParMin is the cluster size at or above which Algorithm 2's
	// eviction scoring fans out.
	evictScanParMin = 64
	// alg3DrawParMinRows is the per-subset record count at or above which
	// Algorithm 3's per-subset nearest draws run on the worker pool.
	alg3DrawParMinRows = 256
)

// problem is the per-run view of a Prepared substrate: the validated
// parameters of one algorithm invocation plus the run-private scratch state
// of the partition loops. The substrate itself (table, points, matrix, EMD
// spaces, signatures) is shared read-only across concurrent runs; every
// mutable piece lives here.
type problem struct {
	*Prepared
	k   int
	t   float64
	run Run

	// workers is the engine worker budget (micro.Matrix.Workers) shared by
	// every parallel seam of the partition loops: the merge partner scans,
	// the swap-candidate scoring, Algorithm 3's per-subset draws and the
	// jump engine's distance fills. All seams reduce in a fixed order, so
	// partitions are bit-identical at any value; 1 runs fully serial.
	workers int

	// rowScratch backs micro.FilterRows so the partition loops do not
	// allocate per removal.
	rowScratch []bool
	// evictSkip marks duplicate-signature eviction candidates for the
	// parallel swap scoring (reused across refinement steps).
	evictSkip []bool
	// rejected memoizes candidate signatures already tried without
	// improvement against the current cluster state of Algorithm 2's swap
	// refinement; evaluated deduplicates eviction candidates within one
	// refinement step. Both are nil when the substrate's signature domain
	// overflowed.
	rejected  *sigSet
	evaluated *sigSet
}

// newRun validates the per-run parameters and builds the run-private state
// over the shared substrate.
func (prep *Prepared) newRun(run Run, k int, tLevel float64) (*problem, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	if tLevel <= 0 || tLevel > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadT, tLevel)
	}
	if run.Ctx == nil {
		run.Ctx = context.Background()
	}
	p := &problem{
		Prepared:   prep,
		k:          k,
		t:          tLevel,
		run:        run,
		workers:    prep.mat.Workers(),
		rowScratch: make([]bool, prep.table.Len()),
	}
	if prep.sigs != nil {
		p.rejected = newSigSet(prep.sigDomain)
		p.evaluated = newSigSet(prep.sigDomain)
	}
	return p, nil
}

// prepareOneShot validates the parameters and prepares a throwaway
// substrate — the legacy one-call-per-run entry path.
func prepareOneShot(t *dataset.Table, k int, tLevel float64) (*Prepared, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	if tLevel <= 0 || tLevel > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadT, tLevel)
	}
	return Prepare(t)
}

// newProblem prepares a throwaway substrate and builds one run over it —
// the one-shot path, also exercised directly by the property tests.
func newProblem(t *dataset.Table, k int, tLevel float64) (*problem, error) {
	prep, err := prepareOneShot(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	return prep.newRun(Run{}, k, tLevel)
}

// interrupted returns the run context's error, checked by the partition and
// merge loops between work units.
func (p *problem) interrupted() error { return p.run.Ctx.Err() }

// reportProgress delivers a progress event when the run asked for them.
func (p *problem) reportProgress(phase string, done, total int) {
	if p.run.Progress != nil {
		p.run.Progress(Progress{Phase: phase, Done: done, Total: total})
	}
}

// sigSet is a reusable membership set over packed bin signatures: a dense
// bool slice with a touched list for compact domains (no per-use
// allocation, O(1) test-and-set, O(touched) reset), a map for huge ones.
type sigSet struct {
	dense   []bool
	touched []uint64
	sparse  map[uint64]struct{}
}

// sigDenseCap bounds the dense representation's memory (4 MiB of bools).
const sigDenseCap = 1 << 22

func newSigSet(domain uint64) *sigSet {
	if domain > 0 && domain <= sigDenseCap {
		return &sigSet{dense: make([]bool, domain)}
	}
	return &sigSet{sparse: make(map[uint64]struct{})}
}

// testAndSet reports whether sig was already present, inserting it if not.
func (s *sigSet) testAndSet(sig uint64) bool {
	if s.dense != nil {
		if s.dense[sig] {
			return true
		}
		s.dense[sig] = true
		s.touched = append(s.touched, sig)
		return false
	}
	if _, ok := s.sparse[sig]; ok {
		return true
	}
	s.sparse[sig] = struct{}{}
	return false
}

func (s *sigSet) reset() {
	if s.dense != nil {
		for _, sig := range s.touched {
			s.dense[sig] = false
		}
		s.touched = s.touched[:0]
		return
	}
	clear(s.sparse)
}

// clusterEMD returns the maximum EMD of the record set across all
// confidential attributes.
func (p *problem) clusterEMD(rows []int) float64 {
	worst := 0.0
	for _, s := range p.spaces {
		if d := s.EMDOf(rows); d > worst {
			worst = d
		}
	}
	return worst
}

// maxEMD returns the largest cluster EMD over the whole partition.
func (p *problem) maxEMD(clusters []micro.Cluster) float64 {
	worst := 0.0
	for _, c := range clusters {
		if d := p.clusterEMD(c.Rows); d > worst {
			worst = d
		}
	}
	return worst
}

// histSet is a parallel set of histograms, one per confidential attribute,
// for a single cluster.
type histSet []*emd.Hist

func (p *problem) newHistSet(rows []int) histSet {
	hs := make(histSet, len(p.spaces))
	for i, s := range p.spaces {
		hs[i] = s.HistOf(rows)
	}
	return hs
}

// emd returns the maximum EMD of the histogram set.
func (hs histSet) emd() float64 {
	worst := 0.0
	for _, h := range hs {
		if d := h.EMD(); d > worst {
			worst = d
		}
	}
	return worst
}

// emdSwap returns the maximum post-swap EMD across attributes.
func (hs histSet) emdSwap(out, in int) float64 {
	worst := 0.0
	for _, h := range hs {
		if d := h.EMDSwap(out, in); d > worst {
			worst = d
		}
	}
	return worst
}

func (hs histSet) add(rec int) {
	for _, h := range hs {
		h.Add(rec)
	}
}

func (hs histSet) remove(rec int) {
	for _, h := range hs {
		h.Remove(rec)
	}
}

// swap commits a record swap on every histogram; equivalent to
// remove(out)+add(in) but keeps per-histogram cached geometry alive when
// bins coincide.
func (hs histSet) swap(out, in int) {
	for _, h := range hs {
		h.Swap(out, in)
	}
}

func (hs histSet) merge(other histSet) {
	for i, h := range hs {
		h.Merge(other[i])
	}
}
