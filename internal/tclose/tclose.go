// Package tclose implements the paper's contribution: three
// microaggregation-based algorithms that generate k-anonymous t-close data
// sets.
//
//   - Algorithm 1 (Merge): standard microaggregation on the
//     quasi-identifiers followed by merging of clusters until every cluster's
//     confidential-attribute distribution is within EMD t of the data set
//     distribution.
//   - Algorithm 2 (k-anonymity-first): clusters are formed on the
//     quasi-identifiers and refined by record swaps to approach t-closeness;
//     because the refinement cannot always succeed (e.g. for the last
//     cluster), the partition is finished with Algorithm 1's merge step.
//   - Algorithm 3 (t-closeness-first): the cluster size k' required for
//     t-closeness is derived analytically (Proposition 2 / Eq. 3-4), the
//     records are split into k' rank subsets of the confidential attribute,
//     and clusters take one QI-nearest record per subset, satisfying
//     t-closeness by construction without ever evaluating an EMD.
//
// All three return a Result whose Clusters field partitions the input table;
// micro.Aggregate turns that partition into the anonymized release.
package tclose

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// Partitioner produces a k-anonymous partition of the given normalized
// quasi-identifier points. micro.MDAV is the default; micro.VMDAV (curried
// with a gamma) and Algorithm2Standalone-based partitioners also satisfy it.
type Partitioner func(points [][]float64, k int) ([]micro.Cluster, error)

// Result is the outcome of one of the t-closeness algorithms.
type Result struct {
	// Clusters partitions the input table's records.
	Clusters []micro.Cluster
	// MaxEMD is the largest Earth Mover's Distance between any cluster's
	// confidential-attribute distribution and the data set distribution,
	// maximized over all confidential attributes. MaxEMD <= T for every
	// algorithm that carries the t-closeness guarantee.
	MaxEMD float64
	// Merges counts cluster mergers performed (Algorithms 1 and 2).
	Merges int
	// Swaps counts record swaps performed (Algorithm 2).
	Swaps int
	// EffectiveK is the cluster size actually enforced: the input k for
	// Algorithms 1 and 2, and the Eq. (3)/(4) adjusted k' for Algorithm 3.
	EffectiveK int
}

// Sizes returns the min/avg/max cluster cardinalities of the result, the
// quantity the paper's Tables 1-3 report.
func (r *Result) Sizes() micro.SizeStats { return micro.Sizes(r.Clusters) }

// Parameter errors shared by the algorithms.
var (
	ErrBadK      = errors.New("tclose: k must be at least 1")
	ErrBadT      = errors.New("tclose: t must be in (0, 1]")
	ErrNoRecords = errors.New("tclose: data set has no records")
)

// problem bundles the per-run view of the input shared by the algorithms:
// normalized QI points, one EMD space per confidential attribute, and the
// validated parameters.
type problem struct {
	table  *dataset.Table
	points [][]float64
	spaces []*emd.Space
	k      int
	t      float64
}

func newProblem(t *dataset.Table, k int, tLevel float64) (*problem, error) {
	if t == nil || t.Len() == 0 {
		return nil, ErrNoRecords
	}
	if err := t.Schema().Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if tLevel <= 0 || tLevel > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadT, tLevel)
	}
	// Numeric (and ordinal, if encoded as numbers) confidential attributes
	// use the paper's ordered-distance EMD; nominal categorical attributes
	// use the equal-ground-distance (total variation) EMD, implementing the
	// categorical extension the paper's conclusions call for. Algorithm 3's
	// rank subsets then group records of the same category contiguously, so
	// one-record-per-subset clusters approximate proportional category
	// representation; its analytic Proposition 2 guarantee applies to the
	// ordered distance only, and the achieved nominal EMD is reported in
	// Result.MaxEMD.
	cols := t.Schema().Confidentials()
	spaces := make([]*emd.Space, len(cols))
	for i, c := range cols {
		var s *emd.Space
		var err error
		if t.Schema().Attr(c).Kind == dataset.Categorical {
			s, err = emd.NewNominalSpace(t.ColumnView(c))
		} else {
			s, err = emd.NewSpace(t.ColumnView(c))
		}
		if err != nil {
			return nil, fmt.Errorf("tclose: building EMD space for %q: %w",
				t.Schema().Attr(c).Name, err)
		}
		spaces[i] = s
	}
	return &problem{
		table:  t,
		points: t.QIMatrix(),
		spaces: spaces,
		k:      k,
		t:      tLevel,
	}, nil
}

// clusterEMD returns the maximum EMD of the record set across all
// confidential attributes.
func (p *problem) clusterEMD(rows []int) float64 {
	worst := 0.0
	for _, s := range p.spaces {
		if d := s.EMDOf(rows); d > worst {
			worst = d
		}
	}
	return worst
}

// maxEMD returns the largest cluster EMD over the whole partition.
func (p *problem) maxEMD(clusters []micro.Cluster) float64 {
	worst := 0.0
	for _, c := range clusters {
		if d := p.clusterEMD(c.Rows); d > worst {
			worst = d
		}
	}
	return worst
}

// histSet is a parallel set of histograms, one per confidential attribute,
// for a single cluster.
type histSet []*emd.Hist

func (p *problem) newHistSet(rows []int) histSet {
	hs := make(histSet, len(p.spaces))
	for i, s := range p.spaces {
		hs[i] = s.HistOf(rows)
	}
	return hs
}

// emd returns the maximum EMD of the histogram set.
func (hs histSet) emd() float64 {
	worst := 0.0
	for _, h := range hs {
		if d := h.EMD(); d > worst {
			worst = d
		}
	}
	return worst
}

// emdSwap returns the maximum post-swap EMD across attributes.
func (hs histSet) emdSwap(out, in int) float64 {
	worst := 0.0
	for _, h := range hs {
		if d := h.EMDSwap(out, in); d > worst {
			worst = d
		}
	}
	return worst
}

func (hs histSet) add(rec int) {
	for _, h := range hs {
		h.Add(rec)
	}
}

func (hs histSet) remove(rec int) {
	for _, h := range hs {
		h.Remove(rec)
	}
}

func (hs histSet) merge(other histSet) {
	for i, h := range hs {
		h.Merge(other[i])
	}
}
