package tclose

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
	"repro/internal/synth"
)

// checkGuarantees: every guarantee-carrying algorithm must produce a
// partition of the whole table into clusters of at least min(k, n) records
// with MaxEMD <= t.
func checkGuarantees(t *testing.T, name string, res *Result, n, k int, tl float64) {
	t.Helper()
	kk := k
	if n < kk {
		kk = n
	}
	if err := micro.CheckPartition(res.Clusters, n, kk); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.MaxEMD > tl+1e-12 {
		t.Fatalf("%s: MaxEMD %v exceeds t = %v", name, res.MaxEMD, tl)
	}
}

func TestAlgorithm1Guarantees(t *testing.T) {
	tbl := synth.Uniform(120, 3, 5)
	for _, k := range []int{2, 5, 10} {
		for _, tl := range []float64{0.05, 0.15, 0.3} {
			res, err := Algorithm1(tbl, k, tl, nil)
			if err != nil {
				t.Fatalf("k=%d t=%v: %v", k, tl, err)
			}
			checkGuarantees(t, "alg1", res, tbl.Len(), k, tl)
		}
	}
}

func TestAlgorithm1WorstCaseSingleCluster(t *testing.T) {
	// With a tiny t the only feasible partition is one cluster of all
	// records (EMD = 0).
	tbl := synth.Uniform(40, 2, 7)
	res, err := Algorithm1(tbl, 2, 0.001, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGuarantees(t, "alg1", res, tbl.Len(), 2, 0.001)
	if len(res.Clusters) != 1 {
		t.Errorf("expected total merge, got %d clusters (MaxEMD %v)",
			len(res.Clusters), res.MaxEMD)
	}
}

func TestAlgorithm1MergesMonotoneInT(t *testing.T) {
	// Stricter t can only force more merging: cluster count must be
	// non-increasing as t decreases.
	tbl := synth.CensusMCD()
	prev := -1
	for _, tl := range []float64{0.25, 0.17, 0.09, 0.05, 0.01} {
		res, err := Algorithm1(tbl, 5, tl, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(res.Clusters) > prev {
			t.Errorf("t=%v produced more clusters (%d) than looser t (%d)",
				tl, len(res.Clusters), prev)
		}
		prev = len(res.Clusters)
	}
}

func TestAlgorithm1CustomPartitioner(t *testing.T) {
	tbl := synth.Uniform(60, 2, 11)
	vmdav := func(points [][]float64, k int) ([]micro.Cluster, error) {
		return micro.VMDAV(points, k, 0)
	}
	res, err := Algorithm1(tbl, 3, 0.2, vmdav)
	if err != nil {
		t.Fatal(err)
	}
	checkGuarantees(t, "alg1+vmdav", res, tbl.Len(), 3, 0.2)
}

func TestAlgorithm1FailingPartitioner(t *testing.T) {
	boom := func([][]float64, int) ([]micro.Cluster, error) {
		return nil, micro.ErrEmpty
	}
	if _, err := Algorithm1(synth.Uniform(10, 2, 1), 2, 0.2, boom); err == nil {
		t.Error("partitioner failure must propagate")
	}
}

func TestAlgorithm2Guarantees(t *testing.T) {
	tbl := synth.Uniform(120, 3, 6)
	for _, k := range []int{2, 5} {
		for _, tl := range []float64{0.05, 0.15, 0.3} {
			res, err := Algorithm2(tbl, k, tl)
			if err != nil {
				t.Fatalf("k=%d t=%v: %v", k, tl, err)
			}
			checkGuarantees(t, "alg2", res, tbl.Len(), k, tl)
		}
	}
}

func TestAlgorithm2StandalonePartitionValid(t *testing.T) {
	// The standalone variant must still produce a k-anonymous partition,
	// even though it may miss the t target.
	tbl := synth.CensusHCD()
	res, err := Algorithm2Standalone(tbl, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := micro.CheckPartition(res.Clusters, tbl.Len(), 5); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm2SwapsReduceMerging(t *testing.T) {
	// The swap refinement should leave less work for the merge phase than
	// raw MDAV + merging on the same inputs: the k-anonymity-first result
	// must never have *fewer* clusters than Algorithm 1's.
	tbl := synth.CensusMCD()
	for _, tl := range []float64{0.09, 0.13, 0.17} {
		r1, err := Algorithm1(tbl, 5, tl, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Algorithm2(tbl, 5, tl)
		if err != nil {
			t.Fatal(err)
		}
		if len(r2.Clusters) < len(r1.Clusters) {
			t.Errorf("t=%v: alg2 has fewer clusters (%d) than alg1 (%d)",
				tl, len(r2.Clusters), len(r1.Clusters))
		}
	}
}

func TestAlgorithm2CountsSwaps(t *testing.T) {
	// On the highly correlated data set with a strict t, swaps must occur.
	tbl := synth.CensusHCD()
	res, err := Algorithm2(tbl, 5, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Error("expected swap refinement to fire on HCD at t=0.09")
	}
}

func TestAlgorithm3Guarantees(t *testing.T) {
	tbl := synth.Uniform(120, 3, 8)
	for _, k := range []int{2, 5, 10} {
		for _, tl := range []float64{0.05, 0.15, 0.3} {
			res, err := Algorithm3(tbl, k, tl)
			if err != nil {
				t.Fatalf("k=%d t=%v: %v", k, tl, err)
			}
			checkGuarantees(t, "alg3", res, tbl.Len(), k, tl)
		}
	}
}

func TestAlgorithm3ClusterSizesTight(t *testing.T) {
	// When k' divides n every cluster has exactly k' records (Table 3 of
	// the paper: "clusters are perfectly balanced").
	tbl := synth.CensusMCD() // n = 1080
	for _, k := range []int{2, 5, 10, 15, 20, 30} {
		res, err := Algorithm3(tbl, k, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Sizes()
		if st.Min != res.EffectiveK || st.Max != res.EffectiveK {
			t.Errorf("k=%d: sizes min=%d max=%d, want all %d",
				k, st.Min, st.Max, res.EffectiveK)
		}
	}
}

func TestAlgorithm3EffectiveKMatchesEq3(t *testing.T) {
	tbl := synth.CensusMCD()
	n := tbl.Len()
	for _, tl := range []float64{0.01, 0.05, 0.13, 0.25} {
		res, err := Algorithm3(tbl, 2, tl)
		if err != nil {
			t.Fatal(err)
		}
		want, err := emd.RequiredClusterSize(n, 2, tl)
		if err != nil {
			t.Fatal(err)
		}
		want = emd.AdjustClusterSize(n, want)
		if res.EffectiveK != want {
			t.Errorf("t=%v: EffectiveK = %d, want %d", tl, res.EffectiveK, want)
		}
	}
}

func TestAlgorithm3BoundHolds(t *testing.T) {
	// The Proposition 2 bound must hold for every cluster, not just the max.
	tbl := synth.CensusHCD()
	res, err := Algorithm3(tbl, 5, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	p, err := newProblem(tbl, 5, 0.09)
	if err != nil {
		t.Fatal(err)
	}
	bound := emd.MaxSpreadClusterEMD(tbl.Len(), res.EffectiveK)
	for ci, c := range res.Clusters {
		if d := p.clusterEMD(c.Rows); d > bound+1e-9 {
			t.Errorf("cluster %d EMD %v exceeds Proposition 2 bound %v", ci, d, bound)
		}
	}
}

func TestAlgorithm3SingleClusterWhenTTiny(t *testing.T) {
	tbl := synth.Uniform(30, 2, 13)
	res, err := Algorithm3(tbl, 2, 0.0005)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.MaxEMD != 0 {
		t.Errorf("tiny t should force one cluster: %d clusters, EMD %v",
			len(res.Clusters), res.MaxEMD)
	}
}

func TestAlgorithm3PropertyRandomInputs(t *testing.T) {
	// Across random data set sizes, ks and ts, Algorithm 3 always returns a
	// valid k'-anonymous t-close partition whose sizes are k' or k'+1.
	f := func(nRaw, kRaw uint8, tRaw uint16, seed int64) bool {
		n := 4 + int(nRaw)%200
		k := 1 + int(kRaw)%12
		tl := 0.01 + float64(tRaw%400)/1000.0
		tbl := synth.Uniform(n, 2, seed)
		res, err := Algorithm3(tbl, k, tl)
		if err != nil {
			return false
		}
		kk := res.EffectiveK
		if kk > n {
			return false
		}
		if err := micro.CheckPartition(res.Clusters, n, min(kk, n)); err != nil {
			return false
		}
		// Exact guarantee when k' | n; otherwise the paper's approximation
		// applies and the rigorous uneven-case bound must still hold.
		allowed := tl
		if n%kk != 0 {
			if b := emd.MaxSpreadClusterEMDUneven(n, kk); b > allowed {
				allowed = b
			}
		}
		if res.MaxEMD > allowed+1e-9 {
			return false
		}
		if len(res.Clusters) > 1 {
			for _, c := range res.Clusters {
				if c.Size() != kk && c.Size() != kk+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 150,
		Rand:     rand.New(rand.NewSource(31)),
	}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmsOnDuplicateHeavyData(t *testing.T) {
	// A confidential attribute with very few distinct values (many ties)
	// stresses the rank subsets and EMD bins.
	tbl := synth.Uniform(60, 2, 17)
	conf := tbl.Schema().Confidentials()[0]
	for r := 0; r < tbl.Len(); r++ {
		tbl.SetValue(r, conf, float64(r%3))
	}
	for _, alg := range allAlgorithms {
		res, err := alg.run(tbl, 3, 0.2)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if err := micro.CheckPartition(res.Clusters, tbl.Len(), 3); err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if alg.name != "alg2-standalone" && res.MaxEMD > 0.2+1e-12 {
			t.Fatalf("%s: MaxEMD %v > t", alg.name, res.MaxEMD)
		}
	}
}

func TestAlgorithmsOnConstantConfidential(t *testing.T) {
	// A constant confidential attribute means every cluster trivially has
	// EMD 0; all algorithms must return plain k-anonymous partitions.
	tbl := synth.Uniform(40, 2, 19)
	conf := tbl.Schema().Confidentials()[0]
	for r := 0; r < tbl.Len(); r++ {
		tbl.SetValue(r, conf, 42)
	}
	for _, alg := range allAlgorithms {
		res, err := alg.run(tbl, 4, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if res.MaxEMD != 0 {
			t.Errorf("%s: EMD should be 0 on constant attribute, got %v",
				alg.name, res.MaxEMD)
		}
		if err := micro.CheckPartition(res.Clusters, tbl.Len(), 4); err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
	}
}

func TestAlgorithmsKLargerThanN(t *testing.T) {
	tbl := synth.Uniform(5, 2, 23)
	for _, alg := range allAlgorithms {
		res, err := alg.run(tbl, 10, 0.3)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if len(res.Clusters) != 1 || res.Clusters[0].Size() != 5 {
			t.Errorf("%s: k > n should yield a single cluster, got %v",
				alg.name, res.Clusters)
		}
	}
}

func TestAlgorithmsMultipleConfidentialAttributes(t *testing.T) {
	// Two confidential attributes: guaranteeing algorithms must satisfy the
	// reported MaxEMD over both. The second attribute is the negation of the
	// first, so its ranking is reversed — a worst case for any code that
	// assumed a single shared ranking.
	src := synth.Uniform(80, 2, 29)
	wide := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "QIA", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "QIB", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "SECRET", Role: dataset.Confidential, Kind: dataset.Numeric},
		dataset.Attribute{Name: "SECRET2", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	for r := 0; r < src.Len(); r++ {
		if err := wide.AppendNumericRow(
			src.Value(r, 0), src.Value(r, 1), src.Value(r, 2), -src.Value(r, 2),
		); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := Algorithm1(wide, 3, 0.15, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGuarantees(t, "alg1", r1, wide.Len(), 3, 0.15)
	r2, err := Algorithm2(wide, 3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	checkGuarantees(t, "alg2", r2, wide.Len(), 3, 0.15)
}

func TestAlgorithmsOnCategoricalConfidential(t *testing.T) {
	// A nominal categorical confidential attribute (e.g. diagnosis codes):
	// the algorithms must run, produce valid partitions, and the merging
	// algorithms must deliver the requested nominal-EMD level.
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "age", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "zip", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "diagnosis", Role: dataset.Confidential, Kind: dataset.Categorical},
	))
	diagnoses := []string{"flu", "diabetes", "fracture", "asthma"}
	src := synth.Uniform(120, 2, 37)
	for r := 0; r < src.Len(); r++ {
		d := diagnoses[int(src.Value(r, 2)*16)%len(diagnoses)]
		if err := tbl.AppendRow(20+60*src.Value(r, 0), 43000+100*src.Value(r, 1), d); err != nil {
			t.Fatal(err)
		}
	}
	for _, alg := range allAlgorithms {
		res, err := alg.run(tbl, 4, 0.25)
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if err := micro.CheckPartition(res.Clusters, tbl.Len(), 4); err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if alg.name == "alg1" || alg.name == "alg2" {
			if res.MaxEMD > 0.25+1e-12 {
				t.Errorf("%s: nominal MaxEMD %v exceeds t", alg.name, res.MaxEMD)
			}
		}
	}
}
