package tclose

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/par"
)

// Algorithm1 implements the paper's Algorithm 1: t-closeness through
// microaggregation and merging of microaggregated groups of records.
//
// The partitioner (MDAV when nil) first produces a k-anonymous partition of
// the quasi-identifiers. Then, while some cluster is farther than t (in
// Earth Mover's Distance of the confidential attribute distribution) from
// the whole data set, the cluster with the greatest EMD is merged with the
// cluster closest to it in terms of quasi-identifiers. In the worst case all
// clusters merge into one, whose EMD is zero, so the algorithm always
// terminates with a t-close partition. Cost: the partitioner's cost plus
// O((n/k)^2) for merging — O(n^2/k) overall with MDAV.
func Algorithm1(t *dataset.Table, k int, tLevel float64, part Partitioner) (*Result, error) {
	return Algorithm1Policy(t, k, tLevel, part, MergeNearestQI)
}

// Algorithm1 runs the paper's Algorithm 1 against the prepared substrate;
// see the package-level Algorithm1. With a nil partitioner the default MDAV
// partition is cached per k, so a t sweep at fixed k pays for it once.
func (prep *Prepared) Algorithm1(run Run, k int, tLevel float64, part Partitioner) (*Result, error) {
	return prep.Algorithm1Policy(run, k, tLevel, part, MergeNearestQI)
}

// Algorithm1Policy is Prepared.Algorithm1 with an explicit merge-partner
// policy.
func (prep *Prepared) Algorithm1Policy(run Run, k int, tLevel float64, part Partitioner, policy MergePolicy) (*Result, error) {
	p, err := prep.newRun(run, k, tLevel)
	if err != nil {
		return nil, err
	}
	var clusters []micro.Cluster
	if part == nil {
		clusters, err = prep.defaultPartition(p.run.Ctx, k)
	} else {
		// Custom partitioners get a private copy of the normalized points:
		// the substrate slices are shared across every run of the Prepared,
		// and the Partitioner contract does not require read-only use. A
		// custom partitioner cannot be cancelled mid-flight (its signature
		// carries no context); the run aborts at the next check after it
		// returns.
		clusters, err = part(prep.pointsCopy(), p.k)
	}
	if err != nil {
		if ctxErr := p.interrupted(); ctxErr != nil && errors.Is(err, ctxErr) {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("tclose: initial microaggregation: %w", err)
	}
	if err := p.interrupted(); err != nil {
		return nil, err
	}
	merged, merges, err := p.mergeUntilTClosePolicy(clusters, policy)
	if err != nil {
		return nil, err
	}
	return &Result{
		Clusters:   merged,
		MaxEMD:     p.maxEMD(merged),
		Merges:     merges,
		EffectiveK: p.k,
	}, nil
}

// defaultPartition returns the cached MDAV partition for k, computing it on
// first demand under the run's context (a cancelled computation is not
// cached). The cached clusters are shared read-only: the merge loop copies
// rows and never mutates the input partition. Concurrent misses may compute
// the (deterministic, identical) partition twice; one wins.
func (prep *Prepared) defaultPartition(ctx context.Context, k int) ([]micro.Cluster, error) {
	prep.cacheMu.Lock()
	if c, ok := prep.mdavByK[k]; ok {
		prep.cacheMu.Unlock()
		return c, nil
	}
	prep.cacheMu.Unlock()
	clusters, err := micro.MDAVMatrixCtx(ctx, prep.mat, k)
	if err != nil {
		return nil, err
	}
	prep.cacheMu.Lock()
	if prep.mdavByK == nil {
		prep.mdavByK = make(map[int][]micro.Cluster)
	}
	prep.mdavByK[k] = clusters
	prep.cacheMu.Unlock()
	return clusters, nil
}

// MergePolicy selects how Algorithm 1 chooses the partner of the
// worst-EMD cluster in each merge step.
type MergePolicy int

const (
	// MergeNearestQI merges with the cluster whose quasi-identifier
	// centroid is nearest — the paper's policy, which protects utility.
	MergeNearestQI MergePolicy = iota
	// MergeGreedyEMD merges with the cluster that minimizes the EMD of the
	// merged cluster, ignoring quasi-identifier proximity. It converges in
	// fewer merges but damages QI homogeneity; it exists for the ablation
	// benchmark quantifying the value of the paper's choice.
	MergeGreedyEMD
)

// Algorithm1Policy is Algorithm1 with an explicit merge-partner policy.
func Algorithm1Policy(t *dataset.Table, k int, tLevel float64, part Partitioner, policy MergePolicy) (*Result, error) {
	prep, err := prepareOneShot(t, k, tLevel)
	if err != nil {
		return nil, err
	}
	return prep.Algorithm1Policy(Run{}, k, tLevel, part, policy)
}

// mergeState caches, for each live cluster, its histogram set, EMD, and QI
// centroid, so that each merge step costs O(#clusters + bins) instead of
// recomputing everything. The worst-cluster search runs on a lazily
// invalidated max-heap keyed by cached EMD: a merge pushes one fresh entry
// for the merged cluster, and stale entries (dead partner, outdated EMD)
// are discarded as they surface, cutting the selection to O(log #clusters)
// amortized per merge where the previous linear scan paid O(#clusters).
type mergeState struct {
	rows     [][]int
	hists    []histSet
	emds     []float64
	centroid [][]float64
	alive    []bool
	nAlive   int
	worst    worstHeap
}

// worstEntry snapshots a cluster's EMD at push time; it is stale (and
// skipped) if the cluster has since died or changed EMD.
type worstEntry struct {
	emd float64
	idx int
}

// worstHeap is a binary max-heap in (emd desc, idx asc) order — the exact
// selection order of the linear scan it replaces, which took the first
// strict improvement and therefore the lowest index among equal EMDs.
type worstHeap []worstEntry

func (h worstHeap) before(i, j int) bool {
	if h[i].emd != h[j].emd {
		return h[i].emd > h[j].emd
	}
	return h[i].idx < h[j].idx
}

func (h *worstHeap) push(e worstEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !(*h).before(i, par) {
			return
		}
		(*h)[i], (*h)[par] = (*h)[par], (*h)[i]
		i = par
	}
}

func (h *worstHeap) pop() worstEntry {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i, n := 0, len(*h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		next := l
		if r := l + 1; r < n && (*h).before(r, l) {
			next = r
		}
		if !(*h).before(next, i) {
			break
		}
		(*h)[i], (*h)[next] = (*h)[next], (*h)[i]
		i = next
	}
	return top
}

// popWorst returns the live cluster with the greatest EMD (ties toward the
// lowest index), or -1 when every remaining EMD is zero or no cluster
// remains. Zero-EMD clusters are never pushed, mirroring the scan's
// strict `> 0` start.
func (st *mergeState) popWorst() (int, float64) {
	for len(st.worst) > 0 {
		e := st.worst.pop()
		if st.alive[e.idx] && st.emds[e.idx] == e.emd {
			return e.idx, e.emd
		}
	}
	return -1, 0
}

// mergeUntilTClose runs Algorithm 1's merging loop on an initial partition
// and returns the resulting partition and the number of merges performed.
// Cancellation is checked once per merge, so an abandoned run stops within
// one merge step (O(#clusters) work).
func (p *problem) mergeUntilTClose(clusters []micro.Cluster) ([]micro.Cluster, int, error) {
	return p.mergeUntilTClosePolicy(clusters, MergeNearestQI)
}

func (p *problem) mergeUntilTClosePolicy(clusters []micro.Cluster, policy MergePolicy) ([]micro.Cluster, int, error) {
	st := &mergeState{
		rows:     make([][]int, len(clusters)),
		hists:    make([]histSet, len(clusters)),
		emds:     make([]float64, len(clusters)),
		centroid: make([][]float64, len(clusters)),
		alive:    make([]bool, len(clusters)),
		nAlive:   len(clusters),
	}
	for i, c := range clusters {
		st.rows[i] = append([]int(nil), c.Rows...)
		st.hists[i] = p.newHistSet(c.Rows)
		st.emds[i] = st.hists[i].emd()
		st.centroid[i] = micro.Centroid(p.points, c.Rows)
		st.alive[i] = true
		if st.emds[i] > 0 {
			st.worst.push(worstEntry{emd: st.emds[i], idx: i})
		}
	}
	merges := 0
	for st.nAlive > 1 {
		if err := p.interrupted(); err != nil {
			return nil, 0, err
		}
		// Cluster farthest from the data set distribution.
		worst, worstEMD := st.popWorst()
		if worst < 0 || worstEMD <= p.t {
			break
		}
		// Choose the merge partner per policy. The candidate evaluations
		// are independent (cached centroids are read-only; the greedy
		// policy clones the worst cluster's histogram per trial), so for
		// large live sets they fan out across the worker budget with an
		// order-stable argmin — dead slots evaluate to +Inf and real costs
		// are finite, so the reduction picks exactly the serial scan's
		// first strict minimum.
		closest := -1
		eval := func(j int) float64 {
			if !st.alive[j] || j == worst {
				return math.Inf(1)
			}
			switch policy {
			case MergeGreedyEMD:
				trial := st.hists[worst][0].Clone()
				trial.Merge(st.hists[j][0])
				return trial.EMD()
			default: // MergeNearestQI: the paper's policy
				return micro.Dist2(st.centroid[worst], st.centroid[j])
			}
		}
		w := 1
		if p.workers >= 2 && st.nAlive >= mergePartnerParMin {
			w = p.workers
		}
		closest = par.ArgminFloat64(len(st.rows), w, eval)
		if closest >= 0 && (!st.alive[closest] || closest == worst) {
			// Only possible when every candidate evaluated to +Inf, i.e.
			// no live partner exists (nAlive <= 1, already excluded by the
			// loop condition); kept as a guard.
			closest = -1
		}
		if closest < 0 {
			break
		}
		st.merge(p, worst, closest)
		if st.emds[worst] > 0 {
			st.worst.push(worstEntry{emd: st.emds[worst], idx: worst})
		}
		merges++
		p.reportProgress("merge", merges, 0)
	}
	out := make([]micro.Cluster, 0, st.nAlive)
	for i := range st.rows {
		if st.alive[i] {
			out = append(out, micro.Cluster{Rows: st.rows[i]})
		}
	}
	return out, merges, nil
}

// merge folds cluster b into cluster a and updates the cached centroid,
// histogram and EMD of a.
func (st *mergeState) merge(p *problem, a, b int) {
	na, nb := float64(len(st.rows[a])), float64(len(st.rows[b]))
	st.rows[a] = append(st.rows[a], st.rows[b]...)
	st.hists[a].merge(st.hists[b])
	st.emds[a] = st.hists[a].emd()
	// Weighted mean of the two centroids equals the centroid of the union.
	ca, cb := st.centroid[a], st.centroid[b]
	for j := range ca {
		ca[j] = (ca[j]*na + cb[j]*nb) / (na + nb)
	}
	st.alive[b] = false
	st.rows[b] = nil
	st.hists[b] = nil
	st.nAlive--
}
