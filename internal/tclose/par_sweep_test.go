package tclose

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/synth"
)

// This file pins the parallel determinism contract of the partition loops:
// for every algorithm and every worker count, the partition (and every
// reported diagnostic) is bit-identical to the single-worker run. The
// parallel-seam engagement floors are lowered so that even the small test
// tables route through the sharded paths — merge partner scans, eviction
// scoring, per-subset draws and the jump engine's chunked distance fills —
// rather than their serial fallbacks.

// lowerParFloors forces every parallel seam open for the duration of a test.
func lowerParFloors(t *testing.T) {
	t.Helper()
	oldMerge, oldEvict, oldDraw := mergePartnerParMin, evictScanParMin, alg3DrawParMinRows
	mergePartnerParMin, evictScanParMin, alg3DrawParMinRows = 2, 2, 1
	t.Cleanup(func() {
		mergePartnerParMin, evictScanParMin, alg3DrawParMinRows = oldMerge, oldEvict, oldDraw
	})
}

// sweepWorkerCounts is the worker grid of the determinism sweep.
func sweepWorkerCounts() []int {
	return []int{1, 2, 3, 8, runtime.GOMAXPROCS(0)}
}

// duplicateHeavyTable builds an adversarial table whose records are drawn
// from a handful of distinct tuples: distance ties are everywhere (stressing
// the (distance, row) reductions) and confidential-bin signatures collide
// constantly (stressing the eviction dedup masks).
func duplicateHeavyTable(n int, seed int64) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "B", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "S", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	tbl := dataset.MustTable(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		_ = tbl.AppendNumericRow(
			float64(rng.Intn(3)), float64(rng.Intn(3)), float64(rng.Intn(4)))
	}
	return tbl
}

// multiConfTable has two confidential attributes, routing Algorithm 2
// through the multi-histogram float scoring path.
func multiConfTable(n int, seed int64) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "X", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "Y", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "S1", Role: dataset.Confidential, Kind: dataset.Numeric},
		dataset.Attribute{Name: "S2", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	tbl := dataset.MustTable(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		_ = tbl.AppendNumericRow(rng.Float64(), rng.Float64(),
			float64(rng.Intn(6)), rng.Float64())
	}
	return tbl
}

// prepareWorkers builds a fresh substrate tuned to the given worker count.
func prepareWorkers(t *testing.T, tbl *dataset.Table, workers int) *Prepared {
	t.Helper()
	prep, err := Prepare(tbl)
	if err != nil {
		t.Fatal(err)
	}
	prep.Matrix().SetTuning(micro.Tuning{Workers: workers})
	return prep
}

type sweepAlg struct {
	name string
	run  func(prep *Prepared, k int, tl float64) (*Result, error)
}

func sweepAlgorithms() []sweepAlg {
	return []sweepAlg{
		{"alg1", func(p *Prepared, k int, tl float64) (*Result, error) {
			return p.Algorithm1(Run{}, k, tl, nil)
		}},
		{"alg1-greedy", func(p *Prepared, k int, tl float64) (*Result, error) {
			return p.Algorithm1Policy(Run{}, k, tl, nil, MergeGreedyEMD)
		}},
		{"alg2", func(p *Prepared, k int, tl float64) (*Result, error) {
			return p.Algorithm2(Run{}, k, tl)
		}},
		{"alg3", func(p *Prepared, k int, tl float64) (*Result, error) {
			return p.Algorithm3(Run{}, k, tl)
		}},
	}
}

// TestPartitionsWorkerCountInvariant is the central conformance sweep:
// sequential (workers = 1) and parallel partitions must be bit-identical
// for workers ∈ {1, 2, 3, 8, GOMAXPROCS} across Algorithms 1 (both merge
// policies), 2 and 3, over the benchmark generators, a duplicate-heavy
// adversarial table and a two-confidential-attribute table.
func TestPartitionsWorkerCountInvariant(t *testing.T) {
	lowerParFloors(t)
	tables := []struct {
		name string
		tbl  *dataset.Table
	}{
		{"uniform", synth.Uniform(140, 3, 17)},
		{"census", synth.Census(150, synth.FedTax, 9)},
		{"patients", synth.PatientDischarge(160, 23)},
		{"duplicates", duplicateHeavyTable(120, 5)},
		{"multiconf", multiConfTable(130, 31)},
	}
	ks := []int{2, 5}
	ts := []float64{0.05, 0.2}
	if testing.Short() {
		tables = tables[:3]
		ks = ks[:1]
	}
	for _, tc := range tables {
		for _, alg := range sweepAlgorithms() {
			for _, k := range ks {
				for _, tl := range ts {
					base := prepareWorkers(t, tc.tbl, 1)
					want, err := alg.run(base, k, tl)
					if err != nil {
						t.Fatalf("%s %s k=%d t=%v workers=1: %v", tc.name, alg.name, k, tl, err)
					}
					for _, w := range sweepWorkerCounts()[1:] {
						prep := prepareWorkers(t, tc.tbl, w)
						got, err := alg.run(prep, k, tl)
						if err != nil {
							t.Fatalf("%s %s k=%d t=%v workers=%d: %v", tc.name, alg.name, k, tl, w, err)
						}
						if !reflect.DeepEqual(got.Clusters, want.Clusters) {
							t.Fatalf("%s %s k=%d t=%v: partition at workers=%d diverges from sequential",
								tc.name, alg.name, k, tl, w)
						}
						if got.MaxEMD != want.MaxEMD || got.Merges != want.Merges ||
							got.Swaps != want.Swaps || got.EffectiveK != want.EffectiveK {
							t.Fatalf("%s %s k=%d t=%v workers=%d: diagnostics diverge: %+v vs %+v",
								tc.name, alg.name, k, tl, w, got, want)
						}
					}
				}
			}
		}
	}
}

// TestEvictionScoringParallelLargeK drives Algorithm 2 with a cluster size
// big enough that the eviction scoring shards even at the default floor,
// and pins it to the sequential result.
func TestEvictionScoringParallelLargeK(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel eviction sweep: slow property test")
	}
	tbl := synth.Census(400, synth.Fica, 77)
	k := evictScanParMin // default floor: the whole cluster scan fans out
	want, err := prepareWorkers(t, tbl, 1).Algorithm2(Run{}, k, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := prepareWorkers(t, tbl, w).Algorithm2(Run{}, k, 0.04)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Clusters, want.Clusters) || got.Swaps != want.Swaps {
			t.Fatalf("workers=%d: large-k eviction scoring diverges from sequential", w)
		}
	}
}

// TestJumpEngineMatchesStreamPath pins the interval-jump refinement to the
// candidate-stream path directly: the same problem run with the jump engine
// disabled (by an indexed low-dimension searcher gate being absent, we
// instead compare against the naive reference implementation shared with
// opt_prop_test) over tables with heavy value ties.
func TestJumpEngineMatchesStreamPath(t *testing.T) {
	tables := []*dataset.Table{
		synth.Uniform(170, 4, 3),          // 4 QI dims: linear streams, jump engaged
		duplicateHeavyTable(150, 41),      // massive distance and bin ties
		synth.PatientDischarge(180, 1234), // benchmark geometry
	}
	// Force every engine mode: graduation to the interval-jump tree right
	// after the initial picks, the pure phase-1 heap (the sequential loop
	// itself), direct phase-2 entry for every cluster, and the default
	// adaptive mix. All must match the naive reference.
	oldAfter, oldStreak := jumpAfterPops, jumpDirectStreak
	t.Cleanup(func() { jumpAfterPops, jumpDirectStreak = oldAfter, oldStreak })
	modes := []struct {
		name         string
		afterPops    int
		directStreak int
	}{
		{"graduate-immediately", 0, 1 << 30},
		{"pure-heap", 1 << 30, 1 << 30},
		{"direct-tree", 0, 0},
		{"adaptive-defaults", oldAfter, oldStreak},
	}
	for _, mode := range modes {
		jumpAfterPops, jumpDirectStreak = mode.afterPops, mode.directStreak
		for ti, tbl := range tables {
			for _, tl := range []float64{0.02, 0.1, 0.35} {
				p, err := newProblem(tbl, 2, tl)
				if err != nil {
					t.Fatal(err)
				}
				gotClusters, gotSwaps, err := p.kAnonymityFirstPartition()
				if err != nil {
					t.Fatal(err)
				}
				wantClusters, wantSwaps := referenceKAnonymityFirstPartition(p)
				if gotSwaps != wantSwaps {
					t.Errorf("mode=%s table %d t=%v: swaps=%d want %d",
						mode.name, ti, tl, gotSwaps, wantSwaps)
				}
				if !reflect.DeepEqual(gotClusters, wantClusters) {
					t.Fatalf("mode=%s table %d t=%v: jump partition diverges from reference",
						mode.name, ti, tl)
				}
			}
		}
	}
}
