package tclose

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/synth"
)

// This file pins the optimized Algorithm 2 machinery — lazy candidate heap,
// eviction deduplication by bin signature, rejected-signature memoization,
// incremental centroids — to the naive control flow the package shipped
// with: full candidate sort, every eviction evaluated, fresh centroid
// rescans. Both sides share the exact integer EMD engine (itself pinned to
// the floating-point reference in package emd), so the partitions must be
// identical, not merely close.

// referenceGenerateCluster is the pre-optimization swap refinement.
func referenceGenerateCluster(p *problem, x int, avail []int) (cluster []int, swaps int) {
	if len(avail) < 2*p.k {
		return append([]int(nil), avail...), 0
	}
	cands := make([]int, len(avail))
	copy(cands, avail)
	px := p.points[x]
	sort.Slice(cands, func(i, j int) bool {
		di, dj := micro.Dist2(p.points[cands[i]], px), micro.Dist2(p.points[cands[j]], px)
		if di != dj {
			return di < dj
		}
		return cands[i] < cands[j]
	})
	cluster = append([]int(nil), cands[:p.k]...)
	hs := p.newHistSet(cluster)
	cur := hs.emd()
	for _, y := range cands[p.k:] {
		if cur <= p.t {
			break
		}
		bestIdx, bestEMD := -1, cur
		for i, out := range cluster {
			if d := hs.emdSwap(out, y); d < bestEMD {
				bestIdx, bestEMD = i, d
			}
		}
		if bestIdx >= 0 {
			hs.remove(cluster[bestIdx])
			hs.add(y)
			cluster[bestIdx] = y
			cur = bestEMD
			swaps++
		}
	}
	return cluster, swaps
}

// referenceKAnonymityFirstPartition is the pre-optimization outer loop:
// fresh centroid rescan per round and map-based removal.
func referenceKAnonymityFirstPartition(p *problem) ([]micro.Cluster, int) {
	n := p.table.Len()
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	removeSorted := func(avail, drop []int) []int {
		dropSet := make(map[int]struct{}, len(drop))
		for _, r := range drop {
			dropSet[r] = struct{}{}
		}
		out := avail[:0]
		for _, r := range avail {
			if _, gone := dropSet[r]; !gone {
				out = append(out, r)
			}
		}
		return out
	}
	farthest := func(rows []int, q []float64) int {
		best, bestD := -1, -1.0
		for _, r := range rows {
			if d := micro.Dist2(p.points[r], q); d > bestD {
				best, bestD = r, d
			}
		}
		return best
	}
	var clusters []micro.Cluster
	swaps := 0
	for len(avail) > 0 {
		xa := micro.Centroid(p.points, avail)
		x0 := farthest(avail, xa)
		c, s := referenceGenerateCluster(p, x0, avail)
		swaps += s
		avail = removeSorted(avail, c)
		clusters = append(clusters, micro.Cluster{Rows: c})
		if len(avail) == 0 {
			break
		}
		x1 := farthest(avail, p.points[x0])
		c, s = referenceGenerateCluster(p, x1, avail)
		swaps += s
		avail = removeSorted(avail, c)
		clusters = append(clusters, micro.Cluster{Rows: c})
	}
	return clusters, swaps
}

// TestKAnonymityFirstPartitionMatchesReference compares the optimized
// partition against the naive reference over the synthetic generators the
// benchmarks use, across the (k, t) grid corners.
func TestKAnonymityFirstPartitionMatchesReference(t *testing.T) {
	tables := []struct {
		name string
		tbl  *dataset.Table
	}{
		{"uniform", synth.Uniform(150, 3, 11)},
		{"census", synth.Census(160, synth.FedTax, 5)},
		{"patients", synth.PatientDischarge(170, 99)},
	}
	for _, tc := range tables {
		name := tc.name
		for _, k := range []int{1, 2, 3, 7} {
			for _, tl := range []float64{0.03, 0.12, 0.3} {
				tbl := tc.tbl
				p, err := newProblem(tbl, k, tl)
				if err != nil {
					t.Fatal(err)
				}
				gotClusters, gotSwaps, err := p.kAnonymityFirstPartition()
				if err != nil {
					t.Fatal(err)
				}
				wantClusters, wantSwaps := referenceKAnonymityFirstPartition(p)
				if gotSwaps != wantSwaps {
					t.Errorf("%s k=%d t=%v: swaps=%d want %d", name, k, tl, gotSwaps, wantSwaps)
				}
				if !reflect.DeepEqual(gotClusters, wantClusters) {
					t.Fatalf("%s k=%d t=%v: partitions diverge\n got %v\nwant %v",
						name, k, tl, gotClusters, wantClusters)
				}
			}
		}
	}
}

// TestAlgorithm2EndToEndMatchesReference runs the full Algorithm 2 (swap
// refinement plus finishing merge) and checks the final partition and
// MaxEMD against a run seeded with the reference partition: the merge loop
// is deterministic given its input partition, so end-to-end equality
// follows when the partitions match.
func TestAlgorithm2EndToEndMatchesReference(t *testing.T) {
	tbl := synth.Census(200, synth.Fica, 3)
	for _, k := range []int{2, 5} {
		for _, tl := range []float64{0.05, 0.2} {
			res, err := Algorithm2(tbl, k, tl)
			if err != nil {
				t.Fatal(err)
			}
			p, err := newProblem(tbl, k, tl)
			if err != nil {
				t.Fatal(err)
			}
			refPart, _ := referenceKAnonymityFirstPartition(p)
			refMerged, _, err := p.mergeUntilTClose(refPart)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Clusters, refMerged) {
				t.Fatalf("k=%d t=%v: end-to-end partition diverges from reference", k, tl)
			}
			if got, want := res.MaxEMD, p.maxEMD(refMerged); got != want {
				t.Fatalf("k=%d t=%v: MaxEMD %v want %v", k, tl, got, want)
			}
		}
	}
}
