package tclose

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// algorithms under test, shared by the validation tests below.
var allAlgorithms = []struct {
	name string
	run  func(t *dataset.Table, k int, tl float64) (*Result, error)
}{
	{"alg1", func(t *dataset.Table, k int, tl float64) (*Result, error) {
		return Algorithm1(t, k, tl, nil)
	}},
	{"alg2", Algorithm2},
	{"alg2-standalone", Algorithm2Standalone},
	{"alg3", Algorithm3},
}

func TestParameterValidation(t *testing.T) {
	tbl := synth.Uniform(30, 2, 1)
	for _, alg := range allAlgorithms {
		if _, err := alg.run(nil, 2, 0.1); err == nil {
			t.Errorf("%s: nil table should fail", alg.name)
		}
		if _, err := alg.run(tbl, 0, 0.1); err == nil {
			t.Errorf("%s: k = 0 should fail", alg.name)
		}
		if _, err := alg.run(tbl, 2, 0); err == nil {
			t.Errorf("%s: t = 0 should fail", alg.name)
		}
		if _, err := alg.run(tbl, 2, -0.3); err == nil {
			t.Errorf("%s: negative t should fail", alg.name)
		}
		if _, err := alg.run(tbl, 2, 1.5); err == nil {
			t.Errorf("%s: t > 1 should fail", alg.name)
		}
	}
}

func TestEmptyTableRejected(t *testing.T) {
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	))
	for _, alg := range allAlgorithms {
		if _, err := alg.run(tbl, 2, 0.1); err == nil {
			t.Errorf("%s: empty table should fail", alg.name)
		}
	}
}

func TestSchemaWithoutConfidentialRejected(t *testing.T) {
	tbl := dataset.MustTable(dataset.MustSchema(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
	))
	if err := tbl.AppendNumericRow(1); err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		if _, err := alg.run(tbl, 1, 0.1); err == nil {
			t.Errorf("%s: schema without confidential attribute should fail", alg.name)
		}
	}
}

func TestResultSizes(t *testing.T) {
	r := &Result{Clusters: nil}
	if s := r.Sizes(); s.Num != 0 {
		t.Errorf("Sizes of empty result = %+v", s)
	}
}

func TestHistSetSwapConsistency(t *testing.T) {
	tbl := synth.Uniform(40, 2, 3)
	p, err := newProblem(tbl, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int{0, 5, 10, 15}
	hs := p.newHistSet(rows)
	pred := hs.emdSwap(5, 20)
	hs.remove(5)
	hs.add(20)
	if got := hs.emd(); got != pred {
		t.Errorf("emdSwap = %v but post-mutation emd = %v", pred, got)
	}
	// And it matches a fresh histogram of the swapped rows.
	fresh := p.newHistSet([]int{0, 20, 10, 15})
	if fresh.emd() != hs.emd() {
		t.Errorf("incremental %v != fresh %v", hs.emd(), fresh.emd())
	}
}

func TestClusterEMDMatchesHistSet(t *testing.T) {
	tbl := synth.CensusMCD()
	p, err := newProblem(tbl, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int{3, 77, 400, 999}
	if a, b := p.clusterEMD(rows), p.newHistSet(rows).emd(); a != b {
		t.Errorf("clusterEMD %v != histSet emd %v", a, b)
	}
}
