package tclose

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/emd"
	"repro/internal/micro"
)

// Prepared is the reusable per-table substrate shared by the three
// algorithms: the normalized quasi-identifier geometry (both the row-major
// point slices of the public Partitioner interface and the flat
// stride-indexed Matrix of the hot distance scans), one EMD space per
// confidential attribute, the packed per-record confidential-bin
// signatures, and lazily materialized derived state (the confidential
// ranking, partition caches). Preparing once and running many (k, t)
// parameter points against the same Prepared is the whole point of the
// engine API: a parameter sweep stops paying the O(n·log n) substrate
// build — and, where a partition depends only on k, the partition itself —
// once per point.
//
// A Prepared is safe for concurrent runs: everything built by Prepare is
// immutable afterwards, and the lazy pieces are guarded internally.
type Prepared struct {
	table  *dataset.Table
	points [][]float64
	mat    *micro.Matrix
	spaces []*emd.Space
	norm   dataset.NormParams

	// sigs holds each record's confidential-bin tuple packed into one
	// uint64 (mixed radix over the spaces' bin counts); nil when the
	// product of bin counts overflows, in which case signature-based
	// deduplication is skipped (a pure optimization, never a semantic
	// change). Records with equal signatures are interchangeable for every
	// EMD computation.
	sigs      []uint64
	sigDomain uint64

	// confOrder is the record order by (first confidential value, row),
	// the ranking Algorithm 3's subsets and SABRE's buckets are defined
	// over; sorted once on first demand.
	confOnce  sync.Once
	confOrder []int

	// Partition caches: MDAV partitions depend only on k, and Algorithm 3
	// partitions only on the effective cluster size, so a (k, t) sweep
	// reuses them across t points. Guarded by cacheMu; cached cluster row
	// slices are never handed out for mutation (Algorithm 1's merge copies
	// rows, Algorithm 3 returns deep copies).
	cacheMu sync.Mutex
	mdavByK map[int][]micro.Cluster
	alg3ByK map[int]alg3Cached
}

type alg3Cached struct {
	clusters []micro.Cluster
	maxEMD   float64
}

// Run carries the per-invocation execution options of a prepared
// algorithm run. The zero value runs to completion without reporting.
type Run struct {
	// Ctx cancels the run between partition, merge and refinement steps;
	// the algorithm then returns Ctx.Err(). nil means context.Background.
	Ctx context.Context
	// Progress, when non-nil, receives coarse-grained progress events from
	// the partition and merge loops. It is called synchronously on the
	// run's goroutine and must be fast.
	Progress ProgressFunc
}

// Progress is one progress event of a run.
type Progress struct {
	// Phase names the loop reporting: "partition" or "merge".
	Phase string
	// Done counts completed work units (records clustered, merges done).
	Done int
	// Total is the known total for the phase, 0 when unbounded (merges).
	Total int
}

// ProgressFunc receives progress events; see Run.
type ProgressFunc func(Progress)

// Prepare validates the table and builds the shared substrate. The table
// must not be mutated while the Prepared is in use.
func Prepare(t *dataset.Table) (*Prepared, error) {
	if t == nil || t.Len() == 0 {
		return nil, ErrNoRecords
	}
	if err := t.Schema().Validate(); err != nil {
		return nil, err
	}
	// Numeric (and ordinal, if encoded as numbers) confidential attributes
	// use the paper's ordered-distance EMD; nominal categorical attributes
	// use the equal-ground-distance (total variation) EMD, implementing the
	// categorical extension the paper's conclusions call for.
	cols := t.Schema().Confidentials()
	spaces := make([]*emd.Space, len(cols))
	for i, c := range cols {
		var s *emd.Space
		var err error
		if t.Schema().Attr(c).Kind == dataset.Categorical {
			s, err = emd.NewNominalSpace(t.ColumnView(c))
		} else {
			s, err = emd.NewSpace(t.ColumnView(c))
		}
		if err != nil {
			return nil, fmt.Errorf("tclose: building EMD space for %q: %w",
				t.Schema().Attr(c).Name, err)
		}
		spaces[i] = s
	}
	// QIMatrixTail(0, norm) is the full QIMatrix under an explicit frame,
	// reusing the min-max pass instead of scanning the columns twice.
	norm := t.QINormParams()
	points := t.QIMatrixTail(0, norm)
	p := &Prepared{
		table:  t,
		points: points,
		mat:    micro.NewMatrix(points),
		spaces: spaces,
		norm:   norm,
	}
	p.initSignatures()
	return p, nil
}

// Table returns the table the substrate was prepared over.
func (p *Prepared) Table() *dataset.Table { return p.table }

// Matrix returns the normalized quasi-identifier matrix. Callers may tune
// it (micro.Matrix.SetTuning, EnableIndexCache) before the Prepared is
// shared, and must treat it as read-only afterwards.
func (p *Prepared) Matrix() *micro.Matrix { return p.mat }

// Spaces returns the per-confidential-attribute EMD spaces (read-only).
func (p *Prepared) Spaces() []*emd.Space { return p.spaces }

// pointsCopy returns a deep copy of the normalized point rows — handed to
// custom Partitioners, which are not bound to read-only use, so that a
// writing partitioner can never corrupt the substrate shared by other runs.
func (p *Prepared) pointsCopy() [][]float64 {
	out := make([][]float64, len(p.points))
	dim := 0
	if len(p.points) > 0 {
		dim = len(p.points[0])
	}
	flat := make([]float64, len(p.points)*dim)
	for i, row := range p.points {
		dst := flat[i*dim : (i+1)*dim : (i+1)*dim]
		copy(dst, row)
		out[i] = dst
	}
	return out
}

// ConfOrder returns the records sorted by (first confidential value, row) —
// the ranking Algorithm 3 and SABRE bucket over — materializing it on first
// call. The returned slice is shared and must not be modified.
func (p *Prepared) ConfOrder() []int {
	p.confOnce.Do(func() {
		confCol := p.table.Schema().Confidentials()[0]
		conf := p.table.ColumnView(confCol)
		order := make([]int, p.table.Len())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			if conf[order[i]] != conf[order[j]] {
				return conf[order[i]] < conf[order[j]]
			}
			return order[i] < order[j]
		})
		p.confOrder = order
	})
	return p.confOrder
}

// initSignatures packs every record's confidential bin tuple into one
// uint64 (mixed radix over the spaces' bin counts).
func (p *Prepared) initSignatures() {
	radix := make([]uint64, len(p.spaces))
	prod := uint64(1)
	for i := len(p.spaces) - 1; i >= 0; i-- {
		radix[i] = prod
		m := uint64(p.spaces[i].Bins())
		if m != 0 && prod > math.MaxUint64/m {
			return // overflow: leave sigs nil, dedup disabled
		}
		prod *= m
	}
	sigs := make([]uint64, p.table.Len())
	for i, s := range p.spaces {
		for rec := range sigs {
			sigs[rec] += uint64(s.Bin(rec)) * radix[i]
		}
	}
	p.sigs = sigs
	p.sigDomain = prod
}

// Extend returns a Prepared over the extended table, whose first
// p.Table().Len() records must be exactly the records the receiver was
// prepared over (same schema, values appended behind them). It recomputes
// only invalidated pieces: EMD spaces extend incrementally (emd.Space
// .Extend), and when no appended value widens a quasi-identifier's min-max
// range the normalized matrix is extended in place of a full
// renormalization. Everything — spaces, matrix, and therefore every
// partition — is bit-identical to a cold Prepare over the extended table.
// Tuning and an enabled index cache carry over to the new matrix (with a
// fresh, unbuilt master); partition caches and the confidential ranking
// start cold, since every row set change invalidates them.
func (p *Prepared) Extend(t *dataset.Table) (*Prepared, error) {
	if t == nil || t.Len() < p.table.Len() {
		return nil, errors.New("tclose: extended table is shorter than the prepared one")
	}
	if !t.Schema().Equal(p.table.Schema()) {
		return nil, errors.New("tclose: extended table has a different schema")
	}
	old := p.table.Len()
	cols := t.Schema().Confidentials()
	if len(cols) != len(p.spaces) {
		return nil, errors.New("tclose: confidential attributes changed")
	}
	spaces := make([]*emd.Space, len(cols))
	for i, c := range cols {
		s, err := p.spaces[i].Extend(t.ColumnView(c)[old:])
		if err != nil {
			return nil, fmt.Errorf("tclose: extending EMD space for %q: %w",
				t.Schema().Attr(c).Name, err)
		}
		spaces[i] = s
	}
	norm := t.QINormParams()
	var mat *micro.Matrix
	var points [][]float64
	if norm.Equal(p.norm) {
		// No appended value widened any quasi-identifier range: every old
		// normalized row is unchanged, so only the tail is normalized.
		mat = p.mat.AppendRowsCopy(t.QIMatrixTail(old, norm))
		// The Partitioner interface hands points to arbitrary callers, so
		// they must not alias the matrix backing (a writing partitioner
		// would otherwise corrupt the shared matrix and its index cache) —
		// same insulation the cold path gets from NewMatrix's copy.
		points = make([][]float64, mat.N())
		for i := range points {
			points[i] = append([]float64(nil), mat.Row(i)...)
		}
	} else {
		points = t.QIMatrix()
		mat = micro.NewMatrix(points)
		mat.SetTuning(p.mat.TuningOf())
		if p.mat.IndexCacheEnabled() {
			mat.EnableIndexCache()
		}
	}
	out := &Prepared{
		table:  t,
		points: points,
		mat:    mat,
		spaces: spaces,
		norm:   norm,
	}
	out.initSignatures()
	return out, nil
}
